// Command lflfigures regenerates the paper's figures as live text
// renderings: it executes the actual algorithms, freezing them between
// C&S steps with the adversary controller, and prints the intermediate
// list states using the figures' notation - "*" for a flagged successor
// field (shaded box), "X" for a marked one (crossed box), "~" for a node
// whose backlink is set.
//
// Usage:
//
//	lflfigures [-fig 1|2|6|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/harris"
	"repro/internal/instrument"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lflfigures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lflfigures", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to render: 1, 2, 6, or all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *fig {
	case "1":
		figure1()
	case "2":
		figure2()
	case "6":
		figure6()
	case "all":
		figure1()
		fmt.Println()
		figure2()
		fmt.Println()
		figure6()
	default:
		return fmt.Errorf("unknown -fig %q", *fig)
	}
	return nil
}

// figure1 renders Harris's two-step deletion (paper Figure 1) by freezing
// a real deleter between its marking C&S and its unlinking C&S.
func figure1() {
	fmt.Println("Figure 1: Harris's two-step deletion of node B")
	l := harris.NewList[string, int]()
	l.Insert(nil, "A", 0)
	l.Insert(nil, "B", 0)
	l.Insert(nil, "C", 0)
	fmt.Println("  initial:       ", harrisState(l))

	ctl := adversary.NewController()
	ctl.PauseAt(1, instrument.PtBeforePhysicalCAS)
	done := make(chan struct{})
	go func() {
		l.Delete(&instrument.Proc{ID: 1, Hooks: ctl.HooksFor()}, "B")
		close(done)
	}()
	ctl.AwaitParked(1, instrument.PtBeforePhysicalCAS)
	fmt.Println("  step 1 (mark): ", harrisState(l), "   <- B logically deleted")
	ctl.ClearAllPauses()
	ctl.Release(1)
	<-done
	fmt.Println("  step 2 (unlink):", harrisState(l), "       <- B physically deleted")
}

// harrisState renders the Harris list's physical chain read-only (a
// Search would help-prune the very marked node the figure shows).
func harrisState(l *harris.List[string, int]) string {
	parts := []string{"[head]"}
	l.AscendPhysical(func(key string, marked bool) bool {
		deco := ""
		if marked {
			deco = "X"
		}
		parts = append(parts, fmt.Sprintf("[%s]%s", key, deco))
		return true
	})
	parts = append(parts, "[tail]")
	return strings.Join(parts, " -> ")
}

// figure2 renders the paper's three-step deletion (Figure 2), freezing the
// deleter after the flagging C&S and after the marking C&S.
func figure2() {
	fmt.Println("Figure 2: three-step deletion of node B (the paper's protocol)")
	l := core.NewList[string, int]()
	l.Insert(nil, "A", 0)
	l.Insert(nil, "B", 0)
	l.Insert(nil, "C", 0)
	fmt.Println("  initial:          ", core.RenderState(l.Snapshot()))

	ctl := adversary.NewController()
	ctl.PauseAt(1, instrument.PtBeforeMarkCAS)
	ctl.PauseAt(1, instrument.PtBeforePhysicalCAS)
	done := make(chan struct{})
	go func() {
		l.Delete(&core.Proc{ID: 1, Hooks: ctl.HooksFor()}, "B")
		close(done)
	}()
	ctl.AwaitParked(1, instrument.PtBeforeMarkCAS)
	fmt.Println("  step 1 (flag A):  ", core.RenderState(l.Snapshot()), "  <- A's successor field flagged (*)")
	ctl.Release(1)
	ctl.AwaitParked(1, instrument.PtBeforePhysicalCAS)
	fmt.Println("  step 2 (mark B):  ", core.RenderState(l.Snapshot()), "  <- B marked (X), backlink set (~)")
	ctl.ClearAllPauses()
	ctl.Release(1)
	<-done
	fmt.Println("  step 3 (unlink B):", core.RenderState(l.Snapshot()), "   <- B removed, flag cleared")
}

// figure6 renders the skip list's tower structure (Figure 6) after a few
// insertions with deterministic heights.
func figure6() {
	fmt.Println("Figure 6: skip-list towers (deterministic heights)")
	heights := []uint64{0b0, 0b1, 0b11, 0b0, 0b111, 0b1, 0b0}
	i := 0
	rng := func() uint64 { h := heights[i%len(heights)]; i++; return h }
	l := core.NewSkipList[int, int](core.WithRandomSource(rng))
	for k := 1; k <= 7; k++ {
		l.Insert(nil, k, k)
	}
	for lv := 4; lv >= 1; lv-- {
		fmt.Printf("  level %d: %s\n", lv, core.RenderState(l.LevelSnapshot(lv)))
	}
}
