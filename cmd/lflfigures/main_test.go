package main

import "testing"

func TestRunAllFigures(t *testing.T) {
	if err := run([]string{"-fig", "all"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "9"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
