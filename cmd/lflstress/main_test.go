package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obshttp"
	ltel "repro/lockfree/telemetry"
)

func TestNewCheckedKnownImpls(t *testing.T) {
	for _, impl := range []string{
		"fr-list", "fr-skiplist", "harris-list", "harris-skiplist",
		"valois-list", "noflag-list",
	} {
		d, err := newChecked(impl, 0, 16, false, nil)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if !d.insert(1) {
			t.Fatalf("%s: insert failed", impl)
		}
		if !d.search(1) {
			t.Fatalf("%s: search missed", impl)
		}
		if !d.remove(1) {
			t.Fatalf("%s: remove failed", impl)
		}
		if err := d.validate(); err != nil {
			t.Fatalf("%s: validate: %v", impl, err)
		}
	}
}

func TestNewCheckedUnknownImpl(t *testing.T) {
	if _, err := newChecked("btree", 0, 16, false, nil); err == nil {
		t.Fatal("unknown implementation accepted")
	}
}

// TestRunShardedSmoke routes the per-key linearizability checker through
// the range-sharded map: with -keys spanning several shards the rounds
// exercise routing, splitter-boundary keys, and the quiescent structural
// check (which includes the routing invariant), and every history must
// still linearize — sharding has to be invisible to the checker.
func TestRunShardedSmoke(t *testing.T) {
	err := run([]string{"-impl", "fr-skiplist", "-threads", "4", "-ops", "200",
		"-keys", "16", "-rounds", "2", "-shards", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunShardedBatchSmoke combines -shards with -batch: sorted batches
// split into per-shard sub-runs, and each element is still checked
// individually.
func TestRunShardedBatchSmoke(t *testing.T) {
	err := run([]string{"-impl", "fr-skiplist", "-threads", "4", "-ops", "256",
		"-keys", "128", "-rounds", "2", "-shards", "4", "-batch", "16"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunShardedBadFlags checks -shards rejects non-skiplist
// implementations and non-power-of-two counts up front.
func TestRunShardedBadFlags(t *testing.T) {
	err := run([]string{"-impl", "fr-list", "-rounds", "1", "-shards", "4"})
	if err == nil || !strings.Contains(err.Error(), "fr-skiplist") {
		t.Fatalf("err = %v, want shards-impl error", err)
	}
	err = run([]string{"-impl", "fr-skiplist", "-rounds", "1", "-shards", "3"})
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("err = %v, want power-of-two error", err)
	}
}

func TestRunSmoke(t *testing.T) {
	err := run([]string{"-impl", "fr-list", "-threads", "4", "-ops", "100",
		"-keys", "8", "-rounds", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunBatchSmoke drives both primary structures through the -batch
// mode: batches wide enough to span several fingers' worth of hops, a key
// space large enough to keep per-key segments checkable, and full
// linearizability checking of every batch element.
func TestRunBatchSmoke(t *testing.T) {
	for _, impl := range []string{"fr-list", "fr-skiplist"} {
		err := run([]string{"-impl", impl, "-threads", "4", "-ops", "256",
			"-keys", "128", "-rounds", "2", "-batch", "16"})
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
	}
}

// TestRunBatchUnsupportedImpl checks -batch refuses implementations
// without a batch API instead of silently ignoring the flag.
func TestRunBatchUnsupportedImpl(t *testing.T) {
	err := run([]string{"-impl", "harris-list", "-rounds", "1", "-batch", "8"})
	if err == nil || !strings.Contains(err.Error(), "batch") {
		t.Fatalf("err = %v, want batch-unsupported error", err)
	}
}

// TestRunServerSelfSmoke is the end-to-end serving gate: several
// concurrent connections (one per worker) drive pipelined mixed workloads
// through a live TCP server, every history must linearize, and each
// round's graceful drain must complete with zero dropped in-flight
// responses. scripts/check.sh runs this under -race.
func TestRunServerSelfSmoke(t *testing.T) {
	err := run([]string{"-server", "self", "-threads", "6", "-ops", "300",
		"-keys", "64", "-rounds", "2", "-batch", "8", "-shards", "4"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunServerSelfWithTelemetry adds the observability path on top: the
// in-process server and its store share the recorder, so the run must
// count coalesced commands without disturbing the checking.
func TestRunServerSelfWithTelemetry(t *testing.T) {
	err := run([]string{"-server", "self", "-threads", "4", "-ops", "200",
		"-keys", "64", "-rounds", "2", "-batch", "8",
		"-telemetry-addr", "127.0.0.1:0", "-telemetry-every", "1"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunServerBadShards(t *testing.T) {
	err := run([]string{"-server", "self", "-rounds", "1", "-shards", "3"})
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("err = %v, want power-of-two error", err)
	}
}

// TestRunRecycleSmoke drives the primary structures with EBR-backed node
// recycling live: small key space, heavy churn, so node identities repeat
// across the checked histories — point ops, batches, and the sharded
// routing layer all stay linearizable over reused memory.
func TestRunRecycleSmoke(t *testing.T) {
	for _, args := range [][]string{
		{"-impl", "fr-list", "-threads", "4", "-ops", "300", "-keys", "8", "-rounds", "2", "-recycle"},
		{"-impl", "fr-skiplist", "-threads", "4", "-ops", "300", "-keys", "8", "-rounds", "2", "-recycle"},
		{"-impl", "fr-skiplist", "-threads", "4", "-ops", "256", "-keys", "128", "-rounds", "2", "-batch", "16", "-recycle"},
		{"-impl", "fr-skiplist", "-threads", "4", "-ops", "300", "-keys", "16", "-rounds", "2", "-shards", "4", "-recycle"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

// TestRunRecycleServerSelf: the -server self store runs WithRecycling; the
// serving layer's coalesced batches execute over recycled nodes and every
// response still linearizes, with the drain completing cleanly.
func TestRunRecycleServerSelf(t *testing.T) {
	err := run([]string{"-server", "self", "-threads", "4", "-ops", "400",
		"-keys", "32", "-rounds", "2", "-batch", "8", "-recycle"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunRecycleBadFlags: -recycle refuses the baselines (no reclamation
// seam) and external servers (their store is not ours to configure).
func TestRunRecycleBadFlags(t *testing.T) {
	err := run([]string{"-impl", "harris-list", "-rounds", "1", "-recycle"})
	if err == nil || !strings.Contains(err.Error(), "-recycle") {
		t.Fatalf("err = %v, want recycle-impl error", err)
	}
	err = run([]string{"-server", "127.0.0.1:1", "-rounds", "1", "-recycle"})
	if err == nil || !strings.Contains(err.Error(), "self") {
		t.Fatalf("err = %v, want recycle-server error", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-impl", "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown -impl") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunWithTelemetry exercises the full observability path: a run with
// -telemetry-addr must attach the recorder, serve the endpoints, and print
// per-interval deltas without disturbing the linearizability checking.
func TestRunWithTelemetry(t *testing.T) {
	err := run([]string{"-impl", "fr-skiplist", "-threads", "4", "-ops", "100",
		"-keys", "8", "-rounds", "2", "-telemetry-addr", "127.0.0.1:0",
		"-telemetry-every", "1"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryScrapeDuringStress is the acceptance check from the issue:
// scraping /metrics while a telemetry-attached structure is being hammered
// must show nonzero C&S attempts, backlink traversals, and latency buckets.
func TestTelemetryScrapeDuringStress(t *testing.T) {
	tel := ltel.New("stress-scrape", ltel.WithSampleEvery(1)).PublishExpvar()
	defer tel.Unregister()
	d, err := newChecked("fr-skiplist", 0, 16, false, tel)
	if err != nil {
		t.Fatal(err)
	}
	bound, stop, err := obshttp.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Contended workload: concurrent deletes of shared keys force backlink
	// traversals.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			k := i % 8
			d.insert(k)
			d.remove(k)
			d.search(k)
		}
	}()
	<-done

	body := httpGet(t, "http://"+bound+"/metrics")
	for _, want := range []string{
		`lockfree_cas_attempts_total{structure="stress-scrape"}`,
		`lockfree_ops_total{structure="stress-scrape",op="insert"}`,
		`lockfree_op_latency_seconds_bucket{structure="stress-scrape",op="insert",le=`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	s := tel.Snapshot()
	if s.Counters.CASAttempts == 0 {
		t.Fatalf("no C&S attempts recorded: %+v", s.Counters)
	}
	if vars := httpGet(t, "http://"+bound+"/debug/vars"); !strings.Contains(vars, `"lockfree:stress-scrape"`) {
		t.Fatal("/debug/vars missing the published instance")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
