package main

import (
	"strings"
	"testing"
)

func TestNewCheckedKnownImpls(t *testing.T) {
	for _, impl := range []string{
		"fr-list", "fr-skiplist", "harris-list", "harris-skiplist",
		"valois-list", "noflag-list",
	} {
		d, err := newChecked(impl)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if !d.insert(1) {
			t.Fatalf("%s: insert failed", impl)
		}
		if !d.search(1) {
			t.Fatalf("%s: search missed", impl)
		}
		if !d.remove(1) {
			t.Fatalf("%s: remove failed", impl)
		}
		if err := d.validate(); err != nil {
			t.Fatalf("%s: validate: %v", impl, err)
		}
	}
}

func TestNewCheckedUnknownImpl(t *testing.T) {
	if _, err := newChecked("btree"); err == nil {
		t.Fatal("unknown implementation accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	err := run([]string{"-impl", "fr-list", "-threads", "4", "-ops", "100",
		"-keys", "8", "-rounds", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-impl", "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown -impl") {
		t.Fatalf("err = %v", err)
	}
}
