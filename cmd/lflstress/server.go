package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/instrument"
	"repro/internal/server"
	"repro/lockfree"
	ltel "repro/lockfree/telemetry"
)

// runServerMode is the -server client: it drives a lflserver over TCP with
// the same mixed workload and checks every response against the
// linearizability checker. Each worker owns one connection and writes its
// commands in pipelined runs, so the server-side coalescer turns them into
// sorted batch calls; every command is recorded with Begin before its
// pipeline hits the wire and End after its response is read, so the
// recorded window contains the server-side linearization point and the
// history check stays sound.
//
// addr "self" starts a fresh in-process server per round on a loopback
// port and, after the workers close, asserts the graceful drain completes
// with zero dropped in-flight responses. Any other addr drives an external
// server; each round then shifts its keys by round*keyRange so rounds do
// not see each other's leftovers, and sweeps its slice with DELs first so
// state from before the run (the checker assumes an empty history per key)
// cannot fail round 0.
func runServerMode(addr string, threads, ops, keyRange, rounds int, seed uint64, pipeline, shards int, recycle, groupBatch bool, tel *ltel.Telemetry, telEvery int) error {
	if pipeline <= 0 {
		pipeline = 16
	}
	if shards == 0 {
		shards = 4
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return fmt.Errorf("-shards %d: shard count must be a power of two", shards)
	}
	if recycle && addr != "self" {
		return fmt.Errorf("-recycle with -server applies only to \"self\" (the store of an external server is not ours to configure)")
	}
	if groupBatch && addr != "self" {
		return fmt.Errorf("-groupbatch with -server applies only to \"self\" (the execution mode of an external server is not ours to configure)")
	}
	// In self mode one Obs spans every round's server, so the per-verb
	// latency histograms accumulate across rounds and the periodic delta
	// can report serving-layer p99/p999 alongside the structure counters.
	var obs *server.Obs
	var prevVerb [server.NumVerbs]instrument.HistSnapshot
	if tel != nil && addr == "self" {
		obs = server.NewObs(server.ObsConfig{})
	}
	totalOps := 0
	var totalRecycled, totalDropped uint64
	for round := 0; round < rounds; round++ {
		target, keyBase := addr, round*keyRange
		var srv *server.Server
		var roundStore server.Store
		if addr == "self" {
			var opts []lockfree.Option
			if tel != nil {
				opts = append(opts, lockfree.WithTelemetry(tel))
			}
			if recycle {
				opts = append(opts, lockfree.WithRecycling())
			}
			var store server.Store
			if shards > 1 {
				store = lockfree.NewShardedSkipList[int, string](
					lockfree.EqualSplitters(0, keyRange, shards), opts...)
			} else {
				store = lockfree.NewSkipList[int, string](opts...)
			}
			roundStore = store
			srv = server.New(server.Config{GroupBatch: groupBatch}, store)
			if tel != nil {
				srv.SetTelemetry(tel.Recorder())
			}
			if obs != nil {
				srv.SetObs(obs)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go srv.Serve(ln)
			target, keyBase = ln.Addr().String(), 0
		} else if err := clearKeys(target, keyBase, keyRange); err != nil {
			return fmt.Errorf("round %d: clearing [%d, %d): %w", round, keyBase, keyBase+keyRange, err)
		}

		rec := history.NewRecorder(threads, ops)
		errs := make([]error, threads)
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(seed+uint64(round), uint64(w)))
				errs[w] = runServerWorker(target, rec.Thread(w), rng, ops, keyRange, keyBase, pipeline)
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				return fmt.Errorf("round %d worker %d: %w", round, w, err)
			}
		}
		if srv != nil {
			// The zero-dropped-responses half of the guarantee is asserted by
			// every worker above; here the drain itself must finish cleanly.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := srv.Shutdown(ctx)
			cancel()
			if err != nil {
				return fmt.Errorf("round %d: graceful drain incomplete: %w", round, err)
			}
			if recycle {
				// The drained server is quiescent: flush the store's domain
				// and fold its identity-reuse totals into the run summary.
				rec := roundStore.(interface {
					ForceReclaim()
					RecycleCounts() (uint64, uint64)
				})
				for i := 0; i < 6; i++ {
					rec.ForceReclaim()
				}
				r, d := rec.RecycleCounts()
				totalRecycled += r
				totalDropped += d
			}
		}
		if err := history.Check(rec.Ops()); err != nil {
			if _, dense := err.(*history.ErrTooDense); dense {
				fmt.Printf("round %d: %v (inconclusive; lower -ops or raise -keys)\n", round, err)
				continue
			}
			return fmt.Errorf("round %d: %w", round, err)
		}
		totalOps += threads * ops
		if tel != nil && telEvery > 0 && (round+1)%telEvery == 0 {
			printTelemetryDelta(round+1, tel.Delta())
			if obs != nil {
				printVerbLatencyDelta(obs, &prevVerb)
			}
		}
	}
	fmt.Printf("ok: server %s passed %d rounds, %d checked operations over TCP, all histories linearizable\n",
		addr, rounds, totalOps)
	if recycle {
		fmt.Printf("ok: node recycling live in the served store: %d node identities reused, %d dropped to GC\n",
			totalRecycled, totalDropped)
		if totalRecycled == 0 {
			return fmt.Errorf("-recycle server run reused no node identities (raise -ops or lower -keys)")
		}
	}
	return nil
}

// runServerWorker drives one connection for one round: pipelined runs of
// up to `pipeline` mixed commands, every response matched to its request
// positionally. A missing response — a dropped in-flight command — is an
// error, which is what makes the -server self rounds a graceful-drain
// check as well as a linearizability one.
func runServerWorker(target string, th *history.Thread, rng *rand.Rand, ops, keyRange, keyBase, pipeline int) error {
	nc, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	var req bytes.Buffer
	pend := make([]history.Op, 0, pipeline)
	for i := 0; i < ops; {
		c := min(pipeline, ops-i)
		req.Reset()
		pend = pend[:0]
		for j := 0; j < c; j++ {
			k := int(rng.Uint64N(uint64(keyRange)))
			var kind history.Kind
			switch rng.Uint64N(3) {
			case 0:
				kind = history.KindInsert
				fmt.Fprintf(&req, "SET %d v\n", keyBase+k)
			case 1:
				kind = history.KindDelete
				fmt.Fprintf(&req, "DEL %d\n", keyBase+k)
			default:
				kind = history.KindSearch
				fmt.Fprintf(&req, "GET %d\n", keyBase+k)
			}
			pend = append(pend, th.Begin(kind, k))
		}
		if _, err := nc.Write(req.Bytes()); err != nil {
			return fmt.Errorf("write: %w", err)
		}
		for j := 0; j < c; j++ {
			line, err := br.ReadString('\n')
			if err != nil {
				return fmt.Errorf("response %d/%d dropped in flight: %w", j, c, err)
			}
			ok, err := parseReply(strings.TrimSuffix(line, "\n"))
			if err != nil {
				return err
			}
			th.End(pend[j], ok)
		}
		i += c
	}
	nc.Write([]byte("QUIT\n"))
	br.ReadString('\n')
	return nil
}

// clearKeys deletes every key in [keyBase, keyBase+keyRange) on an
// external server before a round records anything, in pipelined chunks.
func clearKeys(target string, keyBase, keyRange int) error {
	nc, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	var req bytes.Buffer
	for lo := keyBase; lo < keyBase+keyRange; lo += 256 {
		hi := min(lo+256, keyBase+keyRange)
		req.Reset()
		for k := lo; k < hi; k++ {
			fmt.Fprintf(&req, "DEL %d\n", k)
		}
		if _, err := nc.Write(req.Bytes()); err != nil {
			return err
		}
		for k := lo; k < hi; k++ {
			if _, err := br.ReadString('\n'); err != nil {
				return err
			}
		}
	}
	return nil
}

// printVerbLatencyDelta reports the serving layer's per-verb latency over
// the interval since the previous call: count, mean, and the p50/p99/p999
// tail quantiles out of the per-verb histograms. prev carries the last
// snapshot so each interval reports its own traffic, not the cumulative
// run.
func printVerbLatencyDelta(obs *server.Obs, prev *[server.NumVerbs]instrument.HistSnapshot) {
	for v := 0; v < server.NumVerbs; v++ {
		cur := obs.VerbLatency(server.Verb(v))
		d := cur.Sub(prev[v])
		prev[v] = cur
		if d.Count == 0 {
			continue
		}
		line := fmt.Sprintf("[telemetry]   verb %-5s n=%-7d mean=%v",
			server.Verb(v).Label(), d.Count, time.Duration(int64(d.Mean())))
		for _, q := range []struct {
			name string
			q    float64
		}{{"p50", 0.50}, {"p99", 0.99}, {"p999", 0.999}} {
			if ns, ok := d.Quantile(q.q); ok {
				line += fmt.Sprintf(" %s=%v", q.name, time.Duration(ns))
			}
		}
		fmt.Println(line)
	}
}

// parseReply maps a response line to the boolean the history checker
// records: integer and value replies carry the result, an -ERR means the
// client sent something the protocol rejects — a driver bug, not a
// checkable outcome.
func parseReply(line string) (bool, error) {
	switch {
	case strings.HasPrefix(line, ":"):
		return line == ":1", nil
	case strings.HasPrefix(line, "$"):
		return true, nil
	case line == "_":
		return false, nil
	default:
		return false, fmt.Errorf("unexpected reply %q", line)
	}
}
