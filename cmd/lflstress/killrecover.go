// killrecover.go is the -killrecover mode: a crash-durability stress.
// The parent re-execs itself as a wal-sync child server, hammers it with
// pipelined SET/DEL bursts, SIGKILLs it mid-burst, restarts it from the
// same WAL directory, and verifies the recovered state against a
// per-key admissibility model:
//
//   - every *acked* operation's effect must survive (wal-sync holds the
//     reply flush until the mutation is fsync-durable, so an ack the
//     client has read is a durability contract);
//   - the unacked suffix of each key's operations may have applied any
//     prefix (applied + logged + fsynced, but the reply never reached
//     the client before the kill) — the recovered state must match the
//     acked state with 0..n of the key's unacked operations applied, in
//     program order, and nothing else.
//
// Workers own disjoint key spans, so each key's operation sequence is
// one connection's program order — which the server guarantees equals
// log order — making the per-key model exact.
package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/wal"
	"repro/lockfree"
)

const childBanner = "child-server: serving on "

// runChildServer is the re-exec'd server side of -killrecover: recover
// from walDir, serve wal-sync on an ephemeral port, print the address
// for the parent to scan, and run until killed.
func runChildServer(walDir string) error {
	if walDir == "" {
		return errors.New("-child-server needs -wal-dir")
	}
	store := lockfree.NewShardedSkipList[int, string](lockfree.EqualSplitters(0, 1<<20, 4))
	snapLSN, _, err := snapshot.Restore(walDir, func(k int64, v string) bool {
		return store.Insert(int(k), v)
	})
	if err != nil && !errors.Is(err, snapshot.ErrNoSnapshot) {
		return fmt.Errorf("snapshot restore: %w", err)
	}
	l, err := wal.Open(wal.Options{Dir: walDir, FsyncWindow: time.Millisecond})
	if err != nil {
		return fmt.Errorf("wal open: %w", err)
	}
	defer l.Close()
	if _, err := l.Replay(snapLSN, func(op wal.Op, seq uint64, key int64, val []byte) error {
		switch op {
		case wal.OpSet:
			store.Insert(int(key), string(val))
		case wal.OpDel:
			store.Delete(int(key))
		}
		return nil
	}); err != nil {
		return fmt.Errorf("wal replay: %w", err)
	}
	srv := server.New(server.Config{Durability: server.DurabilitySync, WAL: l}, store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Println(childBanner + ln.Addr().String())
	return srv.Serve(ln)
}

// valState is a key's value or absence.
type valState struct {
	present bool
	val     string
}

// pendOp is one issued-but-unacked operation.
type pendOp struct {
	set bool
	val string
}

// keyModel is one key's durability model at kill time.
type keyModel struct {
	acked   valState // state after the last acked operation
	pending []pendOp // issued operations whose replies never arrived
	touched bool     // at least one op was acked (model is grounded)
}

// admissibleStates returns every state the recovered store may hold for
// this key: the acked state with each prefix of the unacked suffix
// applied under insert-if-absent / delete semantics.
func (m *keyModel) admissibleStates() []valState {
	states := []valState{m.acked}
	cur := m.acked
	for _, p := range m.pending {
		if p.set {
			if !cur.present {
				cur = valState{present: true, val: p.val}
			}
		} else {
			cur = valState{}
		}
		states = append(states, cur)
	}
	return states
}

// runKillRecover drives `rounds` kill-and-recover rounds. Each worker
// owns the key span [w*keyRange, (w+1)*keyRange).
func runKillRecover(threads, ops, keyRange, rounds int, seed uint64, pipeline int) error {
	if pipeline <= 0 {
		pipeline = 16
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	totalAcked := 0
	for round := 0; round < rounds; round++ {
		acked, err := killRecoverRound(exe, round, threads, ops, keyRange, seed, pipeline)
		if err != nil {
			return fmt.Errorf("round %d: %w", round, err)
		}
		totalAcked += acked
	}
	fmt.Printf("ok: killrecover passed %d rounds, %d acked operations survived SIGKILL + recovery\n",
		rounds, totalAcked)
	return nil
}

func killRecoverRound(exe string, round, threads, ops, keyRange int, seed uint64, pipeline int) (ackedOps int, err error) {
	walDir, err := os.MkdirTemp("", "lflstress-killrecover-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(walDir)

	child, addr, err := spawnChild(exe, walDir)
	if err != nil {
		return 0, err
	}
	defer func() {
		child.Process.Kill()
		child.Wait()
	}()

	// Workers run until the kill severs their connections; the parent
	// pulls the trigger once enough operations are acked that the burst
	// is demonstrably mid-flight.
	var ackedCount atomic.Int64
	killAt := int64(threads * pipeline * 8)
	models := make([]map[int]*keyModel, threads)
	var wg sync.WaitGroup
	workersDone := make(chan struct{})
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed+uint64(round), uint64(w)))
			models[w] = killWorker(addr, w, keyRange, ops, pipeline, rng, &ackedCount)
		}(w)
	}
	go func() {
		wg.Wait()
		close(workersDone)
	}()
	// Trigger once the burst is demonstrably mid-flight; if the ops
	// budget runs dry first, kill anyway (the round degrades to a
	// quiescent-crash check rather than hanging).
	for ackedCount.Load() < killAt {
		select {
		case <-workersDone:
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync flush
		return 0, fmt.Errorf("kill: %w", err)
	}
	child.Wait()
	wg.Wait()

	// Restart from disk and verify every key against its model.
	start := time.Now()
	child2, addr2, err := spawnChild(exe, walDir)
	if err != nil {
		return 0, fmt.Errorf("restart: %w", err)
	}
	defer func() {
		child2.Process.Kill()
		child2.Wait()
	}()
	recovery := time.Since(start)

	nc, err := net.Dial("tcp", addr2)
	if err != nil {
		return 0, err
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	checkedKeys, grounded := 0, 0
	for w := 0; w < threads; w++ {
		for k, m := range models[w] {
			got, err := getState(nc, br, k)
			if err != nil {
				return 0, err
			}
			okState := false
			for _, s := range m.admissibleStates() {
				if s == got {
					okState = true
					break
				}
			}
			if !okState {
				return 0, fmt.Errorf("key %d: recovered state {present:%v val:%q} not admissible (acked {present:%v val:%q}, %d unacked)",
					k, got.present, got.val, m.acked.present, m.acked.val, len(m.pending))
			}
			checkedKeys++
			if m.touched {
				grounded++
			}
		}
	}
	acked := int(ackedCount.Load())
	if acked == 0 || grounded == 0 {
		return 0, fmt.Errorf("vacuous round: %d acked ops, %d grounded keys — the kill landed before any burst", acked, grounded)
	}
	fmt.Printf("round %d: SIGKILL after %d acked ops; recovery in %v; %d keys verified (%d with acked history)\n",
		round, acked, recovery.Round(time.Millisecond), checkedKeys, grounded)
	return acked, nil
}

// spawnChild re-execs this binary as a -child-server over walDir and
// scans its stdout for the serving address.
func spawnChild(exe, walDir string) (*exec.Cmd, string, error) {
	cmd := exec.Command(exe, "-child-server", "-wal-dir", walDir)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(out)
	addrc := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, childBanner) {
				select {
				case addrc <- strings.TrimPrefix(line, childBanner):
				default:
				}
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, addr, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", errors.New("child server did not report an address within 10s")
	}
}

// killWorker hammers its own key span [w*keyRange, (w+1)*keyRange) with
// pipelined SET/DEL chunks until the connection dies (the kill) or the
// ops budget runs out, maintaining each key's durability model. Every
// chunk's ops are appended to their keys' pending lists before the
// write, acked in reply order (the front of the pending list, since
// replies are positional), and folded into the acked state using the
// server's actual result.
func killWorker(target string, w, keyRange, ops, pipeline int, rng *rand.Rand, ackedCount *atomic.Int64) map[int]*keyModel {
	models := make(map[int]*keyModel, keyRange)
	model := func(k int) *keyModel {
		m := models[k]
		if m == nil {
			m = &keyModel{}
			models[k] = m
		}
		return m
	}
	nc, err := net.Dial("tcp", target)
	if err != nil {
		return models
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	base := w * keyRange

	type issued struct {
		k   int
		set bool
		val string
	}
	var req bytes.Buffer
	chunk := make([]issued, 0, pipeline)
	for opIdx := 0; opIdx < ops; {
		req.Reset()
		chunk = chunk[:0]
		c := min(pipeline, ops-opIdx)
		for j := 0; j < c; j++ {
			k := base + int(rng.Uint64N(uint64(keyRange)))
			op := issued{k: k, set: rng.Uint64N(2) == 0}
			if op.set {
				op.val = fmt.Sprintf("w%d.%d", w, opIdx)
				fmt.Fprintf(&req, "SET %d %s\n", k, op.val)
			} else {
				fmt.Fprintf(&req, "DEL %d\n", k)
			}
			chunk = append(chunk, op)
			model(k).pending = append(model(k).pending, pendOp{set: op.set, val: op.val})
			opIdx++
		}
		// TCP delivers in order: a torn write truncates the command
		// stream at a boundary the server re-syncs past, so the issued
		// ops that actually executed are a prefix — exactly what the
		// pending-prefix admissibility models.
		nc.SetDeadline(time.Now().Add(15 * time.Second))
		if _, err := nc.Write(req.Bytes()); err != nil {
			return models
		}
		for _, op := range chunk {
			line, err := br.ReadString('\n')
			if err != nil {
				return models // killed mid-burst; the rest stays pending
			}
			applied := strings.TrimSuffix(line, "\n") == ":1"
			m := models[op.k]
			m.pending = m.pending[1:]
			m.touched = true
			if applied {
				if op.set {
					m.acked = valState{present: true, val: op.val}
				} else {
					m.acked = valState{}
				}
			}
			ackedCount.Add(1)
		}
	}
	return models
}

// getState reads one key's recovered state from the restarted server.
func getState(nc net.Conn, br *bufio.Reader, k int) (valState, error) {
	if _, err := fmt.Fprintf(nc, "GET %d\n", k); err != nil {
		return valState{}, err
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return valState{}, err
	}
	line = strings.TrimSuffix(line, "\n")
	switch {
	case line == "_":
		return valState{}, nil
	case strings.HasPrefix(line, "$"):
		return valState{present: true, val: line[1:]}, nil
	default:
		return valState{}, fmt.Errorf("GET %d: unexpected reply %q", k, line)
	}
}
