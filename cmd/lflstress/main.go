// Command lflstress hammers a chosen implementation with a concurrent
// workload, records the full operation history, and checks it for
// linearizability (the correctness condition of the paper's Section 3.3).
// It also validates structural invariants in the quiescent end state.
//
// Usage:
//
//	lflstress [-impl fr-skiplist] [-threads 8] [-ops 2000] [-keys 16]
//	          [-rounds 20] [-seed 1] [-telemetry-addr HOST:PORT]
//	          [-telemetry-every 5]
//
// With -telemetry-addr, the fr-list and fr-skiplist implementations run
// with the live telemetry layer attached (exact recording, sampling
// period 1) and the Prometheus /metrics and expvar /debug/vars endpoints
// are served for the duration of the run; a per-interval delta summary is
// printed every -telemetry-every rounds.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/harris"
	"repro/internal/history"
	"repro/internal/noflag"
	"repro/internal/obshttp"
	"repro/internal/sundell"
	"repro/internal/valois"
	ltel "repro/lockfree/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lflstress:", err)
		os.Exit(1)
	}
}

// checked is the minimal interface the stress driver needs; results are
// booleans so the history checker can validate them.
type checked interface {
	insert(k int) bool
	remove(k int) bool
	search(k int) bool
	validate() error
}

type frList struct{ l *core.List[int, int] }

func (d frList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d frList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d frList) validate() error   { return d.l.CheckInvariants() }

type frSkip struct{ l *core.SkipList[int, int] }

func (d frSkip) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frSkip) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d frSkip) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d frSkip) validate() error   { return d.l.CheckStructure() }

type harrisList struct{ l *harris.List[int, int] }

func (d harrisList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d harrisList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d harrisList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d harrisList) validate() error   { return d.l.CheckInvariants() }

type harrisSkip struct{ l *harris.SkipList[int, int] }

func (d harrisSkip) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d harrisSkip) remove(k int) bool { return d.l.Delete(nil, k) }
func (d harrisSkip) search(k int) bool { return d.l.Contains(nil, k) }
func (d harrisSkip) validate() error   { return d.l.CheckStructure() }

type valoisList struct{ l *valois.List[int, int] }

func (d valoisList) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d valoisList) remove(k int) bool { return d.l.Delete(nil, k) }
func (d valoisList) search(k int) bool { return d.l.Contains(nil, k) }
func (d valoisList) validate() error   { return d.l.CheckInvariants() }

type sundellSkip struct{ l *sundell.SkipList[int, int] }

func (d sundellSkip) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d sundellSkip) remove(k int) bool { return d.l.Delete(nil, k) }
func (d sundellSkip) search(k int) bool { return d.l.Contains(nil, k) }
func (d sundellSkip) validate() error   { return nil }

type noflagList struct{ l *noflag.List[int, int] }

func (d noflagList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d noflagList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d noflagList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d noflagList) validate() error   { return nil }

// newChecked builds the implementation under test. The primary structures
// accept an optional telemetry instance (nil for none); the baselines have
// no telemetry seam, so the flag only affects fr-list and fr-skiplist.
func newChecked(impl string, tel *ltel.Telemetry) (checked, error) {
	switch impl {
	case "fr-list":
		l := core.NewList[int, int]()
		if tel != nil {
			l.SetTelemetry(tel.Recorder())
		}
		return frList{l}, nil
	case "fr-skiplist":
		l := core.NewSkipList[int, int]()
		if tel != nil {
			l.SetTelemetry(tel.Recorder())
		}
		return frSkip{l}, nil
	case "harris-list":
		return harrisList{harris.NewList[int, int]()}, nil
	case "harris-skiplist":
		return harrisSkip{harris.NewSkipList[int, int](0, nil)}, nil
	case "valois-list":
		return valoisList{valois.NewList[int, int]()}, nil
	case "noflag-list":
		return noflagList{noflag.NewList[int, int]()}, nil
	case "sundell-skiplist":
		return sundellSkip{sundell.New[int, int](0, nil)}, nil
	default:
		return nil, fmt.Errorf("unknown -impl %q", impl)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lflstress", flag.ContinueOnError)
	impl := fs.String("impl", "fr-skiplist", "implementation: fr-list, fr-skiplist, harris-list, harris-skiplist, sundell-skiplist, valois-list, noflag-list")
	threads := fs.Int("threads", 8, "concurrent workers")
	ops := fs.Int("ops", 2000, "operations per worker per round")
	keys := fs.Int("keys", 16, "key-space size (small = high contention)")
	rounds := fs.Int("rounds", 20, "independent rounds")
	seed := fs.Uint64("seed", 1, "base random seed")
	telAddr := fs.String("telemetry-addr", "", "serve /metrics and /debug/vars on this address; attaches telemetry to fr-* impls")
	telEvery := fs.Int("telemetry-every", 5, "print a telemetry delta summary every N rounds (with -telemetry-addr)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tel *ltel.Telemetry
	if *telAddr != "" {
		// Exact recording: a stress run wants complete histograms, not a
		// sampled estimate.
		tel = ltel.New("lflstress", ltel.WithSampleEvery(1)).PublishExpvar()
		defer tel.Unregister()
		bound, stop, err := obshttp.Serve(*telAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("telemetry: serving /metrics and /debug/vars on http://%s\n", bound)
	}

	totalOps := 0
	for round := 0; round < *rounds; round++ {
		d, err := newChecked(*impl, tel)
		if err != nil {
			return err
		}
		rec := history.NewRecorder(*threads, *ops)
		var wg sync.WaitGroup
		for w := 0; w < *threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := rec.Thread(w)
				rng := rand.New(rand.NewPCG(*seed+uint64(round), uint64(w)))
				for i := 0; i < *ops; i++ {
					k := int(rng.Uint64N(uint64(*keys)))
					switch rng.Uint64N(3) {
					case 0:
						o := th.Begin(history.KindInsert, k)
						th.End(o, d.insert(k))
					case 1:
						o := th.Begin(history.KindDelete, k)
						th.End(o, d.remove(k))
					default:
						o := th.Begin(history.KindSearch, k)
						th.End(o, d.search(k))
					}
				}
			}(w)
		}
		wg.Wait()
		if err := d.validate(); err != nil {
			return fmt.Errorf("round %d: structural invariant violated: %w", round, err)
		}
		if err := history.Check(rec.Ops()); err != nil {
			if _, dense := err.(*history.ErrTooDense); dense {
				fmt.Printf("round %d: %v (inconclusive; lower -ops or raise -keys)\n", round, err)
				continue
			}
			return fmt.Errorf("round %d: %w", round, err)
		}
		totalOps += *threads * *ops
		if tel != nil && *telEvery > 0 && (round+1)%*telEvery == 0 {
			printTelemetryDelta(round+1, tel.Delta())
		}
	}
	fmt.Printf("ok: %s passed %d rounds, %d checked operations, all histories linearizable\n",
		*impl, *rounds, totalOps)
	return nil
}

// printTelemetryDelta summarizes the live metrics accumulated since the
// previous interval: per-op throughput and latency quantiles plus the
// paper's essential-step counters (Section 3.4 accounting).
func printTelemetryDelta(round int, s ltel.Snapshot) {
	fmt.Printf("[telemetry] after round %d: ops=%d ess.steps/op=%.1f cas=%d/%d backlinks=%d\n",
		round, s.TotalOps(), s.EssentialStepsPerOp(),
		s.Counters.CASSuccesses, s.Counters.CASAttempts, s.Counters.BacklinkTraversals)
	for op := ltel.Op(0); op < ltel.NumOps; op++ {
		o := s.Ops[op]
		if o.Count == 0 {
			continue
		}
		line := fmt.Sprintf("[telemetry]   %-7s n=%-7d mean=%v", op, o.Count, o.MeanLatency())
		if p50, ok := o.LatencyQuantile(0.50); ok {
			line += fmt.Sprintf(" p50=%v", p50)
		}
		if p99, ok := o.LatencyQuantile(0.99); ok {
			line += fmt.Sprintf(" p99=%v", p99)
		}
		fmt.Println(line)
	}
}
