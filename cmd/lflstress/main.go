// Command lflstress hammers a chosen implementation with a concurrent
// workload, records the full operation history, and checks it for
// linearizability (the correctness condition of the paper's Section 3.3).
// It also validates structural invariants in the quiescent end state.
//
// Usage:
//
//	lflstress [-impl fr-skiplist] [-threads 8] [-ops 2000] [-keys 16]
//	          [-rounds 20] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/harris"
	"repro/internal/history"
	"repro/internal/noflag"
	"repro/internal/sundell"
	"repro/internal/valois"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lflstress:", err)
		os.Exit(1)
	}
}

// checked is the minimal interface the stress driver needs; results are
// booleans so the history checker can validate them.
type checked interface {
	insert(k int) bool
	remove(k int) bool
	search(k int) bool
	validate() error
}

type frList struct{ l *core.List[int, int] }

func (d frList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d frList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d frList) validate() error   { return d.l.CheckInvariants() }

type frSkip struct{ l *core.SkipList[int, int] }

func (d frSkip) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frSkip) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d frSkip) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d frSkip) validate() error   { return d.l.CheckStructure() }

type harrisList struct{ l *harris.List[int, int] }

func (d harrisList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d harrisList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d harrisList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d harrisList) validate() error   { return d.l.CheckInvariants() }

type harrisSkip struct{ l *harris.SkipList[int, int] }

func (d harrisSkip) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d harrisSkip) remove(k int) bool { return d.l.Delete(nil, k) }
func (d harrisSkip) search(k int) bool { return d.l.Contains(nil, k) }
func (d harrisSkip) validate() error   { return d.l.CheckStructure() }

type valoisList struct{ l *valois.List[int, int] }

func (d valoisList) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d valoisList) remove(k int) bool { return d.l.Delete(nil, k) }
func (d valoisList) search(k int) bool { return d.l.Contains(nil, k) }
func (d valoisList) validate() error   { return d.l.CheckInvariants() }

type sundellSkip struct{ l *sundell.SkipList[int, int] }

func (d sundellSkip) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d sundellSkip) remove(k int) bool { return d.l.Delete(nil, k) }
func (d sundellSkip) search(k int) bool { return d.l.Contains(nil, k) }
func (d sundellSkip) validate() error   { return nil }

type noflagList struct{ l *noflag.List[int, int] }

func (d noflagList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d noflagList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d noflagList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d noflagList) validate() error   { return nil }

func newChecked(impl string) (checked, error) {
	switch impl {
	case "fr-list":
		return frList{core.NewList[int, int]()}, nil
	case "fr-skiplist":
		return frSkip{core.NewSkipList[int, int]()}, nil
	case "harris-list":
		return harrisList{harris.NewList[int, int]()}, nil
	case "harris-skiplist":
		return harrisSkip{harris.NewSkipList[int, int](0, nil)}, nil
	case "valois-list":
		return valoisList{valois.NewList[int, int]()}, nil
	case "noflag-list":
		return noflagList{noflag.NewList[int, int]()}, nil
	case "sundell-skiplist":
		return sundellSkip{sundell.New[int, int](0, nil)}, nil
	default:
		return nil, fmt.Errorf("unknown -impl %q", impl)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lflstress", flag.ContinueOnError)
	impl := fs.String("impl", "fr-skiplist", "implementation: fr-list, fr-skiplist, harris-list, harris-skiplist, sundell-skiplist, valois-list, noflag-list")
	threads := fs.Int("threads", 8, "concurrent workers")
	ops := fs.Int("ops", 2000, "operations per worker per round")
	keys := fs.Int("keys", 16, "key-space size (small = high contention)")
	rounds := fs.Int("rounds", 20, "independent rounds")
	seed := fs.Uint64("seed", 1, "base random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	totalOps := 0
	for round := 0; round < *rounds; round++ {
		d, err := newChecked(*impl)
		if err != nil {
			return err
		}
		rec := history.NewRecorder(*threads, *ops)
		var wg sync.WaitGroup
		for w := 0; w < *threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := rec.Thread(w)
				rng := rand.New(rand.NewPCG(*seed+uint64(round), uint64(w)))
				for i := 0; i < *ops; i++ {
					k := int(rng.Uint64N(uint64(*keys)))
					switch rng.Uint64N(3) {
					case 0:
						o := th.Begin(history.KindInsert, k)
						th.End(o, d.insert(k))
					case 1:
						o := th.Begin(history.KindDelete, k)
						th.End(o, d.remove(k))
					default:
						o := th.Begin(history.KindSearch, k)
						th.End(o, d.search(k))
					}
				}
			}(w)
		}
		wg.Wait()
		if err := d.validate(); err != nil {
			return fmt.Errorf("round %d: structural invariant violated: %w", round, err)
		}
		if err := history.Check(rec.Ops()); err != nil {
			if _, dense := err.(*history.ErrTooDense); dense {
				fmt.Printf("round %d: %v (inconclusive; lower -ops or raise -keys)\n", round, err)
				continue
			}
			return fmt.Errorf("round %d: %w", round, err)
		}
		totalOps += *threads * *ops
	}
	fmt.Printf("ok: %s passed %d rounds, %d checked operations, all histories linearizable\n",
		*impl, *rounds, totalOps)
	return nil
}
