// Command lflstress hammers a chosen implementation with a concurrent
// workload, records the full operation history, and checks it for
// linearizability (the correctness condition of the paper's Section 3.3).
// It also validates structural invariants in the quiescent end state.
//
// Usage:
//
//	lflstress [-impl fr-skiplist] [-threads 8] [-ops 2000] [-keys 16]
//	          [-rounds 20] [-seed 1] [-batch N] [-shards S]
//	          [-server ADDR|self] [-groupbatch]
//	          [-telemetry-addr HOST:PORT] [-telemetry-every 5]
//
// With -server, lflstress becomes a network client: every worker opens its
// own TCP connection to a lflserver and issues its operations as pipelined
// runs (depth -batch, default 16), and every response is still checked for
// linearizability — the serving layer, like sharding, must be invisible to
// the checker. -server self starts a fresh in-process server per round
// (sharded by -shards, default 4) and additionally asserts that graceful
// shutdown drains with zero dropped in-flight responses. -groupbatch runs
// the self-mode servers in cross-connection group-batching mode, so the
// checker validates histories whose commands were merged and re-sorted
// across connections by the executor pool.
//
// With -shards S (a power of two), the fr-skiplist implementation runs
// behind the range-sharded map: the key space [0, keys) is split across S
// skip-list shards with evenly spaced splitters, and every checked
// operation — point or batch — routes through the splitter layer. The
// history checker is unchanged: sharding must be invisible to
// linearizability, which is exactly what the run verifies.
//
// With -telemetry-addr, the fr-list and fr-skiplist implementations run
// with the live telemetry layer attached (exact recording, sampling
// period 1) and the Prometheus /metrics and expvar /debug/vars endpoints
// are served for the duration of the run; a per-interval delta summary is
// printed every -telemetry-every rounds.
//
// With -killrecover, lflstress becomes a crash-durability stress: it
// re-execs itself as a wal-sync lflserver-equivalent child over a fresh
// WAL directory, hammers it with pipelined SET/DEL bursts over disjoint
// per-worker key spans, SIGKILLs it mid-burst, restarts it from the same
// directory, and verifies every key against a per-key admissibility
// model — every client-acked write must survive, and unacked in-flight
// suffixes may have applied any prefix. -batch sets the pipeline depth.
//
// With -batch N, workers issue their operations as sorted N-key batches
// through the finger-threaded batch API instead of one key at a time.
// Every batch element is still recorded and history-checked individually;
// with telemetry attached, the delta summary reports the finger hit rate.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"slices"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harris"
	"repro/internal/history"
	"repro/internal/noflag"
	"repro/internal/obshttp"
	"repro/internal/server"
	"repro/internal/sharded"
	"repro/internal/sundell"
	"repro/internal/valois"
	"repro/lockfree"
	ltel "repro/lockfree/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lflstress:", err)
		os.Exit(1)
	}
}

// checked is the minimal interface the stress driver needs; results are
// booleans so the history checker can validate them.
type checked interface {
	insert(k int) bool
	remove(k int) bool
	search(k int) bool
	validate() error
}

// batchChecked is the subset of implementations whose batch API the
// -batch mode can drive; only the primary structures have one.
type batchChecked interface {
	checked
	insertBatch(keys []int, res []bool)
	removeBatch(keys []int, res []bool)
	searchBatch(keys []int, res []bool)
}

type frList struct{ l *core.List[int, int] }

func (d frList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d frList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d frList) validate() error   { return d.l.CheckInvariants() }

func (d frList) insertBatch(keys []int, res []bool) {
	d.l.InsertBatch(nil, kvs(keys), res)
}
func (d frList) removeBatch(keys []int, res []bool) { d.l.DeleteBatch(nil, keys, res) }
func (d frList) searchBatch(keys []int, res []bool) { d.l.GetBatch(nil, keys, nil, res) }

type frSkip struct{ l *core.SkipList[int, int] }

func (d frSkip) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frSkip) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d frSkip) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d frSkip) validate() error   { return d.l.CheckStructure() }

func (d frSkip) insertBatch(keys []int, res []bool) {
	d.l.InsertBatch(nil, kvs(keys), res)
}
func (d frSkip) removeBatch(keys []int, res []bool) { d.l.DeleteBatch(nil, keys, res) }
func (d frSkip) searchBatch(keys []int, res []bool) { d.l.GetBatch(nil, keys, nil, res) }

type frSharded struct{ m *sharded.Map[int, int] }

func (d frSharded) insert(k int) bool { _, ok := d.m.Insert(nil, k, k); return ok }
func (d frSharded) remove(k int) bool { _, ok := d.m.Delete(nil, k); return ok }
func (d frSharded) search(k int) bool { return d.m.Search(nil, k) != nil }
func (d frSharded) validate() error   { return d.m.CheckStructure() }

func (d frSharded) insertBatch(keys []int, res []bool) {
	d.m.InsertBatch(nil, kvs(keys), res)
}
func (d frSharded) removeBatch(keys []int, res []bool) { d.m.DeleteBatch(nil, keys, res) }
func (d frSharded) searchBatch(keys []int, res []bool) { d.m.GetBatch(nil, keys, nil, res) }

func kvs(keys []int) []core.KV[int, int] {
	items := make([]core.KV[int, int], len(keys))
	for i, k := range keys {
		items[i] = core.KV[int, int]{Key: k, Value: k}
	}
	return items
}

type harrisList struct{ l *harris.List[int, int] }

func (d harrisList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d harrisList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d harrisList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d harrisList) validate() error   { return d.l.CheckInvariants() }

type harrisSkip struct{ l *harris.SkipList[int, int] }

func (d harrisSkip) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d harrisSkip) remove(k int) bool { return d.l.Delete(nil, k) }
func (d harrisSkip) search(k int) bool { return d.l.Contains(nil, k) }
func (d harrisSkip) validate() error   { return d.l.CheckStructure() }

type valoisList struct{ l *valois.List[int, int] }

func (d valoisList) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d valoisList) remove(k int) bool { return d.l.Delete(nil, k) }
func (d valoisList) search(k int) bool { return d.l.Contains(nil, k) }
func (d valoisList) validate() error   { return d.l.CheckInvariants() }

type sundellSkip struct{ l *sundell.SkipList[int, int] }

func (d sundellSkip) insert(k int) bool { return d.l.Insert(nil, k, k) }
func (d sundellSkip) remove(k int) bool { return d.l.Delete(nil, k) }
func (d sundellSkip) search(k int) bool { return d.l.Contains(nil, k) }
func (d sundellSkip) validate() error   { return nil }

type noflagList struct{ l *noflag.List[int, int] }

func (d noflagList) insert(k int) bool { _, ok := d.l.Insert(nil, k, k); return ok }
func (d noflagList) remove(k int) bool { _, ok := d.l.Delete(nil, k); return ok }
func (d noflagList) search(k int) bool { return d.l.Search(nil, k) != nil }
func (d noflagList) validate() error   { return nil }

// recycleChecked is the optional interface of implementations that can
// run with EBR-backed node recycling: the -recycle rounds drain their
// domains at round end and report how many node identities were reused —
// the histories the checker just validated really did contain repeats.
type recycleChecked interface {
	forceReclaim()
	recycleCounts() (recycled, dropped uint64)
}

func (d frList) forceReclaim() {
	for i := 0; i < 6; i++ {
		d.l.ForceReclaim(nil)
	}
}
func (d frList) recycleCounts() (uint64, uint64) { return d.l.RecycleCounts() }

func (d frSkip) forceReclaim() {
	for i := 0; i < 6; i++ {
		d.l.ForceReclaim(nil)
	}
}
func (d frSkip) recycleCounts() (uint64, uint64) { return d.l.RecycleCounts() }

func (d frSharded) forceReclaim() {
	for i := 0; i < 6; i++ {
		for s := 0; s < d.m.Shards(); s++ {
			d.m.Shard(s).ForceReclaim(nil)
		}
	}
}

func (d frSharded) recycleCounts() (recycled, dropped uint64) {
	for s := 0; s < d.m.Shards(); s++ {
		r, dr := d.m.Shard(s).RecycleCounts()
		recycled += r
		dropped += dr
	}
	return recycled, dropped
}

// newChecked builds the implementation under test. The primary structures
// accept an optional telemetry instance (nil for none); the baselines have
// no telemetry seam, so the flag only affects fr-list and fr-skiplist.
// shards > 0 runs fr-skiplist behind the range-sharded map, splitting the
// key space [0, keyRange) evenly across that many skip-list shards.
// recycle enables EBR-backed node recycling on the fr-* structures, so the
// linearizability check runs over histories where node identities repeat.
func newChecked(impl string, shards, keyRange int, recycle bool, tel *ltel.Telemetry) (checked, error) {
	if recycle && impl != "fr-list" && impl != "fr-skiplist" {
		return nil, fmt.Errorf("-recycle applies only to fr-list and fr-skiplist, not %q", impl)
	}
	if shards > 0 {
		if impl != "fr-skiplist" {
			return nil, fmt.Errorf("-shards applies only to fr-skiplist, not %q", impl)
		}
		if shards&(shards-1) != 0 {
			return nil, fmt.Errorf("-shards %d: shard count must be a power of two", shards)
		}
		var coreOpts []core.SkipListOption
		if recycle {
			coreOpts = append(coreOpts, core.WithRecycling())
		}
		m := sharded.New[int, int](lockfree.EqualSplitters(0, keyRange, shards), coreOpts...)
		if tel != nil {
			m.SetTelemetry(tel.Recorder())
		}
		return frSharded{m}, nil
	}
	switch impl {
	case "fr-list":
		l := core.NewList[int, int]()
		if recycle {
			l.EnableRecycling()
		}
		if tel != nil {
			l.SetTelemetry(tel.Recorder())
		}
		return frList{l}, nil
	case "fr-skiplist":
		var coreOpts []core.SkipListOption
		if recycle {
			coreOpts = append(coreOpts, core.WithRecycling())
		}
		l := core.NewSkipList[int, int](coreOpts...)
		if tel != nil {
			l.SetTelemetry(tel.Recorder())
		}
		return frSkip{l}, nil
	case "harris-list":
		return harrisList{harris.NewList[int, int]()}, nil
	case "harris-skiplist":
		return harrisSkip{harris.NewSkipList[int, int](0, nil)}, nil
	case "valois-list":
		return valoisList{valois.NewList[int, int]()}, nil
	case "noflag-list":
		return noflagList{noflag.NewList[int, int]()}, nil
	case "sundell-skiplist":
		return sundellSkip{sundell.New[int, int](0, nil)}, nil
	default:
		return nil, fmt.Errorf("unknown -impl %q", impl)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lflstress", flag.ContinueOnError)
	impl := fs.String("impl", "fr-skiplist", "implementation: fr-list, fr-skiplist, harris-list, harris-skiplist, sundell-skiplist, valois-list, noflag-list")
	threads := fs.Int("threads", 8, "concurrent workers")
	ops := fs.Int("ops", 2000, "operations per worker per round")
	keys := fs.Int("keys", 16, "key-space size (small = high contention)")
	rounds := fs.Int("rounds", 20, "independent rounds")
	seed := fs.Uint64("seed", 1, "base random seed")
	batch := fs.Int("batch", 0, "issue operations as sorted N-key batches through the finger-threaded batch API (fr-list/fr-skiplist only); every element is still history-checked, so raise -keys to keep per-key segments under the checker limit")
	shards := fs.Int("shards", 0, "run fr-skiplist behind the range-sharded map with this many shards (a power of two); 0 = unsharded")
	recycle := fs.Bool("recycle", false, "enable EBR-backed node recycling on the fr-* structures (and the -server self store): histories are then checked with node identities repeating")
	srvAddr := fs.String("server", "", "drive a lflserver over TCP at this address instead of an in-process structure; \"self\" starts and gracefully drains an in-process server each round")
	groupBatch := fs.Bool("groupbatch", false, "run the -server self rounds in cross-connection group-batching mode; the history checker is unchanged — grouped execution must be invisible to linearizability")
	telAddr := fs.String("telemetry-addr", "", "serve /metrics and /debug/vars on this address; attaches telemetry to fr-* impls")
	telEvery := fs.Int("telemetry-every", 5, "print a telemetry delta summary every N rounds (with -telemetry-addr)")
	killRecover := fs.Bool("killrecover", false, "run kill-and-recover rounds: re-exec this binary as a wal-sync child server, SIGKILL it mid-burst, restart it from the same WAL directory, and verify every client-acked write survived")
	childServer := fs.Bool("child-server", false, "internal: run as the -killrecover child server (recover from -wal-dir, serve wal-sync, print the address)")
	childWALDir := fs.String("wal-dir", "", "internal: WAL directory for -child-server")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *childServer {
		return runChildServer(*childWALDir)
	}
	if *killRecover {
		return runKillRecover(*threads, *ops, *keys, *rounds, *seed, *batch)
	}

	var tel *ltel.Telemetry
	if *telAddr != "" {
		// Exact recording: a stress run wants complete histograms, not a
		// sampled estimate.
		tel = ltel.New("lflstress", ltel.WithSampleEvery(1)).PublishExpvar()
		defer tel.Unregister()
		admin, err := obshttp.ServeAdmin(*telAddr, nil, nil)
		if err != nil {
			return err
		}
		// Same drain path as the protocol listener in lflserver: in-flight
		// scrapes finish before the process exits.
		defer server.GracefulShutdown(2*time.Second, admin)
		fmt.Printf("telemetry: serving /metrics and /debug/vars on http://%s\n", admin.Addr())
	}

	if *srvAddr != "" {
		return runServerMode(*srvAddr, *threads, *ops, *keys, *rounds, *seed,
			*batch, *shards, *recycle, *groupBatch, tel, *telEvery)
	}
	if *groupBatch {
		return fmt.Errorf("-groupbatch requires -server self (it configures the served execution mode)")
	}

	totalOps := 0
	var totalRecycled, totalDropped uint64
	for round := 0; round < *rounds; round++ {
		d, err := newChecked(*impl, *shards, *keys, *recycle, tel)
		if err != nil {
			return err
		}
		if *batch > 0 {
			if _, ok := d.(batchChecked); !ok {
				return fmt.Errorf("-batch requires an implementation with a batch API; %q has none", *impl)
			}
		}
		rec := history.NewRecorder(*threads, *ops)
		var wg sync.WaitGroup
		for w := 0; w < *threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := rec.Thread(w)
				rng := rand.New(rand.NewPCG(*seed+uint64(round), uint64(w)))
				if *batch > 0 {
					runBatchWorker(d.(batchChecked), th, rng, *ops, *keys, *batch)
					return
				}
				for i := 0; i < *ops; i++ {
					k := int(rng.Uint64N(uint64(*keys)))
					switch rng.Uint64N(3) {
					case 0:
						o := th.Begin(history.KindInsert, k)
						th.End(o, d.insert(k))
					case 1:
						o := th.Begin(history.KindDelete, k)
						th.End(o, d.remove(k))
					default:
						o := th.Begin(history.KindSearch, k)
						th.End(o, d.search(k))
					}
				}
			}(w)
		}
		wg.Wait()
		if err := d.validate(); err != nil {
			return fmt.Errorf("round %d: structural invariant violated: %w", round, err)
		}
		if err := history.Check(rec.Ops()); err != nil {
			if _, dense := err.(*history.ErrTooDense); dense {
				fmt.Printf("round %d: %v (inconclusive; lower -ops or raise -keys)\n", round, err)
				continue
			}
			return fmt.Errorf("round %d: %w", round, err)
		}
		totalOps += *threads * *ops
		if *recycle {
			// Quiesce the round's domain and fold in its reuse totals: the
			// histories just checked were produced over recycled identities.
			rc := d.(recycleChecked)
			rc.forceReclaim()
			r, dr := rc.recycleCounts()
			totalRecycled += r
			totalDropped += dr
		}
		if tel != nil && *telEvery > 0 && (round+1)%*telEvery == 0 {
			printTelemetryDelta(round+1, tel.Delta())
		}
	}
	fmt.Printf("ok: %s passed %d rounds, %d checked operations, all histories linearizable\n",
		*impl, *rounds, totalOps)
	if *recycle {
		fmt.Printf("ok: node recycling live during every round: %d node identities reused, %d dropped to GC\n",
			totalRecycled, totalDropped)
		if totalRecycled == 0 {
			return fmt.Errorf("-recycle run reused no node identities; the rounds never exercised reuse (raise -ops or lower -keys)")
		}
	}
	return nil
}

// runBatchWorker is one round's worth of batched operations: sorted
// batches of up to n keys, one operation kind per batch, every element
// recorded individually. The whole batch call sits inside each element's
// [begin, end] interval, so the history check stays sound - each element
// linearizes somewhere inside the batch, which is inside the recorded
// window.
func runBatchWorker(d batchChecked, th *history.Thread, rng *rand.Rand, ops, keyRange, n int) {
	bkeys := make([]int, 0, n)
	pend := make([]history.Op, 0, n)
	res := make([]bool, n)
	for i := 0; i < ops; {
		c := min(n, ops-i)
		bkeys = bkeys[:0]
		for j := 0; j < c; j++ {
			bkeys = append(bkeys, int(rng.Uint64N(uint64(keyRange))))
		}
		// Pre-sorting keeps the recorded ops positionally aligned with the
		// batch results (the batch methods sort their argument in place).
		slices.Sort(bkeys)
		kind := history.Kind(0)
		pend = pend[:0]
		switch rng.Uint64N(3) {
		case 0:
			kind = history.KindInsert
		case 1:
			kind = history.KindDelete
		default:
			kind = history.KindSearch
		}
		for _, k := range bkeys {
			pend = append(pend, th.Begin(kind, k))
		}
		switch kind {
		case history.KindInsert:
			d.insertBatch(bkeys, res[:c])
		case history.KindDelete:
			d.removeBatch(bkeys, res[:c])
		default:
			d.searchBatch(bkeys, res[:c])
		}
		for j, o := range pend {
			th.End(o, res[j])
		}
		i += c
	}
}

// printTelemetryDelta summarizes the live metrics accumulated since the
// previous interval: per-op throughput and latency quantiles plus the
// paper's essential-step counters (Section 3.4 accounting) and, when the
// interval went through fingers, the finger hit rate.
func printTelemetryDelta(round int, s ltel.Snapshot) {
	fmt.Printf("[telemetry] after round %d: ops=%d ess.steps/op=%.1f cas=%d/%d backlinks=%d\n",
		round, s.TotalOps(), s.EssentialStepsPerOp(),
		s.Counters.CASSuccesses, s.Counters.CASAttempts, s.Counters.BacklinkTraversals)
	if probes := s.Counters.FingerHits + s.Counters.FingerMisses; probes > 0 {
		fmt.Printf("[telemetry]   finger hit rate %.1f%% (%d hits / %d probes)\n",
			100*float64(s.Counters.FingerHits)/float64(probes), s.Counters.FingerHits, probes)
	}
	for op := ltel.Op(0); op < ltel.NumOps; op++ {
		o := s.Ops[op]
		if o.Count == 0 {
			continue
		}
		line := fmt.Sprintf("[telemetry]   %-7s n=%-7d mean=%v", op, o.Count, o.MeanLatency())
		if p50, ok := o.LatencyQuantile(0.50); ok {
			line += fmt.Sprintf(" p50=%v", p50)
		}
		if p99, ok := o.LatencyQuantile(0.99); ok {
			line += fmt.Sprintf(" p99=%v", p99)
		}
		fmt.Println(line)
	}
}
