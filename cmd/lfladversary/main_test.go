package main

import "testing"

func TestRunSmallSchedule(t *testing.T) {
	if err := run([]string{"-q", "3", "-n", "64,128"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-q", "1"},       // need at least one inserter
		{"-n", "abc"},     // unparsable size
		{"-n", "4"},       // too small to host the schedule
		{"-n", "64,,128"}, // empty entry
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
