// Command lfladversary reproduces the paper's Section 3.1 adversarial
// execution interactively: one process repeatedly deletes the last node of
// the list while q-1 processes try to insert at the end, with the
// schedule timed so that every insertion C&S fails. It prints the total
// work per inserter for Harris's list (restart-from-head recovery,
// Omega(q*n^2) total) and the Fomitchev-Ruppert list (backlink recovery,
// linear total).
//
// Usage:
//
//	lfladversary [-q 4] [-n 256,512,1024,2048]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lfladversary:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lfladversary", flag.ContinueOnError)
	q := fs.Int("q", 4, "total processes (1 deleter + q-1 inserters)")
	ns := fs.String("n", "256,512,1024,2048", "comma-separated initial list sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *q < 2 {
		return fmt.Errorf("-q must be at least 2")
	}
	var sizes []int
	for _, s := range strings.Split(*ns, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 8 {
			return fmt.Errorf("bad -n entry %q", s)
		}
		sizes = append(sizes, n)
	}
	res := experiments.RunE2(experiments.E2Config{Qs: []int{*q}, Ns: sizes})
	fmt.Print(res.Render())
	return nil
}
