package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"time"

	"repro/internal/server"
	"repro/lockfree"
)

// The group stage measures what cross-connection group batching buys in
// its target regime: many connections at pipeline depth 1, where the
// per-connection coalescer never sees more than one command per run and
// every op pays a full-height skip-list search. 64 net.Pipe connections
// drive a large prefilled store, striding together through a shared
// clustered hot range (connection c owns the keys congruent to c) — the
// paper's clustered-access shape, arriving spread across connections
// instead of pipelined down one. Per-connection execution must serve it
// as isolated point operations over a hot set too large to stay cached;
// group batching reassembles each cross-connection wavefront into a
// nearly contiguous sorted batch call, whose per-element search cost
// falls with the batch's key density (DESIGN.md Sections 8 and 12).
//
// Both modes run against one shared store (grouped and per-connection
// servers are just serving layers; sharing the store removes prefill
// variance), A/B-interleaved for several repetitions, and each row
// records the median repetition — net.Pipe scheduling noise on a small
// host is comparable to the effect under test, so single windows are
// not trustworthy. The headline invariant this stage pins in the
// checked-in JSON: the grouped rows' ops/sec exceed the per-connection
// rows' for both verbs at depth 1.

// groupBatchResult is the group_batch section of BENCH_lflbench.json.
type groupBatchResult struct {
	Conns    int             `json:"conns"`
	Depth    int             `json:"depth"`
	KeyRange int             `json:"key_range"`
	HotKeys  int             `json:"hot_keys"`
	ValueLen int             `json:"value_len"`
	Reps     int             `json:"reps"`
	Rows     []groupBatchRow `json:"rows"`
}

type groupBatchRow struct {
	Verb        string  `json:"verb"` // "get" | "set"
	Mode        string  `json:"mode"` // "per_conn" | "grouped"
	Ops         int     `json:"ops"`
	NSPerOp     int64   `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

const (
	groupConns  = 64
	groupDepth  = 1
	groupCycle = 1024 // hot keys per connection, cycled
)

// groupReq renders one depth-1 request for the given key, returning the
// request bytes and the exact reply length. Fixed-width keys keep every
// frame the same size, as in the wire stage.
func groupReq(verb string, key int) ([]byte, int) {
	k := fmt.Sprintf("%07d", key)
	if verb == "get" {
		return []byte("GET " + k + "\n"), 1 + wireValueLen + 1 // $<value>\n
	}
	return []byte("SET " + k + " " + wireValue + "\n"), 3 // :0\n (duplicate)
}

// groupClients starts a server in the requested mode over the shared
// store and groupConns pipe connections against it. The stop func closes
// the clients, waits for the serving goroutines, and drains the server
// (stopping the executor pool in grouped mode).
func groupClients(store server.Store, grouped bool) (cls []net.Conn, stop func() error) {
	// Negative timeouts disable deadline arming (net.Pipe deadlines
	// allocate a timer per arm); MaxBatch bounds the group size the same
	// way it bounds the per-connection coalescer, so the two modes close
	// batches at the same width.
	srv := server.New(server.Config{
		ReadTimeout:  -1,
		WriteTimeout: -1,
		MaxBatch:     64,
		GroupBatch:   grouped,
		BatchWindow:  50 * time.Microsecond,
	}, store)

	cls = make([]net.Conn, groupConns)
	var served sync.WaitGroup
	for i := range cls {
		cl, se := net.Pipe()
		cls[i] = cl
		served.Add(1)
		go func() {
			defer served.Done()
			srv.ServeConn(se)
		}()
	}
	stop = func() error {
		for _, cl := range cls {
			cl.Close()
		}
		done := make(chan struct{})
		go func() { served.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return fmt.Errorf("serving goroutines did not terminate")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return cls, stop
}

// groupOne runs one (mode, verb) measurement window: every connection
// exchanges iters single-command requests synchronously (depth 1 — the
// next request is not written until the previous reply is read), all
// connections concurrently, and the row reports aggregate wall-clock
// throughput over the window.
func groupOne(cls []net.Conn, mode, verb string, hotBase, iters int) (groupBatchRow, error) {
	// Pre-rendered requests: the connections stride through the hot
	// range together — connection c owns the keys congruent to c modulo
	// the connection count — so the units a group collects from one
	// cross-connection wavefront sort into a nearly contiguous key run,
	// while any single connection's own stream stays 64 keys apart and
	// defeats the per-connection coalescer.
	reqs := make([][][]byte, len(cls))
	respLen := 0
	for c := range cls {
		reqs[c] = make([][]byte, groupCycle)
		for b := range reqs[c] {
			reqs[c][b], respLen = groupReq(verb, hotBase+b*len(cls)+c)
		}
	}

	errs := make([]error, len(cls))
	run := func(n int) error {
		var wg sync.WaitGroup
		for c := range cls {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				buf := make([]byte, respLen)
				for i := 0; i < n; i++ {
					if _, err := cls[c].Write(reqs[c][i%groupCycle]); err != nil {
						errs[c] = err
						return
					}
					if _, err := io.ReadFull(cls[c], buf); err != nil {
						errs[c] = err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		for c, err := range errs {
			if err != nil {
				return fmt.Errorf("%s/%s conn %d: %w", mode, verb, c, err)
			}
		}
		return nil
	}

	// Warm arenas, free lists, rings and reply buffers, then let the
	// warmup garbage die before the measured window opens.
	if err := run(min(iters, 100)); err != nil {
		return groupBatchRow{}, fmt.Errorf("warmup: %w", err)
	}
	runtime.GC()

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	begin := time.Now()
	if err := run(iters); err != nil {
		return groupBatchRow{}, err
	}
	elapsed := time.Since(begin)
	runtime.ReadMemStats(&m1)

	n := iters * len(cls)
	return groupBatchRow{
		Verb:        verb,
		Mode:        mode,
		Ops:         n,
		NSPerOp:     elapsed.Nanoseconds() / int64(n),
		OpsPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(n),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
	}, nil
}

// groupMedian picks the median-throughput sample of one (mode, verb)
// cell's repetitions.
func groupMedian(rows []groupBatchRow) groupBatchRow {
	slices.SortFunc(rows, func(a, b groupBatchRow) int {
		switch {
		case a.OpsPerSec < b.OpsPerSec:
			return -1
		case a.OpsPerSec > b.OpsPerSec:
			return 1
		}
		return 0
	})
	return rows[len(rows)/2]
}

// runGroupBatch executes the group stage, folds the group_batch section
// into the JSON file at path (preserving the other stages' sections),
// and returns a summary table.
func runGroupBatch(path string, quick bool) (string, error) {
	keyRange, ops, reps := 1<<20, 100_000, 5
	if quick {
		keyRange, ops, reps = 1<<18, 10_000, 3
	}
	iters := ops / groupConns
	hotKeys := groupConns * groupCycle
	hotBase := keyRange/2 - hotKeys/2

	// One store serves both modes: the serving layers under comparison
	// sit in front of identical state, and the big prefill happens once.
	store := lockfree.NewSkipList[int, string]()
	for k := 0; k < keyRange; k++ {
		store.Insert(k, wireValue)
	}
	// A ~keyRange-node live heap makes the default GC pacing spend a
	// quarter of the only CPU re-scanning the store; both modes pay it,
	// but the added variance swamps the contrast under measurement. The
	// serving paths are allocation-free in steady state, so relaxing the
	// target for the stage's duration is safe.
	defer debug.SetGCPercent(debug.SetGCPercent(800))

	res := &groupBatchResult{
		Conns:    groupConns,
		Depth:    groupDepth,
		KeyRange: keyRange,
		HotKeys:  hotKeys,
		ValueLen: wireValueLen,
		Reps:     reps,
	}
	text := fmt.Sprintf("== group: cross-connection batching at depth 1 (net.Pipe, %d conns, %d keys, %d hot, ops=%d/row, median of %d) ==\n",
		groupConns, keyRange, hotKeys, iters*groupConns, reps)
	text += fmt.Sprintf("%-5s %-9s %10s %12s %12s %10s\n",
		"verb", "mode", "ns/op", "Mops/s", "allocs/op", "B/op")

	modes := []string{"per_conn", "grouped"}
	clients := make(map[string][]net.Conn, len(modes))
	stops := make([]func() error, 0, len(modes))
	for _, mode := range modes {
		cls, stop := groupClients(store, mode == "grouped")
		clients[mode] = cls
		stops = append(stops, stop)
	}
	stopAll := func() error {
		var first error
		for _, stop := range stops {
			if err := stop(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	// A/B-interleave the repetitions so the modes sample the same host
	// conditions; a sequential sweep would charge any drift (frequency,
	// steal time, background GC) entirely to one side.
	samples := map[string]map[string][]groupBatchRow{}
	for _, mode := range modes {
		samples[mode] = map[string][]groupBatchRow{}
	}
	for rep := 0; rep < reps; rep++ {
		for _, verb := range []string{"get", "set"} {
			for _, mode := range modes {
				row, err := groupOne(clients[mode], mode, verb, hotBase, iters)
				if err != nil {
					stopAll()
					return "", err
				}
				samples[mode][verb] = append(samples[mode][verb], row)
			}
		}
	}
	if err := stopAll(); err != nil {
		return "", err
	}

	perSec := map[string]map[string]float64{}
	for _, verb := range []string{"get", "set"} {
		for _, mode := range modes {
			row := groupMedian(samples[mode][verb])
			res.Rows = append(res.Rows, row)
			if perSec[mode] == nil {
				perSec[mode] = map[string]float64{}
			}
			perSec[mode][verb] = row.OpsPerSec
			text += fmt.Sprintf("%-5s %-9s %10d %12.3f %12.4f %10.1f\n",
				row.Verb, row.Mode, row.NSPerOp,
				row.OpsPerSec/1e6, row.AllocsPerOp, row.BytesPerOp)
		}
	}
	for _, verb := range []string{"get", "set"} {
		text += fmt.Sprintf("%s speedup: %.2fx\n", verb, perSec["grouped"][verb]/perSec["per_conn"][verb])
	}

	if err := mergeGroupBatchJSON(path, res); err != nil {
		return "", err
	}
	text += fmt.Sprintf("group_batch section written to %s\n", path)
	return text, nil
}

// mergeGroupBatchJSON folds res into the JSON file at path, preserving
// the sections the other stages may have written.
func mergeGroupBatchJSON(path string, res *groupBatchResult) error {
	out := benchJSON{Schema: "lflbench/v1"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("%s exists but is not valid lflbench JSON: %w", path, err)
		}
	}
	out.GroupBatch = res
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
