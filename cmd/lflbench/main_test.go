package main

import (
	"strings"
	"testing"
)

func TestRunSelectsExperiments(t *testing.T) {
	if err := run([]string{"-exp", "e7", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	err := run([]string{"-exp", " , "})
	if err == nil || !strings.Contains(err.Error(), "no experiments") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunUnknownExperimentIsIgnoredButNonEmptySelectionRuns(t *testing.T) {
	// "e9" does not exist; with only unknown names selected nothing runs.
	err := run([]string{"-exp", "e9"})
	if err == nil {
		t.Fatal("selection of only unknown experiments should error")
	}
}

func TestQuickRunnersProduceTables(t *testing.T) {
	for name, fn := range map[string]func(bool) string{
		"e3": runE3,
		"e7": runE7,
	} {
		out := fn(true)
		if !strings.Contains(out, "==") {
			t.Fatalf("%s quick run produced no table:\n%s", name, out)
		}
	}
}
