package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/obshttp"
	"repro/internal/sharded"
	"repro/internal/workload"
	"repro/lockfree"
	ltel "repro/lockfree/telemetry"
)

// serveTelemetry exposes /metrics and /debug/vars while the run is live.
func serveTelemetry(addr string) (stop func(), bound string, err error) {
	bound, stop, err = obshttp.Serve(addr)
	return stop, bound, err
}

// The "bench" stage is the machine-readable counterpart of the experiment
// tables: it drives the primary structures with telemetry attached —
// sampling period 1 (exact recording) on the uniform rows, period
// clusterSampleEvery on the clustered rows, where exact recording's flat
// per-op cost would bury the amortization under test — and emits
// BENCH_lflbench.json with
// ops/sec, essential steps per operation, allocs/op and bytes/op over the
// measured window, the full counter vector, and latency quantiles taken
// from the live histograms — the same numbers a production scrape of
// /metrics would see.

// benchJSON is the file schema.
type benchJSON struct {
	Schema     string     `json:"schema"` // "lflbench/v1"
	GoMaxProcs int        `json:"go_max_procs"`
	Quick      bool       `json:"quick"`
	Benchmarks []benchRow `json:"benchmarks"`
	// OpenLoop is written by the -openloop stage (see openloop.go); the
	// bench stage preserves whatever is already there, so the two stages
	// can refresh their halves of the file independently.
	OpenLoop *openLoopResult `json:"open_loop,omitempty"`
	// Wire is written by the -wire stage (see wire.go), preserved here
	// for the same reason.
	Wire *wireResult `json:"wire,omitempty"`
	// GroupBatch is written by the -group stage (see groupbatch.go),
	// preserved here for the same reason.
	GroupBatch *groupBatchResult `json:"group_batch,omitempty"`
	// Durability is written by the -durability stage (see durability.go),
	// preserved here for the same reason.
	Durability *durabilityResult `json:"durability,omitempty"`
}

type benchRow struct {
	// Machine-independent configuration first, measurements after, so
	// diffs of the checked-in trajectory lead with what was run.
	Impl    string `json:"impl"`
	Threads int    `json:"threads"`
	// Shards is the shard count of the fr-sharded rows (1 is the routing-
	// overhead control: one skip list behind the splitter layer); 0 for the
	// unsharded implementations.
	Shards   int    `json:"shards"`
	Mix      string `json:"mix"`
	KeyRange int    `json:"key_range"`
	// Workload is "uniform" (independent uniform keys) or "clustered"
	// (sorted runs of clusterOps keys inside a clusterWindow-wide window).
	// Batch is 0 for per-key operations or the batch length when the
	// clustered run goes through the finger-threaded batch API — the
	// per-key clustered row is the baseline the batch row's ops/sec is
	// judged against.
	Workload string `json:"workload"`
	Batch    int    `json:"batch"`
	// Recycle is true on the churn rows that run with EBR-backed node
	// recycling enabled; the matching recycle=false row is the control the
	// allocs_per_op drop is judged against.
	Recycle bool `json:"recycle"`
	// SampleEvery is the telemetry sampling period the row ran under: 1
	// (exact recording) for the uniform rows, clusterSampleEvery for the
	// clustered and churn ones, where exact recording's flat per-op cost
	// would bury the amortization being measured.
	SampleEvery         int     `json:"sample_every"`
	Ops                 int     `json:"ops"`
	OpsPerSec           float64 `json:"ops_per_sec"`
	EssentialStepsPerOp float64 `json:"essential_steps_per_op"`
	// AllocsPerOp/BytesPerOp are heap deltas (runtime.MemStats Mallocs /
	// TotalAlloc) over the measured window divided by completed ops, so
	// the perf trajectory records memory as well as throughput. They
	// include the harness's own small constant overhead (goroutine wind-
	// down, snapshot plumbing), which is why steady-state values sit near
	// zero rather than at it; the hard 0-alloc guarantees are pinned by
	// TestAllocs* in internal/core.
	AllocsPerOp float64              `json:"allocs_per_op"`
	BytesPerOp  float64              `json:"bytes_per_op"`
	Counters    map[string]uint64    `json:"counters"`
	Latency     map[string]latencyNS `json:"latency"`
}

type latencyNS struct {
	Count  uint64 `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P99NS  int64  `json:"p99_ns"`
}

// benchDict adapts the two primary structures; unlike experiments.NewDict
// it attaches a telemetry recorder.
type benchDict interface {
	insert(k int) bool
	remove(k int) bool
	contains(k int) bool
	insertBatch(items []core.KV[int, int]) int
	removeBatch(keys []int) int
	containsBatch(keys []int) int
	// reclaim forces the reclamation domain through enough epochs to drain
	// every quiesced retire batch; the churn rows use it to stock the free
	// lists before the measured window opens.
	reclaim()
}

type benchList struct{ l *core.List[int, int] }

func (d benchList) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d benchList) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d benchList) contains(k int) bool { return d.l.Search(nil, k) != nil }

func (d benchList) insertBatch(items []core.KV[int, int]) int {
	return d.l.InsertBatch(nil, items, nil)
}
func (d benchList) removeBatch(keys []int) int   { return d.l.DeleteBatch(nil, keys, nil) }
func (d benchList) containsBatch(keys []int) int { return d.l.GetBatch(nil, keys, nil, nil) }
func (d benchList) reclaim() {
	for i := 0; i < 6; i++ {
		d.l.ForceReclaim(nil)
	}
}

type benchSkip struct{ l *core.SkipList[int, int] }

func (d benchSkip) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d benchSkip) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d benchSkip) contains(k int) bool { return d.l.Search(nil, k) != nil }

func (d benchSkip) insertBatch(items []core.KV[int, int]) int {
	return d.l.InsertBatch(nil, items, nil)
}
func (d benchSkip) removeBatch(keys []int) int   { return d.l.DeleteBatch(nil, keys, nil) }
func (d benchSkip) containsBatch(keys []int) int { return d.l.GetBatch(nil, keys, nil, nil) }
func (d benchSkip) reclaim() {
	for i := 0; i < 6; i++ {
		d.l.ForceReclaim(nil)
	}
}

type benchSharded struct{ m *sharded.Map[int, int] }

func (d benchSharded) insert(k int) bool   { _, ok := d.m.Insert(nil, k, k); return ok }
func (d benchSharded) remove(k int) bool   { _, ok := d.m.Delete(nil, k); return ok }
func (d benchSharded) contains(k int) bool { _, ok := d.m.Get(nil, k); return ok }

func (d benchSharded) insertBatch(items []core.KV[int, int]) int {
	return d.m.InsertBatch(nil, items, nil)
}
func (d benchSharded) removeBatch(keys []int) int   { return d.m.DeleteBatch(nil, keys, nil) }
func (d benchSharded) containsBatch(keys []int) int { return d.m.GetBatch(nil, keys, nil, nil) }
func (d benchSharded) reclaim() {
	for s := 0; s < d.m.Shards(); s++ {
		for i := 0; i < 6; i++ {
			d.m.Shard(s).ForceReclaim(nil)
		}
	}
}

func newBenchDict(cfg benchConfig, tel *ltel.Telemetry) benchDict {
	switch cfg.impl {
	case "fr-list":
		l := core.NewList[int, int]()
		if cfg.recycle {
			l.EnableRecycling()
		}
		l.SetTelemetry(tel.Recorder())
		return benchList{l}
	case "fr-skiplist":
		var opts []core.SkipListOption
		if cfg.recycle {
			opts = append(opts, core.WithRecycling())
		}
		l := core.NewSkipList[int, int](opts...)
		l.SetTelemetry(tel.Recorder())
		return benchSkip{l}
	case "fr-sharded":
		var opts []core.SkipListOption
		if cfg.recycle {
			opts = append(opts, core.WithRecycling())
		}
		m := sharded.New[int, int](lockfree.EqualSplitters(0, cfg.keyRange, cfg.shards), opts...)
		m.SetTelemetry(tel.Recorder())
		return benchSharded{m}
	default:
		panic("unknown bench implementation " + cfg.impl)
	}
}

// clusterOps keys are issued inside one clusterWindow-wide window before
// the clustered workload jumps to a fresh window; the batch rows flush
// them as one sorted batch per kind.
const (
	clusterOps    = 64
	clusterWindow = 256
	// clusterSampleEvery is the telemetry sampling period of the clustered
	// and churn rows (the uniform rows record exactly, period 1).
	clusterSampleEvery = 32
	// churnSpan is the per-thread key span of the churn rows: thread t
	// cycles insert(k); delete(k) over [t*churnSpan, (t+1)*churnSpan), so
	// every insert (re)builds a node and every delete retires one — the
	// workload EBR-backed recycling exists for.
	churnSpan = 32
	// churnWarmupOps per thread run before a churn row's measured window
	// opens, so the retire→drain→free-list pipeline reaches steady state
	// (allocs_per_op then measures recycling, not pipeline fill).
	churnWarmupOps = 4096
)

// benchConfig is one measured row.
type benchConfig struct {
	impl      string
	threads   int
	shards    int // fr-sharded only; 0 elsewhere
	keyRange  int
	ops       int
	clustered bool
	batch     int // 0 = per-key; else the batch length (clustered only)
	// churn selects the insert-after-delete workload; recycle is its
	// on/off pair knob (EBR-backed node recycling).
	churn   bool
	recycle bool
}

func (c benchConfig) workload() string {
	if c.churn {
		return "churn"
	}
	if c.clustered {
		return "clustered"
	}
	return "uniform"
}

// clusteredMix is the op mix of the clustered rows; runClusteredThread's
// j%10 switch implements it.
var clusteredMix = workload.Mix{SearchPct: 80, InsertPct: 10, DeletePct: 10}

// churnMix is the op mix of the churn rows: pure insert-after-delete.
var churnMix = workload.Mix{InsertPct: 50, DeletePct: 50}

func (c benchConfig) sampleEvery() int {
	if c.clustered || c.churn {
		return clusterSampleEvery
	}
	return 1
}

func (c benchConfig) mix() workload.Mix {
	if c.churn {
		return churnMix
	}
	if c.clustered {
		return clusteredMix
	}
	return workload.Balanced
}

// runBenchJSON measures every configuration, writes the JSON file, and
// returns a human-readable summary table.
func runBenchJSON(path string, quick bool) (string, error) {
	impls := []string{"fr-list", "fr-skiplist"}
	threads := []int{1, 2, 4}
	keyRange, ops := 1024, 200_000
	if quick {
		threads = []int{1, 2}
		keyRange, ops = 256, 20_000
	}

	var cfgs []benchConfig
	for _, impl := range impls {
		// Lists walk every node: keep the full range but trim ops so the
		// fr-list rows finish in comparable time.
		implOps := ops
		if impl == "fr-list" && !quick {
			implOps = ops / 4
		}
		for _, th := range threads {
			cfgs = append(cfgs, benchConfig{impl: impl, threads: th, keyRange: keyRange, ops: implOps})
		}
		// The clustered pairs: per-key baseline, then the same key stream
		// through the batch API (same seeds, so identical keys per thread).
		// The skip list runs at its natural depth - with only 2^10 keys the
		// from-top descent is so short that the finger's savings drown in
		// constant per-op overhead; the list keeps the small range, where a
		// from-head walk is already hundreds of steps.
		clRange := keyRange
		if impl == "fr-skiplist" {
			clRange = 65536
			if quick {
				clRange = 8192
			}
		}
		for _, th := range threads {
			for _, batch := range []int{0, clusterOps} {
				cfgs = append(cfgs, benchConfig{
					impl: impl, threads: th, keyRange: clRange, ops: implOps,
					clustered: true, batch: batch,
				})
			}
		}
		// The churn pairs: insert-after-delete over a small per-thread key
		// span, once allocating every node (the control) and once with
		// EBR-backed recycling — the allocs_per_op pair is the headline
		// number of the recycling work (§2.1): at steady state the recycle
		// row's inserts are served from the free lists.
		for _, th := range threads {
			for _, recycle := range []bool{false, true} {
				cfgs = append(cfgs, benchConfig{
					impl: impl, threads: th, keyRange: th * churnSpan,
					ops: implOps, churn: true, recycle: recycle,
				})
			}
		}
	}

	// The sharded sweep: the range-partitioned map over 1 (the routing-
	// overhead control), 4 and 8 skip-list shards on the read-heavy
	// clustered mix, per-key and batched. The key range matches the
	// skip list's clustered rows so the fr-sharded rows are directly
	// comparable to the single-skip-list baseline above.
	shardCounts, shardThreads, shardRange := []int{1, 4, 8}, []int{1, 4}, 65536
	if quick {
		shardCounts, shardThreads, shardRange = []int{1, 4}, []int{1, 2}, 8192
	}
	for _, sc := range shardCounts {
		for _, th := range shardThreads {
			for _, batch := range []int{0, clusterOps} {
				cfgs = append(cfgs, benchConfig{
					impl: "fr-sharded", threads: th, shards: sc,
					keyRange: shardRange, ops: ops,
					clustered: true, batch: batch,
				})
			}
		}
	}

	out := benchJSON{
		Schema:     "lflbench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	if data, err := os.ReadFile(path); err == nil {
		var prev benchJSON
		if json.Unmarshal(data, &prev) == nil {
			out.OpenLoop = prev.OpenLoop     // keep the -openloop stage's section
			out.Wire = prev.Wire             // the -wire stage's
			out.GroupBatch = prev.GroupBatch // the -group stage's
			out.Durability = prev.Durability // and the -durability stage's
		}
	}
	text := fmt.Sprintf("== bench: instrumented throughput (mix=%s uniform / %s clustered / %s churn, ops=%d) ==\n",
		workload.Balanced, clusteredMix, churnMix, ops)
	text += fmt.Sprintf("%-12s %-10s %6s %6s %8s %10s %14s %10s %10s %12s %12s\n",
		"impl", "workload", "shards", "batch", "threads", "Mops/s", "ess.steps/op", "allocs/op", "B/op", "get p50", "get p99")
	for _, cfg := range cfgs {
		row, err := benchOne(cfg)
		if err != nil {
			return "", err
		}
		out.Benchmarks = append(out.Benchmarks, row)
		// The churn rows have no reads; show the insert quantiles there.
		g, wl := row.Latency["get"], row.Workload
		if row.Workload == "churn" {
			g = row.Latency["insert"]
			if row.Recycle {
				wl += "+rec"
			}
		}
		text += fmt.Sprintf("%-12s %-10s %6d %6d %8d %10.3f %14.1f %10.3f %10.1f %12s %12s\n",
			row.Impl, wl, row.Shards, row.Batch, row.Threads, row.OpsPerSec/1e6, row.EssentialStepsPerOp,
			row.AllocsPerOp, row.BytesPerOp,
			time.Duration(g.P50NS), time.Duration(g.P99NS))
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	text += fmt.Sprintf("wrote %s\n", path)
	return text, nil
}

// benchOne runs one instrumented configuration and reads its metrics back
// out of the telemetry snapshot.
func benchOne(cfg benchConfig) (benchRow, error) {
	tel, err := newBenchTelemetry(fmt.Sprintf("bench-%s-%s-%d-%d-%d",
		cfg.impl, cfg.workload(), cfg.shards, cfg.batch, cfg.threads), cfg.sampleEvery())
	if err != nil {
		return benchRow{}, err
	}
	defer tel.Unregister()
	d := newBenchDict(cfg, tel)
	if cfg.churn {
		// Warm up the retire→drain→free-list pipeline so the measured
		// window sees steady state: with recycling on, the free lists are
		// stocked and inserts stop allocating; with it off, this is just
		// extra churn on the same keys.
		warm := min(churnWarmupOps, cfg.ops/2)
		for t := 0; t < cfg.threads; t++ {
			runChurnThread(d, t, warm)
		}
		d.reclaim()
	} else {
		for _, k := range workload.Prefill(cfg.keyRange) {
			d.insert(k)
		}
	}
	tel.Delta() // reset the delta baseline: exclude prefill from the measured window

	perThread := cfg.ops / cfg.threads
	start := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < cfg.threads; t++ {
		wg.Add(1)
		if cfg.churn {
			go func(t int) {
				defer wg.Done()
				<-start
				runChurnThread(d, t, perThread)
			}(t)
			continue
		}
		if cfg.clustered {
			go func(t int) {
				defer wg.Done()
				<-start
				runClusteredThread(d, cfg, t, perThread)
			}(t)
			continue
		}
		// Generators are built before the measured window opens so their
		// allocations stay out of the allocs/op accounting.
		gen := workload.NewGenerator(workload.Config{
			Mix: workload.Balanced, Dist: workload.Uniform, Range: cfg.keyRange, Seed: 11,
		}, t)
		go func(gen *workload.Generator) {
			defer wg.Done()
			<-start
			for i := 0; i < perThread; i++ {
				op := gen.Next()
				switch op.Kind {
				case workload.OpInsert:
					d.insert(op.Key)
				case workload.OpDelete:
					d.remove(op.Key)
				default:
					d.contains(op.Key)
				}
			}
		}(gen)
	}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	begin := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(begin)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	s := tel.Delta()
	row := benchRow{
		Impl:                cfg.impl,
		Threads:             cfg.threads,
		Shards:              cfg.shards,
		Mix:                 cfg.mix().String(),
		KeyRange:            cfg.keyRange,
		Workload:            cfg.workload(),
		Batch:               cfg.batch,
		Recycle:             cfg.recycle,
		SampleEvery:         cfg.sampleEvery(),
		Ops:                 perThread * cfg.threads,
		OpsPerSec:           float64(perThread*cfg.threads) / elapsed.Seconds(),
		EssentialStepsPerOp: s.EssentialStepsPerOp(),
		AllocsPerOp:         float64(m1.Mallocs-m0.Mallocs) / float64(perThread*cfg.threads),
		BytesPerOp:          float64(m1.TotalAlloc-m0.TotalAlloc) / float64(perThread*cfg.threads),
		Counters:            map[string]uint64{},
		Latency:             map[string]latencyNS{},
	}
	for i, v := range s.Counters.Vector() {
		row.Counters[instrument.CounterNames[i]] = v
	}
	for op := ltel.Op(0); op < ltel.NumOps; op++ {
		o := s.Ops[op]
		if o.Count == 0 {
			continue
		}
		l := latencyNS{Count: o.Count, MeanNS: int64(o.MeanLatency())}
		if p50, ok := o.LatencyQuantile(0.50); ok {
			l.P50NS = p50.Nanoseconds()
		}
		if p99, ok := o.LatencyQuantile(0.99); ok {
			l.P99NS = p99.Nanoseconds()
		}
		row.Latency[op.String()] = l
	}
	return row, nil
}

// runChurnThread drives one worker of a churn row: thread t owns the
// disjoint key span [t*churnSpan, (t+1)*churnSpan) and cycles through
// inserting the whole span then deleting it, so every insert constructs a
// node (or tower), every delete retires one, and the structure keeps a
// live population for the traversals to walk. Disjoint spans keep the
// churn free of cross-thread key conflicts: the measured contention is on
// the structure fabric and the reclamation machinery, which is what the
// recycle on/off pair isolates.
func runChurnThread(d benchDict, t, perThread int) {
	base := t * churnSpan
	for i := 0; i < perThread; i++ {
		j := i % (2 * churnSpan)
		if j < churnSpan {
			d.insert(base + j)
		} else {
			d.remove(base + j - churnSpan)
		}
	}
}

// runClusteredThread drives one worker of a clustered row: sorted runs of
// clusterOps keys inside a random clusterWindow-wide window, with the
// read-heavy clusteredMix (locality of reference is above all a read
// pattern - scans, joins, working-set lookups). Per-key and batch rows
// share the per-thread seeds, so both judge the exact same key stream; the
// batch mode only changes how the keys are issued — one sorted batch per
// kind per cluster, threaded by a finger inside the structure.
func runClusteredThread(d benchDict, cfg benchConfig, t, perThread int) {
	rng := rand.New(rand.NewPCG(uint64(t)+1, 29))
	window := min(clusterWindow, cfg.keyRange)
	ins := make([]core.KV[int, int], 0, clusterOps)
	dels := make([]int, 0, clusterOps)
	gets := make([]int, 0, clusterOps)
	for done := 0; done < perThread; {
		base := int(rng.Uint64N(uint64(cfg.keyRange - window + 1)))
		n := min(clusterOps, perThread-done)
		if cfg.batch == 0 {
			for j := 0; j < n; j++ {
				k := base + int(rng.Uint64N(uint64(window)))
				switch j % 10 {
				case 0:
					d.insert(k)
				case 1:
					d.remove(k)
				default:
					d.contains(k)
				}
			}
		} else {
			ins, dels, gets = ins[:0], dels[:0], gets[:0]
			for j := 0; j < n; j++ {
				k := base + int(rng.Uint64N(uint64(window)))
				switch j % 10 {
				case 0:
					ins = append(ins, core.KV[int, int]{Key: k, Value: k})
				case 1:
					dels = append(dels, k)
				default:
					gets = append(gets, k)
				}
			}
			d.insertBatch(ins)
			d.removeBatch(dels)
			d.containsBatch(gets)
		}
		done += n
	}
}

// newBenchTelemetry registers a fresh exact-recording instance and
// publishes it to expvar, recovering from a name collision (e.g. reruns
// inside one test process — expvar names are permanent) by suffixing.
func newBenchTelemetry(name string, every int) (t *ltel.Telemetry, err error) {
	for i := 0; i < 16; i++ {
		n := name
		if i > 0 {
			n = fmt.Sprintf("%s-%d", name, i)
		}
		if t = tryNewTelemetry(n, every); t != nil {
			return t, nil
		}
	}
	return nil, fmt.Errorf("could not register telemetry instance %q", name)
}

func tryNewTelemetry(name string, every int) (t *ltel.Telemetry) {
	defer func() {
		if recover() != nil {
			if t != nil {
				t.Unregister()
			}
			t = nil
		}
	}()
	t = ltel.New(name, ltel.WithSampleEvery(every))
	t.PublishExpvar()
	return t
}
