package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/obshttp"
	"repro/internal/workload"
	ltel "repro/lockfree/telemetry"
)

// serveTelemetry exposes /metrics and /debug/vars while the run is live.
func serveTelemetry(addr string) (stop func(), bound string, err error) {
	bound, stop, err = obshttp.Serve(addr)
	return stop, bound, err
}

// The "bench" stage is the machine-readable counterpart of the experiment
// tables: it drives the primary structures with telemetry attached at
// sampling period 1 (exact recording) and emits BENCH_lflbench.json with
// ops/sec, essential steps per operation, allocs/op and bytes/op over the
// measured window, the full counter vector, and latency quantiles taken
// from the live histograms — the same numbers a production scrape of
// /metrics would see.

// benchJSON is the file schema.
type benchJSON struct {
	Schema     string     `json:"schema"` // "lflbench/v1"
	GoMaxProcs int        `json:"go_max_procs"`
	Quick      bool       `json:"quick"`
	Benchmarks []benchRow `json:"benchmarks"`
}

type benchRow struct {
	Impl                string               `json:"impl"`
	Threads             int                  `json:"threads"`
	Mix                 string               `json:"mix"`
	KeyRange            int                  `json:"key_range"`
	Ops                 int                  `json:"ops"`
	OpsPerSec           float64              `json:"ops_per_sec"`
	EssentialStepsPerOp float64              `json:"essential_steps_per_op"`
	// AllocsPerOp/BytesPerOp are heap deltas (runtime.MemStats Mallocs /
	// TotalAlloc) over the measured window divided by completed ops, so
	// the perf trajectory records memory as well as throughput. They
	// include the harness's own small constant overhead (goroutine wind-
	// down, snapshot plumbing), which is why steady-state values sit near
	// zero rather than at it; the hard 0-alloc guarantees are pinned by
	// TestAllocs* in internal/core.
	AllocsPerOp float64              `json:"allocs_per_op"`
	BytesPerOp  float64              `json:"bytes_per_op"`
	Counters    map[string]uint64    `json:"counters"`
	Latency     map[string]latencyNS `json:"latency"`
}

type latencyNS struct {
	Count  uint64 `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P99NS  int64  `json:"p99_ns"`
}

// benchDict adapts the two primary structures; unlike experiments.NewDict
// it attaches a telemetry recorder.
type benchDict interface {
	insert(k int) bool
	remove(k int) bool
	contains(k int) bool
}

type benchList struct{ l *core.List[int, int] }

func (d benchList) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d benchList) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d benchList) contains(k int) bool { return d.l.Search(nil, k) != nil }

type benchSkip struct{ l *core.SkipList[int, int] }

func (d benchSkip) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d benchSkip) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d benchSkip) contains(k int) bool { return d.l.Search(nil, k) != nil }

func newBenchDict(impl string, tel *ltel.Telemetry) benchDict {
	switch impl {
	case "fr-list":
		l := core.NewList[int, int]()
		l.SetTelemetry(tel.Recorder())
		return benchList{l}
	case "fr-skiplist":
		l := core.NewSkipList[int, int]()
		l.SetTelemetry(tel.Recorder())
		return benchSkip{l}
	default:
		panic("unknown bench implementation " + impl)
	}
}

// runBenchJSON measures every configuration, writes the JSON file, and
// returns a human-readable summary table.
func runBenchJSON(path string, quick bool) (string, error) {
	impls := []string{"fr-list", "fr-skiplist"}
	threads := []int{1, 2, 4}
	keyRange, ops := 1024, 200_000
	if quick {
		threads = []int{1, 2}
		keyRange, ops = 256, 20_000
	}

	out := benchJSON{
		Schema:     "lflbench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	text := fmt.Sprintf("== bench: instrumented throughput (mix=%s, range=%d, ops=%d) ==\n",
		workload.Balanced, keyRange, ops)
	text += fmt.Sprintf("%-12s %8s %10s %14s %10s %10s %12s %12s\n",
		"impl", "threads", "Mops/s", "ess.steps/op", "allocs/op", "B/op", "get p50", "get p99")
	for _, impl := range impls {
		// Lists walk every node: keep the full range but trim ops so the
		// fr-list rows finish in comparable time.
		implOps := ops
		if impl == "fr-list" && !quick {
			implOps = ops / 4
		}
		for _, th := range threads {
			row, err := benchOne(impl, th, keyRange, implOps)
			if err != nil {
				return "", err
			}
			out.Benchmarks = append(out.Benchmarks, row)
			g := row.Latency["get"]
			text += fmt.Sprintf("%-12s %8d %10.3f %14.1f %10.3f %10.1f %12s %12s\n",
				impl, th, row.OpsPerSec/1e6, row.EssentialStepsPerOp,
				row.AllocsPerOp, row.BytesPerOp,
				time.Duration(g.P50NS), time.Duration(g.P99NS))
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	text += fmt.Sprintf("wrote %s\n", path)
	return text, nil
}

// benchOne runs one instrumented configuration and reads its metrics back
// out of the telemetry snapshot.
func benchOne(impl string, threads, keyRange, ops int) (benchRow, error) {
	tel, err := newBenchTelemetry(fmt.Sprintf("bench-%s-%d", impl, threads))
	if err != nil {
		return benchRow{}, err
	}
	defer tel.Unregister()
	d := newBenchDict(impl, tel)
	for _, k := range workload.Prefill(keyRange) {
		d.insert(k)
	}
	tel.Delta() // reset the delta baseline: exclude prefill from the measured window

	perThread := ops / threads
	start := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		// Generators are built before the measured window opens so their
		// allocations stay out of the allocs/op accounting.
		gen := workload.NewGenerator(workload.Config{
			Mix: workload.Balanced, Dist: workload.Uniform, Range: keyRange, Seed: 11,
		}, t)
		wg.Add(1)
		go func(gen *workload.Generator) {
			defer wg.Done()
			<-start
			for i := 0; i < perThread; i++ {
				op := gen.Next()
				switch op.Kind {
				case workload.OpInsert:
					d.insert(op.Key)
				case workload.OpDelete:
					d.remove(op.Key)
				default:
					d.contains(op.Key)
				}
			}
		}(gen)
	}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	begin := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(begin)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	s := tel.Delta()
	row := benchRow{
		Impl:                impl,
		Threads:             threads,
		Mix:                 workload.Balanced.String(),
		KeyRange:            keyRange,
		Ops:                 perThread * threads,
		OpsPerSec:           float64(perThread*threads) / elapsed.Seconds(),
		EssentialStepsPerOp: s.EssentialStepsPerOp(),
		AllocsPerOp:         float64(m1.Mallocs-m0.Mallocs) / float64(perThread*threads),
		BytesPerOp:          float64(m1.TotalAlloc-m0.TotalAlloc) / float64(perThread*threads),
		Counters:            map[string]uint64{},
		Latency:             map[string]latencyNS{},
	}
	for i, v := range s.Counters.Vector() {
		row.Counters[instrument.CounterNames[i]] = v
	}
	for op := ltel.Op(0); op < ltel.NumOps; op++ {
		o := s.Ops[op]
		if o.Count == 0 {
			continue
		}
		l := latencyNS{Count: o.Count, MeanNS: int64(o.MeanLatency())}
		if p50, ok := o.LatencyQuantile(0.50); ok {
			l.P50NS = p50.Nanoseconds()
		}
		if p99, ok := o.LatencyQuantile(0.99); ok {
			l.P99NS = p99.Nanoseconds()
		}
		row.Latency[op.String()] = l
	}
	return row, nil
}

// newBenchTelemetry registers a fresh exact-recording instance and
// publishes it to expvar, recovering from a name collision (e.g. reruns
// inside one test process — expvar names are permanent) by suffixing.
func newBenchTelemetry(name string) (t *ltel.Telemetry, err error) {
	for i := 0; i < 16; i++ {
		n := name
		if i > 0 {
			n = fmt.Sprintf("%s-%d", name, i)
		}
		if t = tryNewTelemetry(n); t != nil {
			return t, nil
		}
	}
	return nil, fmt.Errorf("could not register telemetry instance %q", name)
}

func tryNewTelemetry(name string) (t *ltel.Telemetry) {
	defer func() {
		if recover() != nil {
			if t != nil {
				t.Unregister()
			}
			t = nil
		}
	}()
	t = ltel.New(name, ltel.WithSampleEvery(1))
	t.PublishExpvar()
	return t
}
