package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instrument"
	"repro/internal/server"
	"repro/lockfree"
)

// The open-loop stage measures serving latency the way a production
// client experiences it. A closed-loop harness (issue, wait, issue)
// self-throttles under load: when the server slows down, the offered
// rate drops with it and the tail quietly disappears from the record —
// coordinated omission. Here each connection issues commands on a fixed
// arrival schedule, and latency is measured from the *scheduled* send
// instant to the response read, so an op that waited behind a stalled
// predecessor is charged for the wait. p999 from this stage is an honest
// tail; the server-side per-verb histograms from the same run separate
// in-server time from client-observed time.

// openLoopResult is the open_loop section of BENCH_lflbench.json.
type openLoopResult struct {
	RatePerSec  int     `json:"rate_per_sec"`
	DurationSec float64 `json:"duration_sec"`
	Conns       int     `json:"conns"`
	KeyRange    int     `json:"key_range"`
	Mix         string  `json:"mix"`
	OpsSent     uint64  `json:"ops_sent"`
	Errors      uint64  `json:"errors"`
	// LateSends counts ops whose actual write fell more than one arrival
	// interval behind schedule — the saturation tell: a rate the server
	// cannot absorb shows up here before it shows up in the quantiles.
	LateSends    uint64  `json:"late_sends"`
	AchievedRate float64 `json:"achieved_rate_per_sec"`
	// Client is latency from scheduled send to response read (wire +
	// queueing + server); Server is the serving layer's own per-verb
	// histogram over the same run (read-complete to write-flushed).
	Client map[string]openLoopVerb `json:"client"`
	Server map[string]openLoopVerb `json:"server"`
}

type openLoopVerb struct {
	Count  uint64 `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P99NS  int64  `json:"p99_ns"`
	P999NS int64  `json:"p999_ns"`
}

// openLoopConfig carries the -openloop-* flags.
type openLoopConfig struct {
	rate     int
	duration time.Duration
	conns    int
	keyRange int
}

// openLoopVerbs are the client-issued verbs, in the fixed j%10 rotation
// order: 1 SET, 1 DEL, 8 GETs per ten ops (the read-heavy clustered mix
// of the bench stage, served over the wire).
const openLoopMix = "10% set / 10% del / 80% get"

// runOpenLoop starts an in-process lflserver, drives it at the fixed
// arrival rate, folds the open_loop section into the JSON file at path
// (preserving any bench rows already there), and returns a summary table.
func runOpenLoop(path string, cfg openLoopConfig, quick bool) (string, error) {
	if quick {
		cfg.rate = min(cfg.rate, 5_000)
		cfg.duration = min(cfg.duration, time.Second)
	}
	if cfg.conns < 1 || cfg.rate < cfg.conns {
		return "", fmt.Errorf("openloop: need rate >= conns >= 1 (rate %d, conns %d)", cfg.rate, cfg.conns)
	}

	tel, err := newBenchTelemetry("openloop-server", 1)
	if err != nil {
		return "", err
	}
	defer tel.Unregister()
	store := lockfree.NewShardedSkipList[int, string](
		lockfree.EqualSplitters(0, cfg.keyRange, 4), lockfree.WithTelemetry(tel))
	srv := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		MaxConns: cfg.conns + 8,
		MaxBatch: 256,
		MaxRange: 4096,
	}, store)
	srv.SetTelemetry(tel.Recorder())
	obs := server.NewObs(server.ObsConfig{SampleEvery: 64})
	srv.SetObs(obs)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for i := 0; srv.Addr() == "" && i < 1000; i++ {
		select {
		case err := <-errc:
			return "", err
		case <-time.After(time.Millisecond):
		}
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// Prefill half the key range so GETs split between hits and misses and
	// DELs have something to unlink; prefill traffic goes over the wire too
	// but before the measured window opens.
	if err := openLoopPrefill(srv.Addr(), cfg.keyRange); err != nil {
		return "", err
	}
	serverBase := make([]instrument.HistSnapshot, server.NumVerbs)
	for v := 0; v < server.NumVerbs; v++ {
		serverBase[v] = obs.VerbLatency(server.Verb(v))
	}

	perConn := cfg.rate / cfg.conns
	opsPerConn := int(float64(perConn) * cfg.duration.Seconds())
	interval := time.Duration(float64(time.Second) / float64(perConn))

	var (
		wg        sync.WaitGroup
		errs      atomic.Uint64
		late      atomic.Uint64
		firstErr  atomic.Pointer[error]
		clientLat [server.NumVerbs]instrument.Hist
	)
	begin := time.Now()
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			err := openLoopConn(srv.Addr(), cfg, c, opsPerConn, interval, &clientLat, &errs, &late)
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	if ep := firstErr.Load(); ep != nil {
		return "", *ep
	}

	sent := uint64(opsPerConn * cfg.conns)
	res := openLoopResult{
		RatePerSec:   cfg.rate,
		DurationSec:  cfg.duration.Seconds(),
		Conns:        cfg.conns,
		KeyRange:     cfg.keyRange,
		Mix:          openLoopMix,
		OpsSent:      sent,
		Errors:       errs.Load(),
		LateSends:    late.Load(),
		AchievedRate: float64(sent) / elapsed.Seconds(),
		Client:       map[string]openLoopVerb{},
		Server:       map[string]openLoopVerb{},
	}
	for v := 0; v < server.NumVerbs; v++ {
		if cl := clientLat[v].Snapshot(); cl.Count > 0 {
			res.Client[server.Verb(v).Label()] = quantileRow(cl)
		}
		if sv := obs.VerbLatency(server.Verb(v)).Sub(serverBase[v]); sv.Count > 0 {
			res.Server[server.Verb(v).Label()] = quantileRow(sv)
		}
	}

	if err := mergeOpenLoopJSON(path, &res); err != nil {
		return "", err
	}
	return renderOpenLoop(&res, path), nil
}

func quantileRow(s instrument.HistSnapshot) openLoopVerb {
	row := openLoopVerb{Count: s.Count, MeanNS: int64(s.Mean())}
	if v, ok := s.Quantile(0.50); ok {
		row.P50NS = v
	}
	if v, ok := s.Quantile(0.99); ok {
		row.P99NS = v
	}
	if v, ok := s.Quantile(0.999); ok {
		row.P999NS = v
	}
	return row
}

// openLoopConn drives one connection on its fixed arrival schedule. The
// writer never waits for responses; a reader goroutine matches them FIFO
// (every issued verb yields exactly one response line) and records
// latency against the scheduled instant carried through inflight.
func openLoopConn(addr string, cfg openLoopConfig, id, ops int, interval time.Duration,
	lat *[server.NumVerbs]instrument.Hist, errs, late *atomic.Uint64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	type inflightOp struct {
		verb      server.Verb
		scheduled time.Time
	}
	inflight := make(chan inflightOp, 4096)
	readErr := make(chan error, 1)
	go func() {
		r := bufio.NewReader(conn)
		for op := range inflight {
			line, err := r.ReadString('\n')
			if err != nil {
				readErr <- fmt.Errorf("conn %d read: %w", id, err)
				return
			}
			lat[op.verb].Record(time.Since(op.scheduled).Nanoseconds())
			if strings.HasPrefix(line, "-") {
				errs.Add(1)
			}
		}
		readErr <- nil
	}()

	w := bufio.NewWriter(conn)
	rng := rand.New(rand.NewPCG(uint64(id)+1, 83))
	start := time.Now()
	for i := 0; i < ops; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if d := time.Until(scheduled); d > 0 {
			// time.Sleep can oversleep by a timer tick; the slip is charged
			// to the op (latency counts from scheduled, not sent), which is
			// exactly the open-loop contract. Spinning the slack away would
			// be more precise on an idle many-core box but starves the
			// server when cores are scarce — worse measurement, not better.
			time.Sleep(d)
		} else if -d > interval {
			late.Add(1)
		}
		k := int(rng.Uint64N(uint64(cfg.keyRange)))
		var verb server.Verb
		switch i % 10 {
		case 0:
			verb = server.VerbSet
			fmt.Fprintf(w, "SET %d v%d\n", k, k)
		case 1:
			verb = server.VerbDel
			fmt.Fprintf(w, "DEL %d\n", k)
		default:
			verb = server.VerbGet
			fmt.Fprintf(w, "GET %d\n", k)
		}
		if err := w.Flush(); err != nil {
			close(inflight)
			<-readErr
			return fmt.Errorf("conn %d write: %w", id, err)
		}
		inflight <- inflightOp{verb: verb, scheduled: scheduled}
	}
	close(inflight)
	return <-readErr
}

// openLoopPrefill loads every even key, pipelined in one burst.
func openLoopPrefill(addr string, keyRange int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	n := 0
	for k := 0; k < keyRange; k += 2 {
		fmt.Fprintf(w, "SET %d v%d\n", k, k)
		n++
	}
	fmt.Fprint(w, "QUIT\n")
	if err := w.Flush(); err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	for i := 0; i <= n; i++ {
		if _, err := r.ReadString('\n'); err != nil {
			return fmt.Errorf("prefill response %d/%d: %w", i, n+1, err)
		}
	}
	return nil
}

// mergeOpenLoopJSON folds res into the JSON file at path, preserving the
// bench rows (and everything else) an earlier stage may have written.
func mergeOpenLoopJSON(path string, res *openLoopResult) error {
	out := benchJSON{Schema: "lflbench/v1"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("%s exists but is not valid lflbench JSON: %w", path, err)
		}
	}
	out.OpenLoop = res
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func renderOpenLoop(res *openLoopResult, path string) string {
	text := fmt.Sprintf("== openloop: fixed-arrival-rate serving latency (%d ops/s over %d conns, %s) ==\n",
		res.RatePerSec, res.Conns, res.Mix)
	text += fmt.Sprintf("sent %d ops in %.2fs (achieved %.0f ops/s), %d errors, %d late sends\n",
		res.OpsSent, res.DurationSec, res.AchievedRate, res.Errors, res.LateSends)
	text += fmt.Sprintf("%-6s %-8s %10s %10s %10s %10s\n", "side", "verb", "mean", "p50", "p99", "p999")
	for _, side := range []struct {
		name  string
		verbs map[string]openLoopVerb
	}{{"client", res.Client}, {"server", res.Server}} {
		for v := 0; v < server.NumVerbs; v++ {
			label := server.Verb(v).Label()
			row, ok := side.verbs[label]
			if !ok {
				continue
			}
			text += fmt.Sprintf("%-6s %-8s %10s %10s %10s %10s\n", side.name, label,
				time.Duration(row.MeanNS), time.Duration(row.P50NS),
				time.Duration(row.P99NS), time.Duration(row.P999NS))
		}
	}
	text += fmt.Sprintf("wrote %s\n", path)
	return text
}
