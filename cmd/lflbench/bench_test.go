package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchJSONOutput runs the instrumented bench stage in quick mode and
// checks the machine-readable file: valid JSON, expected schema, and live
// metrics (throughput, essential steps, latency quantiles) present and
// plausible for every row.
func TestBenchJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_lflbench.json")
	text, err := runBenchJSON(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "== bench") || !strings.Contains(text, "fr-skiplist") {
		t.Fatalf("summary table malformed:\n%s", text)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out benchJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Schema != "lflbench/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	// quick mode: 2 unsharded impls x 2 thread counts, uniform plus the
	// clustered per-key/batch pair and the churn recycle-off/on pair
	// (2*2 + 2*2*2 + 2*2*2), then the sharded sweep (2 shard counts x
	// 2 thread counts x per-key/batch): 20 + 8 rows.
	if len(out.Benchmarks) != 28 {
		t.Fatalf("rows = %d, want 28", len(out.Benchmarks))
	}
	batchRows, shardedRows := 0, 0
	// churnPair indexes the churn rows by impl/threads so the recycle row
	// can be judged against its control.
	type churnKey struct {
		impl    string
		threads int
	}
	churnOff := map[churnKey]benchRow{}
	churnOn := map[churnKey]benchRow{}
	for _, row := range out.Benchmarks {
		if row.Impl == "fr-sharded" {
			shardedRows++
			if row.Shards != 1 && row.Shards != 4 {
				t.Fatalf("sharded row with shards = %d", row.Shards)
			}
			// Every sharded operation routes through the splitter layer and
			// must be counted there, batched or not.
			if row.Counters["shard_ops"] == 0 {
				t.Fatalf("fr-sharded/%d/batch=%d: shard_ops not counted: %v",
					row.Threads, row.Batch, row.Counters)
			}
		} else if row.Shards != 0 {
			t.Fatalf("%s row with shards = %d", row.Impl, row.Shards)
		}
		switch row.Workload {
		case "uniform", "clustered":
			if row.Recycle {
				t.Fatalf("%s/%d: recycle row with workload %q", row.Impl, row.Threads, row.Workload)
			}
		case "churn":
			k := churnKey{row.Impl, row.Threads}
			if row.Recycle {
				churnOn[k] = row
				// The recycle row must show the machinery live: nodes went
				// through retire lists onto free lists, and inserts hit them.
				if row.Counters["nodes_recycled"] == 0 || row.Counters["freelist_hits"] == 0 {
					t.Fatalf("%s/%d churn+rec: recycling counters dead: %v",
						row.Impl, row.Threads, row.Counters)
				}
			} else {
				churnOff[k] = row
			}
		default:
			t.Fatalf("%s/%d: workload = %q", row.Impl, row.Threads, row.Workload)
		}
		if row.Batch > 0 {
			batchRows++
			if row.Workload != "clustered" {
				t.Fatalf("%s/%d: batch row with workload %q", row.Impl, row.Threads, row.Workload)
			}
			// The batch rows go through the fingers: the finger counters
			// must be live, and on a clustered stream hits must dominate.
			if row.Counters["finger_hits"] == 0 {
				t.Fatalf("%s/%d/batch=%d: no finger hits: %v", row.Impl, row.Threads, row.Batch, row.Counters)
			}
			if row.Counters["finger_hits"] < row.Counters["finger_misses"] {
				t.Fatalf("%s/%d/batch=%d: finger hits %d < misses %d on a clustered stream",
					row.Impl, row.Threads, row.Batch,
					row.Counters["finger_hits"], row.Counters["finger_misses"])
			}
		}
		if row.OpsPerSec <= 0 {
			t.Fatalf("%s/%d: ops_per_sec = %v", row.Impl, row.Threads, row.OpsPerSec)
		}
		if row.EssentialStepsPerOp <= 0 {
			t.Fatalf("%s/%d: essential_steps_per_op = %v", row.Impl, row.Threads, row.EssentialStepsPerOp)
		}
		if row.Counters["cas_attempts"] == 0 {
			t.Fatalf("%s/%d: counters missing: %v", row.Impl, row.Threads, row.Counters)
		}
		// The churn workload's per-thread key spans are disjoint and every
		// delete physically unlinks, so whether a measured-window search ever
		// advances its cursor past a lazily-reclaimed predecessor depends on
		// EBR batch timing — curr_updates legitimately reads 0 on some runs.
		// The uniform/clustered workloads traverse a stable populated prefix
		// and must always advance.
		if row.Workload != "churn" && row.Counters["curr_updates"] == 0 {
			t.Fatalf("%s/%d: counters missing: %v", row.Impl, row.Threads, row.Counters)
		}
		// Churn rows have no reads; their live quantile is insert's.
		latOp := "get"
		if row.Workload == "churn" {
			latOp = "insert"
		}
		get, ok := row.Latency[latOp]
		if !ok || get.Count == 0 {
			t.Fatalf("%s/%d: no %s latency: %v", row.Impl, row.Threads, latOp, row.Latency)
		}
		// Quantiles must be ordered and live whether the row recorded
		// exactly (uniform, period 1) or sampled (clustered rows).
		if get.P50NS <= 0 || get.P99NS < get.P50NS {
			t.Fatalf("%s/%d: quantiles p50=%d p99=%d", row.Impl, row.Threads, get.P50NS, get.P99NS)
		}
	}
	if batchRows != 8 {
		t.Fatalf("batch rows = %d, want 8", batchRows)
	}
	if shardedRows != 8 {
		t.Fatalf("sharded rows = %d, want 8", shardedRows)
	}
	// Every churn row pairs off, and recycling cuts allocations: at steady
	// state the recycle row's inserts come from the free lists, so its
	// allocs/op must sit strictly below the allocate-every-node control.
	if len(churnOff) != 4 || len(churnOn) != 4 {
		t.Fatalf("churn pairs: %d off / %d on rows, want 4 / 4", len(churnOff), len(churnOn))
	}
	for k, off := range churnOff {
		on, ok := churnOn[k]
		if !ok {
			t.Fatalf("%s/%d: churn control has no recycle row", k.impl, k.threads)
		}
		if on.AllocsPerOp >= off.AllocsPerOp {
			t.Fatalf("%s/%d churn: recycling did not cut allocs/op (%.3f with vs %.3f without)",
				k.impl, k.threads, on.AllocsPerOp, off.AllocsPerOp)
		}
	}
}

// TestRunBenchStageSelectable checks the bench stage is reachable through
// the -exp flag and honors -json.
func TestRunBenchStageSelectable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-exp", "bench", "-quick", "-json", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("bench stage did not write %s: %v", path, err)
	}
}

// TestProfileFlags checks -cpuprofile and -memprofile produce non-empty
// pprof files covering a run.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{"-exp", "e2", "-quick", "-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
