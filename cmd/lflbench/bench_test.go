package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchJSONOutput runs the instrumented bench stage in quick mode and
// checks the machine-readable file: valid JSON, expected schema, and live
// metrics (throughput, essential steps, latency quantiles) present and
// plausible for every row.
func TestBenchJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_lflbench.json")
	text, err := runBenchJSON(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "== bench") || !strings.Contains(text, "fr-skiplist") {
		t.Fatalf("summary table malformed:\n%s", text)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out benchJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Schema != "lflbench/v1" {
		t.Fatalf("schema = %q", out.Schema)
	}
	// quick mode: 2 impls x 2 thread counts, uniform plus the clustered
	// per-key/batch pair: 2*2 + 2*2*2 rows.
	if len(out.Benchmarks) != 12 {
		t.Fatalf("rows = %d, want 12", len(out.Benchmarks))
	}
	batchRows := 0
	for _, row := range out.Benchmarks {
		switch row.Workload {
		case "uniform", "clustered":
		default:
			t.Fatalf("%s/%d: workload = %q", row.Impl, row.Threads, row.Workload)
		}
		if row.Batch > 0 {
			batchRows++
			if row.Workload != "clustered" {
				t.Fatalf("%s/%d: batch row with workload %q", row.Impl, row.Threads, row.Workload)
			}
			// The batch rows go through the fingers: the finger counters
			// must be live, and on a clustered stream hits must dominate.
			if row.Counters["finger_hits"] == 0 {
				t.Fatalf("%s/%d/batch=%d: no finger hits: %v", row.Impl, row.Threads, row.Batch, row.Counters)
			}
			if row.Counters["finger_hits"] < row.Counters["finger_misses"] {
				t.Fatalf("%s/%d/batch=%d: finger hits %d < misses %d on a clustered stream",
					row.Impl, row.Threads, row.Batch,
					row.Counters["finger_hits"], row.Counters["finger_misses"])
			}
		}
		if row.OpsPerSec <= 0 {
			t.Fatalf("%s/%d: ops_per_sec = %v", row.Impl, row.Threads, row.OpsPerSec)
		}
		if row.EssentialStepsPerOp <= 0 {
			t.Fatalf("%s/%d: essential_steps_per_op = %v", row.Impl, row.Threads, row.EssentialStepsPerOp)
		}
		if row.Counters["cas_attempts"] == 0 || row.Counters["curr_updates"] == 0 {
			t.Fatalf("%s/%d: counters missing: %v", row.Impl, row.Threads, row.Counters)
		}
		get, ok := row.Latency["get"]
		if !ok || get.Count == 0 {
			t.Fatalf("%s/%d: no get latency: %v", row.Impl, row.Threads, row.Latency)
		}
		// Quantiles must be ordered and live whether the row recorded
		// exactly (uniform, period 1) or sampled (clustered rows).
		if get.P50NS <= 0 || get.P99NS < get.P50NS {
			t.Fatalf("%s/%d: quantiles p50=%d p99=%d", row.Impl, row.Threads, get.P50NS, get.P99NS)
		}
	}
	if batchRows != 4 {
		t.Fatalf("batch rows = %d, want 4", batchRows)
	}
}

// TestRunBenchStageSelectable checks the bench stage is reachable through
// the -exp flag and honors -json.
func TestRunBenchStageSelectable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-exp", "bench", "-quick", "-json", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("bench stage did not write %s: %v", path, err)
	}
}
