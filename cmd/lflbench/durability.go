package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/instrument"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/lockfree"
)

// The durability stage prices the WAL: the same in-process net.Pipe
// harness as the wire stage, sweeping durability mode (off / async /
// sync) crossed with pipeline depth 1 and 16. The workload is strictly
// alternating SET/DEL pairs over a walking key, because the store is
// insert-if-absent — a duplicate SET applies nothing and therefore logs
// nothing, so a naive all-SET sweep would measure the wal-off path under
// a wal-on label. With alternation every command mutates, every command
// logs, and every reply is ":1".
//
// Expected shape of the checked-in numbers: async rides within a few
// percent of off (publish is a lock-free ring hand-off off the hot
// path); sync at depth 1 is fsync-bound (one group commit per op); sync
// at depth 16 recovers most of the gap because one fsync amortizes over
// the whole pipelined flush.

// durabilityResult is the durability section of BENCH_lflbench.json.
type durabilityResult struct {
	KeyRange      int             `json:"key_range"`
	ValueLen      int             `json:"value_len"`
	FsyncWindowNS int64           `json:"fsync_window_ns"`
	Rows          []durabilityRow `json:"rows"`
}

type durabilityRow struct {
	Mode        string  `json:"mode"`  // "off" | "async" | "sync"
	Depth       int     `json:"depth"` // commands in flight per write
	Ops         int     `json:"ops"`
	NSPerOp     int64   `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Fsync accounting over the measured window (zero for mode "off").
	Fsyncs     uint64 `json:"fsyncs"`
	FsyncP50NS int64  `json:"fsync_p50_ns"`
	FsyncP99NS int64  `json:"fsync_p99_ns"`
}

const (
	durKeyRange    = 4096 // fixed-width keys keep every frame the same size
	durValueLen    = 16
	durBlocks      = 64 // distinct pre-rendered blocks cycled per iteration
	durFsyncWindow = 2 * time.Millisecond
)

var durValue = strings.Repeat("d", durValueLen)

// renderDurBlock renders depth commands starting at global command index
// base: even indices SET key c/2, odd indices DEL the same key, so every
// command mutates and the state returns to empty each full pair.
func renderDurBlock(base, depth int) ([]byte, int) {
	var req []byte
	for j := 0; j < depth; j++ {
		c := base + j
		key := fmt.Sprintf("%04d", (c/2)%durKeyRange)
		if c%2 == 0 {
			req = append(req, "SET "+key+" "+durValue+"\n"...)
		} else {
			req = append(req, "DEL "+key+"\n"...)
		}
	}
	return req, 3 * depth // every reply is ":1\n"
}

// durabilityOne runs a single (mode, depth) row: a fresh store, a fresh
// WAL directory (for wal-on modes), and an in-process server on a
// net.Pipe driven with pre-rendered alternating SET/DEL blocks.
func durabilityOne(mode string, depth, ops int) (durabilityRow, error) {
	cfg := server.Config{ReadTimeout: -1, WriteTimeout: -1, MaxBatch: 64}
	var l *wal.Log
	if mode != server.DurabilityOff {
		dir, err := os.MkdirTemp("", "lflbench-durability-")
		if err != nil {
			return durabilityRow{}, err
		}
		defer os.RemoveAll(dir)
		l, err = wal.Open(wal.Options{Dir: dir, FsyncWindow: durFsyncWindow})
		if err != nil {
			return durabilityRow{}, err
		}
		defer l.Close()
		cfg.Durability = mode
		cfg.WAL = l
	}
	srv := server.New(cfg, lockfree.NewSkipList[int, string]())
	cl, se := net.Pipe()
	served := make(chan struct{})
	go func() {
		srv.ServeConn(se)
		close(served)
	}()
	defer func() {
		cl.Close()
		<-served
	}()

	reqs := make([][]byte, durBlocks)
	respLen := 0
	for b := range reqs {
		reqs[b], respLen = renderDurBlock(b*depth, depth)
	}
	buf := make([]byte, respLen)
	iters := ops / depth
	exchange := func(n int) error {
		for i := 0; i < n; i++ {
			if _, err := cl.Write(reqs[i%durBlocks]); err != nil {
				return err
			}
			if _, err := io.ReadFull(cl, buf); err != nil {
				return err
			}
		}
		return nil
	}
	if err := exchange(min(iters, 200)); err != nil {
		return durabilityRow{}, fmt.Errorf("%s depth=%d warmup: %w", mode, depth, err)
	}
	runtime.GC()

	var fs0 instrument.HistSnapshot
	if l != nil {
		fs0 = l.FsyncLatency()
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	begin := time.Now()
	if err := exchange(iters); err != nil {
		return durabilityRow{}, fmt.Errorf("%s depth=%d: %w", mode, depth, err)
	}
	elapsed := time.Since(begin)
	runtime.ReadMemStats(&m1)

	n := iters * depth
	row := durabilityRow{
		Mode:        mode,
		Depth:       depth,
		Ops:         n,
		NSPerOp:     elapsed.Nanoseconds() / int64(n),
		OpsPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(n),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
	}
	if l != nil {
		fs := l.FsyncLatency().Sub(fs0)
		row.Fsyncs = fs.Count
		row.FsyncP50NS, _ = fs.Quantile(0.50)
		row.FsyncP99NS, _ = fs.Quantile(0.99)
	}
	return row, nil
}

// runDurability executes the durability stage, folds the durability
// section into the JSON file at path (preserving the other stages'
// sections), and returns a summary table.
func runDurability(path string, quick bool) (string, error) {
	ops := 200_000
	syncOps := 20_000 // sync at depth 1 is one fsync per op; keep it bounded
	if quick {
		ops, syncOps = 10_000, 2_000
	}

	res := &durabilityResult{
		KeyRange:      durKeyRange,
		ValueLen:      durValueLen,
		FsyncWindowNS: durFsyncWindow.Nanoseconds(),
	}
	text := fmt.Sprintf("== durability: WAL cost on the wire path (net.Pipe, alternating SET/DEL, %d keys, %dB values, fsync window %v) ==\n",
		durKeyRange, durValueLen, durFsyncWindow)
	text += fmt.Sprintf("%-6s %6s %8s %10s %10s %12s %10s %8s %12s\n",
		"mode", "depth", "ops", "ns/op", "Mops/s", "allocs/op", "B/op", "fsyncs", "fsync p99")

	for _, mode := range []string{server.DurabilityOff, server.DurabilityAsync, server.DurabilitySync} {
		for _, depth := range []int{1, 16} {
			rowOps := ops
			if mode == server.DurabilitySync {
				rowOps = syncOps
			}
			row, err := durabilityOne(mode, depth, rowOps)
			if err != nil {
				return "", err
			}
			res.Rows = append(res.Rows, row)
			text += fmt.Sprintf("%-6s %6d %8d %10d %10.3f %12.4f %10.1f %8d %12v\n",
				row.Mode, row.Depth, row.Ops, row.NSPerOp, row.OpsPerSec/1e6,
				row.AllocsPerOp, row.BytesPerOp, row.Fsyncs,
				time.Duration(row.FsyncP99NS))
		}
	}

	if err := mergeDurabilityJSON(path, res); err != nil {
		return "", err
	}
	text += fmt.Sprintf("durability section written to %s\n", path)
	return text, nil
}

// mergeDurabilityJSON folds res into the JSON file at path, preserving
// the sections the other stages may have written.
func mergeDurabilityJSON(path string, res *durabilityResult) error {
	out := benchJSON{Schema: "lflbench/v1"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("%s exists but is not valid lflbench JSON: %w", path, err)
		}
	}
	out.Durability = res
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
