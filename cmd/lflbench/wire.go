package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/server"
	"repro/lockfree"
)

// The wire stage measures the serving layer's per-request cost with the
// store held constant: an in-process server on a net.Pipe (no kernel
// sockets, no syscall jitter), driven by pre-rendered request blocks so
// the client side contributes zero allocations and the allocs/op column
// is the wire path's alone. It sweeps the two dialects (line protocol
// and RESP2) crossed with pipeline depth 1 and 16, for GETs (all hits)
// and SETs (all duplicate keys, exercising the arena-interned value
// path). The headline invariant this stage pins in the checked-in JSON:
// steady-state GETs are allocation-free on both dialects, and SETs
// amortize to well under one allocation per op.

// wireResult is the wire section of BENCH_lflbench.json.
type wireResult struct {
	KeyRange int       `json:"key_range"`
	ValueLen int       `json:"value_len"`
	Rows     []wireRow `json:"rows"`
}

type wireRow struct {
	Proto       string  `json:"proto"` // "line" | "resp"
	Verb        string  `json:"verb"`  // "get" | "set"
	Depth       int     `json:"depth"` // requests in flight per write
	Ops         int     `json:"ops"`
	NSPerOp     int64   `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

const (
	wireKeyRange = 4096 // fixed-width 4-digit keys keep every frame the same size
	wireValueLen = 16
	wireBlocks   = 64 // distinct pre-rendered batches cycled per iteration
)

// wireValue is the constant 16-byte payload; SETs are duplicate-key
// inserts (the store is insert-if-absent), so the store never grows and
// the row isolates parse+reply cost rather than skip-list insertion.
var wireValue = strings.Repeat("v", wireValueLen)

// renderWireBlock renders depth requests starting at key base, returning
// the request bytes and the exact reply length the server will produce.
func renderWireBlock(proto, verb string, base, depth int) ([]byte, int) {
	var req []byte
	respLen := 0
	for j := 0; j < depth; j++ {
		key := fmt.Sprintf("%04d", (base+j)%wireKeyRange)
		switch {
		case proto == "line" && verb == "get":
			req = append(req, "GET "+key+"\n"...)
			respLen += 1 + wireValueLen + 1 // $<value>\n
		case proto == "line" && verb == "set":
			req = append(req, "SET "+key+" "+wireValue+"\n"...)
			respLen += 3 // :0\n (duplicate key)
		case proto == "resp" && verb == "get":
			req = append(req, "*2\r\n$3\r\nGET\r\n$4\r\n"+key+"\r\n"...)
			respLen += len("$16\r\n") + wireValueLen + 2
		case proto == "resp" && verb == "set":
			req = append(req, fmt.Sprintf("*3\r\n$3\r\nSET\r\n$4\r\n%s\r\n$%d\r\n%s\r\n", key, wireValueLen, wireValue)...)
			respLen += len("+OK\r\n")
		}
	}
	return req, respLen
}

// wireOne runs a single (proto, verb, depth) row against srv's pipe end.
func wireOne(cl net.Conn, proto, verb string, depth, ops int) (wireRow, error) {
	reqs := make([][]byte, wireBlocks)
	respLen := 0
	for b := range reqs {
		reqs[b], respLen = renderWireBlock(proto, verb, b*depth, depth)
	}
	buf := make([]byte, respLen)

	iters := ops / depth
	exchange := func(n int) error {
		for i := 0; i < n; i++ {
			if _, err := cl.Write(reqs[i%wireBlocks]); err != nil {
				return err
			}
			if _, err := io.ReadFull(cl, buf); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm the connection's arenas, free lists and reply buffer so the
	// measured window sees steady state, then let the warmup garbage die.
	if err := exchange(min(iters, 200)); err != nil {
		return wireRow{}, fmt.Errorf("%s/%s depth=%d warmup: %w", proto, verb, depth, err)
	}
	runtime.GC()

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	begin := time.Now()
	if err := exchange(iters); err != nil {
		return wireRow{}, fmt.Errorf("%s/%s depth=%d: %w", proto, verb, depth, err)
	}
	elapsed := time.Since(begin)
	runtime.ReadMemStats(&m1)

	n := iters * depth
	return wireRow{
		Proto:       proto,
		Verb:        verb,
		Depth:       depth,
		Ops:         n,
		NSPerOp:     elapsed.Nanoseconds() / int64(n),
		OpsPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(n),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
	}, nil
}

// runWire executes the wire stage, folds the wire section into the JSON
// file at path (preserving the other stages' sections), and returns a
// summary table.
func runWire(path string, quick bool) (string, error) {
	ops := 200_000
	if quick {
		ops = 10_000
	}

	res := &wireResult{KeyRange: wireKeyRange, ValueLen: wireValueLen}
	text := fmt.Sprintf("== wire: serving-layer per-op cost (net.Pipe, %d keys, %dB values, ops=%d/row) ==\n",
		wireKeyRange, wireValueLen, ops)
	text += fmt.Sprintf("%-6s %-5s %6s %10s %12s %12s %10s\n",
		"proto", "verb", "depth", "ns/op", "Mops/s", "allocs/op", "B/op")

	for _, proto := range []string{"line", "resp"} {
		// One connection per dialect: detection is per-connection and
		// sticky, and a fresh conn gives each dialect cold arenas to warm.
		store := lockfree.NewSkipList[int, string]()
		for k := 0; k < wireKeyRange; k++ {
			store.Insert(k, wireValue)
		}
		// Negative timeouts disable deadline arming: net.Pipe deadlines
		// allocate a timer per arm, which would poison the allocs column.
		srv := server.New(server.Config{
			ReadTimeout:  -1,
			WriteTimeout: -1,
			MaxBatch:     64,
		}, store)
		cl, se := net.Pipe()
		served := make(chan struct{})
		go func() {
			srv.ServeConn(se)
			close(served)
		}()

		for _, verb := range []string{"get", "set"} {
			for _, depth := range []int{1, 16} {
				row, err := wireOne(cl, proto, verb, depth, ops)
				if err != nil {
					cl.Close()
					return "", err
				}
				res.Rows = append(res.Rows, row)
				text += fmt.Sprintf("%-6s %-5s %6d %10d %12.3f %12.4f %10.1f\n",
					row.Proto, row.Verb, row.Depth, row.NSPerOp,
					row.OpsPerSec/1e6, row.AllocsPerOp, row.BytesPerOp)
			}
		}
		cl.Close()
		select {
		case <-served:
		case <-time.After(2 * time.Second):
			return "", fmt.Errorf("%s: serving goroutine did not terminate", proto)
		}
	}

	if err := mergeWireJSON(path, res); err != nil {
		return "", err
	}
	text += fmt.Sprintf("wire section written to %s\n", path)
	return text, nil
}

// mergeWireJSON folds res into the JSON file at path, preserving the
// sections the other stages may have written.
func mergeWireJSON(path string, res *wireResult) error {
	out := benchJSON{Schema: "lflbench/v1"}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &out); err != nil {
			return fmt.Errorf("%s exists but is not valid lflbench JSON: %w", path, err)
		}
	}
	out.Wire = res
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
