// Command lflbench runs the paper-reproduction experiments E1-E7 (see
// DESIGN.md for the experiment index) and prints their tables, plus the
// "bench" stage, which drives the telemetry-instrumented structures and
// writes machine-readable results to BENCH_lflbench.json.
//
// Usage:
//
//	lflbench [-exp e1,e2,...,bench|all] [-quick] [-json FILE] [-telemetry-addr HOST:PORT]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	lflbench -openloop [-openloop-rate 20000] [-openloop-duration 5s]
//	         [-openloop-conns 4] [-openloop-keyrange 65536]
//	lflbench -wire
//	lflbench -group
//	lflbench -durability
//
// -quick shrinks every sweep for a fast smoke run; the defaults are the
// full configurations recorded in EXPERIMENTS.md. -telemetry-addr serves
// the live /metrics (Prometheus text) and /debug/vars (expvar) endpoints
// while the run is in progress. -cpuprofile records a pprof CPU profile
// covering every selected experiment; -memprofile writes a heap profile
// (after a forced GC) when the run completes. Both feed `go tool pprof`.
//
// -openloop runs the coordinated-omission-free serving-latency stage: an
// in-process lflserver driven at a fixed arrival rate, with per-verb
// client-observed p50/p99/p999 (measured from the scheduled send instant,
// so stalls are charged to the ops that waited) and the server's own
// per-verb histograms folded into the open_loop section of the JSON file.
// With -openloop and no explicit -exp, only the open-loop stage runs.
//
// -wire runs the wire-protocol per-op cost stage: an in-process server on
// a net.Pipe driven with pre-rendered requests, sweeping line vs RESP2
// crossed with pipeline depth 1/16 for GET and SET, recording ns/op and
// allocs/op into the wire section of the JSON file. Steady-state GETs are
// expected allocation-free on both dialects.
//
// -group runs the cross-connection group-batching stage: the same
// in-process server driven by 64 net.Pipe connections at pipeline depth
// 1, once in the default per-connection mode and once with -groupbatch
// semantics (Config.GroupBatch), recording aggregate ops/sec and
// allocs/op for both into the group_batch section of the JSON file. The
// grouped rows are expected to beat the per-connection rows: depth-1
// traffic is exactly the regime per-connection coalescing cannot help.
//
// -durability runs the WAL cost stage: the wire harness driven with
// strictly alternating SET/DEL pairs (so every command mutates and
// therefore logs — duplicate SETs would be silently unlogged no-ops),
// sweeping durability off/async/sync crossed with pipeline depth 1/16
// and recording throughput plus fsync count and latency quantiles into
// the durability section of the JSON file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lflbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lflbench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "comma-separated experiments to run (e1..e8, bench, or all)")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
	jsonPath := fs.String("json", "BENCH_lflbench.json", "output file for the bench stage's machine-readable results")
	telAddr := fs.String("telemetry-addr", "", "serve /metrics and /debug/vars on this address during the run")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file when the run completes")
	openLoop := fs.Bool("openloop", false, "run the fixed-arrival-rate serving-latency stage")
	wire := fs.Bool("wire", false, "run the wire-protocol per-op cost stage (line vs RESP, depth 1/16)")
	group := fs.Bool("group", false, "run the cross-connection group-batching stage (64 conns, depth 1)")
	durability := fs.Bool("durability", false, "run the WAL cost stage (wal-off vs wal-async vs wal-sync, depth 1/16)")
	olRate := fs.Int("openloop-rate", 20_000, "open-loop offered rate, total ops/sec across connections")
	olDur := fs.Duration("openloop-duration", 5*time.Second, "open-loop measured window")
	olConns := fs.Int("openloop-conns", 4, "open-loop client connections")
	olRange := fs.Int("openloop-keyrange", 65536, "open-loop key range (half prefilled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	expSet := false
	fs.Visit(func(f *flag.Flag) { expSet = expSet || f.Name == "exp" })

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	if (*openLoop || *wire || *group || *durability) && !expSet {
		// -openloop / -wire / -group / -durability alone run just their
		// stage; combine with an explicit -exp to run experiments in the
		// same invocation.
	} else if *expFlag == "all" {
		for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "bench"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			e = strings.ToLower(strings.TrimSpace(e))
			if e != "" {
				want[e] = true
			}
		}
	}

	if *telAddr != "" {
		stop, addr, err := serveTelemetry(*telAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("telemetry: serving /metrics and /debug/vars on http://%s\n\n", addr)
	}

	wrap := func(f func(bool) string) func(bool) (string, error) {
		return func(q bool) (string, error) { return f(q), nil }
	}
	runners := []struct {
		name string
		fn   func(quick bool) (string, error)
	}{
		{"e1", wrap(runE1)},
		{"e2", wrap(runE2)},
		{"e3", wrap(runE3)},
		{"e4", wrap(runE4)},
		{"e5", wrap(runE5)},
		{"e6", wrap(runE6)},
		{"e7", wrap(runE7)},
		{"e8", wrap(runE8)},
		{"bench", func(q bool) (string, error) { return runBenchJSON(*jsonPath, q) }},
	}
	ran := 0
	for _, r := range runners {
		if !want[r.name] {
			continue
		}
		begin := time.Now()
		out, err := r.fn(*quick)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Print(out)
		fmt.Printf("[%s finished in %v]\n\n", r.name, time.Since(begin).Round(time.Millisecond))
		ran++
	}
	if *openLoop {
		begin := time.Now()
		out, err := runOpenLoop(*jsonPath, openLoopConfig{
			rate: *olRate, duration: *olDur, conns: *olConns, keyRange: *olRange,
		}, *quick)
		if err != nil {
			return fmt.Errorf("openloop: %w", err)
		}
		fmt.Print(out)
		fmt.Printf("[openloop finished in %v]\n\n", time.Since(begin).Round(time.Millisecond))
		ran++
	}
	if *wire {
		begin := time.Now()
		out, err := runWire(*jsonPath, *quick)
		if err != nil {
			return fmt.Errorf("wire: %w", err)
		}
		fmt.Print(out)
		fmt.Printf("[wire finished in %v]\n\n", time.Since(begin).Round(time.Millisecond))
		ran++
	}
	if *group {
		begin := time.Now()
		out, err := runGroupBatch(*jsonPath, *quick)
		if err != nil {
			return fmt.Errorf("group: %w", err)
		}
		fmt.Print(out)
		fmt.Printf("[group finished in %v]\n\n", time.Since(begin).Round(time.Millisecond))
		ran++
	}
	if *durability {
		begin := time.Now()
		out, err := runDurability(*jsonPath, *quick)
		if err != nil {
			return fmt.Errorf("durability: %w", err)
		}
		fmt.Print(out)
		fmt.Printf("[durability finished in %v]\n\n", time.Since(begin).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments selected (use -exp e1..e8, bench, all, -openloop, -wire, -group, or -durability)")
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

func runE1(quick bool) string {
	cfg := experiments.DefaultE1Config()
	if quick {
		cfg.Ns = []int{250, 1000, 4000}
		cfg.Cs = []int{1, 4, 16}
		cfg.OpsPerRun = 1000
	}
	return experiments.RunE1(cfg).Render()
}

func runE2(quick bool) string {
	cfg := experiments.DefaultE2Config()
	if quick {
		cfg = experiments.E2Config{Qs: []int{4}, Ns: []int{256, 512}}
	}
	return experiments.RunE2(cfg).Render()
}

func runE3(quick bool) string {
	cfg := experiments.DefaultE3Config()
	if quick {
		cfg = experiments.E3Config{Ns: []int{256, 1024}, Ms: []int{16, 128}}
	}
	return experiments.RunE3(cfg).Render()
}

func runE4(quick bool) string {
	cfg := experiments.DefaultE4Config()
	if quick {
		cfg.Threads = []int{1, 4}
		cfg.Mixes = []workload.Mix{workload.Balanced}
		cfg.KeyRanges = []int{256}
		cfg.Ops = 50_000
	}
	return experiments.RunE4(cfg).Render()
}

func runE5(quick bool) string {
	cfg := experiments.DefaultE5Config()
	if quick {
		cfg = experiments.E5Config{Ns: []int{1000, 16000, 64000}, Probes: 500, MaxListN: 16000}
	}
	return experiments.RunE5(cfg).Render()
}

func runE6(quick bool) string {
	cfg := experiments.DefaultE6Config()
	if quick {
		cfg.N = 30_000
		cfg.Cs = []int{1, 8}
	}
	return experiments.RunE6(cfg).Render()
}

func runE8(quick bool) string {
	cfg := experiments.DefaultE8Config()
	if quick {
		cfg.Stall = 50 * time.Millisecond
	}
	return experiments.RunE8(cfg).Render()
}

func runE7(quick bool) string {
	cfg := experiments.DefaultE7Config()
	if quick {
		cfg.Ks = []int{8, 64}
	}
	return experiments.RunE7(cfg).Render()
}
