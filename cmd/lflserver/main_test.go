package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func TestRunBadFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-shards", "3"}, "power of two"},
		{[]string{"-shards", "0"}, "power of two"},
		{[]string{"-key-lo", "10", "-key-hi", "10"}, "must exceed"},
		{[]string{"-addr", "256.256.256.256:1"}, ""},
	}
	for _, tc := range cases {
		err := run(tc.args)
		if err == nil {
			t.Fatalf("run(%v) succeeded, want error", tc.args)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("run(%v) = %v, want %q", tc.args, err, tc.want)
		}
	}
}

// freePort reserves a loopback port and releases it for the command under
// test. The window between Close and the server's bind is racy in theory;
// on a quiet test host it is dependable enough for a smoke test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunServesAndDrainsOnSignal runs the real command loop: serve the
// protocol, answer admin probes, then drain cleanly on SIGTERM.
func TestRunServesAndDrainsOnSignal(t *testing.T) {
	addr, admin := freePort(t), freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-admin-addr", admin,
			"-shards", "2", "-key-hi", "1024", "-drain-timeout", "5s"})
	}()

	var nc net.Conn
	var err error
	for i := 0; i < 200; i++ {
		if nc, err = net.Dial("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up on %s: %v", addr, err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	if _, err := fmt.Fprintf(nc, "SET 1 one\nGET 1\nPING\n"); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{":1\n", "$one\n", "+PONG\n"} {
		line, err := br.ReadString('\n')
		if err != nil || line != want {
			t.Fatalf("response %d = %q (%v), want %q", i, line, err, want)
		}
	}

	resp, err := http.Get("http://" + admin + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d %q, want 200", resp.StatusCode, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	// The drain closed the idle connection we still hold.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("connection still open after drain")
	}
}

// TestRunGroupBatchDrainsMidBurst is the end-to-end graceful-shutdown
// contract of group-batching mode: SIGTERM lands while several
// connections are mid-burst, and every command written before the
// writers stand down is answered — the drain grace serves commands
// already on the wire, executors complete every published unit before
// the pool stops, and zero replies are dropped.
func TestRunGroupBatchDrainsMidBurst(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-shards", "2", "-key-hi", "4096",
			"-groupbatch", "-group-window", "100us", "-drain-timeout", "5s"})
	}()

	const conns = 4
	const per = 64
	ncs := make([]net.Conn, conns)
	for i := 0; i < conns; i++ {
		var err error
		for try := 0; try < 200; try++ {
			if ncs[i], err = net.Dial("tcp", addr); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("server never came up on %s: %v", addr, err)
		}
		defer ncs[i].Close()
	}

	var stop atomic.Bool
	sent := make([]int, conns)
	got := make([]int, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	for i := range ncs {
		wg.Add(1)
		go func(i int, nc net.Conn) {
			defer wg.Done()
			br := bufio.NewReader(nc)
			var burst bytes.Buffer
			for k := 0; k < per; k++ {
				fmt.Fprintf(&burst, "SET %d v\n", i*1024+k)
			}
			for !stop.Load() {
				if _, err := nc.Write(burst.Bytes()); err != nil {
					errs[i] = fmt.Errorf("write after %d replies: %w", got[i], err)
					return
				}
				sent[i] += per
				for k := 0; k < per; k++ {
					if _, err := br.ReadString('\n'); err != nil {
						errs[i] = fmt.Errorf("read after %d replies: %w", got[i], err)
						return
					}
					got[i]++
				}
			}
		}(i, ncs[i])
	}

	time.Sleep(50 * time.Millisecond) // let the burst traffic establish
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	stop.Store(true) // writers finish their in-flight round, then stand down

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	wg.Wait()
	for i := 0; i < conns; i++ {
		if errs[i] != nil {
			t.Errorf("conn %d: %v", i, errs[i])
		}
		if sent[i] == 0 {
			t.Errorf("conn %d sent nothing before shutdown", i)
		}
		if got[i] != sent[i] {
			t.Errorf("conn %d: %d replies for %d sent commands (dropped %d)",
				i, got[i], sent[i], sent[i]-got[i])
		}
	}
}
