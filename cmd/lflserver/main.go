// Command lflserver serves the range-sharded lock-free skip list as a
// networked ordered key-value store, speaking two wire dialects on the
// same port: the line protocol documented in internal/server
// (SET/GET/DEL/RANGE/LEN/PING) and RESP2, the Redis protocol, so
// redis-cli and redis-benchmark work out of the box. The dialect is
// auto-detected per connection from the first byte ('*' opens a RESP
// array). Each connection's pipelined command runs are coalesced into
// sorted batch calls through the finger machinery, so the amortized
// clustered-access bounds of DESIGN.md Sections 8 and 9 carry over to
// network traffic — on either dialect — and replies go back in one
// vectored write per run over a zero-allocation reply path.
//
// Usage:
//
//	lflserver [-addr 127.0.0.1:7379] [-admin-addr HOST:PORT] [-pprof]
//	          [-shards 4] [-key-lo 0] [-key-hi 1048576]
//	          [-max-conns 1024] [-max-batch 256] [-max-range 4096]
//	          [-trace-sample 64] [-trace-cap 1024] [-slow-ms 10]
//	          [-groupbatch] [-group-executors 0] [-group-window 50us]
//	          [-idle-timeout 5m] [-drain-timeout 10s]
//	          [-wal-dir DIR] [-wal-mode async|sync] [-fsync-window 2ms]
//	          [-snapshot-every 0]
//
// -wal-dir enables durability: every applied SET/DEL is published to an
// append-only write-ahead log in DIR (a lock-free hand-off ring feeds a
// single fsync'ing writer; the serving hot path stays 0-alloc), and on
// boot the store recovers from the newest valid snapshot in DIR plus the
// WAL tail. -wal-mode async acks before the fsync (a crash may lose the
// last -fsync-window of acked writes); sync holds each reply flush until
// the run's mutations are durable, so an acked write survives SIGKILL.
// -snapshot-every streams a fuzzy snapshot (DESIGN.md §13) to DIR at
// that cadence and prunes WAL segments the snapshot covers.
//
// -groupbatch switches execution to cross-connection group batching:
// connections publish parsed commands into per-shard lock-free
// submission rings and a pool of executors (-group-executors, default
// one per shard) merges them into sorted store batches, closing each
// group at -max-batch units or after -group-window. The win regime is
// many connections at shallow pipeline depth, where per-connection
// coalescing cannot fire; see README "Group batching".
//
// With -admin-addr, an observability listener serves Prometheus /metrics
// (store and connection counters, per-verb latency histograms, and the
// runtime/metrics bridge), expvar /debug/vars, the sampled-operation ring
// at /debug/trace, and the /healthz and /readyz probes; /readyz starts
// failing the moment shutdown begins. -pprof additionally mounts
// net/http/pprof under /debug/pprof/ — opt-in because profiles can stall
// the process and leak internals. SIGINT or SIGTERM triggers a graceful
// drain: the server stops accepting, serves commands already on the wire,
// and exits once every connection has flushed — or after -drain-timeout,
// whichever comes first.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/instrument"
	"repro/internal/obshttp"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/wal"
	"repro/lockfree"
	ltel "repro/lockfree/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lflserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lflserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7379", "TCP listen address for the line protocol")
	adminAddr := fs.String("admin-addr", "", "serve /metrics, /debug/vars, /healthz, /readyz on this address")
	shards := fs.Int("shards", 4, "skip-list shards (a power of two); 1 = unsharded")
	keyLo := fs.Int("key-lo", 0, "lower bound of the expected key range (shard splitter placement)")
	keyHi := fs.Int("key-hi", 1<<20, "upper bound of the expected key range (shard splitter placement)")
	maxConns := fs.Int("max-conns", 1024, "connection cap; excess connections are shed at accept time")
	maxBatch := fs.Int("max-batch", 256, "max pipelined commands coalesced into one batch call")
	maxRange := fs.Int("max-range", 4096, "max pairs one RANGE may return")
	idle := fs.Duration("idle-timeout", 5*time.Minute, "close connections idle this long")
	drain := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline on SIGINT/SIGTERM")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof on the admin listener (requires -admin-addr)")
	traceSample := fs.Int("trace-sample", 64, "trace every Nth command unit (a power of two; 1 = every unit)")
	traceCap := fs.Int("trace-cap", 1024, "capacity of the sampled-operation trace ring")
	slowMS := fs.Int("slow-ms", 10, "always trace command units whose store execution exceeds this many milliseconds")
	groupBatch := fs.Bool("groupbatch", false, "merge commands across connections into group batches (per-shard submission rings)")
	groupExecutors := fs.Int("group-executors", 0, "cap the group-batching executor pool (0 = one per shard)")
	groupWindow := fs.Duration("group-window", 50*time.Microsecond, "group-batching gather window (close a group at max-batch units or this age)")
	walDir := fs.String("wal-dir", "", "enable durability: WAL segments and snapshots live in this directory")
	walMode := fs.String("wal-mode", "async", "with -wal-dir: async (ack before fsync) or sync (hold acks for fsync)")
	fsyncWindow := fs.Duration("fsync-window", 2*time.Millisecond, "WAL group-commit window; 0 fsyncs every writer batch")
	snapshotEvery := fs.Duration("snapshot-every", 0, "write a fuzzy snapshot and prune the WAL at this cadence (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 || *shards&(*shards-1) != 0 {
		return fmt.Errorf("-shards %d: shard count must be a power of two", *shards)
	}
	if *keyHi <= *keyLo {
		return fmt.Errorf("-key-hi %d must exceed -key-lo %d", *keyHi, *keyLo)
	}

	// Exact recording: a server wants complete counters on its admin
	// endpoint, not a sampled estimate.
	tel := ltel.New("lflserver", ltel.WithSampleEvery(1)).PublishExpvar()
	defer tel.Unregister()

	var store server.Store
	if *shards > 1 {
		store = lockfree.NewShardedSkipList[int, string](
			lockfree.EqualSplitters(*keyLo, *keyHi, *shards), lockfree.WithTelemetry(tel))
	} else {
		store = lockfree.NewSkipList[int, string](lockfree.WithTelemetry(tel))
	}

	// Durability: recover snapshot + WAL tail before serving, then hand
	// the open log to the server for publish-at-reply-site logging.
	durability := server.DurabilityOff
	var walLog *wal.Log
	if *walDir != "" {
		switch *walMode {
		case "async":
			durability = server.DurabilityAsync
		case "sync":
			durability = server.DurabilitySync
		default:
			return fmt.Errorf("-wal-mode %q: want async or sync", *walMode)
		}
		start := time.Now()
		snapLSN, snapKeys, err := snapshot.Restore(*walDir, func(k int64, v string) bool {
			return store.Insert(int(k), v)
		})
		if err != nil && !errors.Is(err, snapshot.ErrNoSnapshot) {
			return fmt.Errorf("snapshot restore: %w", err)
		}
		walLog, err = wal.Open(wal.Options{Dir: *walDir, FsyncWindow: *fsyncWindow, Telemetry: tel.Recorder()})
		if err != nil {
			return fmt.Errorf("wal open: %w", err)
		}
		defer walLog.Close()
		replayed, err := walLog.Replay(snapLSN, func(op wal.Op, seq uint64, key int64, val []byte) error {
			switch op {
			case wal.OpSet:
				store.Insert(int(key), string(val))
			case wal.OpDel:
				store.Delete(int(key))
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("wal replay: %w", err)
		}
		fmt.Printf("lflserver: recovered %d snapshot keys (LSN %d) + %d WAL records in %v\n",
			snapKeys, snapLSN, replayed, time.Since(start).Round(time.Millisecond))
	}

	srv := server.New(server.Config{
		Addr:           *addr,
		MaxConns:       *maxConns,
		MaxBatch:       *maxBatch,
		MaxRange:       *maxRange,
		ReadTimeout:    *idle,
		GroupBatch:     *groupBatch,
		GroupExecutors: *groupExecutors,
		BatchWindow:    *groupWindow,
		Durability:     durability,
		WAL:            walLog,
	}, store)
	srv.SetTelemetry(tel.Recorder())

	obs := server.NewObs(server.ObsConfig{
		SampleEvery:   *traceSample,
		TraceCap:      *traceCap,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
	})
	srv.SetObs(obs)

	if *snapshotEvery > 0 {
		if walLog == nil {
			return fmt.Errorf("-snapshot-every needs -wal-dir")
		}
		asc, ok := store.(interface {
			Ascend(fn func(key int, value string) bool)
		})
		if !ok {
			return fmt.Errorf("store %T cannot stream snapshots (no Ascend)", store)
		}
		stopSnap := make(chan struct{})
		defer close(stopSnap)
		go func() {
			tick := time.NewTicker(*snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopSnap:
					return
				case <-tick.C:
				}
				// Stamp with the LSN current at scan start: every record
				// published before it was applied before the scan, and the
				// replay of anything newer is idempotent (DESIGN.md §13).
				lsn := walLog.LastLSN()
				keys, _, err := snapshot.Write(*walDir, lsn, func(fn func(key int64, val string) bool) {
					asc.Ascend(func(k int, v string) bool { return fn(int64(k), v) })
				}, tel.Recorder())
				if err != nil {
					fmt.Fprintln(os.Stderr, "lflserver: snapshot:", err)
					continue
				}
				if err := snapshot.Prune(*walDir, 2); err != nil {
					fmt.Fprintln(os.Stderr, "lflserver: snapshot prune:", err)
				}
				// Prune the WAL only up to the *oldest retained* snapshot's
				// stamp: if the newest image later fails its CRC, Restore
				// falls back to the older one, which needs every record in
				// (olderLSN, newestLSN] still on disk to replay without a gap.
				if keep := snapshot.Oldest(*walDir); keep > 0 {
					if err := walLog.Prune(keep); err != nil {
						fmt.Fprintln(os.Stderr, "lflserver: wal prune:", err)
					}
				}
				fmt.Printf("lflserver: snapshot at LSN %d (%d keys)\n", lsn, keys)
			}
		}()
	}

	shutdowners := []server.Shutdowner{srv}
	if *adminAddr != "" {
		// One scrape answers the full latency question: the store's own
		// counters, the serving layer's per-verb histograms, and the
		// runtime signals (GC pauses, scheduler latency) that explain
		// tail spikes the structures cannot.
		ltel.RegisterCollector("lflserver-obs", obs.WritePrometheus)
		ltel.RegisterRuntimeCollector()
		if walLog != nil {
			ltel.RegisterCollector("lflserver-wal", walFsyncCollector(walLog))
		}
		opts := []obshttp.Option{obshttp.WithHandler("/debug/trace", obs.TraceHandler())}
		if *pprofOn {
			opts = append(opts, obshttp.WithPprof())
		}
		admin, err := obshttp.ServeAdmin(*adminAddr, srv.Healthy, srv.Ready, opts...)
		if err != nil {
			return err
		}
		shutdowners = append(shutdowners, admin)
		fmt.Printf("lflserver: admin endpoints on http://%s\n", admin.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	// ListenAndServe binds before blocking in Accept, so poll briefly for
	// the bound address; a bind failure surfaces on errc instead.
	for i := 0; srv.Addr() == "" && i < 100; i++ {
		select {
		case err := <-errc:
			return err
		case <-time.After(time.Millisecond):
		}
	}
	fmt.Printf("lflserver: serving %d-shard store on %s (keys [%d, %d))\n",
		*shards, srv.Addr(), *keyLo, *keyHi)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("lflserver: %v, draining (deadline %v)\n", s, *drain)
		if err := server.GracefulShutdown(*drain, shutdowners...); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		fmt.Println("lflserver: drained cleanly")
		return nil
	}
}

// walFsyncCollector renders the WAL's fsync-latency histogram as a
// Prometheus series on the shared /metrics endpoint, in the same octave
// bucketing as the serving layer's latency histograms.
func walFsyncCollector(l *wal.Log) ltel.Collector {
	return func(w io.Writer) error {
		s := l.FsyncLatency()
		bounds := instrument.OctaveBounds()
		oct := s.Octaves()
		var b strings.Builder
		b.WriteString("# HELP lockfree_wal_fsync_seconds Write-ahead-log group-commit fsync latency.\n")
		b.WriteString("# TYPE lockfree_wal_fsync_seconds histogram\n")
		last := -1
		for i := 0; i < len(oct)-1; i++ {
			if oct[i] != 0 {
				last = i
			}
		}
		var cum uint64
		for i := 0; i <= last; i++ {
			cum += oct[i]
			le := strconv.FormatFloat(float64(bounds[i])/1e9, 'g', -1, 64)
			b.WriteString("lockfree_wal_fsync_seconds_bucket{le=\"" + le + "\"} " + strconv.FormatUint(cum, 10) + "\n")
		}
		cum += oct[len(oct)-1]
		b.WriteString("lockfree_wal_fsync_seconds_bucket{le=\"+Inf\"} " + strconv.FormatUint(cum, 10) + "\n")
		b.WriteString("lockfree_wal_fsync_seconds_sum " + strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64) + "\n")
		b.WriteString("lockfree_wal_fsync_seconds_count " + strconv.FormatUint(s.Count, 10) + "\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
}
