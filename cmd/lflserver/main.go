// Command lflserver serves the range-sharded lock-free skip list as a
// networked ordered key-value store, speaking two wire dialects on the
// same port: the line protocol documented in internal/server
// (SET/GET/DEL/RANGE/LEN/PING) and RESP2, the Redis protocol, so
// redis-cli and redis-benchmark work out of the box. The dialect is
// auto-detected per connection from the first byte ('*' opens a RESP
// array). Each connection's pipelined command runs are coalesced into
// sorted batch calls through the finger machinery, so the amortized
// clustered-access bounds of DESIGN.md Sections 8 and 9 carry over to
// network traffic — on either dialect — and replies go back in one
// vectored write per run over a zero-allocation reply path.
//
// Usage:
//
//	lflserver [-addr 127.0.0.1:7379] [-admin-addr HOST:PORT] [-pprof]
//	          [-shards 4] [-key-lo 0] [-key-hi 1048576]
//	          [-max-conns 1024] [-max-batch 256] [-max-range 4096]
//	          [-trace-sample 64] [-trace-cap 1024] [-slow-ms 10]
//	          [-groupbatch] [-group-executors 0] [-group-window 50us]
//	          [-idle-timeout 5m] [-drain-timeout 10s]
//
// -groupbatch switches execution to cross-connection group batching:
// connections publish parsed commands into per-shard lock-free
// submission rings and a pool of executors (-group-executors, default
// one per shard) merges them into sorted store batches, closing each
// group at -max-batch units or after -group-window. The win regime is
// many connections at shallow pipeline depth, where per-connection
// coalescing cannot fire; see README "Group batching".
//
// With -admin-addr, an observability listener serves Prometheus /metrics
// (store and connection counters, per-verb latency histograms, and the
// runtime/metrics bridge), expvar /debug/vars, the sampled-operation ring
// at /debug/trace, and the /healthz and /readyz probes; /readyz starts
// failing the moment shutdown begins. -pprof additionally mounts
// net/http/pprof under /debug/pprof/ — opt-in because profiles can stall
// the process and leak internals. SIGINT or SIGTERM triggers a graceful
// drain: the server stops accepting, serves commands already on the wire,
// and exits once every connection has flushed — or after -drain-timeout,
// whichever comes first.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obshttp"
	"repro/internal/server"
	"repro/lockfree"
	ltel "repro/lockfree/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lflserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lflserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7379", "TCP listen address for the line protocol")
	adminAddr := fs.String("admin-addr", "", "serve /metrics, /debug/vars, /healthz, /readyz on this address")
	shards := fs.Int("shards", 4, "skip-list shards (a power of two); 1 = unsharded")
	keyLo := fs.Int("key-lo", 0, "lower bound of the expected key range (shard splitter placement)")
	keyHi := fs.Int("key-hi", 1<<20, "upper bound of the expected key range (shard splitter placement)")
	maxConns := fs.Int("max-conns", 1024, "connection cap; excess connections are shed at accept time")
	maxBatch := fs.Int("max-batch", 256, "max pipelined commands coalesced into one batch call")
	maxRange := fs.Int("max-range", 4096, "max pairs one RANGE may return")
	idle := fs.Duration("idle-timeout", 5*time.Minute, "close connections idle this long")
	drain := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline on SIGINT/SIGTERM")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof on the admin listener (requires -admin-addr)")
	traceSample := fs.Int("trace-sample", 64, "trace every Nth command unit (a power of two; 1 = every unit)")
	traceCap := fs.Int("trace-cap", 1024, "capacity of the sampled-operation trace ring")
	slowMS := fs.Int("slow-ms", 10, "always trace command units whose store execution exceeds this many milliseconds")
	groupBatch := fs.Bool("groupbatch", false, "merge commands across connections into group batches (per-shard submission rings)")
	groupExecutors := fs.Int("group-executors", 0, "cap the group-batching executor pool (0 = one per shard)")
	groupWindow := fs.Duration("group-window", 50*time.Microsecond, "group-batching gather window (close a group at max-batch units or this age)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 || *shards&(*shards-1) != 0 {
		return fmt.Errorf("-shards %d: shard count must be a power of two", *shards)
	}
	if *keyHi <= *keyLo {
		return fmt.Errorf("-key-hi %d must exceed -key-lo %d", *keyHi, *keyLo)
	}

	// Exact recording: a server wants complete counters on its admin
	// endpoint, not a sampled estimate.
	tel := ltel.New("lflserver", ltel.WithSampleEvery(1)).PublishExpvar()
	defer tel.Unregister()

	var store server.Store
	if *shards > 1 {
		store = lockfree.NewShardedSkipList[int, string](
			lockfree.EqualSplitters(*keyLo, *keyHi, *shards), lockfree.WithTelemetry(tel))
	} else {
		store = lockfree.NewSkipList[int, string](lockfree.WithTelemetry(tel))
	}

	srv := server.New(server.Config{
		Addr:           *addr,
		MaxConns:       *maxConns,
		MaxBatch:       *maxBatch,
		MaxRange:       *maxRange,
		ReadTimeout:    *idle,
		GroupBatch:     *groupBatch,
		GroupExecutors: *groupExecutors,
		BatchWindow:    *groupWindow,
	}, store)
	srv.SetTelemetry(tel.Recorder())

	obs := server.NewObs(server.ObsConfig{
		SampleEvery:   *traceSample,
		TraceCap:      *traceCap,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
	})
	srv.SetObs(obs)

	shutdowners := []server.Shutdowner{srv}
	if *adminAddr != "" {
		// One scrape answers the full latency question: the store's own
		// counters, the serving layer's per-verb histograms, and the
		// runtime signals (GC pauses, scheduler latency) that explain
		// tail spikes the structures cannot.
		ltel.RegisterCollector("lflserver-obs", obs.WritePrometheus)
		ltel.RegisterRuntimeCollector()
		opts := []obshttp.Option{obshttp.WithHandler("/debug/trace", obs.TraceHandler())}
		if *pprofOn {
			opts = append(opts, obshttp.WithPprof())
		}
		admin, err := obshttp.ServeAdmin(*adminAddr, srv.Healthy, srv.Ready, opts...)
		if err != nil {
			return err
		}
		shutdowners = append(shutdowners, admin)
		fmt.Printf("lflserver: admin endpoints on http://%s\n", admin.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	// ListenAndServe binds before blocking in Accept, so poll briefly for
	// the bound address; a bind failure surfaces on errc instead.
	for i := 0; srv.Addr() == "" && i < 100; i++ {
		select {
		case err := <-errc:
			return err
		case <-time.After(time.Millisecond):
		}
	}
	fmt.Printf("lflserver: serving %d-shard store on %s (keys [%d, %d))\n",
		*shards, srv.Addr(), *keyLo, *keyHi)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("lflserver: %v, draining (deadline %v)\n", s, *drain)
		if err := server.GracefulShutdown(*drain, shutdowners...); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		fmt.Println("lflserver: drained cleanly")
		return nil
	}
}
