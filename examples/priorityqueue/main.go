// Priority queue: a concurrent task scheduler built on the skip list's
// ordered structure - the Lotan-Shavit use case the paper's related-work
// section cites. Producers insert (priority, task) pairs; consumers pull
// the minimum with DeleteMin. Everything is lock-free: a stalled producer
// or consumer never blocks the others.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/lockfree"
)

// taskKey orders tasks by priority first, then by a unique sequence number
// so that equal priorities do not collide in the dictionary.
type taskKey struct {
	priority int
	seq      int64
}

func main() {
	// The skip list needs cmp.Ordered keys; encode (priority, seq) into an
	// int64 with priority in the high bits.
	pq := lockfree.NewSkipList[int64, string]()
	var seq atomic.Int64
	push := func(priority int, task string) {
		key := int64(priority)<<40 | seq.Add(1)
		pq.Insert(key, task)
	}
	pop := func() (int, string, bool) {
		key, task, ok := pq.DeleteMin()
		if !ok {
			return 0, "", false
		}
		return int(key >> 40), task, true
	}

	const producers, tasksPerProducer = 4, 250
	const consumers = 4

	var wg sync.WaitGroup
	produced := make([][]int, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(p), 42))
			for i := 0; i < tasksPerProducer; i++ {
				pri := int(rng.Uint64N(10))
				produced[p] = append(produced[p], pri)
				push(pri, fmt.Sprintf("task-p%d-%d", p, i))
			}
		}(p)
	}
	wg.Wait()

	fmt.Printf("queued %d tasks\n", pq.Len())

	// Consumers drain concurrently; each records the priorities it saw.
	drained := make([][]int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				pri, _, ok := pop()
				if !ok {
					return
				}
				drained[c] = append(drained[c], pri)
			}
		}(c)
	}
	wg.Wait()

	total := 0
	for c := 0; c < consumers; c++ {
		// Within one consumer, priorities are non-decreasing up to races
		// with other consumers; globally every task is consumed once.
		total += len(drained[c])
	}
	fmt.Printf("drained %d tasks across %d consumers\n", total, consumers)
	if total != producers*tasksPerProducer {
		fmt.Println("ERROR: task count mismatch")
		return
	}
	fmt.Println("every task consumed exactly once")
}
