// Membership: a cluster-membership set under churn, using the lock-free
// linked list for the small, hot set of live members. Join/leave events
// arrive from many goroutines; health checkers iterate the set
// continuously. The paper's amortized bound O(n + c) is exactly the regime
// here: n stays small while contention spikes.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/lockfree"
)

type member struct {
	Addr     string
	JoinedAt time.Time
}

func main() {
	members := lockfree.NewList[int, member]()

	const nodes = 32 // the churn pool: node IDs 0..31
	const churners = 6
	const checkers = 2
	const runFor = 250 * time.Millisecond

	var stop atomic.Bool
	var joins, leaves, sweeps atomic.Int64
	var wg sync.WaitGroup

	// Churners randomly join and leave nodes.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 99))
			for !stop.Load() {
				id := int(rng.Uint64N(nodes))
				if rng.Uint64N(2) == 0 {
					if members.Insert(id, member{
						Addr:     fmt.Sprintf("10.0.0.%d:7946", id),
						JoinedAt: time.Now(),
					}) {
						joins.Add(1)
					}
				} else {
					if members.Delete(id) {
						leaves.Add(1)
					}
				}
			}
		}(c)
	}

	// Health checkers sweep the membership list in order.
	for h := 0; h < checkers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				prev := -1
				members.Ascend(func(id int, m member) bool {
					if id <= prev {
						panic("membership iteration out of order")
					}
					prev = id
					return true
				})
				sweeps.Add(1)
			}
		}()
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("joins: %d, leaves: %d, health sweeps: %d\n",
		joins.Load(), leaves.Load(), sweeps.Load())
	fmt.Printf("final membership (%d nodes):\n", members.Len())
	count := 0
	members.Ascend(func(id int, m member) bool {
		if count < 8 {
			fmt.Printf("  node %2d @ %s\n", id, m.Addr)
		}
		count++
		return true
	})
	if count > 8 {
		fmt.Printf("  ... and %d more\n", count-8)
	}
	// Sanity: the net of joins and leaves must equal the final size.
	if int(joins.Load()-leaves.Load()) != members.Len() {
		fmt.Println("ERROR: join/leave accounting does not match the set size")
		return
	}
	fmt.Println("join/leave accounting consistent with final size")
}
