// Quickstart: the smallest useful program against the public API - an
// ordered map shared by concurrent goroutines with no locks anywhere.
package main

import (
	"fmt"
	"sync"

	"repro/lockfree"
)

func main() {
	m := lockfree.NewSkipList[string, int]()

	// Concurrent writers: no mutex, no coordination.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("worker%d-item%d", w, i)
				m.Insert(key, w*100+i)
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("stored %d keys\n", m.Len())

	if v, ok := m.Get("worker2-item3"); ok {
		fmt.Println("worker2-item3 =", v)
	}

	m.Delete("worker0-item0")
	fmt.Printf("after delete: %d keys\n", m.Len())

	// Ordered iteration over a key range.
	fmt.Println("worker1's items:")
	m.AscendRange("worker1-", "worker2-", func(k string, v int) bool {
		fmt.Printf("  %s = %d\n", k, v)
		return true
	})

	// The linked list offers the same dictionary API with the paper's
	// O(n + c) amortized bound; it is the better choice for small sets.
	small := lockfree.NewList[int, string]()
	small.Insert(2, "two")
	small.Insert(1, "one")
	small.Ascend(func(k int, v string) bool {
		fmt.Println(k, v)
		return true
	})
}
