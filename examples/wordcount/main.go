// Wordcount: parallel word-frequency counting with the lock-free hash map
// (buckets are the paper's linked lists) feeding a skip list for the final
// ordered report - both "building block" roles from the paper's
// introduction in one pipeline.
package main

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/lockfree"
)

// counter is a per-word atomic counter stored once in the map; duplicate
// inserts lose and increment the winner's counter instead.
type counter struct{ n atomic.Int64 }

var corpus = strings.Fields(strings.Repeat(
	`the quick brown fox jumps over the lazy dog the fox is quick and
	 the dog is lazy but the fox and the dog are friends `, 64))

func main() {
	counts := lockfree.NewHashMap[string, *counter](256, lockfree.StringHash)

	// Fan the corpus out over workers; each word is counted exactly once
	// because Insert is atomic: exactly one goroutine installs the
	// counter, everyone increments it.
	const workers = 8
	var wg sync.WaitGroup
	chunk := (len(corpus) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := min(w*chunk, len(corpus))
		hi := min(lo+chunk, len(corpus))
		wg.Add(1)
		go func(words []string) {
			defer wg.Done()
			for _, word := range words {
				c := &counter{}
				c.n.Add(1)
				if !counts.Insert(word, c) {
					if existing, ok := counts.Get(word); ok {
						existing.n.Add(1)
					}
				}
			}
		}(corpus[lo:hi])
	}
	wg.Wait()

	// Order the report by count using the skip list (composite key:
	// count descending, then word).
	report := lockfree.NewSkipList[string, int]()
	total := int64(0)
	counts.Range(func(word string, c *counter) bool {
		n := c.n.Load()
		total += n
		key := fmt.Sprintf("%06d|%s", 999999-n, word) // sortable composite
		report.Insert(key, int(n))
		return true
	})

	fmt.Printf("%d distinct words, %d total (corpus has %d)\n",
		counts.Len(), total, len(corpus))
	fmt.Println("top words:")
	shown := 0
	report.Ascend(func(key string, n int) bool {
		word := key[strings.IndexByte(key, '|')+1:]
		fmt.Printf("  %-8s %d\n", word, n)
		shown++
		return shown < 5
	})
	if total != int64(len(corpus)) {
		fmt.Println("ERROR: lost or double-counted words")
	}
}
