// KV store: an in-memory ordered key-value store with range scans running
// under write churn - the "building block for other data structures" role
// the paper's introduction gives to lock-free lists. Writers update
// time-series points while readers continuously run ordered range queries;
// neither side ever blocks the other.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/lockfree"
)

// point is a time-series sample.
type point struct {
	Series string
	Value  float64
}

func main() {
	store := lockfree.NewSkipList[int64, point]()

	const writers = 4
	const readers = 2
	const runFor = 300 * time.Millisecond

	var stop atomic.Bool
	var writes, scans, scanned atomic.Int64
	var wg sync.WaitGroup

	// Writers insert timestamped samples and expire old ones.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			var ts int64 = int64(w)
			for !stop.Load() {
				ts += writers // disjoint timestamp streams per writer
				store.Insert(ts, point{
					Series: fmt.Sprintf("cpu%d", w),
					Value:  rng.Float64() * 100,
				})
				writes.Add(1)
				if ts > 5000 {
					store.Delete(ts - 5000) // retention window
				}
			}
		}(w)
	}

	// Readers scan sliding windows in key order.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var from int64
			for !stop.Load() {
				count := 0
				store.AscendRange(from, from+256, func(ts int64, p point) bool {
					if ts < from || ts >= from+256 {
						panic("range scan out of bounds")
					}
					count++
					return true
				})
				scanned.Add(int64(count))
				scans.Add(1)
				from += 128
			}
		}(r)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("writes: %d\n", writes.Load())
	fmt.Printf("range scans: %d (visited %d points)\n", scans.Load(), scanned.Load())
	fmt.Printf("live points after retention: %d\n", store.Len())

	// Verify ordering end to end: a full scan must be sorted.
	var prev int64 = -1
	ordered := true
	store.Ascend(func(ts int64, _ point) bool {
		if ts <= prev {
			ordered = false
			return false
		}
		prev = ts
		return true
	})
	fmt.Println("full scan ordered:", ordered)
}
