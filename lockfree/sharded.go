package lockfree

import (
	"cmp"

	"repro/internal/core"
	"repro/internal/sharded"
)

// ShardedSkipList is a range-partitioned ordered dictionary over S
// independent lock-free skip lists: a fixed, sorted set of S-1 splitter
// keys carves the key space into contiguous ranges, and every operation
// routes to the shard owning its key by binary search. Point operations
// keep the skip list's semantics exactly — they run, unchanged, on one
// shard — while paying the per-shard cost O(log n_i) with contention
// c_i(S) confined to the shard's own towers: under a key distribution the
// splitters match, both shrink by ~S (see DESIGN.md Section 9 and the
// README's Sharding section for how to choose splitters).
//
// Batches sort once, split into per-shard sub-runs, and thread each
// sub-run through the owning shard's pooled search finger; on multi-core
// runs the sub-runs of one batch execute in parallel (SetParallel).
// Ordered iteration concatenates the shards in key order — a range
// partition needs no merge — with the skip list's weak-consistency
// contract. Create with NewShardedSkipList.
type ShardedSkipList[K cmp.Ordered, V any] struct {
	m *sharded.Map[K, V]
}

var _ Map[int, any] = (*ShardedSkipList[int, any])(nil)

// NewShardedSkipList returns an empty sharded dictionary partitioned by
// the given splitters. len(splitters)+1 — the shard count — must be a
// power of two and the splitters strictly increasing; the constructor
// panics otherwise (a construction-time programming error). An empty
// splitter set gives a single shard, i.e. a plain skip list behind the
// routing layer. All Options apply; WithMaxLevel and WithRandomSource
// configure every shard.
func NewShardedSkipList[K cmp.Ordered, V any](splitters []K, opts ...Option) *ShardedSkipList[K, V] {
	cfg := applyConfig(opts)
	m := sharded.New[K, V](splitters, cfg.coreSkipListOpts()...)
	if cfg.tel != nil {
		m.SetTelemetry(cfg.tel.Recorder())
	}
	return &ShardedSkipList[K, V]{m: m}
}

// Shards returns the shard count S = len(splitters)+1.
func (s *ShardedSkipList[K, V]) Shards() int { return s.m.Shards() }

// Splitters returns a copy of the splitter keys partitioning the map.
// Serving layers use it to align their own key-range routing (e.g. the
// group-batching executors of internal/server) with the shard layout, so
// a batch built for one executor is also a single-shard sub-run.
func (s *ShardedSkipList[K, V]) Splitters() []K { return s.m.Splitters() }

// SetParallel enables (true) or disables (false) the parallel batch
// fan-out; the default is on iff GOMAXPROCS > 1 at construction. Call
// before the map is shared.
func (s *ShardedSkipList[K, V]) SetParallel(on bool) { s.m.SetParallel(on) }

// Insert adds key with value to key's shard; false if key is already
// present.
func (s *ShardedSkipList[K, V]) Insert(key K, value V) bool {
	_, ok := s.m.Insert(nil, key, value)
	return ok
}

// Get returns the value stored at key.
func (s *ShardedSkipList[K, V]) Get(key K) (V, bool) { return s.m.Get(nil, key) }

// Contains reports whether key is present.
func (s *ShardedSkipList[K, V]) Contains(key K) bool {
	_, ok := s.m.Get(nil, key)
	return ok
}

// Delete removes key; false if absent (or a concurrent Delete won).
func (s *ShardedSkipList[K, V]) Delete(key K) bool {
	_, ok := s.m.Delete(nil, key)
	return ok
}

// Len sums the shard sizes; exact whenever no operations are in flight.
func (s *ShardedSkipList[K, V]) Len() int { return s.m.Len() }

// Ascend iterates all keys in ascending order, shard by shard. Weakly
// consistent under concurrent updates, like the skip list's Ascend.
func (s *ShardedSkipList[K, V]) Ascend(fn func(key K, value V) bool) { s.m.Ascend(fn) }

// AscendRange iterates keys in [from, to) in ascending order, visiting
// only the shards intersecting the range. Weakly consistent under
// concurrent updates, with the guarantees documented on
// SkipList.AscendRange.
func (s *ShardedSkipList[K, V]) AscendRange(from, to K, fn func(key K, value V) bool) {
	s.m.AscendRange(nil, from, to, fn)
}

// GetBatch looks up every key, sorting keys in place first; vals[i] and
// found[i] (when non-nil) report the result for the i-th sorted key.
// Returns the number of keys found.
func (s *ShardedSkipList[K, V]) GetBatch(keys []K, vals []V, found []bool) int {
	return s.m.GetBatch(nil, keys, vals, found)
}

// InsertBatch inserts every pair, sorting items in place by key first;
// inserted[i] (when non-nil) reports whether the i-th sorted pair was new.
// Returns the number of new keys.
func (s *ShardedSkipList[K, V]) InsertBatch(items []KV[K, V], inserted []bool) int {
	return s.m.InsertBatch(nil, items, inserted)
}

// DeleteBatch deletes every key, sorting keys in place first; deleted[i]
// (when non-nil) reports whether this call deleted the i-th sorted key.
// Returns the number of keys deleted.
func (s *ShardedSkipList[K, V]) DeleteBatch(keys []K, deleted []bool) int {
	return s.m.DeleteBatch(nil, keys, deleted)
}

// Map returns the underlying sharded map for callers that need the
// internal surface (per-shard access, Proc-carrying operations, structure
// validation in tests).
func (s *ShardedSkipList[K, V]) Map() *sharded.Map[K, V] { return s.m }

// EqualSplitters returns S-1 evenly spaced integer splitters partitioning
// [lo, hi) into S ranges — the right choice when keys are uniform over a
// known interval. S must be a power of two >= 1.
func EqualSplitters(lo, hi int, s int) []int {
	if s < 1 || s&(s-1) != 0 {
		panic("lockfree: shard count must be a power of two")
	}
	out := make([]int, 0, s-1)
	span := hi - lo
	for i := 1; i < s; i++ {
		out = append(out, lo+span*i/s)
	}
	return out
}

// The compile-time guard below keeps the facade honest about the core
// surface it wraps: a sharded map must offer the same batch contract the
// skip list does.
var _ interface {
	GetBatch(p *core.Proc, keys []int, vals []int, found []bool) int
} = (*sharded.Map[int, int])(nil)

// RecycleCounts sums (recycled, dropped) reclamation totals over every
// shard's domain; see SkipList.RecycleCounts. Zeros when the map was not
// built WithRecycling.
func (s *ShardedSkipList[K, V]) RecycleCounts() (recycled, dropped uint64) {
	for i := 0; i < s.m.Shards(); i++ {
		r, d := s.m.Shard(i).RecycleCounts()
		recycled += r
		dropped += d
	}
	return recycled, dropped
}

// ForceReclaim attempts an epoch advance and drains quiesced retire
// batches on every shard; intended for quiescent points.
func (s *ShardedSkipList[K, V]) ForceReclaim() {
	for i := 0; i < s.m.Shards(); i++ {
		s.m.Shard(i).ForceReclaim(nil)
	}
}
