package lockfree_test

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/lockfree"
)

func TestHashMapBasics(t *testing.T) {
	h := lockfree.NewHashMap[string, int](32, lockfree.StringHash)
	if !h.Insert("x", 1) || h.Insert("x", 2) {
		t.Fatal("insert semantics wrong")
	}
	if v, ok := h.Get("x"); !ok || v != 1 {
		t.Fatalf("Get = %d, %t", v, ok)
	}
	if !h.Contains("x") || h.Contains("y") {
		t.Fatal("contains wrong")
	}
	if !h.Delete("x") || h.Delete("x") {
		t.Fatal("delete semantics wrong")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHashMapIntKeys(t *testing.T) {
	h := lockfree.NewHashMap[int, string](64, lockfree.IntHash)
	for i := 0; i < 1000; i++ {
		h.Insert(i, fmt.Sprint(i))
	}
	if h.Len() != 1000 {
		t.Fatalf("Len = %d", h.Len())
	}
	seen := 0
	h.Range(func(k int, v string) bool {
		if v != fmt.Sprint(k) {
			t.Fatalf("value mismatch at %d: %q", k, v)
		}
		seen++
		return true
	})
	if seen != 1000 {
		t.Fatalf("Range saw %d", seen)
	}
}

func TestHashMapConcurrentChurn(t *testing.T) {
	h := lockfree.NewHashMap[int, int](64, lockfree.IntHash)
	const workers, ops, keyRange = 8, 2000, 128
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 31))
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Delete(k)
				default:
					h.Contains(k)
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	h.Range(func(_, _ int) bool { count++; return true })
	if h.Len() != count {
		t.Fatalf("Len = %d, Range saw %d", h.Len(), count)
	}
}

func ExampleNewHashMap() {
	h := lockfree.NewHashMap[string, int](16, lockfree.StringHash)
	h.Insert("hits", 1)
	v, _ := h.Get("hits")
	fmt.Println(v)
	// Output: 1
}
