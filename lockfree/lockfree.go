// Package lockfree is the public API of this repository: lock-free sorted
// linked lists and skip lists implementing the algorithms of Mikhail
// Fomitchev and Eric Ruppert, "Lock-Free Linked Lists and Skip Lists"
// (PODC 2004).
//
// Both structures are linearizable dictionaries over ordered keys. They
// are safe for concurrent use by any number of goroutines without locks:
// a goroutine that is delayed - or never scheduled again - cannot prevent
// others from completing operations. The linked list additionally carries
// the paper's headline guarantee: the amortized cost of an operation is
// O(n + c), linear in the list length plus the operation's point
// contention, because operations recover from interference through
// backlinks instead of restarting.
//
// Choose List for small dictionaries or when the O(n + c) amortized bound
// matters; choose SkipList for large dictionaries, where operations take
// expected O(log n) time.
//
//	m := lockfree.NewSkipList[string, int]()
//	m.Insert("a", 1)
//	v, ok := m.Get("a")
//	m.Delete("a")
package lockfree

import (
	"cmp"

	"repro/internal/core"
	"repro/lockfree/telemetry"
)

// Map is the dictionary interface implemented by both List and SkipList.
// Keys are unique; Insert never overwrites.
type Map[K cmp.Ordered, V any] interface {
	// Insert adds key with value; it returns false (without modifying
	// anything) if key is already present.
	Insert(key K, value V) bool
	// Get returns the value stored at key.
	Get(key K) (V, bool)
	// Contains reports whether key is present.
	Contains(key K) bool
	// Delete removes key; it returns false if key was absent or a
	// concurrent Delete of the same key won the race.
	Delete(key K) bool
	// Len returns the number of keys. The value is exact whenever no
	// operations are in flight, and within the number of in-flight
	// operations otherwise.
	Len() int
	// Ascend calls fn on each key/value in ascending key order until fn
	// returns false. Iteration is weakly consistent: it reflects some
	// interleaving of concurrent updates, never a torn state.
	Ascend(fn func(key K, value V) bool)
}

// List is a lock-free sorted linked list dictionary. Operations take time
// linear in the list length; the amortized cost under contention is
// O(n + c) (paper, Section 3.4). Create with NewList.
type List[K cmp.Ordered, V any] struct {
	l *core.List[K, V]
}

var _ Map[int, any] = (*List[int, any])(nil)

// NewList returns an empty list dictionary. The options that apply are
// WithTelemetry, WithRetireHook, and WithRecycling.
func NewList[K cmp.Ordered, V any](opts ...Option) *List[K, V] {
	cfg := applyConfig(opts)
	l := core.NewList[K, V]()
	if cfg.tel != nil {
		l.SetTelemetry(cfg.tel.Recorder())
	}
	if cfg.retire != nil {
		l.SetRetireHook(cfg.retire)
	}
	if cfg.recycle {
		l.EnableRecycling()
	}
	return &List[K, V]{l: l}
}

// Insert adds key with value; false if key is already present.
func (s *List[K, V]) Insert(key K, value V) bool {
	_, ok := s.l.Insert(nil, key, value)
	return ok
}

// Get returns the value stored at key.
func (s *List[K, V]) Get(key K) (V, bool) { return s.l.Get(nil, key) }

// Contains reports whether key is present.
func (s *List[K, V]) Contains(key K) bool {
	_, ok := s.l.Get(nil, key)
	return ok
}

// Delete removes key; false if absent (or a concurrent Delete won).
func (s *List[K, V]) Delete(key K) bool {
	_, ok := s.l.Delete(nil, key)
	return ok
}

// Len returns the number of keys.
func (s *List[K, V]) Len() int { return s.l.Len() }

// Ascend iterates keys in ascending order.
func (s *List[K, V]) Ascend(fn func(key K, value V) bool) { s.l.Ascend(fn) }

// SkipList is a lock-free skip list dictionary with expected O(log n)
// operations. Create with NewSkipList.
type SkipList[K cmp.Ordered, V any] struct {
	l *core.SkipList[K, V]
}

var _ Map[int, any] = (*SkipList[int, any])(nil)

// Option configures a List, SkipList, or PriorityQueue at construction.
// WithMaxLevel and WithRandomSource apply to the skip-list-based
// structures only; WithTelemetry applies to all.
type Option func(*config)

type config struct {
	maxLevel int
	rng      func() uint64
	tel      *telemetry.Telemetry
	retire   func(node any)
	recycle  bool
}

// coreSkipListOpts translates the config for the core skip-list
// constructors.
func (c *config) coreSkipListOpts() []core.SkipListOption {
	var opts []core.SkipListOption
	if c.maxLevel != 0 {
		opts = append(opts, core.WithMaxLevel(c.maxLevel))
	}
	if c.rng != nil {
		opts = append(opts, core.WithRandomSource(c.rng))
	}
	if c.retire != nil {
		opts = append(opts, core.WithRetireHook(c.retire))
	}
	if c.recycle {
		opts = append(opts, core.WithRecycling())
	}
	return opts
}

// applyConfig collects the options and returns the resolved config.
func applyConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithMaxLevel caps tower heights at maxLevel-1 (head towers use
// maxLevel). The default, 32, is ample for any in-memory dictionary;
// lower it only to bound memory for small fixed-size sets. Values are
// clamped to [2, 64].
func WithMaxLevel(maxLevel int) Option {
	return func(c *config) { c.maxLevel = maxLevel }
}

// WithRandomSource replaces the source of random bits used for tower
// heights, e.g. for deterministic tests. The function must be safe for
// concurrent use.
func WithRandomSource(rng func() uint64) Option {
	return func(c *config) { c.rng = rng }
}

// WithTelemetry attaches live metrics to the structure: every operation
// flushes its essential-step counts (the paper's Section 3.4 accounting)
// plus one latency and one retry sample into t's sharded counters. Read
// them with t.Snapshot()/t.Delta(), the Prometheus handler, or expvar; see
// package repro/lockfree/telemetry. Attaching the same Telemetry to
// several structures sums their metrics. Without this option the structure
// records nothing and pays one nil-check branch per operation.
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(c *config) { c.tel = t }
}

// WithRecycling enables epoch-based node recycling (internal/ebr): nodes
// unlinked by Delete pass through epoch-stamped retire lists and, once no
// concurrent operation can still hold them, onto per-P free lists that
// Insert consults before allocating. Steady-state insert-after-delete
// traffic then allocates nothing — towers included — trading a pin/unpin
// pair (two striped atomic adds) per operation for the GC pressure of
// the write path. Amortize even that with PinProc around batches.
func WithRecycling() Option {
	return func(c *config) { c.recycle = true }
}

// NewSkipList returns an empty skip-list dictionary.
func NewSkipList[K cmp.Ordered, V any](opts ...Option) *SkipList[K, V] {
	cfg := applyConfig(opts)
	l := core.NewSkipList[K, V](cfg.coreSkipListOpts()...)
	if cfg.tel != nil {
		l.SetTelemetry(cfg.tel.Recorder())
	}
	return &SkipList[K, V]{l: l}
}

// Insert adds key with value; false if key is already present.
func (s *SkipList[K, V]) Insert(key K, value V) bool {
	_, ok := s.l.Insert(nil, key, value)
	return ok
}

// Get returns the value stored at key.
func (s *SkipList[K, V]) Get(key K) (V, bool) { return s.l.Get(nil, key) }

// Contains reports whether key is present.
func (s *SkipList[K, V]) Contains(key K) bool {
	_, ok := s.l.Get(nil, key)
	return ok
}

// Delete removes key; false if absent (or a concurrent Delete won).
func (s *SkipList[K, V]) Delete(key K) bool {
	_, ok := s.l.Delete(nil, key)
	return ok
}

// Len returns the number of keys.
func (s *SkipList[K, V]) Len() int { return s.l.Len() }

// Ascend iterates keys in ascending order.
func (s *SkipList[K, V]) Ascend(fn func(key K, value V) bool) { s.l.Ascend(fn) }

// AscendRange iterates keys in [from, to) in ascending order. Iteration is
// weakly consistent under concurrent updates.
func (s *SkipList[K, V]) AscendRange(from, to K, fn func(key K, value V) bool) {
	s.l.AscendRange(nil, from, to, fn)
}

// Min returns the smallest key and its value; ok is false when empty.
func (s *SkipList[K, V]) Min() (key K, value V, ok bool) {
	s.l.Ascend(func(k K, v V) bool {
		key, value, ok = k, v, true
		return false
	})
	return key, value, ok
}

// DeleteMin removes and returns the smallest key, retrying if a concurrent
// operation takes it first; ok is false when the skip list is empty. It
// turns the skip list into a concurrent priority queue (the Lotan-Shavit
// use case from the paper's Section 2).
func (s *SkipList[K, V]) DeleteMin() (key K, value V, ok bool) {
	for {
		k, v, found := s.Min()
		if !found {
			var zk K
			var zv V
			return zk, zv, false
		}
		if s.Delete(k) {
			return k, v, true
		}
		// Someone else deleted k first; retry with the new minimum.
	}
}
