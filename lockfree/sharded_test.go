package lockfree

import (
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/lockfree/telemetry"
)

func TestShardedSkipListBasic(t *testing.T) {
	s := NewShardedSkipList[int, string](EqualSplitters(0, 400, 4))
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	for k := 0; k < 400; k += 7 {
		if !s.Insert(k, "v") {
			t.Fatalf("Insert(%d) = false on empty map", k)
		}
	}
	if s.Insert(7, "dup") {
		t.Fatal("Insert of duplicate succeeded")
	}
	if !s.Contains(105) || s.Contains(106) {
		t.Fatal("Contains wrong around 105/106")
	}
	if v, ok := s.Get(14); !ok || v != "v" {
		t.Fatalf("Get(14) = %q, %v", v, ok)
	}
	if !s.Delete(14) || s.Delete(14) {
		t.Fatal("Delete(14) semantics wrong")
	}
	if want := (400+6)/7 - 1; s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	if err := s.Map().CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSkipListSatisfiesMap(t *testing.T) {
	var m Map[int, int] = NewShardedSkipList[int, int](EqualSplitters(0, 100, 2))
	m.Insert(1, 1)
	m.Insert(99, 99)
	var got []int
	m.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if !slices.Equal(got, []int{1, 99}) {
		t.Fatalf("Ascend = %v", got)
	}
}

func TestShardedSkipListBatchesAndRange(t *testing.T) {
	s := NewShardedSkipList[int, int](EqualSplitters(0, 1024, 8))
	items := make([]KV[int, int], 0, 256)
	for k := 0; k < 1024; k += 4 {
		items = append(items, KV[int, int]{Key: k, Value: k * 10})
	}
	rand.New(rand.NewSource(1)).Shuffle(len(items), func(i, j int) {
		items[i], items[j] = items[j], items[i]
	})
	inserted := make([]bool, len(items))
	if n := s.InsertBatch(items, inserted); n != len(items) {
		t.Fatalf("InsertBatch = %d, want %d", n, len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i-1].Key >= items[i].Key {
			t.Fatal("InsertBatch did not sort items in place")
		}
	}

	keys := []int{512, 3, 128, 1020, 640, 644}
	vals := make([]int, len(keys))
	found := make([]bool, len(keys))
	if n := s.GetBatch(keys, vals, found); n != 5 {
		t.Fatalf("GetBatch = %d, want 5", n)
	}
	for i, k := range keys { // keys now sorted: [3 128 512 640 644 1020]
		if wantOK := k%4 == 0; found[i] != wantOK {
			t.Fatalf("found[%d] (key %d) = %v", i, k, found[i])
		} else if wantOK && vals[i] != k*10 {
			t.Fatalf("vals[%d] = %d, want %d", i, vals[i], k*10)
		}
	}

	var ranged []int
	s.AscendRange(126, 516, func(k, v int) bool {
		if v != k*10 {
			t.Fatalf("AscendRange value %d for key %d", v, k)
		}
		ranged = append(ranged, k)
		return true
	})
	if len(ranged) == 0 || ranged[0] != 128 || ranged[len(ranged)-1] != 512 {
		t.Fatalf("AscendRange bounds wrong: first %d last %d", ranged[0], ranged[len(ranged)-1])
	}
	if !slices.IsSorted(ranged) {
		t.Fatal("AscendRange out of order")
	}

	del := []int{0, 4, 8, 12, 700, 1021}
	deleted := make([]bool, len(del))
	if n := s.DeleteBatch(del, deleted); n != 5 {
		t.Fatalf("DeleteBatch = %d, want 5", n)
	}
}

func TestShardedSkipListTelemetry(t *testing.T) {
	tel := telemetry.New("sharded-facade", telemetry.WithSampleEvery(1))
	s := NewShardedSkipList[int, int](EqualSplitters(0, 64, 4), WithTelemetry(tel))
	for k := 0; k < 64; k++ {
		s.Insert(k, k)
	}
	keys := make([]int, 16)
	for i := range keys {
		keys[i] = i * 4
	}
	s.GetBatch(keys, nil, nil)
	snap := tel.Snapshot()
	if want := uint64(64 + 16); snap.Counters.ShardOps != want {
		t.Fatalf("ShardOps = %d, want %d", snap.Counters.ShardOps, want)
	}
	if snap.Ops[telemetry.OpInsert].Count != 64 {
		t.Fatalf("OpInsert count = %d, want 64", snap.Ops[telemetry.OpInsert].Count)
	}
}

func TestShardedSkipListConcurrentFacade(t *testing.T) {
	s := NewShardedSkipList[int, int](EqualSplitters(0, 4096, 4))
	s.SetParallel(true)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				batch := make([]KV[int, int], 8)
				for j := range batch {
					k := rng.Intn(4096)
					batch[j] = KV[int, int]{Key: k, Value: k}
				}
				s.InsertBatch(batch, nil)
				keys := make([]int, 8)
				for j := range keys {
					keys[j] = rng.Intn(4096)
				}
				if rng.Intn(2) == 0 {
					s.GetBatch(keys, nil, nil)
				} else {
					s.DeleteBatch(keys, nil)
				}
				s.Insert(rng.Intn(4096), i)
				s.Delete(rng.Intn(4096))
			}
		}(int64(w))
	}
	wg.Wait()
	if err := s.Map().CheckStructure(); err != nil {
		t.Fatal(err)
	}
	prev := -1
	s.Ascend(func(k, _ int) bool {
		if k <= prev {
			t.Fatalf("Ascend not strictly increasing: %d after %d", k, prev)
		}
		prev = k
		return true
	})
}

func TestEqualSplitters(t *testing.T) {
	if got := EqualSplitters(0, 100, 1); len(got) != 0 {
		t.Fatalf("1 shard: %v", got)
	}
	if got := EqualSplitters(0, 100, 4); !slices.Equal(got, []int{25, 50, 75}) {
		t.Fatalf("EqualSplitters(0,100,4) = %v", got)
	}
	if got := EqualSplitters(-64, 64, 2); !slices.Equal(got, []int{0}) {
		t.Fatalf("EqualSplitters(-64,64,2) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EqualSplitters(0,100,3) did not panic")
		}
	}()
	EqualSplitters(0, 100, 3)
}
