package lockfree

import "repro/internal/core"

// KV pairs a key with a value for the InsertBatch methods.
type KV[K comparable, V any] = core.KV[K, V]

// WithRetireHook attaches fn to the structure's physical-deletion C&S
// sites: fn is called with each node whose unlinking C&S succeeds -
// exactly once per node, from whichever goroutine won the C&S, so fn must
// be safe for concurrent use. For skip lists fn fires once per level node
// of a deleted tower — the root usually FIRST (Delete unlinks level 1 to
// linearize, then sweeps the levels above, whose nodes still hold edges
// into the root). This is the seam memory-reclamation
// schemes (see repro/internal/ebr) hang on; most callers, who rely on the
// Go garbage collector, do not need it.
func WithRetireHook(fn func(node any)) Option {
	return func(c *config) { c.retire = fn }
}

// ListFinger is a cursor over a List (or ListFunc): it remembers where the
// previous operation ended and starts the next search there when the key
// is >= the remembered position, falling back to the head otherwise. In
// workloads with key locality - clustered accesses, sorted streams - this
// amortizes the search out of the hot path.
//
// A finger is owned by a single goroutine; the underlying list remains
// safe for any number of concurrent fingers and plain operations, and
// every operation through a finger is as linearizable as its plain
// counterpart. If the remembered node is concurrently deleted the finger
// recovers over the deletion's backlinks - it never restarts from the
// head unless the key ordering forces it. Obtain one from List.Finger or
// ListFunc.Finger.
type ListFinger[K comparable, V any] struct {
	f *core.Finger[K, V]
}

// Finger returns a new finger over the list, positioned at the head.
func (s *List[K, V]) Finger() *ListFinger[K, V] {
	return &ListFinger[K, V]{f: s.l.NewFinger()}
}

// Finger returns a new finger over the list, positioned at the head.
func (s *ListFunc[K, V]) Finger() *ListFinger[K, V] {
	return &ListFinger[K, V]{f: s.l.NewFinger()}
}

// Insert adds key with value, searching from the finger; false if key is
// already present.
func (s *ListFinger[K, V]) Insert(key K, value V) bool {
	_, ok := s.f.Insert(nil, key, value)
	return ok
}

// Get returns the value stored at key, searching from the finger.
func (s *ListFinger[K, V]) Get(key K) (V, bool) { return s.f.Get(nil, key) }

// Contains reports whether key is present, searching from the finger.
func (s *ListFinger[K, V]) Contains(key K) bool {
	_, ok := s.f.Get(nil, key)
	return ok
}

// Delete removes key, searching from the finger; false if absent (or a
// concurrent Delete won).
func (s *ListFinger[K, V]) Delete(key K) bool {
	_, ok := s.f.Delete(nil, key)
	return ok
}

// Reset forgets the remembered position: the next operation searches from
// the head and the finger drops its reference into the structure.
func (s *ListFinger[K, V]) Reset() { s.f.Reset() }

// SkipListFinger is a cursor over a SkipList (or SkipListFunc): it
// remembers the predecessor tower of the last search, one node per level,
// and starts the next search there when the key is >= the remembered
// position. See ListFinger for the ownership and consistency contract.
// Obtain one from SkipList.Finger or SkipListFunc.Finger.
type SkipListFinger[K comparable, V any] struct {
	f *core.SkipFinger[K, V]
}

// Finger returns a new finger over the skip list, positioned at the head
// tower.
func (s *SkipList[K, V]) Finger() *SkipListFinger[K, V] {
	return &SkipListFinger[K, V]{f: s.l.NewFinger()}
}

// Finger returns a new finger over the skip list, positioned at the head
// tower.
func (s *SkipListFunc[K, V]) Finger() *SkipListFinger[K, V] {
	return &SkipListFinger[K, V]{f: s.l.NewFinger()}
}

// Insert adds key with value, searching from the finger; false if key is
// already present.
func (s *SkipListFinger[K, V]) Insert(key K, value V) bool {
	_, ok := s.f.Insert(nil, key, value)
	return ok
}

// Get returns the value stored at key, searching from the finger.
func (s *SkipListFinger[K, V]) Get(key K) (V, bool) { return s.f.Get(nil, key) }

// Contains reports whether key is present, searching from the finger.
func (s *SkipListFinger[K, V]) Contains(key K) bool {
	_, ok := s.f.Get(nil, key)
	return ok
}

// Delete removes key, searching from the finger; false if absent (or a
// concurrent Delete won).
func (s *SkipListFinger[K, V]) Delete(key K) bool {
	_, ok := s.f.Delete(nil, key)
	return ok
}

// Reset forgets the remembered position.
func (s *SkipListFinger[K, V]) Reset() { s.f.Reset() }

// The batch methods sort their argument slice IN PLACE, then thread one
// finger through the sorted keys, so a batch over a clustered key range
// costs one full search plus short hops - instead of one full search per
// element. Each element remains an independent linearizable operation;
// the batch as a whole is not atomic. Result slices may be nil; when
// non-nil they must have len >= len(keys) and are filled positionally
// against the SORTED order.

// GetBatch looks up every key, sorting keys in place first; vals[i] and
// found[i] (when non-nil) report the result for the i-th sorted key.
// Returns the number of keys found.
func (s *List[K, V]) GetBatch(keys []K, vals []V, found []bool) int {
	return s.l.GetBatch(nil, keys, vals, found)
}

// InsertBatch inserts every pair, sorting items in place by key first;
// inserted[i] (when non-nil) reports whether the i-th sorted pair was new.
// Returns the number of new keys.
func (s *List[K, V]) InsertBatch(items []KV[K, V], inserted []bool) int {
	return s.l.InsertBatch(nil, items, inserted)
}

// DeleteBatch deletes every key, sorting keys in place first; deleted[i]
// (when non-nil) reports whether this call deleted the i-th sorted key.
// Returns the number of keys deleted.
func (s *List[K, V]) DeleteBatch(keys []K, deleted []bool) int {
	return s.l.DeleteBatch(nil, keys, deleted)
}

// GetBatch looks up every key, sorting keys in place first; see
// List.GetBatch.
func (s *ListFunc[K, V]) GetBatch(keys []K, vals []V, found []bool) int {
	return s.l.GetBatch(nil, keys, vals, found)
}

// InsertBatch inserts every pair, sorting items in place by key first; see
// List.InsertBatch.
func (s *ListFunc[K, V]) InsertBatch(items []KV[K, V], inserted []bool) int {
	return s.l.InsertBatch(nil, items, inserted)
}

// DeleteBatch deletes every key, sorting keys in place first; see
// List.DeleteBatch.
func (s *ListFunc[K, V]) DeleteBatch(keys []K, deleted []bool) int {
	return s.l.DeleteBatch(nil, keys, deleted)
}

// GetBatch looks up every key, sorting keys in place first; see
// List.GetBatch.
func (s *SkipList[K, V]) GetBatch(keys []K, vals []V, found []bool) int {
	return s.l.GetBatch(nil, keys, vals, found)
}

// InsertBatch inserts every pair, sorting items in place by key first; see
// List.InsertBatch.
func (s *SkipList[K, V]) InsertBatch(items []KV[K, V], inserted []bool) int {
	return s.l.InsertBatch(nil, items, inserted)
}

// DeleteBatch deletes every key, sorting keys in place first; see
// List.DeleteBatch.
func (s *SkipList[K, V]) DeleteBatch(keys []K, deleted []bool) int {
	return s.l.DeleteBatch(nil, keys, deleted)
}

// GetBatch looks up every key, sorting keys in place first; see
// List.GetBatch.
func (s *SkipListFunc[K, V]) GetBatch(keys []K, vals []V, found []bool) int {
	return s.l.GetBatch(nil, keys, vals, found)
}

// InsertBatch inserts every pair, sorting items in place by key first; see
// List.InsertBatch.
func (s *SkipListFunc[K, V]) InsertBatch(items []KV[K, V], inserted []bool) int {
	return s.l.InsertBatch(nil, items, inserted)
}

// DeleteBatch deletes every key, sorting keys in place first; see
// List.DeleteBatch.
func (s *SkipListFunc[K, V]) DeleteBatch(keys []K, deleted []bool) int {
	return s.l.DeleteBatch(nil, keys, deleted)
}
