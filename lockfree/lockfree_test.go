package lockfree_test

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/lockfree"
)

// maps returns one instance of every Map implementation for table-driven
// tests.
func maps() map[string]lockfree.Map[int, int] {
	return map[string]lockfree.Map[int, int]{
		"List":     lockfree.NewList[int, int](),
		"SkipList": lockfree.NewSkipList[int, int](),
	}
}

func TestMapBasics(t *testing.T) {
	for name, m := range maps() {
		t.Run(name, func(t *testing.T) {
			if m.Contains(1) {
				t.Fatal("empty map contains a key")
			}
			if !m.Insert(1, 10) || m.Insert(1, 11) {
				t.Fatal("insert/duplicate-insert wrong")
			}
			if v, ok := m.Get(1); !ok || v != 10 {
				t.Fatalf("Get = %d, %t", v, ok)
			}
			if m.Len() != 1 {
				t.Fatalf("Len = %d", m.Len())
			}
			if !m.Delete(1) || m.Delete(1) {
				t.Fatal("delete/double-delete wrong")
			}
			if m.Len() != 0 {
				t.Fatalf("Len after delete = %d", m.Len())
			}
		})
	}
}

func TestMapAscendSorted(t *testing.T) {
	for name, m := range maps() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(1, 1))
			want := map[int]bool{}
			for i := 0; i < 500; i++ {
				k := int(rng.Uint64N(10000))
				m.Insert(k, k)
				want[k] = true
			}
			var got []int
			m.Ascend(func(k, _ int) bool { got = append(got, k); return true })
			if len(got) != len(want) || !sort.IntsAreSorted(got) {
				t.Fatalf("ascend: %d keys (want %d), sorted=%t",
					len(got), len(want), sort.IntsAreSorted(got))
			}
		})
	}
}

func TestMapAscendEarlyStop(t *testing.T) {
	for name, m := range maps() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				m.Insert(i, i)
			}
			n := 0
			m.Ascend(func(k, _ int) bool { n++; return k < 4 })
			if n != 5 {
				t.Fatalf("visited %d keys, want 5", n)
			}
		})
	}
}

func TestMapConcurrent(t *testing.T) {
	for name, m := range maps() {
		t.Run(name, func(t *testing.T) {
			const workers, ops, keyRange = 8, 1500, 64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(uint64(w), 9))
					for i := 0; i < ops; i++ {
						k := int(rng.Uint64N(keyRange))
						switch rng.Uint64N(3) {
						case 0:
							m.Insert(k, k)
						case 1:
							m.Delete(k)
						default:
							m.Contains(k)
						}
					}
				}(w)
			}
			wg.Wait()
			count := 0
			m.Ascend(func(_, _ int) bool { count++; return true })
			if m.Len() != count {
				t.Fatalf("Len = %d, traversal = %d", m.Len(), count)
			}
		})
	}
}

func TestMapMatchesBuiltinMapQuick(t *testing.T) {
	type step struct {
		Op  uint8
		Key uint8
	}
	for name, mk := range map[string]func() lockfree.Map[int, int]{
		"List":     func() lockfree.Map[int, int] { return lockfree.NewList[int, int]() },
		"SkipList": func() lockfree.Map[int, int] { return lockfree.NewSkipList[int, int]() },
	} {
		t.Run(name, func(t *testing.T) {
			f := func(steps []step) bool {
				m := mk()
				model := map[int]int{}
				for _, s := range steps {
					k := int(s.Key) % 32
					switch s.Op % 3 {
					case 0:
						_, in := model[k]
						if m.Insert(k, k) == in {
							return false
						}
						model[k] = k
					case 1:
						_, in := model[k]
						if m.Delete(k) != in {
							return false
						}
						delete(model, k)
					default:
						_, in := model[k]
						if m.Contains(k) != in {
							return false
						}
					}
				}
				return m.Len() == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSkipListAscendRange(t *testing.T) {
	m := lockfree.NewSkipList[int, string]()
	for i := 0; i < 100; i += 5 {
		m.Insert(i, fmt.Sprint(i))
	}
	var got []int
	m.AscendRange(12, 31, func(k int, _ string) bool { got = append(got, k); return true })
	want := []int{15, 20, 25, 30}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AscendRange = %v, want %v", got, want)
	}
}

func TestSkipListMinDeleteMin(t *testing.T) {
	m := lockfree.NewSkipList[int, string]()
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty succeeded")
	}
	if _, _, ok := m.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty succeeded")
	}
	m.Insert(30, "c")
	m.Insert(10, "a")
	m.Insert(20, "b")
	if k, v, ok := m.Min(); !ok || k != 10 || v != "a" {
		t.Fatalf("Min = %d, %q, %t", k, v, ok)
	}
	var order []int
	for {
		k, _, ok := m.DeleteMin()
		if !ok {
			break
		}
		order = append(order, k)
	}
	if fmt.Sprint(order) != "[10 20 30]" {
		t.Fatalf("DeleteMin order = %v", order)
	}
}

func TestSkipListDeleteMinConcurrent(t *testing.T) {
	m := lockfree.NewSkipList[int, int]()
	const n = 2000
	for i := 0; i < n; i++ {
		m.Insert(i, i)
	}
	const workers = 8
	var mu sync.Mutex
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k, _, ok := m.DeleteMin()
				if !ok {
					return
				}
				mu.Lock()
				if seen[k] {
					t.Errorf("key %d extracted twice", k)
				}
				seen[k] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("extracted %d keys, want %d", len(seen), n)
	}
}

func TestSkipListOptions(t *testing.T) {
	calls := 0
	m := lockfree.NewSkipList[int, int](
		lockfree.WithMaxLevel(4),
		lockfree.WithRandomSource(func() uint64 { calls++; return 0 }),
	)
	for i := 0; i < 50; i++ {
		m.Insert(i, i)
	}
	if calls == 0 {
		t.Fatal("custom random source never used")
	}
	if m.Len() != 50 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestStringKeys(t *testing.T) {
	m := lockfree.NewSkipList[string, int]()
	for i, w := range []string{"pear", "apple", "zebra", ""} {
		if !m.Insert(w, i) {
			t.Fatalf("Insert(%q) failed", w)
		}
	}
	var got []string
	m.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) || len(got) != 4 {
		t.Fatalf("ascend: %q", got)
	}
}

func ExampleNewSkipList() {
	m := lockfree.NewSkipList[string, int]()
	m.Insert("b", 2)
	m.Insert("a", 1)
	m.Insert("c", 3)
	m.Delete("b")
	m.Ascend(func(k string, v int) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// a 1
	// c 3
}
