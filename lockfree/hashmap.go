package lockfree

import (
	"cmp"

	"repro/internal/hashmap"
)

// HashMap is a fixed-capacity lock-free hash map whose buckets are the
// paper's linked lists - the "building block" construction of Michael
// (SPAA 2002) that the paper's related work discusses. Expected O(1 + c)
// operations at a sane load factor; no resizing. Unlike List and SkipList
// it does not provide ordered iteration.
type HashMap[K cmp.Ordered, V any] struct {
	m *hashmap.Map[K, V]
}

// NewHashMap returns a hash map with the given bucket count (rounded up to
// a power of two) and hash function. Use IntHash or StringHash for common
// key types, or supply your own.
func NewHashMap[K cmp.Ordered, V any](buckets int, hash func(K) uint64) *HashMap[K, V] {
	return &HashMap[K, V]{m: hashmap.New[K, V](buckets, hash)}
}

// IntHash mixes an integer key; pass to NewHashMap for integer keys.
func IntHash[K ~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64](k K) uint64 {
	return hashmap.IntHash(k)
}

// StringHash hashes a string key (FNV-1a); pass to NewHashMap for string
// keys.
func StringHash[K ~string](k K) uint64 { return hashmap.StringHash(k) }

// Insert adds key with value; false if key is already present.
func (h *HashMap[K, V]) Insert(key K, value V) bool { return h.m.Insert(key, value) }

// Get returns the value stored at key.
func (h *HashMap[K, V]) Get(key K) (V, bool) { return h.m.Get(key) }

// Contains reports whether key is present.
func (h *HashMap[K, V]) Contains(key K) bool { return h.m.Contains(key) }

// Delete removes key; false if absent (or a concurrent Delete won).
func (h *HashMap[K, V]) Delete(key K) bool { return h.m.Delete(key) }

// Len returns the number of keys (exact when no operations are in flight).
func (h *HashMap[K, V]) Len() int { return h.m.Len() }

// Range calls fn for every key/value until fn returns false. Iteration is
// weakly consistent and NOT globally key-ordered (use SkipList for that).
func (h *HashMap[K, V]) Range(fn func(key K, value V) bool) { h.m.Range(fn) }
