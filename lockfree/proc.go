package lockfree

import (
	"repro/internal/core"
	"repro/internal/ebr"
)

// Proc carries per-process instrumentation (step counters, adversary
// hooks) through an operation; see repro/internal/instrument. The *Proc
// variants below are the attribution seam of the serving layer's request
// observability: a caller that wants exact per-operation step counts —
// CAS attempts, backoff waits, finger hits — attaches a Proc whose Stats
// the operation fills. The plain methods are equivalent to passing nil.
//
// A Proc is single-goroutine state: never share one Proc between
// concurrent operations. On a ShardedSkipList, attaching a Proc to a
// batch serializes that batch's shard fan-out (the sub-runs write into
// the one Stats), so attribution costs parallelism for that call only —
// the intended trade for sampled observability.
type Proc = core.Proc

// Value hand-off contract: Insert and InsertBatch retain the value
// exactly as passed — no copy is taken, on insertion or ever after, and
// Get/GetBatch return the same value header. For reference-backed V
// (strings, slices) this means the backing bytes are shared with the
// structure for as long as the key may be observed, including through
// delete/re-insert races where a concurrent reader can still return the
// old node's value. Callers owning reusable buffers must therefore hand
// over immutable bytes: a string view of an append-only arena qualifies
// (the serving layer's parse arena relies on this — one allocation's
// chunk backs many inserted values); a []byte the caller will rewrite
// does not. The flip side is what makes the zero-allocation wire path
// possible: values read back can be written to the network as read-only
// views without defensive copying. TestValueHandOffRetention pins the
// no-copy property.

// InsertProc is Insert with per-operation instrumentation attached.
func (s *SkipList[K, V]) InsertProc(p *Proc, key K, value V) bool {
	_, ok := s.l.Insert(p, key, value)
	return ok
}

// GetProc is Get with per-operation instrumentation attached.
func (s *SkipList[K, V]) GetProc(p *Proc, key K) (V, bool) { return s.l.Get(p, key) }

// DeleteProc is Delete with per-operation instrumentation attached.
func (s *SkipList[K, V]) DeleteProc(p *Proc, key K) bool {
	_, ok := s.l.Delete(p, key)
	return ok
}

// InsertBatchProc is InsertBatch with per-batch instrumentation attached.
func (s *SkipList[K, V]) InsertBatchProc(p *Proc, items []KV[K, V], inserted []bool) int {
	return s.l.InsertBatch(p, items, inserted)
}

// GetBatchProc is GetBatch with per-batch instrumentation attached.
func (s *SkipList[K, V]) GetBatchProc(p *Proc, keys []K, vals []V, found []bool) int {
	return s.l.GetBatch(p, keys, vals, found)
}

// DeleteBatchProc is DeleteBatch with per-batch instrumentation attached.
func (s *SkipList[K, V]) DeleteBatchProc(p *Proc, keys []K, deleted []bool) int {
	return s.l.DeleteBatch(p, keys, deleted)
}

// InsertProc is Insert with per-operation instrumentation attached.
func (s *ShardedSkipList[K, V]) InsertProc(p *Proc, key K, value V) bool {
	_, ok := s.m.Insert(p, key, value)
	return ok
}

// GetProc is Get with per-operation instrumentation attached.
func (s *ShardedSkipList[K, V]) GetProc(p *Proc, key K) (V, bool) { return s.m.Get(p, key) }

// DeleteProc is Delete with per-operation instrumentation attached.
func (s *ShardedSkipList[K, V]) DeleteProc(p *Proc, key K) bool {
	_, ok := s.m.Delete(p, key)
	return ok
}

// InsertBatchProc is InsertBatch with per-batch instrumentation attached;
// the shard fan-out of this call runs serially (see Proc).
func (s *ShardedSkipList[K, V]) InsertBatchProc(p *Proc, items []KV[K, V], inserted []bool) int {
	return s.m.InsertBatch(p, items, inserted)
}

// GetBatchProc is GetBatch with per-batch instrumentation attached; the
// shard fan-out of this call runs serially (see Proc).
func (s *ShardedSkipList[K, V]) GetBatchProc(p *Proc, keys []K, vals []V, found []bool) int {
	return s.m.GetBatch(p, keys, vals, found)
}

// DeleteBatchProc is DeleteBatch with per-batch instrumentation attached;
// the shard fan-out of this call runs serially (see Proc).
func (s *ShardedSkipList[K, V]) DeleteBatchProc(p *Proc, keys []K, deleted []bool) int {
	return s.m.DeleteBatch(p, keys, deleted)
}

// EpochPin is an open critical section on a recycling structure's
// reclamation domain, returned by the PinProc methods. While held, no
// node the pinned operations traverse can have its memory recycled, and
// every operation carrying the associated Proc skips its own per-op
// pin/unpin — one pin amortized over a whole batch of calls. Release
// with Unpin (idempotent against the zero value); holding a pin
// indefinitely stalls the epoch, bounding reclamation at the retire-list
// cap (counted as ebr_stalled_epochs), so scope pins like locks.
type EpochPin struct {
	pin *ebr.Pin
	p   *Proc
}

// Unpin closes the critical section and detaches the token from the Proc.
func (e EpochPin) Unpin() {
	if e.p != nil {
		e.p.Epoch = nil
	}
	e.pin.Unpin()
}

// PinProc opens a critical section on the skip list's reclamation domain
// and installs the token in p.Epoch so the *Proc operations ride it.
// No-op (but still safe to Unpin) when recycling is off or p is nil.
func (s *SkipList[K, V]) PinProc(p *Proc) EpochPin {
	pin := s.l.PinEpoch()
	if pin != nil && p != nil {
		p.Epoch = pin
		return EpochPin{pin: pin, p: p}
	}
	return EpochPin{pin: pin}
}

// PinProc: see SkipList.PinProc.
func (s *List[K, V]) PinProc(p *Proc) EpochPin {
	pin := s.l.PinEpoch()
	if pin != nil && p != nil {
		p.Epoch = pin
		return EpochPin{pin: pin, p: p}
	}
	return EpochPin{pin: pin}
}

// RecycleCounts reports (recycled, dropped) reclamation totals for a
// recycling skip list: nodes pushed onto the free list vs. abandoned to
// the GC (stalled epoch, contention, or full pool). Zeros when recycling
// is off.
func (s *SkipList[K, V]) RecycleCounts() (recycled, dropped uint64) {
	return s.l.RecycleCounts()
}

// ForceReclaim attempts an epoch advance and drains quiesced retire
// batches; intended for quiescent points (tests, shutdown).
func (s *SkipList[K, V]) ForceReclaim() { s.l.ForceReclaim(nil) }

// RecycleCounts: see SkipList.RecycleCounts.
func (s *List[K, V]) RecycleCounts() (recycled, dropped uint64) {
	return s.l.RecycleCounts()
}

// ForceReclaim: see SkipList.ForceReclaim.
func (s *List[K, V]) ForceReclaim() { s.l.ForceReclaim(nil) }
