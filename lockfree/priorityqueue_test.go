package lockfree_test

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/lockfree"
)

func TestPriorityQueueOrdering(t *testing.T) {
	q := lockfree.NewPriorityQueue[int, string]()
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for {
		_, v, ok := q.PopMin()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("pop order = %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestPriorityQueueDuplicatePrioritiesFIFO(t *testing.T) {
	q := lockfree.NewPriorityQueue[int, int]()
	for i := 0; i < 10; i++ {
		q.Push(5, i) // same priority
	}
	q.Push(1, -1)
	if p, v, ok := q.PeekMin(); !ok || p != 1 || v != -1 {
		t.Fatalf("PeekMin = %d, %d, %t", p, v, ok)
	}
	q.PopMin() // drop the priority-1 entry
	for i := 0; i < 10; i++ {
		p, v, ok := q.PopMin()
		if !ok || p != 5 || v != i {
			t.Fatalf("pop %d = (%d,%d,%t), want FIFO within priority", i, p, v, ok)
		}
	}
}

func TestPriorityQueueEmpty(t *testing.T) {
	q := lockfree.NewPriorityQueue[int, int]()
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("PopMin on empty succeeded")
	}
	if _, _, ok := q.PeekMin(); ok {
		t.Fatal("PeekMin on empty succeeded")
	}
}

func TestPriorityQueueConcurrentProducersConsumers(t *testing.T) {
	q := lockfree.NewPriorityQueue[int, int]()
	const producers, perProducer, consumers = 4, 500, 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(p), 1))
			for i := 0; i < perProducer; i++ {
				q.Push(int(rng.Uint64N(100)), p*perProducer+i)
			}
		}(p)
	}
	wg.Wait()

	var mu sync.Mutex
	seen := map[int]bool{}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, v, ok := q.PopMin()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("value %d popped twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("popped %d values, want %d", len(seen), producers*perProducer)
	}
}

// TestPriorityQueuePerConsumerMonotone: each consumer's stream of popped
// priorities must be non-decreasing when there are no concurrent pushes
// (a popped minimum cannot be followed by a smaller one).
func TestPriorityQueuePerConsumerMonotone(t *testing.T) {
	q := lockfree.NewPriorityQueue[int, int]()
	rng := rand.New(rand.NewPCG(9, 9))
	const n = 3000
	for i := 0; i < n; i++ {
		q.Push(int(rng.Uint64N(1000)), i)
	}
	const consumers = 4
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := -1
			for {
				p, _, ok := q.PopMin()
				if !ok {
					return
				}
				if p < prev {
					t.Errorf("priority went backwards: %d after %d", p, prev)
					return
				}
				prev = p
			}
		}()
	}
	wg.Wait()
}

func ExampleNewPriorityQueue() {
	q := lockfree.NewPriorityQueue[int, string]()
	q.Push(2, "second")
	q.Push(1, "first")
	for {
		p, v, ok := q.PopMin()
		if !ok {
			break
		}
		fmt.Println(p, v)
	}
	// Output:
	// 1 first
	// 2 second
}
