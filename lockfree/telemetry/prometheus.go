package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/instrument"
	itel "repro/internal/telemetry"
)

// Prometheus text exposition. Every metric carries a structure="<name>"
// label; deterministic ordering (counters in the canonical vocabulary
// order, then per-op series, instances sorted by name) keeps the output
// diff-able and golden-testable.
//
// Counter metrics map one-to-one onto the paper's Section 3.4 accounting:
//
//	lockfree_cas_attempts_total        C&S attempts (essential step)
//	lockfree_cas_successes_total       C&S that changed shared state
//	lockfree_backlink_traversals_total backlink steps (essential step)
//	lockfree_next_updates_total        next_node updates (essential step)
//	lockfree_curr_updates_total        curr_node advances (essential step)
//	lockfree_help_calls_total          helping-routine invocations
//	lockfree_restarts_total            restart-from-head events (baselines)
//	lockfree_aux_traversals_total      auxiliary-cell steps (baselines)
//
// plus per-operation series labeled op="insert"|"get"|"delete"|"ascend":
//
//	lockfree_ops_total                 completed operations
//	lockfree_op_latency_seconds        latency histogram
//	lockfree_op_retries                failed-C&S-per-operation histogram

// counterHelp documents each counter for the # HELP line, keyed by the
// canonical vocabulary index.
var counterHelp = [itel.NumCounters]string{
	"Total C&S attempts, successful or not (essential step, paper S3.4).",
	"Total C&S that changed shared state.",
	"Total backlink pointer traversals during recovery (essential step, paper S3.4).",
	"Total next_node pointer updates inside searches (essential step, paper S3.4).",
	"Total curr_node pointer advances inside searches (essential step, paper S3.4).",
	"Total helping-routine invocations (HelpFlagged/HelpMarked).",
	"Total restart-from-head events (Harris-style baselines; 0 for FR structures).",
	"Total auxiliary-cell traversals (Valois-style baselines; 0 for FR structures).",
	"Total finger searches started at the remembered node instead of the head/top.",
	"Total finger searches that fell back to the head/top (key below the finger, or cold finger).",
	"Total adaptive-backoff waits (spin or yield) taken after repeated C&S failures.",
	"Total operations routed to shards of range-sharded maps (one per point op, one per batch element).",
	"Total network connections accepted by the serving layer.",
	"Network connections currently open (accepted minus closed).",
	"Total connections shed at accept time by the connection cap.",
	"Total pipelined commands absorbed into coalesced batch calls by the serving layer.",
	"Total commands whose store execution crossed the serving layer's slow-trace threshold.",
	"Total connections auto-detected as RESP2 by their first byte.",
	"Total reply flushes by the serving layer (one vectored write per coalesced run).",
	"Total command units merged into cross-connection group batches by the serving layer.",
	"Total global epoch advances of the reclamation domain (epoch-based recycling).",
	"Total retired nodes pushed onto recycling free lists after their grace period.",
	"Total node constructions served from a recycling free list instead of the allocator.",
	"Total node constructions that missed the free list and allocated.",
	"Total retirements abandoned to the GC because a stalled epoch pinned the retire list at its cap.",
	"Total mutation records published to the write-ahead log's hand-off ring.",
	"Total group-commit fsyncs by the write-ahead log's writer goroutine.",
	"Total framed record bytes written to write-ahead-log segments.",
	"Total key/value pairs streamed into on-disk snapshots.",
}

// WriteMetrics writes the Prometheus text exposition of the given
// instances to w in deterministic order.
func WriteMetrics(w io.Writer, instances ...*Telemetry) error {
	type inst struct {
		name string
		snap Snapshot
	}
	snaps := make([]inst, 0, len(instances))
	for _, t := range instances {
		snaps = append(snaps, inst{t.name, t.Snapshot()})
	}

	bw := &errWriter{w: w}

	// Essential-step and diagnostic counters. Gauge-class entries (levels,
	// e.g. conn_active) drop the _total suffix and export as gauges.
	for c := 0; c < itel.NumCounters; c++ {
		name := "lockfree_" + itel.CounterName(c) + "_total"
		typ := "counter"
		if instrument.Counter(c).Gauge() {
			name = "lockfree_" + itel.CounterName(c)
			typ = "gauge"
		}
		bw.printf("# HELP %s %s\n", name, counterHelp[c])
		bw.printf("# TYPE %s %s\n", name, typ)
		for _, in := range snaps {
			bw.printf("%s{structure=%q} %d\n", name, in.name, in.snap.Counters.Vector()[c])
		}
	}

	// Operation counts.
	bw.printf("# HELP lockfree_ops_total Completed operations by kind.\n")
	bw.printf("# TYPE lockfree_ops_total counter\n")
	for _, in := range snaps {
		for op := Op(0); op < NumOps; op++ {
			bw.printf("lockfree_ops_total{structure=%q,op=%q} %d\n",
				in.name, op.String(), in.snap.Ops[op].Count)
		}
	}

	// Latency histogram.
	bw.printf("# HELP lockfree_op_latency_seconds Operation wall-clock latency by kind.\n")
	bw.printf("# TYPE lockfree_op_latency_seconds histogram\n")
	for _, in := range snaps {
		for op := Op(0); op < NumOps; op++ {
			o := in.snap.Ops[op]
			var cum uint64
			for b, count := range o.Latency {
				cum += count
				le := "+Inf"
				if b < len(itel.LatencyBuckets) {
					le = formatFloat(itel.LatencyBuckets[b].Seconds())
				}
				bw.printf("lockfree_op_latency_seconds_bucket{structure=%q,op=%q,le=%q} %d\n",
					in.name, op.String(), le, cum)
			}
			bw.printf("lockfree_op_latency_seconds_sum{structure=%q,op=%q} %s\n",
				in.name, op.String(), formatFloat(float64(o.LatencySumNanos)/1e9))
			// _count is the number of sampled operations (== the +Inf
			// bucket), which may be fewer than lockfree_ops_total when the
			// recorder samples histograms.
			bw.printf("lockfree_op_latency_seconds_count{structure=%q,op=%q} %d\n",
				in.name, op.String(), o.LatencySamples())
		}
	}

	// Retry (failed C&S per operation) histogram.
	bw.printf("# HELP lockfree_op_retries Failed C&S attempts per operation by kind (contention).\n")
	bw.printf("# TYPE lockfree_op_retries histogram\n")
	for _, in := range snaps {
		for op := Op(0); op < NumOps; op++ {
			o := in.snap.Ops[op]
			var cum uint64
			for b, count := range o.Retries {
				cum += count
				le := "+Inf"
				if b < len(itel.RetryBuckets) {
					le = strconv.FormatUint(itel.RetryBuckets[b], 10)
				}
				bw.printf("lockfree_op_retries_bucket{structure=%q,op=%q,le=%q} %d\n",
					in.name, op.String(), le, cum)
			}
			bw.printf("lockfree_op_retries_sum{structure=%q,op=%q} %d\n",
				in.name, op.String(), o.RetrySum)
			bw.printf("lockfree_op_retries_count{structure=%q,op=%q} %d\n",
				in.name, op.String(), o.RetrySamples())
		}
	}
	return bw.err
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// representation that round-trips.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// errWriter latches the first write error so the renderer stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Handler returns an http.Handler serving the Prometheus text exposition
// of every registered Telemetry instance, followed by every registered
// Collector (see RegisterCollector). Mount it wherever the deployment
// scrapes, e.g. http.Handle("/metrics", telemetry.Handler()).
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteMetrics(w, registered()...); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := writeCollectors(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Handler returns an http.Handler serving this instance only.
func (t *Telemetry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveMetrics(w, t)
	})
}

func serveMetrics(w http.ResponseWriter, instances ...*Telemetry) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteMetrics(w, instances...); err != nil {
		// Headers are gone; nothing useful left to do but note it.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
