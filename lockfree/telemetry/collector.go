package telemetry

import (
	"io"
	"sort"
	"sync"
)

// A Collector contributes extra series to the package-level Prometheus
// Handler: it writes text exposition format to w and returns the first
// write error. The structure-level metrics render first, then every
// registered collector in name order. Collectors let layers above the
// structures — the serving layer's per-verb latency histograms, the
// runtime-metrics bridge — share the one /metrics endpoint without this
// package knowing about them.
type Collector func(w io.Writer) error

var (
	collectorMu sync.Mutex
	collectors  = map[string]Collector{}
)

// RegisterCollector adds c to the package-level Handler's output under
// name; a collector already registered under name is replaced (tools that
// rebuild their observability per run re-register freely). The collector
// must be safe for concurrent use — scrapes can overlap.
func RegisterCollector(name string, c Collector) {
	if name == "" || c == nil {
		panic("telemetry: collector needs a name and a function")
	}
	collectorMu.Lock()
	defer collectorMu.Unlock()
	collectors[name] = c
}

// UnregisterCollector removes the named collector; unknown names are
// ignored.
func UnregisterCollector(name string) {
	collectorMu.Lock()
	defer collectorMu.Unlock()
	delete(collectors, name)
}

// writeCollectors renders every registered collector in name order.
func writeCollectors(w io.Writer) error {
	collectorMu.Lock()
	names := make([]string, 0, len(collectors))
	for n := range collectors {
		names = append(names, n)
	}
	sort.Strings(names)
	cs := make([]Collector, len(names))
	for i, n := range names {
		cs[i] = collectors[n]
	}
	collectorMu.Unlock()
	for _, c := range cs {
		if err := c(w); err != nil {
			return err
		}
	}
	return nil
}
