package telemetry

import (
	"bytes"
	"io"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestWriteRuntimeMetrics(t *testing.T) {
	runtime.GC() // ensure at least one GC cycle and pause sample exists
	var buf bytes.Buffer
	if err := WriteRuntimeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"go_goroutines", "go_memory_heap_objects_bytes", "go_memory_total_bytes",
		"go_gc_heap_allocs_bytes_total", "go_gc_cycles_total",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("missing %s in:\n%s", name, out)
		}
	}
	// Histograms: +Inf bucket present and equal to _count.
	for _, name := range []string{"go_gc_pauses_seconds", "go_sched_latencies_seconds"} {
		infLine, countLine := "", ""
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, name+`_bucket{le="+Inf"}`) {
				infLine = line
			}
			if strings.HasPrefix(line, name+"_count ") {
				countLine = line
			}
		}
		if infLine == "" || countLine == "" {
			t.Fatalf("%s missing +Inf or _count:\n%s", name, out)
		}
		inf := infLine[strings.LastIndexByte(infLine, ' ')+1:]
		count := countLine[strings.LastIndexByte(countLine, ' ')+1:]
		if inf != count {
			t.Fatalf("%s +Inf %s != count %s", name, inf, count)
		}
	}
	// Bucket series must be cumulative.
	prev := uint64(0)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "go_gc_pauses_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-cumulative at %q", line)
		}
		prev = v
	}
}

func TestCollectorRegistry(t *testing.T) {
	RegisterCollector("test-collector", func(w io.Writer) error {
		_, err := w.Write([]byte("test_collector_metric 42\n"))
		return err
	})
	t.Cleanup(func() { UnregisterCollector("test-collector") })

	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "test_collector_metric 42") {
		t.Fatalf("collector output missing:\n%s", body)
	}
	// Runtime bridge rides the same registry.
	RegisterRuntimeCollector()
	t.Cleanup(func() { UnregisterCollector("runtime") })
	rr = httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "go_goroutines") {
		t.Fatalf("runtime collector missing:\n%s", rr.Body.String())
	}

	UnregisterCollector("test-collector")
	rr = httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rr.Body.String(), "test_collector_metric") {
		t.Fatal("unregistered collector still rendering")
	}

	mustPanic(t, func() { RegisterCollector("", WriteRuntimeMetrics) })
	mustPanic(t, func() { RegisterCollector("nil-fn", nil) })
}
