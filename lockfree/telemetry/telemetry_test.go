package telemetry

import (
	"bytes"
	"encoding/json"
	"expvar"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/instrument"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fill feeds a deterministic workload into t's recorder: fixed step
// counts and fixed (injected, not measured) latencies, so the rendered
// output is byte-stable.
func fill(t *Telemetry) {
	rec := t.Recorder()
	rec.RecordOp(OpInsert, &instrument.OpStats{
		CASAttempts: 4, CASSuccesses: 2, BacklinkTraversals: 3,
		NextUpdates: 10, CurrUpdates: 8, HelpCalls: 1,
	}, 3*time.Microsecond)
	rec.RecordOp(OpGet, &instrument.OpStats{
		NextUpdates: 5, CurrUpdates: 5,
	}, 400*time.Nanosecond)
	rec.RecordOp(OpDelete, &instrument.OpStats{
		CASAttempts: 9, CASSuccesses: 3, BacklinkTraversals: 2,
		NextUpdates: 4, CurrUpdates: 4, HelpCalls: 2,
	}, 80*time.Microsecond)
	rec.RecordOp(OpAscend, nil, 2*time.Millisecond)
}

func TestPrometheusGolden(t *testing.T) {
	tel := New("golden", WithShards(1))
	defer tel.Unregister()
	fill(tel)

	var buf bytes.Buffer
	if err := WriteMetrics(&buf, tel); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus output drifted from golden file (run go test ./lockfree/telemetry -update to regenerate)\n--- got ---\n%s", buf.String())
	}
}

func TestPrometheusHistogramInvariants(t *testing.T) {
	tel := New("hist-inv", WithShards(1))
	defer tel.Unregister()
	fill(tel)
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, tel); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every histogram's +Inf bucket must equal its _count series; spot-check
	// the insert latency histogram.
	if !strings.Contains(out, `lockfree_op_latency_seconds_bucket{structure="hist-inv",op="insert",le="+Inf"} 1`) {
		t.Fatalf("+Inf bucket missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, `lockfree_op_latency_seconds_count{structure="hist-inv",op="insert"} 1`) {
		t.Fatalf("count series missing:\n%s", out)
	}
	// The acceptance-critical counters must be present with their exact
	// names.
	for _, name := range []string{
		"lockfree_cas_attempts_total", "lockfree_backlink_traversals_total",
	} {
		if !strings.Contains(out, name+`{structure="hist-inv"} `) {
			t.Fatalf("counter %s missing:\n%s", name, out)
		}
	}
}

func TestHTTPHandlers(t *testing.T) {
	a := New("handler-a", WithShards(1))
	defer a.Unregister()
	b := New("handler-b", WithShards(1))
	defer b.Unregister()
	fill(a)

	// Per-instance handler serves only its own structure label.
	rr := httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rr.Body.String()
	if !strings.Contains(body, `structure="handler-a"`) || strings.Contains(body, `structure="handler-b"`) {
		t.Fatalf("per-instance handler body wrong:\n%s", body)
	}

	// Package handler serves every registered instance.
	rr = httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body = rr.Body.String()
	if !strings.Contains(body, `structure="handler-a"`) || !strings.Contains(body, `structure="handler-b"`) {
		t.Fatalf("package handler body wrong:\n%s", body)
	}
}

func TestExpvarRoundTrip(t *testing.T) {
	tel := New("expvar-rt", WithShards(1))
	defer tel.Unregister()
	tel.PublishExpvar()
	tel.PublishExpvar() // idempotent, must not panic
	fill(tel)

	v := expvar.Get("lockfree:expvar-rt")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var decoded struct {
		Counters map[string]uint64 `json:"counters"`
		Ops      map[string]struct {
			Count        uint64 `json:"count"`
			LatencySumNS uint64 `json:"latency_sum_ns"`
			P99          int64  `json:"latency_p99_ns"`
		} `json:"ops"`
		EssentialSteps uint64 `json:"essential_steps_total"`
		OpsTotal       uint64 `json:"ops_total"`
	}
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar output is not JSON: %v\n%s", err, v.String())
	}
	if decoded.Counters["cas_attempts"] != 13 || decoded.Counters["backlink_traversals"] != 5 {
		t.Fatalf("counters wrong: %+v", decoded.Counters)
	}
	if decoded.Ops["insert"].Count != 1 || decoded.Ops["insert"].LatencySumNS != 3000 {
		t.Fatalf("insert op wrong: %+v", decoded.Ops["insert"])
	}
	if decoded.OpsTotal != 4 {
		t.Fatalf("ops_total = %d", decoded.OpsTotal)
	}
	// essential = cas_attempts(13) + backlinks(5) + next(19) + curr(17) = 54
	if decoded.EssentialSteps != 54 {
		t.Fatalf("essential_steps_total = %d", decoded.EssentialSteps)
	}
	// A fresh sample changes the published value: expvar serves live data.
	tel.Recorder().RecordOp(OpGet, nil, time.Microsecond)
	if !strings.Contains(expvar.Get("lockfree:expvar-rt").String(), `"ops_total":5`) {
		t.Fatalf("expvar did not track new ops: %s", expvar.Get("lockfree:expvar-rt").String())
	}
}

func TestRegistryNames(t *testing.T) {
	tel := New("dup-name")
	defer tel.Unregister()
	mustPanic(t, func() { New("dup-name") })
	mustPanic(t, func() { New("") })
	// After Unregister the name is reusable.
	tel2 := New("dup-name-2")
	tel2.Unregister()
	tel3 := New("dup-name-2")
	tel3.Unregister()
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestSnapshotAndDelta(t *testing.T) {
	tel := New("snap-delta", WithShards(2))
	defer tel.Unregister()
	fill(tel)
	s := tel.Snapshot()
	if s.TotalOps() != 4 {
		t.Fatalf("TotalOps = %d", s.TotalOps())
	}
	d := tel.Delta()
	if d.TotalOps() != 4 {
		t.Fatalf("first Delta = %d ops", d.TotalOps())
	}
	if d2 := tel.Delta(); d2.TotalOps() != 0 {
		t.Fatalf("idle Delta = %d ops", d2.TotalOps())
	}
}
