// Package telemetry exposes live metrics for the lock-free structures in
// package lockfree: the paper's essential-step counters (Section 3.4 cost
// accounting - C&S attempts, backlink traversals, next/curr updates, help
// calls), operation counts, and fixed-bucket latency and retry histograms
// per operation kind.
//
// Attach a Telemetry to a structure at construction time:
//
//	tel := telemetry.New("sessions")
//	m := lockfree.NewSkipList[string, int](lockfree.WithTelemetry(tel))
//
// and read it three ways:
//
//   - tel.Snapshot() / tel.Delta() return typed structs for programmatic
//     consumption;
//   - tel.PublishExpvar() registers the snapshot under "lockfree:sessions"
//     in the standard expvar registry (and thus /debug/vars);
//   - telemetry.Handler() (all instances) or tel.Handler() (one instance)
//     serve Prometheus text exposition format over HTTP.
//
// Telemetry is opt-in. A structure built without WithTelemetry pays one
// nil-check branch per operation and nothing else; an attached Telemetry
// costs two monotonic clock reads plus one flush of striped,
// cache-line-padded atomic counters per completed operation - never a
// shared write per step. See DESIGN.md "Observability" for the mapping
// from each metric to the paper's accounting.
package telemetry

import (
	"expvar"
	"fmt"
	"sort"
	"sync"

	itel "repro/internal/telemetry"
)

// Snapshot is a point-in-time copy of every metric of one structure; see
// the internal telemetry package for field documentation.
type Snapshot = itel.Snapshot

// OpSnapshot is the per-operation-kind slice of a Snapshot.
type OpSnapshot = itel.OpSnapshot

// Op identifies an operation kind.
type Op = itel.Op

// Operation kinds, re-exported for indexing Snapshot.Ops.
const (
	OpInsert = itel.OpInsert
	OpGet    = itel.OpGet
	OpDelete = itel.OpDelete
	OpAscend = itel.OpAscend
	NumOps   = itel.NumOps
)

// Telemetry collects live metrics for one structure (or one group of
// structures - attaching the same Telemetry to several structures sums
// their metrics). Construct with New; the zero value is not usable.
type Telemetry struct {
	name string
	rec  *itel.Recorder
}

// Option configures a Telemetry.
type Option func(*cfg)

type cfg struct {
	shards      int
	sampleEvery int
}

// WithShards overrides the number of counter stripes (rounded up to a
// power of two, default 2 x GOMAXPROCS). More shards cost memory and
// snapshot time but reduce flush contention at very high parallelism.
func WithShards(n int) Option { return func(c *cfg) { c.shards = n } }

// WithSampleEvery overrides the latency/retry histogram sampling period
// (rounded up to a power of two; 1 samples every operation, the default is
// one in 16). Step counters and operation counts are always exact;
// sampling only bounds how often an operation pays for clock reads and
// histogram updates.
func WithSampleEvery(n int) Option { return func(c *cfg) { c.sampleEvery = n } }

// registry holds every live instance for the package-level Handler.
var (
	registryMu sync.Mutex
	registry   = map[string]*Telemetry{}
)

// New returns a Telemetry named name and registers it for the
// package-level Handler. The name becomes the "structure" label of every
// exported metric and the expvar key "lockfree:<name>"; it must be
// non-empty and unused (Unregister frees a name).
func New(name string, opts ...Option) *Telemetry {
	if name == "" {
		panic("telemetry: empty name")
	}
	var c cfg
	for _, o := range opts {
		o(&c)
	}
	rec := itel.NewRecorder(c.shards)
	if c.sampleEvery > 0 {
		rec.SetSampleEvery(c.sampleEvery)
	}
	t := &Telemetry{name: name, rec: rec}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("telemetry: name %q already registered (Unregister it first)", name))
	}
	registry[name] = t
	return t
}

// Unregister removes t from the package-level Handler's registry, freeing
// its name for reuse. The expvar registration, if any, is permanent - the
// standard library offers no removal - and keeps serving t's snapshots
// until a successor instance publishes the same name.
func (t *Telemetry) Unregister() {
	registryMu.Lock()
	defer registryMu.Unlock()
	if registry[t.name] == t {
		delete(registry, t.name)
	}
}

// registered returns the live instances sorted by name.
func registered() []*Telemetry {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]*Telemetry, 0, len(registry))
	for _, t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Name returns the instance name.
func (t *Telemetry) Name() string { return t.name }

// Recorder returns the low-level recorder the structures flush into. It is
// the wiring hook used by lockfree.WithTelemetry and the cmd tools;
// applications normally have no reason to call it.
func (t *Telemetry) Recorder() *itel.Recorder { return t.rec }

// Snapshot returns a point-in-time copy of every metric.
func (t *Telemetry) Snapshot() Snapshot { return t.rec.Snapshot() }

// Delta returns the change since the previous Delta call (or since
// creation, for the first call). Handy for periodic rate reporting.
func (t *Telemetry) Delta() Snapshot { return t.rec.Delta() }

// expvarLive maps a published name to the instance currently serving it.
// The expvar registration itself is permanent - the standard library
// offers no removal - so the registered Func resolves the instance at read
// time: a Telemetry re-created under a published name (Unregister, then
// New and PublishExpvar again, as tools that run repeatedly in one process
// do) takes over the existing expvar entry instead of panicking on a
// duplicate Publish.
var (
	expvarMu   sync.Mutex
	expvarLive = map[string]*Telemetry{}
)

// PublishExpvar registers the instance in the standard expvar registry
// under "lockfree:<name>", so its snapshot appears as a JSON object in
// /debug/vars. Safe to call more than once, and safe to call for a name a
// previous (since unregistered) instance published - the entry switches to
// serving t's snapshots. Returns t for chaining.
func (t *Telemetry) PublishExpvar() *Telemetry {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	_, published := expvarLive[t.name]
	expvarLive[t.name] = t
	if !published {
		name := t.name
		expvar.Publish("lockfree:"+name, expvar.Func(func() any {
			expvarMu.Lock()
			cur := expvarLive[name]
			expvarMu.Unlock()
			return expvarView(cur.Snapshot())
		}))
	}
	return t
}

// expvarView renders a snapshot as the nested map expvar serializes to
// JSON: counters by canonical name, then per-op count/latency/retries.
func expvarView(s Snapshot) map[string]any {
	counters := map[string]uint64{}
	for c, v := range s.Counters.Vector() {
		counters[itel.CounterName(c)] = v
	}
	ops := map[string]any{}
	for op := Op(0); op < NumOps; op++ {
		o := s.Ops[op]
		view := map[string]any{
			"count":           o.Count,
			"latency_samples": o.LatencySamples(),
			"latency_sum_ns":  o.LatencySumNanos,
			"retry_sum":       o.RetrySum,
			"latency_buckets": o.Latency[:],
			"retry_buckets":   o.Retries[:],
		}
		if p50, ok := o.LatencyQuantile(0.50); ok {
			view["latency_p50_ns"] = p50.Nanoseconds()
		}
		if p99, ok := o.LatencyQuantile(0.99); ok {
			view["latency_p99_ns"] = p99.Nanoseconds()
		}
		ops[op.String()] = view
	}
	return map[string]any{
		"counters":              counters,
		"ops":                   ops,
		"essential_steps_total": s.Counters.EssentialSteps(),
		"ops_total":             s.TotalOps(),
	}
}
