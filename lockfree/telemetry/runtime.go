package telemetry

import (
	"io"
	"math"
	"runtime/metrics"
)

// The runtime/metrics bridge: a Collector exporting the Go runtime
// signals that explain serving-path tail latency the structures' own
// counters cannot — GC pause and scheduler-latency distributions, heap
// levels, goroutine count. A p999 spike with flat CAS retries and a fat
// /gc/pauses tail is a GC problem, not a contention problem; exporting
// both through one endpoint makes that attribution a single scrape.

// runtimeMetric maps one runtime/metrics sample to its Prometheus
// rendering.
type runtimeMetric struct {
	source string // runtime/metrics name
	name   string // exported Prometheus name
	help   string
	typ    string // "gauge", "counter", or "histogram"
}

var runtimeMetricSet = []runtimeMetric{
	{"/gc/pauses:seconds", "go_gc_pauses_seconds", "Distribution of stop-the-world GC pause latencies.", "histogram"},
	{"/sched/latencies:seconds", "go_sched_latencies_seconds", "Distribution of goroutine scheduling (runnable to running) latencies.", "histogram"},
	{"/sched/goroutines:goroutines", "go_goroutines", "Count of live goroutines.", "gauge"},
	{"/memory/classes/heap/objects:bytes", "go_memory_heap_objects_bytes", "Bytes occupied by live objects and dead objects not yet swept.", "gauge"},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "All memory mapped by the Go runtime.", "gauge"},
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes_total", "Cumulative bytes allocated on the heap.", "counter"},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total", "Completed GC cycles.", "counter"},
}

// WriteRuntimeMetrics renders the bridged runtime/metrics set in
// Prometheus text exposition format. Runtime histograms render their
// native bucket boundaries as cumulative le buckets (sparsely: only
// boundaries where the cumulative count moves, plus +Inf) with a _count
// series; the runtime does not publish a sum, so histograms carry no _sum.
func WriteRuntimeMetrics(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeMetricSet))
	for i, m := range runtimeMetricSet {
		samples[i].Name = m.source
	}
	metrics.Read(samples)

	ew := &errWriter{w: w}
	for i, m := range runtimeMetricSet {
		v := samples[i].Value
		switch v.Kind() {
		case metrics.KindUint64:
			ew.printf("# HELP %s %s\n# TYPE %s %s\n%s %d\n",
				m.name, m.help, m.name, m.typ, m.name, v.Uint64())
		case metrics.KindFloat64:
			ew.printf("# HELP %s %s\n# TYPE %s %s\n%s %s\n",
				m.name, m.help, m.name, m.typ, m.name, formatFloat(v.Float64()))
		case metrics.KindFloat64Histogram:
			writeRuntimeHistogram(ew, m, v.Float64Histogram())
		default:
			// KindBad: the metric does not exist in this runtime version;
			// skip it rather than fail the scrape.
		}
	}
	return ew.err
}

// writeRuntimeHistogram renders one runtime histogram. Counts[i] counts
// observations in [Buckets[i], Buckets[i+1]); the le value of that cell
// is its exclusive upper boundary, which Prometheus treats as inclusive —
// an error no larger than the runtime's own bucket resolution.
func writeRuntimeHistogram(w *errWriter, m runtimeMetric, h *metrics.Float64Histogram) {
	w.printf("# HELP %s %s\n# TYPE %s histogram\n", m.name, m.help, m.name)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c == 0 {
			continue // sparse: emit only boundaries where the count moves
		}
		le := h.Buckets[i+1]
		if math.IsInf(le, 1) {
			continue // folded into the +Inf sample below
		}
		w.printf("%s_bucket{le=%q} %d\n", m.name, formatFloat(le), cum)
	}
	w.printf("%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
	w.printf("%s_count %d\n", m.name, cum)
}

// RegisterRuntimeCollector registers the runtime/metrics bridge on the
// package-level Handler under the name "runtime", so one /metrics scrape
// serves structure metrics, serving-layer collectors, and runtime
// signals together. Idempotent.
func RegisterRuntimeCollector() {
	RegisterCollector("runtime", WriteRuntimeMetrics)
}
