package lockfree

import "repro/internal/core"

// NewListFunc returns a list dictionary over any comparable key type,
// ordered by the given comparison function. compare must define a strict
// total order consistent with ==: compare(a, b) == 0 iff a == b. Use this
// for struct keys, reversed orders, or collations; NewList covers the
// naturally ordered types. The options that apply are WithTelemetry and
// WithRetireHook.
func NewListFunc[K comparable, V any](compare func(K, K) int, opts ...Option) *ListFunc[K, V] {
	cfg := applyConfig(opts)
	l := core.NewListFunc[K, V](compare)
	if cfg.tel != nil {
		l.SetTelemetry(cfg.tel.Recorder())
	}
	if cfg.retire != nil {
		l.SetRetireHook(cfg.retire)
	}
	return &ListFunc[K, V]{l: l}
}

// ListFunc is a List over a caller-supplied key ordering.
type ListFunc[K comparable, V any] struct {
	l *core.List[K, V]
}

// Insert adds key with value; false if key is already present.
func (s *ListFunc[K, V]) Insert(key K, value V) bool {
	_, ok := s.l.Insert(nil, key, value)
	return ok
}

// Get returns the value stored at key.
func (s *ListFunc[K, V]) Get(key K) (V, bool) { return s.l.Get(nil, key) }

// Contains reports whether key is present.
func (s *ListFunc[K, V]) Contains(key K) bool {
	_, ok := s.l.Get(nil, key)
	return ok
}

// Delete removes key; false if absent (or a concurrent Delete won).
func (s *ListFunc[K, V]) Delete(key K) bool {
	_, ok := s.l.Delete(nil, key)
	return ok
}

// Len returns the number of keys.
func (s *ListFunc[K, V]) Len() int { return s.l.Len() }

// Ascend iterates keys in the comparison function's ascending order.
func (s *ListFunc[K, V]) Ascend(fn func(key K, value V) bool) { s.l.Ascend(fn) }

// NewSkipListFunc returns a skip-list dictionary over any comparable key
// type, ordered by the given comparison function (see NewListFunc for the
// contract). The PriorityQueue in this package is built on it.
func NewSkipListFunc[K comparable, V any](compare func(K, K) int, opts ...Option) *SkipListFunc[K, V] {
	cfg := applyConfig(opts)
	l := core.NewSkipListFunc[K, V](compare, cfg.coreSkipListOpts()...)
	if cfg.tel != nil {
		l.SetTelemetry(cfg.tel.Recorder())
	}
	return &SkipListFunc[K, V]{l: l}
}

// SkipListFunc is a SkipList over a caller-supplied key ordering.
type SkipListFunc[K comparable, V any] struct {
	l *core.SkipList[K, V]
}

// Insert adds key with value; false if key is already present.
func (s *SkipListFunc[K, V]) Insert(key K, value V) bool {
	_, ok := s.l.Insert(nil, key, value)
	return ok
}

// Get returns the value stored at key.
func (s *SkipListFunc[K, V]) Get(key K) (V, bool) { return s.l.Get(nil, key) }

// Contains reports whether key is present.
func (s *SkipListFunc[K, V]) Contains(key K) bool {
	_, ok := s.l.Get(nil, key)
	return ok
}

// Delete removes key; false if absent (or a concurrent Delete won).
func (s *SkipListFunc[K, V]) Delete(key K) bool {
	_, ok := s.l.Delete(nil, key)
	return ok
}

// Len returns the number of keys.
func (s *SkipListFunc[K, V]) Len() int { return s.l.Len() }

// Ascend iterates keys in the comparison function's ascending order.
func (s *SkipListFunc[K, V]) Ascend(fn func(key K, value V) bool) { s.l.Ascend(fn) }
