package lockfree_test

import (
	"sync"
	"testing"

	"repro/lockfree"
)

// TestMapInterfaceBehavioralParity runs the same deterministic script
// through every Map implementation; all of them must produce identical
// observable behaviour (they implement one abstract dictionary).
func TestMapInterfaceBehavioralParity(t *testing.T) {
	type step struct {
		op   string
		key  int
		want bool
	}
	script := []step{
		{"insert", 5, true},
		{"insert", 5, false},
		{"contains", 5, true},
		{"insert", 3, true},
		{"insert", 8, true},
		{"delete", 5, true},
		{"delete", 5, false},
		{"contains", 5, false},
		{"insert", 5, true},
		{"contains", 3, true},
		{"delete", 99, false},
	}
	impls := map[string]lockfree.Map[int, int]{
		"List":     lockfree.NewList[int, int](),
		"SkipList": lockfree.NewSkipList[int, int](),
	}
	for name, m := range impls {
		for i, s := range script {
			var got bool
			switch s.op {
			case "insert":
				got = m.Insert(s.key, s.key)
			case "delete":
				got = m.Delete(s.key)
			case "contains":
				got = m.Contains(s.key)
			}
			if got != s.want {
				t.Errorf("%s step %d %s(%d) = %t, want %t", name, i, s.op, s.key, got, s.want)
			}
		}
		if m.Len() != 3 {
			t.Errorf("%s: Len = %d, want 3", name, m.Len())
		}
	}
}

// TestValueAliasingSafety stores pointer values and checks the structures
// never hand back a different pointer or lose updates made through it.
func TestValueAliasingSafety(t *testing.T) {
	type box struct{ n int }
	m := lockfree.NewSkipList[int, *box]()
	b := &box{n: 1}
	m.Insert(1, b)
	got, _ := m.Get(1)
	if got != b {
		t.Fatal("value pointer identity lost")
	}
	got.n = 42
	again, _ := m.Get(1)
	if again.n != 42 {
		t.Fatal("mutation through the stored pointer lost")
	}
}

// TestConcurrentLenConvergence checks Len converges to the exact count in
// quiescent states after bursts of concurrent activity on every Map.
func TestConcurrentLenConvergence(t *testing.T) {
	impls := map[string]lockfree.Map[int, int]{
		"List":     lockfree.NewList[int, int](),
		"SkipList": lockfree.NewSkipList[int, int](),
	}
	for name, m := range impls {
		t.Run(name, func(t *testing.T) {
			for burst := 0; burst < 4; burst++ {
				var wg sync.WaitGroup
				for w := 0; w < 6; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						base := w * 100
						for i := 0; i < 100; i++ {
							m.Insert(base+i, i)
						}
						for i := 0; i < 100; i += 2 {
							m.Delete(base + i)
						}
					}(w)
				}
				wg.Wait()
				count := 0
				m.Ascend(func(_, _ int) bool { count++; return true })
				if m.Len() != count {
					t.Fatalf("burst %d: Len=%d traversal=%d", burst, m.Len(), count)
				}
			}
		})
	}
}
