package lockfree_test

import (
	"cmp"
	"sort"
	"testing"

	"repro/lockfree"
)

func descending(a, b int) int { return cmp.Compare(b, a) }

func TestListFuncDescending(t *testing.T) {
	l := lockfree.NewListFunc[int, int](descending)
	for _, k := range []int{2, 7, 1, 8, 2, 8} {
		l.Insert(k, k)
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(got))) || len(got) != 4 {
		t.Fatalf("descending list: %v", got)
	}
	if !l.Contains(7) || !l.Delete(7) || l.Contains(7) {
		t.Fatal("contains/delete wrong")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

type version struct{ major, minor int }

func compareVersion(a, b version) int {
	if c := cmp.Compare(a.major, b.major); c != 0 {
		return c
	}
	return cmp.Compare(a.minor, b.minor)
}

func TestSkipListFuncStructKeys(t *testing.T) {
	m := lockfree.NewSkipListFunc[version, string](compareVersion)
	releases := []version{{1, 2}, {0, 9}, {1, 0}, {2, 0}, {0, 10}}
	for _, v := range releases {
		if !m.Insert(v, "rel") {
			t.Fatalf("Insert(%v) failed", v)
		}
	}
	var got []version
	m.Ascend(func(k version, _ string) bool { got = append(got, k); return true })
	want := []version{{0, 9}, {0, 10}, {1, 0}, {1, 2}, {2, 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if v, ok := m.Get(version{1, 0}); !ok || v != "rel" {
		t.Fatalf("Get = %q, %t", v, ok)
	}
	if !m.Delete(version{1, 0}) || m.Delete(version{1, 0}) {
		t.Fatal("delete wrong")
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
}
