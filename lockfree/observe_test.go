package lockfree

import (
	"sync"
	"testing"

	"repro/lockfree/telemetry"
)

// TestWithTelemetryEndToEnd drives telemetry-enabled structures through a
// concurrent workload and checks the live metrics describe it: operation
// counts are exact, every operation contributed a latency sample, and the
// hot-path counters (C&S attempts, search pointer updates) are nonzero.
func TestWithTelemetryEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(tel *telemetry.Telemetry) Map[int, int]
	}{
		{"list", func(tel *telemetry.Telemetry) Map[int, int] {
			return NewList[int, int](WithTelemetry(tel))
		}},
		{"skiplist", func(tel *telemetry.Telemetry) Map[int, int] {
			return NewSkipList[int, int](WithTelemetry(tel))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Sample every operation so the histogram assertions are exact.
			tel := telemetry.New("e2e-"+tc.name, telemetry.WithSampleEvery(1))
			defer tel.Unregister()
			m := tc.build(tel)

			const workers = 4
			const perWorker = 500
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						k := (w*perWorker + i) % 64 // small range: contention
						switch i % 3 {
						case 0:
							m.Insert(k, k)
						case 1:
							m.Get(k)
						default:
							m.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()

			s := tel.Snapshot()
			total := workers * perWorker
			if got := s.TotalOps(); got != uint64(total) {
				t.Fatalf("TotalOps = %d, want %d", got, total)
			}
			// i%3 splits 500 ops as insert:167 get:167 delete:166 per worker.
			if s.Ops[telemetry.OpInsert].Count != 4*167 ||
				s.Ops[telemetry.OpGet].Count != 4*167 ||
				s.Ops[telemetry.OpDelete].Count != 4*166 {
				t.Fatalf("per-op counts: ins=%d get=%d del=%d",
					s.Ops[telemetry.OpInsert].Count, s.Ops[telemetry.OpGet].Count,
					s.Ops[telemetry.OpDelete].Count)
			}
			if s.Counters.CASAttempts == 0 || s.Counters.CASSuccesses == 0 {
				t.Fatalf("no C&S recorded: %+v", s.Counters)
			}
			if s.Counters.CurrUpdates == 0 {
				t.Fatalf("no search steps recorded: %+v", s.Counters)
			}
			if s.Counters.Restarts != 0 || s.Counters.AuxTraversals != 0 {
				t.Fatalf("FR structures must not restart or use aux cells: %+v", s.Counters)
			}
			// Every completed op left exactly one latency sample.
			for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
				var lat uint64
				for _, c := range s.Ops[op].Latency {
					lat += c
				}
				if lat != s.Ops[op].Count {
					t.Fatalf("op %v: %d latency samples for %d ops", op, lat, s.Ops[op].Count)
				}
			}
			// Iteration records under OpAscend.
			m.Ascend(func(k, v int) bool { return true })
			if got := tel.Snapshot().Ops[telemetry.OpAscend].Count; got != 1 {
				t.Fatalf("ascend count = %d", got)
			}
		})
	}
}

// TestWithTelemetryOnEveryConstructor checks the option is honored by all
// five public constructors.
func TestWithTelemetryOnEveryConstructor(t *testing.T) {
	tel := telemetry.New("ctors", telemetry.WithSampleEvery(1))
	defer tel.Unregister()

	NewList[int, int](WithTelemetry(tel)).Insert(1, 1)
	NewSkipList[int, int](WithTelemetry(tel)).Insert(1, 1)
	NewListFunc[int, int](func(a, b int) int { return a - b }, WithTelemetry(tel)).Insert(1, 1)
	NewSkipListFunc[int, int](func(a, b int) int { return a - b }, WithTelemetry(tel)).Insert(1, 1)
	q := NewPriorityQueue[int, string](WithTelemetry(tel))
	q.Push(3, "x")

	s := tel.Snapshot()
	if got := s.Ops[telemetry.OpInsert].Count; got != 5 {
		t.Fatalf("insert count across constructors = %d, want 5", got)
	}
	if s.Counters.CASSuccesses < 5 {
		t.Fatalf("CAS successes = %d", s.Counters.CASSuccesses)
	}
}

// TestTelemetrySharedBetweenStructures: one Telemetry attached to two
// structures sums their activity.
func TestTelemetrySharedBetweenStructures(t *testing.T) {
	tel := telemetry.New("shared")
	defer tel.Unregister()
	a := NewList[int, int](WithTelemetry(tel))
	b := NewSkipList[int, int](WithTelemetry(tel))
	a.Insert(1, 1)
	b.Insert(2, 2)
	if got := tel.Snapshot().Ops[telemetry.OpInsert].Count; got != 2 {
		t.Fatalf("shared insert count = %d", got)
	}
}

// TestTelemetryDefaultSampling pins the default histogram sampling: counts
// and counters are exact, latency samples arrive one in every 16 ops
// (deterministic on a single shard driven serially).
func TestTelemetryDefaultSampling(t *testing.T) {
	tel := telemetry.New("sampled", telemetry.WithShards(1))
	defer tel.Unregister()
	m := NewSkipList[int, int](WithTelemetry(tel))
	const ops = 200
	for i := 0; i < ops; i++ {
		m.Insert(i, i)
	}
	s := tel.Snapshot()
	ins := s.Ops[telemetry.OpInsert]
	if ins.Count != ops {
		t.Fatalf("count = %d, want %d (counts must stay exact under sampling)", ins.Count, ops)
	}
	// Step counters are scaled estimates from the sampled ops: nonzero, and
	// multiples of the period.
	if s.Counters.CASSuccesses == 0 || s.Counters.CASSuccesses%16 != 0 {
		t.Fatalf("scaled counter estimate wrong: %+v", s.Counters)
	}
	if got, want := ins.LatencySamples(), uint64(ops/16); got != want {
		t.Fatalf("latency samples = %d, want %d (1 in 16 of %d)", got, want, ops)
	}
	if got := ins.RetrySamples(); got != uint64(ops/16) {
		t.Fatalf("retry samples = %d", got)
	}
}

// TestNoTelemetryRecordsNothing pins the opt-in contract.
func TestNoTelemetryRecordsNothing(t *testing.T) {
	tel := telemetry.New("control")
	defer tel.Unregister()
	m := NewSkipList[int, int]() // no WithTelemetry
	m.Insert(1, 1)
	m.Get(1)
	if got := tel.Snapshot().TotalOps(); got != 0 {
		t.Fatalf("unattached telemetry saw %d ops", got)
	}
}
