package lockfree

import (
	"cmp"
	"sync/atomic"

	"repro/internal/core"
)

// PriorityQueue is a lock-free concurrent priority queue built on the
// skip list — the construction of Lotan-Shavit and Sundell-Tsigas that the
// paper's related work discusses. Push never fails; PopMin extracts an
// element with minimal priority. Duplicate priorities are allowed: entries
// are tie-broken by insertion sequence, so PopMin is FIFO within a
// priority class.
type PriorityQueue[P cmp.Ordered, V any] struct {
	sl  *core.SkipList[pqKey[P], V]
	seq atomic.Uint64
}

// pqKey orders entries by priority, then by insertion sequence.
type pqKey[P cmp.Ordered] struct {
	priority P
	seq      uint64
}

func comparePQKey[P cmp.Ordered](a, b pqKey[P]) int {
	if c := cmp.Compare(a.priority, b.priority); c != 0 {
		return c
	}
	return cmp.Compare(a.seq, b.seq)
}

// NewPriorityQueue returns an empty queue. Options configure the
// underlying skip list.
func NewPriorityQueue[P cmp.Ordered, V any](opts ...Option) *PriorityQueue[P, V] {
	cfg := applyConfig(opts)
	sl := core.NewSkipListFunc[pqKey[P], V](comparePQKey[P], cfg.coreSkipListOpts()...)
	if cfg.tel != nil {
		sl.SetTelemetry(cfg.tel.Recorder())
	}
	return &PriorityQueue[P, V]{sl: sl}
}

// Push inserts value with the given priority.
func (q *PriorityQueue[P, V]) Push(priority P, value V) {
	key := pqKey[P]{priority: priority, seq: q.seq.Add(1)}
	// seq is unique per queue, so the insert cannot hit a duplicate key.
	q.sl.Insert(nil, key, value)
}

// PopMin removes and returns an element with minimal priority; ok is false
// when the queue is empty. Under concurrency, competing consumers each
// receive distinct elements.
func (q *PriorityQueue[P, V]) PopMin() (priority P, value V, ok bool) {
	for {
		k, v, found := q.min()
		if !found {
			var zp P
			var zv V
			return zp, zv, false
		}
		if _, deleted := q.sl.Delete(nil, k); deleted {
			return k.priority, v, true
		}
		// Lost the race to another consumer; retry with the new minimum.
	}
}

// PeekMin returns an element with minimal priority without removing it.
func (q *PriorityQueue[P, V]) PeekMin() (priority P, value V, ok bool) {
	k, v, found := q.min()
	if !found {
		var zp P
		var zv V
		return zp, zv, false
	}
	return k.priority, v, true
}

func (q *PriorityQueue[P, V]) min() (pqKey[P], V, bool) {
	var key pqKey[P]
	var val V
	found := false
	q.sl.Ascend(func(k pqKey[P], v V) bool {
		key, val, found = k, v, true
		return false
	})
	return key, val, found
}

// Len returns the number of queued elements (exact when quiescent).
func (q *PriorityQueue[P, V]) Len() int { return q.sl.Len() }
