package lockfree_test

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/lockfree"
)

func TestExtremeIntKeys(t *testing.T) {
	m := lockfree.NewSkipList[int, string]()
	keys := []int{math.MinInt, -1, 0, 1, math.MaxInt}
	for _, k := range keys {
		if !m.Insert(k, "v") {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	var got []int
	m.Ascend(func(k int, _ string) bool { got = append(got, k); return true })
	if !sort.IntsAreSorted(got) || len(got) != len(keys) {
		t.Fatalf("ascend = %v", got)
	}
	for _, k := range keys {
		if !m.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
}

func TestFloatKeys(t *testing.T) {
	m := lockfree.NewList[float64, int]()
	keys := []float64{math.Inf(-1), -1.5, 0, math.SmallestNonzeroFloat64, 1.5, math.Inf(1)}
	for i, k := range keys {
		if !m.Insert(k, i) {
			t.Fatalf("Insert(%v) failed", k)
		}
	}
	var got []float64
	m.Ascend(func(k float64, _ int) bool { got = append(got, k); return true })
	if !sort.Float64sAreSorted(got) || len(got) != len(keys) {
		t.Fatalf("ascend = %v", got)
	}
	// NaN: cmp.Compare orders NaN below -Inf, so it is a valid (if odd)
	// key and must round-trip.
	if !m.Insert(math.NaN(), 99) {
		t.Fatal("Insert(NaN) failed")
	}
	// NaN != NaN under ==, but cmp.Compare treats NaNs as equal, so the
	// key is findable.
	if v, ok := m.Get(math.NaN()); !ok || v != 99 {
		t.Fatalf("Get(NaN) = %d, %t", v, ok)
	}
	if !m.Delete(math.NaN()) {
		t.Fatal("Delete(NaN) failed")
	}
}

func TestZeroValueStructValues(t *testing.T) {
	type payload struct {
		A [16]byte
		B *int
	}
	m := lockfree.NewSkipList[int, payload]()
	m.Insert(1, payload{})
	if v, ok := m.Get(1); !ok || v != (payload{}) {
		t.Fatal("zero-value payload lost")
	}
}

func TestAscendRangeUnderChurn(t *testing.T) {
	m := lockfree.NewSkipList[int, int]()
	for k := 0; k < 1000; k += 2 {
		m.Insert(k, k)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := (i*2 + 1) % 1000 // odd keys churn
				m.Insert(k, k)
				m.Delete(k)
			}
		}(w)
	}
	for round := 0; round < 200; round++ {
		lo, hi := round%900, round%900+100
		prev := lo - 1
		m.AscendRange(lo, hi, func(k, _ int) bool {
			if k < lo || k >= hi {
				t.Errorf("AscendRange(%d,%d) yielded %d", lo, hi, k)
				return false
			}
			if k <= prev {
				t.Errorf("AscendRange out of order: %d after %d", k, prev)
				return false
			}
			prev = k
			return true
		})
	}
	stop.Store(true)
	wg.Wait()
	// Even keys were never touched: a final scan must see all of them.
	count := 0
	m.AscendRange(0, 1000, func(k, _ int) bool {
		if k%2 == 0 {
			count++
		}
		return true
	})
	if count != 500 {
		t.Fatalf("lost stable keys: saw %d of 500", count)
	}
}

func TestAscendDuringConcurrentDeleteOfCursor(t *testing.T) {
	// Deleting the key an iterator currently sits on must not derail the
	// iteration (the frozen successor field keeps the chain intact).
	m := lockfree.NewList[int, int]()
	for k := 0; k < 100; k++ {
		m.Insert(k, k)
	}
	var visited []int
	m.Ascend(func(k, _ int) bool {
		if k == 50 {
			m.Delete(51)
			m.Delete(52)
		}
		visited = append(visited, k)
		return true
	})
	if !sort.IntsAreSorted(visited) {
		t.Fatal("iteration out of order after concurrent delete")
	}
	for _, k := range visited {
		if k == 51 || k == 52 {
			// Seeing them is allowed only if observed before deletion;
			// here deletion happens strictly before the cursor arrives,
			// so they must be skipped.
			t.Fatalf("iterator visited deleted key %d", k)
		}
	}
}

func BenchmarkPriorityQueueDeleteMin(b *testing.B) {
	// The Lotan-Shavit / Sundell-Tsigas use case from the paper's related
	// work: a skip-list priority queue drained concurrently.
	m := lockfree.NewSkipList[int, int]()
	for i := 0; i < b.N; i++ {
		m.Insert(i, i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.DeleteMin()
		}
	})
}
