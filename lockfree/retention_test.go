package lockfree_test

import (
	"fmt"
	"strings"
	"testing"
	"unsafe"

	"repro/lockfree"
)

// TestValueHandOffRetention pins the value hand-off contract documented
// in proc.go: the structure retains inserted values without copying, and
// Get returns the same backing bytes. The serving layer's parse arena
// depends on both directions — it may intern many values into one
// allocation's chunk (the structure won't duplicate them), and it may
// write values read back to the network as read-only views (the
// structure won't have substituted rewritten bytes).
func TestValueHandOffRetention(t *testing.T) {
	t.Run("NoCopy", func(t *testing.T) {
		s := lockfree.NewSkipList[int, string]()
		v := strings.Repeat("x", 64)
		if !s.Insert(1, v) {
			t.Fatal("insert failed")
		}
		got, ok := s.Get(1)
		if !ok || got != v {
			t.Fatalf("Get(1) = %q, %v", got, ok)
		}
		if unsafe.StringData(got) != unsafe.StringData(v) {
			t.Fatal("Get returned a copy: the hand-off contract promises the same backing bytes")
		}
	})

	t.Run("ArenaViews", func(t *testing.T) {
		// Mimic the serving layer's arena: values are string views of an
		// append-only strings.Builder, which keeps growing (and being
		// replaced) after the inserts. Every view must read back intact.
		s := lockfree.NewSkipList[int, string]()
		const n, chunk = 512, 1 << 10
		want := make([]string, n)
		var b *strings.Builder
		for i := range want {
			val := fmt.Sprintf("value-%04d-%s", i, strings.Repeat("y", i%37))
			if b == nil || b.Cap()-b.Len() < len(val) {
				b = &strings.Builder{}
				b.Grow(chunk)
			}
			start := b.Len()
			b.WriteString(val)
			want[i] = b.String()[start:]
			if !s.Insert(i, want[i]) {
				t.Fatalf("insert %d failed", i)
			}
		}
		// Keep appending to the live chunk after the inserts: views
		// already handed out must not change (append-only discipline).
		b.WriteString(strings.Repeat("z", 100))
		for i, w := range want {
			got, ok := s.Get(i)
			if !ok || got != w {
				t.Fatalf("Get(%d) = %q, %v; want %q", i, got, ok, w)
			}
		}
	})
}
