package lockfree

import (
	"sync"
	"testing"
)

// TestLenWithinInFlightBound pins the documented Len contract: "The value
// is exact whenever no operations are in flight, and within the number of
// in-flight operations otherwise."
//
// Each round starts from a quiescent state with a known exact count C and
// launches W workers, each performing exactly one mutation on a distinct
// key that is guaranteed to succeed (insert of an absent key, or delete of
// a present key). While those W operations are in flight a sampler hammers
// Len: every observation must stay within [C-D, C+I] where I and D are the
// number of in-flight inserts and deletes. After the round joins, Len must
// be exactly the new quiescent count and agree with Ascend.
func TestLenWithinInFlightBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Map[int, int]
	}{
		{"list", func() Map[int, int] { return NewList[int, int]() }},
		{"skiplist", func() Map[int, int] { return NewSkipList[int, int]() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.mk()
			const workers = 8
			const rounds = 40

			quiescent := 0 // exact key count between rounds
			for round := 0; round < rounds; round++ {
				inserting := round%2 == 0
				lo, hi := quiescent-0, quiescent+workers // bound for this round
				if !inserting {
					lo, hi = quiescent-workers, quiescent
				}

				var start, done sync.WaitGroup
				start.Add(1)
				done.Add(workers)
				for w := 0; w < workers; w++ {
					key := round/2*workers + w // distinct key per worker
					go func(key int) {
						defer done.Done()
						start.Wait()
						if inserting {
							if !m.Insert(key, key) {
								t.Errorf("insert of fresh key %d failed", key)
							}
						} else {
							if !m.Delete(key) {
								t.Errorf("delete of present key %d failed", key)
							}
						}
					}(key)
				}

				stop := make(chan struct{})
				var samplerDone sync.WaitGroup
				samplerDone.Add(1)
				go func() {
					defer samplerDone.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if n := m.Len(); n < lo || n > hi {
							t.Errorf("round %d: Len = %d outside in-flight bound [%d, %d]",
								round, n, lo, hi)
							return
						}
					}
				}()

				start.Done() // release the workers
				done.Wait()
				close(stop)
				samplerDone.Wait()

				if inserting {
					quiescent += workers
				} else {
					quiescent -= workers
				}
				// Quiescent: Len is exact and agrees with iteration.
				if n := m.Len(); n != quiescent {
					t.Fatalf("round %d: quiescent Len = %d, want %d", round, n, quiescent)
				}
				count := 0
				m.Ascend(func(k, v int) bool { count++; return true })
				if count != quiescent {
					t.Fatalf("round %d: Ascend saw %d keys, Len says %d", round, count, quiescent)
				}
			}
		})
	}
}
