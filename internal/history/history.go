// Package history records concurrent dictionary histories and checks them
// for linearizability (Herlihy & Wing 1990), the correctness condition the
// paper proves for its implementations (Section 3.3).
//
// The checker exploits locality: Insert, Delete and Search each touch a
// single key, and a dictionary is the product of independent per-key
// presence bits, so a history is linearizable iff each key's sub-history
// is (Herlihy-Wing locality). Per-key sub-histories are further split at
// quiescent cuts - instants where every earlier operation has returned
// before any later one is invoked - which is sound because the presence
// bit's end state after a valid segment is determined by the parity of its
// successful updates. Each segment is then checked by Wing-Gong search
// with memoization over (linearized-set, state).
package history

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Kind is a recorded operation type.
type Kind int8

// Operation kinds.
const (
	KindSearch Kind = iota + 1
	KindInsert
	KindDelete
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSearch:
		return "search"
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Op is one completed operation: its kind, key, boolean result (present /
// succeeded), and its invocation/response timestamps drawn from a global
// atomic clock.
type Op struct {
	Kind   Kind
	Key    int
	Result bool
	Start  int64
	End    int64
	Proc   int
}

func (o Op) String() string {
	return fmt.Sprintf("p%d %s(%d)=%t [%d,%d]", o.Proc, o.Kind, o.Key, o.Result, o.Start, o.End)
}

// Recorder collects operations from concurrent workers. Each worker must
// use its own Thread; the Recorder itself only hands out timestamps.
type Recorder struct {
	clock   atomic.Int64
	threads []*Thread
}

// NewRecorder returns a recorder for the given number of worker threads,
// each expecting at most opsPerThread operations.
func NewRecorder(threads, opsPerThread int) *Recorder {
	r := &Recorder{threads: make([]*Thread, threads)}
	for i := range r.threads {
		r.threads[i] = &Thread{rec: r, proc: i, ops: make([]Op, 0, opsPerThread)}
	}
	return r
}

// Thread returns worker i's private recording handle.
func (r *Recorder) Thread(i int) *Thread { return r.threads[i] }

// Ops merges all threads' operations. Call only after every worker has
// finished.
func (r *Recorder) Ops() []Op {
	var all []Op
	for _, t := range r.threads {
		all = append(all, t.ops...)
	}
	return all
}

// Thread records one worker's operations without synchronization beyond
// the shared clock.
type Thread struct {
	rec  *Recorder
	proc int
	ops  []Op
}

// Begin timestamps an invocation and returns the pending op.
func (t *Thread) Begin(kind Kind, key int) Op {
	return Op{Kind: kind, Key: key, Proc: t.proc, Start: t.rec.clock.Add(1)}
}

// End timestamps the response and records the completed op.
func (t *Thread) End(op Op, result bool) {
	op.Result = result
	op.End = t.rec.clock.Add(1)
	t.ops = append(t.ops, op)
}

// ErrTooDense is returned when a per-key segment exceeds the checker's
// 63-operation limit; rerun with fewer operations or more keys.
type ErrTooDense struct {
	Key  int
	Size int
}

func (e *ErrTooDense) Error() string {
	return fmt.Sprintf("key %d has a concurrent segment of %d operations; checker limit is 63", e.Key, e.Size)
}

// Violation describes a non-linearizable sub-history.
type Violation struct {
	Key     int
	Segment []Op
}

func (v *Violation) Error() string {
	return fmt.Sprintf("history not linearizable for key %d (%d-op segment)", v.Key, len(v.Segment))
}

// Check verifies that ops form a linearizable dictionary history starting
// from the empty dictionary. It returns nil if linearizable, a *Violation
// if not, and a *ErrTooDense if a segment is too large to check.
func Check(ops []Op) error {
	byKey := make(map[int][]Op)
	for _, o := range ops {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if err := checkKey(k, byKey[k]); err != nil {
			return err
		}
	}
	return nil
}

// checkKey checks one key's sub-history against the presence-bit object.
func checkKey(key int, ops []Op) error {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
	state := false
	// Split into segments at quiescent cuts.
	segStart := 0
	maxEnd := int64(-1)
	for i, o := range ops {
		if i > segStart && o.Start > maxEnd {
			var ok bool
			state, ok = checkSegment(ops[segStart:i], state)
			if !ok {
				return &Violation{Key: key, Segment: ops[segStart:i]}
			}
			segStart = i
		}
		if o.End > maxEnd {
			maxEnd = o.End
		}
		if i-segStart >= 63 {
			return &ErrTooDense{Key: key, Size: i - segStart + 1}
		}
	}
	if segStart < len(ops) {
		if _, ok := checkSegment(ops[segStart:], state); !ok {
			return &Violation{Key: key, Segment: ops[segStart:]}
		}
	}
	return nil
}

// memoKey identifies a search node: the set of already-linearized ops plus
// the presence state.
type memoKey struct {
	mask  uint64
	state bool
}

// checkSegment runs Wing-Gong search over one segment. It returns the
// final state (determined by the parity of successful updates) and whether
// a valid linearization exists.
func checkSegment(ops []Op, initial bool) (bool, bool) {
	final := initial
	for _, o := range ops {
		if (o.Kind == KindInsert || o.Kind == KindDelete) && o.Result {
			final = !final
		}
	}
	n := len(ops)
	full := uint64(1)<<n - 1
	seen := make(map[memoKey]bool)
	var dfs func(mask uint64, state bool) bool
	dfs = func(mask uint64, state bool) bool {
		if mask == full {
			return true
		}
		mk := memoKey{mask, state}
		if seen[mk] {
			return false
		}
		seen[mk] = true
		// minEnd over un-linearized ops: an op is a legal next choice
		// only if no un-linearized op responded before it was invoked.
		minEnd := int64(1<<62 - 1)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			o := ops[i]
			if o.Start > minEnd {
				continue // real-time order forbids linearizing o yet
			}
			next, ok := apply(o, state)
			if !ok {
				continue
			}
			if dfs(mask|1<<i, next) {
				return true
			}
		}
		return false
	}
	return final, dfs(0, initial)
}

// apply checks o against the presence-bit spec in the given state and
// returns the next state.
func apply(o Op, present bool) (bool, bool) {
	switch o.Kind {
	case KindSearch:
		return present, o.Result == present
	case KindInsert:
		if o.Result != !present {
			return present, false
		}
		return true, true
	case KindDelete:
		if o.Result != present {
			return present, false
		}
		return false, true
	default:
		return present, false
	}
}
