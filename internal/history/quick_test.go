package history

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// genSerialHistory executes a random op script against a model dictionary
// sequentially, stamping non-overlapping intervals; such a history is
// linearizable by construction.
func genSerialHistory(ops []uint8, keys []uint8) []Op {
	model := map[int]bool{}
	var hist []Op
	clock := int64(0)
	n := min(len(ops), len(keys))
	for i := 0; i < n; i++ {
		k := int(keys[i]) % 8
		clock++
		start := clock
		clock++
		end := clock
		switch ops[i] % 3 {
		case 0:
			res := !model[k]
			model[k] = true
			hist = append(hist, Op{Kind: KindInsert, Key: k, Result: res, Start: start, End: end})
		case 1:
			res := model[k]
			delete(model, k)
			hist = append(hist, Op{Kind: KindDelete, Key: k, Result: res, Start: start, End: end})
		default:
			hist = append(hist, Op{Kind: KindSearch, Key: k, Result: model[k], Start: start, End: end})
		}
	}
	return hist
}

// TestQuickSerialHistoriesAccepted: every sequentially generated history
// must pass the checker.
func TestQuickSerialHistoriesAccepted(t *testing.T) {
	f := func(ops []uint8, keys []uint8) bool {
		return Check(genSerialHistory(ops, keys)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWidenedIntervalsStillAccepted: widening response times (ops
// overlap more) can only add legal linearizations, never remove them.
func TestQuickWidenedIntervalsStillAccepted(t *testing.T) {
	var seed uint64
	f := func(ops []uint8, keys []uint8, widen uint8) bool {
		seed++
		hist := genSerialHistory(ops, keys)
		rng := rand.New(rand.NewPCG(seed, 1))
		for i := range hist {
			hist[i].End += int64(rng.Uint64N(uint64(widen)%16 + 1))
		}
		err := Check(hist)
		if _, dense := err.(*ErrTooDense); dense {
			return true // inconclusive is acceptable
		}
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResultFlipRejected: flipping the result of a random update in a
// serial history must make it non-linearizable (for searches, flipping a
// result in a non-overlapping history is always wrong).
func TestQuickResultFlipRejected(t *testing.T) {
	var seed uint64
	f := func(ops []uint8, keys []uint8) bool {
		hist := genSerialHistory(ops, keys)
		if len(hist) == 0 {
			return true
		}
		seed++
		rng := rand.New(rand.NewPCG(seed, 2))
		i := int(rng.Uint64N(uint64(len(hist))))
		hist[i].Result = !hist[i].Result
		err := Check(hist)
		if _, dense := err.(*ErrTooDense); dense {
			return true
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
