package history

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
)

func op(kind Kind, key int, result bool, start, end int64) Op {
	return Op{Kind: kind, Key: key, Result: result, Start: start, End: end}
}

func TestCheckSequentialValid(t *testing.T) {
	ops := []Op{
		op(KindSearch, 1, false, 1, 2),
		op(KindInsert, 1, true, 3, 4),
		op(KindSearch, 1, true, 5, 6),
		op(KindInsert, 1, false, 7, 8),
		op(KindDelete, 1, true, 9, 10),
		op(KindDelete, 1, false, 11, 12),
		op(KindSearch, 1, false, 13, 14),
	}
	if err := Check(ops); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSequentialInvalid(t *testing.T) {
	cases := map[string][]Op{
		"search finds absent key": {
			op(KindSearch, 1, true, 1, 2),
		},
		"double successful insert": {
			op(KindInsert, 1, true, 1, 2),
			op(KindInsert, 1, true, 3, 4),
		},
		"delete of absent key succeeds": {
			op(KindDelete, 1, true, 1, 2),
		},
		"search misses present key": {
			op(KindInsert, 1, true, 1, 2),
			op(KindSearch, 1, false, 3, 4),
		},
		"failed insert on empty": {
			op(KindInsert, 1, false, 1, 2),
		},
	}
	for name, ops := range cases {
		if err := Check(ops); err == nil {
			t.Errorf("%s: accepted", name)
		} else if _, isViolation := err.(*Violation); !isViolation {
			t.Errorf("%s: wrong error type %T", name, err)
		}
	}
}

func TestCheckConcurrentReordering(t *testing.T) {
	// Overlapping insert and search: the search may run either before or
	// after the insert's linearization point, so both results are valid.
	for _, searchResult := range []bool{true, false} {
		ops := []Op{
			op(KindInsert, 5, true, 1, 10),
			op(KindSearch, 5, searchResult, 2, 9),
		}
		if err := Check(ops); err != nil {
			t.Fatalf("searchResult=%t: %v", searchResult, err)
		}
	}
	// But a search that begins after the insert returned must see it.
	ops := []Op{
		op(KindInsert, 5, true, 1, 2),
		op(KindSearch, 5, false, 3, 4),
	}
	if err := Check(ops); err == nil {
		t.Fatal("stale read across a real-time edge accepted")
	}
}

func TestCheckConcurrentDeleteRace(t *testing.T) {
	// Two overlapping deletes of the same present key: exactly one may
	// succeed.
	base := []Op{op(KindInsert, 7, true, 1, 2)}
	oneWin := append(base,
		op(KindDelete, 7, true, 3, 8),
		op(KindDelete, 7, false, 4, 7),
	)
	if err := Check(oneWin); err != nil {
		t.Fatal(err)
	}
	bothWin := append(base,
		op(KindDelete, 7, true, 3, 8),
		op(KindDelete, 7, true, 4, 7),
	)
	if err := Check(bothWin); err == nil {
		t.Fatal("two successful deletes of one key accepted")
	}
	bothLose := append(base,
		op(KindDelete, 7, false, 3, 8),
		op(KindDelete, 7, false, 4, 7),
	)
	if err := Check(bothLose); err == nil {
		t.Fatal("present key deleted by nobody accepted")
	}
}

func TestCheckKeysIndependent(t *testing.T) {
	ops := []Op{
		op(KindInsert, 1, true, 1, 2),
		op(KindInsert, 2, true, 1, 2), // same timestamps, different key: fine
		op(KindSearch, 1, true, 3, 4),
		op(KindSearch, 2, true, 3, 4),
		op(KindSearch, 3, false, 3, 4),
	}
	if err := Check(ops); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTooDense(t *testing.T) {
	var ops []Op
	for i := 0; i < 70; i++ {
		// All 70 ops on one key overlap: [1, 1000].
		ops = append(ops, op(KindSearch, 1, false, 1, 1000))
	}
	err := Check(ops)
	if _, ok := err.(*ErrTooDense); !ok {
		t.Fatalf("err = %v, want ErrTooDense", err)
	}
}

func TestCheckSegmentationCarriesState(t *testing.T) {
	// Segment 1 leaves the key present; segment 2's search must see it.
	ops := []Op{
		op(KindInsert, 1, true, 1, 2),
		// quiescent cut
		op(KindSearch, 1, false, 10, 11), // wrong: key is present
	}
	if err := Check(ops); err == nil {
		t.Fatal("state not carried across segments")
	}
	ops[1].Result = true
	if err := Check(ops); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderWithCoreList runs a real concurrent workload against the
// core list and checks the recorded history end to end.
func TestRecorderWithCoreList(t *testing.T) {
	l := core.NewList[int, int]()
	const workers, ops, keyRange = 8, 400, 16
	rec := NewRecorder(workers, ops)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rec.Thread(w)
			rng := rand.New(rand.NewPCG(uint64(w), 77))
			p := &core.Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					o := th.Begin(KindInsert, k)
					_, ok := l.Insert(p, k, k)
					th.End(o, ok)
				case 1:
					o := th.Begin(KindDelete, k)
					_, ok := l.Delete(p, k)
					th.End(o, ok)
				default:
					o := th.Begin(KindSearch, k)
					ok := l.Search(p, k) != nil
					th.End(o, ok)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := Check(rec.Ops()); err != nil {
		t.Fatalf("core list produced a non-linearizable history: %v", err)
	}
}

// TestCheckerCatchesBrokenDictionary runs the same workload against a
// deliberately racy map (no synchronization of result computation) and
// expects the checker to reject at least one of many histories - a smoke
// test that the checker has teeth. The broken structure races on a plain
// mutex-free map guarded only per-operation, producing stale results.
func TestCheckerCatchesBrokenDictionary(t *testing.T) {
	caught := false
	for round := 0; round < 20 && !caught; round++ {
		var mu sync.Mutex
		m := map[int]bool{}
		const workers, ops, keyRange = 8, 300, 4
		rec := NewRecorder(workers, ops)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := rec.Thread(w)
				rng := rand.New(rand.NewPCG(uint64(w), uint64(round)))
				for i := 0; i < ops; i++ {
					k := int(rng.Uint64N(keyRange))
					switch rng.Uint64N(3) {
					case 0:
						o := th.Begin(KindInsert, k)
						// Broken: check-then-act with the lock released
						// in between, so two inserts can both "succeed".
						mu.Lock()
						present := m[k]
						mu.Unlock()
						runtime.Gosched()
						mu.Lock()
						m[k] = true
						mu.Unlock()
						th.End(o, !present)
					case 1:
						o := th.Begin(KindDelete, k)
						mu.Lock()
						present := m[k]
						mu.Unlock()
						runtime.Gosched()
						mu.Lock()
						delete(m, k)
						mu.Unlock()
						th.End(o, present)
					default:
						o := th.Begin(KindSearch, k)
						mu.Lock()
						present := m[k]
						mu.Unlock()
						th.End(o, present)
					}
				}
			}(w)
		}
		wg.Wait()
		if err := Check(rec.Ops()); err != nil {
			if _, dense := err.(*ErrTooDense); !dense {
				caught = true
			}
		}
	}
	if !caught {
		t.Fatal("checker accepted every history from a racy dictionary")
	}
}
