package history

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/harris"
	"repro/internal/noflag"
	"repro/internal/sundell"
	"repro/internal/valois"
)

// runHistoryStress drives a concurrent workload through op callbacks and
// checks the recorded history for linearizability.
func runHistoryStress(t *testing.T, name string,
	insert func(k int) bool, remove func(k int) bool, search func(k int) bool) {
	t.Helper()
	const workers, ops, keyRange = 8, 350, 16
	rec := NewRecorder(workers, ops)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rec.Thread(w)
			rng := rand.New(rand.NewPCG(uint64(w), 123))
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					o := th.Begin(KindInsert, k)
					th.End(o, insert(k))
				case 1:
					o := th.Begin(KindDelete, k)
					th.End(o, remove(k))
				default:
					o := th.Begin(KindSearch, k)
					th.End(o, search(k))
				}
			}
		}(w)
	}
	wg.Wait()
	if err := Check(rec.Ops()); err != nil {
		if _, dense := err.(*ErrTooDense); dense {
			t.Skipf("%s: history too dense to check: %v", name, err)
		}
		t.Fatalf("%s produced a non-linearizable history: %v", name, err)
	}
}

func TestSkipListLinearizable(t *testing.T) {
	for round := 0; round < 5; round++ {
		l := core.NewSkipList[int, int]()
		runHistoryStress(t, "core.SkipList",
			func(k int) bool { _, ok := l.Insert(nil, k, k); return ok },
			func(k int) bool { _, ok := l.Delete(nil, k); return ok },
			func(k int) bool { return l.Search(nil, k) != nil },
		)
	}
}

func TestHarrisListLinearizable(t *testing.T) {
	for round := 0; round < 3; round++ {
		l := harris.NewList[int, int]()
		runHistoryStress(t, "harris.List",
			func(k int) bool { _, ok := l.Insert(nil, k, k); return ok },
			func(k int) bool { _, ok := l.Delete(nil, k); return ok },
			func(k int) bool { return l.Search(nil, k) != nil },
		)
	}
}

func TestHarrisSkipListLinearizable(t *testing.T) {
	for round := 0; round < 3; round++ {
		l := harris.NewSkipList[int, int](0, nil)
		runHistoryStress(t, "harris.SkipList",
			func(k int) bool { return l.Insert(nil, k, k) },
			func(k int) bool { return l.Delete(nil, k) },
			func(k int) bool { return l.Contains(nil, k) },
		)
	}
}

func TestValoisListLinearizable(t *testing.T) {
	for round := 0; round < 3; round++ {
		l := valois.NewList[int, int]()
		runHistoryStress(t, "valois.List",
			func(k int) bool { return l.Insert(nil, k, k) },
			func(k int) bool { return l.Delete(nil, k) },
			func(k int) bool { return l.Contains(nil, k) },
		)
	}
}

func TestNoflagListLinearizable(t *testing.T) {
	for round := 0; round < 3; round++ {
		l := noflag.NewList[int, int]()
		runHistoryStress(t, "noflag.List",
			func(k int) bool { _, ok := l.Insert(nil, k, k); return ok },
			func(k int) bool { _, ok := l.Delete(nil, k); return ok },
			func(k int) bool { return l.Search(nil, k) != nil },
		)
	}
}

func TestSundellSkipListLinearizable(t *testing.T) {
	for round := 0; round < 3; round++ {
		l := sundell.New[int, int](0, nil)
		runHistoryStress(t, "sundell.SkipList",
			func(k int) bool { return l.Insert(nil, k, k) },
			func(k int) bool { return l.Delete(nil, k) },
			func(k int) bool { return l.Contains(nil, k) },
		)
	}
}
