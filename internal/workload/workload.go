// Package workload generates the operation streams used by the benchmark
// harness: key distributions, operation mixes, and deterministic
// per-thread streams, in the style of the experimental methodology of
// Harris (2001) and Michael (2002) that the paper cites.
package workload

import (
	"fmt"
	"math/rand/v2"
)

// OpKind is a dictionary operation type.
type OpKind int8

// Operation kinds.
const (
	OpSearch OpKind = iota + 1
	OpInsert
	OpDelete
)

// String returns the kind's name.
func (k OpKind) String() string {
	switch k {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  int
}

// Mix is an operation mix given as percentages; the three fields must sum
// to 100.
type Mix struct {
	SearchPct int
	InsertPct int
	DeletePct int
}

// Common mixes used by experiment E4, mirroring the read-heavy, balanced
// and write-heavy workloads of the literature the paper cites.
var (
	ReadHeavy  = Mix{SearchPct: 90, InsertPct: 9, DeletePct: 1}
	Balanced   = Mix{SearchPct: 34, InsertPct: 33, DeletePct: 33}
	WriteHeavy = Mix{SearchPct: 20, InsertPct: 40, DeletePct: 40}
)

// Validate returns an error if the mix does not sum to 100 or has negative
// components.
func (m Mix) Validate() error {
	if m.SearchPct < 0 || m.InsertPct < 0 || m.DeletePct < 0 {
		return fmt.Errorf("negative mix component: %+v", m)
	}
	if m.SearchPct+m.InsertPct+m.DeletePct != 100 {
		return fmt.Errorf("mix sums to %d, want 100", m.SearchPct+m.InsertPct+m.DeletePct)
	}
	return nil
}

// String formats the mix as "s/i/d".
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.SearchPct, m.InsertPct, m.DeletePct)
}

// KeyDist names a key distribution.
type KeyDist int8

// Key distributions.
const (
	// Uniform draws keys uniformly from [0, Range).
	Uniform KeyDist = iota + 1
	// Zipf draws keys from a Zipf distribution (s=1.1) over [0, Range),
	// concentrating traffic on a few hot keys.
	Zipf
	// Sequential draws monotonically increasing keys (mod Range); paired
	// with deletions at the low end it produces the FIFO churn pattern of
	// the paper's Section 3.1 example.
	Sequential
	// Clustered draws keys uniformly inside a small window that drifts
	// across [0, Range), creating moving hot spots.
	Clustered
)

// String returns the distribution's name.
func (d KeyDist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	case Sequential:
		return "sequential"
	case Clustered:
		return "clustered"
	default:
		return "unknown"
	}
}

// Config describes a workload.
type Config struct {
	Mix   Mix
	Dist  KeyDist
	Range int // keys are drawn from [0, Range)
	Seed  uint64
}

// Generator produces a deterministic operation stream for one thread. It
// is not safe for concurrent use; create one per thread with distinct
// thread indexes.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  uint64
}

// NewGenerator returns a generator for thread; streams with the same
// (Config, thread) are identical run to run.
func NewGenerator(cfg Config, thread int) *Generator {
	if cfg.Range <= 0 {
		cfg.Range = 1
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(thread)*0x9e3779b97f4a7c15+1))
	g := &Generator{cfg: cfg, rng: rng}
	if cfg.Dist == Zipf {
		g.zipf = rand.NewZipf(rng, 1.1, 1, uint64(cfg.Range-1))
	}
	return g
}

// Next returns the next operation in the stream.
func (g *Generator) Next() Op {
	return Op{Kind: g.nextKind(), Key: g.nextKey()}
}

func (g *Generator) nextKind() OpKind {
	r := int(g.rng.Uint64N(100))
	switch {
	case r < g.cfg.Mix.SearchPct:
		return OpSearch
	case r < g.cfg.Mix.SearchPct+g.cfg.Mix.InsertPct:
		return OpInsert
	default:
		return OpDelete
	}
}

func (g *Generator) nextKey() int {
	switch g.cfg.Dist {
	case Zipf:
		return int(g.zipf.Uint64())
	case Sequential:
		g.seq++
		return int(g.seq % uint64(g.cfg.Range))
	case Clustered:
		window := max(g.cfg.Range/64, 1)
		base := int(g.seq/128) * window % g.cfg.Range
		g.seq++
		return (base + int(g.rng.Uint64N(uint64(window)))) % g.cfg.Range
	default: // Uniform
		return int(g.rng.Uint64N(uint64(g.cfg.Range)))
	}
}

// Prefill returns the keys to load before timing starts: every other key
// in [0, Range), giving a half-full structure whose size stays roughly
// stable under a balanced mix.
func Prefill(keyRange int) []int {
	keys := make([]int, 0, keyRange/2)
	for k := 0; k < keyRange; k += 2 {
		keys = append(keys, k)
	}
	return keys
}
