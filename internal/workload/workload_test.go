package workload

import (
	"testing"
	"testing/quick"
)

func TestMixValidate(t *testing.T) {
	for _, m := range []Mix{ReadHeavy, Balanced, WriteHeavy} {
		if err := m.Validate(); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
	if err := (Mix{SearchPct: 50, InsertPct: 50, DeletePct: 50}).Validate(); err == nil {
		t.Error("over-100 mix validated")
	}
	if err := (Mix{SearchPct: -10, InsertPct: 60, DeletePct: 50}).Validate(); err == nil {
		t.Error("negative mix validated")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := Config{Mix: Balanced, Dist: Uniform, Range: 100, Seed: 7}
	g1 := NewGenerator(cfg, 3)
	g2 := NewGenerator(cfg, 3)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a, b)
		}
	}
	// Distinct threads get distinct streams.
	g3 := NewGenerator(cfg, 4)
	same := 0
	g1b := NewGenerator(cfg, 3)
	for i := 0; i < 1000; i++ {
		if g1b.Next() == g3.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("thread streams nearly identical (%d/1000)", same)
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	cfg := Config{Mix: ReadHeavy, Dist: Uniform, Range: 1000, Seed: 1}
	g := NewGenerator(cfg, 0)
	counts := map[OpKind]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if got := counts[OpSearch]; got < n*85/100 || got > n*95/100 {
		t.Fatalf("searches = %d, want about %d", got, n*90/100)
	}
	if got := counts[OpDelete]; got < n/200 || got > n*2/100 {
		t.Fatalf("deletes = %d, want about %d", got, n/100)
	}
}

func TestGeneratorKeyRanges(t *testing.T) {
	for _, dist := range []KeyDist{Uniform, Zipf, Sequential, Clustered} {
		cfg := Config{Mix: Balanced, Dist: dist, Range: 128, Seed: 2}
		g := NewGenerator(cfg, 0)
		for i := 0; i < 10000; i++ {
			op := g.Next()
			if op.Key < 0 || op.Key >= 128 {
				t.Fatalf("%v: key %d out of range", dist, op.Key)
			}
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	cfg := Config{Mix: Balanced, Dist: Zipf, Range: 1024, Seed: 3}
	g := NewGenerator(cfg, 0)
	counts := make([]int, 1024)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// The hottest key should take far more than the uniform share.
	if counts[0] < n/50 {
		t.Fatalf("zipf key 0 drawn %d times, want heavy skew", counts[0])
	}
}

func TestPrefill(t *testing.T) {
	keys := Prefill(10)
	want := []int{0, 2, 4, 6, 8}
	if len(keys) != len(want) {
		t.Fatalf("Prefill(10) = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Prefill(10) = %v", keys)
		}
	}
}

func TestGeneratorKeysInRangeQuick(t *testing.T) {
	f := func(seed uint64, rng uint8) bool {
		r := int(rng)%512 + 1
		g := NewGenerator(Config{Mix: Balanced, Dist: Uniform, Range: r, Seed: seed}, 1)
		for i := 0; i < 200; i++ {
			if op := g.Next(); op.Key < 0 || op.Key >= r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
