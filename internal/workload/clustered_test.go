package workload

import "testing"

// TestClusteredDrift checks the clustered distribution produces moving hot
// windows: consecutive draws cluster tightly, while over many draws the
// whole range is eventually covered.
func TestClusteredDrift(t *testing.T) {
	cfg := Config{Mix: Balanced, Dist: Clustered, Range: 4096, Seed: 5}
	g := NewGenerator(cfg, 0)
	window := max(cfg.Range/64, 1)

	// Short-horizon locality: 64 consecutive keys span at most two windows.
	var burst []int
	for i := 0; i < 64; i++ {
		burst = append(burst, g.Next().Key)
	}
	lo, hi := burst[0], burst[0]
	for _, k := range burst {
		lo, hi = min(lo, k), max(hi, k)
	}
	if hi-lo > 2*window {
		t.Fatalf("burst spans %d keys, want clustered within ~%d", hi-lo, 2*window)
	}

	// Long-horizon coverage: the hot spot drifts across the range.
	buckets := map[int]bool{}
	for i := 0; i < 200_000; i++ {
		buckets[g.Next().Key/window] = true
	}
	if len(buckets) < 32 {
		t.Fatalf("clustered keys visited only %d windows of 64", len(buckets))
	}
}

func TestSequentialWraps(t *testing.T) {
	g := NewGenerator(Config{Mix: Balanced, Dist: Sequential, Range: 10, Seed: 1}, 0)
	seen := map[int]int{}
	for i := 0; i < 100; i++ {
		seen[g.Next().Key]++
	}
	if len(seen) != 10 {
		t.Fatalf("sequential covered %d of 10 keys", len(seen))
	}
	for k, c := range seen {
		if c != 10 {
			t.Fatalf("key %d drawn %d times, want exactly 10", k, c)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpSearch.String() != "search" || OpInsert.String() != "insert" ||
		OpDelete.String() != "delete" || OpKind(0).String() != "unknown" {
		t.Fatal("OpKind strings wrong")
	}
	for _, d := range []KeyDist{Uniform, Zipf, Sequential, Clustered} {
		if d.String() == "unknown" {
			t.Fatalf("dist %d unnamed", d)
		}
	}
	if KeyDist(0).String() != "unknown" {
		t.Fatal("zero dist should be unknown")
	}
}

func TestGeneratorRangeClamp(t *testing.T) {
	g := NewGenerator(Config{Mix: Balanced, Dist: Uniform, Range: 0, Seed: 1}, 0)
	for i := 0; i < 100; i++ {
		if k := g.Next().Key; k != 0 {
			t.Fatalf("zero-range generator produced key %d", k)
		}
	}
}
