package experiments

import (
	"math/rand/v2"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
)

// E1 verifies the paper's main theorem (Section 3.4): the amortized cost
// of a linked-list operation S is O(n(S) + c(S)). It measures the
// essential steps per operation (C&S attempts + backlink traversals +
// next/curr updates - exactly the steps the paper's billing scheme counts)
// in two sweeps:
//
//   - list size n grows at fixed contention: steps/op must grow linearly
//     in n (the necessary search cost), and
//   - contention c grows at fixed n: steps/op must grow by at most an
//     additive O(c) term, not multiplicatively.
type E1Result struct {
	NSweep []E1Row
	CSweep []E1Row
	// NFit is the least-squares fit of mean steps/op against n; the
	// theorem predicts a line with high R^2.
	NFit stats.LinearFit
	// CFit is the fit of the contention overhead (mean steps/op minus the
	// c=1 baseline) against c; the theorem predicts at most linear
	// growth.
	CFit stats.LinearFit
}

// E1Row is one measured configuration.
type E1Row struct {
	N, C  int
	Steps stats.Summary // essential steps per operation, all kinds
	// Per-operation-kind means: the theorem's O(n) necessary cost is the
	// search, shared by all three operations; updates add only their O(1)
	// C&S's, so the three means should sit within a few steps of each
	// other.
	SearchMean, InsertMean, DeleteMean float64
}

// E1Config parameterizes the sweeps.
type E1Config struct {
	Ns        []int // list sizes for the n-sweep
	Cs        []int // worker counts for the c-sweep
	FixedC    int   // contention during the n-sweep
	FixedN    int   // list size during the c-sweep
	OpsPerRun int   // measured operations per configuration
	Seed      uint64
}

// DefaultE1Config returns the configuration used by the harness.
func DefaultE1Config() E1Config {
	return E1Config{
		Ns:        []int{250, 500, 1000, 2000, 4000, 8000},
		Cs:        []int{1, 2, 4, 8, 16, 32},
		FixedC:    4,
		FixedN:    64,
		OpsPerRun: 4000,
		Seed:      1,
	}
}

// RunE1 executes both sweeps and fits the predicted shapes.
func RunE1(cfg E1Config) E1Result {
	var res E1Result
	var xs, ys []float64
	for _, n := range cfg.Ns {
		row := runE1Config(n, cfg.FixedC, cfg.OpsPerRun, cfg.Seed)
		res.NSweep = append(res.NSweep, row)
		xs = append(xs, float64(n))
		ys = append(ys, row.Steps.Mean)
	}
	res.NFit = stats.FitLinear(xs, ys)

	var cxs, cys []float64
	var baseline float64
	for i, c := range cfg.Cs {
		row := runE1Config(cfg.FixedN, c, cfg.OpsPerRun, cfg.Seed+uint64(i)+1)
		res.CSweep = append(res.CSweep, row)
		if i == 0 {
			baseline = row.Steps.Mean
		}
		cxs = append(cxs, float64(c))
		cys = append(cys, row.Steps.Mean-baseline)
	}
	res.CFit = stats.FitLinear(cxs, cys)
	return res
}

// runE1Config measures essential steps per operation on a list prefilled
// with n keys, under c concurrent workers running a balanced mix.
func runE1Config(n, c, ops int, seed uint64) E1Row {
	l := core.NewList[int, int]()
	keyRange := 2 * n
	for k := 0; k < keyRange; k += 2 {
		l.Insert(nil, k, k)
	}
	perOp := make([][]float64, c)
	perKind := make([][3][]float64, c) // search, insert, delete
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, uint64(w)))
			st := &core.OpStats{}
			p := &core.Proc{ID: w, Stats: st}
			samples := make([]float64, 0, ops/c+1)
			var kinds [3][]float64
			var prev uint64
			for i := 0; i < ops/c; i++ {
				k := int(rng.Uint64N(uint64(keyRange)))
				kind := 0
				switch rng.Uint64N(4) {
				case 0:
					kind = 1
					l.Insert(p, k, k)
				case 1:
					kind = 2
					l.Delete(p, k)
				default:
					l.Search(p, k)
				}
				cur := st.EssentialSteps()
				d := float64(cur - prev)
				samples = append(samples, d)
				kinds[kind] = append(kinds[kind], d)
				prev = cur
			}
			perOp[w] = samples
			perKind[w] = kinds
		}(w)
	}
	wg.Wait()
	var all []float64
	var byKind [3][]float64
	for w := range perOp {
		all = append(all, perOp[w]...)
		for k := 0; k < 3; k++ {
			byKind[k] = append(byKind[k], perKind[w][k]...)
		}
	}
	return E1Row{N: n, C: c, Steps: stats.Summarize(all),
		SearchMean: stats.Summarize(byKind[0]).Mean,
		InsertMean: stats.Summarize(byKind[1]).Mean,
		DeleteMean: stats.Summarize(byKind[2]).Mean,
	}
}

// Render formats both sweeps.
func (r E1Result) Render() string {
	t1 := Table{
		Title: "E1a: amortized cost vs list size n (fixed contention)",
		Columns: []string{"n", "c", "mean steps/op", "p50", "p99",
			"search", "insert", "delete"},
	}
	for _, row := range r.NSweep {
		t1.AddRow(d(row.N), d(row.C), f(row.Steps.Mean), f(row.Steps.P50), f(row.Steps.P99),
			f(row.SearchMean), f(row.InsertMean), f(row.DeleteMean))
	}
	t1.Notes = append(t1.Notes,
		"theorem predicts steps/op = Theta(n): linear fit slope "+f(r.NFit.Slope)+
			" steps/key, R^2 "+f(r.NFit.R2))

	t2 := Table{
		Title:   "E1b: amortized cost vs contention c (fixed n)",
		Columns: []string{"n", "c", "mean steps/op", "p50", "p99", "overhead vs c=1"},
	}
	base := 0.0
	for i, row := range r.CSweep {
		if i == 0 {
			base = row.Steps.Mean
		}
		t2.AddRow(d(row.N), d(row.C), f(row.Steps.Mean), f(row.Steps.P50), f(row.Steps.P99),
			f(row.Steps.Mean-base))
	}
	t2.Notes = append(t2.Notes,
		"theorem predicts additive O(c) overhead: overhead fit slope "+
			f(r.CFit.Slope)+" steps per unit contention")
	return t1.Render() + "\n" + t2.Render()
}
