package experiments

import (
	"sync"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/noflag"
)

// E7 is the flag-bit ablation motivated by Section 3.1: flag bits exist so
// that a backlink is never set to point at a marked node, which keeps
// chains of backlinks from growing towards the right and being traversed
// repeatedly.
//
// The experiment builds the pathological chain deterministically. Keys
// X_1 < X_2 < ... < X_k are deleted in ascending order, but each deleter
// D_j is suspended just after its search - while its recorded predecessor
// is still X_{j-1} - and resumed only after X_{j-1} has been marked.
// Without flags, D_j then stores X_j.backlink = X_{j-1}, a marked node:
// the chain X_k -> X_{k-1} -> ... -> X_1 grows rightward, and a victim
// insertion that fails at X_k walks all k links. With flags, D_j cannot
// flag the marked X_{j-1}; it re-searches, flags the live predecessor, and
// sets X_j.backlink to it, so the victim walks exactly one link no matter
// how large k is.
type E7Result struct {
	Rows []E7Row
}

// E7Row reports the victim's recovery cost for one chain length.
type E7Row struct {
	Impl            string
	K               int    // deletions woven into the chain
	VictimWalk      uint64 // backlink traversals by the victim insertion
	VictimSteps     uint64 // victim's total essential steps
	InsertRecovered bool   // the victim insertion completed successfully
}

// E7Config parameterizes the experiment.
type E7Config struct {
	Ks []int
}

// DefaultE7Config returns the configuration used by the harness.
func DefaultE7Config() E7Config {
	return E7Config{Ks: []int{8, 32, 128, 512}}
}

// RunE7 builds the chain at every length for both implementations.
func RunE7(cfg E7Config) E7Result {
	var res E7Result
	for _, k := range cfg.Ks {
		res.Rows = append(res.Rows, runE7Noflag(k), runE7FR(k))
	}
	return res
}

// Key layout: X_j = 10*j for j = 1..k, an anchor at 10*k+20, and the
// victim inserting 10*k+5 (so its predecessor is X_k).
func e7Keys(k int) (xs []int, anchor, victimKey int) {
	xs = make([]int, k)
	for j := 1; j <= k; j++ {
		xs[j-1] = 10 * j
	}
	return xs, 10*k + 20, 10*k + 5
}

func runE7Noflag(k int) E7Row {
	l := noflag.NewList[int, int]()
	xs, anchor, victimKey := e7Keys(k)
	for _, x := range xs {
		l.Insert(nil, x, x)
	}
	l.Insert(nil, anchor, anchor)

	ctl := adversary.NewController()
	hooks := ctl.HooksFor()

	// Victim: parks with predecessor X_k right before its insertion C&S.
	const victimPid = 1_000_000
	victimStats := &instrument.OpStats{}
	victim := &instrument.Proc{ID: victimPid, Stats: victimStats, Hooks: hooks}
	ctl.PauseAt(victimPid, instrument.PtBeforeInsertCAS)
	victimDone := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(victim, victimKey, victimKey)
		victimDone <- ok
	}()
	ctl.AwaitParked(victimPid, instrument.PtBeforeInsertCAS)

	// Deleters for X_2..X_k park right after their search, holding the
	// still-live X_{j-1} as predecessor.
	done := make([]chan struct{}, k+1)
	for j := 2; j <= k; j++ {
		pid := j
		ctl.PauseAt(pid, instrument.PtSearchDone)
		done[j] = make(chan struct{})
		go func(j int) {
			p := &instrument.Proc{ID: j, Hooks: hooks}
			l.Delete(p, xs[j-1])
			close(done[j])
		}(j)
		ctl.AwaitParked(pid, instrument.PtSearchDone)
	}
	// Delete X_1 outright, then resume D_2..D_k in order; each stores a
	// backlink to the just-marked previous key.
	l.Delete(nil, xs[0])
	for j := 2; j <= k; j++ {
		ctl.ClearPause(j, instrument.PtSearchDone)
		ctl.Release(j)
		<-done[j]
	}
	// Resume the victim: its C&S fails at the marked X_k and recovery
	// walks the backlink chain.
	ctl.ClearPause(victimPid, instrument.PtBeforeInsertCAS)
	ctl.Release(victimPid)
	ok := <-victimDone
	return E7Row{Impl: "no-flag ablation", K: k,
		VictimWalk:  victimStats.BacklinkTraversals,
		VictimSteps: victimStats.EssentialSteps(), InsertRecovered: ok}
}

func runE7FR(k int) E7Row {
	l := core.NewList[int, int]()
	xs, anchor, victimKey := e7Keys(k)
	for _, x := range xs {
		l.Insert(nil, x, x)
	}
	l.Insert(nil, anchor, anchor)

	ctl := adversary.NewController()
	hooks := ctl.HooksFor()

	const victimPid = 1_000_000
	victimStats := &core.OpStats{}
	victim := &core.Proc{ID: victimPid, Stats: victimStats, Hooks: hooks}
	ctl.PauseAt(victimPid, instrument.PtBeforeInsertCAS)
	victimDone := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(victim, victimKey, victimKey)
		victimDone <- ok
	}()
	ctl.AwaitParked(victimPid, instrument.PtBeforeInsertCAS)

	done := make([]chan struct{}, k+1)
	var wg sync.WaitGroup
	for j := 2; j <= k; j++ {
		pid := j
		ctl.PauseAt(pid, instrument.PtSearchDone)
		done[j] = make(chan struct{})
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			p := &core.Proc{ID: j, Hooks: hooks}
			l.Delete(p, xs[j-1])
			close(done[j])
		}(j)
		ctl.AwaitParked(pid, instrument.PtSearchDone)
	}
	l.Delete(nil, xs[0])
	for j := 2; j <= k; j++ {
		ctl.ClearPause(j, instrument.PtSearchDone)
		ctl.Release(j)
		<-done[j]
	}
	wg.Wait()
	ctl.ClearPause(victimPid, instrument.PtBeforeInsertCAS)
	ctl.Release(victimPid)
	ok := <-victimDone
	return E7Row{Impl: "fomitchev-ruppert", K: k,
		VictimWalk:  victimStats.BacklinkTraversals,
		VictimSteps: victimStats.EssentialSteps(), InsertRecovered: ok}
}

// Render prints the ablation table.
func (r E7Result) Render() string {
	t := Table{
		Title: "E7: backlink-chain growth, flag bits vs no-flag ablation",
		Columns: []string{"impl", "k (woven deletions)", "victim backlink walk",
			"victim total steps", "insert recovered"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Impl, d(row.K), fmt2("%d", row.VictimWalk),
			fmt2("%d", row.VictimSteps), fmt2("%t", row.InsertRecovered))
	}
	t.Notes = append(t.Notes,
		"without flags the victim walks the whole chain (Theta(k));",
		"flags force each backlink to target an unmarked node, so the walk is O(1)")
	return t.Render()
}
