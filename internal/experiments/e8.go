package experiments

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/lockbased"
)

// E8 measures delay-robustness, the property the paper's introduction
// leads with: "if an implementation is lock-free, delays or failures of
// individual processes do not block the progress of other processes".
//
// One process is frozen in the middle of a deletion (for the lock-free
// skip list: parked between its marking and physical-deletion C&S; for
// the locked skip list: holding the write lock) and the experiment counts
// how many operations the remaining workers complete during the stall
// window. Unlike throughput scaling, this experiment is meaningful even
// on a single CPU.
type E8Result struct {
	Rows []E8Row
}

// E8Row is one implementation's progress during the stall.
type E8Row struct {
	Impl         string
	Workers      int
	StallMs      int
	OpsDuring    int64 // operations completed by the other workers while one is stalled
	StalledFinal bool  // the stalled operation itself eventually completed correctly
}

// E8Config parameterizes the experiment.
type E8Config struct {
	Workers  int
	Stall    time.Duration
	KeyRange int
	Seed     uint64
}

// DefaultE8Config returns the configuration used by the harness.
func DefaultE8Config() E8Config {
	return E8Config{Workers: 4, Stall: 100 * time.Millisecond, KeyRange: 1024, Seed: 41}
}

// RunE8 runs the stall experiment on the FR skip list and the locked skip
// list.
func RunE8(cfg E8Config) E8Result {
	return E8Result{Rows: []E8Row{runE8FR(cfg), runE8Locked(cfg)}}
}

// runE8FR freezes a deleter between its marking C&S and its physical-
// deletion C&S; helping lets every other operation proceed.
func runE8FR(cfg E8Config) E8Row {
	l := core.NewSkipList[int, int]()
	for k := 0; k < cfg.KeyRange; k += 2 {
		l.Insert(nil, k, k)
	}
	ctl := adversary.NewController()
	const stalledPid = 999
	ctl.PauseAt(stalledPid, instrument.PtBeforePhysicalCAS)
	victimKey := cfg.KeyRange / 2
	stalledDone := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&core.Proc{ID: stalledPid, Hooks: ctl.HooksFor()}, victimKey)
		stalledDone <- ok
	}()
	ctl.AwaitParked(stalledPid, instrument.PtBeforePhysicalCAS)

	ops := runE8Workers(cfg, func(op, k int) {
		switch op {
		case 0:
			l.Insert(nil, k, k)
		case 1:
			l.Delete(nil, k)
		default:
			l.Search(nil, k)
		}
	}, func() {
		ctl.ClearAllPauses()
		ctl.Release(stalledPid)
	})
	ok := <-stalledDone
	return E8Row{Impl: "fr-skiplist", Workers: cfg.Workers,
		StallMs: int(cfg.Stall.Milliseconds()), OpsDuring: ops, StalledFinal: ok}
}

// runE8Locked freezes a writer inside the critical section.
func runE8Locked(cfg E8Config) E8Row {
	l := lockbased.NewSkipList[int, int](0, nil)
	for k := 0; k < cfg.KeyRange; k += 2 {
		l.Insert(k, k)
	}
	holding := make(chan struct{})
	release := make(chan struct{})
	go func() {
		l.Locked(func() {
			close(holding)
			<-release
		})
	}()
	<-holding

	ops := runE8Workers(cfg, func(op, k int) {
		switch op {
		case 0:
			l.Insert(k, k)
		case 1:
			l.Delete(k)
		default:
			l.Contains(k)
		}
	}, func() {
		close(release) // let the blocked workers drain so they can observe stop
	})
	return E8Row{Impl: "locked-skiplist", Workers: cfg.Workers,
		StallMs: int(cfg.Stall.Milliseconds()), OpsDuring: ops, StalledFinal: true}
}

// runE8Workers runs the worker pool for the stall window and returns the
// number of operations completed within it. The count is snapshotted at
// the end of the window, before unstall releases the frozen process (so
// workers blocked behind a lock can drain and exit).
func runE8Workers(cfg E8Config, do func(op, k int), unstall func()) int64 {
	var ops atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(w)))
			for !stop.Load() {
				do(int(rng.Uint64N(3)), int(rng.Uint64N(uint64(cfg.KeyRange))))
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(cfg.Stall)
	stop.Store(true)
	window := ops.Load()
	unstall()
	wg.Wait()
	return window
}

// Render prints the robustness table.
func (r E8Result) Render() string {
	t := Table{
		Title: "E8: progress while one process is stalled mid-update",
		Columns: []string{"impl", "workers", "stall (ms)",
			"ops completed by others", "stalled op finished correctly"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Impl, d(row.Workers), d(row.StallMs),
			fmt2("%d", row.OpsDuring), fmt2("%t", row.StalledFinal))
	}
	t.Notes = append(t.Notes,
		"lock-free: helping completes the stalled deletion, everyone proceeds;",
		"locks: every operation blocks behind the stalled critical section")
	return t.Render()
}
