package experiments

import (
	"sync"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/harris"
	"repro/internal/instrument"
	"repro/internal/noflag"
	"repro/internal/stats"
)

// E2 reproduces the adversarial execution of Section 3.1, the paper's
// centerpiece comparison against Harris's list. One process repeatedly
// deletes the last node of the list while q-1 processes try to insert new
// keys at the end; the adversary lets the deleter mark the last node after
// every inserter has located its insertion position but before any of them
// performs its C&S. Under Harris's restart-from-head recovery each
// inserter then re-traverses the whole list every round, for total work
// Omega(q * n^2); with the paper's backlinks each recovery costs O(1), for
// total work O(q*(n + rounds)).
//
// The experiment runs the exact schedule against both implementations
// using hook-based choreography and reports each inserter's essential
// steps for its single Insert operation.
type E2Result struct {
	Rows []E2Row
}

// E2Row is one (implementation, q, n) configuration.
type E2Row struct {
	Impl          string
	Q, N, Rounds  int
	InserterSteps stats.Summary // total essential steps per inserter operation
}

// E2Config parameterizes the experiment.
type E2Config struct {
	Qs []int // total processes (1 deleter + q-1 inserters)
	Ns []int // initial list sizes
}

// DefaultE2Config returns the configuration used by the harness.
func DefaultE2Config() E2Config {
	return E2Config{Qs: []int{4, 8}, Ns: []int{256, 512, 1024, 2048}}
}

// RunE2 executes the schedule for every configuration and implementation.
func RunE2(cfg E2Config) E2Result {
	var res E2Result
	for _, q := range cfg.Qs {
		for _, n := range cfg.Ns {
			rounds := n / 2
			res.Rows = append(res.Rows, runE2FR(q, n, rounds))
			res.Rows = append(res.Rows, runE2Harris(q, n, rounds))
			res.Rows = append(res.Rows, runE2Noflag(q, n, rounds))
		}
	}
	return res
}

// runE2FR runs the schedule against the Fomitchev-Ruppert list.
func runE2FR(q, n, rounds int) E2Row {
	l := core.NewList[int, int]()
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	ctl := adversary.NewController()
	hooks := ctl.HooksFor()
	inserters := q - 1
	pids := make([]int, inserters)
	procs := make([]*core.Proc, inserters)
	for i := range pids {
		pids[i] = i + 1
		procs[i] = &core.Proc{ID: pids[i], Stats: &core.OpStats{}, Hooks: hooks}
		ctl.PauseAt(pids[i], instrument.PtBeforeInsertCAS)
	}
	var wg sync.WaitGroup
	for i := 0; i < inserters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Insert(procs[i], n+i, 0) // one operation per inserter
		}(i)
	}
	for r := 0; r < rounds; r++ {
		ctl.AwaitAllParked(pids, instrument.PtBeforeInsertCAS)
		if _, ok := l.Delete(nil, n-1-r); !ok {
			panic("E2: deletion of the last node failed")
		}
		ctl.ReleaseAll(pids)
	}
	ctl.AwaitAllParked(pids, instrument.PtBeforeInsertCAS)
	ctl.ClearAllPauses()
	ctl.ReleaseAll(pids)
	wg.Wait()
	return E2Row{Impl: "fomitchev-ruppert", Q: q, N: n, Rounds: rounds,
		InserterSteps: summarizeSteps(procs)}
}

// runE2Harris runs the identical schedule against Harris's list.
func runE2Harris(q, n, rounds int) E2Row {
	l := harris.NewList[int, int]()
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	ctl := adversary.NewController()
	hooks := ctl.HooksFor()
	inserters := q - 1
	pids := make([]int, inserters)
	procs := make([]*instrument.Proc, inserters)
	for i := range pids {
		pids[i] = i + 1
		procs[i] = &instrument.Proc{ID: pids[i], Stats: &instrument.OpStats{}, Hooks: hooks}
		ctl.PauseAt(pids[i], instrument.PtBeforeInsertCAS)
	}
	var wg sync.WaitGroup
	for i := 0; i < inserters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Insert(procs[i], n+i, 0)
		}(i)
	}
	for r := 0; r < rounds; r++ {
		ctl.AwaitAllParked(pids, instrument.PtBeforeInsertCAS)
		if _, ok := l.Delete(nil, n-1-r); !ok {
			panic("E2: deletion of the last node failed")
		}
		ctl.ReleaseAll(pids)
	}
	ctl.AwaitAllParked(pids, instrument.PtBeforeInsertCAS)
	ctl.ClearAllPauses()
	ctl.ReleaseAll(pids)
	wg.Wait()
	return E2Row{Impl: "harris", Q: q, N: n, Rounds: rounds,
		InserterSteps: summarizeSteps(procs)}
}

// runE2Noflag runs the identical schedule against the no-flag ablation.
// Backlinks alone already defeat this schedule (each recovery is O(1)),
// which localizes the flag bits' contribution to the chain-growth
// pathology measured by E7.
func runE2Noflag(q, n, rounds int) E2Row {
	l := noflag.NewList[int, int]()
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	ctl := adversary.NewController()
	hooks := ctl.HooksFor()
	inserters := q - 1
	pids := make([]int, inserters)
	procs := make([]*instrument.Proc, inserters)
	for i := range pids {
		pids[i] = i + 1
		procs[i] = &instrument.Proc{ID: pids[i], Stats: &instrument.OpStats{}, Hooks: hooks}
		ctl.PauseAt(pids[i], instrument.PtBeforeInsertCAS)
	}
	var wg sync.WaitGroup
	for i := 0; i < inserters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Insert(procs[i], n+i, 0)
		}(i)
	}
	for r := 0; r < rounds; r++ {
		ctl.AwaitAllParked(pids, instrument.PtBeforeInsertCAS)
		if _, ok := l.Delete(nil, n-1-r); !ok {
			panic("E2: deletion of the last node failed")
		}
		ctl.ReleaseAll(pids)
	}
	ctl.AwaitAllParked(pids, instrument.PtBeforeInsertCAS)
	ctl.ClearAllPauses()
	ctl.ReleaseAll(pids)
	wg.Wait()
	return E2Row{Impl: "no-flag ablation", Q: q, N: n, Rounds: rounds,
		InserterSteps: summarizeSteps(procs)}
}

func summarizeSteps(procs []*instrument.Proc) stats.Summary {
	xs := make([]float64, len(procs))
	for i, p := range procs {
		xs[i] = float64(p.Stats.EssentialSteps())
	}
	return stats.Summarize(xs)
}

// Render prints per-configuration rows and the FR/Harris ratio.
func (r E2Result) Render() string {
	t := Table{
		Title: "E2: Section 3.1 adversarial execution (inserter cost per operation)",
		Columns: []string{"impl", "q", "n", "rounds", "mean steps/insert",
			"max steps/insert"},
	}
	type key struct{ q, n int }
	frMean := map[key]float64{}
	for _, row := range r.Rows {
		t.AddRow(row.Impl, d(row.Q), d(row.N), d(row.Rounds),
			f(row.InserterSteps.Mean), f(row.InserterSteps.Max))
		if row.Impl == "fomitchev-ruppert" {
			frMean[key{row.Q, row.N}] = row.InserterSteps.Mean
		}
	}
	for _, row := range r.Rows {
		if row.Impl == "harris" {
			if fr := frMean[key{row.Q, row.N}]; fr > 0 {
				t.Notes = append(t.Notes, fmt2(
					"q=%d n=%d: harris/FR step ratio = %.1fx (paper predicts Theta(n) growth of the ratio)",
					row.Q, row.N, row.InserterSteps.Mean/fr))
			}
		}
	}
	return t.Render()
}
