package experiments

import (
	"math/rand/v2"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
)

// E6 investigates the distribution of tower heights (Section 4, final
// paragraph). The paper argues that full towers follow the geometric(1/2)
// distribution of the sequential skip list, that a non-deleted tower can
// be incomplete only while its insertion or deletion is in progress - so
// the number of incomplete towers at any time is bounded by the point
// contention - and that higher towers are slightly more likely to end up
// incomplete because their construction window is longer.
type E6Result struct {
	Rows []E6Row
}

// E6Row is one contention level: the measured height histogram of the
// surviving towers after n concurrent insertions (plus churn), compared
// against the geometric expectation.
type E6Row struct {
	C          int
	N          int   // surviving towers
	Histogram  []int // index h-1 = towers of height h
	MaxHeight  int
	MeanHeight float64
	// MaxAbsDeviation is the largest |measured - expected| / expected over
	// heights with expectation >= 50 towers.
	MaxAbsDeviation float64
}

// E6Config parameterizes the experiment.
type E6Config struct {
	N     int   // keys inserted per run
	Cs    []int // concurrent inserter counts
	Churn bool  // also run concurrent deleters over half the key space
	Seed  uint64
}

// DefaultE6Config returns the configuration used by the harness.
func DefaultE6Config() E6Config {
	return E6Config{N: 100_000, Cs: []int{1, 8, 32}, Churn: true, Seed: 21}
}

// RunE6 builds skip lists at each contention level and reports the height
// distribution of the surviving towers.
func RunE6(cfg E6Config) E6Result {
	var res E6Result
	for _, c := range cfg.Cs {
		res.Rows = append(res.Rows, runE6(cfg, c))
	}
	return res
}

func runE6(cfg E6Config, c int) E6Row {
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(c)))
	src := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Uint64()
	}
	l := core.NewSkipList[int, int](core.WithRandomSource(src))
	var wg sync.WaitGroup
	per := cfg.N / c
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &core.Proc{ID: w}
			for i := 0; i < per; i++ {
				k := w*per + i
				l.Insert(p, k, k)
				// Churn: delete and reinsert a recent key now and then to
				// exercise interrupted tower construction.
				if cfg.Churn && i%16 == 7 {
					l.Delete(p, k)
					l.Insert(p, k, k)
				}
			}
		}(w)
	}
	wg.Wait()
	hist := l.Heights()
	row := E6Row{C: c, Histogram: hist}
	var total, weighted float64
	for h1, count := range hist {
		if count > 0 {
			row.MaxHeight = h1 + 1
		}
		total += float64(count)
		weighted += float64(count) * float64(h1+1)
	}
	row.N = int(total)
	if total > 0 {
		row.MeanHeight = weighted / total
	}
	for h1, count := range hist {
		exp := stats.GeometricExpectation(row.N, h1+1)
		if exp >= 50 {
			dev := abs(float64(count)-exp) / exp
			if dev > row.MaxAbsDeviation {
				row.MaxAbsDeviation = dev
			}
		}
	}
	return row
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Render prints, per contention level, the measured-vs-expected histogram
// for the first ten heights.
func (r E6Result) Render() string {
	out := ""
	for _, row := range r.Rows {
		t := Table{
			Title: fmt2("E6: tower heights at contention c=%d (n=%d, mean=%.3f, max=%d, worst dev=%.1f%%)",
				row.C, row.N, row.MeanHeight, row.MaxHeight, 100*row.MaxAbsDeviation),
			Columns: []string{"height", "towers", "expected (geometric 1/2)"},
		}
		for h := 1; h <= min(10, len(row.Histogram)); h++ {
			t.AddRow(d(h), d(row.Histogram[h-1]),
				fmt2("%.0f", stats.GeometricExpectation(row.N, h)))
		}
		out += t.Render() + "\n"
	}
	return out
}
