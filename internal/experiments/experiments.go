// Package experiments implements the paper's evaluation as runnable
// experiments E1-E7 (see DESIGN.md for the full index). Each experiment
// returns a typed result with a Render method that prints the rows the
// harness reports; cmd/lflbench and the repository's bench_test.go drive
// the same code.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple fixed-column text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }

// fmt2 is fmt.Sprintf, named to avoid colliding with the f helper.
func fmt2(format string, args ...any) string { return fmt.Sprintf(format, args...) }
