package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/lockbased"
	"repro/internal/stats"
)

// E5 verifies the skip list's expected O(log n) behaviour (Section 4,
// citing Pugh): search steps and latency must grow logarithmically in n,
// in contrast with the linked list's linear growth, and the crossover
// between the two must appear at small n.
type E5Result struct {
	Rows []E5Row
	// StepFit fits skip-list search steps against log2(n); the paper
	// predicts a near-perfect logarithmic fit.
	StepFit stats.LinearFit
}

// E5Row is one list size.
type E5Row struct {
	N             int
	SkipSteps     float64 // mean essential steps per skip-list search
	SkipNsPerOp   float64
	ListNsPerOp   float64 // FR plain list search latency (linear in n)
	LockedNsPerOp float64 // coarse-locked skip list latency
}

// E5Config parameterizes the sweep.
type E5Config struct {
	Ns     []int
	Probes int
	// MaxListN bounds the sizes at which the O(n) plain list is probed
	// (beyond this it is pointlessly slow).
	MaxListN int
}

// DefaultE5Config returns the configuration used by the harness.
func DefaultE5Config() E5Config {
	return E5Config{
		Ns:       []int{1_000, 4_000, 16_000, 64_000, 256_000},
		Probes:   2_000,
		MaxListN: 64_000,
	}
}

// RunE5 runs the sweep single-threaded (the claim is about expected work,
// not parallelism; E4 covers scalability).
func RunE5(cfg E5Config) E5Result {
	var res E5Result
	var lx, ly []float64
	for _, n := range cfg.Ns {
		row := E5Row{N: n}

		sl := core.NewSkipList[int, int]()
		for k := 0; k < 2*n; k += 2 {
			sl.Insert(nil, k, k)
		}
		st := &core.OpStats{}
		p := &core.Proc{Stats: st}
		begin := time.Now()
		for i := 0; i < cfg.Probes; i++ {
			sl.Search(p, probeKey(i, n))
		}
		row.SkipNsPerOp = float64(time.Since(begin).Nanoseconds()) / float64(cfg.Probes)
		row.SkipSteps = float64(st.EssentialSteps()) / float64(cfg.Probes)

		lsl := lockbased.NewSkipList[int, int](0, nil)
		for k := 0; k < 2*n; k += 2 {
			lsl.Insert(k, k)
		}
		begin = time.Now()
		for i := 0; i < cfg.Probes; i++ {
			lsl.Contains(probeKey(i, n))
		}
		row.LockedNsPerOp = float64(time.Since(begin).Nanoseconds()) / float64(cfg.Probes)

		if n <= cfg.MaxListN {
			ll := core.NewList[int, int]()
			for k := 0; k < 2*n; k += 2 {
				ll.Insert(nil, k, k)
			}
			probes := max(cfg.Probes/10, 100)
			begin = time.Now()
			for i := 0; i < probes; i++ {
				ll.Search(nil, probeKey(i, n))
			}
			row.ListNsPerOp = float64(time.Since(begin).Nanoseconds()) / float64(probes)
		}

		res.Rows = append(res.Rows, row)
		lx = append(lx, float64(n))
		ly = append(ly, row.SkipSteps)
	}
	res.StepFit = stats.FitLogarithmic(lx, ly)
	return res
}

// probeKey spreads probes over hits and misses across the key space.
func probeKey(i, n int) int {
	return (i * 2 * n / 1000) % (2 * n)
}

// Render prints the scaling table.
func (r E5Result) Render() string {
	t := Table{
		Title: "E5: skip list O(log n) scaling vs linked list O(n)",
		Columns: []string{"n", "skip steps/search", "skip ns/op", "FR list ns/op",
			"locked skip ns/op"},
	}
	for _, row := range r.Rows {
		listNs := "-"
		if row.ListNsPerOp > 0 {
			listNs = f(row.ListNsPerOp)
		}
		t.AddRow(d(row.N), f(row.SkipSteps), f(row.SkipNsPerOp), listNs, f(row.LockedNsPerOp))
	}
	t.Notes = append(t.Notes, fmt2(
		"skip-list steps vs log2(n): slope %.2f steps per doubling, R^2 %.4f",
		r.StepFit.Slope, r.StepFit.R2))
	return t.Render()
}
