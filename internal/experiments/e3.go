package experiments

import (
	"sync"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/valois"
	"time"
)

// E3 examines the paper's Section 2 comparison against Valois's list,
// whose average cost per operation can degrade to Omega(m_E) in the
// original design. Two mechanisms drive that bound: auxiliary cells add
// constant-factor overhead to every traversal, and incomplete deletions
// leave auxiliary garbage whose cleanup is deferred to later operations.
//
// E3 measures both: (a) steps per operation on identical sequential
// workloads (the aux-cell overhead), and (b) "cleanup debt" - the cost of
// the first and second search after m deletions whose cleanup phase is
// suspended mid-flight. In Valois the debt is a chain of m auxiliary cells
// that the next traversal must walk and compress; in the FR list it is m
// logically deleted nodes that the next search helps to physically delete.
// Both pay Theta(m) once; the paper's stronger Omega(m_E) lower bound for
// Valois relies on the original paper's compression policy, which the
// safety-corrected implementation here deliberately strengthens (see
// package valois); EXPERIMENTS.md discusses the difference.
type E3Result struct {
	Overhead []E3OverheadRow
	Debt     []E3DebtRow
}

// E3OverheadRow compares per-operation step counts and latency at one
// list size. Step counts end up comparable by construction (both charge
// two essential steps per key passed); the latency ratio exposes Valois's
// real cost - every hop between keys crosses an extra auxiliary cell.
type E3OverheadRow struct {
	N             int
	ValoisSteps   float64
	FRSteps       float64
	StepOverhead  float64 // valois / FR, steps
	ValoisNsPerOp float64
	FRNsPerOp     float64
	TimeOverhead  float64 // valois / FR, wall time
}

// E3DebtRow reports search cost after m suspended deletions.
type E3DebtRow struct {
	Impl                      string
	M                         int
	FirstSearch, SecondSearch float64 // essential steps
	Baseline                  float64 // steps for the same search with no debt
	AuxCells, LongestChain    int     // Valois only
}

// E3Config parameterizes the experiment.
type E3Config struct {
	Ns []int // list sizes for the overhead comparison
	Ms []int // suspended-deletion counts for the debt measurement
}

// DefaultE3Config returns the configuration used by the harness.
func DefaultE3Config() E3Config {
	return E3Config{
		Ns: []int{256, 1024, 4096},
		Ms: []int{16, 64, 256, 1024},
	}
}

// RunE3 executes both measurements.
func RunE3(cfg E3Config) E3Result {
	var res E3Result
	for _, n := range cfg.Ns {
		res.Overhead = append(res.Overhead, runE3Overhead(n))
	}
	for _, m := range cfg.Ms {
		res.Debt = append(res.Debt, runE3DebtValois(m))
		res.Debt = append(res.Debt, runE3DebtFR(m))
	}
	return res
}

// runE3Overhead measures mean essential steps for a full sweep of searches
// over an n-key list in both implementations.
func runE3Overhead(n int) E3OverheadRow {
	vl := valois.NewList[int, int]()
	fr := core.NewList[int, int]()
	for k := 0; k < n; k++ {
		vl.Insert(nil, k, k)
		fr.Insert(nil, k, k)
	}
	const probes = 256
	vst := &instrument.OpStats{}
	fst := &instrument.OpStats{}
	vp := &instrument.Proc{Stats: vst}
	fp := &instrument.Proc{Stats: fst}
	begin := time.Now()
	for i := 0; i < probes; i++ {
		vl.Contains(vp, i*n/probes)
	}
	vNs := float64(time.Since(begin).Nanoseconds()) / probes
	begin = time.Now()
	for i := 0; i < probes; i++ {
		fr.Search(fp, i*n/probes)
	}
	fNs := float64(time.Since(begin).Nanoseconds()) / probes
	v := float64(vst.EssentialSteps()) / probes
	f := float64(fst.EssentialSteps()) / probes
	return E3OverheadRow{N: n, ValoisSteps: v, FRSteps: f, StepOverhead: v / f,
		ValoisNsPerOp: vNs, FRNsPerOp: fNs, TimeOverhead: vNs / fNs}
}

// runE3DebtValois suspends m deleters right after their unlink C&S (before
// normalization), then measures two consecutive full searches. The victims
// are non-adjacent (odd keys, deleted right to left) so that no deletion
// helps another's cleanup, isolating the per-deletion debt.
func runE3DebtValois(m int) E3DebtRow {
	l := valois.NewList[int, int]()
	n := 2*m + 2
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	ctl := adversary.NewController()
	hooks := ctl.HooksFor()
	var wg sync.WaitGroup
	pids := make([]int, m)
	for i := 0; i < m; i++ {
		pid := i + 1
		pids[i] = pid
		ctl.PauseAt(pid, instrument.PtAfterUnlink)
		wg.Add(1)
		go func(pid, key int) {
			defer wg.Done()
			p := &instrument.Proc{ID: pid, Hooks: hooks}
			l.Delete(p, key)
		}(pid, 2*(m-i)-1) // odd keys, right to left
		ctl.AwaitParked(pid, instrument.PtAfterUnlink)
	}
	aux, longest := l.AuxChainStats()
	first := searchCostValois(l, n)
	second := searchCostValois(l, n)
	ctl.ClearAllPauses()
	ctl.ReleaseAll(pids)
	wg.Wait()
	// Baseline: the same search on a clean list holding the same live
	// keys (the even keys plus the sentinel-adjacent endpoints).
	clean := valois.NewList[int, int]()
	for k := 0; k < n; k++ {
		if k%2 == 0 || k == n-1 {
			clean.Insert(nil, k, k)
		}
	}
	return E3DebtRow{Impl: "valois", M: m, FirstSearch: first, SecondSearch: second,
		Baseline: searchCostValois(clean, n), AuxCells: aux, LongestChain: longest}
}

// runE3DebtFR suspends m FR deleters between marking and physical
// deletion, then measures two consecutive full searches. Victims are
// non-adjacent for the same reason as in runE3DebtValois (adjacent FR
// deletions would help each other through the shared flags).
func runE3DebtFR(m int) E3DebtRow {
	l := core.NewList[int, int]()
	n := 2*m + 2
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	ctl := adversary.NewController()
	hooks := ctl.HooksFor()
	var wg sync.WaitGroup
	pids := make([]int, m)
	for i := 0; i < m; i++ {
		pid := i + 1
		pids[i] = pid
		ctl.PauseAt(pid, instrument.PtBeforePhysicalCAS)
		wg.Add(1)
		go func(pid, key int) {
			defer wg.Done()
			p := &core.Proc{ID: pid, Hooks: hooks}
			l.Delete(p, key)
		}(pid, 2*(m-i)-1)
		ctl.AwaitParked(pid, instrument.PtBeforePhysicalCAS)
	}
	first := searchCostFR(l, n)
	second := searchCostFR(l, n)
	ctl.ClearAllPauses()
	ctl.ReleaseAll(pids)
	wg.Wait()
	clean := core.NewList[int, int]()
	for k := 0; k < n; k++ {
		if k%2 == 0 || k == n-1 {
			clean.Insert(nil, k, k)
		}
	}
	return E3DebtRow{Impl: "fomitchev-ruppert", M: m, FirstSearch: first,
		SecondSearch: second, Baseline: searchCostFR(clean, n)}
}

func searchCostValois(l *valois.List[int, int], key int) float64 {
	st := &instrument.OpStats{}
	l.Contains(&instrument.Proc{Stats: st}, key)
	return float64(st.EssentialSteps())
}

func searchCostFR(l *core.List[int, int], key int) float64 {
	st := &instrument.OpStats{}
	l.Search(&core.Proc{Stats: st}, key)
	return float64(st.EssentialSteps())
}

// Render prints both tables.
func (r E3Result) Render() string {
	t1 := Table{
		Title: "E3a: Valois auxiliary-cell overhead (per search)",
		Columns: []string{"n", "valois steps", "FR steps", "steps ratio",
			"valois ns", "FR ns", "time ratio"},
	}
	for _, row := range r.Overhead {
		t1.AddRow(d(row.N), f(row.ValoisSteps), f(row.FRSteps), f(row.StepOverhead),
			f(row.ValoisNsPerOp), f(row.FRNsPerOp), f(row.TimeOverhead))
	}
	t2 := Table{
		Title: "E3b: cleanup debt after m suspended deletions",
		Columns: []string{"impl", "m", "1st search", "2nd search",
			"clean baseline", "aux cells", "longest aux chain"},
	}
	for _, row := range r.Debt {
		t2.AddRow(row.Impl, d(row.M), f(row.FirstSearch), f(row.SecondSearch),
			f(row.Baseline), d(row.AuxCells), d(row.LongestChain))
	}
	t2.Notes = append(t2.Notes,
		"both implementations pay Theta(m) once to clear the debt of m incomplete deletions;",
		"Valois accumulates the debt as reachable auxiliary chains, FR as marked nodes",
		"that helping removes; see EXPERIMENTS.md for the relation to the Omega(m_E) bound")
	return t1.Render() + "\n" + t2.Render()
}
