package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Notes = append(tab.Notes, "hello")
	out := tab.Render()
	for _, want := range []string{"== t ==", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE1LinearInN(t *testing.T) {
	res := RunE1(E1Config{
		Ns:        []int{100, 200, 400, 800},
		Cs:        []int{1, 4},
		FixedC:    2,
		FixedN:    32,
		OpsPerRun: 800,
		Seed:      5,
	})
	if res.NFit.R2 < 0.95 {
		t.Fatalf("steps/op not linear in n: fit %+v", res.NFit)
	}
	if res.NFit.Slope <= 0 {
		t.Fatalf("nonpositive slope: %+v", res.NFit)
	}
	// Steps at n=800 should be roughly 8x steps at n=100 (both dominated
	// by the linear search term); allow a factor-of-two band.
	lo, hi := res.NSweep[0].Steps.Mean, res.NSweep[len(res.NSweep)-1].Steps.Mean
	if hi < 4*lo || hi > 16*lo {
		t.Fatalf("scaling off: %f -> %f", lo, hi)
	}
	if out := res.Render(); !strings.Contains(out, "E1a") || !strings.Contains(out, "E1b") {
		t.Fatalf("render: %s", out)
	}
}

func TestE1ContentionAdditive(t *testing.T) {
	res := RunE1(E1Config{
		Ns:        []int{64},
		Cs:        []int{1, 2, 4, 8},
		FixedC:    1,
		FixedN:    64,
		OpsPerRun: 2000,
		Seed:      6,
	})
	// The c=8 mean must stay within an additive band of the c=1 mean: the
	// bound is O(n + c), so going from c=1 to c=8 must not multiply the
	// cost (Harris-style restarts would).
	base := res.CSweep[0].Steps.Mean
	worst := res.CSweep[len(res.CSweep)-1].Steps.Mean
	if worst > 3*base+50 {
		t.Fatalf("contention overhead looks multiplicative: c=1 %.1f, c=8 %.1f", base, worst)
	}
}

func TestE2HarrisQuadraticFRLinear(t *testing.T) {
	res := RunE2(E2Config{Qs: []int{3}, Ns: []int{128, 256}})
	get := func(impl string, n int) float64 {
		for _, r := range res.Rows {
			if r.Impl == impl && r.N == n {
				return r.InserterSteps.Mean
			}
		}
		t.Fatalf("row %s/%d missing", impl, n)
		return 0
	}
	frRatio := get("fomitchev-ruppert", 256) / get("fomitchev-ruppert", 128)
	harrisRatio := get("harris", 256) / get("harris", 128)
	if frRatio > 3 {
		t.Fatalf("FR inserter cost grew superlinearly: ratio %.2f", frRatio)
	}
	if harrisRatio < 3 {
		t.Fatalf("Harris inserter cost did not grow quadratically: ratio %.2f", harrisRatio)
	}
	// And at every n, Harris must be far costlier than FR.
	if get("harris", 256) < 10*get("fomitchev-ruppert", 256) {
		t.Fatalf("Harris/FR gap too small: %f vs %f",
			get("harris", 256), get("fomitchev-ruppert", 256))
	}
}

func TestE3DebtLinearAndRecovered(t *testing.T) {
	res := RunE3(E3Config{Ns: []int{128}, Ms: []int{32, 128}})
	for _, row := range res.Overhead {
		if row.StepOverhead < 0.9 {
			t.Fatalf("valois cheaper than FR per step? %+v", row)
		}
	}
	var v32, v128 E3DebtRow
	for _, row := range res.Debt {
		if row.Impl == "valois" && row.M == 32 {
			v32 = row
		}
		if row.Impl == "valois" && row.M == 128 {
			v128 = row
		}
	}
	// First-search debt grows with m.
	if v128.FirstSearch-v128.Baseline < 2*(v32.FirstSearch-v32.Baseline) {
		t.Fatalf("valois debt not growing: m=32 %+v, m=128 %+v", v32, v128)
	}
	// Second search must be near the clean baseline (debt paid once).
	if v128.SecondSearch > v128.Baseline*2+16 {
		t.Fatalf("valois second search still expensive: %+v", v128)
	}
}

func TestE4SmokeAllImpls(t *testing.T) {
	cfg := E4Config{
		Threads:   []int{2},
		Mixes:     []workload.Mix{workload.Balanced},
		KeyRanges: []int{64},
		Ops:       4000,
		Seed:      1,
	}
	res := RunE4(cfg)
	if len(res.Rows) != len(E4Impls) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(E4Impls))
	}
	for _, row := range res.Rows {
		if row.OpsPerSec <= 0 {
			t.Fatalf("no throughput for %s", row.Impl)
		}
	}
}

func TestE5Logarithmic(t *testing.T) {
	// Five sizes keep the fit stable against the randomness of tower
	// heights; the decisive assertion is the growth ratio (64x more keys
	// must cost well under 3x the steps - a linear structure would cost
	// 64x), with the R^2 check as a loose shape filter.
	res := RunE5(E5Config{Ns: []int{1000, 4000, 8000, 16000, 64000}, Probes: 500, MaxListN: 8000})
	if res.StepFit.R2 < 0.7 {
		t.Fatalf("skip steps not logarithmic: %+v", res.StepFit)
	}
	if res.StepFit.Slope > 5 {
		t.Fatalf("steps per doubling = %.2f, want near 2", res.StepFit.Slope)
	}
	first, last := res.Rows[0].SkipSteps, res.Rows[len(res.Rows)-1].SkipSteps
	if last > first*3 {
		t.Fatalf("steps grew too fast for log n: %f -> %f over 64x size", first, last)
	}
}

func TestE6GeometricHeights(t *testing.T) {
	res := RunE6(E6Config{N: 40_000, Cs: []int{1, 8}, Churn: true, Seed: 3})
	for _, row := range res.Rows {
		if row.MaxAbsDeviation > 0.25 {
			t.Fatalf("c=%d: heights deviate %.0f%% from geometric",
				row.C, 100*row.MaxAbsDeviation)
		}
		if row.MeanHeight < 1.7 || row.MeanHeight > 2.3 {
			t.Fatalf("c=%d: mean height %.2f, want near 2", row.C, row.MeanHeight)
		}
	}
}

func TestE7FlagBitsBoundChains(t *testing.T) {
	res := RunE7(E7Config{Ks: []int{8, 64}})
	rows := map[string]map[int]E7Row{}
	for _, row := range res.Rows {
		if rows[row.Impl] == nil {
			rows[row.Impl] = map[int]E7Row{}
		}
		rows[row.Impl][row.K] = row
		if !row.InsertRecovered {
			t.Fatalf("%s k=%d: victim insert did not recover", row.Impl, row.K)
		}
	}
	// Ablation: the victim walks the whole chain.
	if got := rows["no-flag ablation"][64].VictimWalk; got < 60 {
		t.Fatalf("ablation walk at k=64 = %d, want about 64", got)
	}
	if a8, a64 := rows["no-flag ablation"][8].VictimWalk, rows["no-flag ablation"][64].VictimWalk; a64 < 4*a8 {
		t.Fatalf("ablation chain not growing: k=8 %d, k=64 %d", a8, a64)
	}
	// Flags: the walk stays O(1) regardless of k.
	for _, k := range []int{8, 64} {
		if got := rows["fomitchev-ruppert"][k].VictimWalk; got > 3 {
			t.Fatalf("FR walk at k=%d = %d, want O(1)", k, got)
		}
	}
	if out := res.Render(); !strings.Contains(out, "no-flag ablation") {
		t.Fatalf("render: %s", out)
	}
}

func TestE8LockFreeProgressDuringStall(t *testing.T) {
	res := RunE8(E8Config{Workers: 4, Stall: 60 * time.Millisecond, KeyRange: 256, Seed: 2})
	var fr, locked E8Row
	for _, row := range res.Rows {
		switch row.Impl {
		case "fr-skiplist":
			fr = row
		default:
			locked = row
		}
	}
	if !fr.StalledFinal {
		t.Fatal("stalled FR deletion did not complete correctly")
	}
	if fr.OpsDuring < 500 {
		t.Fatalf("lock-free workers completed only %d ops during the stall", fr.OpsDuring)
	}
	// The locked structure may sneak in a few reads before everyone piles
	// up behind the writer lock, but progress must be essentially zero.
	// (An absolute bound keeps the test robust to machine-load noise in
	// fr.OpsDuring.)
	if locked.OpsDuring > 1000 && locked.OpsDuring > fr.OpsDuring/10 {
		t.Fatalf("locked baseline made too much progress during the stall: %d vs %d",
			locked.OpsDuring, fr.OpsDuring)
	}
}
