package experiments

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harris"
	"repro/internal/lockbased"
	"repro/internal/noflag"
	"repro/internal/sundell"
	"repro/internal/valois"
	"repro/internal/workload"
)

// E4 is the throughput comparison implied by the paper's practicality
// claims and the experimental methodology of the work it cites (Harris
// 2001, Michael 2002): operations per second across thread counts,
// operation mixes, and key ranges, for every list implementation in the
// repository plus the lock-based strawman.
type E4Result struct {
	Rows []E4Row
}

// E4Row is one measured configuration.
type E4Row struct {
	Impl      string
	Threads   int
	Mix       workload.Mix
	KeyRange  int
	OpsPerSec float64
}

// E4Config parameterizes the sweep.
type E4Config struct {
	Impls     []string // subset of E4Impls; nil means all
	Threads   []int
	Mixes     []workload.Mix
	KeyRanges []int
	Ops       int // total operations per configuration
	Seed      uint64
}

// E4Impls lists the implementations the experiment knows how to drive.
var E4Impls = []string{
	"fr-list", "harris-list", "valois-list", "noflag-list", "locked-list",
	"fr-skiplist", "harris-skiplist", "sundell-skiplist", "locked-skiplist",
}

// DefaultE4Config returns the configuration used by the harness. Thread
// counts are deduplicated (on small machines the NumCPU-derived entries
// collide with the fixed ones).
func DefaultE4Config() E4Config {
	nc := runtime.NumCPU()
	seen := map[int]bool{}
	var threads []int
	for _, t := range []int{1, 2, 4, max(nc/2, 4), 2 * nc} {
		if !seen[t] {
			seen[t] = true
			threads = append(threads, t)
		}
	}
	return E4Config{
		Threads:   threads,
		Mixes:     []workload.Mix{workload.ReadHeavy, workload.Balanced, workload.WriteHeavy},
		KeyRanges: []int{256, 4096},
		Ops:       200_000,
		Seed:      11,
	}
}

// Dict adapts every implementation to a common operation set.
type Dict interface {
	insert(k int) bool
	remove(k int) bool
	contains(k int) bool
}

type frListDict struct{ l *core.List[int, int] }

func (d frListDict) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frListDict) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d frListDict) contains(k int) bool { return d.l.Search(nil, k) != nil }

type harrisListDict struct{ l *harris.List[int, int] }

func (d harrisListDict) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d harrisListDict) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d harrisListDict) contains(k int) bool { return d.l.Search(nil, k) != nil }

type valoisListDict struct{ l *valois.List[int, int] }

func (d valoisListDict) insert(k int) bool   { return d.l.Insert(nil, k, k) }
func (d valoisListDict) remove(k int) bool   { return d.l.Delete(nil, k) }
func (d valoisListDict) contains(k int) bool { return d.l.Contains(nil, k) }

type noflagListDict struct{ l *noflag.List[int, int] }

func (d noflagListDict) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d noflagListDict) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d noflagListDict) contains(k int) bool { return d.l.Search(nil, k) != nil }

type lockedListDict struct{ l *lockbased.List[int, int] }

func (d lockedListDict) insert(k int) bool   { return d.l.Insert(k, k) }
func (d lockedListDict) remove(k int) bool   { return d.l.Delete(k) }
func (d lockedListDict) contains(k int) bool { return d.l.Contains(k) }

type frSkipDict struct{ l *core.SkipList[int, int] }

func (d frSkipDict) insert(k int) bool   { _, ok := d.l.Insert(nil, k, k); return ok }
func (d frSkipDict) remove(k int) bool   { _, ok := d.l.Delete(nil, k); return ok }
func (d frSkipDict) contains(k int) bool { return d.l.Search(nil, k) != nil }

type harrisSkipDict struct{ l *harris.SkipList[int, int] }

func (d harrisSkipDict) insert(k int) bool   { return d.l.Insert(nil, k, k) }
func (d harrisSkipDict) remove(k int) bool   { return d.l.Delete(nil, k) }
func (d harrisSkipDict) contains(k int) bool { return d.l.Contains(nil, k) }

type sundellSkipDict struct{ l *sundell.SkipList[int, int] }

func (d sundellSkipDict) insert(k int) bool   { return d.l.Insert(nil, k, k) }
func (d sundellSkipDict) remove(k int) bool   { return d.l.Delete(nil, k) }
func (d sundellSkipDict) contains(k int) bool { return d.l.Contains(nil, k) }

type lockedSkipDict struct{ l *lockbased.SkipList[int, int] }

func (d lockedSkipDict) insert(k int) bool   { return d.l.Insert(k, k) }
func (d lockedSkipDict) remove(k int) bool   { return d.l.Delete(k) }
func (d lockedSkipDict) contains(k int) bool { return d.l.Contains(k) }

// NewDict constructs a fresh instance of the named implementation.
func NewDict(impl string) Dict {
	switch impl {
	case "fr-list":
		return frListDict{core.NewList[int, int]()}
	case "harris-list":
		return harrisListDict{harris.NewList[int, int]()}
	case "valois-list":
		return valoisListDict{valois.NewList[int, int]()}
	case "noflag-list":
		return noflagListDict{noflag.NewList[int, int]()}
	case "locked-list":
		return lockedListDict{lockbased.NewList[int, int]()}
	case "fr-skiplist":
		return frSkipDict{core.NewSkipList[int, int]()}
	case "harris-skiplist":
		return harrisSkipDict{harris.NewSkipList[int, int](0, nil)}
	case "sundell-skiplist":
		return sundellSkipDict{sundell.New[int, int](0, nil)}
	case "locked-skiplist":
		return lockedSkipDict{lockbased.NewSkipList[int, int](0, nil)}
	default:
		panic("unknown implementation " + impl)
	}
}

// RunE4 measures throughput for every configuration.
func RunE4(cfg E4Config) E4Result {
	impls := cfg.Impls
	if impls == nil {
		impls = E4Impls
	}
	var res E4Result
	for _, impl := range impls {
		for _, kr := range cfg.KeyRanges {
			for _, mix := range cfg.Mixes {
				for _, th := range cfg.Threads {
					res.Rows = append(res.Rows, E4Row{
						Impl: impl, Threads: th, Mix: mix, KeyRange: kr,
						OpsPerSec: MeasureThroughput(impl, th, mix, kr, cfg.Ops, cfg.Seed),
					})
				}
			}
		}
	}
	return res
}

// MeasureThroughput runs one configuration and returns operations/second.
func MeasureThroughput(impl string, threads int, mix workload.Mix, keyRange, ops int, seed uint64) float64 {
	d := NewDict(impl)
	for _, k := range workload.Prefill(keyRange) {
		d.insert(k)
	}
	perThread := ops / threads
	var wg sync.WaitGroup
	start := make(chan struct{})
	begin := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{
				Mix: mix, Dist: workload.Uniform, Range: keyRange, Seed: seed,
			}, t)
			<-start
			for i := 0; i < perThread; i++ {
				ApplyOp(d, gen.Next())
			}
		}(t)
	}
	close(start)
	wg.Wait()
	elapsed := time.Since(begin)
	return float64(perThread*threads) / elapsed.Seconds()
}

// ApplyOp applies one generated workload operation to a dictionary.
func ApplyOp(d Dict, op workload.Op) {
	switch op.Kind {
	case workload.OpInsert:
		d.insert(op.Key)
	case workload.OpDelete:
		d.remove(op.Key)
	default:
		d.contains(op.Key)
	}
}

// Render prints the throughput table grouped by key range and mix.
func (r E4Result) Render() string {
	t := Table{
		Title:   "E4: throughput (operations/second)",
		Columns: []string{"impl", "range", "mix", "threads", "Mops/s"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Impl, d(row.KeyRange), row.Mix.String(), d(row.Threads),
			fmt2("%.3f", row.OpsPerSec/1e6))
	}
	return t.Render()
}
