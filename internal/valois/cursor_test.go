package valois

import (
	"testing"

	"repro/internal/instrument"
)

// TestCursorTraversalOrder drives the cursor API directly (first/next)
// and checks it visits exactly the live cells in order.
func TestCursorTraversalOrder(t *testing.T) {
	l := NewList[int, int]()
	for _, k := range []int{5, 1, 9, 3, 7} {
		l.Insert(nil, k, k*10)
	}
	l.Delete(nil, 3)
	var c cursor[int, int]
	l.first(nil, &c)
	want := []int{1, 5, 7, 9}
	for i, k := range want {
		if c.target.kind != kindNormal || c.target.key != k {
			t.Fatalf("cursor step %d at key %v, want %d", i, c.target.key, k)
		}
		if c.preAux.next.Load() != c.target {
			t.Fatalf("cursor invariant broken at %d: preAux.next != target", k)
		}
		l.next(nil, &c)
	}
	if c.target.kind != kindTail {
		t.Fatal("cursor did not end at the tail")
	}
}

// TestCursorOnEmptyList checks first() lands on the tail immediately.
func TestCursorOnEmptyList(t *testing.T) {
	l := NewList[int, int]()
	var c cursor[int, int]
	l.first(nil, &c)
	if c.target.kind != kindTail {
		t.Fatalf("cursor on empty list at %v", c.target.kind)
	}
	if l.next(nil, &c) {
		t.Fatal("next past the tail succeeded")
	}
}

// TestUpdateRecoversThroughBacklinks positions a cursor on a cell, deletes
// that cell, and checks update() walks the backlink to a live predecessor.
func TestUpdateRecoversThroughBacklinks(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 5; k++ {
		l.Insert(nil, k, k)
	}
	var c cursor[int, int]
	l.seek(nil, &c, 3) // preCell = cell(2), target = cell(3)
	if c.target.key != 3 || c.preCell.key != 2 {
		t.Fatalf("seek landed at (%v, %v)", c.preCell.key, c.target.key)
	}
	// Delete the cursor's preCell out from under it.
	if !l.Delete(nil, 2) {
		t.Fatal("delete failed")
	}
	st := &instrument.OpStats{}
	p := &instrument.Proc{Stats: st}
	l.update(p, &c)
	if st.BacklinkTraversals == 0 {
		t.Fatal("update did not walk the backlink of the deleted preCell")
	}
	if c.preCell.backlink.Load() != nil {
		t.Fatal("update left the cursor on a deleted preCell")
	}
	if c.target.key != 3 {
		t.Fatalf("cursor target drifted to %v", c.target.key)
	}
}

// TestCompressionKeepsLastAux checks the safety-critical compression rule:
// after compressing a chain, the cell whose next pointer is still mutable
// (the last aux) remains on the reachable path.
func TestCompressionKeepsLastAux(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 6; k++ {
		l.Insert(nil, k, k)
	}
	// Delete 3 and 4 back-to-front so an aux chain forms between 2 and 5.
	l.Delete(nil, 4)
	l.Delete(nil, 3)
	var c cursor[int, int]
	l.seek(nil, &c, 5)
	if c.target.key != 5 {
		t.Fatalf("seek(5) at %v", c.target.key)
	}
	// The cursor's preAux must be directly linked to the target: an
	// insert through it must succeed on the first try.
	st := &instrument.OpStats{}
	p := &instrument.Proc{Stats: st}
	if !l.Insert(p, 4, 44) {
		t.Fatal("insert after compression failed")
	}
	if v, ok := l.Get(nil, 4); !ok || v != 44 {
		t.Fatalf("Get(4) = %d, %t", v, ok)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
