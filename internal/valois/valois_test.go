package valois

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/instrument"
)

func TestValoisSequential(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 300; i++ {
		if !l.Insert(nil, i, i*2) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if l.Insert(nil, 5, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if got := l.Len(); got != 300 {
		t.Fatalf("Len = %d", got)
	}
	for i := 0; i < 300; i++ {
		v, ok := l.Get(nil, i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d, %t", i, v, ok)
		}
	}
	for i := 0; i < 300; i += 2 {
		if !l.Delete(nil, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 150 || !sort.IntsAreSorted(got) {
		t.Fatalf("traversal: %d keys, sorted=%t", len(got), sort.IntsAreSorted(got))
	}
}

func TestValoisDeleteAbsent(t *testing.T) {
	l := NewList[int, int]()
	if l.Delete(nil, 3) {
		t.Fatal("deleted from empty list")
	}
	l.Insert(nil, 1, 1)
	if l.Delete(nil, 3) {
		t.Fatal("deleted absent key")
	}
	if !l.Delete(nil, 1) || l.Delete(nil, 1) {
		t.Fatal("delete/double-delete wrong")
	}
}

func TestValoisAuxChainsAccumulate(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 100; i++ {
		l.Insert(nil, i, i)
	}
	// Delete a contiguous block back-to-front without any traversal in
	// between: each deletion leaves its auxiliary cell behind, and the
	// normalization after each delete compresses only around the deleted
	// cell's predecessor.
	for i := 99; i >= 50; i-- {
		l.Delete(nil, i)
	}
	aux, longest := l.AuxChainStats()
	if aux < 51 {
		t.Fatalf("aux cells = %d, want at least one per live cell", aux)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = longest
	// A full traversal compresses chains back down.
	count := 0
	l.Ascend(func(_, _ int) bool { count++; return true })
	if count != 50 {
		t.Fatalf("traversal found %d keys", count)
	}
	_, longestAfter := l.AuxChainStats()
	if longestAfter > 2 {
		t.Fatalf("longest aux chain after full traversal = %d, want compressed", longestAfter)
	}
}

func TestValoisConcurrentStress(t *testing.T) {
	l := NewList[int, int]()
	const workers, ops, keyRange = 8, 2500, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 3))
			p := &instrument.Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Contains(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	count := 0
	l.Ascend(func(k, _ int) bool {
		if seen[k] {
			t.Errorf("duplicate key %d", k)
		}
		seen[k] = true
		count++
		return true
	})
	if got := l.Len(); got != count {
		t.Fatalf("Len = %d, traversal = %d", got, count)
	}
}

func TestValoisAccounting(t *testing.T) {
	for round := 0; round < 10; round++ {
		l := NewList[int, int]()
		const workers, ops, keyRange = 8, 1500, 48
		var insWins, delWins atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(w), uint64(round)))
				for i := 0; i < ops; i++ {
					k := int(rng.Uint64N(keyRange))
					if rng.Uint64N(2) == 0 {
						if l.Insert(nil, k, k) {
							insWins.Add(1)
						}
					} else {
						if l.Delete(nil, k) {
							delWins.Add(1)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		count := 0
		l.Ascend(func(_, _ int) bool { count++; return true })
		net := int(insWins.Load() - delWins.Load())
		if net != count || l.Len() != count {
			t.Fatalf("round %d: Len=%d traversal=%d net=%d", round, l.Len(), count, net)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValoisDeleteContention(t *testing.T) {
	const workers, keys = 8, 120
	for round := 0; round < 5; round++ {
		l := NewList[int, int]()
		for k := 0; k < keys; k++ {
			l.Insert(nil, k, k)
		}
		var wins [workers]int
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := &instrument.Proc{ID: w}
				for k := 0; k < keys; k++ {
					if l.Delete(p, k) {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Fatalf("round %d: %d wins for %d keys", round, total, keys)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d", round, got)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValoisAuxTraversalCounting(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 50; i++ {
		l.Insert(nil, i, i)
	}
	st := &instrument.OpStats{}
	p := &instrument.Proc{Stats: st}
	// Deleting back-to-front leaves each victim's auxiliary cell behind;
	// the normalization inside the next deletion walks (and compresses)
	// the two-cell chain, which must be counted as auxiliary traversals.
	for i := 49; i >= 10; i-- {
		l.Delete(p, i)
	}
	if st.AuxTraversals == 0 {
		t.Fatal("expected auxiliary-cell traversals to be counted")
	}
	if st.EssentialSteps() == 0 {
		t.Fatal("essential steps not counted")
	}
}
