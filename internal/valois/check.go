package valois

import (
	"cmp"
	"fmt"
)

// checkChain validates the reachable chain in a quiescent state: it starts
// at head, ends at tail, alternates normal cells with runs of one or more
// auxiliary cells, and normal-cell keys strictly increase.
func (l *List[K, V]) checkChain() error {
	n := l.head
	var prevKey K
	haveKey := false
	auxRun := 0
	steps := 0
	for {
		next := n.next.Load()
		switch n.kind {
		case kindTail:
			if next != nil {
				return fmt.Errorf("tail has a successor")
			}
			return nil
		case kindHead, kindNormal:
			if next == nil || !next.isAux() {
				return fmt.Errorf("normal cell not followed by an auxiliary cell")
			}
			if n.kind == kindNormal {
				if haveKey && cmp.Compare(prevKey, n.key) >= 0 {
					return fmt.Errorf("keys not strictly increasing")
				}
				prevKey, haveKey = n.key, true
			}
			auxRun = 0
		case kindAux:
			auxRun++
			if next == nil {
				return fmt.Errorf("auxiliary cell with nil next")
			}
		}
		n = next
		steps++
		if steps > 1<<30 {
			return fmt.Errorf("chain does not terminate (cycle?)")
		}
	}
}
