// Package valois implements J. Valois's lock-free linked list ("Lock-Free
// Linked Lists Using Compare-and-Swap", PODC 1995), the earliest of the
// paper's comparison points (Section 2).
//
// Valois's design interleaves auxiliary cells between normal cells so that
// deletions can unlink a cell with a single C&S without disturbing
// concurrent traversals; traversals compress chains of adjacent auxiliary
// cells as they pass. Deleted cells receive a backlink to a predecessor
// cell for recovery. The paper notes that the average cost per operation
// of this design can reach Omega(m_E) - proportional to the total number
// of operations in the execution - even when the list stays short and
// contention is constant, because auxiliary-cell chains grow with the
// number of deletions until some traversal pays to compress them;
// experiment E3 reproduces that behaviour by counting auxiliary-cell
// traversals.
//
// Safety of the compression used here rests on two facts: (1) an
// auxiliary cell's next pointer becomes frozen forever once it points to
// another auxiliary cell (insertions and deletions C&S it only while it
// points to a normal cell), so every interior edge of a walked chain is
// immutable; and (2) compression always keeps the last auxiliary cell of
// the chain - the only one whose next pointer can still change - so no
// concurrent insertion or deletion anchored at it can be lost.
package valois

import (
	"cmp"
	"sync/atomic"

	"repro/internal/instrument"
)

type cellKind int8

const (
	kindNormal cellKind = iota
	kindAux
	kindHead
	kindTail
)

// cell is either a normal cell (carrying a key) or an auxiliary cell.
type cell[K cmp.Ordered, V any] struct {
	key      K
	val      V
	kind     cellKind
	next     atomic.Pointer[cell[K, V]]
	backlink atomic.Pointer[cell[K, V]] // set on deleted normal cells
}

func (c *cell[K, V]) isAux() bool { return c.kind == kindAux }

// compareKey orders the cell against k with sentinels at +-inf. Only
// normal cells and sentinels are compared.
func (c *cell[K, V]) compareKey(k K) int {
	switch c.kind {
	case kindHead:
		return -1
	case kindTail:
		return 1
	default:
		return cmp.Compare(c.key, k)
	}
}

// cursor is Valois's traversal state: the target cell plus the auxiliary
// and normal cells preceding it. Every mutation goes through a cursor.
type cursor[K cmp.Ordered, V any] struct {
	preCell *cell[K, V] // last normal cell before target
	preAux  *cell[K, V] // last auxiliary cell before target (preAux.next == target)
	target  *cell[K, V] // normal cell (or tail) under the cursor
}

// List is Valois's lock-free sorted linked list. The structure alternates
// normal and auxiliary cells: head, aux, c1, aux, c2, ..., aux, tail.
type List[K cmp.Ordered, V any] struct {
	head *cell[K, V]
	tail *cell[K, V]
	size atomic.Int64
}

// NewList returns an empty Valois list.
func NewList[K cmp.Ordered, V any]() *List[K, V] {
	l := &List[K, V]{
		head: &cell[K, V]{kind: kindHead},
		tail: &cell[K, V]{kind: kindTail},
	}
	aux := &cell[K, V]{kind: kindAux}
	aux.next.Store(l.tail)
	l.head.next.Store(aux)
	return l
}

// Len returns the number of keys (exact when quiescent).
func (l *List[K, V]) Len() int { return int(l.size.Load()) }

// update re-derives preAux and target from the cursor's preCell: recover
// past deleted predecessors through backlinks, walk the chain of auxiliary
// cells after preCell, and compress the chain down to its last cell. This
// is Valois's Update/normalization step.
func (l *List[K, V]) update(p *instrument.Proc, c *cursor[K, V]) {
	st := p.StatsOrNil()
	for {
		// Recover to a live predecessor cell.
		for {
			b := c.preCell.backlink.Load()
			if b == nil {
				break
			}
			st.IncBacklink()
			p.At(instrument.PtBacklinkStep)
			c.preCell = b
		}
		firstAux := c.preCell.next.Load()
		st.IncAux() // every hop between normal cells crosses >= 1 auxiliary cell
		last := firstAux
		n := last.next.Load()
		for n.isAux() {
			st.IncAux()
			last = n
			n = n.next.Load()
		}
		// n is a normal cell or the tail; last is the final auxiliary
		// cell, the only one whose next pointer is still mutable.
		if last != firstAux {
			ok := c.preCell.next.CompareAndSwap(firstAux, last)
			st.IncCAS(ok)
			if !ok {
				continue // preCell.next moved; re-derive
			}
		}
		c.preAux = last
		c.target = n
		return
	}
}

// first positions the cursor at the first normal cell of the list.
func (l *List[K, V]) first(p *instrument.Proc, c *cursor[K, V]) {
	c.preCell = l.head
	l.update(p, c)
}

// next advances the cursor to the following normal cell. It returns false
// at the tail.
func (l *List[K, V]) next(p *instrument.Proc, c *cursor[K, V]) bool {
	if c.target.kind == kindTail {
		return false
	}
	c.preCell = c.target
	l.update(p, c)
	p.StatsOrNil().IncCurr()
	return true
}

// tryInsert attempts to insert normal cell q (with its own auxiliary cell
// a) before the cursor's target. Valois's TryInsert.
func (l *List[K, V]) tryInsert(p *instrument.Proc, c *cursor[K, V], q, a *cell[K, V]) bool {
	q.next.Store(a)
	a.next.Store(c.target)
	p.At(instrument.PtBeforeInsertCAS)
	ok := c.preAux.next.CompareAndSwap(c.target, q)
	p.StatsOrNil().IncCAS(ok)
	return ok
}

// tryDelete attempts to delete the cursor's target: unlink the cell with
// one C&S, leaving its auxiliary cell in the list, set the backlink, then
// re-normalize the neighbourhood. Valois's TryDelete.
func (l *List[K, V]) tryDelete(p *instrument.Proc, c *cursor[K, V]) bool {
	st := p.StatsOrNil()
	d := c.target
	dAux := d.next.Load() // d's (first) auxiliary cell, which stays behind
	p.At(instrument.PtBeforeMarkCAS)
	ok := c.preAux.next.CompareAndSwap(d, dAux)
	st.IncCAS(ok)
	if !ok {
		return false
	}
	d.backlink.Store(c.preCell)
	p.At(instrument.PtAfterUnlink)
	// Normalize: compress the auxiliary chain that now follows a live
	// predecessor of d.
	cc := cursor[K, V]{preCell: c.preCell}
	l.update(p, &cc)
	return true
}

// seek positions a cursor on the first normal cell whose key is >= k.
func (l *List[K, V]) seek(p *instrument.Proc, c *cursor[K, V], k K) {
	l.first(p, c)
	for c.target.compareKey(k) < 0 {
		if !l.next(p, c) {
			return
		}
	}
}

// reseek refreshes the cursor in place after interference and moves it
// forward to the first normal cell with key >= k. Unlike Harris's list,
// recovery resumes from the cursor (through backlinks) rather than from
// the head.
func (l *List[K, V]) reseek(p *instrument.Proc, c *cursor[K, V], k K) {
	l.update(p, c)
	for c.target.compareKey(k) < 0 {
		if !l.next(p, c) {
			return
		}
	}
}

// Get looks up k; it returns the value and whether k is present.
func (l *List[K, V]) Get(p *instrument.Proc, k K) (V, bool) {
	var c cursor[K, V]
	l.seek(p, &c, k)
	if c.target.compareKey(k) == 0 {
		return c.target.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (l *List[K, V]) Contains(p *instrument.Proc, k K) bool {
	_, ok := l.Get(p, k)
	return ok
}

// Insert adds k with value v; false if k is already present.
func (l *List[K, V]) Insert(p *instrument.Proc, k K, v V) bool {
	st := p.StatsOrNil()
	q := &cell[K, V]{key: k, val: v}
	a := &cell[K, V]{kind: kindAux}
	var c cursor[K, V]
	l.seek(p, &c, k)
	for {
		if c.target.compareKey(k) == 0 {
			return false // duplicate key
		}
		if l.tryInsert(p, &c, q, a) {
			l.size.Add(1)
			return true
		}
		st.IncRestart()
		l.reseek(p, &c, k)
	}
}

// Delete removes k; false if absent.
func (l *List[K, V]) Delete(p *instrument.Proc, k K) bool {
	st := p.StatsOrNil()
	var c cursor[K, V]
	l.seek(p, &c, k)
	for {
		if c.target.compareKey(k) != 0 {
			return false // no such key
		}
		if l.tryDelete(p, &c) {
			l.size.Add(-1)
			return true
		}
		st.IncRestart()
		l.reseek(p, &c, k)
	}
}

// Ascend iterates keys in ascending order.
func (l *List[K, V]) Ascend(fn func(k K, v V) bool) {
	var c cursor[K, V]
	l.first(nil, &c)
	for c.target.kind != kindTail {
		if !fn(c.target.key, c.target.val) {
			return
		}
		if !l.next(nil, &c) {
			return
		}
	}
}

// AuxChainStats walks the reachable list and returns the number of
// auxiliary cells and the length of the longest run of adjacent auxiliary
// cells - the quantity whose growth drives the Omega(m_E) behaviour.
func (l *List[K, V]) AuxChainStats() (auxCells, longestChain int) {
	n := l.head.next.Load()
	run := 0
	for n != nil {
		if n.isAux() {
			auxCells++
			run++
			longestChain = max(longestChain, run)
		} else {
			run = 0
		}
		n = n.next.Load()
	}
	return auxCells, longestChain
}

// CheckInvariants validates the alternating cell structure and strict key
// order in a quiescent state: the path from head to tail passes through at
// least one auxiliary cell between consecutive normal cells, and keys
// strictly increase.
func (l *List[K, V]) CheckInvariants() error {
	return l.checkChain()
}
