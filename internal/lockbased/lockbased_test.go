package lockbased

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestLockedListSequential(t *testing.T) {
	l := NewList[int, int]()
	for i := 99; i >= 0; i-- {
		if !l.Insert(i, i) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if l.Insert(5, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := 0; i < 100; i += 2 {
		if !l.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	var keys []int
	l.Ascend(func(k, _ int) bool { keys = append(keys, k); return true })
	if len(keys) != 50 || !sort.IntsAreSorted(keys) {
		t.Fatalf("traversal: %d keys", len(keys))
	}
}

func TestLockedListConcurrent(t *testing.T) {
	l := NewList[int, int]()
	const workers, ops, keyRange = 8, 2000, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 1))
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(k, k)
				case 1:
					l.Delete(k)
				default:
					l.Contains(k)
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	l.Ascend(func(_, _ int) bool { count++; return true })
	if l.Len() != count {
		t.Fatalf("Len = %d, traversal = %d", l.Len(), count)
	}
}

func TestLockedSkipListSequential(t *testing.T) {
	l := NewSkipList[string, int](0, nil)
	words := []string{"d", "a", "c", "b"}
	for i, w := range words {
		if !l.Insert(w, i) {
			t.Fatalf("Insert(%q) failed", w)
		}
	}
	if v, ok := l.Get("c"); !ok || v != 2 {
		t.Fatalf("Get(c) = %d, %t", v, ok)
	}
	if !l.Delete("a") || l.Delete("a") {
		t.Fatal("delete wrong")
	}
	var keys []string
	l.Ascend(func(k string, _ int) bool { keys = append(keys, k); return true })
	if !sort.StringsAreSorted(keys) || len(keys) != 3 {
		t.Fatalf("traversal: %v", keys)
	}
}

func TestLockedSkipListConcurrent(t *testing.T) {
	l := NewSkipList[int, int](0, nil)
	const workers, ops, keyRange = 8, 2000, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 2))
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(k, k)
				case 1:
					l.Delete(k)
				default:
					l.Contains(k)
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	l.Ascend(func(_, _ int) bool { count++; return true })
	if l.Len() != count {
		t.Fatalf("Len = %d, traversal = %d", l.Len(), count)
	}
}

func TestLockedSkipListLockedBlocks(t *testing.T) {
	l := NewSkipList[int, int](0, nil)
	l.Insert(1, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	go l.Locked(func() {
		close(entered)
		<-release
	})
	<-entered
	// A concurrent reader must block until the holder leaves.
	got := make(chan bool, 1)
	go func() { got <- l.Contains(1) }()
	select {
	case <-got:
		t.Fatal("read completed while the write lock was held")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if !<-got {
		t.Fatal("read failed after release")
	}
}
