// Package lockbased provides mutual-exclusion baselines: a sorted linked
// list and a skip list, each guarded by a single RWMutex. They are the
// strawman the paper's introduction argues against - a delay of the lock
// holder stalls every other process - and serve as the throughput
// baselines in experiment E4.
package lockbased

import (
	"cmp"
	"sync"

	"repro/internal/seqskip"
)

// listNode is a cell of the sequential sorted list.
type listNode[K cmp.Ordered, V any] struct {
	key  K
	val  V
	next *listNode[K, V]
}

// List is a coarse-grained locked sorted linked list.
type List[K cmp.Ordered, V any] struct {
	mu   sync.RWMutex
	head *listNode[K, V] // sentinel
	size int
}

// NewList returns an empty locked list.
func NewList[K cmp.Ordered, V any]() *List[K, V] {
	return &List[K, V]{head: &listNode[K, V]{}}
}

// Len returns the number of keys.
func (l *List[K, V]) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.size
}

// findPred returns the rightmost node with key < k (the sentinel if none).
// Caller must hold the lock.
func (l *List[K, V]) findPred(k K) *listNode[K, V] {
	p := l.head
	for p.next != nil && cmp.Less(p.next.key, k) {
		p = p.next
	}
	return p
}

// Get looks up k.
func (l *List[K, V]) Get(k K) (V, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	p := l.findPred(k).next
	if p != nil && p.key == k {
		return p.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (l *List[K, V]) Contains(k K) bool {
	_, ok := l.Get(k)
	return ok
}

// Insert adds k with value v; false if already present.
func (l *List[K, V]) Insert(k K, v V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	pred := l.findPred(k)
	if pred.next != nil && pred.next.key == k {
		return false
	}
	pred.next = &listNode[K, V]{key: k, val: v, next: pred.next}
	l.size++
	return true
}

// Delete removes k; false if absent.
func (l *List[K, V]) Delete(k K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	pred := l.findPred(k)
	if pred.next == nil || pred.next.key != k {
		return false
	}
	pred.next = pred.next.next
	l.size--
	return true
}

// Ascend iterates keys in ascending order under the read lock. fn must not
// call back into the list.
func (l *List[K, V]) Ascend(fn func(k K, v V) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for p := l.head.next; p != nil; p = p.next {
		if !fn(p.key, p.val) {
			return
		}
	}
}

// SkipList is a coarse-grained locked skip list: Pugh's sequential skip
// list behind a single RWMutex.
type SkipList[K cmp.Ordered, V any] struct {
	mu sync.RWMutex
	sl *seqskip.SkipList[K, V]
}

// NewSkipList returns an empty locked skip list. rng supplies random bits
// for tower heights (nil for the default source); it is only ever called
// under the write lock.
func NewSkipList[K cmp.Ordered, V any](maxLevel int, rng func() uint64) *SkipList[K, V] {
	return &SkipList[K, V]{sl: seqskip.New[K, V](maxLevel, rng)}
}

// Len returns the number of keys.
func (l *SkipList[K, V]) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sl.Len()
}

// Get looks up k.
func (l *SkipList[K, V]) Get(k K) (V, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sl.Get(k)
}

// Contains reports whether k is present.
func (l *SkipList[K, V]) Contains(k K) bool {
	_, ok := l.Get(k)
	return ok
}

// Insert adds k with value v; false if already present.
func (l *SkipList[K, V]) Insert(k K, v V) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sl.Insert(k, v)
}

// Delete removes k; false if absent.
func (l *SkipList[K, V]) Delete(k K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sl.Delete(k)
}

// Ascend iterates keys in ascending order under the read lock. fn must not
// call back into the skip list.
func (l *SkipList[K, V]) Ascend(fn func(k K, v V) bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.sl.Ascend(fn)
}

// Locked runs fn while holding the write lock, modelling a process that
// stalls in the middle of an update (preempted, paging, crashed). It
// exists for the delay-robustness experiment (E8): with a mutual-exclusion
// implementation, such a stall blocks every other operation, which is
// precisely the failure mode the paper's lock-free design eliminates.
func (l *SkipList[K, V]) Locked(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fn()
}
