// Package adversary provides a deterministic step controller for realizing
// the paper's adversarial schedules (Section 3.1) on a real Go runtime.
//
// The data-structure implementations emit named synchronization points
// through instrument.Hooks. A Controller registers which (process, point)
// pairs must park; the test or benchmark driver then sequences the
// execution by waiting for processes to park and releasing them one step
// at a time. This reproduces schedules like "the deleter marks the last
// node right after every inserter has located its insertion position but
// before any of them performs a C&S" exactly, which is what the
// lower-bound constructions for Harris's and Valois's lists require.
package adversary

import (
	"sync"

	"repro/internal/instrument"
)

type pauseKey struct {
	pid   int
	point instrument.Point
}

// Controller coordinates processes at hook points. The zero value is not
// usable; construct with NewController.
type Controller struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pause   map[pauseKey]bool
	parked  map[int]instrument.Point
	tickets map[int]int
}

// NewController returns a controller with no pause points armed; processes
// pass through every hook until PauseAt is called.
func NewController() *Controller {
	c := &Controller{
		pause:   make(map[pauseKey]bool),
		parked:  make(map[int]instrument.Point),
		tickets: make(map[int]int),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// HooksFor returns the instrument.Hooks a process with the given default
// pid should run under. The pid argument at each hook call overrides it,
// so the same Hooks value may be shared by Procs with distinct IDs.
func (c *Controller) HooksFor() instrument.Hooks {
	return instrument.HookFunc(c.at)
}

// at implements the hook: park if (pid, point) is armed, until a ticket is
// granted.
func (c *Controller) at(p instrument.Point, pid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pause[pauseKey{pid, p}] {
		return
	}
	c.parked[pid] = p
	c.cond.Broadcast()
	for c.tickets[pid] == 0 {
		c.cond.Wait()
	}
	c.tickets[pid]--
	delete(c.parked, pid)
	c.cond.Broadcast()
}

// PauseAt arms (pid, point): the process will park every time it reaches
// the point until the pause is disarmed or a ticket releases it.
func (c *Controller) PauseAt(pid int, p instrument.Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pause[pauseKey{pid, p}] = true
}

// ClearPause disarms (pid, point). A currently parked process stays parked
// until released.
func (c *Controller) ClearPause(pid int, p instrument.Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pause, pauseKey{pid, p})
}

// ClearAllPauses disarms every pause point. Parked processes stay parked
// until released.
func (c *Controller) ClearAllPauses() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.pause)
}

// AwaitParked blocks until process pid is genuinely parked at point p: it
// is blocked there with no release ticket pending. (A process that was
// just released but has not yet resumed still has a stale parked entry;
// its nonzero ticket count distinguishes it.)
func (c *Controller) AwaitParked(pid int, p instrument.Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for !(c.parked[pid] == p && c.tickets[pid] == 0) {
		c.cond.Wait()
	}
}

// AwaitAllParked blocks until every listed process is genuinely parked at
// point p simultaneously (see AwaitParked for "genuinely").
func (c *Controller) AwaitAllParked(pids []int, p instrument.Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		all := true
		for _, pid := range pids {
			if !(c.parked[pid] == p && c.tickets[pid] == 0) {
				all = false
				break
			}
		}
		if all {
			return
		}
		c.cond.Wait()
	}
}

// Release grants one ticket to pid, letting it pass its current (or next)
// park.
func (c *Controller) Release(pid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tickets[pid]++
	c.cond.Broadcast()
}

// ReleaseAll grants one ticket to each listed process.
func (c *Controller) ReleaseAll(pids []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pid := range pids {
		c.tickets[pid]++
	}
	c.cond.Broadcast()
}

// Parked reports whether pid is currently parked, and at which point.
func (c *Controller) Parked(pid int) (instrument.Point, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.parked[pid]
	return p, ok
}
