package adversary

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestSystematicSkipListInterleavings is the skip-list counterpart of
// TestSystematicTwoOpInterleavings: every pause-point pairing of two
// racing operations on tall towers, each schedule validated structurally.
func TestSystematicSkipListInterleavings(t *testing.T) {
	tall := func() uint64 { return 0b111 } // all towers height 4
	type skipScenario struct {
		name  string
		setup func() (*core.SkipList[int, int], func(*core.Proc) bool, func(*core.Proc) bool, func(*core.SkipList[int, int]) error)
	}
	scenarios := []skipScenario{
		{
			name: "insert-vs-delete-neighbour",
			setup: func() (*core.SkipList[int, int], func(*core.Proc) bool, func(*core.Proc) bool, func(*core.SkipList[int, int]) error) {
				l := core.NewSkipList[int, int](core.WithRandomSource(tall))
				for k := 0; k < 50; k += 10 {
					l.Insert(nil, k, k)
				}
				ins := func(p *core.Proc) bool { _, ok := l.Insert(p, 25, 25); return ok }
				del := func(p *core.Proc) bool { _, ok := l.Delete(p, 20); return ok }
				check := func(l *core.SkipList[int, int]) error {
					if _, ok := l.Get(nil, 25); !ok {
						return fmt.Errorf("inserted key 25 missing")
					}
					if _, ok := l.Get(nil, 20); ok {
						return fmt.Errorf("deleted key 20 present")
					}
					return l.CheckStructure()
				}
				return l, ins, del, check
			},
		},
		{
			name: "delete-vs-reinsert-same-key",
			setup: func() (*core.SkipList[int, int], func(*core.Proc) bool, func(*core.Proc) bool, func(*core.SkipList[int, int]) error) {
				l := core.NewSkipList[int, int](core.WithRandomSource(tall))
				for k := 0; k < 50; k += 10 {
					l.Insert(nil, k, k)
				}
				del := func(p *core.Proc) bool { _, ok := l.Delete(p, 20); return ok }
				ins := func(p *core.Proc) bool { _, ok := l.Insert(p, 20, 99); return ok }
				check := func(l *core.SkipList[int, int]) error {
					// Either order is legal; the structure must be sound
					// and the key present iff the insert linearized last.
					return l.CheckStructure()
				}
				return l, del, ins, check
			},
		},
	}
	for _, sc := range scenarios {
		for _, p1 := range pausePoints {
			for _, p2 := range pausePoints {
				for _, firstRelease := range []int{1, 2} {
					name := fmt.Sprintf("%s/%v-%v-rel%d", sc.name, p1, p2, firstRelease)
					t.Run(name, func(t *testing.T) {
						l, op1, op2, check := sc.setup()
						ctl := NewController()
						ctl.PauseAt(1, p1)
						ctl.PauseAt(2, p2)
						results := make(chan int, 2)
						go func() { op1(&core.Proc{ID: 1, Hooks: ctl.HooksFor()}); results <- 1 }()
						waitParkedOrDone(ctl, 1, p1, results)
						go func() { op2(&core.Proc{ID: 2, Hooks: ctl.HooksFor()}); results <- 2 }()
						waitParkedOrDone(ctl, 2, p2, results)
						ctl.ClearAllPauses()
						if firstRelease == 1 {
							ctl.Release(1)
							ctl.Release(2)
						} else {
							ctl.Release(2)
							ctl.Release(1)
						}
						drain(results)
						if err := check(l); err != nil {
							t.Fatalf("schedule left a bad state: %v", err)
						}
					})
				}
			}
		}
	}
}
