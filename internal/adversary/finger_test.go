package adversary

import (
	"testing"

	"repro/internal/core"
)

// These schedules pin the finger-validity invariant stated in
// internal/core/finger.go and DESIGN.md: when the node a finger remembers
// is deleted - at any stage of the three-step deletion - the next
// operation through the finger recovers over the deletion's backlinks. It
// must count as a finger hit (no fallback to the head or head tower), and
// its search must stay local: a handful of node steps, not a full pass.

// oneRng forces every skip-list tower to height 1 so the deleter parks at
// exactly one physical-deletion C&S.
func oneRng() uint64 { return 0 }

// TestFingerSurvivesFullDeletion deletes the finger's remembered node
// completely - flag, mark, physical unlink all done - between operations.
func TestFingerSurvivesFullDeletion(t *testing.T) {
	l := core.NewList[int, int]()
	for i := 0; i < 32; i++ {
		l.Insert(nil, i, i)
	}
	f := l.NewFinger()
	if _, ok := f.Get(nil, 10); !ok {
		t.Fatal("Get(10) failed")
	}
	if _, ok := l.Delete(nil, 10); !ok {
		t.Fatal("Delete(10) failed")
	}
	st := &core.OpStats{}
	v, ok := f.Get(&core.Proc{Stats: st}, 12)
	if !ok || v != 12 {
		t.Fatalf("Get(12) = %d, %t; want 12, true", v, ok)
	}
	if st.FingerHits != 1 || st.FingerMisses != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0 (recovery, not head fallback)",
			st.FingerHits, st.FingerMisses)
	}
	if st.BacklinkTraversals == 0 {
		t.Fatal("recovery did not traverse backlinks")
	}
	if st.CurrUpdates > 5 {
		t.Fatalf("recovery cost %d curr updates; a head restart would, a backlink recovery must not",
			st.CurrUpdates)
	}
}

// TestFingerSurvivesDeletionParkedBeforeUnlink parks the deleter right
// before its physical-deletion C&S, so the finger's node is flagged-at-
// the-predecessor and marked but still linked when the finger operates.
// The finger must walk the fresh backlink, help the stalled deletion past
// it, and complete - the paper's helping rule applied to a finger.
func TestFingerSurvivesDeletionParkedBeforeUnlink(t *testing.T) {
	l := core.NewList[int, int]()
	for i := 0; i < 32; i++ {
		l.Insert(nil, i, i)
	}
	f := l.NewFinger()
	if _, ok := f.Get(nil, 10); !ok {
		t.Fatal("Get(10) failed")
	}

	c := NewController()
	c.PauseAt(1, core.PtBeforePhysicalCAS)
	deleter := &core.Proc{ID: 1, Hooks: c.HooksFor()}
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(deleter, 10)
		res <- ok
	}()
	c.AwaitParked(1, core.PtBeforePhysicalCAS)

	// Node 10 is marked with its backlink set, still physically present.
	st := &core.OpStats{}
	v, ok := f.Get(&core.Proc{Stats: st}, 12)
	if !ok || v != 12 {
		t.Fatalf("Get(12) = %d, %t; want 12, true", v, ok)
	}
	if st.FingerHits != 1 || st.FingerMisses != 0 {
		t.Fatalf("hits/misses = %d/%d, want 1/0", st.FingerHits, st.FingerMisses)
	}
	if st.BacklinkTraversals == 0 {
		t.Fatal("finger did not traverse the marked node's backlink")
	}
	if st.HelpCalls == 0 {
		t.Fatal("finger search did not help the stalled physical deletion")
	}

	c.ClearAllPauses()
	c.Release(1)
	if !<-res {
		t.Fatal("stalled deleter did not report success")
	}
	if _, ok := l.Get(nil, 10); ok {
		t.Fatal("key 10 still present")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFingerFallsBackOnlyForSmallerKeys pins the fallback contract: after
// its node is deleted, a finger falls back to the head only when the
// target key orders below the recovered position, never because of the
// deletion itself.
func TestFingerFallsBackOnlyForSmallerKeys(t *testing.T) {
	l := core.NewList[int, int]()
	for i := 0; i < 32; i++ {
		l.Insert(nil, i, i)
	}
	f := l.NewFinger()
	f.Get(nil, 10)
	l.Delete(nil, 10)
	st := &core.OpStats{}
	p := &core.Proc{Stats: st}
	// Backlink recovery lands on node 9; key 9 itself is >= that, a hit.
	if v, ok := f.Get(p, 9); !ok || v != 9 {
		t.Fatalf("Get(9) = %d, %t; want 9, true", v, ok)
	}
	if st.FingerHits != 1 || st.FingerMisses != 0 {
		t.Fatalf("hits/misses after recovery to 9 = %d/%d, want 1/0", st.FingerHits, st.FingerMisses)
	}
	// Key 5 orders below the finger: the one legitimate head fallback.
	if v, ok := f.Get(p, 5); !ok || v != 5 {
		t.Fatalf("Get(5) = %d, %t; want 5, true", v, ok)
	}
	if st.FingerMisses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (the backward jump)", st.FingerMisses)
	}
}

// TestSkipFingerSurvivesDeletionParkedBeforeUnlink is the skip-list twin
// of the parked-deleter schedule: the deleter stalls before the root
// node's physical unlink, and a finger whose remembered tower is that
// root must recover via the root's backlink on level 1.
func TestSkipFingerSurvivesDeletionParkedBeforeUnlink(t *testing.T) {
	l := core.NewSkipList[int, int](core.WithRandomSource(oneRng))
	for i := 0; i < 32; i++ {
		l.Insert(nil, i, i)
	}
	f := l.NewFinger()
	if _, ok := f.Get(nil, 10); !ok {
		t.Fatal("Get(10) failed")
	}

	c := NewController()
	c.PauseAt(1, core.PtBeforePhysicalCAS)
	deleter := &core.Proc{ID: 1, Hooks: c.HooksFor()}
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(deleter, 10)
		res <- ok
	}()
	c.AwaitParked(1, core.PtBeforePhysicalCAS)

	st := &core.OpStats{}
	v, ok := f.Get(&core.Proc{Stats: st}, 12)
	if !ok || v != 12 {
		t.Fatalf("Get(12) = %d, %t; want 12, true", v, ok)
	}
	if st.FingerMisses != 0 {
		t.Fatalf("finger fell back to the head tower (%d misses)", st.FingerMisses)
	}
	if st.BacklinkTraversals == 0 {
		t.Fatal("finger did not traverse the marked root's backlink")
	}

	c.ClearAllPauses()
	c.Release(1)
	if !<-res {
		t.Fatal("stalled deleter did not report success")
	}
	if _, ok := l.Get(nil, 10); ok {
		t.Fatal("key 10 still present")
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipFingerSurvivesFullDeletion deletes the remembered tower
// completely (random heights, so the sweep also runs) and checks the next
// finger operation recovers without a head-tower fallback.
func TestSkipFingerSurvivesFullDeletion(t *testing.T) {
	l := core.NewSkipList[int, int]()
	for i := 0; i < 64; i++ {
		l.Insert(nil, i, i)
	}
	f := l.NewFinger()
	for k := 10; k <= 20; k++ {
		if _, ok := f.Get(nil, k); !ok {
			t.Fatalf("Get(%d) failed", k)
		}
	}
	for k := 10; k <= 20; k++ {
		if _, ok := l.Delete(nil, k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	st := &core.OpStats{}
	v, ok := f.Get(&core.Proc{Stats: st}, 25)
	if !ok || v != 25 {
		t.Fatalf("Get(25) = %d, %t; want 25, true", v, ok)
	}
	if st.FingerMisses != 0 {
		t.Fatalf("finger fell back to the head tower (%d misses)", st.FingerMisses)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
