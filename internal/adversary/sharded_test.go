package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sharded"
)

// These schedules aim an adversary at the seam the range-sharded map adds:
// a key sitting exactly on a splitter, deleted while a batch that contains
// it is in flight. The batch must stay per-element linearizable — the
// element for the deleted key fails cleanly, every other element succeeds,
// and both shards stay structurally valid.

// TestShardedBoundaryKeyDeletedMidDeleteBatch parks a DeleteBatch right
// before it flags the predecessor of the boundary key 16 (the first key of
// shard 1), lets the adversary delete 16 completely, then releases the
// batch: its flag C&S must fail, the recovery re-search must discover the
// key gone, and the element must report false while the rest of the batch
// completes.
func TestShardedBoundaryKeyDeletedMidDeleteBatch(t *testing.T) {
	m := sharded.New[int, int]([]int{16}, core.WithRandomSource(oneRng))
	for k := 10; k <= 22; k++ {
		m.Insert(nil, k, k)
	}

	c := NewController()
	c.PauseAt(1, core.PtBeforeFlagCAS)
	st := &core.OpStats{}
	batcher := &core.Proc{ID: 1, Stats: st, Hooks: c.HooksFor()}

	keys := []int{18, 14, 16, 17, 15} // sorts to [14 15 16 17 18]
	deleted := make([]bool, len(keys))
	res := make(chan int, 1)
	go func() { res <- m.DeleteBatch(batcher, keys, deleted) }()

	// Height-1 towers: each present element fires PtBeforeFlagCAS exactly
	// once. Let the shard-0 elements 14 and 15 delete normally.
	for i := 0; i < 2; i++ {
		c.AwaitParked(1, core.PtBeforeFlagCAS)
		c.Release(1)
	}
	// The batch has searched shard 1, located 16, and parked before the
	// flag C&S. Delete the boundary key out from under it.
	c.AwaitParked(1, core.PtBeforeFlagCAS)
	if _, ok := m.Delete(nil, 16); !ok {
		t.Fatal("adversary delete of boundary key 16 failed")
	}
	c.Release(1)
	// Elements 17 and 18 proceed normally.
	for i := 0; i < 2; i++ {
		c.AwaitParked(1, core.PtBeforeFlagCAS)
		c.Release(1)
	}

	if n := <-res; n != 4 {
		t.Fatalf("DeleteBatch = %d, want 4 (boundary element lost its race)", n)
	}
	want := []bool{true, true, false, true, true}
	for i, w := range want {
		if deleted[i] != w {
			t.Fatalf("deleted = %v, want %v (sorted keys %v)", deleted, want, keys)
		}
	}
	if st.CASAttempts <= st.CASSuccesses {
		t.Fatalf("schedule forced no failed C&S on the batch: %+v", st)
	}
	if got := m.Len(); got != 13-5 {
		t.Fatalf("Len = %d, want %d", got, 13-5)
	}
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedBoundaryKeyDeletedDuringGetBatch deletes the boundary key
// from inside the batch's own first search (an inline hook, the
// finger_test idiom): the deletion happens in shard 1 while the batch is
// still working shard 0, so when the batch's sub-run reaches shard 1 the
// key is deterministically gone.
func TestShardedBoundaryKeyDeletedDuringGetBatch(t *testing.T) {
	m := sharded.New[int, int]([]int{16}, core.WithRandomSource(oneRng))
	for k := 10; k <= 22; k++ {
		m.Insert(nil, k, k)
	}
	fired := false
	p := &core.Proc{Hooks: core.HookFunc(func(pt core.Point, pid int) {
		if pt == core.PtSearchDone && !fired {
			fired = true
			if _, ok := m.Delete(nil, 16); !ok {
				t.Errorf("hook delete of boundary key 16 failed")
			}
		}
	})}

	keys := []int{16, 18, 14, 17, 15}
	vals := make([]int, len(keys))
	found := make([]bool, len(keys))
	if n := m.GetBatch(p, keys, vals, found); n != 4 {
		t.Fatalf("GetBatch = %d, want 4", n)
	}
	want := []bool{true, true, false, true, true}
	for i, w := range want {
		if found[i] != w {
			t.Fatalf("found = %v, want %v (sorted keys %v)", found, want, keys)
		}
		if w && vals[i] != keys[i] {
			t.Fatalf("vals[%d] = %d, want %d", i, vals[i], keys[i])
		}
	}
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
