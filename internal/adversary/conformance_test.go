package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
)

// TestAdjacentDeletionsHelpCascade builds the trickiest deletion
// interleaving: deleter D1 is deleting C and has flagged its predecessor
// B; deleter D2 then deletes B. To mark B, D2's TryMark finds B flagged
// and must first help D1's deletion of C to completion (TryMark lines 4-5,
// preserving INV5: no node both marked and flagged). Both deletions must
// report success.
func TestAdjacentDeletionsHelpCascade(t *testing.T) {
	l := core.NewList[int, string]()
	l.Insert(nil, 1, "A")
	l.Insert(nil, 2, "B")
	l.Insert(nil, 3, "C")

	ctl := NewController()
	hooks := ctl.HooksFor()

	// D1: delete C; park after flagging B, before marking C.
	ctl.PauseAt(1, instrument.PtBeforeMarkCAS)
	d1 := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&core.Proc{ID: 1, Hooks: hooks}, 3)
		d1 <- ok
	}()
	ctl.AwaitParked(1, instrument.PtBeforeMarkCAS)

	// D2: delete B. It must flag A, then - finding B flagged for C's
	// deletion - help finish C before marking B.
	d2 := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&core.Proc{ID: 2}, 2)
		d2 <- ok
	}()
	if !<-d2 {
		t.Fatal("D2 failed to delete B")
	}
	// D2's helping already removed C; release D1, which must still report
	// success (it placed C's flag).
	ctl.ClearAllPauses()
	ctl.Release(1)
	if !<-d1 {
		t.Fatal("D1 (the original deleter of C) did not report success")
	}
	for _, k := range []int{2, 3} {
		if _, ok := l.Get(nil, k); ok {
			t.Fatalf("key %d survived", k)
		}
	}
	if _, ok := l.Get(nil, 1); !ok {
		t.Fatal("key 1 lost")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateInsertRace reproduces Insert lines 19-22: an inserter that
// loses its C&S to a concurrent insertion of the same key must detect the
// duplicate on re-search and report DUPLICATE_KEY.
func TestDuplicateInsertRace(t *testing.T) {
	l := core.NewList[int, int]()
	l.Insert(nil, 1, 1)
	l.Insert(nil, 10, 10)

	ctl := NewController()
	ctl.PauseAt(5, instrument.PtBeforeInsertCAS)
	racer := &core.Proc{ID: 5, Hooks: ctl.HooksFor()}
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(racer, 5, 500)
		res <- ok
	}()
	ctl.AwaitParked(5, instrument.PtBeforeInsertCAS)

	// A faster inserter takes the same key.
	if _, ok := l.Insert(nil, 5, 555); !ok {
		t.Fatal("fast insert failed")
	}
	ctl.ClearAllPauses()
	ctl.Release(5)
	if ok := <-res; ok {
		t.Fatal("slow insert claimed success over an existing key")
	}
	if v, _ := l.Get(nil, 5); v != 555 {
		t.Fatalf("value = %d, want the fast inserter's 555", v)
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertRecoversAcrossManyDeletions parks an inserter and deletes a
// long run of its predecessors; recovery must walk backlinks (never
// restarting from the head) and complete.
func TestInsertRecoversAcrossManyDeletions(t *testing.T) {
	l := core.NewList[int, int]()
	for k := 0; k < 40; k++ {
		l.Insert(nil, k, k)
	}
	ctl := NewController()
	ctl.PauseAt(9, instrument.PtBeforeInsertCAS)
	st := &core.OpStats{}
	ins := &core.Proc{ID: 9, Hooks: ctl.HooksFor(), Stats: st}
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(ins, 100, 100) // prev = node 39
		res <- ok
	}()
	ctl.AwaitParked(9, instrument.PtBeforeInsertCAS)
	// Delete the inserter's predecessor and a long run before it.
	for k := 39; k >= 10; k-- {
		if _, ok := l.Delete(nil, k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	ctl.ClearAllPauses()
	ctl.Release(9)
	if !<-res {
		t.Fatal("insert did not recover")
	}
	if _, ok := l.Get(nil, 100); !ok {
		t.Fatal("key 100 missing")
	}
	if st.BacklinkTraversals == 0 {
		t.Fatal("recovery did not use backlinks")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListInsertDuplicateRace is the duplicate race on the skip list:
// the slow inserter's root-level C&S loses and must return failure.
func TestSkipListInsertDuplicateRace(t *testing.T) {
	l := core.NewSkipList[int, int]()
	l.Insert(nil, 1, 1)
	l.Insert(nil, 10, 10)

	ctl := NewController()
	ctl.PauseAt(6, instrument.PtBeforeInsertCAS)
	racer := &core.Proc{ID: 6, Hooks: ctl.HooksFor()}
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(racer, 5, 500)
		res <- ok
	}()
	ctl.AwaitParked(6, instrument.PtBeforeInsertCAS)
	if _, ok := l.Insert(nil, 5, 555); !ok {
		t.Fatal("fast insert failed")
	}
	ctl.ClearAllPauses()
	ctl.Release(6)
	if ok := <-res; ok {
		t.Fatal("slow skip-list insert claimed success over an existing key")
	}
	if v, _ := l.Get(nil, 5); v != 555 {
		t.Fatalf("value = %d", v)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
