package adversary

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
)

// TestSystematicThreeWayDeleteRace freezes three deleters of the same key
// at every combination of pause points and releases them in every order
// (4^3 point choices x 6 release orders = 384 deterministic schedules).
// Exactly one deletion must succeed and the list must end consistent.
func TestSystematicThreeWayDeleteRace(t *testing.T) {
	orders := [][3]int{{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}}
	for _, p1 := range pausePoints {
		for _, p2 := range pausePoints {
			for _, p3 := range pausePoints {
				for _, order := range orders {
					name := fmt.Sprintf("%v-%v-%v/rel%v", p1, p2, p3, order)
					t.Run(name, func(t *testing.T) {
						runThreeWay(t, [3]instrument.Point{p1, p2, p3}, order)
					})
				}
			}
		}
	}
}

func runThreeWay(t *testing.T, points [3]instrument.Point, order [3]int) {
	l := core.NewList[int, int]()
	for k := 0; k < 50; k += 10 {
		l.Insert(nil, k, k)
	}
	ctl := NewController()
	results := make(chan int, 3)
	wins := make([]bool, 4)
	for i := 0; i < 3; i++ {
		pid := i + 1
		ctl.PauseAt(pid, points[i])
		go func(pid int) {
			_, ok := l.Delete(&core.Proc{ID: pid, Hooks: ctl.HooksFor()}, 20)
			wins[pid] = ok
			results <- pid
		}(pid)
		waitParkedOrDone3(ctl, pid, points[i], results)
	}
	ctl.ClearAllPauses()
	for _, pid := range order {
		ctl.Release(pid)
	}
	for len(finished) < 3 {
		select {
		case r := <-results:
			finished = append(finished, r)
		default:
			runtime.Gosched()
		}
	}
	finished = finished[:0]

	successes := 0
	for _, w := range wins {
		if w {
			successes++
		}
	}
	if successes != 1 {
		t.Fatalf("%d deleters claimed success, want exactly 1", successes)
	}
	if _, ok := l.Get(nil, 20); ok {
		t.Fatal("key 20 survived")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

var finished []int

func waitParkedOrDone3(ctl *Controller, pid int, p instrument.Point, results chan int) {
	for {
		if pt, ok := ctl.Parked(pid); ok && pt == p {
			return
		}
		select {
		case r := <-results:
			finished = append(finished, r)
			if r == pid {
				return
			}
		default:
			runtime.Gosched()
		}
	}
}
