package adversary

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
)

func TestControllerParkAndRelease(t *testing.T) {
	c := NewController()
	c.PauseAt(1, instrument.PtBeforeInsertCAS)
	h := c.HooksFor()

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.At(instrument.PtSearchDone, 1)      // not armed: passes through
		h.At(instrument.PtBeforeInsertCAS, 1) // armed: parks
	}()

	c.AwaitParked(1, instrument.PtBeforeInsertCAS)
	if p, ok := c.Parked(1); !ok || p != instrument.PtBeforeInsertCAS {
		t.Fatalf("Parked = %v, %t", p, ok)
	}
	select {
	case <-done:
		t.Fatal("process passed an armed point without a ticket")
	case <-time.After(10 * time.Millisecond):
	}
	c.Release(1)
	<-done
	if _, ok := c.Parked(1); ok {
		t.Fatal("process still recorded as parked")
	}
}

func TestControllerRearm(t *testing.T) {
	c := NewController()
	c.PauseAt(2, instrument.PtRestart)
	h := c.HooksFor()
	rounds := 3
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			h.At(instrument.PtRestart, 2)
		}
	}()
	for i := 0; i < rounds; i++ {
		c.AwaitParked(2, instrument.PtRestart)
		c.Release(2)
	}
	<-done
}

func TestControllerAwaitAllParked(t *testing.T) {
	c := NewController()
	pids := []int{1, 2, 3}
	for _, pid := range pids {
		c.PauseAt(pid, instrument.PtSearchDone)
	}
	h := c.HooksFor()
	var wg sync.WaitGroup
	for _, pid := range pids {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			h.At(instrument.PtSearchDone, pid)
		}(pid)
	}
	c.AwaitAllParked(pids, instrument.PtSearchDone)
	c.ReleaseAll(pids)
	wg.Wait()
}

// TestControllerDrivesCoreList checks end-to-end integration: pause an
// inserter right before its C&S, delete its predecessor, and observe the
// insert recover and complete.
func TestControllerDrivesCoreList(t *testing.T) {
	l := core.NewList[int, int]()
	for i := 0; i < 10; i++ {
		l.Insert(nil, i, i)
	}
	c := NewController()
	c.PauseAt(1, core.PtBeforeInsertCAS)
	inserter := &core.Proc{ID: 1, Hooks: c.HooksFor()}

	done := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(inserter, 100, 100) // prev will be node 9
		done <- ok
	}()
	c.AwaitParked(1, core.PtBeforeInsertCAS)
	// Delete the node the inserter is about to C&S.
	if _, ok := l.Delete(nil, 9); !ok {
		t.Fatal("delete failed")
	}
	c.ClearAllPauses()
	c.Release(1)
	if !<-done {
		t.Fatal("insert did not recover and complete")
	}
	if _, ok := l.Get(nil, 100); !ok {
		t.Fatal("key 100 missing after recovery")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestControllerStalledDeleterDoesNotBlock parks a deleter between its
// flagging C&S and marking C&S; other processes must still make progress
// by helping (lock-freedom, Section 3.1's helping rule).
func TestControllerStalledDeleterDoesNotBlock(t *testing.T) {
	l := core.NewList[int, int]()
	for i := 0; i < 100; i += 10 {
		l.Insert(nil, i, i)
	}
	c := NewController()
	c.PauseAt(7, core.PtBeforeMarkCAS)
	deleter := &core.Proc{ID: 7, Hooks: c.HooksFor()}
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(deleter, 50)
		res <- ok
	}()
	c.AwaitParked(7, core.PtBeforeMarkCAS)
	// Node 40 (the predecessor of 50) is now flagged. An insert between
	// 40 and 50 cannot perform its C&S while the flag stands, so it must
	// help complete the stalled deletion and then succeed.
	ins := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(nil, 45, 45)
		ins <- ok
	}()
	if !<-ins {
		t.Fatal("insert blocked by stalled deleter")
	}
	// The helper should have completed the deletion of 50.
	if _, ok := l.Get(nil, 50); ok {
		t.Fatal("key 50 still present; helping did not complete the deletion")
	}
	if _, ok := l.Get(nil, 45); !ok {
		t.Fatal("key 45 missing")
	}
	// Release the stalled deleter; it must still report success (it
	// placed the flag, so the deletion is attributed to it).
	c.ClearAllPauses()
	c.Release(7)
	if !<-res {
		t.Fatal("stalled deleter did not report success")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
