package adversary

import (
	"fmt"
	"testing"

	"repro/internal/harris"
	"repro/internal/instrument"
	"repro/internal/noflag"
)

// baselinePoints: the baselines have no flagging C&S.
var baselinePoints = []instrument.Point{
	instrument.PtBeforeInsertCAS,
	instrument.PtBeforeMarkCAS,
	instrument.PtBeforePhysicalCAS,
}

// TestSystematicHarrisInterleavings runs the two-op pause grid against
// Harris's list: insert-vs-delete of neighbouring keys and a same-key
// delete race, every pause pairing and release order.
func TestSystematicHarrisInterleavings(t *testing.T) {
	for _, p1 := range baselinePoints {
		for _, p2 := range baselinePoints {
			for _, firstRelease := range []int{1, 2} {
				t.Run(fmt.Sprintf("ins-del/%v-%v-rel%d", p1, p2, firstRelease), func(t *testing.T) {
					l := harris.NewList[int, int]()
					for k := 0; k < 50; k += 10 {
						l.Insert(nil, k, k)
					}
					op1 := func(p *instrument.Proc) { l.Insert(p, 25, 25) }
					op2 := func(p *instrument.Proc) { l.Delete(p, 20) }
					runBaselineSchedule(t, op1, op2, p1, p2, firstRelease)
					if _, ok := l.Get(nil, 25); !ok {
						t.Fatal("inserted key 25 missing")
					}
					if _, ok := l.Get(nil, 20); ok {
						t.Fatal("deleted key 20 present")
					}
					if err := l.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				})
				t.Run(fmt.Sprintf("del-del/%v-%v-rel%d", p1, p2, firstRelease), func(t *testing.T) {
					l := harris.NewList[int, int]()
					for k := 0; k < 50; k += 10 {
						l.Insert(nil, k, k)
					}
					wins := make([]bool, 3)
					op1 := func(p *instrument.Proc) { _, wins[1] = l.Delete(p, 20) }
					op2 := func(p *instrument.Proc) { _, wins[2] = l.Delete(p, 20) }
					runBaselineSchedule(t, op1, op2, p1, p2, firstRelease)
					if wins[1] == wins[2] {
						t.Fatalf("same-key delete race: wins = %v, want exactly one", wins[1:])
					}
					if err := l.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestSystematicNoflagInterleavings runs the same grid against the no-flag
// ablation: correctness must hold even though chains may grow.
func TestSystematicNoflagInterleavings(t *testing.T) {
	for _, p1 := range baselinePoints {
		for _, p2 := range baselinePoints {
			for _, firstRelease := range []int{1, 2} {
				t.Run(fmt.Sprintf("ins-del/%v-%v-rel%d", p1, p2, firstRelease), func(t *testing.T) {
					l := noflag.NewList[int, int]()
					for k := 0; k < 50; k += 10 {
						l.Insert(nil, k, k)
					}
					op1 := func(p *instrument.Proc) { l.Insert(p, 25, 25) }
					op2 := func(p *instrument.Proc) { l.Delete(p, 20) }
					runBaselineSchedule(t, op1, op2, p1, p2, firstRelease)
					if _, ok := l.Get(nil, 25); !ok {
						t.Fatal("inserted key 25 missing")
					}
					if _, ok := l.Get(nil, 20); ok {
						t.Fatal("deleted key 20 present")
					}
				})
			}
		}
	}
}

// runBaselineSchedule is the shared two-op choreography over
// instrument.Proc operations.
func runBaselineSchedule(t *testing.T, op1, op2 func(*instrument.Proc),
	p1, p2 instrument.Point, firstRelease int) {
	t.Helper()
	ctl := NewController()
	ctl.PauseAt(1, p1)
	ctl.PauseAt(2, p2)
	results := make(chan int, 2)
	go func() { op1(&instrument.Proc{ID: 1, Hooks: ctl.HooksFor()}); results <- 1 }()
	waitParkedOrDone(ctl, 1, p1, results)
	go func() { op2(&instrument.Proc{ID: 2, Hooks: ctl.HooksFor()}); results <- 2 }()
	waitParkedOrDone(ctl, 2, p2, results)
	ctl.ClearAllPauses()
	if firstRelease == 1 {
		ctl.Release(1)
		ctl.Release(2)
	} else {
		ctl.Release(2)
		ctl.Release(1)
	}
	drain(results)
}
