package adversary

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
)

// pausePoints are the C&S sites an operation can be frozen at.
var pausePoints = []instrument.Point{
	instrument.PtBeforeInsertCAS,
	instrument.PtBeforeFlagCAS,
	instrument.PtBeforeMarkCAS,
	instrument.PtBeforePhysicalCAS,
}

// scenario builds a fresh list and returns the two operations to race.
type scenario struct {
	name  string
	setup func() (*core.List[int, int], func(p *core.Proc) bool, func(p *core.Proc) bool, func(*core.List[int, int]) error)
}

// TestSystematicTwoOpInterleavings enumerates, for several two-operation
// scenarios, every combination of (pause point for op1, pause point for
// op2, which op is released first) and checks that each deterministic
// schedule ends in a state satisfying the invariants with a sane outcome.
// This is a lightweight model-checking pass over the C&S sites.
func TestSystematicTwoOpInterleavings(t *testing.T) {
	scenarios := []scenario{
		{
			name: "insert-vs-delete-neighbour",
			setup: func() (*core.List[int, int], func(*core.Proc) bool, func(*core.Proc) bool, func(*core.List[int, int]) error) {
				l := core.NewList[int, int]()
				for k := 0; k < 50; k += 10 {
					l.Insert(nil, k, k)
				}
				ins := func(p *core.Proc) bool { _, ok := l.Insert(p, 25, 25); return ok }
				del := func(p *core.Proc) bool { _, ok := l.Delete(p, 20); return ok }
				check := func(l *core.List[int, int]) error {
					if _, ok := l.Get(nil, 25); !ok {
						return fmt.Errorf("inserted key 25 missing")
					}
					if _, ok := l.Get(nil, 20); ok {
						return fmt.Errorf("deleted key 20 present")
					}
					return l.CheckInvariants()
				}
				return l, ins, del, check
			},
		},
		{
			name: "delete-vs-delete-adjacent",
			setup: func() (*core.List[int, int], func(*core.Proc) bool, func(*core.Proc) bool, func(*core.List[int, int]) error) {
				l := core.NewList[int, int]()
				for k := 0; k < 50; k += 10 {
					l.Insert(nil, k, k)
				}
				d1 := func(p *core.Proc) bool { _, ok := l.Delete(p, 20); return ok }
				d2 := func(p *core.Proc) bool { _, ok := l.Delete(p, 30); return ok }
				check := func(l *core.List[int, int]) error {
					for _, k := range []int{20, 30} {
						if _, ok := l.Get(nil, k); ok {
							return fmt.Errorf("deleted key %d present", k)
						}
					}
					return l.CheckInvariants()
				}
				return l, d1, d2, check
			},
		},
		{
			name: "delete-race-same-key",
			setup: func() (*core.List[int, int], func(*core.Proc) bool, func(*core.Proc) bool, func(*core.List[int, int]) error) {
				l := core.NewList[int, int]()
				for k := 0; k < 50; k += 10 {
					l.Insert(nil, k, k)
				}
				d1 := func(p *core.Proc) bool { _, ok := l.Delete(p, 20); return ok }
				d2 := func(p *core.Proc) bool { _, ok := l.Delete(p, 20); return ok }
				check := func(l *core.List[int, int]) error {
					if _, ok := l.Get(nil, 20); ok {
						return fmt.Errorf("key 20 survived two deletes")
					}
					return l.CheckInvariants()
				}
				return l, d1, d2, check
			},
		},
		{
			name: "insert-race-same-key",
			setup: func() (*core.List[int, int], func(*core.Proc) bool, func(*core.Proc) bool, func(*core.List[int, int]) error) {
				l := core.NewList[int, int]()
				for k := 0; k < 50; k += 10 {
					l.Insert(nil, k, k)
				}
				i1 := func(p *core.Proc) bool { _, ok := l.Insert(p, 25, 1); return ok }
				i2 := func(p *core.Proc) bool { _, ok := l.Insert(p, 25, 2); return ok }
				check := func(l *core.List[int, int]) error {
					if _, ok := l.Get(nil, 25); !ok {
						return fmt.Errorf("key 25 missing after two inserts")
					}
					return l.CheckInvariants()
				}
				return l, i1, i2, check
			},
		},
	}

	for _, sc := range scenarios {
		for _, p1 := range pausePoints {
			for _, p2 := range pausePoints {
				for _, firstRelease := range []int{1, 2} {
					name := fmt.Sprintf("%s/%v-%v-rel%d", sc.name, p1, p2, firstRelease)
					t.Run(name, func(t *testing.T) {
						runSchedule(t, sc, p1, p2, firstRelease)
					})
				}
			}
		}
	}
}

// runSchedule freezes op1 at point p1 and op2 at point p2 (first
// occurrence each; operations that never reach their point just run to
// completion), then releases them in the given order and validates the
// final state.
func runSchedule(t *testing.T, sc scenario, p1, p2 instrument.Point, firstRelease int) {
	l, op1, op2, check := sc.setup()
	ctl := NewController()
	ctl.PauseAt(1, p1)
	ctl.PauseAt(2, p2)
	results := make(chan int, 2) // which op finished
	ok1 := false
	ok2 := false
	go func() { ok1 = op1(&core.Proc{ID: 1, Hooks: ctl.HooksFor()}); results <- 1 }()

	// Wait until op1 is parked (or finished, if it never hits p1).
	waitParkedOrDone(ctl, 1, p1, results)
	go func() { ok2 = op2(&core.Proc{ID: 2, Hooks: ctl.HooksFor()}); results <- 2 }()
	waitParkedOrDone(ctl, 2, p2, results)

	// Release in the requested order; pauses are one-shot for this test.
	ctl.ClearAllPauses()
	if firstRelease == 1 {
		ctl.Release(1)
		ctl.Release(2)
	} else {
		ctl.Release(2)
		ctl.Release(1)
	}
	drain(results)
	_ = ok1
	_ = ok2
	if err := check(l); err != nil {
		t.Fatalf("schedule left a bad state: %v", err)
	}
}

// waitParkedOrDone returns once pid is parked at p or its op completed.
var drained []int

func waitParkedOrDone(ctl *Controller, pid int, p instrument.Point, results chan int) {
	for {
		if pt, ok := ctl.Parked(pid); ok && pt == p {
			return
		}
		select {
		case r := <-results:
			drained = append(drained, r)
			if r == pid {
				return
			}
		default:
			runtime.Gosched() // single-CPU: let the workers run
		}
	}
}

func drain(results chan int) {
	need := 2 - len(drained)
	for i := 0; i < need; i++ {
		<-results
	}
	drained = drained[:0]
}
