package adversary

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
)

// These schedules pin a delayed C&S across a full delete -> retire ->
// recycle -> re-insert cycle with EBR-backed node recycling enabled
// (internal/core/recycle.go). The property under test is the one DESIGN.md
// §2.1 re-proves for recycling: a node's memory is never reused while any
// operation from its retirement epoch is still pinned, so the interned-
// record ABA argument (identity ≡ structure) survives physical reuse. Run
// under -race via scripts/check.sh.

// retireRecorder collects retired node pointers; a mutex keeps it sound
// when a released helper fires the hook from another goroutine.
type retireRecorder struct {
	mu   sync.Mutex
	seen map[any]bool
}

func newRetireRecorder() *retireRecorder { return &retireRecorder{seen: map[any]bool{}} }

func (r *retireRecorder) hook(n any) {
	r.mu.Lock()
	r.seen[n] = true
	r.mu.Unlock()
}

func (r *retireRecorder) has(n any) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[n]
}

// reclaim pushes the domain hard enough to drain anything drainable.
func reclaim[L interface{ ForceReclaim(*core.Proc) }](l L) {
	for i := 0; i < 6; i++ {
		l.ForceReclaim(nil)
	}
}

// TestRecycleDelayedInsertCAS: pid 1 is frozen before its insert C&S; a
// full insert(25)+delete(25) cycle retires a node while pid 1's pin is
// held. The node must NOT be recycled while pid 1 is parked (its epoch is
// pinned); once pid 1 completes and the domain quiesces, the SAME pointer
// must come back from the free list and serve a fresh insert correctly.
func TestRecycleDelayedInsertCAS(t *testing.T) {
	l := core.NewList[int, int]()
	l.EnableRecycling()
	rec := newRetireRecorder()
	l.SetRetireHook(rec.hook)
	l.Insert(nil, 10, 10)
	l.Insert(nil, 30, 30)

	ctl := NewController()
	ctl.PauseAt(1, instrument.PtBeforeInsertCAS)
	p, st := abaStats(ctl, 1)
	done := make(chan bool, 1)
	go func() { _, ok := l.Insert(p, 20, 20); done <- ok }()
	ctl.AwaitParked(1, instrument.PtBeforeInsertCAS)

	// The interfering cycle retires node 25 inside pid 1's pinned window.
	n25, ok := l.Insert(nil, 25, 25)
	if !ok {
		t.Fatal("interfering insert failed")
	}
	if _, ok := l.Delete(nil, 25); !ok {
		t.Fatal("interfering delete failed")
	}
	if !rec.has(n25) {
		t.Fatal("retire hook did not see the deleted node")
	}
	reclaim(l)
	if recycled, _ := l.RecycleCounts(); recycled != 0 {
		t.Fatalf("recycled %d nodes while an operation from the retirement epoch was parked", recycled)
	}

	ctl.ClearAllPauses()
	ctl.Release(1)
	if ok := <-done; !ok {
		t.Fatal("frozen insert reported failure")
	}
	// True ABA: the interning argument is unchanged by recycling — the
	// delayed C&S still succeeds first try (the cycle restored the
	// pointer-identical record).
	if st.CASAttempts != 1 || st.CASSuccesses != 1 {
		t.Fatalf("delayed insert C&S should succeed first try: %+v", st)
	}

	// pid 1 is unpinned; the domain quiesces and n25's memory recycles.
	reclaim(l)
	if recycled, _ := l.RecycleCounts(); recycled != 1 {
		t.Fatalf("recycled = %d after quiescence, want 1", recycled)
	}
	n40, ok := l.Insert(nil, 40, 40)
	if !ok {
		t.Fatal("post-quiescence insert failed")
	}
	if n40 != n25 {
		t.Fatalf("insert allocated fresh memory (%p) instead of recycling the retired node (%p)", n40, n25)
	}
	for _, k := range []int{10, 20, 30, 40} {
		if v, ok := l.Get(nil, k); !ok || v != k {
			t.Fatalf("Get(%d) = %v, %v", k, v, ok)
		}
	}
	if _, ok := l.Get(nil, 25); ok {
		t.Fatal("deleted key 25 present")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecycleDelayedFlagCAS: pid 1 freezes before flagging 30's
// predecessor; the main goroutine deletes 30 and re-inserts an equal key.
// While pid 1 is parked, the retired node must not be recycled — the
// re-inserted 30 must be fresh memory, so pid 1's re-search sees a node it
// never targeted and its delete correctly fails. After pid 1 completes,
// the old node recycles and serves the next insert.
func TestRecycleDelayedFlagCAS(t *testing.T) {
	l := core.NewList[int, int]()
	l.EnableRecycling()
	rec := newRetireRecorder()
	l.SetRetireHook(rec.hook)
	l.Insert(nil, 10, 10)
	old, _ := l.Insert(nil, 30, 30)

	ctl := NewController()
	ctl.PauseAt(1, instrument.PtBeforeFlagCAS)
	p, _ := abaStats(ctl, 1)
	done := make(chan bool, 1)
	go func() { _, ok := l.Delete(p, 30); done <- ok }()
	ctl.AwaitParked(1, instrument.PtBeforeFlagCAS)

	if _, ok := l.Delete(nil, 30); !ok {
		t.Fatal("interfering delete failed")
	}
	if !rec.has(old) {
		t.Fatal("retire hook did not see the deleted node")
	}
	reclaim(l)
	renew, ok := l.Insert(nil, 30, 999)
	if !ok {
		t.Fatal("re-insert of equal key failed")
	}
	if renew == old {
		t.Fatal("re-insert reused the retired node while an operation from its epoch was parked")
	}
	if recycled, _ := l.RecycleCounts(); recycled != 0 {
		t.Fatalf("recycled %d nodes while pid 1 was parked", recycled)
	}

	ctl.ClearAllPauses()
	ctl.Release(1)
	if ok := <-done; ok {
		t.Fatal("frozen delete succeeded against a re-inserted node it never targeted")
	}
	if v, ok := l.Get(nil, 30); !ok || v != 999 {
		t.Fatalf("re-inserted key 30 = (%d, %t), want (999, true)", v, ok)
	}

	reclaim(l)
	if recycled, _ := l.RecycleCounts(); recycled != 1 {
		t.Fatalf("recycled = %d after quiescence, want 1", recycled)
	}
	n50, ok := l.Insert(nil, 50, 50)
	if !ok {
		t.Fatal("post-quiescence insert failed")
	}
	if n50 != old {
		t.Fatalf("insert allocated fresh memory (%p) instead of recycling the retired node (%p)", n50, old)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecycleDelayedSkipListTower: a parked skip-list inserter has
// traversed every level of key 20's height-4 tower when the main goroutine
// deletes the tower. Tower-atomic retirement must hold ALL four nodes —
// the root is unlinked first, and upper nodes keep down/towerRoot edges
// into it — until the parked operation unpins; then the whole tower
// recycles and rebuilds a fresh equal-height tower with zero allocations.
func TestRecycleDelayedSkipListTower(t *testing.T) {
	const height = 4
	l := core.NewSkipList[int, int](
		core.WithRecycling(),
		core.WithRandomSource(func() uint64 { return 0b0111 }), // every tower height 4
	)
	l.Insert(nil, 10, 10)
	l.Insert(nil, 20, 20)
	l.Insert(nil, 30, 30)

	ctl := NewController()
	ctl.PauseAt(1, instrument.PtBeforeInsertCAS)
	p, _ := abaStats(ctl, 1)
	done := make(chan bool, 1)
	go func() { _, ok := l.Insert(p, 25, 25); done <- ok }()
	ctl.AwaitParked(1, instrument.PtBeforeInsertCAS)

	// Delete the tower the parked search walked through. All four nodes
	// retire as one batch, stamped inside pid 1's pinned window.
	if _, ok := l.Delete(nil, 20); !ok {
		t.Fatal("interfering delete failed")
	}
	reclaim(l)
	if recycled, _ := l.RecycleCounts(); recycled != 0 {
		t.Fatalf("recycled %d tower nodes while the parked inserter could still hold them", recycled)
	}
	if pending := l.RetirePending(); pending != height {
		t.Fatalf("RetirePending = %d, want the whole tower (%d) parked in retire lists", pending, height)
	}

	ctl.ClearAllPauses()
	ctl.Release(1)
	if ok := <-done; !ok {
		t.Fatal("frozen insert reported failure")
	}

	reclaim(l)
	if recycled, dropped := l.RecycleCounts(); recycled != height || dropped != 0 {
		t.Fatalf("recycled %d, dropped %d after quiescence, want the whole tower (%d) recycled",
			recycled, dropped, height)
	}
	// The rebuilt tower comes entirely from the free list.
	st := &core.OpStats{}
	if _, ok := l.Insert(&core.Proc{Stats: st}, 40, 40); !ok {
		t.Fatal("post-quiescence insert failed")
	}
	if st.FreelistHits != height || st.FreelistMisses != 0 {
		t.Fatalf("tower rebuild: %d hits / %d misses, want %d / 0",
			st.FreelistHits, st.FreelistMisses, height)
	}
	for _, k := range []int{10, 25, 30, 40} {
		if _, ok := l.Get(nil, k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
	if _, ok := l.Get(nil, 20); ok {
		t.Fatal("deleted key 20 present")
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
