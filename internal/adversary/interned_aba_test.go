package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
)

// These schedules exercise the ABA cases opened by interning successor
// records (internal/core/node.go): a C&S that was read-before and
// performed-after a whole insert+delete cycle now *succeeds*, because the
// field holds the pointer-identical interned record again - exactly the
// semantics of the paper's tagged successor word. Each test freezes one
// process right before its C&S, runs the interfering operations to
// completion, releases the frozen process, and checks the final state and
// invariants. DESIGN.md §2.1 states the invariant that makes these
// schedules safe; run under -race via scripts/check.sh.

// abaStats returns a Proc parked by ctl with exact step counters attached,
// so tests can assert whether the delayed C&S succeeded without a retry.
func abaStats(ctl *Controller, pid int) (*core.Proc, *core.OpStats) {
	st := &core.OpStats{}
	return &core.Proc{ID: pid, Hooks: ctl.HooksFor(), Stats: st}, st
}

// TestInternedABAInsertCAS: the frozen inserter's C&S expects 10's clean
// record pointing at 30; a full insert(25)+delete(25) cycle runs while it
// is parked, restoring the identical record. The released C&S must succeed
// on the first attempt (structural-compare semantics) and leave a sorted,
// invariant-satisfying list.
func TestInternedABAInsertCAS(t *testing.T) {
	l := core.NewList[int, int]()
	l.Insert(nil, 10, 10)
	l.Insert(nil, 30, 30)

	ctl := NewController()
	ctl.PauseAt(1, instrument.PtBeforeInsertCAS)
	p, st := abaStats(ctl, 1)
	done := make(chan bool, 1)
	go func() { _, ok := l.Insert(p, 20, 20); done <- ok }()
	ctl.AwaitParked(1, instrument.PtBeforeInsertCAS)

	// ABA cycle around the same predecessor (node 10) while pid 1 holds
	// its expected record: insert and delete a key in the same window.
	if _, ok := l.Insert(nil, 25, 25); !ok {
		t.Fatal("interfering insert failed")
	}
	if _, ok := l.Delete(nil, 25); !ok {
		t.Fatal("interfering delete failed")
	}

	ctl.ClearAllPauses()
	ctl.Release(1)
	if ok := <-done; !ok {
		t.Fatal("frozen insert reported failure")
	}
	if st.CASAttempts != 1 || st.CASSuccesses != 1 {
		t.Fatalf("delayed insert C&S should succeed first try under interning (true ABA): %+v", st)
	}
	for _, k := range []int{10, 20, 30} {
		if _, ok := l.Get(nil, k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
	if _, ok := l.Get(nil, 25); ok {
		t.Fatal("deleted key 25 present")
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInternedABAFlagCAS: the frozen deleter of 30 expects 10's clean
// record pointing at 30; an insert(20)+delete(20) cycle restores it while
// the deleter is parked. The released flag C&S succeeds and the deletion
// completes without retries.
func TestInternedABAFlagCAS(t *testing.T) {
	l := core.NewList[int, int]()
	l.Insert(nil, 10, 10)
	l.Insert(nil, 30, 30)

	ctl := NewController()
	ctl.PauseAt(1, instrument.PtBeforeFlagCAS)
	p, st := abaStats(ctl, 1)
	done := make(chan bool, 1)
	go func() { _, ok := l.Delete(p, 30); done <- ok }()
	ctl.AwaitParked(1, instrument.PtBeforeFlagCAS)

	if _, ok := l.Insert(nil, 20, 20); !ok {
		t.Fatal("interfering insert failed")
	}
	if _, ok := l.Delete(nil, 20); !ok {
		t.Fatal("interfering delete failed")
	}

	ctl.ClearAllPauses()
	ctl.Release(1)
	if ok := <-done; !ok {
		t.Fatal("frozen delete reported failure")
	}
	// flag + mark + physical delete, each first-try: 3 attempts.
	if st.CASAttempts != 3 || st.CASSuccesses != 3 {
		t.Fatalf("delayed deletion should complete without retries under interning: %+v", st)
	}
	if _, ok := l.Get(nil, 30); ok {
		t.Fatal("deleted key 30 present")
	}
	if got := l.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInternedABAReinsertEqualKey: interning is per *node*, not per key.
// A deleter frozen before its flag C&S must NOT be confused by the same
// key being deleted and re-inserted at the same predecessor: the new node
// has its own interned records, so the delayed C&S fails, the re-search
// finds a different node, and the delete correctly reports failure.
func TestInternedABAReinsertEqualKey(t *testing.T) {
	l := core.NewList[int, int]()
	l.Insert(nil, 10, 10)
	l.Insert(nil, 20, 20)
	l.Insert(nil, 30, 30)

	ctl := NewController()
	ctl.PauseAt(1, instrument.PtBeforeFlagCAS)
	p, _ := abaStats(ctl, 1)
	done := make(chan bool, 1)
	go func() { _, ok := l.Delete(p, 20); done <- ok }()
	ctl.AwaitParked(1, instrument.PtBeforeFlagCAS)

	// Unlink the node pid 1 targets, then re-insert an equal key: a new
	// node occupies the same position between 10 and 30.
	if _, ok := l.Delete(nil, 20); !ok {
		t.Fatal("interfering delete failed")
	}
	if _, ok := l.Insert(nil, 20, 999); !ok {
		t.Fatal("re-insert of equal key failed")
	}

	ctl.ClearAllPauses()
	ctl.Release(1)
	if ok := <-done; ok {
		t.Fatal("frozen delete succeeded against a re-inserted node it never targeted")
	}
	if v, ok := l.Get(nil, 20); !ok || v != 999 {
		t.Fatalf("re-inserted key 20 = (%d, %t), want (999, true)", v, ok)
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInternedABADelayedHelpMarked: a deleter frozen right before its
// physical-deletion C&S is overtaken by a helper (an inserter that runs
// the full flag->mark->unlink help path) and by a subsequent insert that
// reuses the same predecessor. The released C&S must observe the changed
// record and back off - the re-check in helpMarked, not record freshness,
// is what prevents a resurrecting unlink under interning.
func TestInternedABADelayedHelpMarked(t *testing.T) {
	l := core.NewList[int, int]()
	l.Insert(nil, 10, 10)
	l.Insert(nil, 20, 20)
	l.Insert(nil, 30, 30)

	ctl := NewController()
	ctl.PauseAt(1, instrument.PtBeforePhysicalCAS)
	p, _ := abaStats(ctl, 1)
	done := make(chan bool, 1)
	go func() { _, ok := l.Delete(p, 20); done <- ok }()
	ctl.AwaitParked(1, instrument.PtBeforePhysicalCAS)

	// The inserter of 15 finds 10 flagged, helps complete 20's unlink,
	// then installs its node as 10's successor.
	if _, ok := l.Insert(nil, 15, 15); !ok {
		t.Fatal("helping insert failed")
	}

	ctl.ClearAllPauses()
	ctl.Release(1)
	if ok := <-done; !ok {
		t.Fatal("frozen delete reported failure despite owning the flag")
	}
	if _, ok := l.Get(nil, 20); ok {
		t.Fatal("deleted key 20 present")
	}
	if _, ok := l.Get(nil, 15); !ok {
		t.Fatal("key 15 missing after helping insert")
	}
	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 (10, 15, 30)", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInternedABASkipList runs the insert-C&S and flag-C&S ABA schedules
// on the skip list (height-1 towers so the schedule stays on level 1,
// where the same points fire in insertNode/tryFlagNode).
func TestInternedABASkipList(t *testing.T) {
	newSkip := func() *core.SkipList[int, int] {
		l := core.NewSkipList[int, int](core.WithRandomSource(func() uint64 { return 0 }))
		l.Insert(nil, 10, 10)
		l.Insert(nil, 30, 30)
		return l
	}

	t.Run("insert-cas", func(t *testing.T) {
		l := newSkip()
		ctl := NewController()
		ctl.PauseAt(1, instrument.PtBeforeInsertCAS)
		p, st := abaStats(ctl, 1)
		done := make(chan bool, 1)
		go func() { _, ok := l.Insert(p, 20, 20); done <- ok }()
		ctl.AwaitParked(1, instrument.PtBeforeInsertCAS)

		if _, ok := l.Insert(nil, 25, 25); !ok {
			t.Fatal("interfering insert failed")
		}
		if _, ok := l.Delete(nil, 25); !ok {
			t.Fatal("interfering delete failed")
		}

		ctl.ClearAllPauses()
		ctl.Release(1)
		if ok := <-done; !ok {
			t.Fatal("frozen insert reported failure")
		}
		if st.CASAttempts != 1 || st.CASSuccesses != 1 {
			t.Fatalf("delayed skip-list insert C&S should succeed first try: %+v", st)
		}
		for _, k := range []int{10, 20, 30} {
			if _, ok := l.Get(nil, k); !ok {
				t.Fatalf("key %d missing", k)
			}
		}
		if got := l.Len(); got != 3 {
			t.Fatalf("Len = %d, want 3", got)
		}
		if err := l.CheckStructure(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("flag-cas", func(t *testing.T) {
		l := newSkip()
		ctl := NewController()
		ctl.PauseAt(1, instrument.PtBeforeFlagCAS)
		p, st := abaStats(ctl, 1)
		done := make(chan bool, 1)
		go func() { _, ok := l.Delete(p, 30); done <- ok }()
		ctl.AwaitParked(1, instrument.PtBeforeFlagCAS)

		if _, ok := l.Insert(nil, 20, 20); !ok {
			t.Fatal("interfering insert failed")
		}
		if _, ok := l.Delete(nil, 20); !ok {
			t.Fatal("interfering delete failed")
		}

		ctl.ClearAllPauses()
		ctl.Release(1)
		if ok := <-done; !ok {
			t.Fatal("frozen delete reported failure")
		}
		if st.CASAttempts != 3 || st.CASSuccesses != 3 {
			t.Fatalf("delayed skip-list deletion should complete without retries: %+v", st)
		}
		if _, ok := l.Get(nil, 30); ok {
			t.Fatal("deleted key 30 present")
		}
		if got := l.Len(); got != 1 {
			t.Fatalf("Len = %d, want 1", got)
		}
		if err := l.CheckStructure(); err != nil {
			t.Fatal(err)
		}
	})
}
