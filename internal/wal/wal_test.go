package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// rec is one replayed record, captured for assertions.
type rec struct {
	op  Op
	seq uint64
	key int64
	val string
}

func collect(t *testing.T, l *Log, afterSeq uint64) []rec {
	t.Helper()
	var out []rec
	n, err := l.Replay(afterSeq, func(op Op, seq uint64, key int64, val []byte) error {
		out = append(out, rec{op: op, seq: seq, key: key, val: string(val)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(out))
	}
	return out
}

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func closeT(t *testing.T, l *Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestAppendCloseReopenReplay is the round trip: records written before
// a clean shutdown survive a reopen bit for bit, in order, seq-continuous.
func TestAppendCloseReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	want := []rec{
		{OpSet, 1, 7, "alpha"},
		{OpDel, 2, 7, ""},
		{OpSet, 3, -12, "beta"},
		{OpSet, 4, 1 << 40, ""},
	}
	for _, r := range want {
		if lsn := l.Append(r.op, r.key, r.val); lsn != r.seq {
			t.Fatalf("Append returned LSN %d, want %d", lsn, r.seq)
		}
	}
	if err := l.WaitDurable(4); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	closeT(t, l)

	l2 := openT(t, dir, Options{})
	defer closeT(t, l2)
	if got := l2.LastLSN(); got != 4 {
		t.Fatalf("recovered LastLSN = %d, want 4", got)
	}
	got := collect(t, l2, 0)
	for i, w := range want {
		// OpDel's value is not persisted; an empty OpSet value round-trips
		// as empty too, so the expectation is the record as framed.
		if i >= len(got) || got[i] != w {
			t.Fatalf("record %d = %+v, want %+v (all: %+v)", i, got[i], w, got)
		}
	}
	// Replay's afterSeq filter: seq > 2 only.
	tail := collect(t, l2, 2)
	if len(tail) != 2 || tail[0].seq != 3 || tail[1].seq != 4 {
		t.Fatalf("Replay(2) = %+v, want seqs 3,4", tail)
	}
	// New appends continue the sequence.
	if lsn := l2.Append(OpSet, 99, "gamma"); lsn != 5 {
		t.Fatalf("post-recovery Append LSN = %d, want 5", lsn)
	}
	if err := l2.WaitDurable(5); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
}

// TestTornTailTruncated simulates a crash mid-append: the final frame is
// cut short at every possible byte boundary, and recovery must keep the
// intact prefix and drop only the torn record.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 4, 8, 12, 20} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, Options{})
			l.Append(OpSet, 1, "one")
			l.Append(OpSet, 2, "two")
			l.Append(OpSet, 3, "three")
			if err := l.WaitDurable(3); err != nil {
				t.Fatal(err)
			}
			closeT(t, l)

			seg := onlySegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Frame 3 is the last; cut it `cut` bytes short.
			lastLen := frameHeader + recFixed + len("three")
			if cut > lastLen {
				t.Fatalf("cut %d exceeds final frame %d", cut, lastLen)
			}
			if err := os.WriteFile(seg, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			l2 := openT(t, dir, Options{})
			defer closeT(t, l2)
			if got := l2.LastLSN(); got != 2 {
				t.Fatalf("LastLSN after torn tail = %d, want 2", got)
			}
			recs := collect(t, l2, 0)
			if len(recs) != 2 || recs[1].val != "two" {
				t.Fatalf("survivors = %+v, want records 1,2", recs)
			}
			// The log keeps working: LSNs resume after the surviving prefix.
			if lsn := l2.Append(OpSet, 4, "four"); lsn != 3 {
				t.Fatalf("post-truncation Append LSN = %d, want 3", lsn)
			}
			if err := l2.WaitDurable(3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBitFlipTruncatesFromCorruption flips one payload byte mid-log: the
// CRC catches it, and recovery truncates from the damaged record on,
// keeping the prefix.
func TestBitFlipTruncatesFromCorruption(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 1; i <= 5; i++ {
		l.Append(OpSet, int64(i), "payload")
	}
	if err := l.WaitDurable(5); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)

	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameHeader + recFixed + len("payload")
	// Flip a value byte inside record 3.
	data[2*frame+frameHeader+recFixed] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{})
	defer closeT(t, l2)
	recs := collect(t, l2, 0)
	if len(recs) != 2 {
		t.Fatalf("survivors after bit flip = %+v, want records 1,2", recs)
	}
	if fi, err := os.Stat(seg); err != nil || fi.Size() != int64(2*frame) {
		t.Fatalf("segment not truncated to valid prefix: size=%d want %d (err=%v)", fi.Size(), 2*frame, err)
	}
}

// TestSegmentRotationAndPrune drives enough records through a tiny
// segment cap to rotate several times, then prunes below a pretend
// snapshot LSN and confirms replay of the tail still works after reopen.
func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 256})
	const n = 64
	for i := 1; i <= n; i++ {
		l.Append(OpSet, int64(i), "0123456789abcdef")
	}
	if err := l.WaitDurable(n); err != nil {
		t.Fatal(err)
	}
	segsBefore := segmentCount(t, dir)
	if segsBefore < 3 {
		t.Fatalf("expected >=3 segments at 256B cap, got %d", segsBefore)
	}
	const snapLSN = 40
	if err := l.Prune(snapLSN); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if after := segmentCount(t, dir); after >= segsBefore {
		t.Fatalf("Prune removed nothing: %d -> %d segments", segsBefore, after)
	}
	closeT(t, l)

	l2 := openT(t, dir, Options{SegmentBytes: 256})
	defer closeT(t, l2)
	if got := l2.LastLSN(); got != n {
		t.Fatalf("LastLSN after prune+reopen = %d, want %d", got, n)
	}
	tail := collect(t, l2, snapLSN)
	if len(tail) != n-snapLSN {
		t.Fatalf("tail after Prune(%d) has %d records, want %d", snapLSN, len(tail), n-snapLSN)
	}
	for i, r := range tail {
		if r.seq != uint64(snapLSN+1+i) {
			t.Fatalf("tail[%d].seq = %d, want %d", i, r.seq, snapLSN+1+i)
		}
	}
}

// TestReopenWithoutWritesKeepsActiveSegmentUnique is the duplicate-
// segment regression: a boot that appends nothing leaves an empty
// wal-<last+1>.seg; the next Open must reuse that path without listing
// it twice in segs, or Prune mistakes the live active segment for a
// covered predecessor and unlinks it while the writer appends — every
// later acked write would silently vanish at the next restart.
func TestReopenWithoutWritesKeepsActiveSegmentUnique(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		l.Append(OpSet, int64(i), "v")
	}
	if err := l.WaitDurable(3); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)

	// The no-write boot: creates (and leaves) an empty wal-…4.seg.
	closeT(t, openT(t, dir, Options{}))

	l3 := openT(t, dir, Options{})
	l3.mu.Lock()
	paths := make(map[string]bool, len(l3.segs))
	for _, s := range l3.segs {
		if paths[s.path] {
			l3.mu.Unlock()
			t.Fatalf("segment %s listed twice after reopen", s.path)
		}
		paths[s.path] = true
	}
	l3.mu.Unlock()

	if lsn := l3.Append(OpSet, 4, "four"); lsn != 4 {
		t.Fatalf("Append LSN = %d, want 4", lsn)
	}
	if err := l3.WaitDurable(4); err != nil {
		t.Fatal(err)
	}
	// Prune below a pretend snapshot at LSN 4: the active segment holding
	// record 4 must survive even though its records are all <= 4.
	if err := l3.Prune(4); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if lsn := l3.Append(OpSet, 5, "five"); lsn != 5 {
		t.Fatalf("Append LSN = %d, want 5", lsn)
	}
	if err := l3.WaitDurable(5); err != nil {
		t.Fatal(err)
	}
	closeT(t, l3)

	l4 := openT(t, dir, Options{})
	defer closeT(t, l4)
	if got := l4.LastLSN(); got != 5 {
		t.Fatalf("LastLSN after reopen = %d, want 5 (acked writes lost)", got)
	}
	recs := collect(t, l4, 0)
	if len(recs) != 2 || recs[0].seq != 4 || recs[1].seq != 5 {
		t.Fatalf("post-prune survivors = %+v, want seqs 4,5", recs)
	}
}

// TestWriteBatchEmptyIsNoop: rotation can hand writeBatch an empty
// batch (segment filled by the previous drain); it must not mark bytes
// dirty or clobber lastWritten — the pre-rotate fsync would otherwise
// store durable=0, un-promising already-fsynced records.
func TestWriteBatchEmptyIsNoop(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "seg")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := &Log{f: f}
	l.cond = sync.NewCond(&l.mu)
	l.lastWritten = 7
	l.writeBatch(nil, 0)
	if l.unsynced {
		t.Fatal("empty writeBatch marked bytes dirty")
	}
	if l.lastWritten != 7 {
		t.Fatalf("empty writeBatch clobbered lastWritten: %d", l.lastWritten)
	}
	if l.Err() != nil {
		t.Fatalf("empty writeBatch failed: %v", l.Err())
	}
}

// TestFsyncDurableMonotonic: fsync must never move the durable LSN
// backwards, even when lastWritten is stale (the pre-rotate fsync after
// a phantom empty batch used to store 0, transiently un-promising
// already-durable records to WaitDurable callers).
func TestFsyncDurableMonotonic(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "seg")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l := &Log{f: f}
	l.cond = sync.NewCond(&l.mu)
	l.durable.Store(9)
	l.lastWritten = 3 // stale: below what is already durable
	l.unsynced = true
	l.fsync()
	if got := l.Durable(); got != 9 {
		t.Fatalf("Durable regressed to %d, want 9", got)
	}
	if l.Err() != nil {
		t.Fatalf("fsync failed: %v", l.Err())
	}
}

// TestDurableNeverRegressesAcrossRotation drives rotation on the first
// record of each drain (segment cap = one frame) and asserts the
// externally visible durable LSN only ever moves forward.
func TestDurableNeverRegressesAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	val := "0123456789abcdef"
	frame := frameHeader + recFixed + len(val)
	l := openT(t, dir, Options{SegmentBytes: int64(frame), FsyncWindow: 10 * time.Second})
	defer closeT(t, l)
	for i := 1; i <= 8; i++ {
		l.Append(OpSet, int64(i), val)
		if d := l.Durable(); d < uint64(i-1) {
			t.Fatalf("Durable() = %d after append %d, regressed below %d", d, i, i-1)
		}
		if err := l.WaitDurable(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentAppendDurability is the MPSC contract under the race
// detector: every concurrently published record gets a unique LSN and
// survives a reopen, seq-continuous.
func TestConcurrentAppendDurability(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{RingSize: 64, FsyncWindow: time.Millisecond})
	workers := 8
	per := 200
	var wg sync.WaitGroup
	lsns := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op := OpSet
				if i%3 == 0 {
					op = OpDel
				}
				lsns[w] = append(lsns[w], l.Append(op, int64(w*per+i), "v"))
			}
		}(w)
	}
	wg.Wait()
	total := uint64(workers * per)
	if err := l.WaitDurable(total); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, total)
	for _, ws := range lsns {
		for _, lsn := range ws {
			if lsn == 0 || lsn > total || seen[lsn] {
				t.Fatalf("bad or duplicate LSN %d", lsn)
			}
			seen[lsn] = true
		}
	}
	closeT(t, l)

	l2 := openT(t, dir, Options{})
	defer closeT(t, l2)
	recs := collect(t, l2, 0)
	if uint64(len(recs)) != total {
		t.Fatalf("recovered %d records, want %d", len(recs), total)
	}
	for i, r := range recs {
		if r.seq != uint64(i+1) {
			t.Fatalf("recovered seq gap at %d: %d", i, r.seq)
		}
	}
}

// TestWaitDurableUnblocksPromptly: a sync waiter must not wait out the
// whole group-commit window — its presence forces the fsync.
func TestWaitDurableUnblocksPromptly(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{FsyncWindow: 10 * time.Second})
	defer closeT(t, l)
	lsn := l.Append(OpSet, 1, "v")
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitDurable: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable did not return; sync waiter failed to force the fsync")
	}
	if l.Durable() < lsn {
		t.Fatalf("Durable() = %d after WaitDurable(%d)", l.Durable(), lsn)
	}
}

// TestPublishZeroAllocs pins the hot-path guarantee: Append allocates
// nothing, with the writer live and fsyncing underneath.
func TestPublishZeroAllocs(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{FsyncWindow: time.Millisecond})
	defer closeT(t, l)
	val := "sixteen-byte-val"
	if allocs := testing.AllocsPerRun(2000, func() {
		l.Append(OpSet, 42, val)
	}); allocs != 0 {
		t.Fatalf("Append allocates %.2f allocs/op; the WAL publish path must be 0", allocs)
	}
}

// BenchmarkWALPublish is the benchdiff-gated hand-off benchmark: the
// cost one serving goroutine pays to make a mutation durable-eligible.
func BenchmarkWALPublish(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, FsyncWindow: time.Millisecond, RingSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	val := "sixteen-byte-val"
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Append(OpSet, 7, val)
		}
	})
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	// Open creates a fresh (possibly empty) active segment per boot;
	// the one holding the test's records is the first.
	var withData []string
	for _, s := range segs {
		if fi, err := os.Stat(s); err == nil && fi.Size() > 0 {
			withData = append(withData, s)
		}
	}
	if len(withData) != 1 {
		t.Fatalf("expected exactly one non-empty segment, found %d of %d", len(withData), len(segs))
	}
	return withData[0]
}

func segmentCount(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

// TestFrameRoundTrip pins the frame encoding against hand-decoded bytes.
func TestFrameRoundTrip(t *testing.T) {
	buf := appendFrame(nil, OpSet, 9, -3, "xy")
	if len(buf) != frameHeader+recFixed+2 {
		t.Fatalf("frame length %d", len(buf))
	}
	n, seq, ok := parseFrame(buf)
	if !ok || n != len(buf) || seq != 9 {
		t.Fatalf("parseFrame = (%d, %d, %v)", n, seq, ok)
	}
	if !bytes.Equal(buf[frameHeader+recFixed:], []byte("xy")) {
		t.Fatalf("payload mangled")
	}
	// Any single corrupted byte must fail the CRC (or the header checks).
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x01
		if _, _, ok := parseFrame(mut); ok && i != 0 {
			// Flipping the low bit of the length byte can still parse iff it
			// describes a shorter-but-valid frame, which a CRC over different
			// bytes cannot be; assert it really fails.
			t.Fatalf("parseFrame accepted corrupted byte %d", i)
		}
	}
	runtime.KeepAlive(buf)
}
