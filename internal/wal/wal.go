// Package wal is the append-only operation log behind lflserver's
// durability modes: an off-hot-path write-ahead log fed by a lock-free
// MPSC hand-off ring from the serving goroutines to a single fsync'ing
// writer goroutine.
//
// The design keeps the store's zero-allocation CAS paths untouched
// (DESIGN.md Section 2.1): publishing a record is one fetch-and-add
// ticket claim plus one slot write — no lock, no allocation, no
// syscall — exactly the ticket-cursor/per-slot-sequence discipline of
// the group-batching submission rings (internal/server/groupbatch.go).
// All file I/O, CRC framing, group-commit fsync batching and segment
// rotation happen on the writer goroutine, so the serving layer pays
// for durability only what the hand-off costs.
//
// On-disk format: segments named wal-%016d.seg by the sequence number
// of their first record, each a stream of frames
//
//	[4B little-endian payload length][4B CRC32-C of payload][payload]
//	payload = [1B op][8B seq][8B key][value bytes (OpSet only)]
//
// Sequence numbers (LSNs) are assigned by the ring ticket, start at 1,
// and are strictly continuous across segments, so recovery can verify
// the log's integrity record by record. A torn or corrupted frame —
// a crash mid-append, a bit flip — truncates the log to the last valid
// prefix instead of failing boot; see Open.
//
// Ordering contract: records are appended in each connection's reply
// order, so per-connection per-key program order is exactly the log
// order. Mutations of one key racing across connections may be logged
// in either order — the same weak-consistency trade the paper's
// iteration semantics make, documented in DESIGN.md Section 13.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// Op tags one logged mutation.
type Op byte

const (
	// OpSet records a successful insert of key with the payload value.
	OpSet Op = 1
	// OpDel records a successful delete of key.
	OpDel Op = 2
)

const (
	frameHeader  = 8         // 4B length + 4B CRC
	recFixed     = 1 + 8 + 8 // op + seq + key
	maxFrameLoad = 1 << 26   // scan sanity cap on one payload
	segPrefix    = "wal-"
	segSuffix    = ".seg"
)

// crcTable is CRC32-C (Castagnoli): hardware-accelerated on amd64/arm64,
// so framing costs stay off the writer's profile.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open. The zero value of every field gets a usable
// default except Dir, which is required.
type Options struct {
	// Dir is the directory holding segments (and snapshots, by
	// convention). Created if absent.
	Dir string
	// FsyncWindow is the group-commit window: the writer holds dirty
	// bytes at most this long before fsync, so one fsync amortizes over
	// every record that arrived inside the window. Zero or negative
	// fsyncs after every writer drain (tightest durability, one fsync
	// per hand-off batch).
	FsyncWindow time.Duration
	// SegmentBytes rotates the active segment once it crosses this size
	// (default 64 MiB).
	SegmentBytes int64
	// RingSize is the hand-off ring capacity, rounded up to a power of
	// two (default 1024). A full ring applies bounded backpressure: the
	// publishing goroutine yields until the writer frees a slot.
	RingSize int
	// Telemetry, when non-nil, receives the wal_appends, wal_fsyncs and
	// wal_bytes counters.
	Telemetry *telemetry.Recorder
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.RingSize <= 0 {
		o.RingSize = 1024
	}
	rs := 1
	for rs < o.RingSize {
		rs <<= 1
	}
	o.RingSize = rs
	return o
}

// slot is one hand-off ring cell: the per-slot sequence of the ticket
// discipline plus the record it carries, inline so publishing allocates
// nothing.
type slot struct {
	seq atomic.Uint64
	op  Op
	key int64
	val string
}

// Log is the write-ahead log. Construct with Open; Append from any
// number of goroutines; Close exactly once, after every producer has
// stopped.
type Log struct {
	opts        Options
	windowNanos int64

	// MPSC hand-off ring. Producers claim a ticket with enq and spin
	// (bounded backpressure) while their slot still holds an unconsumed
	// record from one lap ago; the writer owns deq outright.
	mask  uint64
	slots []slot
	enq   atomic.Uint64
	deq   uint64

	// Dekker-style park handshake, as in the group-batching rings: the
	// writer sets sleeping before its final emptiness check, producers
	// check it after their final seq store.
	sleeping atomic.Bool
	wake     chan struct{}

	// durable is the highest LSN known to be on stable storage.
	durable     atomic.Uint64
	syncWaiters atomic.Int32

	mu   sync.Mutex
	cond *sync.Cond
	err  error // first writer failure; latched

	fsyncHist instrument.Hist

	// writer-goroutine state.
	f           *os.File
	segSize     int64
	buf         []byte
	unsynced    bool
	firstDirty  int64 // Nanotime of the oldest unsynced write
	lastWritten uint64

	// segs is the on-disk segment list (first-seq ascending, the active
	// segment last), guarded by mu: the writer appends on rotation,
	// Prune removes from the front.
	segs []segInfo

	lastScanned uint64 // highest valid seq found by Open's scan

	stop chan struct{}
	done chan struct{}
}

type segInfo struct {
	path     string
	firstSeq uint64
}

// Open scans dir's segments, truncates a torn or corrupted tail to the
// last valid CRC frame (a crash mid-append must not fail boot), resumes
// LSN assignment after the highest surviving record, and starts the
// writer goroutine. Call Replay before the first Append to feed the
// surviving records into a store.
func Open(o Options) (*Log, error) {
	o = o.withDefaults()
	if o.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(o.Dir)
	if err != nil {
		return nil, err
	}

	l := &Log{
		opts:        o,
		windowNanos: o.FsyncWindow.Nanoseconds(),
		mask:        uint64(o.RingSize - 1),
		slots:       make([]slot, o.RingSize),
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)

	// Walk the segments in order, verifying frame CRCs and sequence
	// continuity. The first invalid frame ends the valid prefix: the
	// file is truncated there and any later segments (past the torn
	// point, unreachable without a seq gap) are deleted.
	last := uint64(0)
	intactThrough := len(segs)
	for i, seg := range segs {
		segLast, validBytes, intact, err := scanSegment(seg.path, last)
		if err != nil {
			return nil, err
		}
		last = segLast
		if !intact {
			if err := os.Truncate(seg.path, validBytes); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			intactThrough = i + 1
			break
		}
	}
	for _, seg := range segs[intactThrough:] {
		if err := os.Remove(seg.path); err != nil {
			return nil, err
		}
	}
	l.segs = segs[:intactThrough]
	l.lastScanned = last

	// Drop trailing segments that hold no valid record (firstSeq past the
	// surviving prefix): a boot that appended nothing leaves an empty
	// wal-<last+1>.seg behind, and openSegment below recreates that very
	// path. Keeping the stale entry would list the active segment twice in
	// l.segs, and Prune — seeing the duplicate as a covered predecessor —
	// would unlink the file the writer is appending to, silently dropping
	// every subsequent acked write at the next restart.
	for len(l.segs) > 0 && l.segs[len(l.segs)-1].firstSeq > last {
		stale := l.segs[len(l.segs)-1]
		if err := os.Remove(stale.path); err != nil {
			return nil, err
		}
		l.segs = l.segs[:len(l.segs)-1]
	}

	// Resume tickets after the surviving prefix: the next record gets
	// LSN last+1 (ticket t carries LSN t+1). Slot sequences are seeded
	// so slot (t & mask) admits exactly ticket t on the first lap.
	l.enq.Store(last)
	l.deq = last
	l.durable.Store(last)
	for i := 0; i < o.RingSize; i++ {
		t := last + uint64(i)
		l.slots[t&l.mask].seq.Store(t)
	}

	// A fresh active segment, named by the next LSN: appending to a
	// just-truncated file would work, but a clean segment boundary per
	// boot keeps recovery evidence legible and rotation uniform.
	if err := l.openSegment(last + 1); err != nil {
		return nil, err
	}

	go l.run()
	return l, nil
}

// LastLSN returns the most recently assigned LSN (the recovery scan's
// highest surviving record before any Append). Snapshots stamp
// themselves with this value at scan start: every mutation logged after
// it is in the replay tail.
func (l *Log) LastLSN() uint64 { return l.enq.Load() }

// Durable returns the highest LSN known to be on stable storage.
func (l *Log) Durable() uint64 { return l.durable.Load() }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

// FsyncLatency returns the fsync-latency histogram (nanosecond values).
func (l *Log) FsyncLatency() instrument.HistSnapshot { return l.fsyncHist.Snapshot() }

// Append publishes one mutation record and returns its LSN. It is
// lock-free, allocation-free, and safe for any number of concurrent
// producers; a full ring yields until the writer frees a slot (bounded
// backpressure, mirroring the submission rings). val must be immutable
// for the life of the call's hand-off (Go strings are).
func (l *Log) Append(op Op, key int64, val string) uint64 {
	t := l.enq.Add(1) - 1
	s := &l.slots[t&l.mask]
	for s.seq.Load() != t {
		runtime.Gosched()
	}
	s.op, s.key, s.val = op, key, val
	s.seq.Store(t + 1)
	if l.sleeping.Load() {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	if l.opts.Telemetry != nil {
		l.opts.Telemetry.AddCounter(instrument.CtrWALAppends, 1)
	}
	return t + 1
}

// WaitDurable blocks until every record up to lsn is fsynced, or
// returns the writer's latched failure. Sync-mode connections call it
// before flushing replies, so a client ack implies stable storage.
func (l *Log) WaitDurable(lsn uint64) error {
	if l.durable.Load() >= lsn {
		return nil
	}
	l.syncWaiters.Add(1)
	defer l.syncWaiters.Add(-1)
	// Wake a parked writer so the fsync happens now, not at window end.
	if l.sleeping.Load() {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable.Load() < lsn && l.err == nil {
		l.cond.Wait()
	}
	return l.err
}

// Err returns the writer's latched failure, or nil.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close drains the ring, fsyncs, and stops the writer. Producers must
// have stopped appending; call after the serving layer has shut down.
func (l *Log) Close() error {
	close(l.stop)
	<-l.done
	return l.Err()
}

// ringNonEmpty reports whether a record is ready to pop. Writer only.
func (l *Log) ringNonEmpty() bool {
	return l.slots[l.deq&l.mask].seq.Load() == l.deq+1
}

// run is the writer goroutine: drain the ring into frames, write,
// group-commit fsync, park.
func (l *Log) run() {
	defer close(l.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		l.drain()
		if l.unsynced && l.fsyncDue() {
			l.fsync()
		}
		if l.ringNonEmpty() {
			continue
		}
		select {
		case <-l.stop:
			l.drain()
			if l.unsynced {
				l.fsync()
			}
			l.mu.Lock()
			if l.f != nil {
				if err := l.f.Close(); err != nil && l.err == nil {
					l.err = err
				}
				l.f = nil
			}
			l.mu.Unlock()
			return
		default:
		}
		l.park(timer)
	}
}

// fsyncDue reports whether the dirty bytes should be synced now: the
// group-commit window elapsed, a WaitDurable caller is parked on them,
// or the window is zero (sync every drain).
func (l *Log) fsyncDue() bool {
	if l.windowNanos <= 0 || l.syncWaiters.Load() > 0 {
		return true
	}
	return telemetry.Nanotime()-l.firstDirty >= l.windowNanos
}

// park waits for work: a bounded yield-spin, then the sleeping/wake
// handshake. With dirty bytes pending it sleeps at most the remainder
// of the fsync window so group commit never stalls past its bound.
func (l *Log) park(timer *time.Timer) {
	for i := 0; i < 64; i++ {
		if l.ringNonEmpty() {
			return
		}
		select {
		case <-l.stop:
			return
		default:
		}
		runtime.Gosched()
	}
	for {
		l.sleeping.Store(true)
		if l.ringNonEmpty() {
			l.sleeping.Store(false)
			return
		}
		// The sync-waiter half of the handshake: WaitDurable increments
		// syncWaiters before loading sleeping, the writer stores sleeping
		// before loading syncWaiters, so a waiter that missed the flag and
		// sent no wake token is still seen here — otherwise it would sleep
		// out the whole group-commit window.
		if l.unsynced && l.syncWaiters.Load() > 0 {
			l.sleeping.Store(false)
			return
		}
		var deadline <-chan time.Time
		if l.unsynced {
			rest := l.windowNanos - (telemetry.Nanotime() - l.firstDirty)
			if rest < 0 {
				rest = 0
			}
			timer.Reset(time.Duration(rest))
			deadline = timer.C
		}
		select {
		case <-l.wake:
			l.sleeping.Store(false)
			stopTimer(timer, deadline)
			if l.ringNonEmpty() || l.syncWaiters.Load() > 0 {
				return
			}
			// Stale token from a publish the spin phase already consumed.
		case <-deadline:
			l.sleeping.Store(false)
			return
		case <-l.stop:
			l.sleeping.Store(false)
			stopTimer(timer, deadline)
			return
		}
	}
}

func stopTimer(t *time.Timer, armed <-chan time.Time) {
	if armed == nil {
		return
	}
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// drain pops every ready record, frames it into the write buffer, and
// writes the batch out (rotating segments as needed). After a latched
// failure records are still consumed — and dropped — so producers can
// never wedge on a full ring behind a dead disk.
func (l *Log) drain() {
	buf := l.buf[:0]
	var pending uint64 // seq of the last record framed into buf
	for {
		s := &l.slots[l.deq&l.mask]
		if s.seq.Load() != l.deq+1 {
			break
		}
		op, key, val := s.op, s.key, s.val
		s.val = "" // don't pin arena chunks in a parked slot
		seq := l.deq + 1
		s.seq.Store(l.deq + uint64(len(l.slots)))
		l.deq++
		if l.Err() != nil {
			continue // latched failure: consume and drop
		}
		fl := frameHeader + recFixed
		if op == OpSet {
			fl += len(val)
		}
		// Rotate before this frame would push the segment past its cap,
		// so each segment's name is exactly its first record's seq.
		if l.segSize+int64(len(buf))+int64(fl) > l.opts.SegmentBytes &&
			l.segSize+int64(len(buf)) > 0 {
			l.writeBatch(buf, pending)
			buf = buf[:0]
			if l.Err() == nil {
				if l.unsynced {
					l.fsync()
				}
				if err := l.rotate(seq); err != nil {
					l.fail(err)
				}
			}
			if l.Err() != nil {
				continue
			}
		}
		buf = appendFrame(buf, op, seq, key, val)
		pending = seq
	}
	if len(buf) > 0 && l.Err() == nil {
		l.writeBatch(buf, pending)
	}
	l.buf = buf
}

// writeBatch appends framed bytes to the active segment and marks them
// dirty; lastSeq is the seq of the final record in the batch. An empty
// batch is a no-op: rotation can trigger on the first record of a drain
// (segment filled by the previous one), and marking that phantom batch
// dirty would regress lastWritten below already-fsynced records.
func (l *Log) writeBatch(buf []byte, lastSeq uint64) {
	if len(buf) == 0 {
		return
	}
	if _, err := l.f.Write(buf); err != nil {
		l.fail(err)
		return
	}
	l.segSize += int64(len(buf))
	if !l.unsynced {
		l.unsynced = true
		l.firstDirty = telemetry.Nanotime()
	}
	l.lastWritten = lastSeq
	if l.opts.Telemetry != nil {
		l.opts.Telemetry.AddCounter(instrument.CtrWALBytes, uint64(len(buf)))
	}
}

// appendFrame renders one record frame into buf.
func appendFrame(buf []byte, op Op, seq uint64, key int64, val string) []byte {
	if op != OpSet {
		val = ""
	}
	payload := recFixed + len(val)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	buf = append(buf, byte(op))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key))
	buf = append(buf, val...)
	crc := crc32.Checksum(buf[crcAt+4:], crcTable)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc)
	return buf
}

// fsync pushes the dirty bytes to stable storage, advances the durable
// LSN, and wakes every WaitDurable caller it satisfied.
func (l *Log) fsync() {
	begin := telemetry.Nanotime()
	err := l.f.Sync()
	l.fsyncHist.Record(telemetry.Nanotime() - begin)
	l.unsynced = false
	if err != nil {
		l.fail(err)
		return
	}
	if l.opts.Telemetry != nil {
		l.opts.Telemetry.AddCounter(instrument.CtrWALFsyncs, 1)
	}
	// Monotonic: never publish a durable LSN below one already announced
	// (lastWritten can be stale across a rotation's pre-rotate fsync).
	if l.lastWritten > l.durable.Load() {
		l.durable.Store(l.lastWritten)
	}
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}

// fail latches the writer's first error and releases every waiter: a
// sync-mode connection must learn its ack cannot be honored.
func (l *Log) fail(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	l.unsynced = false
}

// rotate closes the active segment and opens the next, named by the
// first LSN it will hold.
func (l *Log) rotate(firstSeq uint64) error {
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	return l.openSegment(firstSeq)
}

// openSegment creates the segment whose first record will carry
// firstSeq, fsyncing the directory so the file itself survives a crash.
func (l *Log) openSegment(firstSeq uint64) error {
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segSize = 0
	l.mu.Lock()
	l.segs = append(l.segs, segInfo{path: path, firstSeq: firstSeq})
	l.mu.Unlock()
	return nil
}

// Replay feeds every surviving record with seq > afterSeq to fn in log
// order and returns how many were delivered. Call it after Open and
// before the first Append: it reads the scanned prefix from disk, so
// concurrent appends to the active segment would race the read. The
// val slice is only valid during the callback.
func (l *Log) Replay(afterSeq uint64, fn func(op Op, seq uint64, key int64, val []byte) error) (int, error) {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	l.mu.Unlock()
	n := 0
	for _, seg := range segs {
		replayed, err := replaySegment(seg.path, afterSeq, l.lastScanned, fn)
		n += replayed
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Prune removes segments whose every record is already covered by a
// snapshot at uptoSeq. The active segment is never removed.
func (l *Log) Prune(uptoSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i, seg := range l.segs {
		// A segment is disposable when a successor exists and that
		// successor starts at or below uptoSeq+1 — i.e. every record in
		// this segment has seq <= uptoSeq.
		if i+1 < len(l.segs) && l.segs[i+1].firstSeq <= uptoSeq+1 {
			if err := os.Remove(seg.path); err != nil {
				// Keep the tail consistent even on a failed remove.
				kept = append(kept, l.segs[i:]...)
				l.segs = kept
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return nil
}

// SyncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash. Shared with the snapshot writer.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// listSegments returns dir's segments sorted by first sequence.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanSegment walks one segment verifying frame structure, CRCs and
// sequence continuity against prev (the last valid seq before this
// segment; 0 adopts the first record's seq). It returns the last valid
// seq, the byte offset of the valid prefix, and whether the whole file
// was intact.
func scanSegment(path string, prev uint64) (last uint64, validBytes int64, intact bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, err
	}
	last = prev
	off := 0
	for {
		if off == len(data) {
			return last, int64(off), true, nil
		}
		rec, seq, ok := parseFrame(data[off:])
		if !ok || (last != 0 && seq != last+1) {
			return last, int64(off), false, nil
		}
		last = seq
		off += rec
	}
}

// parseFrame validates one frame at the head of data, returning its
// total length and the record's seq.
func parseFrame(data []byte) (frameLen int, seq uint64, ok bool) {
	if len(data) < frameHeader {
		return 0, 0, false
	}
	payload := int(binary.LittleEndian.Uint32(data))
	if payload < recFixed || payload > maxFrameLoad || len(data) < frameHeader+payload {
		return 0, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[4:])
	body := data[frameHeader : frameHeader+payload]
	if crc32.Checksum(body, crcTable) != crc {
		return 0, 0, false
	}
	op := Op(body[0])
	if op != OpSet && op != OpDel {
		return 0, 0, false
	}
	return frameHeader + payload, binary.LittleEndian.Uint64(body[1:]), true
}

// replaySegment delivers the segment's records with afterSeq < seq <=
// lastValid to fn.
func replaySegment(path string, afterSeq, lastValid uint64, fn func(op Op, seq uint64, key int64, val []byte) error) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	off := 0
	for off < len(data) {
		rec, seq, ok := parseFrame(data[off:])
		if !ok || seq > lastValid {
			break // past the valid prefix Open established
		}
		body := data[off+frameHeader : off+rec]
		off += rec
		if seq <= afterSeq {
			continue
		}
		op := Op(body[0])
		key := int64(binary.LittleEndian.Uint64(body[9:]))
		if err := fn(op, seq, key, body[recFixed:]); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
