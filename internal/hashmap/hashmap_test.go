package hashmap

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestHashMapBasics(t *testing.T) {
	m := New[string, int](16, StringHash)
	if m.Contains("a") {
		t.Fatal("empty map contains a key")
	}
	if !m.Insert("a", 1) || m.Insert("a", 2) {
		t.Fatal("insert/duplicate wrong")
	}
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get = %d, %t", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete("a") || m.Delete("a") {
		t.Fatal("delete/double-delete wrong")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapBucketRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {9, 16}, {1024, 1024},
	} {
		m := New[int, int](tc.in, IntHash)
		if got := m.Buckets(); got != tc.want {
			t.Fatalf("Buckets(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestHashMapManyKeysSpread(t *testing.T) {
	m := New[int, int](64, IntHash)
	const n = 5000
	for i := 0; i < n; i++ {
		if !m.Insert(i, i*2) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d, %t", i, v, ok)
		}
	}
	// The hash should spread keys: no bucket may hold more than 8x the
	// average.
	maxLen := 0
	for _, b := range m.buckets {
		maxLen = max(maxLen, b.Len())
	}
	if avg := n / m.Buckets(); maxLen > 8*avg {
		t.Fatalf("worst bucket %d vs average %d: hash not spreading", maxLen, avg)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapRange(t *testing.T) {
	m := New[int, int](8, IntHash)
	want := map[int]int{}
	for i := 0; i < 100; i++ {
		m.Insert(i, i)
		want[i] = i
	}
	got := map[int]int{}
	m.Range(func(k, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %d keys, want %d", len(got), len(want))
	}
	// Early stop.
	count := 0
	m.Range(func(_, _ int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestHashMapConcurrent(t *testing.T) {
	m := New[int, int](32, IntHash)
	const workers, ops, keyRange = 8, 3000, 256
	var insWins, delWins atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 21))
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					if m.Insert(k, k) {
						insWins.Add(1)
					}
				case 1:
					if m.Delete(k) {
						delWins.Add(1)
					}
				default:
					m.Contains(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if net := int(insWins.Load() - delWins.Load()); net != m.Len() {
		t.Fatalf("Len = %d, insWins-delWins = %d", m.Len(), net)
	}
}

func TestHashMapMatchesModelQuick(t *testing.T) {
	type step struct {
		Op  uint8
		Key uint8
	}
	f := func(steps []step) bool {
		m := New[int, int](4, IntHash) // tiny table: long buckets
		model := map[int]bool{}
		for _, s := range steps {
			k := int(s.Key)
			switch s.Op % 3 {
			case 0:
				if m.Insert(k, k) == model[k] {
					return false
				}
				model[k] = true
			case 1:
				if m.Delete(k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if m.Contains(k) != model[k] {
					return false
				}
			}
		}
		return m.Len() == len(model) && m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHashersDisperse(t *testing.T) {
	// Adjacent integers and similar strings must land in many buckets.
	intBuckets := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		intBuckets[IntHash(i)&63] = true
	}
	if len(intBuckets) < 48 {
		t.Fatalf("IntHash used only %d/64 buckets", len(intBuckets))
	}
	strBuckets := map[uint64]bool{}
	for _, s := range []string{"a", "b", "ab", "ba", "aa", "", "abc", "abd", "xyz", "xyy"} {
		strBuckets[StringHash(s)] = true
	}
	if len(strBuckets) != 10 {
		t.Fatalf("StringHash collided on trivial inputs: %d distinct", len(strBuckets))
	}
}

func BenchmarkHashMapMixedParallel(b *testing.B) {
	m := New[int, int](1024, IntHash)
	const keyRange = 1 << 16
	for k := 0; k < keyRange; k += 2 {
		m.Insert(k, k)
	}
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seed.Add(1)), 5))
		for pb.Next() {
			k := int(rng.Uint64N(keyRange))
			switch rng.Uint64N(10) {
			case 0:
				m.Insert(k, k)
			case 1:
				m.Delete(k)
			default:
				m.Contains(k)
			}
		}
	})
}
