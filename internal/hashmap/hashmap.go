// Package hashmap implements a lock-free hash map built from the paper's
// linked lists, in the style of Michael's list-based hash tables ("High
// Performance Dynamic Lock-Free Hash Tables and List-Based Sets", SPAA
// 2002), which the paper discusses in Section 2. It demonstrates the
// introduction's claim that lock-free linked lists "act as building blocks
// for many other data structures": each bucket is one Fomitchev-Ruppert
// list, so every bucket operation carries the O(n_bucket + c) amortized
// bound, and with a sane load factor that is O(1 + c) expected.
//
// The table does not resize; choose the bucket count for the expected
// population (buckets are cheap: one head/tail sentinel pair each).
package hashmap

import (
	"cmp"
	"sync/atomic"

	"repro/internal/core"
)

// Map is a fixed-capacity lock-free hash map. All methods are safe for
// concurrent use; the implementation is lock-free.
type Map[K cmp.Ordered, V any] struct {
	buckets []*core.List[K, V]
	hash    func(K) uint64
	mask    uint64
	size    atomic.Int64
}

// New returns a map with the given number of buckets (rounded up to a
// power of two, minimum 1) and hash function. For integer and string keys
// the package provides IntHash and StringHash.
func New[K cmp.Ordered, V any](buckets int, hash func(K) uint64) *Map[K, V] {
	n := 1
	for n < buckets {
		n <<= 1
	}
	m := &Map[K, V]{
		buckets: make([]*core.List[K, V], n),
		hash:    hash,
		mask:    uint64(n - 1),
	}
	for i := range m.buckets {
		m.buckets[i] = core.NewList[K, V]()
	}
	return m
}

func (m *Map[K, V]) bucket(k K) *core.List[K, V] {
	return m.buckets[m.hash(k)&m.mask]
}

// Insert adds k with value v; false if k is already present.
func (m *Map[K, V]) Insert(k K, v V) bool {
	_, ok := m.bucket(k).Insert(nil, k, v)
	if ok {
		m.size.Add(1)
	}
	return ok
}

// Get returns the value stored at k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	return m.bucket(k).Get(nil, k)
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Delete removes k; false if absent (or a concurrent Delete won).
func (m *Map[K, V]) Delete(k K) bool {
	_, ok := m.bucket(k).Delete(nil, k)
	if ok {
		m.size.Add(-1)
	}
	return ok
}

// Len returns the number of keys (exact when quiescent).
func (m *Map[K, V]) Len() int { return int(m.size.Load()) }

// Buckets returns the bucket count.
func (m *Map[K, V]) Buckets() int { return len(m.buckets) }

// Range calls fn for every key/value until fn returns false. Iteration
// order is by bucket, then by key within a bucket; it is weakly consistent
// under concurrent updates.
func (m *Map[K, V]) Range(fn func(k K, v V) bool) {
	for _, b := range m.buckets {
		stop := false
		b.Ascend(func(k K, v V) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// CheckInvariants validates every bucket's list invariants (quiescent
// states only) and the size counter.
func (m *Map[K, V]) CheckInvariants() error {
	total := 0
	for _, b := range m.buckets {
		if err := b.CheckInvariants(); err != nil {
			return err
		}
		total += b.Len()
	}
	if total != m.Len() {
		return errSize{want: total, got: m.Len()}
	}
	return nil
}

type errSize struct{ want, got int }

func (e errSize) Error() string {
	return "hashmap size counter out of sync with buckets"
}

// IntHash mixes an integer key (splitmix64 finalizer); suitable for any
// integer-kind K.
func IntHash[K ~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64](k K) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StringHash is FNV-1a over the key's bytes.
func StringHash[K ~string](k K) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime
	}
	return h
}
