package seqskip

import (
	"math/rand/v2"
	"testing"
)

func TestSeqSkipLevelShrinksAfterDeletes(t *testing.T) {
	l := New[int, int](0, rand.New(rand.NewPCG(7, 7)).Uint64)
	for i := 0; i < 1000; i++ {
		l.Insert(i, i)
	}
	grown := l.level
	for i := 0; i < 1000; i++ {
		l.Delete(i)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.level != 1 {
		t.Fatalf("level = %d after emptying (was %d)", l.level, grown)
	}
	// The list is reusable after emptying.
	if !l.Insert(5, 5) {
		t.Fatal("reinsert failed")
	}
	if v, ok := l.Get(5); !ok || v != 5 {
		t.Fatalf("Get(5) = %d, %t", v, ok)
	}
}

func TestSeqSkipHeightsEmpty(t *testing.T) {
	l := New[int, int](0, nil)
	for _, c := range l.Heights() {
		if c != 0 {
			t.Fatal("empty list has towers")
		}
	}
}

func TestSeqSkipAscendEarlyStop(t *testing.T) {
	l := New[int, int](0, rand.New(rand.NewPCG(1, 1)).Uint64)
	for i := 0; i < 20; i++ {
		l.Insert(i, i)
	}
	n := 0
	// fn returns true for keys 0-4 and false at key 5: six visits total.
	l.Ascend(func(k, _ int) bool { n++; return k < 5 })
	if n != 6 {
		t.Fatalf("visited %d, want 6", n)
	}
}

func TestSeqSkipMaxLevelFloor(t *testing.T) {
	l := New[int, int](1, nil) // clamped to default
	if l.maxLevel < 2 {
		t.Fatalf("maxLevel = %d", l.maxLevel)
	}
}

func TestSeqSkipSearchStepsPositive(t *testing.T) {
	l := New[int, int](0, rand.New(rand.NewPCG(2, 2)).Uint64)
	for i := 0; i < 100; i++ {
		l.Insert(i, i)
	}
	if got := l.SearchSteps(50); got <= 0 {
		t.Fatalf("SearchSteps = %d", got)
	}
}
