package seqskip

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func rngFrom(seed uint64) func() uint64 {
	r := rand.New(rand.NewPCG(seed, seed+1))
	return r.Uint64
}

func TestSeqSkipBasic(t *testing.T) {
	l := New[int, string](0, rngFrom(1))
	if _, ok := l.Get(1); ok {
		t.Fatal("found key in empty list")
	}
	if !l.Insert(1, "one") || !l.Insert(2, "two") {
		t.Fatal("insert failed")
	}
	if l.Insert(1, "uno") {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := l.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %t", v, ok)
	}
	if !l.Delete(1) || l.Delete(1) {
		t.Fatal("delete/double-delete wrong")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSeqSkipAgainstMap(t *testing.T) {
	l := New[int, int](0, rngFrom(2))
	model := map[int]int{}
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 20000; i++ {
		k := int(rng.Uint64N(512))
		switch rng.Uint64N(3) {
		case 0:
			_, in := model[k]
			if got := l.Insert(k, k); got == in {
				t.Fatalf("Insert(%d) = %t, model has = %t", k, got, in)
			}
			model[k] = k
		case 1:
			_, in := model[k]
			if got := l.Delete(k); got != in {
				t.Fatalf("Delete(%d) = %t, model has = %t", k, got, in)
			}
			delete(model, k)
		default:
			_, in := model[k]
			if got := l.Contains(k); got != in {
				t.Fatalf("Contains(%d) = %t, model has = %t", k, got, in)
			}
		}
	}
	if l.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", l.Len(), len(model))
	}
	var keys []int
	l.Ascend(func(k, _ int) bool { keys = append(keys, k); return true })
	if !sort.IntsAreSorted(keys) {
		t.Fatal("not sorted")
	}
}

func TestSeqSkipHeightsGeometric(t *testing.T) {
	l := New[int, int](0, rngFrom(5))
	const n = 50000
	for i := 0; i < n; i++ {
		l.Insert(i, i)
	}
	hist := l.Heights()
	if hist[0] < n*2/5 || hist[0] > n*3/5 {
		t.Fatalf("height-1 towers = %d, want near %d", hist[0], n/2)
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != n {
		t.Fatalf("histogram mass %d != %d", total, n)
	}
}

func TestSeqSkipSearchStepsLogarithmic(t *testing.T) {
	// Average search steps should grow roughly logarithmically: compare
	// n=1024 with n=65536; ratio of average steps should be far below the
	// 64x size ratio (allowing generous slack, below 4x).
	avg := func(n int) float64 {
		l := New[int, int](0, rngFrom(uint64(n)))
		for i := 0; i < n; i++ {
			l.Insert(i, i)
		}
		total := 0
		for i := 0; i < 1000; i++ {
			total += l.SearchSteps(i * (n / 1000))
		}
		return float64(total) / 1000
	}
	small, large := avg(1024), avg(65536)
	if large > small*4 {
		t.Fatalf("search steps scaled superlogarithmically: %f -> %f", small, large)
	}
}

func TestSeqSkipQuickInsertDeleteRoundTrip(t *testing.T) {
	f := func(keys []int16) bool {
		l := New[int16, int](0, rngFrom(99))
		uniq := map[int16]bool{}
		for _, k := range keys {
			want := !uniq[k]
			if l.Insert(k, int(k)) != want {
				return false
			}
			uniq[k] = true
		}
		if l.Len() != len(uniq) {
			return false
		}
		for k := range uniq {
			if !l.Delete(k) {
				return false
			}
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
