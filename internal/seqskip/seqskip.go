// Package seqskip implements W. Pugh's sequential skip list ("Skip Lists:
// A Probabilistic Alternative to Balanced Trees", CACM 1990). It is the
// reference model for differential testing of the concurrent
// implementations and the baseline for the tower-height-distribution
// experiment (E6). It is NOT safe for concurrent use.
package seqskip

import (
	"cmp"
	"math/bits"
	"math/rand/v2"
)

// DefaultMaxLevel matches the concurrent implementations.
const DefaultMaxLevel = 32

// node is one tower in Pugh's representation: a single node with an array
// of forward pointers.
type node[K cmp.Ordered, V any] struct {
	key     K
	val     V
	forward []*node[K, V]
}

// SkipList is Pugh's sequential skip list.
type SkipList[K cmp.Ordered, V any] struct {
	maxLevel int
	level    int // highest level currently in use
	head     *node[K, V]
	rng      func() uint64
	size     int
}

// New returns an empty sequential skip list. rng supplies random bits for
// tower heights; pass nil for the default source.
func New[K cmp.Ordered, V any](maxLevel int, rng func() uint64) *SkipList[K, V] {
	if maxLevel < 2 {
		maxLevel = DefaultMaxLevel
	}
	if rng == nil {
		rng = rand.Uint64
	}
	return &SkipList[K, V]{
		maxLevel: maxLevel,
		level:    1,
		head:     &node[K, V]{forward: make([]*node[K, V], maxLevel)},
		rng:      rng,
	}
}

// Len returns the number of keys.
func (l *SkipList[K, V]) Len() int { return l.size }

func (l *SkipList[K, V]) randomLevel() int {
	h := 1 + bits.TrailingZeros64(^l.rng())
	return min(h, l.maxLevel-1)
}

// findPreds fills update with the rightmost node at each level whose key
// is < k and returns the candidate node (first node with key >= k).
func (l *SkipList[K, V]) findPreds(k K, update []*node[K, V]) *node[K, V] {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && cmp.Less(x.forward[i].key, k) {
			x = x.forward[i]
		}
		update[i] = x
	}
	return x.forward[0]
}

// Get looks up k.
func (l *SkipList[K, V]) Get(k K) (V, bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && cmp.Less(x.forward[i].key, k) {
			x = x.forward[i]
		}
	}
	x = x.forward[0]
	if x != nil && x.key == k {
		return x.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (l *SkipList[K, V]) Contains(k K) bool {
	_, ok := l.Get(k)
	return ok
}

// Insert adds k with value v; false if already present.
func (l *SkipList[K, V]) Insert(k K, v V) bool {
	update := make([]*node[K, V], l.maxLevel)
	x := l.findPreds(k, update)
	if x != nil && x.key == k {
		return false
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			update[i] = l.head
		}
		l.level = lvl
	}
	n := &node[K, V]{key: k, val: v, forward: make([]*node[K, V], lvl)}
	for i := 0; i < lvl; i++ {
		n.forward[i] = update[i].forward[i]
		update[i].forward[i] = n
	}
	l.size++
	return true
}

// Delete removes k; false if absent.
func (l *SkipList[K, V]) Delete(k K) bool {
	update := make([]*node[K, V], l.maxLevel)
	x := l.findPreds(k, update)
	if x == nil || x.key != k {
		return false
	}
	for i := 0; i < len(x.forward); i++ {
		if update[i].forward[i] == x {
			update[i].forward[i] = x.forward[i]
		}
	}
	for l.level > 1 && l.head.forward[l.level-1] == nil {
		l.level--
	}
	l.size--
	return true
}

// Ascend iterates keys in ascending order.
func (l *SkipList[K, V]) Ascend(fn func(k K, v V) bool) {
	for x := l.head.forward[0]; x != nil; x = x.forward[0] {
		if !fn(x.key, x.val) {
			return
		}
	}
}

// Heights returns the histogram of tower heights: Heights()[h] is the
// number of towers of height h+1. Used by E6 as the sequential reference
// distribution.
func (l *SkipList[K, V]) Heights() []int {
	hist := make([]int, l.maxLevel)
	for x := l.head.forward[0]; x != nil; x = x.forward[0] {
		hist[len(x.forward)-1]++
	}
	return hist
}

// SearchSteps counts the comparisons a search for k performs; the E5
// experiment uses it to verify O(log n) scaling.
func (l *SkipList[K, V]) SearchSteps(k K) int {
	steps := 0
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && cmp.Less(x.forward[i].key, k) {
			x = x.forward[i]
			steps++
		}
		steps++
	}
	return steps
}
