// Package stats provides the small statistical toolkit the experiment
// harness needs: summaries, histograms, and least-squares fits for
// verifying the linear and logarithmic cost shapes the paper claims.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	P50, P90, P99  float64
	Total          float64
	sortedSnapshot []float64
}

// Summarize computes a Summary of xs. It copies xs and leaves it
// unmodified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum, sq float64
	for _, x := range s {
		sum += x
		sq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:     len(s),
		Mean:  mean,
		Std:   math.Sqrt(variance),
		Min:   s[0],
		Max:   s[len(s)-1],
		P50:   quantile(s, 0.50),
		P90:   quantile(s, 0.90),
		P99:   quantile(s, 0.99),
		Total: sum,

		sortedSnapshot: s,
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of the summarized sample.
func (s Summary) Quantile(q float64) float64 { return quantile(s.sortedSnapshot, q) }

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// LinearFit is a least-squares fit y = Slope*x + Intercept with the
// coefficient of determination R2.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLinear fits y = a*x + b by least squares. It requires at least two
// points with distinct x values; otherwise it returns a zero fit.
func FitLinear(xs, ys []float64) LinearFit {
	n := float64(len(xs))
	if len(xs) < 2 || len(xs) != len(ys) {
		return LinearFit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R^2 = 1 - SS_res/SS_tot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		r := ys[i] - (slope*xs[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// FitLogarithmic fits y = a*log2(x) + b and returns it as a LinearFit over
// log2(x). xs must be positive.
func FitLogarithmic(xs, ys []float64) LinearFit {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		lx[i] = math.Log2(x)
	}
	return FitLinear(lx, ys)
}

// Histogram is a set of integer-labelled buckets (for tower heights,
// chain lengths, and similar small-integer observations).
type Histogram struct {
	Counts []int
}

// NewHistogram returns a histogram with the given number of buckets.
func NewHistogram(buckets int) *Histogram {
	return &Histogram{Counts: make([]int, buckets)}
}

// Observe records v, clamping to the last bucket.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Counts) {
		v = len(h.Counts) - 1
	}
	h.Counts[v]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mean returns the mean bucket index.
func (h *Histogram) Mean() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.Counts {
		sum += float64(i) * float64(c)
	}
	return sum / float64(t)
}

// Render draws the histogram as rows of "index count bar", skipping empty
// trailing buckets.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	last := 0
	for i, c := range h.Counts {
		if c > 0 {
			last = i
		}
	}
	total := h.Total()
	fmt.Fprintf(&b, "%s (n=%d, mean=%.2f)\n", label, total, h.Mean())
	for i := 0; i <= last; i++ {
		c := h.Counts[i]
		bar := ""
		if total > 0 {
			bar = strings.Repeat("#", c*50/total)
		}
		fmt.Fprintf(&b, "%4d %8d %s\n", i, c, bar)
	}
	return b.String()
}

// GeometricExpectation returns the expected histogram mass at height h
// (1-based) for n geometric(1/2) draws: n * 2^-h. Used by E6 to compare
// measured tower heights with the ideal distribution.
func GeometricExpectation(n, h int) float64 {
	return float64(n) * math.Pow(0.5, float64(h))
}
