package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %f", s.Std)
	}
	if s.Total != 15 {
		t.Fatalf("total = %f", s.Total)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary: %+v", got)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40})
	if got := s.Quantile(0); got != 10 {
		t.Fatalf("q0 = %f", got)
	}
	if got := s.Quantile(1); got != 40 {
		t.Fatalf("q1 = %f", got)
	}
	if got := s.Quantile(0.5); got != 25 {
		t.Fatalf("q0.5 = %f", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLinear(xs, ys)
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-3) > 1e-9 || f.R2 < 0.999999 {
		t.Fatalf("fit = %+v", f)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 3*x+10+rng.Float64()*2-1)
	}
	f := FitLinear(xs, ys)
	if math.Abs(f.Slope-3) > 0.05 || f.R2 < 0.99 {
		t.Fatalf("fit = %+v", f)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if f := FitLinear([]float64{1}, []float64{1}); f.Slope != 0 {
		t.Fatalf("single-point fit = %+v", f)
	}
	if f := FitLinear([]float64{2, 2}, []float64{1, 5}); f.Slope != 0 {
		t.Fatalf("vertical fit = %+v", f)
	}
}

func TestFitLogarithmic(t *testing.T) {
	var xs, ys []float64
	for _, n := range []float64{16, 64, 256, 1024, 4096} {
		xs = append(xs, n)
		ys = append(ys, 7*math.Log2(n)+2)
	}
	f := FitLogarithmic(xs, ys)
	if math.Abs(f.Slope-7) > 1e-9 || f.R2 < 0.999999 {
		t.Fatalf("fit = %+v", f)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{1, 1, 2, 100, -5} {
		h.Observe(v)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[7] != 1 { // clamped overflow
		t.Fatalf("overflow not clamped: %v", h.Counts)
	}
	if h.Counts[0] != 1 { // clamped negative
		t.Fatalf("negative not clamped: %v", h.Counts)
	}
	out := h.Render("test")
	if !strings.Contains(out, "test (n=5") {
		t.Fatalf("render: %q", out)
	}
}

func TestGeometricExpectation(t *testing.T) {
	if got := GeometricExpectation(1000, 1); got != 500 {
		t.Fatalf("h=1: %f", got)
	}
	if got := GeometricExpectation(1000, 3); got != 125 {
		t.Fatalf("h=3: %f", got)
	}
}

func TestSummaryQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
