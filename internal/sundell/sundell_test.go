package sundell

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/instrument"
)

func testRNG(seed uint64) func() uint64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Uint64()
	}
}

func TestSundellSequential(t *testing.T) {
	l := New[int, int](0, testRNG(1))
	const n = 800
	for i := 0; i < n; i++ {
		if !l.Insert(nil, i, i*2) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if l.Insert(nil, 5, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if got := l.Len(); got != n {
		t.Fatalf("Len = %d", got)
	}
	for i := 0; i < n; i++ {
		v, ok := l.Get(nil, i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d, %t", i, v, ok)
		}
	}
	for i := 0; i < n; i += 3 {
		if !l.Delete(nil, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := l.Get(nil, i)
		if want := i%3 != 0; ok != want {
			t.Fatalf("Get(%d) present=%t want %t", i, ok, want)
		}
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if !sort.IntsAreSorted(got) {
		t.Fatal("not sorted")
	}
}

func TestSundellReinsert(t *testing.T) {
	l := New[int, int](0, testRNG(2))
	for round := 0; round < 40; round++ {
		if !l.Insert(nil, 9, round) {
			t.Fatalf("round %d: insert failed", round)
		}
		if v, ok := l.Get(nil, 9); !ok || v != round {
			t.Fatalf("round %d: get = %d,%t", round, v, ok)
		}
		if !l.Delete(nil, 9) {
			t.Fatalf("round %d: delete failed", round)
		}
		if _, ok := l.Get(nil, 9); ok {
			t.Fatalf("round %d: key survived", round)
		}
	}
}

func TestSundellDeleteAbsent(t *testing.T) {
	l := New[int, int](0, testRNG(3))
	if l.Delete(nil, 1) {
		t.Fatal("deleted from empty")
	}
	l.Insert(nil, 1, 1)
	if l.Delete(nil, 2) {
		t.Fatal("deleted absent key")
	}
	if !l.Delete(nil, 1) || l.Delete(nil, 1) {
		t.Fatal("delete/double-delete wrong")
	}
}

func TestSundellConcurrentStress(t *testing.T) {
	l := New[int, int](0, testRNG(4))
	const workers, ops, keyRange = 8, 2000, 48
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 15))
			p := &instrument.Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Contains(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := map[int]bool{}
	count := 0
	l.Ascend(func(k, _ int) bool {
		if seen[k] {
			t.Errorf("duplicate key %d", k)
		}
		seen[k] = true
		count++
		return true
	})
	if got := l.Len(); got != count {
		t.Fatalf("Len = %d, traversal = %d", got, count)
	}
}

func TestSundellAccounting(t *testing.T) {
	for round := 0; round < 8; round++ {
		l := New[int, int](0, testRNG(uint64(round+10)))
		const workers, ops, keyRange = 8, 1200, 32
		var insWins, delWins atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(w), uint64(round)))
				for i := 0; i < ops; i++ {
					k := int(rng.Uint64N(keyRange))
					if rng.Uint64N(2) == 0 {
						if l.Insert(nil, k, k) {
							insWins.Add(1)
						}
					} else {
						if l.Delete(nil, k) {
							delWins.Add(1)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		count := 0
		l.Ascend(func(_, _ int) bool { count++; return true })
		if net := int(insWins.Load() - delWins.Load()); net != count || l.Len() != count {
			t.Fatalf("round %d: Len=%d traversal=%d net=%d", round, l.Len(), count, net)
		}
	}
}

func TestSundellDeleteContention(t *testing.T) {
	const workers, keys = 8, 100
	for round := 0; round < 5; round++ {
		l := New[int, int](0, testRNG(uint64(round+20)))
		for k := 0; k < keys; k++ {
			l.Insert(nil, k, k)
		}
		var wins [workers]int
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := &instrument.Proc{ID: w}
				for k := 0; k < keys; k++ {
					if l.Delete(p, k) {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Fatalf("round %d: %d wins for %d keys", round, total, keys)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d", round, got)
		}
	}
}

func TestSundellTallTowerChurn(t *testing.T) {
	l := New[int, int](8, func() uint64 { return ^uint64(0) }) // all towers height 7
	const workers, keys, rounds = 8, 16, 1200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &instrument.Proc{ID: w}
			for i := 0; i < rounds; i++ {
				k := (i + w) % keys
				if w%2 == 0 {
					l.Insert(p, k, k)
				} else {
					l.Delete(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	l.Ascend(func(_, _ int) bool { count++; return true })
	if l.Len() != count {
		t.Fatalf("Len = %d, traversal = %d", l.Len(), count)
	}
}
