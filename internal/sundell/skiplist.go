// Package sundell implements a lock-free skip list in the style of
// Sundell and Tsigas ("Scalable and Lock-Free Concurrent Dictionaries",
// SAC 2004), the third design the paper compares against in Sections 2
// and 4. Its distinguishing features, as the paper describes them:
//
//   - individual levels use marking plus backlinks but no flag bits, so a
//     backlink may end up pointing at an already-marked node (recovery
//     chains can grow, unlike the paper's flagged design), and
//   - a search that detects a marked node in a tower it is traversing
//     marks ALL the nodes of that tower (tower marking); subsequent
//     searches physically delete marked nodes they encounter. This is
//     their alternative to the paper's rule of eagerly deleting
//     superfluous nodes, preventing repeated traversals of one backlink
//     chain.
//
// The representation mirrors internal/core (towers of nodes, Figure 6)
// so step counts are comparable; interior nodes additionally carry up
// pointers so that tower marking can climb from the root.
package sundell

import (
	"cmp"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/instrument"
)

type nodeKind int8

const (
	kindInterior nodeKind = iota
	kindHead
	kindTail
)

// DefaultMaxLevel matches the other skip lists in this repository.
const DefaultMaxLevel = 32

// succ is the per-level composite successor field: (right, mark).
type succ[K cmp.Ordered, V any] struct {
	right  *Node[K, V]
	marked bool
}

// Node is one skip-list node (one level of one tower).
type Node[K cmp.Ordered, V any] struct {
	key   K
	val   V
	kind  nodeKind
	level int

	succ     atomic.Pointer[succ[K, V]]
	backlink atomic.Pointer[Node[K, V]]
	up       atomic.Pointer[Node[K, V]] // set as the tower grows

	down      *Node[K, V]
	towerRoot *Node[K, V]
	headUp    *Node[K, V] // static up link inside the head/tail towers
}

func (n *Node[K, V]) loadSucc() *succ[K, V] { return n.succ.Load() }

func (n *Node[K, V]) marked() bool {
	s := n.succ.Load()
	return s != nil && s.marked
}

func (n *Node[K, V]) right() *Node[K, V] { return n.succ.Load().right }

func (n *Node[K, V]) isRoot() bool { return n.towerRoot == n }

func (n *Node[K, V]) superfluous() bool {
	return n.kind == kindInterior && n.towerRoot.marked()
}

func (n *Node[K, V]) compareKey(k K) int {
	switch n.kind {
	case kindHead:
		return -1
	case kindTail:
		return 1
	default:
		return cmp.Compare(n.key, k)
	}
}

func (n *Node[K, V]) keyLeq(k K, strict bool) bool {
	c := n.compareKey(k)
	if strict {
		return c < 0
	}
	return c <= 0
}

// SkipList is the Sundell-Tsigas-style lock-free skip list.
type SkipList[K cmp.Ordered, V any] struct {
	maxLevel int
	heads    []*Node[K, V]
	tails    []*Node[K, V]
	rng      func() uint64
	size     atomic.Int64
}

// New returns an empty skip list. rng supplies random bits for tower
// heights (nil for the default source).
func New[K cmp.Ordered, V any](maxLevel int, rng func() uint64) *SkipList[K, V] {
	if maxLevel < 2 {
		maxLevel = DefaultMaxLevel
	}
	if rng == nil {
		rng = rand.Uint64
	}
	l := &SkipList[K, V]{
		maxLevel: maxLevel,
		heads:    make([]*Node[K, V], maxLevel),
		tails:    make([]*Node[K, V], maxLevel),
		rng:      rng,
	}
	for i := 0; i < maxLevel; i++ {
		l.heads[i] = &Node[K, V]{kind: kindHead, level: i + 1}
		l.tails[i] = &Node[K, V]{kind: kindTail, level: i + 1}
	}
	for i := 0; i < maxLevel; i++ {
		h, t := l.heads[i], l.tails[i]
		h.towerRoot, t.towerRoot = l.heads[0], l.tails[0]
		h.succ.Store(&succ[K, V]{right: t})
		t.succ.Store(&succ[K, V]{right: nil})
		if i > 0 {
			h.down, t.down = l.heads[i-1], l.tails[i-1]
		}
		if i < maxLevel-1 {
			h.headUp, t.headUp = l.heads[i+1], l.tails[i+1]
		} else {
			h.headUp, t.headUp = h, t
		}
	}
	return l
}

// Len returns the number of keys (exact when quiescent).
func (l *SkipList[K, V]) Len() int { return int(l.size.Load()) }

// MaxLevel returns the head-tower height.
func (l *SkipList[K, V]) MaxLevel() int { return l.maxLevel }

func (l *SkipList[K, V]) randomHeight() int {
	h := 1 + bits.TrailingZeros64(^l.rng())
	return min(h, l.maxLevel-1)
}

// markTower marks every node of root's tower from the top down - the
// Sundell-Tsigas response to detecting a deleted tower mid-traversal.
// Climbing uses the up pointers published during insertion.
func (l *SkipList[K, V]) markTower(p *instrument.Proc, root *Node[K, V]) {
	st := p.StatsOrNil()
	// Collect the tower bottom-up, then mark top-down.
	var tower []*Node[K, V]
	for n := root; n != nil; n = n.up.Load() {
		tower = append(tower, n)
	}
	for i := len(tower) - 1; i >= 0; i-- {
		n := tower[i]
		for {
			s := n.loadSucc()
			if s.marked {
				break
			}
			ok := n.succ.CompareAndSwap(s, &succ[K, V]{right: s.right, marked: true})
			st.IncCAS(ok)
			if ok {
				if n.isRoot() {
					l.size.Add(-1)
				}
				break
			}
		}
	}
}

// recover walks backlinks from n to the first unmarked node. Chains may
// pass through nodes that were marked after their backlink was set - the
// behaviour the paper's flag bits exist to prevent.
func (l *SkipList[K, V]) recover(p *instrument.Proc, n *Node[K, V], level int) *Node[K, V] {
	st := p.StatsOrNil()
	for n.marked() {
		b := n.backlink.Load()
		if b == nil {
			// Marked before its backlink was stored (tower marking does
			// this): fall back to the level's head.
			st.IncRestart()
			p.At(instrument.PtRestart)
			return l.heads[level-1]
		}
		st.IncBacklink()
		p.At(instrument.PtBacklinkStep)
		n = b
	}
	return n
}

// searchRight traverses one level rightward from curr. Marked successors
// are physically unlinked; a superfluous tower encountered mid-traversal
// has its whole tower marked first (the Sundell-Tsigas rule).
func (l *SkipList[K, V]) searchRight(p *instrument.Proc, k K, curr *Node[K, V], level int, strict bool) (*Node[K, V], *Node[K, V]) {
	st := p.StatsOrNil()
	if curr.marked() {
		curr = l.recover(p, curr, level)
	}
	next := curr.right()
	for next.keyLeq(k, strict) {
		nextSucc := next.loadSucc()
		if !nextSucc.marked && next.superfluous() {
			// Tower deleted but this level not yet marked: mark the whole
			// tower, then fall through to the unlink path.
			l.markTower(p, next.towerRoot)
			nextSucc = next.loadSucc()
		}
		if nextSucc.marked {
			currSucc := curr.loadSucc()
			if currSucc.marked {
				curr = l.recover(p, curr, level)
			} else if currSucc.right == next {
				p.At(instrument.PtBeforePhysicalCAS)
				ok := curr.succ.CompareAndSwap(currSucc, &succ[K, V]{right: nextSucc.right})
				st.IncCAS(ok)
			}
			next = curr.right()
			st.IncNext()
			continue
		}
		if next.keyLeq(k, strict) {
			curr = next
			st.IncCurr()
			next = curr.right()
			st.IncNext()
		}
	}
	p.At(instrument.PtSearchDone)
	return curr, next
}

// findStart returns the head node to begin a descending search from.
func (l *SkipList[K, V]) findStart(v int) (*Node[K, V], int) {
	curr := l.heads[0]
	lv := 1
	for {
		up := curr.headUp
		if up == curr {
			break
		}
		if lv >= v && up.right().kind == kindTail {
			break
		}
		curr = up
		lv++
	}
	return curr, lv
}

// searchToLevel locates the (curr, next) pair around k on level v.
func (l *SkipList[K, V]) searchToLevel(p *instrument.Proc, k K, v int, strict bool) (*Node[K, V], *Node[K, V]) {
	curr, lv := l.findStart(v)
	for lv > v {
		curr, _ = l.searchRight(p, k, curr, lv, strict)
		curr = curr.down
		lv--
	}
	return l.searchRight(p, k, curr, v, strict)
}

// Get looks up k.
func (l *SkipList[K, V]) Get(p *instrument.Proc, k K) (V, bool) {
	curr, _ := l.searchToLevel(p, k, 1, false)
	if curr.compareKey(k) == 0 && !curr.marked() {
		return curr.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (l *SkipList[K, V]) Contains(p *instrument.Proc, k K) bool {
	_, ok := l.Get(p, k)
	return ok
}

// insertNode inserts newNode between prev and next on its level using the
// no-flag protocol; recovery walks backlinks.
func (l *SkipList[K, V]) insertNode(p *instrument.Proc, newNode, prev, next *Node[K, V], level int) (*Node[K, V], bool) {
	st := p.StatsOrNil()
	if prev.compareKey(newNode.key) == 0 && !prev.marked() {
		return prev, false
	}
	for {
		prevSucc := prev.loadSucc()
		if !prevSucc.marked && prevSucc.right == next {
			newNode.succ.Store(&succ[K, V]{right: next})
			p.At(instrument.PtBeforeInsertCAS)
			ok := prev.succ.CompareAndSwap(prevSucc, &succ[K, V]{right: newNode})
			st.IncCAS(ok)
			if ok {
				if newNode.isRoot() {
					l.size.Add(1)
				}
				return prev, true
			}
			p.At(instrument.PtAfterInsertCASFail)
		} else {
			st.IncCAS(false)
		}
		if prev.marked() {
			prev = l.recover(p, prev, level)
		}
		prev, next = l.searchRight(p, newNode.key, prev, level, false)
		if prev.compareKey(newNode.key) == 0 && !prev.marked() {
			return prev, false
		}
	}
}

// Insert adds k with value v, building the tower bottom-up.
func (l *SkipList[K, V]) Insert(p *instrument.Proc, k K, v V) bool {
	prev, next := l.searchToLevel(p, k, 1, false)
	if prev.compareKey(k) == 0 && !prev.marked() {
		return false
	}
	root := &Node[K, V]{key: k, val: v, level: 1}
	root.towerRoot = root
	height := l.randomHeight()
	newNode := root
	lv := 1
	for {
		var inserted bool
		prev, inserted = l.insertNode(p, newNode, prev, next, lv)
		if !inserted && lv == 1 {
			return false
		}
		if inserted && lv > 1 {
			// Publish the up pointer so tower marking can reach this node.
			newNode.down.up.Store(newNode)
		}
		if root.marked() {
			if inserted && newNode != root {
				// Our tower became superfluous: mark what we just added
				// and let searches unlink it.
				l.markTower(p, root)
			}
			return true
		}
		if !inserted {
			prev, next = l.searchToLevel(p, k, lv, false)
			continue
		}
		lv++
		if lv > height {
			return true
		}
		newNode = &Node[K, V]{key: k, level: lv, down: newNode, towerRoot: root}
		prev, next = l.searchToLevel(p, k, lv, false)
	}
}

// Delete removes k: mark the root (linearization), set its backlink for
// recovery, mark the rest of the tower, then sweep the upper levels.
func (l *SkipList[K, V]) Delete(p *instrument.Proc, k K) bool {
	st := p.StatsOrNil()
	prev, delNode := l.searchToLevel(p, k, 1, true)
	for {
		if delNode.compareKey(k) != 0 {
			return false
		}
		s := delNode.loadSucc()
		if s.marked {
			return false // a concurrent deletion won
		}
		delNode.backlink.Store(prev)
		p.At(instrument.PtBeforeMarkCAS)
		ok := delNode.succ.CompareAndSwap(s, &succ[K, V]{right: s.right, marked: true})
		st.IncCAS(ok)
		if ok {
			l.size.Add(-1)
			break
		}
		if prev.marked() {
			prev = l.recover(p, prev, 1)
		}
		prev, delNode = l.searchRight(p, k, prev, 1, true)
	}
	// Tower teardown: mark every level, then let a sweep unlink them.
	l.markTower(p, delNode)
	l.searchToLevel(p, k, 2, false)
	l.searchToLevel(p, k, 1, true) // unlink the root as well
	return true
}

// Ascend iterates keys in ascending order on level 1.
func (l *SkipList[K, V]) Ascend(fn func(k K, v V) bool) {
	n := l.heads[0].right()
	for n.kind != kindTail {
		if !n.marked() {
			if !fn(n.key, n.val) {
				return
			}
		}
		n = n.right()
	}
}
