package sundell

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
)

func BenchmarkSundellSearch(b *testing.B) {
	for _, n := range []int{1024, 65536} {
		b.Run(itoa(n), func(b *testing.B) {
			l := New[int, int](0, nil)
			for k := 0; k < n; k++ {
				l.Insert(nil, k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Contains(nil, (i*7919)%n)
			}
		})
	}
}

func BenchmarkSundellInsertDelete(b *testing.B) {
	l := New[int, int](0, nil)
	const n = 65536
	for k := 0; k < n; k += 2 {
		l.Insert(nil, k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := (i*2 + 1) % n
		l.Insert(nil, k, k)
		l.Delete(nil, k)
	}
}

func BenchmarkSundellMixedParallel(b *testing.B) {
	l := New[int, int](0, nil)
	const keyRange = 4096
	for k := 0; k < keyRange; k += 2 {
		l.Insert(nil, k, k)
	}
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seed.Add(1)), 4))
		for pb.Next() {
			k := int(rng.Uint64N(keyRange))
			switch rng.Uint64N(10) {
			case 0:
				l.Insert(nil, k, k)
			case 1:
				l.Delete(nil, k)
			default:
				l.Contains(nil, k)
			}
		}
	})
}

func itoa(n int) string {
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if i == len(buf) {
		return "0"
	}
	return string(buf[i:])
}
