// Package snapshot writes and restores point-in-time images of the
// ordered map, taken concurrently with writers.
//
// A snapshot is *fuzzy*, in exactly the sense of the source paper's
// weak-consistency iteration guarantee (DESIGN.md §13): Write streams a
// live Ascend while mutators proceed, so
//
//   - every key that is present for the whole scan appears with the
//     value it held (values are immutable once inserted);
//   - a key inserted or deleted concurrently with the scan may appear
//     in either state (present or absent);
//   - no key that was never in the map can appear (no phantoms).
//
// The image is stamped with the WAL LSN current when the scan started.
// Because the server logs a mutation only after it applied, every
// record with seq ≤ that LSN is either in the image or superseded by a
// later logged mutation of the same key, so recovery — restore newest
// valid snapshot, then replay the WAL tail with seq > its LSN under
// insert-if-absent/delete semantics — converges per key.
//
// On-disk format (all integers little-endian):
//
//	header:  8B magic "LFLSNAP1" | 8B wal LSN
//	record:  1B tag=1 | 8B key | 4B value length | value bytes
//	footer:  1B tag=0 | 4B CRC32-C of every prior byte in the file
//
// Write lands atomically: tmp file → fsync → rename → directory fsync.
// Restore walks snapshots newest-first and falls back to an older one
// when the newest fails its CRC (torn or bit-rotted image).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

const (
	magic      = "LFLSNAP1"
	headerLen  = len(magic) + 8
	tagRecord  = 1
	tagEnd     = 0
	maxValLen  = 1 << 26 // parse guard against corrupt length fields
	filePrefix = "snap-"
	fileSuffix = ".snap"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot reports that the directory holds no valid snapshot.
var ErrNoSnapshot = errors.New("snapshot: no valid snapshot found")

// Write streams ascend into a new snapshot file in dir, stamped with
// lsn (the WAL LSN current when the caller started the scan). It
// returns the number of keys written and the file path. The scan runs
// concurrently with writers; see the package comment for the fuzzy
// guarantee. tel may be nil.
func Write(dir string, lsn uint64, ascend func(fn func(key int64, val string) bool), tel *telemetry.Recorder) (keys int, path string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, "", err
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%016d%s", filePrefix, lsn, fileSuffix))
	tmp, err := os.CreateTemp(dir, filePrefix+"tmp-*")
	if err != nil {
		return 0, "", err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := &crcWriter{w: bufio.NewWriterSize(tmp, 1<<16)}
	var scratch [13]byte
	copy(scratch[:], magic)
	// header = 8B magic + 8B lsn; scratch is reused for records after.
	if err = w.write(scratch[:len(magic)]); err != nil {
		return 0, "", err
	}
	var lsnBuf [8]byte
	binary.LittleEndian.PutUint64(lsnBuf[:], lsn)
	if err = w.write(lsnBuf[:]); err != nil {
		return 0, "", err
	}

	ascend(func(key int64, val string) bool {
		scratch[0] = tagRecord
		binary.LittleEndian.PutUint64(scratch[1:], uint64(key))
		binary.LittleEndian.PutUint32(scratch[9:], uint32(len(val)))
		if err = w.write(scratch[:13]); err != nil {
			return false
		}
		if err = w.writeString(val); err != nil {
			return false
		}
		keys++
		return true
	})
	if err != nil {
		return 0, "", err
	}

	scratch[0] = tagEnd
	if err = w.write(scratch[:1]); err != nil {
		return 0, "", err
	}
	// The CRC covers everything before it, terminator tag included; it
	// is written raw (not folded into itself).
	binary.LittleEndian.PutUint32(scratch[:4], w.sum)
	if _, err = w.w.Write(scratch[:4]); err != nil {
		return 0, "", err
	}
	if err = w.w.Flush(); err != nil {
		return 0, "", err
	}
	if err = tmp.Sync(); err != nil {
		return 0, "", err
	}
	if err = tmp.Close(); err != nil {
		return 0, "", err
	}
	if err = os.Rename(tmp.Name(), final); err != nil {
		return 0, "", err
	}
	if err = wal.SyncDir(dir); err != nil {
		return 0, "", err
	}
	if tel != nil {
		tel.AddCounter(instrument.CtrSnapshotKeys, uint64(keys))
	}
	return keys, final, nil
}

// Restore loads the newest valid snapshot in dir, calling insert for
// every record, and returns the WAL LSN it was stamped with plus the
// key count. A snapshot that fails validation is skipped in favor of
// the next older one. ErrNoSnapshot means dir holds no usable image
// (including the empty/missing-directory case — a cold start).
func Restore(dir string, insert func(key int64, val string) bool) (lsn uint64, keys int, err error) {
	files, err := list(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, ErrNoSnapshot
		}
		return 0, 0, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		lsn, keys, err = load(files[i].path, insert)
		if err == nil {
			return lsn, keys, nil
		}
		// Fall back to the next older image. load validates the whole
		// file before delivering a single record, so a torn or rotted
		// newest image leaves the caller's map untouched.
	}
	return 0, 0, ErrNoSnapshot
}

// Latest returns the LSN stamp of the newest snapshot file in dir
// without loading it, or 0 when there is none.
func Latest(dir string) uint64 {
	files, err := list(dir)
	if err != nil || len(files) == 0 {
		return 0
	}
	return files[len(files)-1].lsn
}

// Oldest returns the LSN stamp of the oldest snapshot file in dir
// without loading it, or 0 when there is none. The WAL may be pruned
// only up to this stamp: Restore falls back to older images when the
// newest fails its CRC, and a retained image without its replay tail
// would recover with a silent data gap.
func Oldest(dir string) uint64 {
	files, err := list(dir)
	if err != nil || len(files) == 0 {
		return 0
	}
	return files[0].lsn
}

// Prune removes every snapshot older than the newest keep images.
func Prune(dir string, keep int) error {
	files, err := list(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if keep < 1 {
		keep = 1
	}
	for i := 0; i < len(files)-keep; i++ {
		if err := os.Remove(files[i].path); err != nil {
			return err
		}
	}
	return nil
}

// load reads one snapshot file, verifying magic, structure, and the
// footer CRC over the whole image *before* delivering any record — a
// rejected image leaves the caller's map untouched.
func load(path string, insert func(key int64, val string) bool) (lsn uint64, keys int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(data) < headerLen+1+4 {
		return 0, 0, fmt.Errorf("snapshot %s: short file (%d bytes)", path, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return 0, 0, fmt.Errorf("snapshot %s: bad magic", path)
	}
	lsn = binary.LittleEndian.Uint64(data[len(magic):headerLen])
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(footer), crc32.Checksum(body, crcTable); got != want {
		return 0, 0, fmt.Errorf("snapshot %s: CRC mismatch: file %08x computed %08x", path, got, want)
	}

	off := headerLen
	for {
		if off >= len(body) {
			return 0, 0, fmt.Errorf("snapshot %s: missing terminator", path)
		}
		tag := body[off]
		off++
		if tag == tagEnd {
			if off != len(body) {
				return 0, 0, fmt.Errorf("snapshot %s: %d trailing bytes after terminator", path, len(body)-off)
			}
			break
		}
		if tag != tagRecord {
			return 0, 0, fmt.Errorf("snapshot %s: bad record tag %d at offset %d", path, tag, off-1)
		}
		if off+12 > len(body) {
			return 0, 0, fmt.Errorf("snapshot %s: truncated record at offset %d", path, off-1)
		}
		key := int64(binary.LittleEndian.Uint64(body[off:]))
		vlen := binary.LittleEndian.Uint32(body[off+8:])
		off += 12
		if vlen > maxValLen || off+int(vlen) > len(body) {
			return 0, 0, fmt.Errorf("snapshot %s: bad value length %d at offset %d", path, vlen, off-4)
		}
		if insert(key, string(body[off:off+int(vlen)])) {
			keys++
		}
		off += int(vlen)
	}
	return lsn, keys, nil
}

type snapFile struct {
	path string
	lsn  uint64
}

// list returns dir's snapshot files sorted by LSN stamp, oldest first.
func list(dir string) ([]snapFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []snapFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(name[len(filePrefix):len(name)-len(fileSuffix)], 10, 64)
		if err != nil {
			continue // tmp files and strangers
		}
		out = append(out, snapFile{path: filepath.Join(dir, name), lsn: lsn})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lsn < out[j].lsn })
	return out, nil
}

// crcWriter folds every written byte into a running CRC32-C.
type crcWriter struct {
	w   *bufio.Writer
	sum uint32
}

func (c *crcWriter) write(p []byte) error {
	c.sum = crc32.Update(c.sum, crcTable, p)
	_, err := c.w.Write(p)
	return err
}

func (c *crcWriter) writeString(s string) error {
	c.sum = crc32.Update(c.sum, crcTable, []byte(s))
	_, err := c.w.WriteString(s)
	return err
}
