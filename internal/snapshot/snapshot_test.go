package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/lockfree"
)

func ascendOf(s *lockfree.SkipList[int64, string]) func(fn func(key int64, val string) bool) {
	return s.Ascend
}

func restoreMap(t *testing.T, dir string) (uint64, map[int64]string) {
	t.Helper()
	got := map[int64]string{}
	lsn, keys, err := Restore(dir, func(k int64, v string) bool {
		if _, dup := got[k]; dup {
			return false
		}
		got[k] = v
		return true
	})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if keys != len(got) {
		t.Fatalf("Restore reported %d keys, delivered %d", keys, len(got))
	}
	return lsn, got
}

func TestWriteRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := lockfree.NewSkipList[int64, string]()
	want := map[int64]string{}
	for i := int64(0); i < 500; i++ {
		v := fmt.Sprintf("val-%d", i)
		s.Insert(i*3, v)
		want[i*3] = v
	}
	// The empty value and extreme keys must round-trip too.
	s.Insert(-1<<40, "")
	want[-1<<40] = ""

	keys, path, err := Write(dir, 4242, ascendOf(s), nil)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if keys != len(want) {
		t.Fatalf("Write reported %d keys, want %d", keys, len(want))
	}
	if filepath.Base(path) != "snap-0000000000004242.snap" {
		t.Fatalf("unexpected snapshot name %q", path)
	}
	lsn, got := restoreMap(t, dir)
	if lsn != 4242 {
		t.Fatalf("restored LSN %d, want 4242", lsn)
	}
	if len(got) != len(want) {
		t.Fatalf("restored %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d restored as %q, want %q", k, got[k], v)
		}
	}
	if l := Latest(dir); l != 4242 {
		t.Fatalf("Latest = %d, want 4242", l)
	}
}

// TestFuzzySnapshotSemantics pins the documented fuzzy guarantee while
// inserts and deletes run concurrently with Write: stable keys always
// appear with their value, in-flight keys appear in either state, and
// nothing else appears.
func TestFuzzySnapshotSemantics(t *testing.T) {
	dir := t.TempDir()
	s := lockfree.NewSkipList[int64, string]()

	// Stable keys: inserted before the scan, never touched during it.
	const stableN = 2000
	stable := map[int64]string{}
	for i := int64(0); i < stableN; i++ {
		k := i * 2 // even keys are stable
		v := fmt.Sprintf("stable-%d", k)
		s.Insert(k, v)
		stable[k] = v
	}

	// Churners: odd keys flickering in and out for the whole scan.
	const churnN = 1000
	var stopChurn atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stopChurn.Load(); i++ {
				k := int64(((w*churnN+i)%(4*churnN))*2 + 1)
				if i%2 == 0 {
					s.Insert(k, fmt.Sprintf("flux-%d", k))
				} else {
					s.Delete(k)
				}
			}
		}(w)
	}

	keys, _, err := Write(dir, 77, ascendOf(s), nil)
	stopChurn.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("Write under churn: %v", err)
	}
	if keys < stableN {
		t.Fatalf("snapshot holds %d keys, fewer than the %d stable keys", keys, stableN)
	}

	lsn, got := restoreMap(t, dir)
	if lsn != 77 {
		t.Fatalf("restored LSN %d, want 77", lsn)
	}
	for k, v := range stable {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("stable key %d missing from fuzzy snapshot", k)
		}
		if gv != v {
			t.Fatalf("stable key %d restored as %q, want %q", k, gv, v)
		}
	}
	for k, v := range got {
		if k%2 == 0 {
			continue // stable, checked above
		}
		// In-flight key: allowed in either state, but a present one must
		// carry the value a churner actually inserted — no phantoms, no
		// mangled values.
		if want := fmt.Sprintf("flux-%d", k); v != want {
			t.Fatalf("in-flight key %d has phantom value %q", k, v)
		}
		if k < 0 || k >= 8*churnN {
			t.Fatalf("phantom key %d was never inserted", k)
		}
	}
}

func TestRestoreFallsBackPastCorruptNewest(t *testing.T) {
	for _, damage := range []string{"bitflip", "truncate"} {
		t.Run(damage, func(t *testing.T) {
			dir := t.TempDir()
			s := lockfree.NewSkipList[int64, string]()
			s.Insert(1, "old")
			if _, _, err := Write(dir, 10, ascendOf(s), nil); err != nil {
				t.Fatal(err)
			}
			s.Insert(2, "new")
			_, path, err := Write(dir, 20, ascendOf(s), nil)
			if err != nil {
				t.Fatal(err)
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch damage {
			case "bitflip":
				data[headerLen+3] ^= 0x10
				err = os.WriteFile(path, data, 0o644)
			case "truncate":
				err = os.WriteFile(path, data[:len(data)-3], 0o644)
			}
			if err != nil {
				t.Fatal(err)
			}

			lsn, got := restoreMap(t, dir)
			if lsn != 10 {
				t.Fatalf("fallback restored LSN %d, want 10 (the older image)", lsn)
			}
			if len(got) != 1 || got[1] != "old" {
				t.Fatalf("fallback restored %v, want only key 1 from the older image", got)
			}
		})
	}
}

func TestRestoreEmptyDir(t *testing.T) {
	if _, _, err := Restore(t.TempDir(), func(int64, string) bool { return true }); err != ErrNoSnapshot {
		t.Fatalf("Restore on empty dir: %v, want ErrNoSnapshot", err)
	}
	if _, _, err := Restore(filepath.Join(t.TempDir(), "nope"), func(int64, string) bool { return true }); err != ErrNoSnapshot {
		t.Fatalf("Restore on missing dir: %v, want ErrNoSnapshot", err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	s := lockfree.NewSkipList[int64, string]()
	s.Insert(1, "v")
	for _, lsn := range []uint64{5, 6, 7, 8} {
		if _, _, err := Write(dir, lsn, ascendOf(s), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	files, err := list(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].lsn != 7 || files[1].lsn != 8 {
		t.Fatalf("after Prune(2): %+v, want LSNs 7,8", files)
	}
	// Oldest is the WAL-prune bound: the older retained image still needs
	// its replay tail, so the WAL may only be pruned up to LSN 7 here.
	if o := Oldest(dir); o != 7 {
		t.Fatalf("Oldest after Prune(2) = %d, want 7", o)
	}
	if o := Oldest(filepath.Join(dir, "nope")); o != 0 {
		t.Fatalf("Oldest on missing dir = %d, want 0", o)
	}
}
