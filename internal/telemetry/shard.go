package telemetry

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/instrument"
)

// cacheLine is the assumed cache-line size. 64 bytes is correct for every
// amd64/arm64 part this code will plausibly run on; being wrong only costs
// a little false sharing, never correctness.
const cacheLine = 64

// shard is one stripe of the recorder's counters. Each shard ends with
// cache-line padding so that two shards never share a line; within a shard
// the fields are written together by the same flush, so they benefit from
// sharing lines.
type shard struct {
	counters [instrument.NumCounters]atomic.Uint64
	ops      [NumOps]opShard
	_        [cacheLine]byte
}

// opShard holds one operation kind's count and histograms inside a shard.
type opShard struct {
	count      atomic.Uint64
	latencySum atomic.Uint64
	retrySum   atomic.Uint64
	latency    [NumLatencyBuckets]atomic.Uint64
	retries    [NumRetryBuckets]atomic.Uint64
}

// shardIndex returns a goroutine-affine hash used to pick a shard.
//
// Go offers no cheap public goroutine ID, so this hashes the address of a
// stack variable: distinct goroutines occupy distinct stacks, giving a
// stable-enough spread, and the cost is a couple of arithmetic ops. A
// collision is harmless - two goroutines merely share a stripe. The
// address is only hashed, never dereferenced or retained, so this use of
// unsafe cannot outlive the frame.
func shardIndex() uint32 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	// Fibonacci hashing; stack addresses share low bits (alignment) and
	// high bits (arena), the middle bits carry the per-goroutine entropy.
	return uint32((p * 0x9E3779B97F4A7C15) >> 33)
}
