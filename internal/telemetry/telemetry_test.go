package telemetry

import (
	"sync"
	"testing"
	"time"

	"repro/internal/instrument"
)

func TestLatencyBucketBoundaries(t *testing.T) {
	// Exactly on a boundary lands in that bucket (le semantics); one
	// nanosecond above moves to the next.
	for i, ub := range LatencyBuckets {
		if got := latencyBucket(ub); got != i {
			t.Fatalf("latencyBucket(%v) = %d, want %d", ub, got, i)
		}
		if got := latencyBucket(ub + time.Nanosecond); got != i+1 {
			t.Fatalf("latencyBucket(%v+1ns) = %d, want %d", ub, got, i+1)
		}
	}
	if got := latencyBucket(0); got != 0 {
		t.Fatalf("latencyBucket(0) = %d", got)
	}
	if got := latencyBucket(time.Hour); got != len(LatencyBuckets) {
		t.Fatalf("latencyBucket(1h) = %d, want +Inf bucket %d", got, len(LatencyBuckets))
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] <= LatencyBuckets[i-1] {
			t.Fatalf("latency buckets not strictly increasing at %d", i)
		}
	}
}

func TestRetryBucketBoundaries(t *testing.T) {
	for i, ub := range RetryBuckets {
		if got := retryBucket(ub); got != i {
			t.Fatalf("retryBucket(%d) = %d, want %d", ub, got, i)
		}
		if got := retryBucket(ub + 1); got != i+1 {
			t.Fatalf("retryBucket(%d+1) = %d, want %d", ub, got, i+1)
		}
	}
	if got := retryBucket(1 << 40); got != len(RetryBuckets) {
		t.Fatalf("retryBucket(big) = %d, want +Inf bucket", got)
	}
}

func TestRecordOpAccumulates(t *testing.T) {
	r := NewRecorder(4)
	st := instrument.OpStats{CASAttempts: 5, CASSuccesses: 2, BacklinkTraversals: 3,
		NextUpdates: 7, CurrUpdates: 11, HelpCalls: 1}
	r.RecordOp(OpInsert, &st, 3*time.Microsecond)
	r.RecordOp(OpGet, nil, 100*time.Nanosecond)

	s := r.Snapshot()
	if s.Counters.CASAttempts != 5 || s.Counters.CASSuccesses != 2 ||
		s.Counters.BacklinkTraversals != 3 || s.Counters.NextUpdates != 7 ||
		s.Counters.CurrUpdates != 11 || s.Counters.HelpCalls != 1 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	ins := s.Ops[OpInsert]
	if ins.Count != 1 || ins.LatencySumNanos != 3000 {
		t.Fatalf("insert op snapshot: %+v", ins)
	}
	if ins.Latency[latencyBucket(3*time.Microsecond)] != 1 {
		t.Fatalf("latency sample missing: %+v", ins.Latency)
	}
	// retries = 5 attempts - 2 successes = 3 -> bucket with bound 4.
	if ins.Retries[retryBucket(3)] != 1 {
		t.Fatalf("retry sample missing: %+v", ins.Retries)
	}
	if s.Ops[OpGet].Count != 1 {
		t.Fatalf("get count: %+v", s.Ops[OpGet])
	}
	if got := s.TotalOps(); got != 2 {
		t.Fatalf("TotalOps = %d", got)
	}
	// Essential steps: 5 + 3 + 7 + 11 = 26 over 2 ops.
	if got := s.EssentialStepsPerOp(); got != 13 {
		t.Fatalf("EssentialStepsPerOp = %v", got)
	}
}

func TestDeltaMonotonicity(t *testing.T) {
	r := NewRecorder(2)
	var cumulative Snapshot
	for round := 0; round < 5; round++ {
		for i := 0; i < 10*(round+1); i++ {
			st := instrument.OpStats{CASAttempts: 2, CASSuccesses: 1, CurrUpdates: 4}
			r.RecordOp(OpDelete, &st, time.Duration(i)*time.Microsecond)
		}
		d := r.Delta()
		// Every delta field must be non-negative by construction (uint64)
		// and exactly the work done this round.
		if want := uint64(10 * (round + 1)); d.Ops[OpDelete].Count != want {
			t.Fatalf("round %d: delta count = %d, want %d", round, d.Ops[OpDelete].Count, want)
		}
		if d.Counters.CASAttempts != 2*uint64(10*(round+1)) {
			t.Fatalf("round %d: delta CAS = %d", round, d.Counters.CASAttempts)
		}
		cumulative.Counters.Add(&d.Counters)
		for op := range d.Ops {
			cumulative.Ops[op].Count += d.Ops[op].Count
			cumulative.Ops[op].LatencySumNanos += d.Ops[op].LatencySumNanos
		}
	}
	// Deltas must tile the cumulative snapshot exactly.
	s := r.Snapshot()
	if s.Counters != cumulative.Counters {
		t.Fatalf("deltas do not sum to snapshot: %+v vs %+v", cumulative.Counters, s.Counters)
	}
	if s.Ops[OpDelete].Count != cumulative.Ops[OpDelete].Count ||
		s.Ops[OpDelete].LatencySumNanos != cumulative.Ops[OpDelete].LatencySumNanos {
		t.Fatalf("op deltas do not sum to snapshot")
	}
	// A fresh Delta after no activity is all-zero.
	if d := r.Delta(); d != (Snapshot{}) {
		t.Fatalf("idle delta nonzero: %+v", d)
	}
}

func TestSnapshotSubSaturates(t *testing.T) {
	var a, b Snapshot
	a.Counters.CASAttempts = 3
	b.Counters.CASAttempts = 5
	d := a.Sub(b)
	if d.Counters.CASAttempts != 0 {
		t.Fatalf("Sub must saturate at zero, got %d", d.Counters.CASAttempts)
	}
}

func TestLatencyQuantile(t *testing.T) {
	var o OpSnapshot
	if _, ok := o.LatencyQuantile(0.5); ok {
		t.Fatal("empty histogram reported a quantile")
	}
	// 90 samples in bucket 0 (<=250ns), 10 in bucket 2 (<=1us).
	o.Latency[0] = 90
	o.Latency[2] = 10
	p50, ok := o.LatencyQuantile(0.50)
	if !ok || p50 > LatencyBuckets[0] {
		t.Fatalf("p50 = %v ok=%v, want <= %v", p50, ok, LatencyBuckets[0])
	}
	p99, ok := o.LatencyQuantile(0.99)
	if !ok || p99 <= LatencyBuckets[1] || p99 > LatencyBuckets[2] {
		t.Fatalf("p99 = %v, want in (%v, %v]", p99, LatencyBuckets[1], LatencyBuckets[2])
	}
	// All mass in +Inf reports the last finite bound.
	var inf OpSnapshot
	inf.Latency[NumLatencyBuckets-1] = 4
	q, ok := inf.LatencyQuantile(0.5)
	if !ok || q != LatencyBuckets[len(LatencyBuckets)-1] {
		t.Fatalf("+Inf quantile = %v ok=%v", q, ok)
	}
}

func TestMeanLatency(t *testing.T) {
	// The mean is over the sampled subset: 4 samples, 4000ns total, even
	// though 64 ops completed.
	o := OpSnapshot{Count: 64, LatencySumNanos: 4000}
	o.Latency[0] = 3
	o.Latency[2] = 1
	if got := o.MeanLatency(); got != time.Microsecond {
		t.Fatalf("MeanLatency = %v", got)
	}
	if got := o.LatencySamples(); got != 4 {
		t.Fatalf("LatencySamples = %d", got)
	}
	if got := (OpSnapshot{}).MeanLatency(); got != 0 {
		t.Fatalf("empty MeanLatency = %v", got)
	}
}

func TestRecorderShardCount(t *testing.T) {
	if got := NewRecorder(3).Shards(); got != 4 {
		t.Fatalf("shards(3) = %d, want 4", got)
	}
	if got := NewRecorder(0).Shards(); got < 1 {
		t.Fatalf("default shards = %d", got)
	}
	if got := NewRecorder(1 << 20).Shards(); got != 256 {
		t.Fatalf("shards cap = %d", got)
	}
}

// TestConcurrentRecordNoLostUpdates hammers one recorder from many
// goroutines and checks the totals are exact: striping must never lose or
// duplicate counts. Run under -race this also vouches for the unsafe
// shard-index trick.
func TestConcurrentRecordNoLostUpdates(t *testing.T) {
	r := NewRecorder(8)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st := instrument.OpStats{CASAttempts: 1, CASSuccesses: 1, NextUpdates: 2}
				r.RecordOp(Op(i%int(NumOps)), &st, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.TotalOps(); got != workers*perWorker {
		t.Fatalf("TotalOps = %d, want %d", got, workers*perWorker)
	}
	if s.Counters.CASAttempts != workers*perWorker ||
		s.Counters.NextUpdates != 2*workers*perWorker {
		t.Fatalf("counters lost updates: %+v", s.Counters)
	}
	var latTotal uint64
	for op := range s.Ops {
		for _, c := range s.Ops[op].Latency {
			latTotal += c
		}
	}
	if latTotal != workers*perWorker {
		t.Fatalf("latency samples = %d, want %d", latTotal, workers*perWorker)
	}
}

// TestStartFinishSampling drives the hot-path token API serially on one
// shard: counts and counters must be exact, histograms sampled exactly one
// in SampleEvery.
func TestStartFinishSampling(t *testing.T) {
	r := NewRecorder(1)
	if r.SampleEvery() != DefaultSampleEvery {
		t.Fatalf("default SampleEvery = %d", r.SampleEvery())
	}
	const ops = 100
	for i := 0; i < ops; i++ {
		tok := r.StartOp(OpInsert)
		st := instrument.OpStats{CASAttempts: 3, CASSuccesses: 1, CurrUpdates: 2}
		r.FinishOp(tok, OpInsert, &st)
	}
	s := r.Snapshot()
	ins := s.Ops[OpInsert]
	if ins.Count != ops {
		t.Fatalf("count = %d (must be exact under sampling)", ins.Count)
	}
	// 6 sampled ops (every 16th of 100), step counters scaled by 16:
	// CASAttempts 6*3*16, CurrUpdates 6*2*16.
	const sampled = ops / DefaultSampleEvery
	if s.Counters.CASAttempts != 3*sampled*DefaultSampleEvery ||
		s.Counters.CurrUpdates != 2*sampled*DefaultSampleEvery {
		t.Fatalf("scaled counters wrong: %+v", s.Counters)
	}
	if got, want := ins.LatencySamples(), uint64(sampled); got != want {
		t.Fatalf("latency samples = %d, want %d", got, want)
	}
	// Each sampled op had retries = 3-1 = 2 (histograms are per-sample,
	// not scaled).
	if got := ins.Retries[retryBucket(2)]; got != uint64(sampled) {
		t.Fatalf("retry samples: %+v", ins.Retries)
	}
	if got := ins.RetrySum; got != 2*uint64(sampled) {
		t.Fatalf("retry sum = %d", got)
	}
}

// TestSetSampleEveryOne makes the token path record every op.
func TestSetSampleEveryOne(t *testing.T) {
	r := NewRecorder(1)
	r.SetSampleEvery(1)
	for i := 0; i < 10; i++ {
		tok := r.StartOp(OpGet)
		r.FinishOp(tok, OpGet, nil)
	}
	s := r.Snapshot()
	if s.Ops[OpGet].LatencySamples() != 10 {
		t.Fatalf("samples = %d, want 10", s.Ops[OpGet].LatencySamples())
	}
	// Rounding up to powers of two.
	r.SetSampleEvery(5)
	if r.SampleEvery() != 8 {
		t.Fatalf("SetSampleEvery(5) -> %d, want 8", r.SampleEvery())
	}
}

// TestConcurrentStartFinishNoLostUpdates is the token-path twin of
// TestConcurrentRecordNoLostUpdates: counts exact, scaled counter
// estimates internally consistent, sampled histogram totals bounded by the
// op count.
func TestConcurrentStartFinishNoLostUpdates(t *testing.T) {
	r := NewRecorder(8)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				op := Op(i % int(NumOps))
				tok := r.StartOp(op)
				var st *instrument.OpStats
				if tok.Sampled() {
					st = &instrument.OpStats{CASAttempts: 1, CASSuccesses: 1, NextUpdates: 2}
				}
				r.FinishOp(tok, op, st)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.TotalOps(); got != workers*perWorker {
		t.Fatalf("TotalOps = %d, want %d", got, workers*perWorker)
	}
	// Every sampled op contributed the same stats, so the scaled estimates
	// must preserve the 1:2 CAS:NextUpdates ratio exactly and stay within
	// the true totals.
	if s.Counters.CASAttempts == 0 || s.Counters.NextUpdates != 2*s.Counters.CASAttempts {
		t.Fatalf("scaled counters inconsistent: %+v", s.Counters)
	}
	if s.Counters.CASAttempts > workers*perWorker {
		t.Fatalf("scaled estimate exceeds true total: %+v", s.Counters)
	}
	var latTotal uint64
	for op := range s.Ops {
		latTotal += s.Ops[op].LatencySamples()
	}
	if latTotal == 0 || latTotal > workers*perWorker {
		t.Fatalf("latency samples = %d, want in (0, %d]", latTotal, workers*perWorker)
	}
}

func TestNanotimeMonotone(t *testing.T) {
	a := Nanotime()
	b := Nanotime()
	if b < a {
		t.Fatalf("Nanotime went backwards: %d then %d", a, b)
	}
}

func TestOpStrings(t *testing.T) {
	seen := map[string]bool{}
	for op := Op(0); op < NumOps; op++ {
		s := op.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("op %d name %q", op, s)
		}
		seen[s] = true
	}
	if NumOps.String() != "unknown" {
		t.Fatal("out-of-range op must be unknown")
	}
}
