// Package telemetry is the always-on observability core for the lock-free
// structures: sharded, cache-line-padded atomic counters over the
// essential-step vocabulary of internal/instrument (the paper's Section 3.4
// cost accounting), plus fixed-bucket latency and retry histograms per
// operation kind.
//
// The design goal is near-zero overhead on hot paths under many goroutines:
//
//   - Operation counts are exact, but everything else rides on sampling:
//     one in SampleEvery operations runs with step accounting attached,
//     reads the clock, and flushes — scaled by the period, so counter
//     totals are unbiased — while the rest pay one atomic load and one
//     atomic add. A period of 1 records every operation exactly.
//   - Sampled operations accumulate their steps in a private
//     instrument.OpStats (no shared writes while the operation runs) and
//     flush once, at completion, into a shard of atomic counters.
//   - Shards are padded to cache-line size and selected by a cheap
//     goroutine-affine hash, so concurrent flushes rarely contend on a line.
//   - Reading (Snapshot, Delta) sums the shards; readers never block
//     writers.
//
// The exporter layer (expvar, Prometheus text format) lives in the public
// package repro/lockfree/telemetry; this package has no HTTP or encoding
// dependencies.
package telemetry

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/instrument"
)

// Op identifies the operation kind a latency/retry sample belongs to.
type Op uint8

// Operation kinds. Contains/Search record as OpGet; full and range
// iterations record as OpAscend.
const (
	OpInsert Op = iota
	OpGet
	OpDelete
	OpAscend
	// NumOps is the number of operation kinds.
	NumOps
)

// String returns the op's exporter label.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpAscend:
		return "ascend"
	default:
		return "unknown"
	}
}

// LatencyBuckets holds the fixed upper bounds of the operation-latency
// histogram. The final implicit bucket is +Inf. The range spans a cached
// Get on a tiny list (~100ns) to a badly descheduled operation (>100ms).
var LatencyBuckets = [...]time.Duration{
	250 * time.Nanosecond,
	500 * time.Nanosecond,
	1 * time.Microsecond,
	2500 * time.Nanosecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
}

// RetryBuckets holds the fixed upper bounds of the per-operation retry
// histogram, where a retry is a failed C&S (CASAttempts - CASSuccesses):
// the operation-local face of contention. The final implicit bucket is
// +Inf.
var RetryBuckets = [...]uint64{0, 1, 2, 4, 8, 16, 32, 64}

// NumLatencyBuckets and NumRetryBuckets include the +Inf bucket.
const (
	NumLatencyBuckets = len(LatencyBuckets) + 1
	NumRetryBuckets   = len(RetryBuckets) + 1
)

// latencyBucket returns the index of the bucket d falls in.
func latencyBucket(d time.Duration) int {
	for i, ub := range LatencyBuckets {
		if d <= ub {
			return i
		}
	}
	return len(LatencyBuckets)
}

// retryBucket returns the index of the bucket r falls in.
func retryBucket(r uint64) int {
	for i, ub := range RetryBuckets {
		if r <= ub {
			return i
		}
	}
	return len(RetryBuckets)
}

// NumCounters is the size of the essential-step vocabulary, re-exported
// for consumers that index counter vectors.
const NumCounters = int(instrument.NumCounters)

// CounterName returns the canonical exporter name of counter index c.
func CounterName(c int) string { return instrument.CounterNames[c] }

// base anchors Nanotime. Reading time.Since of a monotonic base costs one
// clock read; time.Now costs two (wall + monotonic).
var base = time.Now()

// Nanotime returns monotonic nanoseconds since an arbitrary process-local
// epoch. Only differences of Nanotime values are meaningful.
func Nanotime() int64 { return int64(time.Since(base)) }

// DefaultSampleEvery is the default sampling period of the full recording
// path: one in every DefaultSampleEvery operations (per shard and
// operation kind) pays for step accounting, two clock reads, and the
// histogram atomics; its step counters are flushed scaled by the period so
// the counter totals are unbiased estimates. Operation counts are never
// sampled; they stay exact. A period of 1 records everything exactly.
const DefaultSampleEvery = 16

// Recorder collects metrics for one structure. All methods are safe for
// concurrent use. The zero value is not usable; construct with NewRecorder.
type Recorder struct {
	shards     []shard
	mask       uint32
	sampleMask uint64

	// deltaMu serializes Delta callers; last is the snapshot the previous
	// Delta call observed.
	deltaMu sync.Mutex
	last    Snapshot
}

// NewRecorder returns a Recorder with the given number of shards, rounded
// up to a power of two. shards <= 0 selects a default sized to the
// machine's parallelism.
func NewRecorder(shards int) *Recorder {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0) * 2
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	const maxShards = 256
	if n > maxShards {
		n = maxShards
	}
	return &Recorder{
		shards:     make([]shard, n),
		mask:       uint32(n - 1),
		sampleMask: DefaultSampleEvery - 1,
	}
}

// Shards returns the shard count (for tests and diagnostics).
func (r *Recorder) Shards() int { return len(r.shards) }

// SetSampleEvery sets the full-recording sampling period to every n-th
// operation, rounded up to a power of two; n <= 1 records every operation
// exactly. Call before the recorder is shared (the field is read
// unsynchronized on the hot path).
func (r *Recorder) SetSampleEvery(n int) {
	p := 1
	for p < n {
		p <<= 1
	}
	r.sampleMask = uint64(p - 1)
}

// SampleEvery returns the current histogram sampling period.
func (r *Recorder) SampleEvery() int { return int(r.sampleMask + 1) }

// RecordOp flushes one completed operation into the recorder: its
// essential-step counters, one latency sample, and one retry sample
// (retries = failed C&S attempts). st may be nil for operations that carry
// no step counters (e.g. iteration).
func (r *Recorder) RecordOp(op Op, st *instrument.OpStats, elapsed time.Duration) {
	sh := &r.shards[shardIndex()&r.mask]
	var retries uint64
	if st != nil {
		for i, v := range st.Vector() {
			if v != 0 {
				sh.counters[i].Add(v)
			}
		}
		retries = st.CASAttempts - st.CASSuccesses
	}
	o := &sh.ops[op]
	o.count.Add(1)
	if elapsed < 0 {
		elapsed = 0
	}
	o.latencySum.Add(uint64(elapsed.Nanoseconds()))
	o.latency[latencyBucket(elapsed)].Add(1)
	o.retrySum.Add(retries)
	o.retries[retryBucket(retries)].Add(1)
}

// AddCounter adds n directly to one vocabulary counter, bypassing the
// per-operation flush path. Layers above the core structures (e.g. the
// range-sharded map's routing accounting) use it for counters that do not
// belong to any single inner operation's OpStats. Exact, never sampled.
func (r *Recorder) AddCounter(c instrument.Counter, n uint64) {
	if n == 0 {
		return
	}
	r.shards[shardIndex()&r.mask].counters[c].Add(n)
}

// AddGauge adjusts a gauge-class counter (instrument.Counter.Gauge) by
// delta, which may be negative (stored as the two's complement). Unlike
// monotonic counters, a gauge is pinned to one fixed cell rather than
// striped: with increments and decrements landing on different shards, a
// snapshot that sums the stripes can read the decrement's shard after
// missing a newer increment and report a level that never existed —
// including a negative one. A single cell makes every read a true
// point-in-time level: as long as each decrement is program-ordered after
// its matching increment (the serving layer's contract for conn_active),
// no reader can ever observe the gauge negative. Gauge updates are rare
// (connection open/close), so the lost striping costs nothing. Exact,
// never sampled, like AddCounter.
func (r *Recorder) AddGauge(c instrument.Counter, delta int64) {
	if delta == 0 {
		return
	}
	r.shards[0].counters[c].Add(uint64(delta))
}

// OpToken carries per-operation state from StartOp to FinishOp. Tokens
// must not outlive the operation or be reused.
type OpToken struct {
	sh    *shard
	start int64 // Nanotime at StartOp, or -1 when the op is not sampled
}

// Sampled reports whether this operation was selected for full recording:
// step accounting, latency, and retries. Callers skip collecting step
// counters entirely for unsampled tokens.
func (t OpToken) Sampled() bool { return t.start >= 0 }

// StartOp begins the low-overhead recording path used by the structures'
// hot wrappers: it pins the caller's shard and decides — every sampleMask+1
// completed ops of this kind on this shard — whether this operation is
// fully recorded (step counters, latency, retries). The unsampled path
// costs one atomic load here and one atomic add in FinishOp: no clock
// read, no step accounting. The sampling decision reads the completed-op
// count racily; under concurrency the period is approximate, which is fine
// for sampled statistics.
func (r *Recorder) StartOp(op Op) OpToken {
	sh := &r.shards[shardIndex()&r.mask]
	tok := OpToken{sh: sh, start: -1}
	if (sh.ops[op].count.Load()+1)&r.sampleMask == 0 {
		tok.start = Nanotime()
	}
	return tok
}

// FinishOp completes an operation begun with StartOp. The completed-op
// count is recorded exactly, every time. For sampled tokens the
// essential-step counters are flushed scaled by the sampling period — an
// unbiased estimator of the true totals, and exact at period 1 — and one
// latency and one retry sample land in the histograms. st is ignored (and
// normally nil) for unsampled tokens.
func (r *Recorder) FinishOp(tok OpToken, op Op, st *instrument.OpStats) {
	sh := tok.sh
	o := &sh.ops[op]
	o.count.Add(1)
	if tok.start < 0 {
		return
	}
	scale := r.sampleMask + 1
	var retries uint64
	if st != nil {
		for i, v := range st.Vector() {
			if v != 0 {
				sh.counters[i].Add(v * scale)
			}
		}
		retries = st.CASAttempts - st.CASSuccesses
	}
	el := Nanotime() - tok.start
	if el < 0 {
		el = 0
	}
	o.latencySum.Add(uint64(el))
	o.latency[latencyBucket(time.Duration(el))].Add(1)
	o.retrySum.Add(retries)
	o.retries[retryBucket(retries)].Add(1)
}

// Snapshot is a consistent-enough point-in-time copy of every metric (each
// shard counter is read atomically; the set is not read under a global
// lock, matching the structures' own weakly consistent iteration).
type Snapshot struct {
	// Counters holds the essential-step totals in the shared vocabulary.
	Counters instrument.OpStats
	// Ops holds per-operation-kind counts and histograms, indexed by Op.
	Ops [NumOps]OpSnapshot
}

// OpSnapshot is the per-operation-kind slice of a Snapshot. Count is
// exact; the latency/retry fields cover only the sampled subset of
// operations (every operation, when the recorder samples every 1).
type OpSnapshot struct {
	// Count is the number of completed operations of this kind.
	Count uint64
	// LatencySumNanos is the summed wall-clock latency in nanoseconds of
	// the sampled operations.
	LatencySumNanos uint64
	// RetrySum is the summed failed-C&S count of the sampled operations.
	RetrySum uint64
	// Latency holds per-bucket (not cumulative) sample counts; bucket i
	// covers latencies <= LatencyBuckets[i], the last bucket is +Inf.
	Latency [NumLatencyBuckets]uint64
	// Retries holds per-bucket failed-C&S counts, bounds in RetryBuckets.
	Retries [NumRetryBuckets]uint64
}

// LatencySamples returns the number of operations whose latency was
// sampled into the histogram (equals Count at sampling period 1).
func (o OpSnapshot) LatencySamples() uint64 {
	var n uint64
	for _, c := range o.Latency {
		n += c
	}
	return n
}

// RetrySamples returns the number of operations whose retry count was
// sampled into the histogram.
func (o OpSnapshot) RetrySamples() uint64 {
	var n uint64
	for _, c := range o.Retries {
		n += c
	}
	return n
}

// Snapshot sums all shards into a typed snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	var vec instrument.Vector
	for i := range r.shards {
		sh := &r.shards[i]
		for c := range vec {
			vec[c] += sh.counters[c].Load()
		}
		for op := range sh.ops {
			o := &sh.ops[op]
			s.Ops[op].Count += o.count.Load()
			s.Ops[op].LatencySumNanos += o.latencySum.Load()
			s.Ops[op].RetrySum += o.retrySum.Load()
			for b := range o.latency {
				s.Ops[op].Latency[b] += o.latency[b].Load()
			}
			for b := range o.retries {
				s.Ops[op].Retries[b] += o.retries[b].Load()
			}
		}
	}
	s.Counters.FromVector(vec)
	return s
}

// Delta returns the change since the previous Delta call (or since the
// recorder's creation, for the first call). Because every underlying
// counter is monotonic, every field of the result is non-negative.
func (r *Recorder) Delta() Snapshot {
	r.deltaMu.Lock()
	defer r.deltaMu.Unlock()
	cur := r.Snapshot()
	d := cur.Sub(r.last)
	r.last = cur
	return d
}

// Sub returns s - prev field-by-field. It is the caller's job to pass a
// genuinely earlier snapshot of the same recorder; underflow saturates to
// zero so a slightly torn pair of snapshots cannot produce wrap-around
// garbage.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	cur, old := s.Counters.Vector(), prev.Counters.Vector()
	var vec instrument.Vector
	for i := range vec {
		vec[i] = sub64(cur[i], old[i])
	}
	d.Counters.FromVector(vec)
	for op := range s.Ops {
		d.Ops[op].Count = sub64(s.Ops[op].Count, prev.Ops[op].Count)
		d.Ops[op].LatencySumNanos = sub64(s.Ops[op].LatencySumNanos, prev.Ops[op].LatencySumNanos)
		d.Ops[op].RetrySum = sub64(s.Ops[op].RetrySum, prev.Ops[op].RetrySum)
		for b := range s.Ops[op].Latency {
			d.Ops[op].Latency[b] = sub64(s.Ops[op].Latency[b], prev.Ops[op].Latency[b])
		}
		for b := range s.Ops[op].Retries {
			d.Ops[op].Retries[b] = sub64(s.Ops[op].Retries[b], prev.Ops[op].Retries[b])
		}
	}
	return d
}

func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// TotalOps returns the number of completed operations across all kinds.
func (s Snapshot) TotalOps() uint64 {
	var n uint64
	for op := range s.Ops {
		n += s.Ops[op].Count
	}
	return n
}

// EssentialStepsPerOp returns the mean billed steps per completed
// operation, the quantity the paper bounds by O(n(S) + c(S)).
func (s Snapshot) EssentialStepsPerOp() float64 {
	n := s.TotalOps()
	if n == 0 {
		return 0
	}
	return float64(s.Counters.EssentialSteps()) / float64(n)
}

// LatencyQuantile returns the q-quantile (0 < q <= 1) of the operation's
// latency histogram, linearly interpolated inside the winning bucket. The
// +Inf bucket reports its lower bound. ok is false when the histogram is
// empty.
func (o OpSnapshot) LatencyQuantile(q float64) (d time.Duration, ok bool) {
	var total uint64
	for _, c := range o.Latency {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range o.Latency {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = LatencyBuckets[i-1]
		}
		if i == len(LatencyBuckets) {
			return lo, true // +Inf bucket: report its lower bound
		}
		hi := LatencyBuckets[i]
		frac := (rank - prev) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo)), true
	}
	return LatencyBuckets[len(LatencyBuckets)-1], true
}

// MeanLatency returns the mean latency of the sampled operations; 0 when
// the histogram is empty.
func (o OpSnapshot) MeanLatency() time.Duration {
	n := o.LatencySamples()
	if n == 0 {
		return 0
	}
	return time.Duration(o.LatencySumNanos / n)
}
