package ebr

// TryAdvanceForTest exposes tryAdvance to the external integration tests.
func (d *Domain) TryAdvanceForTest() uint64 { return d.tryAdvance(nil) }
