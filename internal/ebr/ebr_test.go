package ebr

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestRetireNotFreedImmediately(t *testing.T) {
	d := NewDomain()
	h := d.Register()
	h.Enter()
	freed := false
	h.Retire(func() { freed = true })
	if freed {
		t.Fatal("freed inside the retiring epoch")
	}
	h.Exit()
	if d.Retired() != 1 {
		t.Fatalf("Retired = %d", d.Retired())
	}
}

func TestGracePeriodTwoEpochs(t *testing.T) {
	d := NewDomain()
	h := d.Register()
	h.Enter()
	freed := false
	h.Retire(func() { freed = true })
	h.Exit()
	// Advance the epoch twice; with no active handles both succeed.
	d.tryAdvance()
	d.tryAdvance()
	h.Enter() // drain runs on Enter
	h.Exit()
	if !freed {
		t.Fatal("not freed after two epoch advances")
	}
	if d.Freed() != 1 {
		t.Fatalf("Freed = %d", d.Freed())
	}
}

func TestActiveHandlePinsEpoch(t *testing.T) {
	d := NewDomain()
	reader := d.Register()
	writer := d.Register()

	reader.Enter() // pins the current epoch

	writer.Enter()
	freed := false
	writer.Retire(func() { freed = true })
	writer.Exit()

	// The reader is still inside its critical section: the epoch must not
	// advance past it, so the retiree must stay unfreed no matter how
	// hard we push.
	for i := 0; i < 10; i++ {
		d.tryAdvance()
	}
	writer.Enter()
	writer.Exit()
	if freed {
		t.Fatal("freed while a reader from the retirement epoch was still active")
	}

	reader.Exit()
	for i := 0; i < 3; i++ {
		d.tryAdvance()
		writer.Enter()
		writer.Exit()
	}
	if !freed {
		t.Fatal("not freed after the reader left")
	}
}

func TestFlushQuiescent(t *testing.T) {
	d := NewDomain()
	h := d.Register()
	h.Enter()
	n := 0
	for i := 0; i < 10; i++ {
		h.Retire(func() { n++ })
	}
	h.Exit()
	h.Flush()
	if n != 10 {
		t.Fatalf("Flush freed %d of 10", n)
	}
}

func TestEpochAdvancesUnderChurn(t *testing.T) {
	d := NewDomain()
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.Register()
			for i := 0; i < 5000; i++ {
				h.Enter()
				h.Retire(func() {})
				h.Exit()
			}
			h.Flush()
		}()
	}
	wg.Wait()
	if d.Epoch() == 0 {
		t.Fatal("epoch never advanced under churn")
	}
	if d.Freed() != d.Retired() {
		t.Fatalf("freed %d of %d after quiescent flush", d.Freed(), d.Retired())
	}
}

// TestIntegrationWithCoreList wires the domain into the FR list through
// the Proc.Retire hook and checks the end-to-end contract: every
// physically deleted node is retired exactly once, frees lag retirement by
// the grace period, and a pinned reader is never exposed to a recycled
// node.
func TestIntegrationWithCoreList(t *testing.T) {
	d := NewDomain()
	l := core.NewList[int, int]()
	const workers, ops, keyRange = 4, 4000, 64
	var wg sync.WaitGroup
	var retired atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.Register()
			p := &core.Proc{ID: w, Retire: func(n any) {
				retired.Add(1)
				h.Retire(func() {
					// A recycler would reset and pool n here.
					_ = n
				})
			}}
			rng := rand.New(rand.NewPCG(uint64(w), 8))
			for i := 0; i < ops; i++ {
				h.Enter()
				k := int(rng.Uint64N(keyRange))
				if rng.Uint64N(2) == 0 {
					l.Insert(p, k, k)
				} else {
					l.Delete(p, k)
				}
				h.Exit()
			}
			h.Flush()
		}(w)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if retired.Load() == 0 {
		t.Fatal("no nodes were retired")
	}
	if d.Freed() != d.Retired() {
		t.Fatalf("freed %d of %d after flush", d.Freed(), d.Retired())
	}
	// Exactly-once retirement: retirement count equals nodes that left
	// the list = successful inserts that were later deleted.
	if got := uint64(retired.Load()); got != d.Retired() {
		t.Fatalf("retire hook fired %d times, domain saw %d", got, d.Retired())
	}
}

// TestIntegrationReaderSafety pins a reader on a node mid-deletion and
// checks the free callback cannot run until the reader exits.
func TestIntegrationReaderSafety(t *testing.T) {
	d := NewDomain()
	l := core.NewList[int, int]()
	l.Insert(nil, 1, 1)
	l.Insert(nil, 2, 2)

	reader := d.Register()
	writer := d.Register()

	reader.Enter()
	node := l.Search(nil, 2) // the reader holds this pointer
	if node == nil {
		t.Fatal("setup failed")
	}

	freed := make(chan struct{})
	writer.Enter()
	p := &core.Proc{Retire: func(n any) {
		writer.Retire(func() { close(freed) })
	}}
	if _, ok := l.Delete(p, 2); !ok {
		t.Fatal("delete failed")
	}
	writer.Exit()

	// Churn the writer; the pinned reader must hold the free back.
	for i := 0; i < 200; i++ {
		writer.Enter()
		writer.Exit()
		d.tryAdvance()
	}
	select {
	case <-freed:
		t.Fatal("node freed while the reader still held it")
	default:
	}
	// Reader can still safely read the (logically deleted) node.
	if node.Key() != 2 || node.Value() != 2 {
		t.Fatal("reader saw corrupted node")
	}
	reader.Exit()
	for i := 0; i < 4; i++ {
		d.tryAdvance()
		writer.Enter()
		writer.Exit()
	}
	select {
	case <-freed:
	default:
		t.Fatal("node never freed after the reader exited")
	}
}

func BenchmarkEnterExitOverhead(b *testing.B) {
	d := NewDomain()
	h := d.Register()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enter()
		h.Exit()
	}
}

func BenchmarkListOpsWithReclamation(b *testing.B) {
	for _, mode := range []string{"bare", "ebr"} {
		b.Run(mode, func(b *testing.B) {
			d := NewDomain()
			h := d.Register()
			l := core.NewList[int, int]()
			var p *core.Proc
			if mode == "ebr" {
				p = &core.Proc{Retire: func(n any) { h.Retire(func() {}) }}
			}
			for k := 0; k < 512; k += 2 {
				l.Insert(nil, k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := (i*2 + 1) % 512
				if mode == "ebr" {
					h.Enter()
				}
				l.Insert(p, k, k)
				l.Delete(p, k)
				if mode == "ebr" {
					h.Exit()
				}
			}
		})
	}
}
