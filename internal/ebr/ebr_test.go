package ebr

import (
	"sync"
	"testing"
)

func TestRetireNotFreedImmediately(t *testing.T) {
	d := NewDomain()
	h := d.Register()
	h.Enter()
	freed := false
	h.Retire(func() { freed = true })
	if freed {
		t.Fatal("freed inside the retiring epoch")
	}
	h.Exit()
	if d.Retired() != 1 {
		t.Fatalf("Retired = %d", d.Retired())
	}
}

func TestGracePeriodTwoEpochs(t *testing.T) {
	d := NewDomain()
	h := d.Register()
	h.Enter()
	freed := false
	h.Retire(func() { freed = true })
	h.Exit()
	// Advance the epoch twice; with no active handles both succeed.
	d.tryAdvance(nil)
	d.tryAdvance(nil)
	h.Enter() // drain runs on Enter
	h.Exit()
	if !freed {
		t.Fatal("not freed after two epoch advances")
	}
	if d.Freed() != 1 {
		t.Fatalf("Freed = %d", d.Freed())
	}
}

func TestActiveHandlePinsEpoch(t *testing.T) {
	d := NewDomain()
	reader := d.Register()
	writer := d.Register()

	reader.Enter() // pins the current epoch

	writer.Enter()
	freed := false
	writer.Retire(func() { freed = true })
	writer.Exit()

	// The reader is still inside its critical section: the epoch must not
	// advance past it, so the retiree must stay unfreed no matter how
	// hard we push.
	for i := 0; i < 10; i++ {
		d.tryAdvance(nil)
	}
	writer.Enter()
	writer.Exit()
	if freed {
		t.Fatal("freed while a reader from the retirement epoch was still active")
	}

	reader.Exit()
	for i := 0; i < 3; i++ {
		d.tryAdvance(nil)
		writer.Enter()
		writer.Exit()
	}
	if !freed {
		t.Fatal("not freed after the reader left")
	}
}

func TestFlushQuiescent(t *testing.T) {
	d := NewDomain()
	h := d.Register()
	h.Enter()
	n := 0
	for i := 0; i < 10; i++ {
		h.Retire(func() { n++ })
	}
	h.Exit()
	h.Flush()
	if n != 10 {
		t.Fatalf("Flush freed %d of 10", n)
	}
}

func TestEpochAdvancesUnderChurn(t *testing.T) {
	d := NewDomain()
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.Register()
			for i := 0; i < 5000; i++ {
				h.Enter()
				h.Retire(func() {})
				h.Exit()
			}
			h.Flush()
		}()
	}
	wg.Wait()
	if d.Epoch() == 0 {
		t.Fatal("epoch never advanced under churn")
	}
	if d.Freed() != d.Retired() {
		t.Fatalf("freed %d of %d after quiescent flush", d.Freed(), d.Retired())
	}
}

func BenchmarkEnterExitOverhead(b *testing.B) {
	d := NewDomain()
	h := d.Register()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enter()
		h.Exit()
	}
}
