package ebr

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/instrument"
)

// This file is the node-recycling layer on top of the package's epoch
// machinery: Pin/Unpin critical sections cheap enough for every operation
// of a structure, typed-free retire lists (no closure per retiree), and
// per-P padded free lists (Pool) that node constructors consult before
// calling the allocator. Together they make insert-after-delete traffic
// allocation-free at steady state:
//
//	unlink C&S wins ──> Domain.RetireNode (epoch-stamped slot on a per-P Pin)
//	epoch advances twice ──> drain pushes the batch onto its Pool
//	next Insert ──> Pool.Get pops a node instead of new(...)
//
// Everything here is non-blocking: the per-P slots and pool shards are
// guarded by try-locks, and any path that cannot acquire one immediately
// falls back to the garbage collector (a retiree is simply not recycled;
// a constructor simply allocates). Dropping to the GC is always safe - it
// restores exactly the pre-recycling behavior for that one node.

// retireSlotCap bounds one epoch slot's batch on one Pin. When an epoch is
// stalled (a pinned-but-idle critical section never observes the current
// epoch), retire lists cannot drain; past the cap, retirements are
// abandoned to the GC and counted as ebr_stalled_epochs, so a stalled
// reader bounds memory instead of leaking it. 3 slots x #pins x the cap is
// the domain-wide retained ceiling (TestEpochStallBound pins it).
const retireSlotCap = 1024

// retiree is one retired node together with the free list that should
// receive it after the grace period. Storing the node as an `any` holding
// a pointer does not allocate.
type retiree struct {
	pool *Pool
	n    any
}

// nodeSlot is one epoch's batch of retirees on one Pin.
type nodeSlot struct {
	epoch uint64
	nodes []retiree
}

// Pin is one stripe of a domain's critical-section state. Unlike a Handle,
// a Pin is shareable: goroutines that hash to the same stripe nest on its
// count, and the stripe's observed epoch is published only on the 0->1
// transition - the stripe then blocks epoch advancement until the count
// returns to 0, which is conservative (an advance is delayed) but never
// unsafe. Obtain one from Domain.Pin; release with Unpin.
type Pin struct {
	d     *Domain
	count atomic.Int64
	local atomic.Uint64

	// lock guards slots/nsince/stock below (a try-lock: contenders fall
	// back to the GC rather than wait).
	lock   atomic.Bool
	slots  [epochSlots]nodeSlot
	nsince int

	_ [cacheLine - 8]byte
}

// cacheLine pads the striped structures; 64 bytes covers every amd64/arm64
// part this will run on.
const cacheLine = 64

// stripeCount sizes a striped array to twice GOMAXPROCS, rounded up to a
// power of two and capped at 256 - the ShardedInt64 policy.
func stripeCount() int {
	want := runtime.GOMAXPROCS(0) * 2
	n := 1
	for n < want && n < 256 {
		n <<= 1
	}
	return n
}

// stripeIndex returns a goroutine-affine hash (the ShardedInt64 trick):
// hash the address of a stack variable - distinct goroutines occupy
// distinct stacks. The address is only hashed, never dereferenced.
func stripeIndex() uint32 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return uint32((p * 0x9E3779B97F4A7C15) >> 33)
}

// Pin begins a critical section on a goroutine-affine stripe: until the
// matching Unpin, no node retired to this domain after the pin can have
// its memory recycled. Pins on the same stripe nest (the count); the
// epoch is published only by the pinner that takes the stripe from idle,
// with the same re-read loop as Handle.Enter.
func (d *Domain) Pin() *Pin {
	p := &d.pins[stripeIndex()&d.pinMask]
	if p.count.Add(1) == 1 {
		for {
			e := d.epoch.Load()
			p.local.Store(e)
			if d.epoch.Load() == e {
				break
			}
		}
	}
	return p
}

// Unpin ends the critical section. Nil-tolerant so structures without a
// reclamation domain can unconditionally `defer pin.Unpin()`.
func (p *Pin) Unpin() {
	if p != nil {
		p.count.Add(-1)
	}
}

// Domain returns the domain this pin stripes, for the Proc fast path's
// token check (a caller-held pin is only good for its own domain).
func (p *Pin) Domain() *Domain { return p.d }

// RetireNode schedules node n for recycling into pool once the grace
// period elapses: it is stamped with the current epoch on a goroutine-
// affine stripe and pushed to pool by a later drain, after the global
// epoch has advanced twice past the stamp. Must be called while the
// calling goroutine holds a Pin on this domain (the unlink that made n
// unreachable must be inside the critical section). Non-blocking: on
// stripe contention or a stalled epoch the node is left to the GC.
func (d *Domain) RetireNode(pool *Pool, n any, st *instrument.OpStats) {
	d.retired.Add(1)
	p := &d.pins[stripeIndex()&d.pinMask]
	if !p.lock.CompareAndSwap(false, true) {
		d.dropped.Add(1)
		return // contended stripe: leave n to the GC
	}
	e := d.epoch.Load()
	s := &p.slots[e%epochSlots]
	if s.epoch != e {
		// The slot holds a batch from e-3 or earlier (or is empty): its
		// grace period is long past.
		p.flushSlot(s, st)
		s.epoch = e
	}
	if len(s.nodes) >= retireSlotCap {
		// Epoch stalled: the batch cannot drain and has hit its cap.
		// Abandon this retiree to the GC so memory stays bounded.
		st.IncStalled()
		d.dropped.Add(1)
	} else {
		s.nodes = append(s.nodes, retiree{pool: pool, n: n})
	}
	p.nsince++
	if p.nsince >= advanceEvery {
		p.nsince = 0
		cur := d.tryAdvance(st)
		p.drainLocked(cur, st)
	}
	p.lock.Store(false)
}

// drainLocked pushes every batch whose grace period has elapsed onto its
// pool. Caller holds p.lock.
func (p *Pin) drainLocked(cur uint64, st *instrument.OpStats) {
	for i := range p.slots {
		s := &p.slots[i]
		if s.epoch != ^uint64(0) && s.epoch+2 <= cur && len(s.nodes) > 0 {
			p.flushSlot(s, st)
		}
	}
}

// flushSlot moves a quiesced batch to its free lists and resets the slot,
// keeping the backing array so steady-state retirement never reallocates.
func (p *Pin) flushSlot(s *nodeSlot, st *instrument.OpStats) {
	recycled := uint64(0)
	for i := range s.nodes {
		r := &s.nodes[i]
		if r.pool.Put(r.n) {
			recycled++
		} else {
			p.d.dropped.Add(1) // pool full: leave to the GC
		}
		*r = retiree{}
	}
	st.IncRecycled(recycled)
	p.d.freed.Add(uint64(len(s.nodes)))
	p.d.recycled.Add(recycled)
	s.nodes = s.nodes[:0]
}

// Reclaim advances the epoch if possible and drains every stripe's
// quiesced batches. Safe to call at any time (it only frees batches whose
// grace period has already elapsed); tests and shutdown paths use it to
// reach a deterministic state without waiting for retire cadence.
func (d *Domain) Reclaim(st *instrument.OpStats) {
	cur := d.tryAdvance(st)
	for i := range d.pins {
		p := &d.pins[i]
		if !p.lock.CompareAndSwap(false, true) {
			continue
		}
		p.drainLocked(cur, st)
		p.lock.Store(false)
	}
}

// Pending returns the number of retirees currently parked in epoch slots
// awaiting their grace period (diagnostic; scans every stripe).
func (d *Domain) Pending() int {
	total := 0
	for i := range d.pins {
		p := &d.pins[i]
		if !p.lock.CompareAndSwap(false, true) {
			continue
		}
		for j := range p.slots {
			total += len(p.slots[j].nodes)
		}
		p.lock.Store(false)
	}
	return total
}

// Dropped returns the number of retirees abandoned to the garbage
// collector (stalled epochs, stripe contention, or full pools).
func (d *Domain) Dropped() uint64 { return d.dropped.Load() }

// Recycled returns the number of retirees pushed onto free lists.
func (d *Domain) Recycled() uint64 { return d.recycled.Load() }

// poolShard is one per-P stripe of a Pool: a try-locked LIFO of free
// nodes, padded so stripes never share a cache line.
type poolShard struct {
	lock  atomic.Bool
	items []any
	_     [cacheLine - 25]byte
}

// Pool is a striped free list of recycled nodes, the destination side of
// RetireNode. Get and tryPut touch a goroutine-affine stripe first and
// are non-blocking throughout; Get steals from other stripes when the
// affine one is empty (retire and construction sites sit at different
// stack depths, so the same goroutine may hash to different stripes).
type Pool struct {
	shards []poolShard
	mask   uint32
	cap    int
}

// NewPool returns a free list with the given per-stripe capacity (values
// < 1 select a default sized generously above the retire cadence, so a
// single-goroutine churn loop never starves between drains).
func NewPool(perShard int) *Pool {
	if perShard < 1 {
		perShard = 4 * advanceEvery
	}
	n := stripeCount()
	p := &Pool{shards: make([]poolShard, n), mask: uint32(n - 1), cap: perShard}
	for i := range p.shards {
		p.shards[i].items = make([]any, 0, perShard)
	}
	return p
}

// Get pops a free node, or returns nil when none is available (the caller
// then allocates). The affine stripe is tried first, then the others are
// scanned; every probe is a try-lock, so Get never blocks.
func (p *Pool) Get(st *instrument.OpStats) any {
	start := stripeIndex() & p.mask
	for i := uint32(0); i <= p.mask; i++ {
		sh := &p.shards[(start+i)&p.mask]
		// sh.items may only be examined under the try-lock (the length
		// read would otherwise race with a concurrent append).
		if !sh.lock.CompareAndSwap(false, true) {
			continue
		}
		if last := len(sh.items) - 1; last >= 0 {
			n := sh.items[last]
			sh.items[last] = nil
			sh.items = sh.items[:last]
			sh.lock.Store(false)
			st.IncFreelist(true)
			return n
		}
		sh.lock.Store(false)
	}
	st.IncFreelist(false)
	return nil
}

// Put pushes a node onto the affine stripe; false when the stripe is
// contended or full (the node is then left to the GC). Callers other
// than the drain use it for nodes that were never published — those need
// no grace period.
func (p *Pool) Put(n any) bool {
	sh := &p.shards[stripeIndex()&p.mask]
	if !sh.lock.CompareAndSwap(false, true) {
		return false
	}
	ok := len(sh.items) < p.cap
	if ok {
		sh.items = append(sh.items, n)
	}
	sh.lock.Store(false)
	return ok
}

// Free returns the number of nodes currently available (diagnostic).
func (p *Pool) Free() int {
	total := 0
	for i := range p.shards {
		sh := &p.shards[i]
		if !sh.lock.CompareAndSwap(false, true) {
			continue
		}
		total += len(sh.items)
		sh.lock.Store(false)
	}
	return total
}
