// Package ebr implements epoch-based memory reclamation for the lock-free
// data structures in this repository.
//
// The paper's conclusion leaves memory management as future work and
// points at Valois's reference counting; on a garbage-collected runtime
// nothing needs reclaiming for safety, but an explicit scheme is still
// what a non-GC port (or an object-pooling deployment) requires, so this
// package provides the standard three-epoch scheme (Fraser 2003, the same
// thesis the paper cites for the competing skip list):
//
//   - every operation runs inside a critical section (Enter/Exit on a
//     per-goroutine Handle);
//   - a node removed from the structure is Retired, not freed;
//   - the global epoch advances only when every active handle has
//     observed the current epoch, so once it has advanced twice, no
//     handle can still hold a reference from the retirement epoch and the
//     retired batch is freed (here: handed to a recycler such as a
//     sync.Pool).
//
// The FR list's three-step deletion makes the integration exact: the
// single successful physical-deletion C&S is the unique point at which a
// node leaves the structure, so core.List's retire hook fires exactly
// once per node.
package ebr

import (
	"sync"
	"sync/atomic"

	"repro/internal/instrument"
)

// epochSlots is the classic three-slot scheme: retirees from epoch e are
// freed once the global epoch reaches e+2.
const epochSlots = 3

// advanceEvery bounds retire-list growth: every Nth retirement attempts
// to advance the global epoch.
const advanceEvery = 64

// Domain coordinates epochs across a set of handles. Create one Domain
// per data structure (or share one across structures whose operations are
// mutually visible). The zero value is not usable; call NewDomain.
type Domain struct {
	epoch atomic.Uint64

	mu      sync.Mutex
	handles []*Handle

	// pins are the striped shareable critical sections used by the node-
	// recycling layer (recycle.go); sized and indexed like ShardedInt64
	// shards. Fixed at construction, so reads need no lock.
	pins    []Pin
	pinMask uint32

	freed    atomic.Uint64
	retired  atomic.Uint64
	dropped  atomic.Uint64
	recycled atomic.Uint64
}

// NewDomain returns an empty domain at epoch 0.
func NewDomain() *Domain {
	d := &Domain{}
	n := stripeCount()
	d.pins = make([]Pin, n)
	d.pinMask = uint32(n - 1)
	for i := range d.pins {
		d.pins[i].d = d
		for j := range d.pins[i].slots {
			d.pins[i].slots[j].epoch = ^uint64(0)
		}
	}
	return d
}

// Epoch returns the current global epoch (diagnostic).
func (d *Domain) Epoch() uint64 { return d.epoch.Load() }

// Freed returns the number of retirees whose free callback has run.
func (d *Domain) Freed() uint64 { return d.freed.Load() }

// Retired returns the number of Retire calls so far.
func (d *Domain) Retired() uint64 { return d.retired.Load() }

// Register creates a handle. Each goroutine that performs operations must
// use its own handle; handles must not be shared.
func (d *Domain) Register() *Handle {
	h := &Handle{d: d}
	for i := range h.slots {
		h.slots[i].epoch = ^uint64(0)
	}
	d.mu.Lock()
	d.handles = append(d.handles, h)
	d.mu.Unlock()
	return h
}

// tryAdvance bumps the global epoch if every active handle and every
// occupied pin stripe has observed it. Returns the (possibly new) epoch.
// Only atomics are read from the pin stripes (never pin.lock), so there
// is no lock ordering between d.mu and the stripe try-locks.
func (d *Domain) tryAdvance(st *instrument.OpStats) uint64 {
	e := d.epoch.Load()
	for i := range d.pins {
		p := &d.pins[i]
		if p.count.Load() > 0 && p.local.Load() != e {
			return e
		}
	}
	d.mu.Lock()
	for _, h := range d.handles {
		if h.active.Load() && h.local.Load() != e {
			d.mu.Unlock()
			return e
		}
	}
	d.mu.Unlock()
	if d.epoch.CompareAndSwap(e, e+1) {
		st.IncEpochAdvance()
	}
	return d.epoch.Load()
}

// retireSlot is one epoch's batch of pending frees on one handle.
type retireSlot struct {
	epoch uint64
	frees []func()
}

// Handle is one participant's view of the domain. A handle is not safe
// for concurrent use; it is owned by one goroutine.
type Handle struct {
	d      *Domain
	active atomic.Bool
	local  atomic.Uint64

	slots  [epochSlots]retireSlot
	nsince int
}

// Enter begins a critical section: until Exit, every pointer read from
// the protected structure remains valid (its memory will not be recycled).
// Enter/Exit pairs must not nest.
func (h *Handle) Enter() {
	h.active.Store(true)
	// Publish the epoch we are pinning. A single re-read closes the
	// window where the epoch advanced between load and store.
	for {
		e := h.d.epoch.Load()
		h.local.Store(e)
		if h.d.epoch.Load() == e {
			break
		}
	}
	h.drain()
}

// Exit ends the critical section.
func (h *Handle) Exit() {
	h.active.Store(false)
}

// Retire schedules free to run once no concurrent critical section can
// still hold a reference acquired before this call. Must be called inside
// an Enter/Exit section.
func (h *Handle) Retire(free func()) {
	h.d.retired.Add(1)
	e := h.d.epoch.Load()
	slot := &h.slots[e%epochSlots]
	if slot.epoch != e {
		// The slot holds a batch from e-3 (or is empty); it is long past
		// its grace period.
		h.freeSlot(slot)
		slot.epoch = e
	}
	slot.frees = append(slot.frees, free)
	h.nsince++
	if h.nsince >= advanceEvery {
		h.nsince = 0
		h.d.tryAdvance(nil)
		h.drain()
	}
}

// drain frees every batch whose grace period has elapsed: batches retired
// in epochs <= current-2.
func (h *Handle) drain() {
	cur := h.d.epoch.Load()
	for i := range h.slots {
		s := &h.slots[i]
		if s.epoch != ^uint64(0) && s.epoch+2 <= cur && len(s.frees) > 0 {
			h.freeSlot(s)
		}
	}
}

// freeSlot runs and clears a batch.
func (h *Handle) freeSlot(s *retireSlot) {
	for _, f := range s.frees {
		f()
	}
	h.d.freed.Add(uint64(len(s.frees)))
	s.frees = s.frees[:0]
}

// Flush force-frees every pending batch on this handle. Only safe in a
// quiescent state (no concurrent critical sections); used at shutdown and
// in tests.
func (h *Handle) Flush() {
	for i := range h.slots {
		if h.slots[i].epoch != ^uint64(0) {
			h.freeSlot(&h.slots[i])
		}
	}
}
