package ebr_test

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ebr"
)

// These tests wire the domain into the structures' retire seams and check
// the accounting exactly: the physical-deletion C&S is the unique point a
// node leaves the structure, so the number of Retire calls must equal the
// number of physical deletions - no node retired twice, none missed.

// flatRng forces every skip-list tower to height 1, making one physical
// deletion per deleted key.
func flatRng() uint64 { return 0 }

func TestRetireHookCountsListDeletions(t *testing.T) {
	d := ebr.NewDomain()
	h := d.Register()
	l := core.NewList[int, int]()
	l.SetRetireHook(func(node any) {
		if _, ok := node.(*core.Node[int, int]); !ok {
			t.Errorf("retire hook got %T, want *core.Node", node)
		}
		h.Retire(func() {})
	})
	h.Enter()
	for k := 0; k < 100; k++ {
		l.Insert(nil, k, k)
	}
	if got := d.Retired(); got != 0 {
		t.Fatalf("Retired after inserts = %d, want 0", got)
	}
	for k := 0; k < 60; k++ {
		if _, ok := l.Delete(nil, k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	for k := 200; k < 210; k++ { // absent keys must not retire anything
		l.Delete(nil, k)
	}
	h.Exit()
	if got := d.Retired(); got != 60 {
		t.Fatalf("Retired = %d, want 60 (one per physical deletion)", got)
	}
	h.Flush()
	if d.Freed() != d.Retired() {
		t.Fatalf("Freed = %d, Retired = %d; Flush must drain everything", d.Freed(), d.Retired())
	}
}

// TestRetireHookCountsSkipListTowers checks the per-level accounting with
// random tower heights: deleting every key must retire exactly one node
// per tower level, measured independently via the height histogram.
func TestRetireHookCountsSkipListTowers(t *testing.T) {
	d := ebr.NewDomain()
	h := d.Register()
	l := core.NewSkipList[int, int](core.WithRetireHook(func(node any) {
		if _, ok := node.(*core.SLNode[int, int]); !ok {
			t.Errorf("retire hook got %T, want *core.SLNode", node)
		}
		h.Retire(func() {})
	}))
	const n = 256
	h.Enter()
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	var levelNodes uint64
	for height, towers := range l.Heights() {
		levelNodes += uint64((height + 1) * towers)
	}
	for k := 0; k < n; k++ {
		if _, ok := l.Delete(nil, k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	h.Exit()
	if got := d.Retired(); got != levelNodes {
		t.Fatalf("Retired = %d, want %d (every level node of every tower, exactly once)", got, levelNodes)
	}
	h.Flush()
	if d.Freed() != d.Retired() {
		t.Fatalf("Freed = %d, Retired = %d", d.Freed(), d.Retired())
	}
}

// TestRetireConcurrentChurn runs the real integration shape: one domain,
// one handle per goroutine routed through Proc.Retire (the physical
// deletion fires on whichever goroutine wins the C&S, under that
// goroutine's Proc), with the structure-level hook counting in parallel.
// After the churn, retire counts from both seams must equal the number of
// successful deletes.
func TestRetireConcurrentChurn(t *testing.T) {
	const (
		workers = 6
		rounds  = 3000
		span    = 128
	)
	for _, tc := range []struct {
		name string
		make func(hook func(any)) interface {
			Insert(p *core.Proc, k, v int) bool
			Delete(p *core.Proc, k int) bool
		}
	}{
		{"list", func(hook func(any)) interface {
			Insert(p *core.Proc, k, v int) bool
			Delete(p *core.Proc, k int) bool
		} {
			l := core.NewList[int, int]()
			l.SetRetireHook(hook)
			return listOps{l}
		}},
		{"skiplist", func(hook func(any)) interface {
			Insert(p *core.Proc, k, v int) bool
			Delete(p *core.Proc, k int) bool
		} {
			l := core.NewSkipList[int, int](core.WithRandomSource(flatRng), core.WithRetireHook(hook))
			return skipOps{l}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := ebr.NewDomain()
			var hookRetires atomic.Uint64
			s := tc.make(func(any) { hookRetires.Add(1) })
			var deletes atomic.Uint64
			handles := make([]*ebr.Handle, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				handles[w] = d.Register()
				wg.Add(1)
				go func(w int, h *ebr.Handle) {
					defer wg.Done()
					p := &core.Proc{ID: w, Retire: func(any) { h.Retire(func() {}) }}
					rng := rand.New(rand.NewPCG(uint64(w), 41))
					for r := 0; r < rounds; r++ {
						k := rng.IntN(span)
						h.Enter()
						if rng.IntN(2) == 0 {
							s.Insert(p, k, k)
						} else if s.Delete(p, k) {
							deletes.Add(1)
						}
						h.Exit()
					}
				}(w, handles[w])
			}
			wg.Wait()
			// Quiescent: every logically deleted node has been physically
			// unlinked (the invariant checkers enforce this elsewhere), so
			// both seams must have seen exactly one call per delete.
			if hookRetires.Load() != deletes.Load() {
				t.Fatalf("structure hook retired %d nodes, %d successful deletes",
					hookRetires.Load(), deletes.Load())
			}
			if d.Retired() != deletes.Load() {
				t.Fatalf("domain retired %d nodes, %d successful deletes",
					d.Retired(), deletes.Load())
			}
			for _, h := range handles {
				h.Flush()
			}
			if d.Freed() != d.Retired() {
				t.Fatalf("Freed = %d, Retired = %d after flushing every handle",
					d.Freed(), d.Retired())
			}
		})
	}
}

type listOps struct{ l *core.List[int, int] }

func (o listOps) Insert(p *core.Proc, k, v int) bool { _, ok := o.l.Insert(p, k, v); return ok }
func (o listOps) Delete(p *core.Proc, k int) bool    { _, ok := o.l.Delete(p, k); return ok }

type skipOps struct{ l *core.SkipList[int, int] }

func (o skipOps) Insert(p *core.Proc, k, v int) bool { _, ok := o.l.Insert(p, k, v); return ok }
func (o skipOps) Delete(p *core.Proc, k int) bool    { _, ok := o.l.Delete(p, k); return ok }

// TestIntegrationWithCoreList wires the domain into the FR list through
// the Proc.Retire hook and checks the end-to-end contract: every
// physically deleted node is retired exactly once, frees lag retirement by
// the grace period, and a pinned reader is never exposed to a recycled
// node.
func TestIntegrationWithCoreList(t *testing.T) {
	d := ebr.NewDomain()
	l := core.NewList[int, int]()
	const workers, ops, keyRange = 4, 4000, 64
	var wg sync.WaitGroup
	var retired atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.Register()
			p := &core.Proc{ID: w, Retire: func(n any) {
				retired.Add(1)
				h.Retire(func() {
					// A recycler would reset and pool n here.
					_ = n
				})
			}}
			rng := rand.New(rand.NewPCG(uint64(w), 8))
			for i := 0; i < ops; i++ {
				h.Enter()
				k := int(rng.Uint64N(keyRange))
				if rng.Uint64N(2) == 0 {
					l.Insert(p, k, k)
				} else {
					l.Delete(p, k)
				}
				h.Exit()
			}
			h.Flush()
		}(w)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if retired.Load() == 0 {
		t.Fatal("no nodes were retired")
	}
	if d.Freed() != d.Retired() {
		t.Fatalf("freed %d of %d after flush", d.Freed(), d.Retired())
	}
	// Exactly-once retirement: retirement count equals nodes that left
	// the list = successful inserts that were later deleted.
	if got := uint64(retired.Load()); got != d.Retired() {
		t.Fatalf("retire hook fired %d times, domain saw %d", got, d.Retired())
	}
}

// TestIntegrationReaderSafety pins a reader on a node mid-deletion and
// checks the free callback cannot run until the reader exits.
func TestIntegrationReaderSafety(t *testing.T) {
	d := ebr.NewDomain()
	l := core.NewList[int, int]()
	l.Insert(nil, 1, 1)
	l.Insert(nil, 2, 2)

	reader := d.Register()
	writer := d.Register()

	reader.Enter()
	node := l.Search(nil, 2) // the reader holds this pointer
	if node == nil {
		t.Fatal("setup failed")
	}

	freed := make(chan struct{})
	writer.Enter()
	p := &core.Proc{Retire: func(n any) {
		writer.Retire(func() { close(freed) })
	}}
	if _, ok := l.Delete(p, 2); !ok {
		t.Fatal("delete failed")
	}
	writer.Exit()

	// Churn the writer; the pinned reader must hold the free back.
	for i := 0; i < 200; i++ {
		writer.Enter()
		writer.Exit()
		d.TryAdvanceForTest()
	}
	select {
	case <-freed:
		t.Fatal("node freed while the reader still held it")
	default:
	}
	// Reader can still safely read the (logically deleted) node.
	if node.Key() != 2 || node.Value() != 2 {
		t.Fatal("reader saw corrupted node")
	}
	reader.Exit()
	for i := 0; i < 4; i++ {
		d.TryAdvanceForTest()
		writer.Enter()
		writer.Exit()
	}
	select {
	case <-freed:
	default:
		t.Fatal("node never freed after the reader exited")
	}
}

func BenchmarkListOpsWithReclamation(b *testing.B) {
	for _, mode := range []string{"bare", "ebr"} {
		b.Run(mode, func(b *testing.B) {
			d := ebr.NewDomain()
			h := d.Register()
			l := core.NewList[int, int]()
			var p *core.Proc
			if mode == "ebr" {
				p = &core.Proc{Retire: func(n any) { h.Retire(func() {}) }}
			}
			for k := 0; k < 512; k += 2 {
				l.Insert(nil, k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := (i*2 + 1) % 512
				if mode == "ebr" {
					h.Enter()
				}
				l.Insert(p, k, k)
				l.Delete(p, k)
				if mode == "ebr" {
					h.Exit()
				}
			}
		})
	}
}
