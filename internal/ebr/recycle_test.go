package ebr

import (
	"sync"
	"testing"

	"repro/internal/instrument"
)

// node is a stand-in retiree for the pool tests.
type node struct{ id int }

func TestPoolPutGet(t *testing.T) {
	p := NewPool(8)
	a, b := &node{1}, &node{2}
	if !p.Put(a) || !p.Put(b) {
		t.Fatal("Put into an empty pool failed")
	}
	if p.Free() != 2 {
		t.Fatalf("Free = %d, want 2", p.Free())
	}
	seen := map[*node]bool{}
	for i := 0; i < 2; i++ {
		raw := p.Get(nil)
		if raw == nil {
			t.Fatalf("Get %d returned nil with %d free", i, p.Free())
		}
		seen[raw.(*node)] = true
	}
	if !seen[a] || !seen[b] {
		t.Fatalf("Get did not return the Put nodes: %v", seen)
	}
	if p.Get(nil) != nil {
		t.Fatal("Get from a drained pool returned a node")
	}
}

func TestPoolPutRespectsCap(t *testing.T) {
	p := NewPool(2)
	// A single goroutine at one call depth lands on one stripe, so the
	// per-stripe cap is observable directly.
	put := 0
	for i := 0; i < 10; i++ {
		if p.Put(&node{i}) {
			put++
		}
	}
	if put != 2 {
		t.Fatalf("accepted %d puts on one stripe, want cap 2", put)
	}
}

// TestPoolGetSteals fills stripes from many goroutines (distinct stacks →
// distinct affine stripes) and drains everything from one goroutine: Get
// must steal across stripes rather than see only its own.
func TestPoolGetSteals(t *testing.T) {
	p := NewPool(64)
	const total = 48
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !p.Put(&node{i}) {
			}
		}(i)
	}
	wg.Wait()
	if p.Free() != total {
		t.Fatalf("Free = %d after %d puts", p.Free(), total)
	}
	got := 0
	for p.Get(nil) != nil {
		got++
	}
	if got != total {
		t.Fatalf("single-goroutine drain got %d of %d nodes", got, total)
	}
}

// TestPinBlocksRecycle is the recycling twin of TestActiveHandlePinsEpoch:
// while any Pin from the retirement epoch is held, retirees must not reach
// the free list; once it is released, Reclaim pushes them onto the pool.
func TestPinBlocksRecycle(t *testing.T) {
	d := NewDomain()
	pool := NewPool(0)

	reader := d.Pin() // pins the current epoch

	writer := d.Pin()
	n := &node{7}
	d.RetireNode(pool, n, nil)
	writer.Unpin()

	for i := 0; i < 10; i++ {
		d.Reclaim(nil)
	}
	if got := d.Recycled(); got != 0 {
		t.Fatalf("recycled %d nodes while a reader from the retirement epoch was pinned", got)
	}
	if pool.Free() != 0 {
		t.Fatalf("pool has %d free nodes while the reader is pinned", pool.Free())
	}

	reader.Unpin()
	for i := 0; i < 3; i++ {
		d.Reclaim(nil)
	}
	if d.Recycled() != 1 {
		t.Fatalf("Recycled = %d after the reader left, want 1", d.Recycled())
	}
	if raw := pool.Get(nil); raw != n {
		t.Fatalf("Get = %v, want the retired node back", raw)
	}
}

// TestPinNests: pins on the same stripe share a count; the stripe stays
// occupied until every nested pin is released.
func TestPinNests(t *testing.T) {
	d := NewDomain()
	pool := NewPool(0)
	outer := d.Pin()
	inner := d.Pin() // same goroutine, same call depth → same stripe is likely but not required
	d.RetireNode(pool, &node{1}, nil)
	inner.Unpin()
	for i := 0; i < 10; i++ {
		d.Reclaim(nil)
	}
	if d.Recycled() != 0 {
		t.Fatal("recycled while the outer pin was still held")
	}
	outer.Unpin()
	for i := 0; i < 3; i++ {
		d.Reclaim(nil)
	}
	if d.Recycled() != 1 {
		t.Fatalf("Recycled = %d after full unpin, want 1", d.Recycled())
	}
}

// TestEpochStallBound: a pinned-but-idle critical section must bound
// retire-list growth, not leak it. Past the per-slot cap, retirements are
// abandoned to the GC and surface as ebr_stalled_epochs / Dropped.
func TestEpochStallBound(t *testing.T) {
	d := NewDomain()
	pool := NewPool(0)
	st := &instrument.OpStats{}

	stalled := d.Pin() // held across the whole churn: the stalled reader
	const churn = 5 * retireSlotCap
	for i := 0; i < churn; i++ {
		d.RetireNode(pool, &node{i}, st)
	}

	// One goroutine retires onto one stripe; the pinned stripe lets the
	// epoch advance at most once (its published epoch then goes stale), so
	// at most two of the three slots can hold un-drainable batches.
	if limit := epochSlots * retireSlotCap; d.Pending() > limit {
		t.Fatalf("stalled epoch retained %d retirees, want <= %d", d.Pending(), limit)
	}
	if d.Dropped() == 0 {
		t.Fatal("no retirees were dropped to the GC despite the stalled epoch")
	}
	if st.StalledEpochs == 0 {
		t.Fatal("ebr_stalled_epochs counter did not move")
	}
	if d.Recycled() != 0 {
		t.Fatalf("recycled %d nodes under a stalled epoch", d.Recycled())
	}

	// Releasing the stall drains what was retained; nothing leaks.
	stalled.Unpin()
	for i := 0; i < 4; i++ {
		d.Reclaim(st)
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d after the stall cleared", d.Pending())
	}
	if d.Recycled() == 0 {
		t.Fatal("nothing recycled after the stall cleared")
	}
	if got, want := d.Recycled()+d.Dropped(), uint64(churn); got != want {
		t.Fatalf("recycled %d + dropped %d = %d, want every retiree accounted (%d)",
			d.Recycled(), d.Dropped(), got, want)
	}
	if st.EpochAdvances == 0 {
		t.Fatal("ebr_epoch_advances counter did not move")
	}
}

// TestRetireNodeCounters: the happy path moves every telemetry counter the
// exposition exports.
func TestRetireNodeCounters(t *testing.T) {
	d := NewDomain()
	pool := NewPool(0)
	st := &instrument.OpStats{}
	const churn = 4 * advanceEvery
	for i := 0; i < churn; i++ {
		p := d.Pin()
		d.RetireNode(pool, &node{i}, st)
		p.Unpin()
	}
	for i := 0; i < 4; i++ {
		d.Reclaim(st)
	}
	if d.Recycled() == 0 || pool.Free() == 0 {
		t.Fatalf("Recycled = %d, pool.Free = %d after quiescent reclaim", d.Recycled(), pool.Free())
	}
	if st.NodesRecycled == 0 {
		t.Fatal("nodes_recycled counter did not move")
	}
	if st.EpochAdvances == 0 {
		t.Fatal("ebr_epoch_advances counter did not move")
	}
	if raw := pool.Get(st); raw == nil {
		t.Fatal("Get missed with a stocked pool")
	}
	if st.FreelistHits == 0 {
		t.Fatal("freelist_hits counter did not move")
	}
	for pool.Get(st) != nil {
	}
	if st.FreelistMisses == 0 {
		t.Fatal("freelist_misses counter did not move")
	}
}

// TestPinConcurrentChurn hammers Pin/RetireNode/Reclaim from many
// goroutines; the -race rounds in scripts/check.sh run it at
// GOMAXPROCS=2 and 8. Every retiree must be recycled or dropped, never
// both, never lost.
func TestPinConcurrentChurn(t *testing.T) {
	d := NewDomain()
	pool := NewPool(0)
	const workers = 8
	const perWorker = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &instrument.OpStats{}
			for i := 0; i < perWorker; i++ {
				p := d.Pin()
				d.RetireNode(pool, &node{w*perWorker + i}, st)
				if i%7 == 0 {
					pool.Get(st)
				}
				p.Unpin()
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 6; i++ {
		d.Reclaim(nil)
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d after quiescent reclaim", d.Pending())
	}
	if d.Epoch() == 0 {
		t.Fatal("epoch never advanced under churn")
	}
	if got, want := d.Recycled()+d.Dropped(), uint64(workers*perWorker); got != want {
		t.Fatalf("recycled %d + dropped %d = %d, want %d", d.Recycled(), d.Dropped(), got, want)
	}
}

func BenchmarkPinUnpin(b *testing.B) {
	d := NewDomain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Pin().Unpin()
	}
}

func BenchmarkRetireRecycle(b *testing.B) {
	d := NewDomain()
	pool := NewPool(0)
	// Prime the pipeline so Get hits at steady state.
	for i := 0; i < 512; i++ {
		p := d.Pin()
		d.RetireNode(pool, &node{i}, nil)
		p.Unpin()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := d.Pin()
		n := pool.Get(nil)
		if n == nil {
			n = &node{i}
		}
		d.RetireNode(pool, n, nil)
		p.Unpin()
	}
}
