package core

import (
	"testing"

	"repro/internal/seqskip"
)

// FuzzListAgainstModel feeds arbitrary operation scripts to the list and a
// map model. Each byte encodes one operation: the low 2 bits pick the
// operation, the rest the key.
func FuzzListAgainstModel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x04, 0x05, 0x06})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x00, 0x01})
	f.Add([]byte("insert-delete-search-repeat"))
	f.Fuzz(func(t *testing.T, script []byte) {
		l := NewList[int, int]()
		model := map[int]int{}
		for _, b := range script {
			k := int(b >> 2)
			switch b & 3 {
			case 0, 3:
				_, in := model[k]
				if _, ok := l.Insert(nil, k, k); ok == in {
					t.Fatalf("Insert(%d) disagrees with model", k)
				}
				model[k] = k
			case 1:
				_, in := model[k]
				if _, ok := l.Delete(nil, k); ok != in {
					t.Fatalf("Delete(%d) disagrees with model", k)
				}
				delete(model, k)
			case 2:
				_, in := model[k]
				if got := l.Search(nil, k) != nil; got != in {
					t.Fatalf("Search(%d) disagrees with model", k)
				}
			}
		}
		if l.Len() != len(model) {
			t.Fatalf("Len = %d, model = %d", l.Len(), len(model))
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSkipListAgainstSeqskip feeds the same scripts to the concurrent skip
// list and Pugh's sequential one, with the structure validator run at the
// end.
func FuzzSkipListAgainstSeqskip(f *testing.F) {
	f.Add(uint64(1), []byte{})
	f.Add(uint64(2), []byte{0x00, 0x01, 0x02})
	f.Add(uint64(3), []byte("tower construction and teardown"))
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		l := NewSkipList[int, int](WithRandomSource(testRNG(seed)))
		model := seqskip.New[int, int](0, testRNG(seed+1))
		for _, b := range script {
			k := int(b >> 2)
			switch b & 3 {
			case 0, 3:
				_, ok := l.Insert(nil, k, k)
				if ok != model.Insert(k, k) {
					t.Fatalf("Insert(%d) disagrees", k)
				}
			case 1:
				_, ok := l.Delete(nil, k)
				if ok != model.Delete(k) {
					t.Fatalf("Delete(%d) disagrees", k)
				}
			case 2:
				if (l.Search(nil, k) != nil) != model.Contains(k) {
					t.Fatalf("Search(%d) disagrees", k)
				}
			}
		}
		if l.Len() != model.Len() {
			t.Fatalf("Len = %d, model = %d", l.Len(), model.Len())
		}
		if err := l.CheckStructure(); err != nil {
			t.Fatal(err)
		}
	})
}
