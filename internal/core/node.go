// Package core implements the lock-free sorted linked list and skip list of
// Fomitchev and Ruppert, "Lock-Free Linked Lists and Skip Lists" (PODC 2004).
//
// The linked list follows the paper's Figures 3-5: deletion is a three-step
// protocol (flag the predecessor, set the victim's backlink and mark it,
// physically unlink it), and operations that fail a C&S because of a
// concurrent deletion recover by walking backlinks instead of restarting
// from the head.
//
// Go has no spare pointer bits, so the paper's composite successor word
// (right pointer + mark bit + flag bit) is represented by an immutable
// successor record swapped with a single-word CAS on an atomic.Pointer.
// A record is never mutated after publication, so the paper's central
// invariant - a marked successor field never changes - holds by
// construction, and the garbage collector rules out ABA.
package core

import (
	"sync/atomic"
)

// nodeKind distinguishes the two sentinel nodes from interior nodes.
// Sentinels let the list hold arbitrary ordered keys without reserving
// -inf/+inf key values.
type nodeKind int8

const (
	kindInterior nodeKind = iota
	kindHead              // compares less than every key
	kindTail              // compares greater than every key
)

// succ is the paper's composite successor field: (right, mark, flag).
// Records are immutable; every successful C&S installs a fresh record.
type succ[K comparable, V any] struct {
	right   *Node[K, V]
	marked  bool
	flagged bool
}

// Node is a single cell of the lock-free linked list. Key and value are
// fixed at creation; succ and backlink are the only mutable fields.
type Node[K comparable, V any] struct {
	key  K
	val  V
	kind nodeKind

	succ     atomic.Pointer[succ[K, V]]
	backlink atomic.Pointer[Node[K, V]]
}

// Key returns the node's key. Calling Key on a sentinel is invalid; the
// list never hands sentinels to callers.
func (n *Node[K, V]) Key() K { return n.key }

// Value returns the element stored when the node was inserted. Values are
// immutable for the lifetime of a node, matching the paper's dictionary
// semantics (no update operation).
func (n *Node[K, V]) Value() V { return n.val }

// loadSucc returns the current successor record. It is never nil after the
// node is published.
func (n *Node[K, V]) loadSucc() *succ[K, V] { return n.succ.Load() }

// marked reports whether the node is logically deleted (its mark bit set).
func (n *Node[K, V]) marked() bool {
	s := n.succ.Load()
	return s != nil && s.marked
}

// right returns the current right pointer, ignoring mark/flag bits.
func (n *Node[K, V]) right() *Node[K, V] { return n.succ.Load().right }

// Key comparisons treating sentinels as -inf/+inf live on the List (it
// owns the compare function); see List.cmpNode and List.nodeLeq.
