// Package core implements the lock-free sorted linked list and skip list of
// Fomitchev and Ruppert, "Lock-Free Linked Lists and Skip Lists" (PODC 2004).
//
// The linked list follows the paper's Figures 3-5: deletion is a three-step
// protocol (flag the predecessor, set the victim's backlink and mark it,
// physically unlink it), and operations that fail a C&S because of a
// concurrent deletion recover by walking backlinks instead of restarting
// from the head.
//
// Go has no spare pointer bits, so the paper's composite successor word
// (right pointer + mark bit + flag bit) is represented by an immutable
// successor record swapped with a single-word CAS on an atomic.Pointer.
// A record is never mutated after publication, so the paper's central
// invariant - a marked successor field never changes - holds by
// construction.
//
// Records are interned: every node carries the three records that can ever
// point at it - clean {right: n}, flagged {right: n, flagged} and marked
// {right: n, marked} - built once, inside the node's own allocation. Each
// C&S site installs the target node's interned record instead of
// allocating a fresh one, so the steady-state hot path (Search, Delete,
// failed Insert retries) performs zero heap allocations. Because the
// (right, marked, flagged) triple determines the record pointer uniquely,
// CAS identity comparison on interned records is exactly the paper's
// structural comparison on its tagged successor word; see DESIGN.md §2.1
// for the ABA argument this relies on.
package core

import (
	"sync/atomic"
)

// nodeKind distinguishes the two sentinel nodes from interior nodes.
// Sentinels let the list hold arbitrary ordered keys without reserving
// -inf/+inf key values.
type nodeKind int8

const (
	kindInterior nodeKind = iota
	kindHead              // compares less than every key
	kindTail              // compares greater than every key
)

// succ is the paper's composite successor field: (right, mark, flag).
// Records are immutable after publication; every record that points at a
// live node is one of that node's three interned records (see Node.refs),
// so installing one is allocation-free.
type succ[K comparable, V any] struct {
	right   *Node[K, V]
	marked  bool
	flagged bool
}

// Indices into a node's interned record array.
const (
	refClean   = iota // {right: n}
	refFlagged        // {right: n, flagged: true}
	refMarked         // {right: n, marked: true}
	numRefs
)

// Node is a single cell of the lock-free linked list. Key and value are
// fixed at creation; succ and backlink are the only mutable fields.
type Node[K comparable, V any] struct {
	key  K
	val  V
	kind nodeKind

	succ     atomic.Pointer[succ[K, V]]
	backlink atomic.Pointer[Node[K, V]]

	// refs holds the node's interned successor records: the only records
	// whose right pointer is this node. They are written once by intern,
	// before the node is published, and immutable afterwards. Embedding
	// them costs 3 records (48 bytes) inside the node's single allocation
	// and buys zero-allocation C&S everywhere.
	refs [numRefs]succ[K, V]
}

// intern builds the node's interned successor records. It must run exactly
// once, after allocation and before the node is reachable by any other
// goroutine; every constructor below and in skiplist.go does so.
func (n *Node[K, V]) intern() {
	n.refs[refClean] = succ[K, V]{right: n}
	n.refs[refFlagged] = succ[K, V]{right: n, flagged: true}
	n.refs[refMarked] = succ[K, V]{right: n, marked: true}
}

// asClean returns the interned record (n, unmarked, unflagged): "successor
// is n". This is the interning API used by every C&S site; the returned
// record must never be mutated.
func (n *Node[K, V]) asClean() *succ[K, V] { return &n.refs[refClean] }

// asFlagged returns the interned record (n, unmarked, flagged): "successor
// is n and n is being deleted".
func (n *Node[K, V]) asFlagged() *succ[K, V] { return &n.refs[refFlagged] }

// asMarked returns the interned record (n, marked, unflagged): "successor
// is n and the holder is logically deleted".
func (n *Node[K, V]) asMarked() *succ[K, V] { return &n.refs[refMarked] }

// makeNode allocates and interns an interior node in one heap allocation.
func makeNode[K comparable, V any](key K, val V) *Node[K, V] {
	n := &Node[K, V]{key: key, val: val}
	n.intern()
	return n
}

// makeSentinel allocates and interns a head or tail sentinel.
func makeSentinel[K comparable, V any](kind nodeKind) *Node[K, V] {
	n := &Node[K, V]{kind: kind}
	n.intern()
	return n
}

// Key returns the node's key. Calling Key on a sentinel is invalid; the
// list never hands sentinels to callers.
func (n *Node[K, V]) Key() K { return n.key }

// Value returns the element stored when the node was inserted. Values are
// immutable for the lifetime of a node, matching the paper's dictionary
// semantics (no update operation).
func (n *Node[K, V]) Value() V { return n.val }

// loadSucc returns the current successor record. It is never nil after the
// node is published.
func (n *Node[K, V]) loadSucc() *succ[K, V] { return n.succ.Load() }

// marked reports whether the node is logically deleted (its mark bit set).
func (n *Node[K, V]) marked() bool {
	s := n.succ.Load()
	return s != nil && s.marked
}

// right returns the current right pointer, ignoring mark/flag bits.
func (n *Node[K, V]) right() *Node[K, V] { return n.succ.Load().right }

// Key comparisons treating sentinels as -inf/+inf live on the List (it
// owns the compare function); see List.cmpNode and List.nodeLeq.
