package core

import (
	"sync"
	"testing"
)

// Tests for EBR-backed node recycling (recycle.go): the zero-allocation
// steady-state contract, the epoch-stall bound, tower-atomic retirement,
// and identity reuse under churn. The adversary-schedule tests that pin a
// delayed C&S across delete→retire→recycle→re-insert live in
// internal/adversary.

// xorshiftRng returns a deterministic rng with varied tower heights, so
// the skip-list churn tests exercise multi-level towers without run-to-run
// flakiness.
func xorshiftRng() func() uint64 {
	s := uint64(0x9E3779B97F4A7C15)
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

// churnWarmup drives an insert-after-delete loop long enough to populate
// the free list, then drains every pending retiree so the measurement
// starts with a stocked pool.
func churnWarmup(ins func(k int), del func(k int), reclaim func()) {
	const span = 32
	for i := 0; i < 4096; i++ {
		ins(i % span)
		del(i % span)
	}
	for i := 0; i < 6; i++ {
		reclaim()
	}
}

func TestRecycleListChurnZeroAlloc(t *testing.T) {
	l := NewList[int, int]()
	l.EnableRecycling()
	churnWarmup(
		func(k int) { l.Insert(nil, k, k) },
		func(k int) { l.Delete(nil, k) },
		func() { l.ForceReclaim(nil) },
	)
	k := 0
	allocs := testing.AllocsPerRun(400, func() {
		if _, ok := l.Insert(nil, k%32, k); !ok {
			t.Fatalf("insert of absent key %d failed", k%32)
		}
		if _, ok := l.Delete(nil, k%32); !ok {
			t.Fatalf("delete of present key %d failed", k%32)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("steady-state insert-after-delete allocates %v objects per op with recycling, want 0", allocs)
	}
	recycled, _ := l.RecycleCounts()
	if recycled == 0 {
		t.Fatal("churn finished with zero recycled nodes")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
}

func TestRecycleSkipListChurnZeroAlloc(t *testing.T) {
	l := NewSkipList[int, int](WithRecycling(), WithRandomSource(xorshiftRng()))
	churnWarmup(
		func(k int) { l.Insert(nil, k, k) },
		func(k int) { l.Delete(nil, k) },
		func() { l.ForceReclaim(nil) },
	)
	k := 0
	allocs := testing.AllocsPerRun(400, func() {
		if _, ok := l.Insert(nil, k%32, k); !ok {
			t.Fatalf("insert of absent key %d failed", k%32)
		}
		if _, ok := l.Delete(nil, k%32); !ok {
			t.Fatalf("delete of present key %d failed", k%32)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("steady-state skip-list churn allocates %v objects per op with recycling, want 0 (towers included)", allocs)
	}
	recycled, _ := l.RecycleCounts()
	if recycled == 0 {
		t.Fatal("churn finished with zero recycled nodes")
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatalf("structure after churn: %v", err)
	}
}

// TestRecycleListReusesNodes pins the identity claim, not just the alloc
// count: a node retired through the domain comes back from the free list
// as the same pointer, with its interned successor records intact.
func TestRecycleListReusesNodes(t *testing.T) {
	l := NewList[int, int]()
	l.EnableRecycling()
	retired := map[*Node[int, int]]bool{}
	l.SetRetireHook(func(n any) { retired[n.(*Node[int, int])] = true })

	st := &OpStats{}
	p := &Proc{Stats: st}
	for i := 0; i < 512; i++ {
		l.Insert(p, i%8, i)
		l.Delete(p, i%8)
	}
	for i := 0; i < 6; i++ {
		l.ForceReclaim(p)
	}

	// Everything pending has drained; the next inserts must be served from
	// the free list, i.e. return pointers we saw retire.
	reused := 0
	for i := 0; i < 8; i++ {
		n, ok := l.Insert(p, i, i)
		if !ok {
			t.Fatalf("insert of absent key %d failed", i)
		}
		if retired[n] {
			reused++
		}
	}
	if reused == 0 {
		t.Fatalf("no insert returned a previously retired node (retired set: %d, freelist hits: %d)",
			len(retired), st.FreelistHits)
	}
	if st.FreelistHits == 0 || st.NodesRecycled == 0 || st.EpochAdvances == 0 {
		t.Fatalf("telemetry did not move: %+v", st)
	}
	for i := 0; i < 8; i++ {
		if v, ok := l.Get(p, i); !ok || v != i {
			t.Fatalf("Get(%d) = %v, %v after reuse", i, v, ok)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants after reuse: %v", err)
	}
}

// TestRecycleSkipListTowerAtomic: a deleted tower retires as one batch —
// every level node plus the root — and the whole batch is reusable after
// the grace period.
func TestRecycleSkipListTowerAtomic(t *testing.T) {
	const height = 4
	// Constant rng with three low bits set → every tower is height 4.
	l := NewSkipList[int, int](WithRecycling(), WithRandomSource(func() uint64 { return 0b0111 }))
	st := &OpStats{}
	p := &Proc{Stats: st}

	if _, ok := l.Insert(p, 1, 10); !ok {
		t.Fatal("insert failed")
	}
	if got := l.Heights()[height-1]; got != 1 {
		t.Fatalf("height histogram %v, want one height-%d tower (rng contract changed?)", l.Heights(), height)
	}
	if _, ok := l.Delete(p, 1); !ok {
		t.Fatal("delete failed")
	}
	// The tower is fully unlinked (single goroutine: Delete sweeps every
	// level), so the collapse has stamped all `height` nodes into the
	// current epoch together.
	if got := l.RetirePending(); got != height {
		t.Fatalf("RetirePending = %d after tower delete, want %d (tower must retire atomically)", got, height)
	}
	for i := 0; i < 6; i++ {
		l.ForceReclaim(p)
	}
	recycled, dropped := l.RecycleCounts()
	if recycled != height || dropped != 0 {
		t.Fatalf("recycled %d, dropped %d, want the whole tower (%d) recycled", recycled, dropped, height)
	}
	// Rebuilding an equal tower is now allocation-free.
	hits := st.FreelistHits
	if _, ok := l.Insert(p, 2, 20); !ok {
		t.Fatal("re-insert failed")
	}
	if st.FreelistHits-hits != height {
		t.Fatalf("re-insert hit the free list %d times, want %d", st.FreelistHits-hits, height)
	}
	if v, ok := l.Get(p, 2); !ok || v != 20 {
		t.Fatalf("Get after recycled rebuild = %v, %v", v, ok)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatalf("structure: %v", err)
	}
}

// TestRecycleStallBoundCore is satellite 3 at the structure level: a
// caller-held pin that never releases must bound retire-list growth (cap +
// ebr_stalled_epochs), and releasing it drains everything.
func TestRecycleStallBoundCore(t *testing.T) {
	l := NewList[int, int]()
	l.EnableRecycling()
	st := &OpStats{}
	p := &Proc{Stats: st}

	pin := l.PinEpoch() // the stalled reader; never Unpinned during churn
	const churn = 8192
	for i := 0; i < churn; i++ {
		l.Insert(p, i%16, i)
		l.Delete(p, i%16)
	}
	// One goroutine retires onto one stripe: 3 epoch slots × the per-slot
	// cap (1024) bounds what a stalled epoch can retain there.
	const bound = 3 * 1024
	if got := l.RetirePending(); got > bound {
		t.Fatalf("stalled epoch retained %d retirees, want <= %d", got, bound)
	}
	if _, dropped := l.RecycleCounts(); dropped == 0 {
		t.Fatal("no retirees dropped to the GC despite the stalled epoch")
	}
	if st.StalledEpochs == 0 {
		t.Fatal("ebr_stalled_epochs counter did not move")
	}

	pin.Unpin()
	for i := 0; i < 6; i++ {
		l.ForceReclaim(p)
	}
	if got := l.RetirePending(); got != 0 {
		t.Fatalf("RetirePending = %d after the stall cleared", got)
	}
	if recycled, _ := l.RecycleCounts(); recycled == 0 {
		t.Fatal("nothing recycled after the stall cleared")
	}
}

// TestRecyclePinnedProcFastPath: installing a caller-held pin in
// Proc.Epoch must keep operations correct (the per-op pin/unpin is
// skipped, not the protection).
func TestRecyclePinnedProcFastPath(t *testing.T) {
	l := NewList[int, int]()
	l.EnableRecycling()
	p := &Proc{}
	pin := l.PinEpoch()
	p.Epoch = pin
	for i := 0; i < 256; i++ {
		l.Insert(p, i%16, i)
		l.Delete(p, i%16)
	}
	p.Epoch = nil
	pin.Unpin()
	for i := 0; i < 6; i++ {
		l.ForceReclaim(p)
	}
	if got := l.RetirePending(); got != 0 {
		t.Fatalf("RetirePending = %d after unpin", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestRecycleFingerLifetimePin: a finger holds its pin until Reset, so
// reclamation stalls while the finger is warm and resumes after Reset.
func TestRecycleFingerLifetimePin(t *testing.T) {
	l := NewList[int, int]()
	l.EnableRecycling()
	for i := 0; i < 64; i++ {
		l.Insert(nil, i, i)
	}
	f := l.NewFinger()
	if v, ok := f.Get(nil, 7); !ok || v != 7 {
		t.Fatalf("finger Get = %v, %v", v, ok)
	}
	// Churn while the finger is warm: its pin pins the epoch, so pending
	// retirees must not recycle.
	for i := 0; i < 512; i++ {
		l.Insert(nil, 100+i%8, i)
		l.Delete(nil, 100+i%8)
	}
	for i := 0; i < 6; i++ {
		l.ForceReclaim(nil)
	}
	if recycled, _ := l.RecycleCounts(); recycled != 0 {
		t.Fatalf("recycled %d nodes while a finger held its lifetime pin", recycled)
	}
	f.Reset()
	for i := 0; i < 6; i++ {
		l.ForceReclaim(nil)
	}
	if recycled, _ := l.RecycleCounts(); recycled == 0 {
		t.Fatal("nothing recycled after the finger released its pin")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// Concurrent churn under recycling; the -race rounds in scripts/check.sh
// lean on these two for the delete→retire→recycle→re-insert interleavings
// the scheduler finds on its own.

func TestRecycleListConcurrentChurn(t *testing.T) {
	l := NewList[int, int]()
	l.EnableRecycling()
	const workers = 8
	const perWorker = 4000
	const span = 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &Proc{Stats: &OpStats{}, ID: w}
			for i := 0; i < perWorker; i++ {
				k := (w*31 + i) % span
				switch i % 4 {
				case 0, 1:
					l.Insert(p, k, i)
				case 2:
					l.Delete(p, k)
				default:
					l.Get(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 6; i++ {
		l.ForceReclaim(nil)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent recycled churn: %v", err)
	}
	recycled, dropped := l.RecycleCounts()
	if recycled == 0 {
		t.Fatalf("concurrent churn recycled nothing (dropped %d)", dropped)
	}
}

func TestRecycleSkipListConcurrentChurn(t *testing.T) {
	l := NewSkipList[int, int](WithRecycling())
	const workers = 8
	const perWorker = 4000
	const span = 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &Proc{Stats: &OpStats{}, ID: w}
			for i := 0; i < perWorker; i++ {
				k := (w*31 + i) % span
				switch i % 4 {
				case 0, 1:
					l.Insert(p, k, i)
				case 2:
					l.Delete(p, k)
				default:
					l.Get(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 6; i++ {
		l.ForceReclaim(nil)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatalf("structure after concurrent recycled churn: %v", err)
	}
	recycled, dropped := l.RecycleCounts()
	if recycled == 0 {
		t.Fatalf("concurrent churn recycled nothing (dropped %d)", dropped)
	}
}

// The churn benchmark pairs report allocs/op for the benchdiff gate:
// the Recycle rows must show 0 allocs/op, the NoRecycle rows show the
// per-op node cost they replace.

func BenchmarkAllocsListChurnNoRecycle(b *testing.B) {
	l := NewList[int, int]()
	l.Insert(nil, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(nil, 1, i)
		l.Delete(nil, 1)
	}
}

func BenchmarkAllocsListChurnRecycle(b *testing.B) {
	l := NewList[int, int]()
	l.EnableRecycling()
	churnWarmup(
		func(k int) { l.Insert(nil, k, k) },
		func(k int) { l.Delete(nil, k) },
		func() { l.ForceReclaim(nil) },
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(nil, 1, i)
		l.Delete(nil, 1)
	}
}

func BenchmarkAllocsSkipListChurnNoRecycle(b *testing.B) {
	l := NewSkipList[int, int](WithRandomSource(xorshiftRng()))
	l.Insert(nil, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(nil, 1, i)
		l.Delete(nil, 1)
	}
}

func BenchmarkAllocsSkipListChurnRecycle(b *testing.B) {
	l := NewSkipList[int, int](WithRecycling(), WithRandomSource(xorshiftRng()))
	churnWarmup(
		func(k int) { l.Insert(nil, k, k) },
		func(k int) { l.Delete(nil, k) },
		func() { l.ForceReclaim(nil) },
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(nil, 1, i)
		l.Delete(nil, 1)
	}
}
