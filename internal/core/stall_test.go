package core

import (
	"sync"
	"testing"
)

// multiGate parks a process every time it reaches the given point, until
// released; unlike gate it can fire more than once.
type multiGate struct {
	point   Point
	mu      sync.Mutex
	arrive  chan struct{}
	release chan struct{}
	stopped bool
}

func newMultiGate(p Point) *multiGate {
	return &multiGate{point: p, arrive: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *multiGate) At(p Point, _ int) {
	if p != g.point {
		return
	}
	g.mu.Lock()
	stopped := g.stopped
	g.mu.Unlock()
	if stopped {
		return
	}
	g.arrive <- struct{}{}
	<-g.release
}

// open lets every current and future arrival through.
func (g *multiGate) open() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
	close(g.release)
}

// TestListStalledDeleterFlagPhase parks a deleter right before its
// flagging C&S - before it has modified anything - and checks that every
// other operation proceeds and the deleter still completes afterwards.
func TestListStalledDeleterFlagPhase(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 50; i++ {
		l.Insert(nil, i, i)
	}
	g := newMultiGate(PtBeforeFlagCAS)
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&Proc{ID: 1, Hooks: g}, 25)
		res <- ok
	}()
	<-g.arrive
	// Everything else keeps working.
	if _, ok := l.Insert(nil, 100, 100); !ok {
		t.Fatal("insert blocked")
	}
	if _, ok := l.Delete(nil, 30); !ok {
		t.Fatal("delete blocked")
	}
	if n := l.Search(nil, 25); n == nil {
		t.Fatal("key 25 should still be present (deletion has not started)")
	}
	g.open()
	if !<-res {
		t.Fatal("stalled deleter failed")
	}
	if _, ok := l.Get(nil, 25); ok {
		t.Fatal("key 25 survived")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListStalledTowerBuild parks an inserter between its root-level
// insertion and the upper tower levels; searches and deletions of the key
// must work against the partial tower, and deleting it mid-build must make
// the inserter stop gracefully (still reporting success, since the root
// C&S linearized the insert).
func TestSkipListStalledTowerBuild(t *testing.T) {
	// Force tall towers so the build has upper levels to stall in.
	rng := func() uint64 { return 0x0f } // height 5
	l := NewSkipList[int, int](WithRandomSource(rng))
	for i := 0; i < 10; i++ {
		l.Insert(nil, i*10, i)
	}
	// Stall the inserter at its second insertion C&S: the first one links
	// the root (linearizing the insert), the second would link level 2.
	g := newMultiGate(PtBeforeInsertCAS)
	occurrences := 0
	hook := HookFunc(func(p Point, pid int) {
		if p != PtBeforeInsertCAS {
			return
		}
		occurrences++
		if occurrences >= 2 {
			g.At(p, pid)
		}
	})
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(&Proc{ID: 9, Hooks: hook}, 55, 55)
		res <- ok
	}()
	<-g.arrive // inserter stalled mid tower construction, root already linked

	// The root is visible mid-build...
	if _, ok := l.Get(nil, 55); !ok {
		t.Fatal("key 55 not visible after root insertion")
	}
	// ...and other operations proceed.
	if _, ok := l.Insert(nil, 56, 56); !ok {
		t.Fatal("concurrent insert blocked by stalled tower build")
	}
	// Deleting the mid-build key must succeed.
	if _, ok := l.Delete(nil, 55); !ok {
		t.Fatal("could not delete a mid-build tower")
	}
	g.open()
	if !<-res {
		t.Fatal("interrupted insert must still report success (it linearized first)")
	}
	if _, ok := l.Get(nil, 55); ok {
		t.Fatal("key 55 still present after deletion")
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipListStalledRootDeletion parks a deleter after flagging the
// root's predecessor; a concurrent insert of a key just before the victim
// must help and complete.
func TestSkipListStalledRootDeletion(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(42)))
	for i := 0; i < 100; i += 10 {
		l.Insert(nil, i, i)
	}
	g := newMultiGate(PtBeforeMarkCAS)
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&Proc{ID: 3, Hooks: g}, 50)
		res <- ok
	}()
	<-g.arrive
	// 40's root is now flagged for the deletion of 50. Insert between.
	done := make(chan bool, 1)
	go func() {
		_, ok := l.Insert(nil, 45, 45)
		done <- ok
	}()
	if !<-done {
		t.Fatal("insert 45 blocked by stalled root deletion")
	}
	if _, ok := l.Get(nil, 50); ok {
		t.Fatal("helping should have completed the logical deletion of 50")
	}
	g.open()
	if !<-res {
		t.Fatal("stalled deleter did not report success")
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(nil, 45); !ok {
		t.Fatal("key 45 missing")
	}
}

// TestSkipListManyStalledDeleters parks several deleters mid-deletion at
// once and checks that a full sweep of independent operations completes -
// the lock-freedom property under multiple simultaneous failures.
func TestSkipListManyStalledDeleters(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(43)))
	for i := 0; i < 200; i++ {
		l.Insert(nil, i, i)
	}
	const stalled = 8
	g := newMultiGate(PtBeforePhysicalCAS)
	var wg sync.WaitGroup
	for i := 0; i < stalled; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Delete(&Proc{ID: i, Hooks: g}, 20*i+10) // non-adjacent victims
		}(i)
	}
	for i := 0; i < stalled; i++ {
		<-g.arrive
	}
	// With eight deletions frozen before their physical C&S, every other
	// operation must still run to completion.
	for i := 0; i < 200; i += 7 {
		l.Search(nil, i)
	}
	for i := 300; i < 330; i++ {
		if _, ok := l.Insert(nil, i, i); !ok {
			t.Fatalf("insert %d blocked", i)
		}
	}
	g.open()
	wg.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < stalled; i++ {
		if _, ok := l.Get(nil, 20*i+10); ok {
			t.Fatalf("victim %d survived", 20*i+10)
		}
	}
}
