package core

import "slices"

// Batch operations: sort the keys once, then thread a single finger
// through them so each element pays only the short hop from its
// predecessor instead of a full search. For a batch of k keys spanning a
// cluster of the structure, the total cost is one full search plus the
// sum of inter-key gaps - the amortized bound DESIGN.md derives from the
// paper's SearchFrom analysis. Each element is still an independent
// linearizable operation; the batch as a whole is NOT atomic.
//
// All batch methods sort their argument slice in place and report results
// positionally against the sorted order. Result slices may be nil (the
// caller only wants the count) but must have len >= len(keys) otherwise.
// The methods allocate nothing beyond what the operations themselves
// require (inserted nodes): the list's threading finger lives on the
// stack, and the skip list's - which would escape through the slSearcher
// interface - is recycled through a pool.

// KV pairs a key with a value for InsertBatch.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

// GetBatch looks up every key in keys, sorting keys in place first. When
// vals or found is non-nil, vals[i] and found[i] report the result for
// the i-th key of the SORTED slice. Returns the number of keys found.
func (l *List[K, V]) GetBatch(p *Proc, keys []K, vals []V, found []bool) int {
	slices.SortFunc(keys, l.compare)
	f := Finger[K, V]{l: l}
	n := 0
	for i, k := range keys {
		v, ok := f.Get(p, k)
		if ok {
			n++
		}
		if vals != nil {
			vals[i] = v
		}
		if found != nil {
			found[i] = ok
		}
	}
	f.Reset()
	return n
}

// InsertBatch inserts every pair in items, sorting items in place by key
// first. When inserted is non-nil, inserted[i] reports whether the i-th
// pair of the SORTED slice was newly inserted (false: duplicate key).
// Returns the number of new keys.
func (l *List[K, V]) InsertBatch(p *Proc, items []KV[K, V], inserted []bool) int {
	slices.SortFunc(items, func(a, b KV[K, V]) int { return l.compare(a.Key, b.Key) })
	f := Finger[K, V]{l: l}
	n := 0
	for i := range items {
		_, ok := f.Insert(p, items[i].Key, items[i].Value)
		if ok {
			n++
		}
		if inserted != nil {
			inserted[i] = ok
		}
	}
	f.Reset()
	return n
}

// DeleteBatch deletes every key in keys, sorting keys in place first.
// When deleted is non-nil, deleted[i] reports whether this call deleted
// the i-th key of the SORTED slice. Returns the number of keys deleted.
func (l *List[K, V]) DeleteBatch(p *Proc, keys []K, deleted []bool) int {
	slices.SortFunc(keys, l.compare)
	f := Finger[K, V]{l: l}
	n := 0
	for i, k := range keys {
		_, ok := f.Delete(p, k)
		if ok {
			n++
		}
		if deleted != nil {
			deleted[i] = ok
		}
	}
	f.Reset()
	return n
}

// batchFinger returns a finger for one batch operation. A stack finger
// (the list batches use one) escapes here: every skip-list operation
// passes the finger through the slSearcher interface. Recycling heap
// fingers keeps the steady-state allocation count of a batch at zero.
func (l *SkipList[K, V]) batchFinger() *SkipFinger[K, V] {
	if f, ok := l.fpool.Get().(*SkipFinger[K, V]); ok {
		return f
	}
	return l.NewFinger()
}

// putBatchFinger resets f - a pooled finger must not pin deleted nodes -
// and returns it to the pool.
func (l *SkipList[K, V]) putBatchFinger(f *SkipFinger[K, V]) {
	f.Reset()
	l.fpool.Put(f)
}

// GetBatch looks up every key in keys, sorting keys in place first; see
// List.GetBatch.
func (l *SkipList[K, V]) GetBatch(p *Proc, keys []K, vals []V, found []bool) int {
	slices.SortFunc(keys, l.compare)
	f := l.batchFinger()
	n := 0
	for i, k := range keys {
		v, ok := f.Get(p, k)
		if ok {
			n++
		}
		if vals != nil {
			vals[i] = v
		}
		if found != nil {
			found[i] = ok
		}
	}
	l.putBatchFinger(f)
	return n
}

// InsertBatch inserts every pair in items, sorting items in place by key
// first; see List.InsertBatch.
func (l *SkipList[K, V]) InsertBatch(p *Proc, items []KV[K, V], inserted []bool) int {
	slices.SortFunc(items, func(a, b KV[K, V]) int { return l.compare(a.Key, b.Key) })
	f := l.batchFinger()
	n := 0
	for i := range items {
		_, ok := f.Insert(p, items[i].Key, items[i].Value)
		if ok {
			n++
		}
		if inserted != nil {
			inserted[i] = ok
		}
	}
	l.putBatchFinger(f)
	return n
}

// DeleteBatch deletes every key in keys, sorting keys in place first; see
// List.DeleteBatch.
func (l *SkipList[K, V]) DeleteBatch(p *Proc, keys []K, deleted []bool) int {
	slices.SortFunc(keys, l.compare)
	f := l.batchFinger()
	n := 0
	for i, k := range keys {
		_, ok := f.Delete(p, k)
		if ok {
			n++
		}
		if deleted != nil {
			deleted[i] = ok
		}
	}
	l.putBatchFinger(f)
	return n
}
