package core

import (
	"cmp"
	"math/bits"
	"math/rand/v2"
	"sync"

	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// DefaultMaxLevel is the default height of the head and tail towers.
// Interior towers are capped one below it, so level DefaultMaxLevel is
// always an empty express lane, which keeps the upward search for a start
// level bounded.
const DefaultMaxLevel = 32

// SkipList is the lock-free skip list of Fomitchev and Ruppert (Section 4).
// Each level is an instance of the paper's lock-free linked list; a key is
// a tower of nodes built bottom-up on insertion and torn down root-first,
// then top-down, on deletion. Searches physically delete any superfluous
// tower nodes they encounter so that backlink chains on a level cannot be
// traversed repeatedly.
//
// All methods are safe for concurrent use and the implementation is
// lock-free. Construct with NewSkipList.
type SkipList[K comparable, V any] struct {
	// The fields above the pad are written once at construction and
	// read-only afterwards: they share cache lines safely.
	compare  func(K, K) int
	maxLevel int
	heads    []*SLNode[K, V] // head tower, index 0 = level 1
	tails    []*SLNode[K, V] // tail tower, index 0 = level 1
	rng      func() uint64   // thread-safe source of random bits
	// tel, when non-nil, receives one RecordOp flush per completed
	// operation (see telemetry.go). Set before the skip list is shared.
	tel *telemetry.Recorder
	// retire, when non-nil, is called with each level node whose physical-
	// deletion C&S succeeded - exactly once per node, from whichever
	// goroutine won the C&S. Set before the skip list is shared.
	retire func(node any)
	// rec, when non-nil, recycles retired towers through epoch-based
	// reclamation (recycle.go). Set by WithRecycling at construction.
	rec *recycler

	// _ keeps the read-mostly header above off mutable lines; size stripes
	// its writes across padded per-P shards (see List.size).
	_    [cacheLinePad]byte
	size instrument.ShardedInt64
	// fpool recycles the fingers threading batch operations (batch.go).
	fpool sync.Pool
}

// SkipListOption configures a SkipList.
type SkipListOption func(*skipListConfig)

type skipListConfig struct {
	maxLevel int
	rng      func() uint64
	retire   func(node any)
	recycle  bool
}

// WithMaxLevel sets the head-tower height (interior towers grow to at most
// maxLevel-1). maxLevel must be at least 2; values outside [2, 64] are
// clamped.
func WithMaxLevel(maxLevel int) SkipListOption {
	return func(c *skipListConfig) {
		c.maxLevel = min(max(maxLevel, 2), 64)
	}
}

// WithRandomSource supplies the source of random bits used for tower-height
// coin flips. The function must be safe for concurrent use. Intended for
// deterministic tests and the height-distribution experiment (E6).
func WithRandomSource(rng func() uint64) SkipListOption {
	return func(c *skipListConfig) { c.rng = rng }
}

// WithRetireHook attaches fn to every level's physical-deletion C&S site:
// fn is called with each level node (*SLNode) whose unlinking C&S
// succeeds, exactly once per node, from the goroutine that won the C&S
// (so fn must be safe for concurrent use). Note the retire ORDER: a
// tower's root is usually retired FIRST (Delete unlinks the level-1 node
// to linearize, then sweeps levels >= 2), so upper nodes arrive at the
// hook after their root while still holding down/towerRoot edges to it —
// a hook must not free a root eagerly on the assumption that its tower
// is already gone. This is the seam memory-reclamation schemes such as
// internal/ebr hang on; the built-in recycler (WithRecycling) handles
// the ordering by retiring whole towers atomically.
func WithRetireHook(fn func(node any)) SkipListOption {
	return func(c *skipListConfig) { c.retire = fn }
}

// WithRecycling enables epoch-based node recycling: retired towers pass
// through internal/ebr's grace periods onto a free list that Insert
// consults before allocating, making steady-state insert-after-delete
// traffic allocation-free. See recycle.go for the safety argument.
func WithRecycling() SkipListOption {
	return func(c *skipListConfig) { c.recycle = true }
}

// NewSkipList returns an empty skip list over a naturally ordered key
// type.
func NewSkipList[K cmp.Ordered, V any](opts ...SkipListOption) *SkipList[K, V] {
	return NewSkipListFunc[K, V](cmp.Compare[K], opts...)
}

// NewSkipListFunc returns an empty skip list ordered by the given
// comparison function, which must define a strict total order consistent
// with ==: compare(a,b)==0 iff a == b.
func NewSkipListFunc[K comparable, V any](compare func(K, K) int, opts ...SkipListOption) *SkipList[K, V] {
	cfg := skipListConfig{maxLevel: DefaultMaxLevel, rng: rand.Uint64}
	for _, opt := range opts {
		opt(&cfg)
	}
	l := &SkipList[K, V]{
		compare:  compare,
		maxLevel: cfg.maxLevel,
		heads:    make([]*SLNode[K, V], cfg.maxLevel),
		tails:    make([]*SLNode[K, V], cfg.maxLevel),
		rng:      cfg.rng,
		retire:   cfg.retire,
	}
	if cfg.recycle {
		l.rec = newRecycler()
	}
	for i := 0; i < cfg.maxLevel; i++ {
		l.heads[i] = &SLNode[K, V]{kind: kindHead, level: i + 1}
		l.tails[i] = &SLNode[K, V]{kind: kindTail, level: i + 1}
		l.heads[i].intern()
		l.tails[i].intern()
	}
	for i := 0; i < cfg.maxLevel; i++ {
		h, t := l.heads[i], l.tails[i]
		h.towerRoot, t.towerRoot = l.heads[0], l.tails[0]
		h.succ.Store(t.asClean())
		t.succ.Store(&slSucc[K, V]{right: nil}) // the one record no node interns
		if i > 0 {
			h.down, t.down = l.heads[i-1], l.tails[i-1]
		}
		if i < cfg.maxLevel-1 {
			h.up, t.up = l.heads[i+1], l.tails[i+1]
		} else {
			h.up, t.up = h, t // top of the towers
		}
	}
	l.size.Init()
	return l
}

// SetRetireHook attaches fn to every level's physical-deletion C&S site;
// see WithRetireHook for the contract and the retire order. The hook MUST
// be attached before the skip list is shared and never changed afterwards:
// l.retire is a plain field, written here without synchronization and
// read at every physical-deletion C&S — a store racing an operation is a
// data race, and deletions already past the nil check miss the hook.
// Attach-then-share is the contract; nil detaches (same condition).
func (l *SkipList[K, V]) SetRetireHook(fn func(node any)) { l.retire = fn }

// Len returns the number of keys stored. Exact in quiescent states.
func (l *SkipList[K, V]) Len() int { return int(l.size.Load()) }

// MaxLevel returns the configured head-tower height.
func (l *SkipList[K, V]) MaxLevel() int { return l.maxLevel }

// HeadAt returns the head sentinel of the given level (1-based); used by
// the structure validator and statistics collectors.
func (l *SkipList[K, V]) HeadAt(level int) *SLNode[K, V] { return l.heads[level-1] }

// TailAt returns the tail sentinel of the given level (1-based).
func (l *SkipList[K, V]) TailAt(level int) *SLNode[K, V] { return l.tails[level-1] }

// randomHeight draws a tower height from the geometric(1/2) distribution,
// capped at maxLevel-1: height h is chosen with probability 2^-h (mass of
// the cap absorbs the tail), exactly the paper's repeated coin flips.
func (l *SkipList[K, V]) randomHeight() int {
	r := l.rng()
	h := 1 + bits.TrailingZeros64(^r) // count leading "heads" flips
	return min(h, l.maxLevel-1)
}

// slSearcher abstracts "locate (n1, n2) on level v": the skip list itself
// searches from the top of the head tower, a SkipFinger (finger.go) from
// its remembered predecessor towers. insert/remove/get are written against
// this seam so the finger paths reuse the full operation bodies. Both
// implementations are pointer types, so converting to the interface does
// not allocate.
type slSearcher[K comparable, V any] interface {
	searchToLevel(p *Proc, k K, v int, strict bool) (*SLNode[K, V], *SLNode[K, V])
	// sweep physically removes the superfluous remainder of k's deleted
	// tower. It must traverse every nonempty level >= 2, approaching k
	// from a strict predecessor on each, so that searchRight encounters
	// the tower's node as a successor and completes its deletion - a
	// start that lands on (or beyond) the node would strand it.
	sweep(p *Proc, k K)
}

// sweep removes the superfluous tower of the deleted key k by descending
// from the top of the structure, exactly the plain Delete's cleanup pass.
func (l *SkipList[K, V]) sweep(p *Proc, k K) {
	l.searchToLevel(p, k, 2, false)
}

// search is SEARCH_SL; Search in telemetry.go wraps it with the optional
// metrics flush.
func (l *SkipList[K, V]) search(p *Proc, k K) *SLNode[K, V] {
	return l.searchVia(p, l, k)
}

// searchVia is search with the level searches routed through s.
func (l *SkipList[K, V]) searchVia(p *Proc, s slSearcher[K, V], k K) *SLNode[K, V] {
	curr, _ := s.searchToLevel(p, k, 1, false)
	if l.cmpNode(curr, k) == 0 {
		return curr
	}
	return nil
}

// cmpNode orders node n against key k treating sentinels as -inf/+inf.
func (l *SkipList[K, V]) cmpNode(n *SLNode[K, V], k K) int {
	switch n.kind {
	case kindHead:
		return -1
	case kindTail:
		return 1
	default:
		return l.compare(n.key, k)
	}
}

// nodeLeq reports n.key <= k (strict=false) or n.key < k (strict=true).
func (l *SkipList[K, V]) nodeLeq(n *SLNode[K, V], k K, strict bool) bool {
	c := l.cmpNode(n, k)
	if strict {
		return c < 0
	}
	return c <= 0
}

// get looks up k and returns its value.
func (l *SkipList[K, V]) get(p *Proc, k K) (V, bool) {
	if n := l.search(p, k); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// insert adds k with value v, building the new tower bottom-up. It returns
// the root node and true on success, or the existing root and false if k
// is already present. The insertion is linearized at the root node's
// insertion C&S. This is INSERT_SL.
func (l *SkipList[K, V]) insert(p *Proc, k K, v V) (*SLNode[K, V], bool) {
	return l.insertVia(p, l, k, v)
}

// insertVia is insert with every level search routed through s (the skip
// list itself, or a finger).
func (l *SkipList[K, V]) insertVia(p *Proc, s slSearcher[K, V], k K, v V) (*SLNode[K, V], bool) {
	prev, next := s.searchToLevel(p, k, 1, false)
	if l.cmpNode(prev, k) == 0 {
		return prev, false // duplicate key
	}
	root := l.newRoot(p, k, v)
	height := l.randomHeight()
	newNode := root
	lv := 1
	for {
		var inserted bool
		prev, inserted = l.insertNode(p, newNode, prev, next)
		if !inserted && lv == 1 {
			// A concurrent insertion won with the same key; root was never
			// published and can go straight back to the free list.
			if l.rec != nil {
				l.rec.pool.Put(root)
			}
			return prev, false
		}
		if root.marked() {
			// Our tower became superfluous while we were building it: a
			// concurrent deletion removed the root. Undo the node we may
			// just have added and report success (the insertion
			// linearized at the root C&S, before the deletion).
			if newNode != root {
				if inserted {
					l.deleteNode(p, prev, newNode)
				} else if l.rec != nil {
					// Never published: release its tower reference and
					// recycle it directly.
					l.towerAbandon(p, newNode)
				}
			}
			return root, true
		}
		if !inserted {
			// Duplicate at an upper level: it can only belong to a
			// superfluous tower (or our root is marked, handled above).
			// Re-search - which removes superfluous nodes - and retry.
			prev, next = s.searchToLevel(p, k, lv, false)
			continue
		}
		lv++
		if lv > height {
			return root, true // tower construction finished
		}
		if !l.towerAcquire(root) {
			// The tower fully retired already (root deleted and every
			// node unlinked): stop building. The insertion linearized at
			// the root C&S long before.
			return root, true
		}
		newNode = l.newUpper(p, k, lv, newNode, root)
		prev, next = s.searchToLevel(p, k, lv, false)
	}
}

// remove deletes k. It deletes the root node first (making the remaining
// tower superfluous and linearizing the deletion when the root is marked),
// then sweeps levels >= 2 to physically remove the rest of the tower.
// This is DELETE_SL.
func (l *SkipList[K, V]) remove(p *Proc, k K) (*SLNode[K, V], bool) {
	return l.removeVia(p, l, k)
}

// removeVia is remove with every level search routed through s.
func (l *SkipList[K, V]) removeVia(p *Proc, s slSearcher[K, V], k K) (*SLNode[K, V], bool) {
	prev, delNode := s.searchToLevel(p, k, 1, true) // SearchToLevel_SL(k - eps, 1)
	if l.cmpNode(delNode, k) != 0 {
		return nil, false // no such key
	}
	if !l.deleteNode(p, prev, delNode) {
		return nil, false // a concurrent deletion won
	}
	// Remove the superfluous nodes of the tower (top-down, as the
	// descending search encounters them).
	s.sweep(p, k)
	return delNode, true
}
