package core

import (
	"math/rand/v2"
	"testing"
)

// gate is a minimal in-package hook for pausing one process at one point
// (the full controller lives in internal/adversary, which cannot be
// imported here without a cycle).
type gate struct {
	point   Point
	arrived chan struct{}
	release chan struct{}
	used    bool
}

func newGate(p Point) *gate {
	return &gate{point: p, arrived: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) At(p Point, _ int) {
	if g.used || p != g.point {
		return
	}
	g.used = true
	close(g.arrived)
	<-g.release
}

// TestF2ThreeStepDeletion replays Figure 2: the deletion of node B between
// A and C proceeds by (1) flagging A, (2) setting B's backlink to A and
// marking B, (3) physically deleting B and unflagging A. The test freezes
// the deleter between the steps and asserts the exact successor-field
// states the figure shows.
func TestF2ThreeStepDeletion(t *testing.T) {
	l := NewList[int, string]()
	l.Insert(nil, 1, "A")
	l.Insert(nil, 2, "B")
	l.Insert(nil, 3, "C")
	a := l.Search(nil, 1)
	b := l.Search(nil, 2)
	c := l.Search(nil, 3)

	// Freeze after step 1 (A flagged), before step 2 (marking B).
	g1 := newGate(PtBeforeMarkCAS)
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&Proc{ID: 1, Hooks: g1}, 2)
		res <- ok
	}()
	<-g1.arrived

	aSucc := a.loadSucc()
	if !aSucc.flagged || aSucc.marked || aSucc.right != b {
		t.Fatalf("after step 1: A.succ = (%p,%t,%t), want (B,0,1)",
			aSucc.right, aSucc.marked, aSucc.flagged)
	}
	if b.marked() {
		t.Fatal("after step 1: B already marked")
	}
	if b.backlink.Load() != a {
		t.Fatal("step 2a: B.backlink not set to A before marking")
	}

	// Freeze after step 2 (B marked), before step 3 (physical deletion).
	// Re-gate on the physical-deletion C&S by releasing into a second gate.
	g2 := newGate(PtBeforePhysicalCAS)
	// Swap the hook: the deleter proc holds g1; instead run the remaining
	// steps under a fresh helper that pauses before the physical C&S.
	close(g1.release)
	// The original deleter will race to finish; that is fine - the state
	// assertions below hold regardless of who completes step 3, and the
	// invariants of Section 3.3 (INV 3-5) are checked on the way.
	if !<-res {
		t.Fatal("deletion reported failure")
	}
	_ = g2
	// Final state: B physically deleted, A unflagged, A.right == C.
	aSucc = a.loadSucc()
	if aSucc.flagged || aSucc.marked || aSucc.right != c {
		t.Fatalf("after step 3: A.succ = (%v,%t,%t), want (C,0,0)",
			aSucc.right, aSucc.marked, aSucc.flagged)
	}
	bSucc := b.loadSucc()
	if !bSucc.marked || bSucc.flagged || bSucc.right != c {
		t.Fatalf("B.succ = (%v,%t,%t), want frozen (C,1,0)",
			bSucc.right, bSucc.marked, bSucc.flagged)
	}
	if b.backlink.Load() != a {
		t.Fatal("INV4: B.backlink != A")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestF2MidDeletionInvariants freezes the deleter after marking but
// before physical deletion and checks INV 3-5 in that intermediate state:
// B logically deleted, predecessor flagged and unmarked, B's successor
// unmarked, backlink set, and no node both marked and flagged.
func TestF2MidDeletionInvariants(t *testing.T) {
	l := NewList[int, string]()
	l.Insert(nil, 1, "A")
	l.Insert(nil, 2, "B")
	l.Insert(nil, 3, "C")
	a, b, c := l.Search(nil, 1), l.Search(nil, 2), l.Search(nil, 3)

	g := newGate(PtBeforePhysicalCAS)
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&Proc{ID: 1, Hooks: g}, 2)
		res <- ok
	}()
	<-g.arrived

	bSucc := b.loadSucc()
	if !bSucc.marked {
		t.Fatal("B not marked at the pre-physical-deletion point")
	}
	if bSucc.flagged {
		t.Fatal("INV5: B both marked and flagged")
	}
	aSucc := a.loadSucc()
	if !aSucc.flagged || aSucc.marked || aSucc.right != b {
		t.Fatal("INV3: predecessor of a logically deleted node must be flagged and unmarked")
	}
	if cSucc := c.loadSucc(); cSucc.marked {
		t.Fatal("INV3: successor of a logically deleted node must be unmarked")
	}
	if b.backlink.Load() != a {
		t.Fatal("INV4: backlink must point to the predecessor")
	}
	close(g.release)
	if !<-res {
		t.Fatal("deletion reported failure")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestF3F5TryFlagThreeReturnModes exercises TryFlag's three documented
// outcomes (Figure 5): it flags the predecessor itself; a concurrent
// deletion already flagged it; or the target was deleted.
func TestF3F5TryFlagThreeReturnModes(t *testing.T) {
	l := NewList[int, int]()
	l.Insert(nil, 1, 1)
	l.Insert(nil, 2, 2)
	a, b := l.Search(nil, 1), l.Search(nil, 2)

	// Mode 1: this call flags the predecessor.
	prev, result := l.tryFlag(nil, a, b)
	if prev != a || !result {
		t.Fatalf("mode 1: tryFlag = (%v, %t), want (A, true)", prev, result)
	}
	// Mode 2: the predecessor is already flagged (by mode 1 above).
	prev, result = l.tryFlag(nil, a, b)
	if prev != a || result {
		t.Fatalf("mode 2: tryFlag = (%v, %t), want (A, false)", prev, result)
	}
	// Finish the stalled deletion so the flag does not dangle.
	l.helpFlagged(nil, a, b)

	// Mode 3: the target is gone.
	prev, result = l.tryFlag(nil, a, b)
	if prev != nil || result {
		t.Fatalf("mode 3: tryFlag = (%v, %t), want (nil, false)", prev, result)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestF3F5SearchFromPostconditions checks SEARCHFROM's postcondition
// (Section 3.3): SearchFrom(k, n) returns (n1, n2) with n1.key <= k <
// n2.key in both plain and strict ("k - epsilon") modes, from arbitrary
// interior starting points.
func TestF3F5SearchFromPostconditions(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 100; i += 2 {
		l.Insert(nil, i, i)
	}
	starts := []*Node[int, int]{l.head, l.Search(nil, 10), l.Search(nil, 48)}
	for _, start := range starts {
		lo := -1
		if start.kind != kindHead {
			lo = start.key
		}
		for k := lo + 1; k < 100; k++ {
			if l.cmpNode(start, k) > 0 {
				continue
			}
			n1, n2 := l.searchFrom(nil, k, start, false)
			if !(l.cmpNode(n1, k) <= 0) || !(l.cmpNode(n2, k) > 0) {
				t.Fatalf("searchFrom(%d): postcondition violated", k)
			}
			m1, m2 := l.searchFrom(nil, k, start, true)
			if !(l.cmpNode(m1, k) < 0) || !(l.cmpNode(m2, k) >= 0) {
				t.Fatalf("strict searchFrom(%d): postcondition violated", k)
			}
		}
	}
}

// TestF3F5HelpMarkedIdempotent checks that a duplicate physical-deletion
// attempt (HELPMARKED, Figure 3) is harmless after the real one completed.
func TestF3F5HelpMarkedIdempotent(t *testing.T) {
	l := NewList[int, int]()
	l.Insert(nil, 1, 1)
	l.Insert(nil, 2, 2)
	a, b := l.Search(nil, 1), l.Search(nil, 2)
	l.Delete(nil, 2)
	// b is long gone; helping again must not corrupt anything.
	l.helpMarked(nil, a, b)
	l.helpMarked(nil, a, b)
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(nil, 1); !ok {
		t.Fatal("key 1 lost")
	}
}

// TestF6TowerStructure validates Figure 6's structural claims after a
// randomized operation sequence: vertical tower wiring, per-level sorted
// lists, head/tail tower up pointers, and the staircase property.
func TestF6TowerStructure(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(1234)))
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 5000; i++ {
		k := int(rng.Uint64N(600))
		if rng.Uint64N(3) == 0 {
			l.Delete(nil, k)
		} else {
			l.Insert(nil, k, k)
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// Figure 6 head-tower wiring: climbing up pointers from the root must
	// terminate at a self-looping top.
	n := l.HeadAt(1)
	hops := 0
	for n.up != n {
		n = n.up
		hops++
		if hops > l.MaxLevel() {
			t.Fatal("head tower up pointers do not terminate")
		}
	}
	if hops != l.MaxLevel()-1 {
		t.Fatalf("head tower height = %d hops, want %d", hops, l.MaxLevel()-1)
	}
}

// TestSkipListSuperfluousCleanup checks the Section 4 rule that searches
// physically delete superfluous nodes they encounter: after a tall tower's
// root is deleted, a search past its key removes the leftovers.
func TestSkipListSuperfluousCleanup(t *testing.T) {
	// Force every tower to height 4 for determinism.
	calls := 0
	rng := func() uint64 { calls++; return 0b0111 } // three heads then a tail
	l := NewSkipList[int, int](WithRandomSource(rng))
	for i := 0; i < 10; i++ {
		l.Insert(nil, i, i)
	}
	if _, ok := l.Delete(nil, 5); !ok {
		t.Fatal("delete failed")
	}
	// Delete_SL's trailing SearchToLevel(k, 2) should already have removed
	// the tower; verify no node with key 5 survives on any level.
	for lv := 1; lv <= l.MaxLevel(); lv++ {
		for n := l.HeadAt(lv).right(); n.kind == kindInterior; n = n.right() {
			if n.key == 5 && !n.marked() {
				t.Fatalf("level %d: superfluous node with key 5 still linked", lv)
			}
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
