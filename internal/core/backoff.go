package core

import (
	"runtime"

	"repro/internal/instrument"
)

// Adaptive backoff for the C&S retry loops. Lock-freedom guarantees
// system-wide progress, but under heavy point contention every loser of a
// C&S immediately re-searches and retries, and the losers' coherence
// traffic slows the winner down — the paper's c(S) term turned into wasted
// bus cycles. Classic exponential backoff (Anderson-style) trades a little
// loser latency for a quieter line.
//
// The policy is deliberately conservative so the uncontended path stays
// untouched: the first backoffAfter consecutive failures in one retry loop
// are free (a single failure is the common benign race — somebody else
// simply got there first), then the waits grow exponentially from
// 1<<1 to 1<<backoffMaxShift busy iterations, and past that the goroutine
// yields its P with runtime.Gosched so a descheduled winner can run. Every
// wait is counted in OpStats.BackoffWaits (diagnostic, never essential:
// waiting performs no shared-memory step).
//
// A casBackoff lives on the retry loop's stack frame — it is per
// operation, not per structure, so it allocates nothing and needs no
// synchronization.
type casBackoff struct {
	fails int
}

const (
	// backoffAfter is the number of consecutive C&S failures a retry loop
	// tolerates before its first wait. Two free failures keep the benign
	// lost-race case (and the deliberate single-failure adversary
	// schedules) completely wait-free.
	backoffAfter = 2
	// backoffMaxShift caps the busy-wait at 1<<backoffMaxShift iterations;
	// failures beyond that yield the P instead of burning it.
	backoffMaxShift = 6
)

// onFail records one failed C&S in this retry loop and waits according to
// the escalation policy. st may be nil (uninstrumented callers).
func (b *casBackoff) onFail(st *instrument.OpStats) {
	b.fails++
	d := b.fails - backoffAfter
	if d <= 0 {
		return
	}
	st.IncBackoff()
	if d > backoffMaxShift {
		runtime.Gosched()
		return
	}
	backoffSpin(1 << d)
}

// backoffSpin burns n loop iterations without touching shared memory. The
// gc compiler keeps empty counted loops (it deliberately does not eliminate
// them), and noinline keeps the call from being folded into a caller the
// optimizer could then reason about.
//
//go:noinline
func backoffSpin(n int) {
	for i := 0; i < n; i++ {
	}
}
