package core

import (
	"repro/internal/ebr"
)

// This file wires internal/ebr's node recycling into the structures. With
// recycling enabled (List.EnableRecycling / WithRecycling), every node
// whose physical-deletion C&S succeeds is routed through the domain's
// epoch-stamped retire lists instead of being left to the garbage
// collector, and the insert paths consult the structure's free list
// before allocating — steady-state insert-after-delete traffic allocates
// nothing.
//
// Safety rests on two rules (DESIGN.md §2.1 addendum):
//
//  1. Every operation runs inside a Pin on the structure's domain: the
//     exported wrappers (telemetry.go) pin per call, fingers hold a pin
//     for their lifetime (they remember nodes across calls; Reset
//     releases it), and a caller that installs its Pin in Proc.Epoch is
//     trusted to span the whole call.
//
//  2. Skip-list towers retire atomically. The sweep unlinks the root
//     FIRST (level 1), then the upper levels, and upper nodes keep
//     down/towerRoot edges into the root — superfluous() dereferences
//     towerRoot — so per-node grace periods would free a root while its
//     tower is still reachable. Instead every tower carries a live count
//     on its root (1 for the root + 1 per upper node); each unlinked
//     upper node is pushed onto an intrusive chain hanging off the root,
//     and whichever unlink drops the count to zero retires the whole
//     chain plus the root in one batch. A pinned holder of ANY tower
//     node therefore blocks reuse of EVERY node of that tower.
//
// Node identity survives reuse trivially for the interned-successor ABA
// argument: refs[...] depend only on the node's address, so a recycled
// node is NOT re-interned — its records are already correct.

// recycler bundles a structure's reclamation domain with its free list.
// One per structure; towers and list nodes are uniform in size (a tower
// is a chain of SLNodes, not an array), so a single pool covers every
// level class.
type recycler struct {
	dom  *ebr.Domain
	pool *ebr.Pool
}

func newRecycler() *recycler {
	return &recycler{dom: ebr.NewDomain(), pool: ebr.NewPool(0)}
}

// pin opens a critical section for one operation, or returns nil (a
// no-op to Unpin) when the caller already holds a pin on this domain in
// Proc.Epoch — the pinned fast path: one type assertion instead of two
// atomic RMWs per op.
func (r *recycler) pin(p *Proc) *ebr.Pin {
	if p != nil {
		if pin, ok := p.Epoch.(*ebr.Pin); ok && pin.Domain() == r.dom {
			return nil
		}
	}
	return r.dom.Pin()
}

// opPin pins one exported operation; nil-tolerant on both sides so the
// wrappers can unconditionally `defer l.opPin(p).Unpin()`.
func (l *List[K, V]) opPin(p *Proc) *ebr.Pin {
	if l.rec == nil {
		return nil
	}
	return l.rec.pin(p)
}

func (l *SkipList[K, V]) opPin(p *Proc) *ebr.Pin {
	if l.rec == nil {
		return nil
	}
	return l.rec.pin(p)
}

// PinEpoch opens a caller-held critical section on the list's reclamation
// domain, or returns nil (Unpin-safe) when recycling is off. Install the
// pin in Proc.Epoch and the exported operations skip their own pin/unpin
// — the batch-amortized fast path the lockfree facades expose as PinProc.
func (l *List[K, V]) PinEpoch() *ebr.Pin {
	if l.rec == nil {
		return nil
	}
	return l.rec.dom.Pin()
}

// PinEpoch: see List.PinEpoch.
func (l *SkipList[K, V]) PinEpoch() *ebr.Pin {
	if l.rec == nil {
		return nil
	}
	return l.rec.dom.Pin()
}

// EnableRecycling switches the list to epoch-based node recycling. Must
// be called before the list is shared (the field is read without
// synchronization on operation entry); it cannot be disabled again.
func (l *List[K, V]) EnableRecycling() { l.rec = newRecycler() }

// RecyclingEnabled reports whether the list recycles nodes.
func (l *List[K, V]) RecyclingEnabled() bool { return l.rec != nil }

// RecyclingEnabled reports whether the skip list recycles nodes.
func (l *SkipList[K, V]) RecyclingEnabled() bool { return l.rec != nil }

// newNode returns a node for k/v, reusing a recycled node when one is
// free. A recycled node keeps its interned records (address-dependent,
// immutable); only the mutable state is reset, and succ is (re)stored by
// the insert loop before publication.
func (l *List[K, V]) newNode(p *Proc, k K, v V) *Node[K, V] {
	if l.rec != nil {
		if raw := l.rec.pool.Get(p.StatsOrNil()); raw != nil {
			n := raw.(*Node[K, V])
			n.key, n.val = k, v
			n.backlink.Store(nil)
			return n
		}
	}
	return makeNode(k, v)
}

// freeNode returns a node that was never published (duplicate-key insert
// race) straight to the free list — no grace period needed, no other
// goroutine ever saw it.
func (l *List[K, V]) freeNode(n *Node[K, V]) {
	if l.rec != nil {
		l.rec.pool.Put(n)
	}
}

// retireNode hands an unlinked node to the epoch machinery. Called from
// the winning physical-deletion C&S, inside the operation's pin.
func (l *List[K, V]) retireNode(p *Proc, n *Node[K, V]) {
	if l.rec != nil {
		l.rec.dom.RetireNode(l.rec.pool, n, p.StatsOrNil())
	}
}

// ForceReclaim attempts an epoch advance and drains every quiesced retire
// batch; call a few times in a quiescent state to recycle everything
// pending. No-op without recycling.
func (l *List[K, V]) ForceReclaim(p *Proc) {
	if l.rec != nil {
		l.rec.dom.Reclaim(p.StatsOrNil())
	}
}

// RecycleCounts reports (recycled, dropped) totals: nodes pushed onto the
// free list vs. abandoned to the GC (stalled epoch, contention, or full
// pool). Zeros without recycling.
func (l *List[K, V]) RecycleCounts() (recycled, dropped uint64) {
	if l.rec == nil {
		return 0, 0
	}
	return l.rec.dom.Recycled(), l.rec.dom.Dropped()
}

// RetirePending reports how many nodes sit in retire lists awaiting their
// grace period. Zero without recycling.
func (l *List[K, V]) RetirePending() int {
	if l.rec == nil {
		return 0
	}
	return l.rec.dom.Pending()
}

// ForceReclaim: see List.ForceReclaim.
func (l *SkipList[K, V]) ForceReclaim(p *Proc) {
	if l.rec != nil {
		l.rec.dom.Reclaim(p.StatsOrNil())
	}
}

// RecycleCounts: see List.RecycleCounts.
func (l *SkipList[K, V]) RecycleCounts() (recycled, dropped uint64) {
	if l.rec == nil {
		return 0, 0
	}
	return l.rec.dom.Recycled(), l.rec.dom.Dropped()
}

// RetirePending: see List.RetirePending.
func (l *SkipList[K, V]) RetirePending() int {
	if l.rec == nil {
		return 0
	}
	return l.rec.dom.Pending()
}

// newRoot returns a level-1 tower root for k/v, recycled when possible.
// The tower's live count starts at 1 (the root itself).
func (l *SkipList[K, V]) newRoot(p *Proc, k K, v V) *SLNode[K, V] {
	if l.rec != nil {
		if raw := l.rec.pool.Get(p.StatsOrNil()); raw != nil {
			n := raw.(*SLNode[K, V])
			n.key, n.val, n.level = k, v, 1
			n.down = nil
			n.towerRoot = n
			n.backlink.Store(nil)
			n.reLink.Store(nil)
			n.towerLive.Store(1)
			return n
		}
	}
	root := &SLNode[K, V]{key: k, val: v, level: 1}
	root.towerRoot = root
	root.towerLive.Store(1)
	root.intern()
	return root
}

// newUpper returns a level-lv tower node above down, recycled when
// possible. The caller must have acquired a tower reference (towerAcquire)
// for it first.
func (l *SkipList[K, V]) newUpper(p *Proc, k K, lv int, down, root *SLNode[K, V]) *SLNode[K, V] {
	if l.rec != nil {
		if raw := l.rec.pool.Get(p.StatsOrNil()); raw != nil {
			n := raw.(*SLNode[K, V])
			var zero V
			n.key, n.val, n.level = k, zero, lv
			n.down = down
			n.towerRoot = root
			n.backlink.Store(nil)
			n.reLink.Store(nil)
			return n
		}
	}
	n := &SLNode[K, V]{key: k, level: lv, down: down, towerRoot: root}
	n.intern()
	return n
}

// towerAcquire takes one reference on root's tower before creating an
// upper node. It refuses (false) once the count has reached zero: the
// tower has fully retired, and resurrecting the count would let the new
// node outlive its root's grace period. The CAS loop is safe because the
// caller is pinned, so root's memory cannot be recycled mid-loop.
func (l *SkipList[K, V]) towerAcquire(root *SLNode[K, V]) bool {
	if l.rec == nil {
		return true
	}
	for {
		c := root.towerLive.Load()
		if c == 0 {
			return false
		}
		if root.towerLive.CompareAndSwap(c, c+1) {
			return true
		}
	}
}

// towerRetire records the physical unlink of one tower node. Interior
// nodes are pushed onto the root's intrusive retired chain; whichever
// unlink drops the live count to zero retires the whole tower as one
// batch, so towerRoot/down edges stay valid for every pinned holder for
// the full grace period.
func (l *SkipList[K, V]) towerRetire(p *Proc, n *SLNode[K, V]) {
	if l.rec == nil {
		return
	}
	root := n.towerRoot
	if n != root {
		for {
			head := root.reLink.Load()
			n.reLink.Store(head)
			if root.reLink.CompareAndSwap(head, n) {
				break
			}
		}
	}
	if root.towerLive.Add(-1) == 0 {
		l.towerCollapse(p, root)
	}
}

// towerAbandon undoes a towerAcquire whose upper node was never
// published: the node goes straight back to the free list (no grace
// period — no other goroutine ever saw it), and the dropped reference may
// complete the tower's collapse.
func (l *SkipList[K, V]) towerAbandon(p *Proc, n *SLNode[K, V]) {
	root := n.towerRoot
	l.rec.pool.Put(n)
	if root.towerLive.Add(-1) == 0 {
		l.towerCollapse(p, root)
	}
}

// towerCollapse retires the fully unlinked tower rooted at root: every
// chained upper node, then the root itself, stamped into the current
// epoch. Runs exactly once per tower (only one decrement reaches zero).
func (l *SkipList[K, V]) towerCollapse(p *Proc, root *SLNode[K, V]) {
	st := p.StatsOrNil()
	rec := l.rec
	n := root.reLink.Load()
	for n != nil {
		next := n.reLink.Load()
		rec.dom.RetireNode(rec.pool, n, st)
		n = next
	}
	rec.dom.RetireNode(rec.pool, root, st)
}
