package core

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestAscendRangeConcurrent pins AscendRange's weak-consistency contract
// (documented on the method) while inserts and deletes race the scan both
// inside [from, to) and exactly at its edges:
//
//   - only keys in [from, to), strictly ascending, no duplicates;
//   - keys untouched for the test's duration always appear, with their
//     original values;
//   - churned keys may or may not appear, but a reported value must be
//     the one the key was always inserted with.
func TestAscendRangeConcurrent(t *testing.T) {
	const (
		span = 1024
		from = 258 // both boundary keys are churnable (not multiples of 4)
		to   = 770
	)
	// Keys k%4 == 0 are stable: inserted once, never touched again.
	// Every other key - including the exact boundaries from-2..from+1 and
	// to-2..to+1 covered by the churn window - is inserted and deleted
	// continuously.
	l := NewSkipList[int, int]()
	for k := 0; k < span; k += 4 {
		l.Insert(nil, k, k*3)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for w := 0; w < 3; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 3))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.IntN(span)
				if k%4 == 0 {
					k++ // never touch the stable keys
				}
				if rng.IntN(2) == 0 {
					l.Insert(nil, k, k*3)
				} else {
					l.Delete(nil, k)
				}
			}
		}(w)
	}

	var scans sync.WaitGroup
	for w := 0; w < 2; w++ {
		scans.Add(1)
		go func() {
			defer scans.Done()
			for r := 0; r < 150; r++ {
				last := from - 1
				seen := 0
				l.AscendRange(nil, from, to, func(k, v int) bool {
					if k < from || k >= to {
						t.Errorf("scan reported key %d outside [%d, %d)", k, from, to)
					}
					if k <= last {
						t.Errorf("scan reported key %d after %d: not strictly ascending", k, last)
					}
					if v != k*3 {
						t.Errorf("scan reported key %d with value %d, want %d", k, v, k*3)
					}
					// Stable keys between the previous report and this one
					// must not have been skipped.
					for s := stableAfter(last); s < k; s += 4 {
						t.Errorf("scan skipped stable key %d (between %d and %d)", s, last, k)
					}
					last = k
					seen++
					return true
				})
				for s := stableAfter(last); s < to; s += 4 {
					t.Errorf("scan skipped stable key %d at the tail of the range", s)
				}
				if seen < (to-from)/4 {
					t.Errorf("scan saw %d keys, fewer than the %d stable ones", seen, (to-from)/4)
				}
			}
		}()
	}
	scans.Wait()
	close(stop)
	churn.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// stableAfter returns the smallest stable key (multiple of 4) strictly
// greater than k.
func stableAfter(k int) int {
	return (k/4)*4 + 4
}

// TestAscendRangeEdges pins the boundary semantics in a quiescent state:
// from is inclusive, to exclusive, and boundary keys absent from the
// structure do not disturb the walk.
func TestAscendRangeEdges(t *testing.T) {
	l := NewSkipList[int, int]()
	for k := 0; k < 100; k += 2 { // even keys only
		l.Insert(nil, k, k)
	}
	collect := func(from, to int) []int {
		var got []int
		l.AscendRange(nil, from, to, func(k, v int) bool {
			got = append(got, k)
			return true
		})
		return got
	}
	if got := collect(10, 16); len(got) != 3 || got[0] != 10 || got[2] != 14 {
		t.Fatalf("AscendRange(10,16) = %v, want [10 12 14]", got)
	}
	// Odd (absent) boundaries land between keys.
	if got := collect(9, 15); len(got) != 3 || got[0] != 10 || got[2] != 14 {
		t.Fatalf("AscendRange(9,15) = %v, want [10 12 14]", got)
	}
	if got := collect(98, 200); len(got) != 1 || got[0] != 98 {
		t.Fatalf("AscendRange(98,200) = %v, want [98]", got)
	}
	if got := collect(60, 60); got != nil {
		t.Fatalf("AscendRange(60,60) = %v, want empty", got)
	}
	if got := collect(200, 300); got != nil {
		t.Fatalf("AscendRange beyond the last key = %v, want empty", got)
	}
}
