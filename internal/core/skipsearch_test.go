package core

import (
	"testing"
)

// TestSearchToLevelPostconditions checks the SEARCHTOLEVEL_SL contract at
// every level: it returns adjacent (curr, next) with curr.key <= k <
// next.key (strict: curr.key < k <= next.key) on the requested level.
func TestSearchToLevelPostconditions(t *testing.T) {
	// Deterministic heights cycling 1..4 so every level is populated.
	heights := []uint64{0b0, 0b1, 0b11, 0b111}
	i := 0
	rng := func() uint64 {
		h := heights[i%len(heights)]
		i++
		return h
	}
	l := NewSkipList[int, int](WithRandomSource(rng))
	for k := 0; k < 200; k += 2 {
		l.Insert(nil, k, k)
	}
	for v := 1; v <= 4; v++ {
		for k := -1; k <= 201; k++ {
			curr, next := l.searchToLevel(nil, k, v, false)
			if curr.level != v && curr.kind == kindInterior {
				t.Fatalf("level %d: curr on level %d", v, curr.level)
			}
			if !(l.cmpNode(curr, k) <= 0) || !(l.cmpNode(next, k) > 0) {
				t.Fatalf("level %d, k=%d: postcondition violated", v, k)
			}
			sc, sn := l.searchToLevel(nil, k, v, true)
			if !(l.cmpNode(sc, k) < 0) || !(l.cmpNode(sn, k) >= 0) {
				t.Fatalf("level %d, k=%d: strict postcondition violated", v, k)
			}
		}
	}
}

// TestFindStartSkipsEmptyLevels checks that findStart never starts above
// the lowest empty level (plus one), so descending searches do not waste
// head-to-tail hops on empty express lanes.
func TestFindStartSkipsEmptyLevels(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(func() uint64 { return 0b11 })) // height 3
	for k := 0; k < 50; k++ {
		l.Insert(nil, k, k)
	}
	start, lv := l.findStart(1)
	// Towers are height 3, so level 4 is the first empty level; the climb
	// must stop at level 4 or below.
	if lv > 4 {
		t.Fatalf("findStart climbed to level %d with towers of height 3", lv)
	}
	if start.kind != kindHead {
		t.Fatal("findStart returned a non-head node")
	}
	// Requesting a level above the populated ones must still be honored.
	_, lv8 := l.findStart(8)
	if lv8 < 8 {
		t.Fatalf("findStart(8) stopped at %d", lv8)
	}
}

// TestSearchRightStopsAtBound verifies searchRight does not run past the
// first node with key >= k even when that node is marked (matching
// SearchFrom's contract, where cleanup guards only run inside the bound).
func TestSearchRightStopsAtBound(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(func() uint64 { return 0 }))
	for k := 0; k < 30; k += 3 {
		l.Insert(nil, k, k)
	}
	curr, next := l.searchRight(nil, 10, l.heads[0], false)
	if curr.key != 9 || next.key != 12 {
		t.Fatalf("searchRight(10) = (%d, %d), want (9, 12)", curr.key, next.key)
	}
	curr, next = l.searchRight(nil, 12, l.heads[0], true)
	if curr.key != 9 || next.key != 12 {
		t.Fatalf("strict searchRight(12) = (%d, %d), want (9, 12)", curr.key, next.key)
	}
}

// TestSkipListGetAfterPartialTeardown deletes a tall tower's root directly
// via the level-1 machinery (leaving the upper levels superfluous), then
// checks searches miss the key and repair the leftovers.
func TestSkipListGetAfterPartialTeardown(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(func() uint64 { return 0b1111 })) // height 5
	for k := 0; k < 10; k++ {
		l.Insert(nil, k, k)
	}
	// Tear down only the root of key 5 using the internal level-1 delete,
	// simulating a deleter that dies before sweeping the upper levels.
	prev, delNode := l.searchToLevel(nil, 5, 1, true)
	if delNode.key != 5 {
		t.Fatal("setup failed")
	}
	if !l.deleteNode(nil, prev, delNode) {
		t.Fatal("root deletion failed")
	}
	// The key is logically gone even though four superfluous nodes remain.
	if _, ok := l.Get(nil, 5); ok {
		t.Fatal("key visible after root deletion")
	}
	// Searches on the upper levels encounter the superfluous nodes and
	// must clean them up.
	for v := 0; v < 3; v++ {
		l.Search(nil, 5)
		l.Search(nil, 6)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// Reinsertion works and coexists with whatever cleanup remains.
	if _, ok := l.Insert(nil, 5, 55); !ok {
		t.Fatal("reinsert failed")
	}
	if v, ok := l.Get(nil, 5); !ok || v != 55 {
		t.Fatalf("Get(5) = %d, %t", v, ok)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
