package core

// flagStatus is the status component of TryFlagNode's result.
type flagStatus int8

const (
	// flagStatusIn means target's predecessor is flagged (by us or by a
	// concurrent deletion) and target is still in the level's list.
	flagStatusIn flagStatus = iota + 1
	// flagStatusDeleted means target was physically deleted from the
	// level's list before a flag could be placed.
	flagStatusDeleted
)

// slHelpMarked physically deletes the marked node delNode and unflags
// prevNode with one C&S - HELPMARKED lifted to a skip-list level.
func (l *SkipList[K, V]) slHelpMarked(p *Proc, prevNode, delNode *SLNode[K, V]) {
	p.StatsOrNil().IncHelp()
	next := delNode.right() // frozen: delNode is marked
	prevSucc := prevNode.loadSucc()
	if prevSucc.right != delNode || prevSucc.marked || !prevSucc.flagged {
		return
	}
	p.At(PtBeforePhysicalCAS)
	ok := prevNode.succ.CompareAndSwap(prevSucc, next.asClean())
	p.StatsOrNil().IncCAS(ok)
	if ok {
		// Unique removal point of delNode from its level. Reclamation
		// schemes retire per level-node — and see the root FIRST: Delete
		// unlinks the level-1 node to linearize, then sweeps the upper
		// levels, whose nodes still hold down/towerRoot edges into the
		// root. The recycler therefore defers the whole tower until its
		// last unlink (towerRetire).
		p.RetireNode(delNode)
		if l.retire != nil {
			l.retire(delNode)
		}
		l.towerRetire(p, delNode)
	}
}

// slHelpFlagged completes the deletion of delNode, the successor of the
// flagged node prevNode: backlink, mark, physical delete - HELPFLAGGED
// lifted to a skip-list level.
func (l *SkipList[K, V]) slHelpFlagged(p *Proc, prevNode, delNode *SLNode[K, V]) {
	p.StatsOrNil().IncHelp()
	p.At(PtHelpFlagged)
	delNode.backlink.Store(prevNode)
	if !delNode.marked() {
		l.slTryMark(p, delNode)
	}
	l.slHelpMarked(p, prevNode, delNode)
}

// slTryMark marks delNode, helping any deletion that flagged it first -
// TRYMARK lifted to a skip-list level. Marking a root node is the
// linearization point of the key's deletion.
func (l *SkipList[K, V]) slTryMark(p *Proc, delNode *SLNode[K, V]) {
	st := p.StatsOrNil()
	var bo casBackoff
	for {
		s := delNode.loadSucc()
		if s.marked {
			return
		}
		if s.flagged {
			l.slHelpFlagged(p, delNode, s.right)
			continue
		}
		p.At(PtBeforeMarkCAS)
		ok := delNode.succ.CompareAndSwap(s, s.right.asMarked())
		st.IncCAS(ok)
		if ok {
			if delNode.isRoot() {
				l.size.Add(-1)
			}
			return
		}
		bo.onFail(st)
	}
}

// tryFlagNode attempts to flag the predecessor of target on target's
// level - TRYFLAG adapted to the skip list, where the recovery re-search
// uses searchRight (and therefore also clears superfluous towers).
// prev is the last node known to precede target on this level.
//
// It returns the (possibly updated) predecessor, a status saying whether
// target is still in the level's list, and whether this call placed the
// flag.
func (l *SkipList[K, V]) tryFlagNode(p *Proc, prev, target *SLNode[K, V]) (*SLNode[K, V], flagStatus, bool) {
	st := p.StatsOrNil()
	var bo casBackoff
	for {
		prevSucc := prev.loadSucc()
		if prevSucc.right == target && !prevSucc.marked && prevSucc.flagged {
			return prev, flagStatusIn, false // already flagged
		}
		if prevSucc.right == target && !prevSucc.marked && !prevSucc.flagged {
			p.At(PtBeforeFlagCAS)
			ok := prev.succ.CompareAndSwap(prevSucc, target.asFlagged())
			st.IncCAS(ok)
			if ok {
				return prev, flagStatusIn, true
			}
			result := prev.loadSucc()
			if result.right == target && !result.marked && result.flagged {
				return prev, flagStatusIn, false
			}
			bo.onFail(st)
		} else {
			st.IncCAS(false)
			bo.onFail(st)
		}
		for prev.marked() {
			st.IncBacklink()
			p.At(PtBacklinkStep)
			prev = prev.backlink.Load()
		}
		var delNode *SLNode[K, V]
		prev, delNode = l.searchRight(p, target.key, prev, true)
		if delNode != target {
			return prev, flagStatusDeleted, false // target got deleted
		}
	}
}

// insertNode inserts newNode between prev and next on newNode's level -
// the INSERT loop of Figure 5 lifted to a skip-list level, with the
// re-search running on this level only. It returns the final predecessor
// and whether newNode was inserted; false means a node with the same key
// is already present on this level.
func (l *SkipList[K, V]) insertNode(p *Proc, newNode, prev, next *SLNode[K, V]) (*SLNode[K, V], bool) {
	st := p.StatsOrNil()
	if l.cmpNode(prev, newNode.key) == 0 {
		return prev, false // duplicate key on this level
	}
	var bo casBackoff
	for {
		prevSucc := prev.loadSucc()
		if prevSucc.flagged {
			l.slHelpFlagged(p, prev, prevSucc.right)
		} else if !prevSucc.marked && prevSucc.right == next {
			// Re-pointing newNode at next is a plain store of next's
			// interned record: failed C&S retries allocate nothing.
			newNode.succ.Store(next.asClean())
			p.At(PtBeforeInsertCAS)
			ok := prev.succ.CompareAndSwap(prevSucc, newNode.asClean())
			st.IncCAS(ok)
			if ok {
				if newNode.isRoot() {
					l.size.Add(1) // linearization point of the insertion
				}
				return prev, true
			}
			p.At(PtAfterInsertCASFail)
			bo.onFail(st)
			result := prev.loadSucc()
			if result.flagged {
				l.slHelpFlagged(p, prev, result.right)
			}
			for prev.marked() {
				st.IncBacklink()
				p.At(PtBacklinkStep)
				prev = prev.backlink.Load()
			}
		} else {
			st.IncCAS(false)
			bo.onFail(st)
			if prevSucc.marked {
				for prev.marked() {
					st.IncBacklink()
					p.At(PtBacklinkStep)
					prev = prev.backlink.Load()
				}
			}
		}
		prev, next = l.searchRight(p, newNode.key, prev, false)
		if l.cmpNode(prev, newNode.key) == 0 {
			return prev, false
		}
	}
}

// deleteNode runs the three deletion steps against delNode on its level -
// the body of DELETE after the search (Figure 4). It reports whether this
// call's deletion succeeded (false: delNode was already being deleted or
// was gone).
func (l *SkipList[K, V]) deleteNode(p *Proc, prev, delNode *SLNode[K, V]) bool {
	pred, status, flagged := l.tryFlagNode(p, prev, delNode)
	if status == flagStatusIn {
		l.slHelpFlagged(p, pred, delNode)
	}
	return flagged
}
