package core

import "testing"

// These white-box tests pin the interning property itself: every record
// installed in a successor field is the identical interned record of the
// node it points at, so CAS identity comparison coincides with the paper's
// structural comparison on (right, marked, flagged) triples. They also
// document - deliberately - that a successor field can revisit a prior
// record (benign ABA); DESIGN.md §2.1 explains why the algorithms tolerate
// exactly that, and internal/adversary exercises the schedules.

func TestInternedRecordIdentityList(t *testing.T) {
	l := NewList[int, int]()
	l.Insert(nil, 10, 10)
	l.Insert(nil, 30, 30)
	n10 := l.Search(nil, 10)
	n30 := l.Search(nil, 30)
	if got := n10.loadSucc(); got != n30.asClean() {
		t.Fatalf("10.succ = %p, want 30's interned clean record %p", got, n30.asClean())
	}
	if got := l.head.loadSucc(); got != n10.asClean() {
		t.Fatalf("head.succ is not 10's interned clean record")
	}
	if _, ok := l.Delete(nil, 30); !ok {
		t.Fatal("delete of 30 failed")
	}
	// The deleted node's successor field froze on the tail's interned
	// marked record; 10 now points at the tail through its interned clean
	// record.
	if got := n30.loadSucc(); got != l.tail.asMarked() {
		t.Fatalf("deleted 30.succ = %+v, want tail's interned marked record", got)
	}
	if got := n10.loadSucc(); got != l.tail.asClean() {
		t.Fatalf("10.succ = %+v, want tail's interned clean record", got)
	}
}

// TestInternedABARestoresIdenticalRecord shows the ABA the interning
// introduces on purpose: after insert(20)+delete(20) between 10 and 30,
// node 10's successor field holds the *pointer-identical* record it held
// before, so a C&S delayed across both operations succeeds - exactly the
// semantics of the paper's tagged successor word.
func TestInternedABARestoresIdenticalRecord(t *testing.T) {
	l := NewList[int, int]()
	l.Insert(nil, 10, 10)
	l.Insert(nil, 30, 30)
	n10 := l.Search(nil, 10)
	before := n10.loadSucc()
	l.Insert(nil, 20, 20)
	if after := n10.loadSucc(); after == before {
		t.Fatal("insert of 20 did not change 10's successor record")
	}
	l.Delete(nil, 20)
	if after := n10.loadSucc(); after != before {
		t.Fatalf("10.succ = %p after insert+delete, want the identical interned record %p", after, before)
	}
}

func TestInternedRecordIdentitySkipList(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(zeroRng))
	l.Insert(nil, 10, 10)
	l.Insert(nil, 30, 30)
	n10 := l.Search(nil, 10)
	n30 := l.Search(nil, 30)
	if got := n10.loadSucc(); got != n30.asClean() {
		t.Fatalf("10.succ = %p, want 30's interned clean record %p", got, n30.asClean())
	}
	before := n10.loadSucc()
	l.Insert(nil, 20, 20)
	l.Delete(nil, 20)
	if after := n10.loadSucc(); after != before {
		t.Fatalf("skip-list 10.succ not restored to the identical interned record after insert+delete")
	}
	if _, ok := l.Delete(nil, 30); !ok {
		t.Fatal("delete of 30 failed")
	}
	if got := n30.loadSucc(); got != l.tails[0].asMarked() {
		t.Fatalf("deleted 30.succ = %+v, want level-1 tail's interned marked record", got)
	}
}
