package core

import (
	"sync"
	"testing"
)

// TestIncompleteTowersBoundedByContention validates the Section 4 claim
// that "a non-deleted tower can be incomplete only if its insertion or its
// deletion is in progress, so the number of incomplete towers at any time
// is bounded by the point contention".
//
// All towers are forced to height 4; c inserters are parked mid-build
// (after their root is linked, before their level-2 C&S). At that instant
// exactly the c in-flight towers may be incomplete: every other live tower
// must have reached its full height.
func TestIncompleteTowersBoundedByContention(t *testing.T) {
	const fullHeight = 4
	rng := func() uint64 { return 0b111 } // three heads -> height 4
	l := NewSkipList[int, int](WithRandomSource(rng))
	const settled = 100
	for k := 0; k < settled; k++ {
		l.Insert(nil, k, k)
	}

	const c = 5
	gates := make([]*gate, c)
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		// Park each inserter at its second insertion C&S (root done,
		// level 2 pending) using a counting hook.
		g := newGate(PtBeforeInsertCAS)
		gates[i] = g
		occurrences := 0
		hook := HookFunc(func(p Point, pid int) {
			if p != PtBeforeInsertCAS {
				return
			}
			occurrences++
			if occurrences >= 2 {
				g.At(p, pid)
			}
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Insert(&Proc{ID: i, Hooks: hook}, 1000+i, i)
		}(i)
		<-g.arrived
	}

	// Quiescent instant: c towers are mid-build. Count incomplete live
	// towers (height < fullHeight).
	incomplete := 0
	for h1, count := range l.Heights() {
		if h1+1 < fullHeight {
			incomplete += count
		}
	}
	if incomplete > c {
		t.Fatalf("%d incomplete towers with point contention %d", incomplete, c)
	}
	if incomplete == 0 {
		t.Fatal("setup failed: no tower is mid-build")
	}

	for _, g := range gates {
		close(g.release)
	}
	wg.Wait()
	// After the builders finish, every live tower is full again.
	for h1, count := range l.Heights() {
		if h1+1 < fullHeight && count != 0 {
			t.Fatalf("%d towers stuck at height %d after quiescence", count, h1+1)
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
