package core

import (
	"testing"

	"repro/internal/instrument"
)

// These tests pin the adaptive-backoff policy: the first backoffAfter
// consecutive C&S failures in one retry loop wait nothing (uncontended and
// single-failure schedules stay wait-free), every further failure waits
// and increments OpStats.BackoffWaits, and the waits allocate nothing.

// forceInsertFailures builds a deterministic single-goroutine schedule
// that makes one list Insert lose its C&S exactly times times: even keys
// 0,2,4,... are pre-inserted, the hook deletes the pending C&S's expected
// successor right before each attempt, so the attempt fails and the retry
// re-searches. Returns the stats of the contended insert.
func forceInsertFailures(t *testing.T, times int) *OpStats {
	t.Helper()
	l := NewList[int, int]()
	for k := 0; k <= 2*(times+2); k += 2 {
		l.Insert(nil, k, k)
	}
	fired := 0
	st := &OpStats{}
	p := &Proc{Stats: st, Hooks: instrument.HookFunc(func(pt Point, pid int) {
		if pt == PtBeforeInsertCAS && fired < times {
			fired++
			// Delete the successor the pending C&S expects; the
			// predecessor's record changes and the C&S must fail.
			if _, ok := l.Delete(nil, 2*fired); !ok {
				t.Errorf("hook delete of key %d failed", 2*fired)
			}
		}
	})}
	if _, ok := l.Insert(p, 1, 1); !ok {
		t.Fatal("contended insert of fresh key failed")
	}
	if got := st.CASAttempts - st.CASSuccesses; got < uint64(times) {
		t.Fatalf("schedule forced %d failed C&S, want >= %d", got, times)
	}
	return st
}

func TestBackoffFreeFailures(t *testing.T) {
	// Uncontended operations and schedules with at most backoffAfter
	// consecutive failures never wait.
	l := NewList[int, int]()
	st := &OpStats{}
	p := &Proc{Stats: st}
	l.Insert(p, 1, 1)
	l.Get(p, 1)
	l.Delete(p, 1)
	if st.BackoffWaits != 0 {
		t.Fatalf("uncontended ops waited %d times, want 0", st.BackoffWaits)
	}
	if st := forceInsertFailures(t, backoffAfter); st.BackoffWaits != 0 {
		t.Fatalf("%d failures waited %d times, want 0 (free failures)", backoffAfter, st.BackoffWaits)
	}
}

func TestBackoffWaitsAfterRepeatedFailures(t *testing.T) {
	// Force enough failures to walk the whole escalation: spins for
	// deficits 1..backoffMaxShift, then Gosched beyond. The schedule is
	// deterministic (single goroutine), so the count is exact.
	const failures = backoffAfter + backoffMaxShift + 2
	st := forceInsertFailures(t, failures)
	if want := uint64(failures - backoffAfter); st.BackoffWaits != want {
		t.Fatalf("%d failures waited %d times, want %d", failures, st.BackoffWaits, want)
	}
}

func TestBackoffNilStats(t *testing.T) {
	// The same contended schedule with no Stats attached must not panic:
	// every counter increment on the backoff path is nil-tolerant.
	l := NewList[int, int]()
	const times = 6
	for k := 0; k <= 2*(times+2); k += 2 {
		l.Insert(nil, k, k)
	}
	fired := 0
	p := &Proc{Hooks: instrument.HookFunc(func(pt Point, pid int) {
		if pt == PtBeforeInsertCAS && fired < times {
			fired++
			l.Delete(nil, 2*fired)
		}
	})}
	if _, ok := l.Insert(p, 1, 1); !ok {
		t.Fatal("contended insert of fresh key failed")
	}
}

func TestBackoffSkipListWaits(t *testing.T) {
	// Skip-list twin: a level-1 insert C&S forced to fail repeatedly walks
	// the same escalation through insertNode's retry loop.
	l := NewSkipList[int, int](WithRandomSource(zeroRng))
	const failures = backoffAfter + 3
	for k := 0; k <= 2*(failures+2); k += 2 {
		l.Insert(nil, k, k)
	}
	fired := 0
	st := &OpStats{}
	p := &Proc{Stats: st, Hooks: instrument.HookFunc(func(pt Point, pid int) {
		if pt == PtBeforeInsertCAS && fired < failures {
			fired++
			if _, ok := l.Delete(nil, 2*fired); !ok {
				t.Errorf("hook delete of key %d failed", 2*fired)
			}
		}
	})}
	if _, ok := l.Insert(p, 1, 1); !ok {
		t.Fatal("contended skip-list insert of fresh key failed")
	}
	if want := uint64(failures - backoffAfter); st.BackoffWaits != want {
		t.Fatalf("%d failures waited %d times, want %d", failures, st.BackoffWaits, want)
	}
}

func TestBackoffAllocsNothing(t *testing.T) {
	// A contended insert that waits must still allocate exactly its node:
	// the casBackoff lives on the retry loop's stack.
	l := NewList[int, int]()
	const runs = 100
	const failures = backoffAfter + 2 // deep enough to spin every run
	for k := 0; k <= 2*(runs+1)*(failures+1)+2; k += 2 {
		l.Insert(nil, k, k)
	}
	// Each run inserts the next odd key; its expected successor is always
	// the smallest remaining even key (victim), since victims are consumed
	// in increasing order much faster than the odd keys grow. Deleting the
	// victim right before the C&S forces the failure.
	fired := 0
	victim := 2
	p := &Proc{Hooks: instrument.HookFunc(func(pt Point, pid int) {
		if pt == PtBeforeInsertCAS && fired < failures {
			fired++
			if _, ok := l.Delete(nil, victim); !ok {
				t.Errorf("hook delete of key %d failed", victim)
			}
			victim += 2
		}
	})}
	odd := 1
	allocs := testing.AllocsPerRun(runs, func() {
		fired = 0
		if _, ok := l.Insert(p, odd, odd); !ok {
			t.Fatalf("insert of fresh key %d failed", odd)
		}
		odd += 2
	})
	if allocs != 1 {
		t.Fatalf("backing-off Insert allocates %v objects per op, want exactly 1 (the node)", allocs)
	}
}
