package core

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestSoakListLongChurn is a longer randomized soak (skipped with -short):
// sustained high-contention churn with periodic quiescent validation.
func TestSoakListLongChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	l := NewList[int, int]()
	const phases = 8
	const workers = 8
	const opsPerPhase = 8000
	const keyRange = 96
	for phase := 0; phase < phases; phase++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(phase), uint64(w)))
				p := &Proc{ID: w}
				for i := 0; i < opsPerPhase; i++ {
					k := int(rng.Uint64N(keyRange))
					switch rng.Uint64N(4) {
					case 0, 1:
						l.Insert(p, k, k)
					case 2:
						l.Delete(p, k)
					default:
						l.Search(p, k)
					}
				}
			}(w)
		}
		wg.Wait()
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		count := 0
		seen := map[int]bool{}
		l.Ascend(func(k, _ int) bool {
			if seen[k] {
				t.Fatalf("phase %d: duplicate key %d", phase, k)
			}
			seen[k] = true
			count++
			return true
		})
		if l.Len() != count {
			t.Fatalf("phase %d: Len %d != traversal %d", phase, l.Len(), count)
		}
	}
}

// TestSoakSkipListLongChurn is the skip-list counterpart, including the
// interrupted-tower paths (forced tall towers raise the interference rate).
func TestSoakSkipListLongChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	l := NewSkipList[int, int](WithRandomSource(testRNG(4242)))
	const phases = 6
	const workers = 8
	const opsPerPhase = 6000
	const keyRange = 64
	for phase := 0; phase < phases; phase++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(phase)+100, uint64(w)))
				p := &Proc{ID: w}
				for i := 0; i < opsPerPhase; i++ {
					k := int(rng.Uint64N(keyRange))
					switch rng.Uint64N(4) {
					case 0, 1:
						l.Insert(p, k, k)
					case 2:
						l.Delete(p, k)
					default:
						l.Search(p, k)
					}
				}
			}(w)
		}
		wg.Wait()
		if err := l.CheckStructure(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
	}
}

// TestForcedTallTowers runs every operation against towers pinned at the
// maximum height, maximizing multi-level interference and the superfluous-
// node cleanup paths.
func TestForcedTallTowers(t *testing.T) {
	l := NewSkipList[int, int](WithMaxLevel(8),
		WithRandomSource(func() uint64 { return ^uint64(0) })) // all towers height 7
	const workers = 8
	const keys = 24
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 5))
			p := &Proc{ID: w}
			for i := 0; i < 2500; i++ {
				k := int(rng.Uint64N(keys))
				if rng.Uint64N(2) == 0 {
					l.Insert(p, k, k)
				} else {
					l.Delete(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// Every surviving tower must have reached full height (insertions
	// either complete their towers or are superfluous and get removed).
	hist := l.Heights()
	for h := 0; h < 6; h++ {
		if hist[h] != 0 {
			// Incomplete towers can persist only if their insertion was
			// interrupted by a deletion whose sweep raced; the structure
			// checker above ensures they are at least consistent. Accept
			// but require they be rare.
			t.Logf("height-%d towers: %d (interrupted builds)", h+1, hist[h])
		}
	}
}
