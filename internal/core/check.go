package core

import (
	"fmt"
)

// CheckInvariants validates the paper's invariants INV 1-5 (Section 3.3)
// over the reachable part of the list. It must be called in a quiescent
// state (no concurrent operations); stress tests call it between phases.
// It returns nil if every invariant holds.
//
//	INV 1: keys are strictly sorted along right pointers.
//	INV 2: regular and logically deleted nodes form a single linked list
//	       from head to tail.
//	INV 3: the predecessor of a logically deleted node is flagged and
//	       unmarked, and the deleted node's successor is unmarked.
//	INV 4: a logically deleted node's backlink points to its predecessor.
//	INV 5: no node is both marked and flagged.
//
// In a quiescent state no node reachable from the head should be marked or
// flagged at all (every deletion has fully completed), which this checker
// also enforces.
func (l *List[K, V]) CheckInvariants() error {
	defer l.opPin(nil).Unpin()
	prev := l.head
	seen := 0
	for {
		s := prev.loadSucc()
		if s.marked && s.flagged {
			return fmt.Errorf("INV5 violated: node %d is both marked and flagged", seen)
		}
		if s.marked || s.flagged {
			return fmt.Errorf("quiescence violated: reachable node %d has mark=%t flag=%t",
				seen, s.marked, s.flagged)
		}
		next := s.right
		if next == nil {
			if prev != l.tail {
				return fmt.Errorf("INV2 violated: nil right pointer before tail (node %d)", seen)
			}
			return nil
		}
		if err := checkOrder(prev.kind, next.kind, func() int { return l.compare(prev.key, next.key) }); err != nil {
			return fmt.Errorf("INV1 violated at node %d: %w", seen, err)
		}
		prev = next
		seen++
		if seen > 1<<30 {
			return fmt.Errorf("INV2 violated: list does not terminate (cycle?)")
		}
	}
}

// checkOrder verifies strict ordering between two adjacent nodes given
// their kinds, using keyCmp only when both are interior.
func checkOrder(a, b nodeKind, keyCmp func() int) error {
	switch {
	case a == kindTail:
		return fmt.Errorf("tail has a successor")
	case b == kindHead:
		return fmt.Errorf("head appears as a successor")
	case a == kindHead || b == kindTail:
		return nil
	case keyCmp() >= 0:
		return fmt.Errorf("keys not strictly increasing")
	default:
		return nil
	}
}

// ascend calls fn for each key/value in ascending order, skipping
// logically deleted nodes. Iteration is weakly consistent: it reflects
// some interleaving of concurrent updates. fn returning false stops the
// iteration. Ascend in telemetry.go wraps it with the metrics flush.
func (l *List[K, V]) ascend(fn func(k K, v V) bool) {
	n := l.head.right()
	for n.kind != kindTail {
		if !n.marked() {
			if !fn(n.key, n.val) {
				return
			}
		}
		n = n.right()
	}
}

// CheckStructure validates the skip list's structure in a quiescent state:
// every level satisfies INV 1-5 (via the same per-level checks as the
// list), towers are vertically consistent (Figure 6) - each node's down
// pointer leads to a node with the same key one level below, towerRoot
// pointers reach level 1 - and every node present on level v+1 has its
// whole tower below it present.
func (l *SkipList[K, V]) CheckStructure() error {
	defer l.opPin(nil).Unpin()
	// Per-level linked-list invariants plus key sets per level.
	levelKeys := make([]map[K]*SLNode[K, V], l.maxLevel)
	for lv := 1; lv <= l.maxLevel; lv++ {
		keys := make(map[K]*SLNode[K, V])
		prev := l.heads[lv-1]
		seen := 0
		for {
			s := prev.loadSucc()
			if s.marked && s.flagged {
				return fmt.Errorf("level %d: INV5 violated", lv)
			}
			if s.marked || s.flagged {
				return fmt.Errorf("level %d: quiescence violated: mark=%t flag=%t", lv, s.marked, s.flagged)
			}
			next := s.right
			if next == nil {
				if prev != l.tails[lv-1] {
					return fmt.Errorf("level %d: nil right pointer before tail", lv)
				}
				break
			}
			if err := checkOrder(prev.kind, next.kind, func() int { return l.compare(prev.key, next.key) }); err != nil {
				return fmt.Errorf("level %d: INV1 violated: %w", lv, err)
			}
			if next.kind == kindInterior {
				if next.level != lv {
					return fmt.Errorf("level %d: node with key %v records level %d", lv, next.key, next.level)
				}
				keys[next.key] = next
			}
			prev = next
			seen++
			if seen > 1<<30 {
				return fmt.Errorf("level %d: does not terminate (cycle?)", lv)
			}
		}
		levelKeys[lv-1] = keys
	}
	// Vertical structure: down pointers, tower roots, and the staircase
	// property (a key on level v+1 is also on level v in quiescence).
	for lv := 2; lv <= l.maxLevel; lv++ {
		for k, n := range levelKeys[lv-1] {
			below, ok := levelKeys[lv-2][k]
			if !ok {
				return fmt.Errorf("level %d: key %v present but absent on level %d", lv, k, lv-1)
			}
			if n.down != below {
				return fmt.Errorf("level %d: key %v down pointer does not reach the level-%d node", lv, k, lv-1)
			}
			if n.towerRoot == nil || n.towerRoot.level != 1 || n.towerRoot.key != k {
				return fmt.Errorf("level %d: key %v has a bad towerRoot", lv, k)
			}
			if n.towerRoot.marked() {
				return fmt.Errorf("level %d: key %v is superfluous in a quiescent state", lv, k)
			}
		}
	}
	// Head/tail tower wiring.
	for lv := 1; lv <= l.maxLevel; lv++ {
		h, t := l.heads[lv-1], l.tails[lv-1]
		wantUpH, wantUpT := h, t
		if lv < l.maxLevel {
			wantUpH, wantUpT = l.heads[lv], l.tails[lv]
		}
		if h.up != wantUpH || t.up != wantUpT {
			return fmt.Errorf("level %d: sentinel up pointers are miswired", lv)
		}
	}
	return nil
}

// ascend calls fn for each key/value in ascending order by walking level 1,
// skipping marked roots. Weakly consistent under concurrency.
func (l *SkipList[K, V]) ascend(fn func(k K, v V) bool) {
	n := l.heads[0].right()
	for n.kind != kindTail {
		if !n.marked() {
			if !fn(n.key, n.val) {
				return
			}
		}
		n = n.right()
	}
}

// ascendRange calls fn for keys in [from, to) in ascending order. It uses
// the skip-list search to locate the start, then walks level 1.
func (l *SkipList[K, V]) ascendRange(p *Proc, from, to K, fn func(k K, v V) bool) {
	curr, next := l.searchToLevel(p, from, 1, true) // curr.key < from <= next.key
	_ = curr
	n := next
	for n.kind != kindTail && l.compare(n.key, to) < 0 {
		if !n.marked() {
			if !fn(n.key, n.val) {
				return
			}
		}
		n = n.right()
	}
}

// Heights returns the histogram of tower heights among live (non-marked
// root) towers: Heights()[h] is the number of towers whose topmost present
// node is on level h+1. Used by experiment E6. Call in a quiescent state
// for exact results.
func (l *SkipList[K, V]) Heights() []int {
	defer l.opPin(nil).Unpin()
	top := make(map[K]int)
	for lv := 1; lv <= l.maxLevel; lv++ {
		n := l.heads[lv-1].right()
		for n.kind != kindTail {
			if !n.towerRoot.marked() {
				if lv > top[n.key] {
					top[n.key] = lv
				}
			}
			n = n.right()
		}
	}
	hist := make([]int, l.maxLevel)
	for _, h := range top {
		hist[h-1]++
	}
	return hist
}
