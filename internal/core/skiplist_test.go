package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

// testRNG returns a deterministic, mutex-guarded random source.
func testRNG(seed uint64) func() uint64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Uint64()
	}
}

func TestSkipListEmpty(t *testing.T) {
	l := NewSkipList[int, string](WithRandomSource(testRNG(1)))
	if n := l.Search(nil, 1); n != nil {
		t.Fatalf("Search on empty = %v, want nil", n)
	}
	if _, ok := l.Delete(nil, 1); ok {
		t.Fatal("Delete on empty succeeded")
	}
	if got := l.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListInsertSearchDelete(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(2)))
	const n = 1000
	for i := 0; i < n; i++ {
		if _, ok := l.Insert(nil, i, i*3); !ok {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if got := l.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok := l.Get(nil, i)
		if !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d, %t", i, v, ok)
		}
	}
	for i := 0; i < n; i += 3 {
		if _, ok := l.Delete(nil, i); !ok {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, ok := l.Get(nil, i)
		if want := i%3 != 0; ok != want {
			t.Fatalf("Get(%d) present=%t want %t", i, ok, want)
		}
	}
}

func TestSkipListDuplicate(t *testing.T) {
	l := NewSkipList[string, int](WithRandomSource(testRNG(3)))
	r1, ok := l.Insert(nil, "a", 1)
	if !ok {
		t.Fatal("first insert failed")
	}
	r2, ok := l.Insert(nil, "a", 2)
	if ok || r2 != r1 {
		t.Fatalf("duplicate insert: ok=%t same=%t", ok, r2 == r1)
	}
	if v, _ := l.Get(nil, "a"); v != 1 {
		t.Fatalf("value clobbered: %d", v)
	}
}

func TestSkipListReinsertAfterDelete(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(4)))
	for round := 0; round < 50; round++ {
		if _, ok := l.Insert(nil, 7, round); !ok {
			t.Fatalf("round %d: insert failed", round)
		}
		if v, ok := l.Get(nil, 7); !ok || v != round {
			t.Fatalf("round %d: get = %d, %t", round, v, ok)
		}
		if _, ok := l.Delete(nil, 7); !ok {
			t.Fatalf("round %d: delete failed", round)
		}
		if _, ok := l.Get(nil, 7); ok {
			t.Fatalf("round %d: key survived delete", round)
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListRandomOrderLargeKeys(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(5)))
	rng := rand.New(rand.NewPCG(9, 9))
	keys := map[int]bool{}
	for i := 0; i < 2000; i++ {
		k := int(rng.Uint64N(1 << 40))
		_, ok := l.Insert(nil, k, k)
		if ok == keys[k] {
			t.Fatalf("Insert(%d) ok=%t but model has=%t", k, ok, keys[k])
		}
		keys[k] = true
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != len(keys) || !sort.IntsAreSorted(got) {
		t.Fatalf("ascend: %d keys (want %d), sorted=%t", len(got), len(keys), sort.IntsAreSorted(got))
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListAscendRange(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(6)))
	for i := 0; i < 100; i += 2 { // even keys 0..98
		l.Insert(nil, i, i)
	}
	var got []int
	l.AscendRange(nil, 10, 21, func(k, _ int) bool { got = append(got, k); return true })
	want := []int{10, 12, 14, 16, 18, 20}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AscendRange(10,21) = %v, want %v", got, want)
	}
	// from key absent, to beyond the end
	got = got[:0]
	l.AscendRange(nil, 95, 1000, func(k, _ int) bool { got = append(got, k); return true })
	if fmt.Sprint(got) != fmt.Sprint([]int{96, 98}) {
		t.Fatalf("AscendRange(95,1000) = %v", got)
	}
	// empty range
	got = got[:0]
	l.AscendRange(nil, 50, 50, func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Fatalf("AscendRange(50,50) = %v, want empty", got)
	}
}

func TestSkipListMaxLevelClamping(t *testing.T) {
	l := NewSkipList[int, int](WithMaxLevel(1), WithRandomSource(testRNG(7)))
	if l.MaxLevel() != 2 {
		t.Fatalf("MaxLevel = %d, want clamp to 2", l.MaxLevel())
	}
	for i := 0; i < 100; i++ {
		l.Insert(nil, i, i) // all towers capped at height 1
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	if got := l.Len(); got != 100 {
		t.Fatalf("Len = %d", got)
	}
}

func TestSkipListConcurrentDisjoint(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(8)))
	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &Proc{ID: w}
			for i := 0; i < per; i++ {
				k := w*per + i
				if _, ok := l.Insert(p, k, k); !ok {
					t.Errorf("Insert(%d) failed", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Len(); got != workers*per {
		t.Fatalf("Len = %d, want %d", got, workers*per)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &Proc{ID: w}
			for i := 0; i < per; i++ {
				k := w*per + i
				if _, ok := l.Delete(p, k); !ok {
					t.Errorf("Delete(%d) failed", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListConcurrentHotKeys(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(9)))
	const workers = 8
	const ops = 2000
	const keyRange = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 17))
			p := &Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Search(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	count := 0
	l.Ascend(func(k, _ int) bool {
		if seen[k] {
			t.Errorf("duplicate key %d", k)
		}
		seen[k] = true
		count++
		return true
	})
	if got := l.Len(); got != count {
		t.Fatalf("Len = %d but traversal found %d", got, count)
	}
}

func TestSkipListConcurrentDeleteContention(t *testing.T) {
	const workers = 8
	const keys = 150
	for round := 0; round < 5; round++ {
		l := NewSkipList[int, int](WithRandomSource(testRNG(uint64(round + 10))))
		for k := 0; k < keys; k++ {
			l.Insert(nil, k, k)
		}
		wins := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := &Proc{ID: w}
				for k := 0; k < keys; k++ {
					if _, ok := l.Delete(p, k); ok {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Fatalf("round %d: %d wins for %d keys", round, total, keys)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d", round, got)
		}
		if err := l.CheckStructure(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestSkipListInsertDeleteRace intermixes insertions and deletions of the
// same keys to exercise the superfluous-tower path: deletions of roots
// whose towers are still being built.
func TestSkipListInsertDeleteRace(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(20)))
	const workers = 8
	const keys = 16
	const rounds = 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &Proc{ID: w}
			for i := 0; i < rounds; i++ {
				k := (i + w) % keys
				if w%2 == 0 {
					l.Insert(p, k, k)
				} else {
					l.Delete(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListHeightsHistogram(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(30)))
	const n = 4000
	for i := 0; i < n; i++ {
		l.Insert(nil, i, i)
	}
	hist := l.Heights()
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != n {
		t.Fatalf("histogram mass = %d, want %d", total, n)
	}
	// Geometric(1/2): roughly half the towers have height 1. Allow wide
	// tolerance; this is a sanity check, E6 does the real measurement.
	if hist[0] < n/3 || hist[0] > 2*n/3 {
		t.Fatalf("height-1 towers = %d of %d, expected near %d", hist[0], n, n/2)
	}
	for h := 1; h < len(hist)-1; h++ {
		if hist[h] > 0 && hist[h-1] == 0 {
			t.Fatalf("height histogram has a gap below level %d", h+1)
		}
	}
}

func TestSkipListRandomHeightDistribution(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(31)))
	counts := map[int]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[l.randomHeight()]++
	}
	// P(h=1) = 1/2, P(h=2) = 1/4, ...
	for h := 1; h <= 4; h++ {
		want := draws >> uint(h)
		got := counts[h]
		if got < want*9/10 || got > want*11/10 {
			t.Fatalf("height %d drawn %d times, want about %d", h, got, want)
		}
	}
	for h := range counts {
		if h < 1 || h > l.maxLevel-1 {
			t.Fatalf("height %d outside [1, %d]", h, l.maxLevel-1)
		}
	}
}

func TestSkipListStatsThreeCASDeletion(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(func() uint64 { return 0 })) // all towers height 1
	for i := 0; i < 10; i++ {
		l.Insert(nil, i, i)
	}
	st := &OpStats{}
	p := &Proc{Stats: st}
	l.Delete(p, 5)
	// Height-1 tower, no contention: flag + mark + physical delete.
	if st.CASSuccesses != 3 {
		t.Fatalf("CASSuccesses = %d, want 3", st.CASSuccesses)
	}
}

func ExampleSkipList() {
	l := NewSkipList[string, int]()
	l.Insert(nil, "b", 2)
	l.Insert(nil, "a", 1)
	l.Insert(nil, "c", 3)
	l.Delete(nil, "b")
	l.Ascend(func(k string, v int) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// a 1
	// c 3
}
