package core

import (
	"cmp"
	"sort"
	"testing"
)

// reverse orders ints descending.
func reverse(a, b int) int { return cmp.Compare(b, a) }

func TestListFuncCustomOrdering(t *testing.T) {
	l := NewListFunc[int, int](reverse)
	for _, k := range []int{3, 1, 4, 1, 5, 9, 2, 6} {
		l.Insert(nil, k, k)
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(got))) {
		t.Fatalf("not descending: %v", got)
	}
	if len(got) != 7 { // 1 deduplicated
		t.Fatalf("got %d keys", len(got))
	}
	if _, ok := l.Get(nil, 4); !ok {
		t.Fatal("Get(4) missed under custom order")
	}
	if _, ok := l.Delete(nil, 9); !ok {
		t.Fatal("Delete(9) failed under custom order")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListFuncCustomOrdering(t *testing.T) {
	l := NewSkipListFunc[int, int](reverse, WithRandomSource(testRNG(64)))
	for k := 0; k < 300; k++ {
		l.Insert(nil, k, k)
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 300 || !sort.IsSorted(sort.Reverse(sort.IntSlice(got))) {
		t.Fatalf("descending skip list broken: len=%d", len(got))
	}
	for k := 0; k < 300; k += 5 {
		if _, ok := l.Delete(nil, k); !ok {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 240 {
		t.Fatalf("Len = %d", l.Len())
	}
}

// pair keys exercise struct keys with a lexicographic comparator - the
// use case the compare-func constructors exist for (see
// lockfree.PriorityQueue).
type pair struct{ a, b int }

func comparePair(x, y pair) int {
	if c := cmp.Compare(x.a, y.a); c != 0 {
		return c
	}
	return cmp.Compare(x.b, y.b)
}

func TestSkipListFuncStructKeys(t *testing.T) {
	l := NewSkipListFunc[pair, string](comparePair, WithRandomSource(testRNG(65)))
	keys := []pair{{2, 1}, {1, 9}, {1, 2}, {2, 0}, {0, 5}}
	for _, k := range keys {
		if _, ok := l.Insert(nil, k, "v"); !ok {
			t.Fatalf("Insert(%v) failed", k)
		}
	}
	if _, ok := l.Insert(nil, pair{1, 2}, "dup"); ok {
		t.Fatal("duplicate struct key accepted")
	}
	var got []pair
	l.Ascend(func(k pair, _ string) bool { got = append(got, k); return true })
	want := []pair{{0, 5}, {1, 2}, {1, 9}, {2, 0}, {2, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if _, ok := l.Delete(nil, pair{1, 9}); !ok {
		t.Fatal("Delete(struct key) failed")
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestSearchToLevelStructKeysStrict exercises the strict ("k - epsilon")
// search with struct keys, the path Delete uses.
func TestStructKeyDeleteRoundTrip(t *testing.T) {
	l := NewListFunc[pair, int](comparePair)
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			l.Insert(nil, pair{a, b}, a*10+b)
		}
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b += 2 {
			if _, ok := l.Delete(nil, pair{a, b}); !ok {
				t.Fatalf("Delete(%d,%d) failed", a, b)
			}
		}
	}
	if l.Len() != 50 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
