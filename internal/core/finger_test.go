package core

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func TestListFingerAscending(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 256; k++ {
		l.Insert(nil, k, k*10)
	}
	st := &OpStats{}
	p := &Proc{Stats: st}
	f := l.NewFinger()
	for k := 0; k < 256; k++ {
		v, ok := f.Get(p, k)
		if !ok || v != k*10 {
			t.Fatalf("finger Get(%d) = %d, %t; want %d, true", k, v, ok, k*10)
		}
	}
	// The first search has no remembered node; every later one lands
	// exactly on the previous key.
	if st.FingerMisses != 1 || st.FingerHits != 255 {
		t.Fatalf("hits/misses = %d/%d, want 255/1", st.FingerHits, st.FingerMisses)
	}
	// An ascending sweep through adjacent keys must do O(1) hops per op,
	// not O(n): well under one full pass of curr updates per operation.
	if st.CurrUpdates > 3*256 {
		t.Fatalf("ascending finger sweep did %d curr updates over 256 ops, expected O(1) each", st.CurrUpdates)
	}
}

func TestListFingerBackwardFallsBack(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 64; k++ {
		l.Insert(nil, k, k)
	}
	st := &OpStats{}
	p := &Proc{Stats: st}
	f := l.NewFinger()
	if _, ok := f.Get(p, 50); !ok {
		t.Fatal("Get(50) failed")
	}
	// A key before the finger forces the head fallback - and must still
	// return the right answer.
	v, ok := f.Get(p, 3)
	if !ok || v != 3 {
		t.Fatalf("backward finger Get(3) = %d, %t; want 3, true", v, ok)
	}
	if st.FingerMisses != 2 { // cold start + backward jump
		t.Fatalf("misses = %d, want 2", st.FingerMisses)
	}
}

func TestListFingerMixedOps(t *testing.T) {
	l := NewList[int, int]()
	f := l.NewFinger()
	for k := 0; k < 128; k++ {
		if _, ok := f.Insert(nil, k, k); !ok {
			t.Fatalf("finger Insert(%d) failed", k)
		}
	}
	if l.Len() != 128 {
		t.Fatalf("Len = %d, want 128", l.Len())
	}
	if _, ok := f.Insert(nil, 64, 0); ok {
		t.Fatal("duplicate finger Insert(64) succeeded")
	}
	for k := 0; k < 128; k += 2 {
		if _, ok := f.Delete(nil, k); !ok {
			t.Fatalf("finger Delete(%d) failed", k)
		}
	}
	for k := 0; k < 128; k++ {
		_, ok := f.Get(nil, k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%t, want %t", k, ok, want)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestListFingerRecoversFromDeletedNode deletes the exact node the finger
// remembers and checks the next operation recovers - through backlinks,
// counted as a finger hit, never restarting from the head.
func TestListFingerRecoversFromDeletedNode(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 32; k++ {
		l.Insert(nil, k, k)
	}
	f := l.NewFinger()
	if _, ok := f.Get(nil, 10); !ok {
		t.Fatal("Get(10) failed")
	}
	// Fully delete node 10 (flag, mark, physical unlink) behind the
	// finger's back.
	if _, ok := l.Delete(nil, 10); !ok {
		t.Fatal("Delete(10) failed")
	}
	st := &OpStats{}
	p := &Proc{Stats: st}
	v, ok := f.Get(p, 12)
	if !ok || v != 12 {
		t.Fatalf("Get(12) after finger-node deletion = %d, %t; want 12, true", v, ok)
	}
	if st.FingerHits != 1 || st.FingerMisses != 0 {
		t.Fatalf("recovery counted hits/misses = %d/%d, want 1/0", st.FingerHits, st.FingerMisses)
	}
	if st.BacklinkTraversals == 0 {
		t.Fatal("recovery from a deleted finger node did not walk backlinks")
	}
}

func TestSkipFingerAscending(t *testing.T) {
	l := NewSkipList[int, int]()
	for k := 0; k < 256; k++ {
		l.Insert(nil, k, k*10)
	}
	st := &OpStats{}
	p := &Proc{Stats: st}
	f := l.NewFinger()
	for k := 0; k < 256; k++ {
		v, ok := f.Get(p, k)
		if !ok || v != k*10 {
			t.Fatalf("skip finger Get(%d) = %d, %t; want %d, true", k, v, ok, k*10)
		}
	}
	if st.FingerMisses != 1 || st.FingerHits != 255 {
		t.Fatalf("hits/misses = %d/%d, want 255/1", st.FingerHits, st.FingerMisses)
	}
	// Adjacent keys must resolve on level 1 via the bounded probe: a few
	// hops per op, no descent from the top of the head tower.
	if st.CurrUpdates > 4*256 {
		t.Fatalf("ascending skip finger sweep did %d curr updates over 256 ops", st.CurrUpdates)
	}
}

func TestSkipFingerMixedOps(t *testing.T) {
	l := NewSkipList[int, int]()
	f := l.NewFinger()
	for k := 0; k < 256; k++ {
		if _, ok := f.Insert(nil, k, k); !ok {
			t.Fatalf("skip finger Insert(%d) failed", k)
		}
	}
	if _, ok := f.Insert(nil, 100, 0); ok {
		t.Fatal("duplicate skip finger Insert(100) succeeded")
	}
	for k := 0; k < 256; k += 2 {
		if _, ok := f.Delete(nil, k); !ok {
			t.Fatalf("skip finger Delete(%d) failed", k)
		}
	}
	for k := 0; k < 256; k++ {
		_, ok := f.Get(nil, k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%t, want %t", k, ok, want)
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipFingerRecoversFromDeletedNode(t *testing.T) {
	l := NewSkipList[int, int]()
	for k := 0; k < 64; k++ {
		l.Insert(nil, k, k)
	}
	f := l.NewFinger()
	if _, ok := f.Get(nil, 20); !ok {
		t.Fatal("Get(20) failed")
	}
	if _, ok := l.Delete(nil, 20); !ok {
		t.Fatal("Delete(20) failed")
	}
	st := &OpStats{}
	p := &Proc{Stats: st}
	v, ok := f.Get(p, 21)
	if !ok || v != 21 {
		t.Fatalf("Get(21) after finger-node deletion = %d, %t; want 21, true", v, ok)
	}
	if st.FingerMisses != 0 {
		t.Fatalf("recovery fell back to the head tower (%d misses), want backlink recovery", st.FingerMisses)
	}
}

func TestSkipFingerReset(t *testing.T) {
	l := NewSkipList[int, int]()
	for k := 0; k < 32; k++ {
		l.Insert(nil, k, k)
	}
	f := l.NewFinger()
	if _, ok := f.Get(nil, 30); !ok {
		t.Fatal("Get(30) failed")
	}
	f.Reset()
	st := &OpStats{}
	if _, ok := f.Get(&Proc{Stats: st}, 5); !ok {
		t.Fatal("Get(5) after Reset failed")
	}
	if st.FingerHits != 0 || st.FingerMisses != 1 {
		t.Fatalf("post-Reset hits/misses = %d/%d, want 0/1", st.FingerHits, st.FingerMisses)
	}
}

func TestListBatch(t *testing.T) {
	l := NewList[int, int]()
	items := make([]KV[int, int], 0, 100)
	for k := 99; k >= 0; k-- { // deliberately unsorted input
		items = append(items, KV[int, int]{Key: k, Value: k * 10})
	}
	inserted := make([]bool, len(items))
	if n := l.InsertBatch(nil, items, inserted); n != 100 {
		t.Fatalf("InsertBatch = %d, want 100", n)
	}
	for i := 1; i < len(items); i++ {
		if items[i-1].Key >= items[i].Key {
			t.Fatal("InsertBatch did not sort items in place")
		}
	}
	for i, ok := range inserted {
		if !ok {
			t.Fatalf("inserted[%d] = false", i)
		}
	}
	// Re-inserting the same pairs: all duplicates.
	if n := l.InsertBatch(nil, items, inserted); n != 0 {
		t.Fatalf("duplicate InsertBatch = %d, want 0", n)
	}

	keys := []int{50, 3, 200, 77, 0} // 200 is absent
	vals := make([]int, len(keys))
	found := make([]bool, len(keys))
	if n := l.GetBatch(nil, keys, vals, found); n != 4 {
		t.Fatalf("GetBatch = %d, want 4", n)
	}
	for i, k := range keys { // keys is now sorted: 0,3,50,77,200
		wantOK := k < 100
		if found[i] != wantOK {
			t.Fatalf("found[%d] (key %d) = %t, want %t", i, k, found[i], wantOK)
		}
		if wantOK && vals[i] != k*10 {
			t.Fatalf("vals[%d] (key %d) = %d, want %d", i, k, vals[i], k*10)
		}
	}

	del := []int{10, 20, 10, 999} // duplicate and absent keys
	deleted := make([]bool, len(del))
	if n := l.DeleteBatch(nil, del, deleted); n != 2 {
		t.Fatalf("DeleteBatch = %d, want 2", n)
	}
	// Sorted: 10, 10, 20, 999 - the second 10 and 999 must fail.
	want := []bool{true, false, true, false}
	for i := range want {
		if deleted[i] != want[i] {
			t.Fatalf("deleted = %v, want %v", deleted, want)
		}
	}
	if l.Len() != 98 {
		t.Fatalf("Len = %d, want 98", l.Len())
	}
	// nil result slices only count.
	if n := l.GetBatch(nil, []int{0, 10, 30}, nil, nil); n != 2 {
		t.Fatalf("GetBatch with nil results = %d, want 2", n)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListBatch(t *testing.T) {
	l := NewSkipList[int, int]()
	items := make([]KV[int, int], 0, 200)
	for k := 199; k >= 0; k-- {
		items = append(items, KV[int, int]{Key: k, Value: -k})
	}
	if n := l.InsertBatch(nil, items, nil); n != 200 {
		t.Fatalf("InsertBatch = %d, want 200", n)
	}
	keys := make([]int, 0, 200)
	for k := 199; k >= 0; k-- {
		keys = append(keys, k)
	}
	vals := make([]int, len(keys))
	if n := l.GetBatch(nil, keys, vals, nil); n != 200 {
		t.Fatalf("GetBatch = %d, want 200", n)
	}
	for i, k := range keys {
		if vals[i] != -k {
			t.Fatalf("vals[%d] (key %d) = %d, want %d", i, k, vals[i], -k)
		}
	}
	if n := l.DeleteBatch(nil, keys, nil); n != 200 {
		t.Fatalf("DeleteBatch = %d, want 200", n)
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchConcurrent hammers overlapping batches from many goroutines -
// under -race this is the finger-invalidation stress the tentpole calls
// for: every goroutine's finger repeatedly lands on nodes other
// goroutines are deleting.
func TestBatchConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 40
		span    = 512
	)
	list := NewList[int, int]()
	skip := NewSkipList[int, int]()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			items := make([]KV[int, int], 32)
			keys := make([]int, 32)
			for r := 0; r < rounds; r++ {
				base := rng.IntN(span)
				for i := range items {
					k := (base + rng.IntN(64)) % span
					items[i] = KV[int, int]{Key: k, Value: w}
					keys[i] = k
				}
				list.InsertBatch(nil, items, nil)
				skip.InsertBatch(nil, items, nil)
				list.GetBatch(nil, keys, nil, nil)
				skip.GetBatch(nil, keys, nil, nil)
				if r%2 == 1 {
					list.DeleteBatch(nil, keys, nil)
					skip.DeleteBatch(nil, keys, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := list.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := skip.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// Quiescent contents are in range and Len agrees with an actual walk.
	// (The list and skip list saw the same batches but under different
	// interleavings, so their contents may legitimately differ.)
	for _, check := range []struct {
		name string
		len  int
		walk func(func(k, v int) bool)
	}{
		{"list", list.Len(), list.Ascend},
		{"skiplist", skip.Len(), skip.Ascend},
	} {
		n := 0
		last := -1
		check.walk(func(k, v int) bool {
			if k <= last || k < 0 || k >= span {
				t.Errorf("%s: out-of-order or out-of-range key %d after %d", check.name, k, last)
			}
			last = k
			n++
			return true
		})
		if n != check.len {
			t.Errorf("%s: Len() = %d but walk saw %d keys", check.name, check.len, n)
		}
	}
}

// TestFingerConcurrentChurn drives long-lived fingers (not batch-local
// ones) through a structure other goroutines are churning, so remembered
// nodes are constantly invalidated mid-stream.
func TestFingerConcurrentChurn(t *testing.T) {
	const span = 256
	l := NewList[int, int]()
	sl := NewSkipList[int, int]()
	for k := 0; k < span; k += 2 {
		l.Insert(nil, k, k)
		sl.Insert(nil, k, k)
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for w := 0; w < 3; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.IntN(span)
				if rng.IntN(2) == 0 {
					l.Insert(nil, k, k)
					sl.Insert(nil, k, k)
				} else {
					l.Delete(nil, k)
					sl.Delete(nil, k)
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			f := l.NewFinger()
			sf := sl.NewFinger()
			for r := 0; r < 200; r++ {
				for k := 0; k < span; k += 3 {
					f.Get(nil, k)
					sf.Get(nil, k)
				}
			}
		}(w)
	}
	readers.Wait()
	close(stop)
	churn.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := sl.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
