package core

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
)

func benchSizes() []int { return []int{128, 1024, 8192} }

func BenchmarkListSearch(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(itoa(n), func(b *testing.B) {
			l := NewList[int, int]()
			for k := 0; k < n; k++ {
				l.Insert(nil, k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Search(nil, (i*7919)%n)
			}
		})
	}
}

func BenchmarkListInsertDelete(b *testing.B) {
	for _, n := range benchSizes() {
		b.Run(itoa(n), func(b *testing.B) {
			l := NewList[int, int]()
			for k := 0; k < n; k += 2 {
				l.Insert(nil, k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := (i*2 + 1) % n
				l.Insert(nil, k, k)
				l.Delete(nil, k)
			}
		})
	}
}

func BenchmarkListContendedHotKeys(b *testing.B) {
	l := NewList[int, int]()
	const keyRange = 32
	var seed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seed.Add(1)), 1))
		p := &Proc{}
		for pb.Next() {
			k := int(rng.Uint64N(keyRange))
			switch rng.Uint64N(3) {
			case 0:
				l.Insert(p, k, k)
			case 1:
				l.Delete(p, k)
			default:
				l.Search(p, k)
			}
		}
	})
}

func BenchmarkSkipListSearch(b *testing.B) {
	for _, n := range []int{1024, 65536, 1 << 20} {
		b.Run(itoa(n), func(b *testing.B) {
			l := NewSkipList[int, int]()
			for k := 0; k < n; k++ {
				l.Insert(nil, k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Search(nil, (i*7919)%n)
			}
		})
	}
}

func BenchmarkSkipListInsertDelete(b *testing.B) {
	l := NewSkipList[int, int]()
	const n = 65536
	for k := 0; k < n; k += 2 {
		l.Insert(nil, k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := (i*2 + 1) % n
		l.Insert(nil, k, k)
		l.Delete(nil, k)
	}
}

func BenchmarkSkipListMixedParallel(b *testing.B) {
	l := NewSkipList[int, int]()
	const keyRange = 4096
	for k := 0; k < keyRange; k += 2 {
		l.Insert(nil, k, k)
	}
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seed.Add(1)), 2))
		p := &Proc{}
		for pb.Next() {
			k := int(rng.Uint64N(keyRange))
			switch rng.Uint64N(10) {
			case 0:
				l.Insert(p, k, k)
			case 1:
				l.Delete(p, k)
			default:
				l.Search(p, k)
			}
		}
	})
}

// Clustered workloads: each goroutine works through runs of keys confined
// to a small window before jumping to a fresh one — the access pattern
// fingers and sorted batches exist for. Every pb.Next() is one key
// operation in both modes, so the perKey and batch64 ns/op compare
// directly; the batch mode buffers clusterBatch keys and flushes them
// through the finger-threaded batch call.
const (
	clusterWindow = 256
	clusterBatch  = 64
)

func benchClustered(b *testing.B, n int, perKey func(p *Proc, k int), batch func(p *Proc, keys []int)) {
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(uint64(seed.Add(1)), 9))
		p := &Proc{}
		keys := make([]int, 0, clusterBatch)
		base, left := 0, 0
		for pb.Next() {
			if left == 0 {
				base = int(rng.Uint64N(uint64(n - clusterWindow)))
				left = clusterBatch
			}
			k := base + int(rng.Uint64N(clusterWindow))
			left--
			if batch == nil {
				perKey(p, k)
				continue
			}
			keys = append(keys, k)
			if len(keys) == clusterBatch {
				batch(p, keys)
				keys = keys[:0]
			}
		}
		if len(keys) > 0 {
			batch(p, keys)
		}
	})
}

func BenchmarkClusteredListGet(b *testing.B) {
	const n = 8192
	l := NewList[int, int]()
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	b.Run("perKey", func(b *testing.B) {
		benchClustered(b, n, func(p *Proc, k int) { l.Get(p, k) }, nil)
	})
	b.Run("batch64", func(b *testing.B) {
		benchClustered(b, n, nil, func(p *Proc, keys []int) { l.GetBatch(p, keys, nil, nil) })
	})
}

func BenchmarkClusteredSkipListGet(b *testing.B) {
	const n = 65536
	l := NewSkipList[int, int]()
	for k := 0; k < n; k++ {
		l.Insert(nil, k, k)
	}
	b.Run("perKey", func(b *testing.B) {
		benchClustered(b, n, func(p *Proc, k int) { l.Get(p, k) }, nil)
	})
	b.Run("batch64", func(b *testing.B) {
		benchClustered(b, n, nil, func(p *Proc, keys []int) { l.GetBatch(p, keys, nil, nil) })
	})
}

// BenchmarkClusteredSkipListChurn covers the update half of the clustered
// story: every key op is an insert immediately undone by a delete, per-key
// or as sorted 64-element batches.
func BenchmarkClusteredSkipListChurn(b *testing.B) {
	const n = 65536
	newPrefilled := func() *SkipList[int, int] {
		l := NewSkipList[int, int]()
		for k := 0; k < n; k += 2 {
			l.Insert(nil, k, k)
		}
		return l
	}
	b.Run("perKey", func(b *testing.B) {
		l := newPrefilled()
		benchClustered(b, n, func(p *Proc, k int) {
			l.Insert(p, k, k)
			l.Delete(p, k)
		}, nil)
	})
	b.Run("batch64", func(b *testing.B) {
		l := newPrefilled()
		var seed atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewPCG(uint64(seed.Add(1)), 9))
			p := &Proc{}
			buf := make([]KV[int, int], 0, clusterBatch)
			keys := make([]int, 0, clusterBatch)
			flush := func() {
				l.InsertBatch(p, buf, nil)
				l.DeleteBatch(p, keys, nil)
				buf, keys = buf[:0], keys[:0]
			}
			base, left := 0, 0
			for pb.Next() {
				if left == 0 {
					base = int(rng.Uint64N(uint64(n - clusterWindow)))
					left = clusterBatch
				}
				k := base + int(rng.Uint64N(clusterWindow))
				left--
				buf = append(buf, KV[int, int]{Key: k, Value: k})
				keys = append(keys, k)
				if len(buf) == clusterBatch {
					flush()
				}
			}
			if len(buf) > 0 {
				flush()
			}
		})
	})
}

// BenchmarkSkipListMaxLevelAblation measures how the maxLevel cap affects
// search cost at a fixed size - the design-choice ablation DESIGN.md calls
// out (too low a cap degrades to O(n/2^max); too high wastes head links).
func BenchmarkSkipListMaxLevelAblation(b *testing.B) {
	const n = 32768
	for _, ml := range []int{4, 8, 16, 32} {
		b.Run("maxLevel="+itoa(ml), func(b *testing.B) {
			l := NewSkipList[int, int](WithMaxLevel(ml))
			for k := 0; k < n; k++ {
				l.Insert(nil, k, k)
			}
			st := &OpStats{}
			p := &Proc{Stats: st}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Search(p, (i*7919)%n)
			}
			b.ReportMetric(float64(st.EssentialSteps())/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkSuccessorRecordAllocation isolates the memory cost of the
// record mechanism that replaces the paper's pointer tag bits. With
// interned records the 4 C&S's per iteration install pre-built records:
// the node made by Insert is the only allocation per cycle.
func BenchmarkSuccessorRecordAllocation(b *testing.B) {
	l := NewList[int, int]()
	l.Insert(nil, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// insert+delete of the same key: 1 insertion C&S + 3 deletion
		// C&S's, all on interned records — 1 node allocation, 0 record
		// allocations per iteration.
		l.Insert(nil, 1, 1)
		l.Delete(nil, 1)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
