package core

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file is the telemetry seam of the primary structures: every exported
// operation is a thin wrapper that, when a telemetry.Recorder is attached,
// counts the operation and — for the sampled subset — accumulates the
// paper's essential steps in a scratch OpStats and flushes them, with one
// latency and one retry sample, into the recorder's sharded counters.
//
// The disabled path costs exactly one nil check per operation: no
// allocation, no atomic, no clock read. The enabled path keeps operation
// counts exact and samples everything else (period
// telemetry.DefaultSampleEvery, configurable down to 1 = record
// everything):
//
//   - unsampled operations run with the caller's own Proc untouched and
//     pay one atomic load plus one striped atomic add,
//   - sampled operations borrow a scratch OpStats from a sync.Pool (it
//     cannot live on the stack: the hook interface call in the inner
//     operations makes escape analysis spill anything reachable from the
//     Proc), read the clock twice, and flush a handful of striped atomic
//     adds — never per step, so the algorithms' hot loops are untouched.
//
// A caller-supplied Proc always sees exact stats: unsampled operations
// write straight into it, sampled ones mirror the scratch back.

// SetTelemetry attaches rec to the list; every subsequent operation flushes
// its step counts and latency into it. Attach before the list is shared
// with other goroutines (the field is read without synchronization on
// operation entry). A nil rec detaches.
func (l *List[K, V]) SetTelemetry(rec *telemetry.Recorder) { l.tel = rec }

// Telemetry returns the attached recorder, or nil.
func (l *List[K, V]) Telemetry() *telemetry.Recorder { return l.tel }

// SetTelemetry attaches rec to the skip list; see List.SetTelemetry.
func (l *SkipList[K, V]) SetTelemetry(rec *telemetry.Recorder) { l.tel = rec }

// Telemetry returns the attached recorder, or nil.
func (l *SkipList[K, V]) Telemetry() *telemetry.Recorder { return l.tel }

// statsPool recycles scratch OpStats for sampled operations.
var statsPool = sync.Pool{New: func() any { return new(OpStats) }}

func getScratch() *OpStats {
	st := statsPool.Get().(*OpStats)
	*st = OpStats{}
	return st
}

// telemetryProc returns a copy of p (hooks, ID, retire callback intact)
// whose step counters point at st, so the operation's essential steps are
// collected locally regardless of whether the caller passed its own Proc.
func telemetryProc(p *Proc, st *OpStats) Proc {
	var pr Proc
	if p != nil {
		pr = *p
	}
	pr.Stats = st
	return pr
}

// finishSampled records one sampled operation and mirrors the locally
// collected steps into the caller's own counters, if it brought any, so an
// instrumented benchmark sees exactly what the live metrics see.
func finishSampled(rec *telemetry.Recorder, tok telemetry.OpToken, op telemetry.Op, p *Proc, st *OpStats) {
	rec.FinishOp(tok, op, st)
	if outer := p.StatsOrNil(); outer != nil {
		outer.Add(st)
	}
	statsPool.Put(st)
}

// Search looks up k and returns its node, or nil if k is absent.
// This is the paper's SEARCH routine (Figure 3).
func (l *List[K, V]) Search(p *Proc, k K) *Node[K, V] {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.search(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpGet)
	if !tok.Sampled() {
		n := l.search(p, k)
		l.tel.FinishOp(tok, telemetry.OpGet, nil)
		return n
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n := l.search(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpGet, p, st)
	return n
}

// Get looks up k and returns its value. Convenience wrapper over Search.
func (l *List[K, V]) Get(p *Proc, k K) (V, bool) {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.get(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpGet)
	if !tok.Sampled() {
		v, ok := l.get(p, k)
		l.tel.FinishOp(tok, telemetry.OpGet, nil)
		return v, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	v, ok := l.get(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpGet, p, st)
	return v, ok
}

// Insert adds k with value v. It returns the new node and true on success,
// or the existing node and false if k is already present.
// This is the paper's INSERT routine (Figure 5).
func (l *List[K, V]) Insert(p *Proc, k K, v V) (*Node[K, V], bool) {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.insert(p, k, v)
	}
	tok := l.tel.StartOp(telemetry.OpInsert)
	if !tok.Sampled() {
		n, ok := l.insert(p, k, v)
		l.tel.FinishOp(tok, telemetry.OpInsert, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := l.insert(&pr, k, v)
	finishSampled(l.tel, tok, telemetry.OpInsert, p, st)
	return n, ok
}

// Delete removes k. It returns the deleted node and true on success, or
// nil and false if k was absent (or a concurrent deletion won the race).
// This is the paper's DELETE routine (Figure 4).
func (l *List[K, V]) Delete(p *Proc, k K) (*Node[K, V], bool) {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.remove(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpDelete)
	if !tok.Sampled() {
		n, ok := l.remove(p, k)
		l.tel.FinishOp(tok, telemetry.OpDelete, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := l.remove(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpDelete, p, st)
	return n, ok
}

// Ascend calls fn for each key/value in ascending order, skipping
// logically deleted nodes. Iteration is weakly consistent: it reflects
// some interleaving of concurrent updates. fn returning false stops the
// iteration.
func (l *List[K, V]) Ascend(fn func(k K, v V) bool) {
	defer l.opPin(nil).Unpin()
	if l.tel == nil {
		l.ascend(fn)
		return
	}
	// Iterations are rare, whole-structure walks: always time them.
	start := telemetry.Nanotime()
	l.ascend(fn)
	l.tel.RecordOp(telemetry.OpAscend, nil, time.Duration(telemetry.Nanotime()-start))
}

// Search looks up k and returns its root node, or nil if k is absent.
// This is SEARCH_SL.
func (l *SkipList[K, V]) Search(p *Proc, k K) *SLNode[K, V] {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.search(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpGet)
	if !tok.Sampled() {
		n := l.search(p, k)
		l.tel.FinishOp(tok, telemetry.OpGet, nil)
		return n
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n := l.search(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpGet, p, st)
	return n
}

// Get looks up k and returns its value.
func (l *SkipList[K, V]) Get(p *Proc, k K) (V, bool) {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.get(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpGet)
	if !tok.Sampled() {
		v, ok := l.get(p, k)
		l.tel.FinishOp(tok, telemetry.OpGet, nil)
		return v, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	v, ok := l.get(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpGet, p, st)
	return v, ok
}

// Insert adds k with value v, building the new tower bottom-up. It returns
// the root node and true on success, or the existing root and false if k
// is already present. The insertion is linearized at the root node's
// insertion C&S. This is INSERT_SL.
func (l *SkipList[K, V]) Insert(p *Proc, k K, v V) (*SLNode[K, V], bool) {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.insert(p, k, v)
	}
	tok := l.tel.StartOp(telemetry.OpInsert)
	if !tok.Sampled() {
		n, ok := l.insert(p, k, v)
		l.tel.FinishOp(tok, telemetry.OpInsert, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := l.insert(&pr, k, v)
	finishSampled(l.tel, tok, telemetry.OpInsert, p, st)
	return n, ok
}

// Delete removes k. It deletes the root node first (making the remaining
// tower superfluous and linearizing the deletion when the root is marked),
// then sweeps levels >= 2 to physically remove the rest of the tower.
// This is DELETE_SL.
func (l *SkipList[K, V]) Delete(p *Proc, k K) (*SLNode[K, V], bool) {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		return l.remove(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpDelete)
	if !tok.Sampled() {
		n, ok := l.remove(p, k)
		l.tel.FinishOp(tok, telemetry.OpDelete, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := l.remove(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpDelete, p, st)
	return n, ok
}

// Ascend calls fn for each key/value in ascending order by walking level 1,
// skipping marked roots. Weakly consistent under concurrency.
func (l *SkipList[K, V]) Ascend(fn func(k K, v V) bool) {
	defer l.opPin(nil).Unpin()
	if l.tel == nil {
		l.ascend(fn)
		return
	}
	start := telemetry.Nanotime()
	l.ascend(fn)
	l.tel.RecordOp(telemetry.OpAscend, nil, time.Duration(telemetry.Nanotime()-start))
}

// AscendRange calls fn for keys in [from, to) in ascending order. It uses
// the skip-list search to locate the start, then walks level 1.
//
// Under concurrent updates the scan is weakly consistent, with these
// guarantees (pinned by TestAscendRangeConcurrent):
//
//   - every key fn sees is in [from, to), keys arrive in strictly
//     ascending order, and no key is reported twice;
//   - a key present with the same value for the whole duration of the
//     call is reported, with that value (values are immutable once
//     inserted, so a reported value is always one the key actually held);
//   - a key inserted or deleted during the call may or may not be
//     reported - the scan reflects some interleaving of the concurrent
//     updates, never a torn state.
//
// fn returning false stops the iteration.
func (l *SkipList[K, V]) AscendRange(p *Proc, from, to K, fn func(k K, v V) bool) {
	defer l.opPin(p).Unpin()
	if l.tel == nil {
		l.ascendRange(p, from, to, fn)
		return
	}
	tok := l.tel.StartOp(telemetry.OpAscend)
	if !tok.Sampled() {
		l.ascendRange(p, from, to, fn)
		l.tel.FinishOp(tok, telemetry.OpAscend, nil)
		return
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	l.ascendRange(&pr, from, to, fn)
	finishSampled(l.tel, tok, telemetry.OpAscend, p, st)
}
