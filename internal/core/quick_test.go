package core

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/seqskip"
)

// opScript is a generated operation sequence for property-based tests.
type opScript struct {
	Ops  []uint8
	Keys []uint8
}

func (s opScript) steps() int { return min(len(s.Ops), len(s.Keys)) }

// TestQuickListMatchesModel drives random operation sequences against the
// list and a map model; every return value must match.
func TestQuickListMatchesModel(t *testing.T) {
	f := func(s opScript) bool {
		l := NewList[int, int]()
		model := map[int]int{}
		for i := 0; i < s.steps(); i++ {
			k := int(s.Keys[i]) % 64
			switch s.Ops[i] % 3 {
			case 0:
				_, in := model[k]
				if _, ok := l.Insert(nil, k, k); ok == in {
					return false
				}
				model[k] = k
			case 1:
				_, in := model[k]
				if _, ok := l.Delete(nil, k); ok != in {
					return false
				}
				delete(model, k)
			default:
				_, in := model[k]
				if got := l.Search(nil, k) != nil; got != in {
					return false
				}
			}
		}
		if l.Len() != len(model) {
			return false
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSkipListMatchesSeqskip drives random sequences against the
// concurrent skip list and Pugh's sequential skip list; results must agree
// operation by operation.
func TestQuickSkipListMatchesSeqskip(t *testing.T) {
	var seed uint64
	f := func(s opScript) bool {
		seed++
		var mu sync.Mutex
		rng := rand.New(rand.NewPCG(seed, 3))
		src := func() uint64 {
			mu.Lock()
			defer mu.Unlock()
			return rng.Uint64()
		}
		l := NewSkipList[int, int](WithRandomSource(src))
		model := seqskip.New[int, int](0, rand.New(rand.NewPCG(seed, 4)).Uint64)
		for i := 0; i < s.steps(); i++ {
			k := int(s.Keys[i]) % 48
			switch s.Ops[i] % 3 {
			case 0:
				_, ok := l.Insert(nil, k, k)
				if ok != model.Insert(k, k) {
					return false
				}
			case 1:
				_, ok := l.Delete(nil, k)
				if ok != model.Delete(k) {
					return false
				}
			default:
				if (l.Search(nil, k) != nil) != model.Contains(k) {
					return false
				}
			}
		}
		if l.Len() != model.Len() {
			return false
		}
		// The ordered contents must be identical.
		var got, want []int
		l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
		model.Ascend(func(k, _ int) bool { want = append(want, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return l.CheckStructure() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickListAscendSorted checks the iterator invariant: Ascend yields
// strictly increasing keys for any insertion order.
func TestQuickListAscendSorted(t *testing.T) {
	f := func(keys []int16) bool {
		l := NewList[int16, int]()
		for _, k := range keys {
			l.Insert(nil, k, 0)
		}
		prev := int32(-1 << 20)
		ok := true
		l.Ascend(func(k int16, _ int) bool {
			if int32(k) <= prev {
				ok = false
				return false
			}
			prev = int32(k)
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSkipListHeightsTotal checks that the height histogram always
// accounts for exactly the live keys.
func TestQuickSkipListHeightsTotal(t *testing.T) {
	var seed uint64
	f := func(keys []uint8, dels []uint8) bool {
		seed++
		l := NewSkipList[int, int](WithRandomSource(testRNG(seed)))
		for _, k := range keys {
			l.Insert(nil, int(k), 0)
		}
		for _, k := range dels {
			l.Delete(nil, int(k))
		}
		total := 0
		for _, c := range l.Heights() {
			total += c
		}
		return total == l.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedAgainstPerKeyOwnership: workers own disjoint key
// ranges, so each worker's view must behave sequentially even though the
// physical list is shared and recovery paths interleave.
func TestSkipListMixedChurnModel(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(testRNG(77)))
	const workers = 6
	const perWorkerKeys = 60
	const ops = 1500
	finals := make([]map[int]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+50, 1))
			p := &Proc{ID: w}
			model := map[int]bool{}
			base := w * perWorkerKeys
			for i := 0; i < ops; i++ {
				k := base + int(rng.Uint64N(perWorkerKeys))
				switch rng.Uint64N(3) {
				case 0:
					_, ok := l.Insert(p, k, k)
					if ok == model[k] {
						t.Errorf("Insert(%d)=%t but model=%t", k, ok, model[k])
						return
					}
					model[k] = true
				case 1:
					_, ok := l.Delete(p, k)
					if ok != model[k] {
						t.Errorf("Delete(%d)=%t but model=%t", k, ok, model[k])
						return
					}
					delete(model, k)
				default:
					if got := l.Search(p, k) != nil; got != model[k] {
						t.Errorf("Search(%d)=%t but model=%t", k, got, model[k])
						return
					}
				}
			}
			finals[w] = model
		}(w)
	}
	wg.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, m := range finals {
		want += len(m)
	}
	if got := l.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}
