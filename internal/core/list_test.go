package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

func TestListEmpty(t *testing.T) {
	l := NewList[int, string]()
	if n := l.Search(nil, 1); n != nil {
		t.Fatalf("Search on empty list = %v, want nil", n)
	}
	if got := l.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
	if _, ok := l.Delete(nil, 1); ok {
		t.Fatal("Delete on empty list succeeded")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestListInsertSearchDelete(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 100; i++ {
		if _, ok := l.Insert(nil, i, i*10); !ok {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if got := l.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	for i := 0; i < 100; i++ {
		v, ok := l.Get(nil, i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d, %t; want %d, true", i, v, ok, i*10)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 2 {
		if _, ok := l.Delete(nil, i); !ok {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := 0; i < 100; i++ {
		_, ok := l.Get(nil, i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%t, want %t", i, ok, want)
		}
	}
	if got := l.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestListDuplicateInsert(t *testing.T) {
	l := NewList[string, int]()
	n1, ok := l.Insert(nil, "k", 1)
	if !ok {
		t.Fatal("first insert failed")
	}
	n2, ok := l.Insert(nil, "k", 2)
	if ok {
		t.Fatal("duplicate insert succeeded")
	}
	if n2 != n1 {
		t.Fatal("duplicate insert did not return the existing node")
	}
	if v, _ := l.Get(nil, "k"); v != 1 {
		t.Fatalf("value overwritten by duplicate insert: %d", v)
	}
}

func TestListReverseAndRandomOrder(t *testing.T) {
	for _, name := range []string{"reverse", "random"} {
		t.Run(name, func(t *testing.T) {
			keys := make([]int, 500)
			for i := range keys {
				keys[i] = i
			}
			if name == "reverse" {
				sort.Sort(sort.Reverse(sort.IntSlice(keys)))
			} else {
				rng := rand.New(rand.NewPCG(1, 2))
				rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			}
			l := NewList[int, int]()
			for _, k := range keys {
				l.Insert(nil, k, k)
			}
			var got []int
			l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
			if !sort.IntsAreSorted(got) || len(got) != 500 {
				t.Fatalf("ascend produced %d keys, sorted=%t", len(got), sort.IntsAreSorted(got))
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestListConcurrentDisjointKeys(t *testing.T) {
	l := NewList[int, int]()
	const workers, per = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &Proc{ID: w}
			for i := 0; i < per; i++ {
				k := w*per + i
				if _, ok := l.Insert(p, k, k); !ok {
					t.Errorf("Insert(%d) failed", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Len(); got != workers*per {
		t.Fatalf("Len = %d, want %d", got, workers*per)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete everything concurrently.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &Proc{ID: w}
			for i := 0; i < per; i++ {
				k := w*per + i
				if _, ok := l.Delete(p, k); !ok {
					t.Errorf("Delete(%d) failed", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Len(); got != 0 {
		t.Fatalf("Len after deletes = %d, want 0", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestListConcurrentContendedStress(t *testing.T) {
	l := NewList[int, int]()
	const workers = 8
	const ops = 3000
	const keyRange = 64 // hot: forces flag/mark/backlink interference
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 42))
			p := &Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Search(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The surviving keys must be a subset of the key range with no
	// duplicates, and Len must agree with the traversal.
	seen := map[int]bool{}
	count := 0
	l.Ascend(func(k, _ int) bool {
		if seen[k] {
			t.Errorf("duplicate key %d in list", k)
		}
		seen[k] = true
		if k < 0 || k >= keyRange {
			t.Errorf("key %d out of range", k)
		}
		count++
		return true
	})
	if got := l.Len(); got != count {
		t.Fatalf("Len = %d but traversal found %d", got, count)
	}
}

// TestListDeleteContention has all workers fight over the same keys so
// that TryFlag frequently loses races and must report the concurrent
// deletion; exactly one Delete per key may succeed.
func TestListDeleteContention(t *testing.T) {
	const workers = 8
	const keys = 200
	for round := 0; round < 10; round++ {
		l := NewList[int, int]()
		for k := 0; k < keys; k++ {
			l.Insert(nil, k, k)
		}
		wins := make([]int, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := &Proc{ID: w}
				for k := 0; k < keys; k++ {
					if _, ok := l.Delete(p, k); ok {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Fatalf("round %d: %d successful deletions of %d keys", round, total, keys)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d, want 0", round, got)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestListMixedChurnModel compares against a mutex-protected model map:
// with per-worker disjoint key ownership the final state is deterministic.
func TestListMixedChurnModel(t *testing.T) {
	l := NewList[int, int]()
	const workers = 6
	const perWorkerKeys = 100
	const ops = 2000
	finals := make([]map[int]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+7, 99))
			p := &Proc{ID: w}
			model := map[int]int{}
			base := w * perWorkerKeys
			for i := 0; i < ops; i++ {
				k := base + int(rng.Uint64N(perWorkerKeys))
				if rng.Uint64N(2) == 0 {
					_, ok := l.Insert(p, k, k)
					_, inModel := model[k]
					if ok == inModel {
						t.Errorf("Insert(%d) = %t but model presence = %t", k, ok, inModel)
						return
					}
					if ok {
						model[k] = k
					}
				} else {
					_, ok := l.Delete(p, k)
					_, inModel := model[k]
					if ok != inModel {
						t.Errorf("Delete(%d) = %t but model presence = %t", k, ok, inModel)
						return
					}
					delete(model, k)
				}
			}
			finals[w] = model
		}(w)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for w, m := range finals {
		want += len(m)
		for k := range m {
			if _, ok := l.Get(nil, k); !ok {
				t.Errorf("worker %d: key %d in model but missing from list", w, k)
			}
		}
	}
	if got := l.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestListStatsCounting(t *testing.T) {
	l := NewList[int, int]()
	st := &OpStats{}
	p := &Proc{Stats: st}
	for i := 0; i < 50; i++ {
		l.Insert(p, i, i)
	}
	if st.CASSuccesses != 50 {
		t.Fatalf("CASSuccesses = %d, want 50 (one insertion C&S each)", st.CASSuccesses)
	}
	if st.CASAttempts < 50 {
		t.Fatalf("CASAttempts = %d, want >= 50", st.CASAttempts)
	}
	if st.CurrUpdates == 0 {
		t.Fatal("CurrUpdates = 0, want traversal steps")
	}
	st.Reset()
	l.Delete(p, 25)
	// An uncontended deletion needs exactly three successful C&S's:
	// flag, mark, physical delete.
	if st.CASSuccesses != 3 {
		t.Fatalf("CASSuccesses for one deletion = %d, want 3", st.CASSuccesses)
	}
	if st.BacklinkTraversals != 0 {
		t.Fatalf("BacklinkTraversals = %d, want 0 without contention", st.BacklinkTraversals)
	}
}

func TestListEssentialSteps(t *testing.T) {
	st := &OpStats{CASAttempts: 2, BacklinkTraversals: 3, NextUpdates: 5, CurrUpdates: 7, HelpCalls: 100}
	if got := st.EssentialSteps(); got != 17 {
		t.Fatalf("EssentialSteps = %d, want 17 (help calls are not billed)", got)
	}
	var sum OpStats
	sum.Add(st)
	sum.Add(st)
	if sum.CurrUpdates != 14 {
		t.Fatalf("Add did not accumulate: %+v", sum)
	}
}

func TestListStringKeys(t *testing.T) {
	l := NewList[string, int]()
	words := []string{"pear", "apple", "zebra", "mango", "apricot", ""}
	for i, w := range words {
		if _, ok := l.Insert(nil, w, i); !ok {
			t.Fatalf("Insert(%q) failed", w)
		}
	}
	var got []string
	l.Ascend(func(k string, _ int) bool { got = append(got, k); return true })
	if !sort.StringsAreSorted(got) {
		t.Fatalf("not sorted: %q", got)
	}
	if _, ok := l.Get(nil, ""); !ok {
		t.Fatal("empty-string key lost")
	}
}

func ExampleList() {
	l := NewList[int, string]()
	l.Insert(nil, 2, "two")
	l.Insert(nil, 1, "one")
	l.Insert(nil, 3, "three")
	l.Delete(nil, 2)
	l.Ascend(func(k int, v string) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 1 one
	// 3 three
}
