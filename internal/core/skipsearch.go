package core

// searchToLevel is SEARCHTOLEVEL_SL: locate the two consecutive nodes on
// level v with keys closest to k. It descends from the highest level in
// use, traversing each level with searchRight. In strict mode it performs
// the paper's "k - epsilon" search (curr.key < k <= next.key); otherwise
// curr.key <= k < next.key.
func (l *SkipList[K, V]) searchToLevel(p *Proc, k K, v int, strict bool) (*SLNode[K, V], *SLNode[K, V]) {
	curr, lv := l.findStart(v)
	for lv > v {
		curr, _ = l.searchRight(p, k, curr, strict)
		curr = curr.down
		lv--
	}
	return l.searchRight(p, k, curr, strict)
}

// findStart returns the head-tower node to begin a descending search from:
// the lowest head node whose level is at least v and whose level above
// holds no interior nodes. Because interior towers are capped at
// maxLevel-1, the climb always terminates at or below the top head node.
func (l *SkipList[K, V]) findStart(v int) (*SLNode[K, V], int) {
	curr := l.heads[0]
	lv := 1
	for {
		up := curr.up
		if up == curr {
			break // top of the head tower
		}
		if lv >= v && up.right().kind == kindTail {
			break // the level above is empty and we are high enough
		}
		curr = up
		lv++
	}
	return curr, lv
}

// searchRight is SEARCHRIGHT: traverse one level rightward from curr until
// the key bound is passed. Like the plain list's SearchFrom it physically
// deletes logically deleted (marked) successors, and - this is the skip
// list's extra duty from Section 4 - it performs the full three-step
// deletion of any superfluous node it encounters (a node whose tower root
// is marked), so that searches never repeatedly traverse dead towers.
func (l *SkipList[K, V]) searchRight(p *Proc, k K, curr *SLNode[K, V], strict bool) (*SLNode[K, V], *SLNode[K, V]) {
	st := p.StatsOrNil()
	next := curr.right()
	for l.nodeLeq(next, k, strict) {
		nextSucc := next.loadSucc()
		if nextSucc.marked {
			// Same recovery as SearchFrom lines 3-6: either help the
			// physical deletion, or step through a marked chain when
			// curr itself was marked first.
			currSucc := curr.loadSucc()
			if !(currSucc.marked && currSucc.right == next) {
				if currSucc.right == next {
					l.slHelpMarked(p, curr, next)
				}
				next = curr.right()
				st.IncNext()
				continue
			}
		} else if next.superfluous() {
			// next belongs to a deleted tower but is not yet marked on
			// this level: perform all three deletion steps here.
			pred, status, _ := l.tryFlagNode(p, curr, next)
			if status == flagStatusIn {
				l.slHelpFlagged(p, pred, next)
			}
			// tryFlagNode may have moved us; resume from an unmarked
			// position. (pred is unmarked when status == flagStatusIn.)
			if status == flagStatusIn {
				curr = pred
			}
			for curr.marked() {
				st.IncBacklink()
				p.At(PtBacklinkStep)
				curr = curr.backlink.Load()
			}
			next = curr.right()
			st.IncNext()
			continue
		}
		if l.nodeLeq(next, k, strict) {
			curr = next
			st.IncCurr()
			next = curr.right()
			st.IncNext()
		}
	}
	p.At(PtSearchDone)
	return curr, next
}
