package core

import (
	"cmp"

	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// List is the lock-free sorted linked list of Fomitchev and Ruppert. It
// implements a dictionary keyed by K with no duplicate keys. All methods
// are safe for concurrent use by any number of goroutines and the
// implementation is lock-free: a delayed or stopped goroutine never
// prevents others from completing operations.
//
// The zero value is not usable; construct with NewList.
type List[K comparable, V any] struct {
	// The fields above the pad are written once at construction and
	// read-only afterwards: they share cache lines safely.
	head    *Node[K, V]
	tail    *Node[K, V]
	compare func(K, K) int
	// tel, when non-nil, receives one RecordOp flush per completed
	// operation (see telemetry.go). Set before the list is shared.
	tel *telemetry.Recorder
	// retire, when non-nil, is called with each node whose physical-
	// deletion C&S succeeded on this list - exactly once per node, from
	// whichever goroutine won the C&S. Set before the list is shared.
	retire func(node any)
	// rec, when non-nil, recycles retired nodes through epoch-based
	// reclamation (recycle.go). Set by EnableRecycling before sharing.
	rec *recycler

	// _ keeps the read-mostly header off whatever line the allocator
	// places after it (and off size's shard slice header); size itself
	// stripes its writes across padded per-P shards, so Len maintenance
	// no longer serializes concurrent writers on one cache line.
	_    [cacheLinePad]byte
	size instrument.ShardedInt64
}

// cacheLinePad separates read-mostly struct headers from mutable state.
// 64 bytes is the line size of every amd64/arm64 part this will run on.
const cacheLinePad = 64

// NewList returns an empty list over a naturally ordered key type.
func NewList[K cmp.Ordered, V any]() *List[K, V] {
	return NewListFunc[K, V](cmp.Compare[K])
}

// NewListFunc returns an empty list ordered by the given comparison
// function, which must define a strict total order (return <0, 0, >0 for
// a<b, a==b, a>b) and be consistent with ==: compare(a,b)==0 iff a == b.
func NewListFunc[K comparable, V any](compare func(K, K) int) *List[K, V] {
	l := &List[K, V]{
		head:    makeSentinel[K, V](kindHead),
		tail:    makeSentinel[K, V](kindTail),
		compare: compare,
	}
	l.head.succ.Store(l.tail.asClean())
	l.tail.succ.Store(&succ[K, V]{right: nil}) // the one record no node interns
	l.size.Init()
	return l
}

// cmpNode orders node n against key k treating sentinels as -inf/+inf.
func (l *List[K, V]) cmpNode(n *Node[K, V], k K) int {
	switch n.kind {
	case kindHead:
		return -1
	case kindTail:
		return 1
	default:
		return l.compare(n.key, k)
	}
}

// nodeLeq reports n.key <= k (strict=false) or n.key < k (strict=true).
// The strict form implements the paper's "k - epsilon" searches.
func (l *List[K, V]) nodeLeq(n *Node[K, V], k K, strict bool) bool {
	c := l.cmpNode(n, k)
	if strict {
		return c < 0
	}
	return c <= 0
}

// SetRetireHook attaches fn to the list's physical-deletion C&S site: fn
// is called with each node whose unlinking C&S succeeds, exactly once per
// node, from the goroutine that won the C&S (so fn must be safe for
// concurrent use). This is the seam memory-reclamation schemes such as
// internal/ebr hang on.
//
// The hook MUST be attached before the list is shared and never changed
// afterwards: l.retire is a plain field, written here without
// synchronization and read at every physical-deletion C&S. A store that
// races an operation is a data race (the race detector will flag it),
// and even if it happens to win, deletions already past the nil check
// miss the hook. Attach-then-share is the contract; nil detaches (under
// the same single-threaded condition).
func (l *List[K, V]) SetRetireHook(fn func(node any)) { l.retire = fn }

// Len returns the number of keys in the list. The count is maintained at
// linearization points (insertion C&S, marking C&S) on a sharded counter,
// so it is exact in any quiescent state and within the number of in-flight
// operations otherwise (each in-flight delta lands in exactly one shard
// and the sum reads every shard once).
func (l *List[K, V]) Len() int { return int(l.size.Load()) }

// Head returns the head sentinel; used by invariant checkers and the skip
// list. The sentinel itself never carries a key.
func (l *List[K, V]) Head() *Node[K, V] { return l.head }

// Tail returns the tail sentinel.
func (l *List[K, V]) Tail() *Node[K, V] { return l.tail }

// search is the paper's SEARCH routine (Figure 3); Search in telemetry.go
// wraps it with the optional metrics flush.
func (l *List[K, V]) search(p *Proc, k K) *Node[K, V] {
	curr, _ := l.searchFrom(p, k, l.head, false)
	if l.cmpNode(curr, k) == 0 {
		return curr
	}
	return nil
}

// get looks up k and returns its value. Convenience wrapper over search.
func (l *List[K, V]) get(p *Proc, k K) (V, bool) {
	if n := l.search(p, k); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// insert adds k with value v. It returns the new node and true on success,
// or the existing node and false if k is already present.
// This is the paper's INSERT routine (Figure 5).
func (l *List[K, V]) insert(p *Proc, k K, v V) (*Node[K, V], bool) {
	return l.insertFrom(p, k, v, l.head)
}

// insertFrom is insert with the initial search started at from instead of
// the head. from must order <= k and must have been in the list at some
// point (the head always qualifies); the paper's SearchFrom is correct
// from any such node, which is what the finger and batch paths exploit.
func (l *List[K, V]) insertFrom(p *Proc, k K, v V, from *Node[K, V]) (*Node[K, V], bool) {
	st := p.StatsOrNil()
	prev, next := l.searchFrom(p, k, from, false)
	if l.cmpNode(prev, k) == 0 { // duplicate key
		return prev, false
	}
	newNode := l.newNode(p, k, v)
	var bo casBackoff
	for {
		prevSucc := prev.loadSucc()
		if prevSucc.flagged {
			// The predecessor is flagged: help the corresponding
			// deletion complete before retrying (Insert lines 7-8).
			l.helpFlagged(p, prev, prevSucc.right)
		} else if !prevSucc.marked && prevSucc.right == next {
			// Insertion attempt (Insert lines 10-11). The paper's C&S
			// expects (next_node, 0, 0); with interned records that is
			// exactly next's clean record, and re-pointing newNode at
			// next on a retry is a plain store of next's interned
			// record - no allocation per attempt.
			newNode.succ.Store(next.asClean())
			p.At(PtBeforeInsertCAS)
			ok := prev.succ.CompareAndSwap(prevSucc, newNode.asClean())
			st.IncCAS(ok)
			if ok {
				l.size.Add(1)
				return newNode, true
			}
			// Failure (Insert lines 14-18): inspect the value that beat
			// us and recover accordingly.
			p.At(PtAfterInsertCASFail)
			bo.onFail(st)
			result := prev.loadSucc()
			if result.flagged {
				l.helpFlagged(p, prev, result.right)
			}
			for prev.marked() {
				st.IncBacklink()
				p.At(PtBacklinkStep)
				prev = prev.backlink.Load()
			}
		} else {
			// The successor field changed since our search: redirected,
			// marked, or both. Walk backlinks past any marked nodes,
			// then re-search from there (never from the head).
			st.IncCAS(false) // the paper's C&S would have been attempted and failed
			bo.onFail(st)
			if prevSucc.marked {
				for prev.marked() {
					st.IncBacklink()
					p.At(PtBacklinkStep)
					prev = prev.backlink.Load()
				}
			}
		}
		prev, next = l.searchFrom(p, k, prev, false) // Insert line 19
		if l.cmpNode(prev, k) == 0 {
			// Duplicate inserted concurrently (lines 20-22). newNode was
			// never published, so it can go straight back to the free list.
			l.freeNode(newNode)
			return prev, false
		}
	}
}

// remove deletes k. It returns the deleted node and true on success, or
// nil and false if k was absent (or a concurrent deletion won the race).
// This is the paper's DELETE routine (Figure 4).
func (l *List[K, V]) remove(p *Proc, k K) (*Node[K, V], bool) {
	prev, delNode := l.searchFrom(p, k, l.head, true) // SearchFrom(k - eps, head)
	if l.cmpNode(delNode, k) != 0 {                   // k is not in the list
		return nil, false
	}
	return l.removeAt(p, prev, delNode)
}

// removeAt runs the three deletion steps against delNode, whose last known
// predecessor is prev - the body of DELETE after the search (Figure 4).
// Shared by remove and the finger/batch deletion paths.
func (l *List[K, V]) removeAt(p *Proc, prev, delNode *Node[K, V]) (*Node[K, V], bool) {
	prev, result := l.tryFlag(p, prev, delNode)
	if prev != nil {
		l.helpFlagged(p, prev, delNode)
	}
	if !result {
		return nil, false
	}
	return delNode, true
}

// searchFrom is the paper's SEARCHFROM routine (Figure 3). Starting from
// curr (whose key must order <= k, or < k in strict mode), it returns two
// nodes n1, n2 such that at some instant during the call n1.right == n2
// and n1.key <= k < n2.key (strict: n1.key < k <= n2.key). It physically
// deletes any logically deleted node it passes by calling helpMarked.
func (l *List[K, V]) searchFrom(p *Proc, k K, curr *Node[K, V], strict bool) (*Node[K, V], *Node[K, V]) {
	st := p.StatsOrNil()
	next := curr.right()
	for l.nodeLeq(next, k, strict) {
		// Ensure that either next is unmarked, or both curr and next are
		// marked and curr was marked earlier (SearchFrom lines 3-6).
		for {
			nextSucc := next.loadSucc()
			if !nextSucc.marked {
				break
			}
			currSucc := curr.loadSucc()
			if currSucc.marked && currSucc.right == next {
				break
			}
			if currSucc.right == next {
				l.helpMarked(p, curr, next)
			}
			next = curr.right()
			st.IncNext()
		}
		if l.nodeLeq(next, k, strict) {
			curr = next
			st.IncCurr()
			next = curr.right()
			st.IncNext()
		}
	}
	p.At(PtSearchDone)
	return curr, next
}

// helpMarked attempts the physical deletion of the marked node delNode and
// the unflagging of prevNode with a single C&S (Figure 3, HELPMARKED).
func (l *List[K, V]) helpMarked(p *Proc, prevNode, delNode *Node[K, V]) {
	p.StatsOrNil().IncHelp()
	next := delNode.right() // frozen: delNode is marked
	prevSucc := prevNode.loadSucc()
	if prevSucc.right != delNode || prevSucc.marked || !prevSucc.flagged {
		return // someone already completed (or the state moved on)
	}
	p.At(PtBeforePhysicalCAS)
	ok := prevNode.succ.CompareAndSwap(prevSucc, next.asClean())
	p.StatsOrNil().IncCAS(ok)
	if ok {
		// The winning C&S is the unique moment delNode leaves the list:
		// hand it to the process's reclamation scheme, if any, to the
		// structure-level retire hook (internal/ebr integration), and to
		// the recycler's epoch-stamped retire list.
		p.RetireNode(delNode)
		if l.retire != nil {
			l.retire(delNode)
		}
		l.retireNode(p, delNode)
	}
}

// helpFlagged completes the deletion of delNode, the successor of the
// flagged node prevNode: set the backlink, mark, then physically delete
// (Figure 4, HELPFLAGGED).
func (l *List[K, V]) helpFlagged(p *Proc, prevNode, delNode *Node[K, V]) {
	p.StatsOrNil().IncHelp()
	p.At(PtHelpFlagged)
	delNode.backlink.Store(prevNode)
	if !delNode.marked() {
		l.tryMark(p, delNode)
	}
	l.helpMarked(p, prevNode, delNode)
}

// tryMark marks delNode, helping any deletion that flagged it first
// (Figure 4, TRYMARK). On return delNode is marked.
func (l *List[K, V]) tryMark(p *Proc, delNode *Node[K, V]) {
	st := p.StatsOrNil()
	var bo casBackoff
	for {
		s := delNode.loadSucc()
		if s.marked {
			return
		}
		if s.flagged {
			// Failure due to flagging: help that deletion first.
			l.helpFlagged(p, delNode, s.right)
			continue
		}
		p.At(PtBeforeMarkCAS)
		ok := delNode.succ.CompareAndSwap(s, s.right.asMarked())
		st.IncCAS(ok)
		if ok {
			l.size.Add(-1) // linearization point of the deletion
			return
		}
		bo.onFail(st)
	}
}

// tryFlag attempts to flag the predecessor of target (Figure 5, TRYFLAG).
// prev is the last node known to precede target. It returns:
//
//   - (pred, true) if this call flagged target's predecessor;
//   - (pred, false) if another process flagged it (that deletion will
//     report success);
//   - (nil, false) if target was deleted from the list.
func (l *List[K, V]) tryFlag(p *Proc, prev, target *Node[K, V]) (*Node[K, V], bool) {
	st := p.StatsOrNil()
	var bo casBackoff
	for {
		prevSucc := prev.loadSucc()
		if prevSucc.right == target && !prevSucc.marked && prevSucc.flagged {
			return prev, false // predecessor already flagged (line 2-3)
		}
		if prevSucc.right == target && !prevSucc.marked && !prevSucc.flagged {
			p.At(PtBeforeFlagCAS)
			ok := prev.succ.CompareAndSwap(prevSucc, target.asFlagged())
			st.IncCAS(ok)
			if ok {
				return prev, true // successful flagging (lines 5-6)
			}
			result := prev.loadSucc()
			if result.right == target && !result.marked && result.flagged {
				return prev, false // concurrent flagging won (lines 7-8)
			}
			bo.onFail(st)
		} else {
			// The paper's C&S at line 4 would have been attempted and
			// failed with this value.
			st.IncCAS(false)
			bo.onFail(st)
		}
		// Possibly a failure due to marking: traverse backlinks to the
		// first unmarked node (lines 9-10).
		for prev.marked() {
			st.IncBacklink()
			p.At(PtBacklinkStep)
			prev = prev.backlink.Load()
		}
		// Re-locate target's predecessor (lines 11-13).
		var delNode *Node[K, V]
		prev, delNode = l.searchFrom(p, target.key, prev, true)
		if delNode != target {
			return nil, false // target got deleted
		}
	}
}
