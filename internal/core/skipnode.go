package core

import (
	"sync/atomic"
)

// slSucc is the composite successor field of a skip-list node, analogous to
// succ for the plain list: (right, mark, flag) swapped atomically as an
// immutable record. Like the list's records, they are interned per node
// (see SLNode.refs), so C&S sites never allocate.
type slSucc[K comparable, V any] struct {
	right   *SLNode[K, V]
	marked  bool
	flagged bool
}

// SLNode is one node of the lock-free skip list. Following the paper's
// Figure 6, every key is represented by a tower of nodes; the bottom node
// of a tower is its root and carries the element. Nodes on the same level
// form an instance of the paper's lock-free linked list.
//
// down and towerRoot are fixed at creation. up pointers exist only inside
// the head and tail towers (the top node's up points to itself).
type SLNode[K comparable, V any] struct {
	key  K
	val  V // meaningful only on root nodes
	kind nodeKind

	// level is 1 for root nodes, counting upward. Recorded for structure
	// validation and statistics; the algorithms themselves never read it.
	level int

	succ     atomic.Pointer[slSucc[K, V]]
	backlink atomic.Pointer[SLNode[K, V]]

	down      *SLNode[K, V] // node one level below, nil on roots
	towerRoot *SLNode[K, V] // root of this node's tower (self on roots)
	up        *SLNode[K, V] // head/tail towers only

	// Recycling state (recycle.go), meaningful only when the owning skip
	// list recycles nodes. towerLive — used on roots — counts the tower's
	// not-yet-unlinked nodes (1 for the root plus 1 per upper node,
	// acquired before each upper node is created); the tower retires as
	// one batch when it reaches zero, because down/towerRoot edges point
	// at earlier-unlinked nodes (the sweep unlinks the root first).
	// reLink is the intrusive chain of unlinked upper nodes: the head
	// hangs off the root, each interior's reLink is its chain successor.
	towerLive atomic.Int32
	reLink    atomic.Pointer[SLNode[K, V]]

	// refs holds the node's interned successor records (clean, flagged,
	// marked - the only records whose right pointer is this node), written
	// once by intern before publication; see Node.refs in node.go.
	refs [numRefs]slSucc[K, V]
}

// intern builds the node's interned successor records. It must run exactly
// once, after allocation and before the node is published.
func (n *SLNode[K, V]) intern() {
	n.refs[refClean] = slSucc[K, V]{right: n}
	n.refs[refFlagged] = slSucc[K, V]{right: n, flagged: true}
	n.refs[refMarked] = slSucc[K, V]{right: n, marked: true}
}

// asClean returns the interned record (n, unmarked, unflagged).
func (n *SLNode[K, V]) asClean() *slSucc[K, V] { return &n.refs[refClean] }

// asFlagged returns the interned record (n, unmarked, flagged).
func (n *SLNode[K, V]) asFlagged() *slSucc[K, V] { return &n.refs[refFlagged] }

// asMarked returns the interned record (n, marked, unflagged).
func (n *SLNode[K, V]) asMarked() *slSucc[K, V] { return &n.refs[refMarked] }

// Key returns the node's key.
func (n *SLNode[K, V]) Key() K { return n.key }

// Value returns the element stored in the node's tower root.
func (n *SLNode[K, V]) Value() V { return n.towerRoot.val }

// Level returns the node's level (1 = root level).
func (n *SLNode[K, V]) Level() int { return n.level }

// TowerRoot returns the root node of this node's tower.
func (n *SLNode[K, V]) TowerRoot() *SLNode[K, V] { return n.towerRoot }

func (n *SLNode[K, V]) loadSucc() *slSucc[K, V] { return n.succ.Load() }

func (n *SLNode[K, V]) marked() bool {
	s := n.succ.Load()
	return s != nil && s.marked
}

func (n *SLNode[K, V]) right() *SLNode[K, V] { return n.succ.Load().right }

// isRoot reports whether n is the root node of its tower.
func (n *SLNode[K, V]) isRoot() bool { return n.towerRoot == n }

// superfluous reports whether n belongs to a tower whose root has been
// marked (Section 4): such nodes are removed by searches that encounter
// them.
func (n *SLNode[K, V]) superfluous() bool {
	return n.kind == kindInterior && n.towerRoot.marked()
}

// Key comparisons treating sentinels as -inf/+inf live on the SkipList
// (it owns the compare function); see SkipList.cmpNode and SkipList.nodeLeq.
