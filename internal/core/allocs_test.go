package core

import (
	"testing"

	"repro/internal/instrument"
)

// These tests pin the zero-allocation contract of the interned-record hot
// path: steady-state Get and Delete perform no heap allocations at all,
// and Insert allocates exactly its node - once - no matter how many C&S
// retries contention forces. They are the regression guard for the
// interning of successor records (node.go / skipnode.go): reintroducing a
// per-CAS record allocation fails them immediately.

// zeroRng makes every skip-list tower height 1 (the first coin flip is
// "tails"), so skip-list alloc counts are deterministic.
func zeroRng() uint64 { return 0 }

func TestAllocsListGet(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 128; k++ {
		l.Insert(nil, k, k)
	}
	k := 0
	allocs := testing.AllocsPerRun(500, func() {
		l.Search(nil, k%128)
		l.Get(nil, (k+64)%128)
		k++
	})
	if allocs != 0 {
		t.Fatalf("Get/Search allocate %v objects per op, want 0", allocs)
	}
}

func TestAllocsListDelete(t *testing.T) {
	l := NewList[int, int]()
	const runs = 400
	for k := 0; k < runs+2; k++ {
		l.Insert(nil, k, k)
	}
	k := 0
	allocs := testing.AllocsPerRun(runs, func() {
		if _, ok := l.Delete(nil, k); !ok {
			t.Fatalf("delete of present key %d failed", k)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("Delete allocates %v objects per op, want 0", allocs)
	}
	// Deleting an absent key (pure search) must also be allocation-free.
	if allocs := testing.AllocsPerRun(200, func() { l.Delete(nil, -1) }); allocs != 0 {
		t.Fatalf("Delete(miss) allocates %v objects per op, want 0", allocs)
	}
}

func TestAllocsListInsert(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 64; k++ {
		l.Insert(nil, k, k)
	}
	// A duplicate insert returns before allocating the node.
	if allocs := testing.AllocsPerRun(200, func() { l.Insert(nil, 17, 17) }); allocs != 0 {
		t.Fatalf("Insert(duplicate) allocates %v objects per op, want 0", allocs)
	}
	// An insert/delete pair allocates exactly the node: the interned
	// records ride inside it, and the deletion's three C&S install
	// interned records only.
	if allocs := testing.AllocsPerRun(200, func() {
		l.Insert(nil, 1000, 1000)
		l.Delete(nil, 1000)
	}); allocs != 1 {
		t.Fatalf("Insert+Delete pair allocates %v objects, want exactly 1 (the node)", allocs)
	}
}

// TestAllocsListInsertRetry forces the insertion C&S to fail once per
// operation - a hook deletes the insert's successor between the search and
// the C&S - and asserts the retry loop allocates nothing beyond the single
// node. Before interning, every failed attempt cost two fresh records
// (newNode.succ plus the C&S argument).
func TestAllocsListInsertRetry(t *testing.T) {
	l := NewList[int, int]()
	const runs = 200
	for k := 0; k <= 2*(runs+2); k += 2 {
		l.Insert(nil, k, k)
	}
	i := 0
	fired := false
	p := &Proc{Hooks: instrument.HookFunc(func(pt Point, pid int) {
		if pt == PtBeforeInsertCAS && !fired {
			fired = true
			// Delete the successor the pending C&S expects: its
			// predecessor's record changes and the C&S must retry.
			if _, ok := l.Delete(nil, 2*i+2); !ok {
				t.Errorf("hook delete of key %d failed", 2*i+2)
			}
		}
	})}
	retried := &OpStats{}
	p.Stats = retried
	allocs := testing.AllocsPerRun(runs, func() {
		fired = false
		if _, ok := l.Insert(p, 2*i+1, 0); !ok {
			t.Fatalf("insert of fresh key %d failed", 2*i+1)
		}
		i++
	})
	if allocs != 1 {
		t.Fatalf("contended Insert allocates %v objects per op, want exactly 1 (the node)", allocs)
	}
	if retried.CASAttempts <= retried.CASSuccesses {
		t.Fatalf("schedule did not force failed C&S attempts: %+v", retried)
	}
}

func TestAllocsSkipListGet(t *testing.T) {
	l := NewSkipList[int, int]()
	for k := 0; k < 128; k++ {
		l.Insert(nil, k, k)
	}
	k := 0
	allocs := testing.AllocsPerRun(500, func() {
		l.Search(nil, k%128)
		l.Get(nil, (k+64)%128)
		k++
	})
	if allocs != 0 {
		t.Fatalf("skip-list Get/Search allocate %v objects per op, want 0", allocs)
	}
}

func TestAllocsSkipListDelete(t *testing.T) {
	l := NewSkipList[int, int]()
	const runs = 400
	for k := 0; k < runs+2; k++ {
		l.Insert(nil, k, k)
	}
	k := 0
	allocs := testing.AllocsPerRun(runs, func() {
		if _, ok := l.Delete(nil, k); !ok {
			t.Fatalf("delete of present key %d failed", k)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("skip-list Delete allocates %v objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { l.Delete(nil, -1) }); allocs != 0 {
		t.Fatalf("skip-list Delete(miss) allocates %v objects per op, want 0", allocs)
	}
}

func TestAllocsSkipListInsert(t *testing.T) {
	// Fixed height-1 towers make the alloc count deterministic: one root
	// node per successful insert.
	l := NewSkipList[int, int](WithRandomSource(zeroRng))
	for k := 0; k < 64; k++ {
		l.Insert(nil, k, k)
	}
	if allocs := testing.AllocsPerRun(200, func() { l.Insert(nil, 17, 17) }); allocs != 0 {
		t.Fatalf("skip-list Insert(duplicate) allocates %v objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		l.Insert(nil, 1000, 1000)
		l.Delete(nil, 1000)
	}); allocs != 1 {
		t.Fatalf("skip-list Insert+Delete pair allocates %v objects, want exactly 1 (the root node)", allocs)
	}
}

// TestAllocsSkipListInsertRetry is the skip-list twin of
// TestAllocsListInsertRetry: a forced level-1 C&S failure per insert must
// not allocate beyond the root node.
func TestAllocsSkipListInsertRetry(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(zeroRng))
	const runs = 200
	for k := 0; k <= 2*(runs+2); k += 2 {
		l.Insert(nil, k, k)
	}
	i := 0
	fired := false
	retried := &OpStats{}
	p := &Proc{Stats: retried, Hooks: instrument.HookFunc(func(pt Point, pid int) {
		if pt == PtBeforeInsertCAS && !fired {
			fired = true
			if _, ok := l.Delete(nil, 2*i+2); !ok {
				t.Errorf("hook delete of key %d failed", 2*i+2)
			}
		}
	})}
	allocs := testing.AllocsPerRun(runs, func() {
		fired = false
		if _, ok := l.Insert(p, 2*i+1, 0); !ok {
			t.Fatalf("insert of fresh key %d failed", 2*i+1)
		}
		i++
	})
	if allocs != 1 {
		t.Fatalf("contended skip-list Insert allocates %v objects per op, want exactly 1 (the root node)", allocs)
	}
	if retried.CASAttempts <= retried.CASSuccesses {
		t.Fatalf("schedule did not force failed C&S attempts: %+v", retried)
	}
}

// BenchmarkAllocs* report allocs/op for the benchstat gate
// (scripts/benchdiff.sh) alongside the AllocsPerRun hard assertions above.

func BenchmarkAllocsListGet(b *testing.B) {
	l := NewList[int, int]()
	for k := 0; k < 1024; k++ {
		l.Insert(nil, k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Search(nil, (i*7919)%1024)
	}
}

func BenchmarkAllocsListInsertDelete(b *testing.B) {
	l := NewList[int, int]()
	l.Insert(nil, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(nil, 1, 1)
		l.Delete(nil, 1)
	}
}

func BenchmarkAllocsSkipListGet(b *testing.B) {
	l := NewSkipList[int, int]()
	for k := 0; k < 1024; k++ {
		l.Insert(nil, k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Search(nil, (i*7919)%1024)
	}
}

func BenchmarkAllocsSkipListInsertDelete(b *testing.B) {
	l := NewSkipList[int, int]()
	l.Insert(nil, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(nil, 1, 1)
		l.Delete(nil, 1)
	}
}

// The finger and batch paths inherit the zero-allocation contract: Get
// and Delete through a finger allocate nothing, batch Get/Delete allocate
// nothing, and a batch insert allocates exactly its nodes - the threading
// finger lives on the caller's stack.

func TestAllocsListFinger(t *testing.T) {
	l := NewList[int, int]()
	const runs = 400
	for k := 0; k < runs+2; k++ {
		l.Insert(nil, k, k)
	}
	f := l.NewFinger()
	k := 0
	allocs := testing.AllocsPerRun(runs, func() {
		l2 := k % (runs + 2)
		f.Get(nil, l2)
		f.Search(nil, (l2+1)%(runs+2))
		k++
	})
	if allocs != 0 {
		t.Fatalf("finger Get/Search allocate %v objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { f.Insert(nil, 17, 17) }); allocs != 0 {
		t.Fatalf("finger Insert(duplicate) allocates %v objects per op, want 0", allocs)
	}
	k = 0
	allocs = testing.AllocsPerRun(runs, func() {
		if _, ok := f.Delete(nil, k); !ok {
			t.Fatalf("finger delete of present key %d failed", k)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("finger Delete allocates %v objects per op, want 0", allocs)
	}
}

func TestAllocsSkipListFinger(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(zeroRng))
	const runs = 400
	for k := 0; k < runs+2; k++ {
		l.Insert(nil, k, k)
	}
	f := l.NewFinger()
	k := 0
	allocs := testing.AllocsPerRun(runs, func() {
		f.Get(nil, k%(runs+2))
		k++
	})
	if allocs != 0 {
		t.Fatalf("skip finger Get allocates %v objects per op, want 0", allocs)
	}
	k = 0
	allocs = testing.AllocsPerRun(runs, func() {
		if _, ok := f.Delete(nil, k); !ok {
			t.Fatalf("skip finger delete of present key %d failed", k)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("skip finger Delete allocates %v objects per op, want 0", allocs)
	}
}

func TestAllocsListBatch(t *testing.T) {
	l := NewList[int, int]()
	for k := 0; k < 256; k++ {
		l.Insert(nil, k, k)
	}
	keys := make([]int, 16)
	vals := make([]int, 16)
	found := make([]bool, 16)
	allocs := testing.AllocsPerRun(300, func() {
		for i := range keys {
			keys[i] = (i * 37) % 256
		}
		l.GetBatch(nil, keys, vals, found)
	})
	if allocs != 0 {
		t.Fatalf("GetBatch allocates %v objects per batch, want 0", allocs)
	}
	// Insert+Delete of B fresh keys allocates exactly B nodes: the
	// sorting, the finger, and the result bookkeeping add nothing.
	items := make([]KV[int, int], 16)
	allocs = testing.AllocsPerRun(300, func() {
		for i := range items {
			items[i] = KV[int, int]{Key: 1000 + i, Value: i}
			keys[i] = 1000 + i
		}
		if n := l.InsertBatch(nil, items, nil); n != len(items) {
			t.Fatalf("InsertBatch = %d, want %d", n, len(items))
		}
		if n := l.DeleteBatch(nil, keys, nil); n != len(keys) {
			t.Fatalf("DeleteBatch = %d, want %d", n, len(keys))
		}
	})
	if allocs != float64(len(items)) {
		t.Fatalf("InsertBatch+DeleteBatch allocate %v objects per batch, want exactly %d (the nodes)",
			allocs, len(items))
	}
}

func TestAllocsSkipListBatch(t *testing.T) {
	l := NewSkipList[int, int](WithRandomSource(zeroRng))
	for k := 0; k < 256; k++ {
		l.Insert(nil, k, k)
	}
	keys := make([]int, 16)
	allocs := testing.AllocsPerRun(300, func() {
		for i := range keys {
			keys[i] = (i * 37) % 256
		}
		l.GetBatch(nil, keys, nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("skip-list GetBatch allocates %v objects per batch, want 0", allocs)
	}
	items := make([]KV[int, int], 16)
	allocs = testing.AllocsPerRun(300, func() {
		for i := range items {
			items[i] = KV[int, int]{Key: 1000 + i, Value: i}
			keys[i] = 1000 + i
		}
		if n := l.InsertBatch(nil, items, nil); n != len(items) {
			t.Fatalf("InsertBatch = %d, want %d", n, len(items))
		}
		if n := l.DeleteBatch(nil, keys, nil); n != len(keys) {
			t.Fatalf("DeleteBatch = %d, want %d", n, len(keys))
		}
	})
	if allocs != float64(len(items)) {
		t.Fatalf("skip-list InsertBatch+DeleteBatch allocate %v objects per batch, want exactly %d",
			allocs, len(items))
	}
}

func BenchmarkAllocsListFingerGet(b *testing.B) {
	l := NewList[int, int]()
	for k := 0; k < 1024; k++ {
		l.Insert(nil, k, k)
	}
	f := l.NewFinger()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Get(nil, i%1024)
	}
}

func BenchmarkAllocsSkipListFingerGet(b *testing.B) {
	l := NewSkipList[int, int]()
	for k := 0; k < 1024; k++ {
		l.Insert(nil, k, k)
	}
	f := l.NewFinger()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Get(nil, i%1024)
	}
}

func BenchmarkAllocsSkipListBatchGet(b *testing.B) {
	l := NewSkipList[int, int]()
	for k := 0; k < 1024; k++ {
		l.Insert(nil, k, k)
	}
	keys := make([]int, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = (i + j) % 1024
		}
		l.GetBatch(nil, keys, nil, nil)
	}
}
