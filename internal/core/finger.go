package core

import (
	"repro/internal/ebr"
	"repro/internal/telemetry"
)

// This file implements search fingers: cursor handles that remember where
// the previous operation ended and start the next search there instead of
// at the head (list) or the top of the head tower (skip list).
//
// The mechanism is exactly the paper's: SEARCHFROM (Figure 3) is proved
// correct from ANY start node that orders <= k (strictly < k for the
// "k - epsilon" searches) and that was in the list at some point - the
// insert retry loop (Insert line 19) and TryFlag's recovery already invoke
// it from interior nodes. A finger merely persists such a node across
// operations. Validity under concurrent deletion comes for free from
// backlink recovery:
//
//	Finger invariant: a finger holds a node that was in its list at the
//	moment it was recorded. If that node has since been marked, its
//	backlink chain leads left to a node that was in the list no earlier
//	than the finger node's deletion; walking it (never restarting from
//	head) re-establishes a valid start node, because marked nodes'
//	successor fields are frozen and backlinks always point to a
//	(one-time) predecessor. The only case that forces a head/top restart
//	is a key ordering below the recovered finger position - a fallback
//	of convenience, not of correctness.
//
// internal/adversary/finger_test.go pins the invariant with schedules that
// fully delete (flag -> mark -> physical) the finger's node between
// operations; DESIGN.md maps the amortized O(n + k*d + c) batch bound to
// the paper's O(n(S) + c(S)) analysis.

// Finger is a cursor over a List. It is owned by a single goroutine (one
// finger per goroutine, like a Proc); the list itself remains safe for any
// number of concurrent fingers and plain operations. The zero value is
// unusable; obtain one from List.NewFinger, or embed one per worker.
//
// Operations through a finger cost one short hop sequence when keys
// arrive in nearly ascending order (the clustered/batched regime) and
// degrade gracefully to a full from-head search otherwise. A finger keeps
// its remembered node - and, transitively, that node's frozen successors -
// reachable for the garbage collector, so park long-lived idle fingers
// with Reset.
type Finger[K comparable, V any] struct {
	l    *List[K, V]
	prev *Node[K, V]
	// pin keeps the remembered node's memory out of the recycler between
	// operations (a per-op pin would leave a gap in which prev could be
	// recycled and re-keyed mid-read). Acquired lazily on the first
	// operation, released by Reset; nil when the list does not recycle.
	pin *ebr.Pin
}

// NewFinger returns a finger positioned at the head (the first operation
// searches from the head and remembers where it ended).
func (l *List[K, V]) NewFinger() *Finger[K, V] { return &Finger[K, V]{l: l} }

// List returns the list this finger traverses.
func (f *Finger[K, V]) List() *List[K, V] { return f.l }

// Reset forgets the remembered position: the next operation searches from
// the head, drops the finger's reference into the structure, and releases
// the finger's recycling pin — park long-lived idle fingers with Reset,
// or their pin stalls the epoch and retire lists hit their drop-to-GC cap.
func (f *Finger[K, V]) Reset() {
	f.prev = nil
	f.pin.Unpin()
	f.pin = nil
}

// ensurePin takes the finger's lifetime pin on first use. Unlike the
// per-op wrappers it never borrows the caller's Proc.Epoch pin: the
// finger outlives any single call.
func (f *Finger[K, V]) ensurePin() {
	if f.pin == nil && f.l.rec != nil {
		f.pin = f.l.rec.dom.Pin()
	}
}

// startNode resolves the finger to a valid search start for key k: the
// remembered node after backlink recovery when it still orders <= k
// (< k in strict mode), the head otherwise. Hits and misses are recorded
// in the Proc's stats under the finger_hits/finger_misses counters.
func (f *Finger[K, V]) startNode(p *Proc, k K, strict bool) *Node[K, V] {
	st := p.StatsOrNil()
	n := f.prev
	if n == nil {
		st.IncFinger(false)
		return f.l.head
	}
	// A deleted finger node walks backlinks - never restarts from head.
	for n.marked() {
		st.IncBacklink()
		p.At(PtBacklinkStep)
		n = n.backlink.Load()
	}
	if f.l.nodeLeq(n, k, strict) {
		st.IncFinger(true)
		return n
	}
	st.IncFinger(false)
	return f.l.head
}

// search looks up k from the finger; see List.search.
func (f *Finger[K, V]) search(p *Proc, k K) *Node[K, V] {
	curr, _ := f.l.searchFrom(p, k, f.startNode(p, k, false), false)
	f.prev = curr
	if f.l.cmpNode(curr, k) == 0 {
		return curr
	}
	return nil
}

// get looks up k from the finger; see List.get.
func (f *Finger[K, V]) get(p *Proc, k K) (V, bool) {
	if n := f.search(p, k); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// insert adds k from the finger; see List.insert. The finger ends on the
// node carrying k (freshly inserted or the existing duplicate).
func (f *Finger[K, V]) insert(p *Proc, k K, v V) (*Node[K, V], bool) {
	n, ok := f.l.insertFrom(p, k, v, f.startNode(p, k, false))
	f.prev = n
	return n, ok
}

// remove deletes k from the finger; see List.remove. The finger ends on
// the last observed predecessor of k, which survives the deletion.
func (f *Finger[K, V]) remove(p *Proc, k K) (*Node[K, V], bool) {
	prev, delNode := f.l.searchFrom(p, k, f.startNode(p, k, true), true)
	f.prev = prev
	if f.l.cmpNode(delNode, k) != 0 {
		return nil, false
	}
	return f.l.removeAt(p, prev, delNode)
}

// Search looks up k starting from the finger and returns its node, or nil
// if k is absent. The finger moves to where the search ended.
func (f *Finger[K, V]) Search(p *Proc, k K) *Node[K, V] {
	f.ensurePin()
	l := f.l
	if l.tel == nil {
		return f.search(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpGet)
	if !tok.Sampled() {
		n := f.search(p, k)
		l.tel.FinishOp(tok, telemetry.OpGet, nil)
		return n
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n := f.search(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpGet, p, st)
	return n
}

// Get looks up k starting from the finger.
func (f *Finger[K, V]) Get(p *Proc, k K) (V, bool) {
	f.ensurePin()
	l := f.l
	if l.tel == nil {
		return f.get(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpGet)
	if !tok.Sampled() {
		v, ok := f.get(p, k)
		l.tel.FinishOp(tok, telemetry.OpGet, nil)
		return v, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	v, ok := f.get(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpGet, p, st)
	return v, ok
}

// Insert adds k with value v starting the search from the finger. Returns
// the new node and true, or the existing node and false on a duplicate.
func (f *Finger[K, V]) Insert(p *Proc, k K, v V) (*Node[K, V], bool) {
	f.ensurePin()
	l := f.l
	if l.tel == nil {
		return f.insert(p, k, v)
	}
	tok := l.tel.StartOp(telemetry.OpInsert)
	if !tok.Sampled() {
		n, ok := f.insert(p, k, v)
		l.tel.FinishOp(tok, telemetry.OpInsert, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := f.insert(&pr, k, v)
	finishSampled(l.tel, tok, telemetry.OpInsert, p, st)
	return n, ok
}

// Delete removes k starting the search from the finger.
func (f *Finger[K, V]) Delete(p *Proc, k K) (*Node[K, V], bool) {
	f.ensurePin()
	l := f.l
	if l.tel == nil {
		return f.remove(p, k)
	}
	tok := l.tel.StartOp(telemetry.OpDelete)
	if !tok.Sampled() {
		n, ok := f.remove(p, k)
		l.tel.FinishOp(tok, telemetry.OpDelete, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := f.remove(&pr, k)
	finishSampled(l.tel, tok, telemetry.OpDelete, p, st)
	return n, ok
}

// maxFingerLevels bounds the per-level predecessor memory of a SkipFinger;
// it equals the WithMaxLevel clamp, so every configuration fits.
const maxFingerLevels = 64

// fingerProbeHops bounds the adjacency probe on the target level: if the
// key is not bracketed within this many hops of the level-v finger, the
// search falls back to descending from the finger's top level (and from
// there, possibly, to the head tower). Small enough that a probe that
// fails costs a constant, large enough to cover a clustered batch's
// typical inter-key gap.
const fingerProbeHops = 8

// SkipFinger is a cursor over a SkipList: it remembers the predecessor
// tower of the last search (one node per level) and starts the next
// search there when the key is >= the finger position, descending from
// the head tower otherwise. Owned by a single goroutine, like Finger.
// The zero value is unusable; obtain one from SkipList.NewFinger.
type SkipFinger[K comparable, V any] struct {
	l *SkipList[K, V]
	// top is the highest level with a recorded predecessor; 0 when cold.
	top int
	// prevs[i] is the predecessor this finger last observed on level i+1.
	// Only levels 1..top are meaningful.
	prevs [maxFingerLevels]*SLNode[K, V]
	// pin keeps the remembered towers out of the recycler between
	// operations; see Finger.pin.
	pin *ebr.Pin
}

// NewFinger returns a finger positioned at the head tower.
func (l *SkipList[K, V]) NewFinger() *SkipFinger[K, V] {
	return &SkipFinger[K, V]{l: l}
}

// SkipList returns the skip list this finger traverses.
func (f *SkipFinger[K, V]) SkipList() *SkipList[K, V] { return f.l }

// Reset forgets the remembered position, drops the finger's references
// into the structure, and releases the finger's recycling pin (see
// Finger.Reset).
func (f *SkipFinger[K, V]) Reset() {
	f.top = 0
	clear(f.prevs[:])
	f.pin.Unpin()
	f.pin = nil
}

// ensurePin takes the finger's lifetime pin on first use; see
// Finger.ensurePin.
func (f *SkipFinger[K, V]) ensurePin() {
	if f.pin == nil && f.l.rec != nil {
		f.pin = f.l.rec.dom.Pin()
	}
}

// recover walks n's backlinks (within one level) to the first unmarked
// node - the finger invariant's validation step.
func (f *SkipFinger[K, V]) recover(p *Proc, n *SLNode[K, V]) *SLNode[K, V] {
	st := p.StatsOrNil()
	for n.marked() {
		st.IncBacklink()
		p.At(PtBacklinkStep)
		n = n.backlink.Load()
	}
	return n
}

// start resolves the finger to a search start for key k on level v. It
// tries, in order:
//
//  1. the level-v finger itself, when the key is bracketed within a
//     constant probe of it - the O(d) hop path for clustered keys;
//  2. the finger's top-level predecessor, descending from there -
//     bounded by a full search but localized near the finger;
//  3. the head tower (findStart) - the plain from-top search.
//
// Cases 1-2 are finger hits, case 3 a miss.
func (f *SkipFinger[K, V]) start(p *Proc, k K, v int, strict bool) (*SLNode[K, V], int) {
	st := p.StatsOrNil()
	l := f.l
	// Above level 1 the start must order strictly below k even in a
	// non-strict search: approaching k's own tower from a true predecessor
	// lets searchRight examine the tower's node - and, when the tower is
	// dead (superfluous), complete its three-step deletion. Starting on
	// the node itself would skip that duty, stranding the tower after a
	// finger Delete's sweep and livelocking an Insert retrying against it.
	// On level 1 a dead node is marked, not superfluous, so recover()
	// already rules it out and an exact-key start is safe. The probe
	// advances strictly below k at every level for the same reason,
	// leaving the final approach to searchRight.
	candStrict := strict || v > 1
	if f.top >= v && f.prevs[v-1] != nil {
		n := f.recover(p, f.prevs[v-1])
		if l.nodeLeq(n, k, candStrict) {
			for hops := 0; hops < fingerProbeHops; hops++ {
				next := n.right()
				st.IncNext()
				if !l.nodeLeq(next, k, true) {
					st.IncFinger(true)
					return n, v // bracketed: the search ends in O(1)
				}
				n = next
				st.IncCurr()
			}
		}
	}
	if f.top > v {
		n := f.recover(p, f.prevs[f.top-1])
		if l.nodeLeq(n, k, candStrict) {
			st.IncFinger(true)
			return n, f.top
		}
	}
	st.IncFinger(false)
	curr, lv := l.findStart(v)
	f.top = lv
	return curr, lv
}

// sweep implements slSearcher's post-deletion cleanup. Unlike the probe
// path, it must cover every nonempty level down to 2 - the deleted tower
// can be taller than anything this finger has seen - so it descends from
// the top of the structure like the plain sweep, but on each level jumps
// to the finger's recorded predecessor when that is still a strict
// predecessor of k: for clustered deletes each level's walk is then a
// short hop instead of a scan from the head.
func (f *SkipFinger[K, V]) sweep(p *Proc, k K) {
	l := f.l
	curr, lv := l.findStart(2)
	if lv > f.top {
		f.top = lv
	}
	for ; lv >= 2; lv-- {
		if c := f.prevs[lv-1]; c != nil {
			c = f.recover(p, c)
			if l.nodeLeq(c, k, true) {
				curr = c
			}
		}
		curr, _ = l.searchRight(p, k, curr, false)
		f.prevs[lv-1] = curr
		curr = curr.down
	}
}

// searchToLevel implements slSearcher: the finger-accelerated counterpart
// of SkipList.searchToLevel. Every level it traverses refreshes the
// corresponding finger predecessor.
func (f *SkipFinger[K, V]) searchToLevel(p *Proc, k K, v int, strict bool) (*SLNode[K, V], *SLNode[K, V]) {
	curr, lv := f.start(p, k, v, strict)
	for lv > v {
		curr, _ = f.l.searchRight(p, k, curr, strict)
		f.prevs[lv-1] = curr
		curr = curr.down
		lv--
	}
	curr, next := f.l.searchRight(p, k, curr, strict)
	f.prevs[v-1] = curr
	return curr, next
}

// Search looks up k starting from the finger and returns its root node,
// or nil if k is absent.
func (f *SkipFinger[K, V]) Search(p *Proc, k K) *SLNode[K, V] {
	f.ensurePin()
	l := f.l
	if l.tel == nil {
		return l.searchVia(p, f, k)
	}
	tok := l.tel.StartOp(telemetry.OpGet)
	if !tok.Sampled() {
		n := l.searchVia(p, f, k)
		l.tel.FinishOp(tok, telemetry.OpGet, nil)
		return n
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n := l.searchVia(&pr, f, k)
	finishSampled(l.tel, tok, telemetry.OpGet, p, st)
	return n
}

// Get looks up k starting from the finger.
func (f *SkipFinger[K, V]) Get(p *Proc, k K) (V, bool) {
	if n := f.Search(p, k); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Insert adds k with value v starting every level search from the finger.
func (f *SkipFinger[K, V]) Insert(p *Proc, k K, v V) (*SLNode[K, V], bool) {
	f.ensurePin()
	l := f.l
	if l.tel == nil {
		return l.insertVia(p, f, k, v)
	}
	tok := l.tel.StartOp(telemetry.OpInsert)
	if !tok.Sampled() {
		n, ok := l.insertVia(p, f, k, v)
		l.tel.FinishOp(tok, telemetry.OpInsert, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := l.insertVia(&pr, f, k, v)
	finishSampled(l.tel, tok, telemetry.OpInsert, p, st)
	return n, ok
}

// Delete removes k starting every level search from the finger.
func (f *SkipFinger[K, V]) Delete(p *Proc, k K) (*SLNode[K, V], bool) {
	f.ensurePin()
	l := f.l
	if l.tel == nil {
		return l.removeVia(p, f, k)
	}
	tok := l.tel.StartOp(telemetry.OpDelete)
	if !tok.Sampled() {
		n, ok := l.removeVia(p, f, k)
		l.tel.FinishOp(tok, telemetry.OpDelete, nil)
		return n, ok
	}
	st := getScratch()
	pr := telemetryProc(p, st)
	n, ok := l.removeVia(&pr, f, k)
	finishSampled(l.tel, tok, telemetry.OpDelete, p, st)
	return n, ok
}
