package core

import (
	"fmt"
	"strings"
)

// NodeState is a diagnostic snapshot of one node's successor field, used
// by tools that visualize the deletion protocol (cmd/lflfigures) and by
// tests.
type NodeState[K comparable] struct {
	Key      K
	Sentinel string // "head", "tail", or "" for interior nodes
	Marked   bool
	Flagged  bool
	// BacklinkTo holds the backlink target's key when set on an interior
	// node whose target is interior.
	BacklinkSet bool
}

// Snapshot walks the physical chain from head to tail - including
// logically deleted nodes still linked - and reports each node's state.
// It is a diagnostic; under concurrency it reflects some interleaving.
func (l *List[K, V]) Snapshot() []NodeState[K] {
	defer l.opPin(nil).Unpin()
	var out []NodeState[K]
	for n := l.head; n != nil; n = n.right() {
		s := n.loadSucc()
		st := NodeState[K]{Key: n.key}
		switch n.kind {
		case kindHead:
			st.Sentinel = "head"
		case kindTail:
			st.Sentinel = "tail"
		}
		if s != nil {
			st.Marked = s.marked
			st.Flagged = s.flagged
		}
		st.BacklinkSet = n.backlink.Load() != nil
		out = append(out, st)
		if n.kind == kindTail {
			break
		}
	}
	return out
}

// RenderState draws a snapshot as the paper's figures do: shaded boxes
// (here "[k]*") for flagged successor fields and crossed boxes ("[k]X")
// for marked ones.
func RenderState[K comparable](states []NodeState[K]) string {
	var b strings.Builder
	for i, st := range states {
		if i > 0 {
			b.WriteString(" -> ")
		}
		label := fmt.Sprintf("%v", st.Key)
		if st.Sentinel != "" {
			label = st.Sentinel
		}
		deco := ""
		if st.Marked {
			deco = "X" // crossed: marked
		}
		if st.Flagged {
			deco = "*" // shaded: flagged
		}
		fmt.Fprintf(&b, "[%s]%s", label, deco)
		if st.BacklinkSet {
			b.WriteString("~") // backlink present
		}
	}
	return b.String()
}

// LevelSnapshot reports the physical chain of one skip-list level
// (1-based), including marked nodes, for Figure 6 style rendering.
func (l *SkipList[K, V]) LevelSnapshot(level int) []NodeState[K] {
	defer l.opPin(nil).Unpin()
	var out []NodeState[K]
	for n := l.heads[level-1]; n != nil; n = n.right() {
		s := n.loadSucc()
		st := NodeState[K]{Key: n.key}
		switch n.kind {
		case kindHead:
			st.Sentinel = "head"
		case kindTail:
			st.Sentinel = "tail"
		}
		if s != nil {
			st.Marked = s.marked
			st.Flagged = s.flagged
		}
		st.BacklinkSet = n.backlink.Load() != nil
		out = append(out, st)
		if n.kind == kindTail {
			break
		}
	}
	return out
}
