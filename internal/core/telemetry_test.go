package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestTelemetryMirrorsProcStats pins the no-divergence contract: when an
// operation runs with both an attached recorder (at sampling period 1,
// i.e. exact recording) and a caller-supplied Proc, the caller's OpStats
// and the recorder's counters see the exact same steps.
func TestTelemetryMirrorsProcStats(t *testing.T) {
	rec := telemetry.NewRecorder(1)
	rec.SetSampleEvery(1)
	l := NewList[int, int]()
	l.SetTelemetry(rec)
	if l.Telemetry() != rec {
		t.Fatal("Telemetry() accessor")
	}

	var outer OpStats
	p := &Proc{Stats: &outer}
	for k := 0; k < 50; k++ {
		l.Insert(p, k, k)
	}
	for k := 0; k < 50; k++ {
		l.Get(p, k)
	}
	for k := 0; k < 50; k++ {
		l.Delete(p, k)
	}
	s := rec.Snapshot()
	if s.Counters != outer {
		t.Fatalf("telemetry and Proc stats diverged:\n tel: %+v\nproc: %+v", s.Counters, outer)
	}
	if outer.CASAttempts == 0 || outer.CurrUpdates == 0 {
		t.Fatalf("workload recorded no steps: %+v", outer)
	}
	if got := s.TotalOps(); got != 150 {
		t.Fatalf("TotalOps = %d", got)
	}
}

// TestTelemetryCallerStatsExactUnderSampling: even at the default sampling
// period, a caller-supplied Proc's OpStats must be exact — unsampled ops
// write into it directly, sampled ones mirror the scratch back.
func TestTelemetryCallerStatsExactUnderSampling(t *testing.T) {
	run := func(attach bool) OpStats {
		rec := telemetry.NewRecorder(1) // default period: 16
		l := NewList[int, int]()
		if attach {
			l.SetTelemetry(rec)
		}
		var outer OpStats
		p := &Proc{Stats: &outer}
		for k := 0; k < 100; k++ {
			l.Insert(p, k, k)
			l.Get(p, k)
		}
		return outer
	}
	with, without := run(true), run(false)
	if with != without {
		t.Fatalf("caller stats drift under sampling:\n with: %+v\nwithout: %+v", with, without)
	}
}

// TestTelemetrySkipListHooksSurvive checks the telemetry wrapper preserves
// a caller Proc's hooks (the adversary harness must keep working when
// telemetry is on).
func TestTelemetrySkipListHooksSurvive(t *testing.T) {
	rec := telemetry.NewRecorder(1)
	sl := NewSkipList[int, int]()
	sl.SetTelemetry(rec)

	fired := 0
	p := &Proc{Hooks: HookFunc(func(pt Point, pid int) {
		if pt == PtSearchDone {
			fired++
		}
	})}
	sl.Insert(p, 1, 1)
	if fired == 0 {
		t.Fatal("hooks did not fire through the telemetry wrapper")
	}
	if rec.Snapshot().Ops[telemetry.OpInsert].Count != 1 {
		t.Fatal("telemetry missed the hooked operation")
	}
}

// TestTelemetrySkipListOps covers the skip-list wrappers end to end,
// including AscendRange stats.
func TestTelemetrySkipListOps(t *testing.T) {
	rec := telemetry.NewRecorder(2)
	rec.SetSampleEvery(1) // exact histograms for the assertions below
	sl := NewSkipList[int, int]()
	sl.SetTelemetry(rec)
	for k := 0; k < 100; k++ {
		sl.Insert(nil, k, k)
	}
	sl.Get(nil, 50)
	if sl.Search(nil, 51) == nil {
		t.Fatal("search missed")
	}
	sl.Delete(nil, 50)
	n := 0
	sl.AscendRange(nil, 10, 20, func(k, v int) bool { n++; return true })
	if n != 10 {
		t.Fatalf("AscendRange visited %d", n)
	}
	sl.Ascend(func(k, v int) bool { return true })

	s := rec.Snapshot()
	if s.Ops[telemetry.OpInsert].Count != 100 ||
		s.Ops[telemetry.OpGet].Count != 2 ||
		s.Ops[telemetry.OpDelete].Count != 1 ||
		s.Ops[telemetry.OpAscend].Count != 2 {
		t.Fatalf("op counts: %+v %+v %+v %+v", s.Ops[telemetry.OpInsert],
			s.Ops[telemetry.OpGet], s.Ops[telemetry.OpDelete], s.Ops[telemetry.OpAscend])
	}
	if s.Counters.CASAttempts < 100 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	// Uncontended run: every op retried 0 times, so all retry mass is in
	// the first bucket.
	ins := s.Ops[telemetry.OpInsert]
	if ins.Retries[0] != 100 {
		t.Fatalf("uncontended retries: %+v", ins.Retries)
	}
}

// prefilledSkip builds an n-key skip list with a fixed rng so the
// enabled/disabled benchmark pair sees identical topology.
func prefilledSkip(n int, rec *telemetry.Recorder) *SkipList[int, int] {
	r := uint64(1)
	rng := func() uint64 { r = r*6364136223846793005 + 1442695040888963407; return r }
	sl := NewSkipList[int, int](WithRandomSource(rng))
	if rec != nil {
		sl.SetTelemetry(rec)
	}
	for k := 0; k < n; k++ {
		sl.insert(nil, k, k)
	}
	return sl
}

// BenchmarkTelemetryGetOverhead is the acceptance benchmark for the
// telemetry layer: Get on a prefilled skip list with telemetry disabled
// (the default, one nil check) and enabled (pooled scratch stats, exact
// striped counter flush, sampled histograms). The enabled/disabled ns/op
// ratio is the headline overhead number; the per-op cost of telemetry is a
// small constant, so the ratio shrinks as the structure grows. See README
// "Observability".
func BenchmarkTelemetryGetOverhead(b *testing.B) {
	for _, n := range []int{1024, 65536} {
		run := func(b *testing.B, rec *telemetry.Recorder) {
			sl := prefilledSkip(n, rec)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					sl.Get(nil, k%n)
					k++
				}
			})
		}
		b.Run(fmt.Sprintf("n=%d/disabled", n), func(b *testing.B) { run(b, nil) })
		b.Run(fmt.Sprintf("n=%d/enabled", n), func(b *testing.B) { run(b, telemetry.NewRecorder(0)) })
	}
}

// BenchmarkTelemetryInsertDeleteOverhead measures the write path the same
// way: alternating insert/delete of a moving key against a 1024-key
// prefill.
func BenchmarkTelemetryInsertDeleteOverhead(b *testing.B) {
	const n = 1024
	run := func(b *testing.B, rec *telemetry.Recorder) {
		sl := prefilledSkip(n, rec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := n + i%n
			sl.Insert(nil, k, k)
			sl.Delete(nil, k)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, telemetry.NewRecorder(0)) })
}

// TestTelemetryNegativeElapsedClamped: a clock anomaly must not wrap the
// latency sum.
func TestTelemetryNegativeElapsedClamped(t *testing.T) {
	rec := telemetry.NewRecorder(1)
	rec.RecordOp(telemetry.OpGet, nil, -time.Second)
	s := rec.Snapshot()
	if s.Ops[telemetry.OpGet].LatencySumNanos != 0 {
		t.Fatalf("negative latency leaked: %d", s.Ops[telemetry.OpGet].LatencySumNanos)
	}
	if s.Ops[telemetry.OpGet].Latency[0] != 1 {
		t.Fatalf("clamped sample missing: %+v", s.Ops[telemetry.OpGet].Latency)
	}
}
