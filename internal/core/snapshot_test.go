package core

import (
	"strings"
	"testing"
)

func TestSnapshotCleanList(t *testing.T) {
	l := NewList[string, int]()
	l.Insert(nil, "A", 1)
	l.Insert(nil, "B", 2)
	states := l.Snapshot()
	if len(states) != 4 { // head, A, B, tail
		t.Fatalf("snapshot has %d entries", len(states))
	}
	if states[0].Sentinel != "head" || states[3].Sentinel != "tail" {
		t.Fatalf("sentinels misplaced: %+v", states)
	}
	for _, st := range states {
		if st.Marked || st.Flagged || st.BacklinkSet {
			t.Fatalf("clean list shows deletion state: %+v", st)
		}
	}
	out := RenderState(states)
	if out != "[head] -> [A] -> [B] -> [tail]" {
		t.Fatalf("render = %q", out)
	}
}

func TestSnapshotMidDeletion(t *testing.T) {
	l := NewList[string, int]()
	l.Insert(nil, "A", 1)
	l.Insert(nil, "B", 2)
	g := newGate(PtBeforePhysicalCAS)
	done := make(chan struct{})
	go func() {
		l.Delete(&Proc{ID: 1, Hooks: g}, "B")
		close(done)
	}()
	<-g.arrived
	out := RenderState(l.Snapshot())
	// A flagged, B marked with backlink - the Figure 2 step-2 state.
	if !strings.Contains(out, "[A]*") || !strings.Contains(out, "[B]X~") {
		t.Fatalf("mid-deletion render = %q", out)
	}
	close(g.release)
	<-done
	out = RenderState(l.Snapshot())
	if strings.Contains(out, "B") || strings.Contains(out, "*") {
		t.Fatalf("post-deletion render = %q", out)
	}
}

func TestLevelSnapshot(t *testing.T) {
	heights := []uint64{0b0, 0b1} // alternating heights 1, 2
	i := 0
	l := NewSkipList[int, int](WithRandomSource(func() uint64 {
		h := heights[i%2]
		i++
		return h
	}))
	for k := 1; k <= 4; k++ {
		l.Insert(nil, k, k)
	}
	lv1 := l.LevelSnapshot(1)
	if len(lv1) != 6 { // head, 1..4, tail
		t.Fatalf("level 1 snapshot: %d entries", len(lv1))
	}
	lv2 := l.LevelSnapshot(2)
	if len(lv2) != 4 { // head, 2, 4, tail
		t.Fatalf("level 2 snapshot: %d entries (%s)", len(lv2), RenderState(lv2))
	}
	if out := RenderState(lv2); out != "[head] -> [2] -> [4] -> [tail]" {
		t.Fatalf("level 2 render = %q", out)
	}
}
