package core

import "repro/internal/instrument"

// The instrumentation types are shared with the baseline implementations
// via internal/instrument; core re-exports them so callers of the primary
// contribution need only import this package.

type (
	// OpStats accumulates the paper's essential-step counters; see
	// instrument.OpStats.
	OpStats = instrument.OpStats
	// Proc identifies a process and carries optional instrumentation; see
	// instrument.Proc.
	Proc = instrument.Proc
	// Hooks receives control at named synchronization points; see
	// instrument.Hooks.
	Hooks = instrument.Hooks
	// HookFunc adapts a function to Hooks.
	HookFunc = instrument.HookFunc
	// Point names a synchronization point.
	Point = instrument.Point
)

// Synchronization points, re-exported from internal/instrument.
const (
	PtSearchDone         = instrument.PtSearchDone
	PtBeforeInsertCAS    = instrument.PtBeforeInsertCAS
	PtAfterInsertCASFail = instrument.PtAfterInsertCASFail
	PtBeforeFlagCAS      = instrument.PtBeforeFlagCAS
	PtBeforeMarkCAS      = instrument.PtBeforeMarkCAS
	PtBeforePhysicalCAS  = instrument.PtBeforePhysicalCAS
	PtBacklinkStep       = instrument.PtBacklinkStep
	PtHelpFlagged        = instrument.PtHelpFlagged
	PtRestart            = instrument.PtRestart
	PtAfterUnlink        = instrument.PtAfterUnlink
)
