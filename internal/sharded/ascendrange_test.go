package sharded

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestAscendDeterministicOrder pins the cross-shard iteration order in a
// quiescent state: shard concatenation must produce one globally ascending
// sequence, including keys that sit exactly on the splitters.
func TestAscendDeterministicOrder(t *testing.T) {
	m := New[int, int](quarters())
	// Insert in deliberately shuffled order, covering each shard's ends.
	keys := []int{
		1023, 0, 256, 255, 512, 511, 768, 767, // boundaries of every shard
		100, 900, 300, 600, 50, 700, 400, 200,
	}
	for _, k := range keys {
		m.Insert(nil, k, k*3)
	}
	var got []int
	m.Ascend(func(k, v int) bool {
		if v != k*3 {
			t.Errorf("Ascend reported key %d with value %d, want %d", k, v, k*3)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Ascend reported %d keys, want %d: %v", len(got), len(keys), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Ascend not globally ascending across shards: %v", got)
		}
	}
	// Early stop must not spill into later shards.
	var seen []int
	m.Ascend(func(k, v int) bool {
		seen = append(seen, k)
		return k < 300 // stop inside shard 1
	})
	if last := seen[len(seen)-1]; last < 300 || last >= 512 {
		t.Fatalf("early stop ended at key %d, want the first key >= 300 (shard 1)", last)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("stopped Ascend not ascending: %v", seen)
		}
	}
}

// TestAscendRangeAcrossShards pins the range scan over every boundary
// shape: inside one shard, straddling one splitter, straddling all of
// them, and degenerate/empty ranges.
func TestAscendRangeAcrossShards(t *testing.T) {
	m := New[int, int](quarters())
	for k := 0; k < 1024; k += 2 { // even keys only
		m.Insert(nil, k, k)
	}
	collect := func(from, to int) []int {
		var got []int
		m.AscendRange(nil, from, to, func(k, v int) bool {
			got = append(got, k)
			return true
		})
		return got
	}
	check := func(from, to int, got []int) {
		t.Helper()
		want := 0
		for k := from; k < to; k++ {
			if k >= 0 && k < 1024 && k%2 == 0 {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("AscendRange(%d,%d) reported %d keys, want %d: %v", from, to, len(got), want, got)
		}
		for i, k := range got {
			if k < from || k >= to {
				t.Fatalf("AscendRange(%d,%d) reported out-of-range key %d", from, to, k)
			}
			if i > 0 && got[i-1] >= k {
				t.Fatalf("AscendRange(%d,%d) not ascending: %v", from, to, got)
			}
		}
	}
	check(10, 30, collect(10, 30))       // inside shard 0
	check(250, 270, collect(250, 270))   // straddles splitter 256
	check(500, 780, collect(500, 780))   // straddles splitters 512 and 768
	check(0, 1024, collect(0, 1024))     // everything
	check(-50, 2000, collect(-50, 2000)) // beyond both ends
	check(255, 257, collect(255, 257))   // the splitter key and its neighbors
	if got := collect(256, 256); got != nil {
		t.Fatalf("empty range reported %v", got)
	}
	if got := collect(300, 200); got != nil {
		t.Fatalf("inverted range reported %v", got)
	}
	// Early stop inside the middle of a multi-shard scan.
	var seen []int
	m.AscendRange(nil, 200, 900, func(k, v int) bool {
		seen = append(seen, k)
		return len(seen) < 10
	})
	if len(seen) != 10 {
		t.Fatalf("stopped scan reported %d keys, want 10", len(seen))
	}
}

// TestAscendRangeConcurrentSharded mirrors the core skip list's
// TestAscendRangeConcurrent across shard boundaries: churners hammer keys
// around and on the splitters while scanners walk a range spanning all
// four shards, checking the weak-consistency contract — in-range, strictly
// ascending, no duplicates, stable keys always present with their original
// values.
func TestAscendRangeConcurrentSharded(t *testing.T) {
	const (
		span = 1024
		from = 130 // shard 0, churnable (not a multiple of 4)
		to   = 899 // shard 3, churnable
	)
	m := New[int, int](quarters())
	// Keys k%4 == 0 are stable: inserted once, never touched again. The
	// splitters 256/512/768 are multiples of 4, so every shard-boundary
	// key is stable and MUST be seen by every scan; the churn hits the
	// keys on either side of each boundary.
	for k := 0; k < span; k += 4 {
		m.Insert(nil, k, k*3)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for w := 0; w < 3; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 3))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var k int
				if rng.IntN(4) == 0 {
					// Bias a quarter of the churn onto the splitters'
					// immediate neighbors, the cross-shard handoff points.
					s := quarters()[rng.IntN(3)]
					k = s + 1 - 2*rng.IntN(2) // s-1 or s+1
				} else {
					k = rng.IntN(span)
					if k%4 == 0 {
						k++ // never touch the stable keys
					}
				}
				if rng.IntN(2) == 0 {
					m.Insert(nil, k, k*3)
				} else {
					m.Delete(nil, k)
				}
			}
		}(w)
	}

	var scans sync.WaitGroup
	for w := 0; w < 2; w++ {
		scans.Add(1)
		go func() {
			defer scans.Done()
			for r := 0; r < 150; r++ {
				last := from - 1
				seen := 0
				m.AscendRange(nil, from, to, func(k, v int) bool {
					if k < from || k >= to {
						t.Errorf("scan reported key %d outside [%d, %d)", k, from, to)
					}
					if k <= last {
						t.Errorf("scan reported key %d after %d: not strictly ascending", k, last)
					}
					if v != k*3 {
						t.Errorf("scan reported key %d with value %d, want %d", k, v, k*3)
					}
					for s := stableAfter(last); s < k; s += 4 {
						t.Errorf("scan skipped stable key %d (between %d and %d)", s, last, k)
					}
					last = k
					seen++
					return true
				})
				for s := stableAfter(last); s < to; s += 4 {
					t.Errorf("scan skipped stable key %d at the tail of the range", s)
				}
				if seen < (to-from)/4 {
					t.Errorf("scan saw %d keys, fewer than the %d stable ones", seen, (to-from)/4)
				}
			}
		}()
	}
	scans.Wait()
	close(stop)
	churn.Wait()
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// stableAfter returns the smallest stable key (multiple of 4) strictly
// greater than k.
func stableAfter(k int) int {
	return (k/4)*4 + 4
}
