// Package sharded implements a range-partitioned ordered map over S
// independent lock-free skip lists (internal/core). A fixed, sorted set of
// S-1 splitter keys — chosen at construction, never rebalanced — carves
// the key space into S contiguous ranges; shard i owns the keys k with
// splitters[i-1] <= k < splitters[i] (the first and last ranges are
// open-ended). Every operation routes by binary search over the splitters.
//
// The point of the partition is the paper's amortized bound O(n(S) + c(S)):
// on one structure, every operation pays the full key count n(S) at its
// level, and point contention c(S) concentrates on the hot towers near the
// head. With the key space split S ways, an operation on shard i pays only
// n_i(S) — the keys that share its range — and conflicts only with the
// contention c_i(S) aimed at the same range; under a key distribution the
// splitters match, both shrink by ~S (DESIGN.md Section 9 derives this).
//
// The map preserves the per-operation semantics of the single skip list:
// each point operation is linearizable (it runs, unchanged, on one core
// skip list), batches are per-element linearizable but not atomic, and
// ordered iteration is weakly consistent. Because the partition is by
// range, cross-shard iteration is a concatenation of per-shard iterations
// in shard order — no merging is needed.
//
// Batch operations sort once at the map level, partition the sorted run
// into per-shard sub-runs with one binary search per splitter, and execute
// each sub-run through the owning shard's pooled search finger. When
// fan-out is enabled (SetParallel; default on multi-P runtimes) and the
// caller attached no Proc, sub-runs of one batch execute concurrently on
// separate goroutines — they touch disjoint structures, so they cannot
// contend. With a Proc attached the sub-runs always run sequentially: a
// Proc (its stats, its hooks) is single-goroutine state, and adversary
// schedules rely on the deterministic order.
package sharded

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// Map is a range-sharded ordered dictionary over S core skip lists.
// Construct with New or NewFunc. All methods are safe for concurrent use;
// every shard is lock-free, and the map layer adds no locks (the batch
// fan-out's WaitGroup only joins the map's own helper goroutines).
type Map[K comparable, V any] struct {
	compare   func(K, K) int
	splitters []K // len = Shards()-1, strictly increasing
	shards    []*core.SkipList[K, V]

	// parallel enables the batch fan-out for Proc-less batches. Written
	// by SetParallel before the map is shared; read unsynchronized.
	parallel bool

	// tel, when non-nil, receives the map-level shard_ops routing counts;
	// the shards flush their own per-operation metrics into the same
	// recorder. Set before the map is shared.
	tel *telemetry.Recorder

	// cutsPool recycles the sub-run boundary buffers ([]int of length
	// Shards()+1) so sequential batches allocate nothing.
	cutsPool sync.Pool
}

// New returns a map over a naturally ordered key type, partitioned by the
// given splitters. len(splitters)+1 — the shard count — must be a power of
// two, and the splitters must be strictly increasing; New panics otherwise
// (both are construction-time programming errors, not runtime conditions).
// An empty splitter set yields a single-shard map, which behaves exactly
// like one core skip list plus the routing counters.
//
// The core options apply to every shard (e.g. core.WithMaxLevel; shallower
// shards need less height: each holds ~1/S of the keys).
func New[K cmp.Ordered, V any](splitters []K, opts ...core.SkipListOption) *Map[K, V] {
	return NewFunc[K, V](cmp.Compare[K], splitters, opts...)
}

// NewFunc is New over an explicit comparison function, which must define a
// strict total order consistent with ==.
func NewFunc[K comparable, V any](compare func(K, K) int, splitters []K, opts ...core.SkipListOption) *Map[K, V] {
	s := len(splitters) + 1
	if s&(s-1) != 0 {
		panic(fmt.Sprintf("sharded: %d splitters give %d shards, want a power of two", len(splitters), s))
	}
	for i := 1; i < len(splitters); i++ {
		if compare(splitters[i-1], splitters[i]) >= 0 {
			panic(fmt.Sprintf("sharded: splitters not strictly increasing at index %d", i))
		}
	}
	m := &Map[K, V]{
		compare:   compare,
		splitters: slices.Clone(splitters),
		shards:    make([]*core.SkipList[K, V], s),
		parallel:  runtime.GOMAXPROCS(0) > 1,
	}
	for i := range m.shards {
		m.shards[i] = core.NewSkipListFunc[K, V](compare, opts...)
	}
	m.cutsPool.New = func() any {
		c := make([]int, s+1)
		return &c
	}
	return m
}

// Shards returns the shard count S.
func (m *Map[K, V]) Shards() int { return len(m.shards) }

// Shard returns the i-th underlying skip list (0-based, shard order ==
// key order). Exposed for validators and statistics; mutating through it
// bypasses the map's routing counters but is otherwise safe — the shard
// accepts any key, though keys outside its range break ordered iteration.
func (m *Map[K, V]) Shard(i int) *core.SkipList[K, V] { return m.shards[i] }

// Splitters returns a copy of the splitter set.
func (m *Map[K, V]) Splitters() []K { return slices.Clone(m.splitters) }

// SetParallel enables (true) or disables (false) the batch fan-out for
// batches without a Proc. The default is on iff GOMAXPROCS > 1 at
// construction — on a single P the goroutine handoff only adds latency.
// Call before the map is shared.
func (m *Map[K, V]) SetParallel(on bool) { m.parallel = on }

// Parallel reports whether the batch fan-out is enabled.
func (m *Map[K, V]) Parallel() bool { return m.parallel }

// SetTelemetry attaches rec to the map and every shard: the shards flush
// their per-operation step counts and latencies, the map layer adds the
// shard_ops routing counts. Attach before the map is shared; nil detaches.
func (m *Map[K, V]) SetTelemetry(rec *telemetry.Recorder) {
	m.tel = rec
	for _, sh := range m.shards {
		sh.SetTelemetry(rec)
	}
}

// Telemetry returns the attached recorder, or nil.
func (m *Map[K, V]) Telemetry() *telemetry.Recorder { return m.tel }

// SetRetireHook attaches ONE hook to every shard's physical-deletion C&S
// sites (the same fn sees every retired node regardless of which shard it
// lived in), under the per-shard SetRetireHook contract: attach before
// the map is shared and never change it afterwards — the field is read
// without synchronization at every unlink. fn must be safe for concurrent
// use; nil detaches everywhere.
func (m *Map[K, V]) SetRetireHook(fn func(node any)) {
	for _, sh := range m.shards {
		sh.SetRetireHook(fn)
	}
}

// ShardFor returns the index of the shard owning key k: the number of
// splitters that order <= k, found by binary search.
func (m *Map[K, V]) ShardFor(k K) int {
	lo, hi := 0, len(m.splitters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.compare(m.splitters[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// countShard records n operations routed to a shard: into the caller's
// stats when it brought any, and into the map-level recorder when one is
// attached (exact, never sampled — routing is map state, not an inner
// operation's scratch).
func (m *Map[K, V]) countShard(st *instrument.OpStats, n uint64) {
	st.IncShard(n)
	if m.tel != nil {
		m.tel.AddCounter(instrument.CtrShardOps, n)
	}
}

// Insert adds k with value v to k's shard. Same contract as the skip
// list's Insert: returns the root node and true, or the existing root and
// false on a duplicate.
func (m *Map[K, V]) Insert(p *core.Proc, k K, v V) (*core.SLNode[K, V], bool) {
	m.countShard(p.StatsOrNil(), 1)
	return m.shards[m.ShardFor(k)].Insert(p, k, v)
}

// Get looks up k in its shard.
func (m *Map[K, V]) Get(p *core.Proc, k K) (V, bool) {
	m.countShard(p.StatsOrNil(), 1)
	return m.shards[m.ShardFor(k)].Get(p, k)
}

// Search looks up k in its shard and returns its root node, or nil.
func (m *Map[K, V]) Search(p *core.Proc, k K) *core.SLNode[K, V] {
	m.countShard(p.StatsOrNil(), 1)
	return m.shards[m.ShardFor(k)].Search(p, k)
}

// Delete removes k from its shard. Same contract as the skip list's
// Delete: false when k was absent or a concurrent deletion won.
func (m *Map[K, V]) Delete(p *core.Proc, k K) (*core.SLNode[K, V], bool) {
	m.countShard(p.StatsOrNil(), 1)
	return m.shards[m.ShardFor(k)].Delete(p, k)
}

// Len sums the shard sizes. Exact in quiescent states; within the number
// of in-flight operations otherwise (each shard's count is).
func (m *Map[K, V]) Len() int {
	n := 0
	for _, sh := range m.shards {
		n += sh.Len()
	}
	return n
}

// cutsForKeys fills cuts so that keys[cuts[i]:cuts[i+1]] is shard i's
// sub-run of the SORTED slice keys: cuts[i] is the index of the first key
// >= splitters[i-1]. One binary search per splitter, each over the
// remainder left by the previous one. Written inline (no sort.Search) so
// the predicate closure cannot escape and batches stay allocation-free.
func (m *Map[K, V]) cutsForKeys(keys []K, cuts []int) {
	cuts[0] = 0
	lo := 0
	for j, s := range m.splitters {
		hi := len(keys)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if m.compare(keys[mid], s) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cuts[j+1] = lo
	}
	cuts[len(m.splitters)+1] = len(keys)
}

// cutsForItems is cutsForKeys over a sorted KV slice.
func (m *Map[K, V]) cutsForItems(items []core.KV[K, V], cuts []int) {
	cuts[0] = 0
	lo := 0
	for j, s := range m.splitters {
		hi := len(items)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if m.compare(items[mid].Key, s) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cuts[j+1] = lo
	}
	cuts[len(m.splitters)+1] = len(items)
}

// fanOut reports whether this batch's sub-runs should run on their own
// goroutines: fan-out enabled, no Proc attached (a Proc is
// single-goroutine state: sharing it would race on its stats and
// de-determinize its hooks), and at least two nonempty sub-runs.
func (m *Map[K, V]) fanOut(p *core.Proc, cuts []int) bool {
	if !m.parallel || p != nil {
		return false
	}
	nonempty := 0
	for i := 0; i < len(cuts)-1; i++ {
		if cuts[i] < cuts[i+1] {
			nonempty++
		}
	}
	return nonempty > 1
}

// GetBatch looks up every key in keys, sorting keys in place first; the
// same positional contract as the skip list's GetBatch (results land
// against the sorted order). Each sub-run threads the owning shard's
// pooled finger. Returns the number of keys found.
func (m *Map[K, V]) GetBatch(p *core.Proc, keys []K, vals []V, found []bool) int {
	slices.SortFunc(keys, m.compare)
	cp := m.cutsPool.Get().(*[]int)
	cuts := *cp
	m.cutsForKeys(keys, cuts)
	n := 0
	if m.fanOut(p, cuts) {
		var wg sync.WaitGroup
		counts := make([]int, len(m.shards))
		for i := range m.shards {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			m.countShard(nil, uint64(hi-lo))
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				counts[i] = m.shards[i].GetBatch(nil, keys[lo:hi], sub(vals, lo, hi), sub(found, lo, hi))
			}(i, lo, hi)
		}
		wg.Wait()
		for _, c := range counts {
			n += c
		}
	} else {
		st := p.StatsOrNil()
		for i, sh := range m.shards {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			m.countShard(st, uint64(hi-lo))
			n += sh.GetBatch(p, keys[lo:hi], sub(vals, lo, hi), sub(found, lo, hi))
		}
	}
	m.cutsPool.Put(cp)
	return n
}

// InsertBatch inserts every pair in items, sorting items in place by key
// first; same positional contract as the skip list's InsertBatch. Returns
// the number of new keys.
func (m *Map[K, V]) InsertBatch(p *core.Proc, items []core.KV[K, V], inserted []bool) int {
	slices.SortFunc(items, func(a, b core.KV[K, V]) int { return m.compare(a.Key, b.Key) })
	cp := m.cutsPool.Get().(*[]int)
	cuts := *cp
	m.cutsForItems(items, cuts)
	n := 0
	if m.fanOut(p, cuts) {
		var wg sync.WaitGroup
		counts := make([]int, len(m.shards))
		for i := range m.shards {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			m.countShard(nil, uint64(hi-lo))
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				counts[i] = m.shards[i].InsertBatch(nil, items[lo:hi], sub(inserted, lo, hi))
			}(i, lo, hi)
		}
		wg.Wait()
		for _, c := range counts {
			n += c
		}
	} else {
		st := p.StatsOrNil()
		for i, sh := range m.shards {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			m.countShard(st, uint64(hi-lo))
			n += sh.InsertBatch(p, items[lo:hi], sub(inserted, lo, hi))
		}
	}
	m.cutsPool.Put(cp)
	return n
}

// DeleteBatch deletes every key in keys, sorting keys in place first; same
// positional contract as the skip list's DeleteBatch. Returns the number
// of keys deleted.
func (m *Map[K, V]) DeleteBatch(p *core.Proc, keys []K, deleted []bool) int {
	slices.SortFunc(keys, m.compare)
	cp := m.cutsPool.Get().(*[]int)
	cuts := *cp
	m.cutsForKeys(keys, cuts)
	n := 0
	if m.fanOut(p, cuts) {
		var wg sync.WaitGroup
		counts := make([]int, len(m.shards))
		for i := range m.shards {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			m.countShard(nil, uint64(hi-lo))
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				counts[i] = m.shards[i].DeleteBatch(nil, keys[lo:hi], sub(deleted, lo, hi))
			}(i, lo, hi)
		}
		wg.Wait()
		for _, c := range counts {
			n += c
		}
	} else {
		st := p.StatsOrNil()
		for i, sh := range m.shards {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			m.countShard(st, uint64(hi-lo))
			n += sh.DeleteBatch(p, keys[lo:hi], sub(deleted, lo, hi))
		}
	}
	m.cutsPool.Put(cp)
	return n
}

// sub slices s to [lo:hi] when non-nil, preserving nil (the batch methods
// accept nil result slices).
func sub[T any](s []T, lo, hi int) []T {
	if s == nil {
		return nil
	}
	return s[lo:hi]
}

// Ascend calls fn for each key/value in ascending order until fn returns
// false. Because the partition is by range, visiting the shards in index
// order concatenates their already-ordered iterations — no merge. Within
// each shard the iteration carries the skip list's weak-consistency
// contract; a key that moves between shards cannot exist (keys never
// migrate), so the cross-shard concatenation adds no new anomalies: the
// scan observes each shard at a slightly different time, exactly like a
// single skip list's scan observes each key at a slightly different time.
func (m *Map[K, V]) Ascend(fn func(k K, v V) bool) {
	stopped := false
	for _, sh := range m.shards {
		sh.Ascend(func(k K, v V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// AscendRange calls fn for keys in [from, to) in ascending order, visiting
// only the shards whose ranges intersect [from, to). The guarantees match
// the skip list's AscendRange (keys in range, strictly ascending, no
// duplicates; stable keys reported with their immutable values; concurrent
// updates may or may not be observed) — see the package comment for why
// concatenation preserves them.
func (m *Map[K, V]) AscendRange(p *core.Proc, from, to K, fn func(k K, v V) bool) {
	if m.compare(from, to) >= 0 {
		return
	}
	stopped := false
	for i := m.ShardFor(from); i <= m.ShardFor(to) && i < len(m.shards); i++ {
		m.shards[i].AscendRange(p, from, to, func(k K, v V) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// CheckStructure validates every shard's skip-list invariants plus the
// map's routing invariant: every key stored in shard i routes to shard i.
// Quiescent-state checker, for tests.
func (m *Map[K, V]) CheckStructure() error {
	for i, sh := range m.shards {
		if err := sh.CheckStructure(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		var bad error
		sh.Ascend(func(k K, v V) bool {
			if got := m.ShardFor(k); got != i {
				bad = fmt.Errorf("key %v stored in shard %d but routes to shard %d", k, i, got)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}
