package sharded

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// zeroRng fixes every tower height at 1 for deterministic alloc counts.
func zeroRng() uint64 { return 0 }

// quarters returns the splitter set {256, 512, 768}: four shards over the
// test key space [0, 1024).
func quarters() []int { return []int{256, 512, 768} }

func TestNewValidation(t *testing.T) {
	// 1, 2, 4 shards construct; 3 shards (2 splitters) must panic.
	New[int, int](nil)
	New[int, int]([]int{10})
	New[int, int](quarters())
	mustPanic(t, "non-power-of-two shard count", func() { New[int, int]([]int{1, 2}) })
	mustPanic(t, "non-increasing splitters", func() { New[int, int]([]int{5, 5, 7}) })
	mustPanic(t, "decreasing splitters", func() { New[int, int]([]int{9, 5, 7}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestShardFor(t *testing.T) {
	m := New[int, int](quarters())
	cases := []struct{ k, shard int }{
		{-100, 0}, {0, 0}, {255, 0},
		{256, 1}, {300, 1}, {511, 1}, // splitter keys belong to the right shard
		{512, 2}, {767, 2},
		{768, 3}, {100000, 3},
	}
	for _, c := range cases {
		if got := m.ShardFor(c.k); got != c.shard {
			t.Errorf("ShardFor(%d) = %d, want %d", c.k, got, c.shard)
		}
	}
}

func TestPointOpsRouteAndWork(t *testing.T) {
	m := New[int, int](quarters())
	for k := 0; k < 1024; k += 7 {
		if _, ok := m.Insert(nil, k, k*3); !ok {
			t.Fatalf("insert %d failed", k)
		}
	}
	if _, ok := m.Insert(nil, 7, 0); ok {
		t.Fatal("duplicate insert succeeded")
	}
	for k := 0; k < 1024; k++ {
		v, ok := m.Get(nil, k)
		if want := k%7 == 0; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", k, ok, want)
		}
		if ok && v != k*3 {
			t.Fatalf("Get(%d) = %d, want %d", k, v, k*3)
		}
	}
	if got, want := m.Len(), (1023/7)+1; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// Every key must be stored in the shard it routes to.
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// The per-shard sizes must cover the whole set (no key lost in routing).
	sum := 0
	for i := 0; i < m.Shards(); i++ {
		n := m.Shard(i).Len()
		if n == 0 {
			t.Fatalf("shard %d is empty; routing sent everything elsewhere", i)
		}
		sum += n
	}
	if sum != m.Len() {
		t.Fatalf("shard sizes sum to %d, Len = %d", sum, m.Len())
	}
	for k := 0; k < 1024; k += 7 {
		if _, ok := m.Delete(nil, k); !ok {
			t.Fatalf("delete %d failed", k)
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", m.Len())
	}
}

// TestBatchPartition pins the sorted-run partition: each sub-run lands in
// the owning shard, results are positional against the sorted order, and
// splitter-boundary keys go right.
func TestBatchPartition(t *testing.T) {
	m := New[int, int](quarters())
	// Unsorted batch spanning all four shards, with both splitter keys and
	// their predecessors present.
	keys := []int{900, 256, 3, 512, 255, 768, 511, 767, 100, 600}
	items := make([]core.KV[int, int], len(keys))
	for i, k := range keys {
		items[i] = core.KV[int, int]{Key: k, Value: k * 3}
	}
	inserted := make([]bool, len(items))
	if n := m.InsertBatch(nil, items, inserted); n != len(items) {
		t.Fatalf("InsertBatch = %d, want %d", n, len(items))
	}
	for i, ok := range inserted {
		if !ok {
			t.Errorf("inserted[%d] = false for fresh key %d", i, items[i].Key)
		}
	}
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// items was sorted in place by the batch.
	for i := 1; i < len(items); i++ {
		if items[i-1].Key >= items[i].Key {
			t.Fatalf("items not sorted after InsertBatch: %v", items)
		}
	}

	lookup := []int{255, 256, 511, 512, 767, 768, 3, 4}
	vals := make([]int, len(lookup))
	found := make([]bool, len(lookup))
	if n := m.GetBatch(nil, lookup, vals, found); n != 7 {
		t.Fatalf("GetBatch = %d, want 7 (only 4 is absent)", n)
	}
	for i, k := range lookup { // lookup is now sorted
		want := k != 4
		if found[i] != want {
			t.Errorf("found[%d] (key %d) = %v, want %v", i, k, found[i], want)
		}
		if found[i] && vals[i] != k*3 {
			t.Errorf("vals[%d] (key %d) = %d, want %d", i, k, vals[i], k*3)
		}
	}

	del := []int{768, 3, 256, 512}
	deleted := make([]bool, len(del))
	if n := m.DeleteBatch(nil, del, deleted); n != len(del) {
		t.Fatalf("DeleteBatch = %d, want %d", n, len(del))
	}
	if m.Len() != len(keys)-len(del) {
		t.Fatalf("Len = %d after batch delete, want %d", m.Len(), len(keys)-len(del))
	}
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchParallelFanOut forces the fan-out on (regardless of GOMAXPROCS)
// and checks a large multi-shard batch behaves identically to the
// sequential path. Run under -race this also proves the sub-runs share
// nothing they shouldn't.
func TestBatchParallelFanOut(t *testing.T) {
	m := New[int, int](quarters())
	m.SetParallel(true)
	const n = 800
	items := make([]core.KV[int, int], n)
	perm := rand.Perm(1024)
	for i := 0; i < n; i++ {
		items[i] = core.KV[int, int]{Key: perm[i], Value: perm[i] * 3}
	}
	inserted := make([]bool, n)
	if got := m.InsertBatch(nil, items, inserted); got != n {
		t.Fatalf("parallel InsertBatch = %d, want %d", got, n)
	}
	keys := make([]int, n)
	for i := range items {
		keys[i] = items[i].Key
	}
	vals := make([]int, n)
	found := make([]bool, n)
	if got := m.GetBatch(nil, keys, vals, found); got != n {
		t.Fatalf("parallel GetBatch = %d, want %d", got, n)
	}
	for i, k := range keys {
		if !found[i] || vals[i] != k*3 {
			t.Fatalf("key %d: found=%v val=%d, want true/%d", k, found[i], vals[i], k*3)
		}
	}
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	deleted := make([]bool, n)
	if got := m.DeleteBatch(nil, keys, deleted); got != n {
		t.Fatalf("parallel DeleteBatch = %d, want %d", got, n)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after parallel DeleteBatch, want 0", m.Len())
	}
}

// TestConcurrentMixed hammers the map from several goroutines mixing point
// ops and batches, then validates every shard and the routing invariant.
func TestConcurrentMixed(t *testing.T) {
	m := New[int, int](quarters())
	m.SetParallel(true)
	const (
		workers = 6
		rounds  = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 17))
			keys := make([]int, 16)
			items := make([]core.KV[int, int], 16)
			for r := 0; r < rounds; r++ {
				switch r % 3 {
				case 0:
					for i := range items {
						k := rng.IntN(1024)
						items[i] = core.KV[int, int]{Key: k, Value: k * 3}
					}
					m.InsertBatch(nil, items, nil)
				case 1:
					for i := range keys {
						keys[i] = rng.IntN(1024)
					}
					m.GetBatch(nil, keys, nil, nil)
				case 2:
					for i := range keys {
						keys[i] = rng.IntN(1024)
					}
					m.DeleteBatch(nil, keys, nil)
				}
				k := rng.IntN(1024)
				m.Insert(nil, k, k*3)
				if v, ok := m.Get(nil, k); ok && v != k*3 {
					t.Errorf("Get(%d) = %d, want %d", k, v, k*3)
				}
				m.Delete(nil, rng.IntN(1024))
			}
		}(w)
	}
	wg.Wait()
	if err := m.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}

// TestShardOpsCounting pins the shard_ops accounting: one count per point
// operation, the sub-run length per batch sub-run — through both the
// caller's OpStats and an attached recorder.
func TestShardOpsCounting(t *testing.T) {
	m := New[int, int](quarters())
	rec := telemetry.NewRecorder(1)
	rec.SetSampleEvery(1)
	m.SetTelemetry(rec)

	st := &core.OpStats{}
	p := &core.Proc{Stats: st}
	m.Insert(p, 100, 1)
	m.Get(p, 100)
	m.Delete(p, 100)
	if st.ShardOps != 3 {
		t.Fatalf("point ops recorded ShardOps = %d, want 3", st.ShardOps)
	}
	// A batch spanning three shards counts its full length, split per
	// sub-run.
	keys := []int{10, 20, 300, 310, 900, 910, 920}
	m.GetBatch(p, keys, nil, nil)
	if st.ShardOps != 3+7 {
		t.Fatalf("after batch ShardOps = %d, want %d", st.ShardOps, 3+7)
	}
	snap := rec.Snapshot()
	if snap.Counters.ShardOps != 10 {
		t.Fatalf("recorder ShardOps = %d, want 10", snap.Counters.ShardOps)
	}
	// The shards flushed their own per-op metrics into the same recorder.
	if snap.TotalOps() == 0 || snap.Counters.CASAttempts == 0 {
		t.Fatalf("shard-level metrics missing: %+v", snap.Counters)
	}
}

// TestSequentialBatchAllocs pins the zero-allocation contract of the
// sequential batch path: Get/Delete batches allocate nothing, insert
// batches exactly their nodes — the cuts buffer is pooled, the partition
// uses no closures, and the shards' own finger pools do the rest.
func TestSequentialBatchAllocs(t *testing.T) {
	if raceEnabled {
		// The race detector randomly drops sync.Pool puts (deliberate
		// sampling), so pooled fingers and cuts buffers reallocate and the
		// counts below stop being meaningful.
		t.Skip("allocation counts are distorted under the race detector")
	}
	m := New[int, int](quarters(), core.WithRandomSource(zeroRng))
	m.SetParallel(false)
	for k := 0; k < 1024; k += 2 {
		m.Insert(nil, k, k)
	}
	keys := make([]int, 16)
	allocs := testing.AllocsPerRun(300, func() {
		for i := range keys {
			keys[i] = (i * 131) % 1024
		}
		m.GetBatch(nil, keys, nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("sequential GetBatch allocates %v objects per batch, want 0", allocs)
	}
	items := make([]core.KV[int, int], 16)
	allocs = testing.AllocsPerRun(300, func() {
		for i := range items {
			k := i*64 + 1 // odd keys spanning all four shards
			items[i] = core.KV[int, int]{Key: k, Value: k}
			keys[i] = k
		}
		if n := m.InsertBatch(nil, items, nil); n != len(items) {
			t.Fatalf("InsertBatch = %d, want %d", n, len(items))
		}
		if n := m.DeleteBatch(nil, keys, nil); n != len(keys) {
			t.Fatalf("DeleteBatch = %d, want %d", n, len(keys))
		}
	})
	if allocs != float64(len(items)) {
		t.Fatalf("InsertBatch+DeleteBatch allocate %v objects per batch, want exactly %d (the nodes)",
			allocs, len(items))
	}
	// Point ops through the map allocate nothing beyond the skip list's own
	// contract (Get/Delete zero, Insert one node).
	k := 0
	allocs = testing.AllocsPerRun(400, func() {
		m.Get(nil, k%1024)
		k++
	})
	if allocs != 0 {
		t.Fatalf("sharded Get allocates %v objects per op, want 0", allocs)
	}
}

// TestBackoffCountersFlowThroughShards checks the PR's two new counters
// travel together: a contended insert on a shard increments BackoffWaits
// into the same recorder that sees the map's ShardOps.
func TestBackoffCountersFlowThroughShards(t *testing.T) {
	m := New[int, int](quarters(), core.WithRandomSource(zeroRng))
	for k := 0; k <= 40; k += 2 {
		m.Insert(nil, k, k)
	}
	fired := 0
	const failures = 6
	st := &core.OpStats{}
	p := &core.Proc{Stats: st, Hooks: instrument.HookFunc(func(pt core.Point, pid int) {
		if pt == core.PtBeforeInsertCAS && fired < failures {
			fired++
			if _, ok := m.Delete(nil, 2*fired); !ok {
				t.Errorf("hook delete of key %d failed", 2*fired)
			}
		}
	})}
	if _, ok := m.Insert(p, 1, 1); !ok {
		t.Fatal("contended insert failed")
	}
	if st.BackoffWaits == 0 {
		t.Fatalf("forced %d consecutive C&S failures, BackoffWaits = 0: %+v", failures, st)
	}
	if st.ShardOps == 0 {
		t.Fatal("ShardOps not counted on the contended insert")
	}
}
