package sharded

import (
	"math/rand/v2"
	"strconv"
	"testing"

	"repro/internal/core"
)

// evenSplitters partitions [0, keyRange) evenly across s shards.
func evenSplitters(keyRange, s int) []int {
	out := make([]int, 0, s-1)
	for i := 1; i < s; i++ {
		out = append(out, keyRange*i/s)
	}
	return out
}

func benchMap(b *testing.B, keyRange, shards int) *Map[int, int] {
	b.Helper()
	m := New[int, int](evenSplitters(keyRange, shards))
	m.SetParallel(false) // single-goroutine benchmarks measure the routing itself
	for k := 0; k < keyRange; k += 2 {
		m.Insert(nil, k, k)
	}
	b.ResetTimer()
	return m
}

// BenchmarkShardedGet measures one routed point lookup: a splitter binary
// search plus the per-shard descent, which is one or two levels shallower
// than a single skip list over the same keys.
func BenchmarkShardedGet(b *testing.B) {
	const keyRange = 8192
	for _, s := range []int{1, 4, 8} {
		b.Run(strconv.Itoa(s), func(b *testing.B) {
			m := benchMap(b, keyRange, s)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Get(nil, (i*7919)%keyRange)
			}
		})
	}
}

// BenchmarkShardedInsertDelete measures the routed update pair on odd keys
// (the even prefill stays resident, so both ops do structural work).
func BenchmarkShardedInsertDelete(b *testing.B) {
	const keyRange = 8192
	for _, s := range []int{1, 4} {
		b.Run(strconv.Itoa(s), func(b *testing.B) {
			m := benchMap(b, keyRange, s)
			for i := 0; i < b.N; i++ {
				k := (i*2 + 1) % keyRange
				m.Insert(nil, k, k)
				m.Delete(nil, k)
			}
		})
	}
}

// BenchmarkShardedGetBatch measures the sorted clustered batch path: one
// sort, one splitter partition, then finger-threaded sub-runs per shard.
// Sequential batches must not allocate (the cuts buffer and the shard
// fingers are pooled); the benchdiff allocs gate pins that at 0.
func BenchmarkShardedGetBatch(b *testing.B) {
	const (
		keyRange = 8192
		batchLen = 64
		window   = 256
	)
	for _, s := range []int{1, 4} {
		b.Run(strconv.Itoa(s), func(b *testing.B) {
			m := benchMap(b, keyRange, s)
			b.StopTimer()
			rng := rand.New(rand.NewPCG(7, 11))
			keys := make([]int, batchLen)
			b.ReportAllocs()
			b.StartTimer()
			for i := 0; i < b.N; i += batchLen {
				base := int(rng.Uint64N(keyRange - window))
				for j := range keys {
					keys[j] = base + int(rng.Uint64N(window))
				}
				m.GetBatch(nil, keys, nil, nil)
			}
		})
	}
}

// BenchmarkShardedInsertDeleteBatch measures the batched update pair over a
// clustered window, the workload the range partition is built for.
func BenchmarkShardedInsertDeleteBatch(b *testing.B) {
	const (
		keyRange = 8192
		batchLen = 64
		window   = 256
	)
	for _, s := range []int{1, 4} {
		b.Run(strconv.Itoa(s), func(b *testing.B) {
			m := benchMap(b, keyRange, s)
			b.StopTimer()
			rng := rand.New(rand.NewPCG(13, 17))
			items := make([]core.KV[int, int], batchLen)
			keys := make([]int, batchLen)
			b.StartTimer()
			for i := 0; i < b.N; i += batchLen {
				base := 1 + int(rng.Uint64N(keyRange-window))
				for j := range items {
					k := base + int(rng.Uint64N(window))
					items[j] = core.KV[int, int]{Key: k | 1, Value: k} // odd: disjoint from prefill
				}
				m.InsertBatch(nil, items, nil)
				for j := range keys {
					keys[j] = items[j].Key
				}
				m.DeleteBatch(nil, keys, nil)
			}
		})
	}
}
