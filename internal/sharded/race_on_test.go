//go:build race

package sharded

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
