package obshttp

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeAdminEndpoints(t *testing.T) {
	var notReady error
	h, err := ServeAdmin("127.0.0.1:0", nil, func() error { return notReady })
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		h.Shutdown(ctx)
	}()
	base := "http://" + h.Addr()

	if code, _ := get(t, base+"/metrics"); code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if code, body := get(t, base+"/debug/vars"); code != 200 || !strings.HasPrefix(body, "{") {
		t.Fatalf("/debug/vars = %d, %q", code, body)
	}
	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d, %q", code, body)
	}
	notReady = errors.New("draining")
	if code, body := get(t, base+"/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz = %d, %q", code, body)
	}

	// Without WithPprof the profiling surface must not exist.
	if code, _ := get(t, base+"/debug/pprof/goroutine?debug=1"); code != 404 {
		t.Fatalf("pprof mounted without opt-in: %d", code)
	}
}

func TestServeAdminOptions(t *testing.T) {
	custom := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"records":[]}`))
	})
	h, err := ServeAdmin("127.0.0.1:0", nil, nil,
		WithPprof(), WithHandler("/debug/trace", custom))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		h.Shutdown(ctx)
	}()
	base := "http://" + h.Addr()

	if code, body := get(t, base+"/debug/pprof/goroutine?debug=1"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/goroutine = %d, %q", code, body)
	}
	if code, body := get(t, base+"/debug/trace"); code != 200 || !strings.Contains(body, "records") {
		t.Fatalf("/debug/trace = %d, %q", code, body)
	}
}
