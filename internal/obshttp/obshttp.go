// Package obshttp serves the observability endpoints shared by the
// command-line tools: /metrics (Prometheus text exposition of every
// registered lockfree/telemetry instance), /debug/vars (the standard
// expvar JSON dump), and — for long-running servers — the /healthz and
// /readyz probes.
package obshttp

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"time"

	ltel "repro/lockfree/telemetry"
)

// Probe reports one liveness condition; nil means OK. A nil Probe is
// treated as always-OK.
type Probe func() error

// Handle is a running observability listener. It satisfies the
// server.Shutdowner interface so commands can drain it through the same
// graceful-shutdown path as their protocol listeners.
type Handle struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address, so callers can print a scrapeable URL.
func (h *Handle) Addr() string { return h.ln.Addr().String() }

// Shutdown gracefully drains the listener: in-flight requests finish,
// new ones are refused, and stragglers are cut when ctx expires.
func (h *Handle) Shutdown(ctx context.Context) error { return h.srv.Shutdown(ctx) }

// ServeAdmin binds addr (":0" picks a free port) and serves /metrics,
// /debug/vars, /healthz, and /readyz until Shutdown. The probes decide
// the HTTP status of the last two: nil error is 200, anything else 503
// with the error text in the body — the readiness probe should start
// failing the moment shutdown begins, so load balancers stop routing
// before connections are cut.
func ServeAdmin(addr string, healthz, readyz Probe) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", ltel.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/healthz", probeHandler(healthz))
	mux.Handle("/readyz", probeHandler(readyz))
	h := &Handle{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	go h.srv.Serve(ln)
	return h, nil
}

func probeHandler(p Probe) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if p != nil {
			if err := p(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
}

// Serve binds addr and serves /metrics and /debug/vars until stop is
// called. It returns the bound address so callers can print a scrapeable
// URL. Short-lived tools use this; servers should prefer ServeAdmin and
// route the Handle through their graceful-shutdown path.
func Serve(addr string) (boundAddr string, stop func(), err error) {
	h, err := ServeAdmin(addr, nil, nil)
	if err != nil {
		return "", nil, err
	}
	return h.Addr(), func() { h.srv.Close() }, nil
}
