// Package obshttp serves the observability endpoints shared by the
// command-line tools: /metrics (Prometheus text exposition of every
// registered lockfree/telemetry instance) and /debug/vars (the standard
// expvar JSON dump).
package obshttp

import (
	"expvar"
	"net"
	"net/http"

	ltel "repro/lockfree/telemetry"
)

// Serve binds addr (":0" picks a free port) and serves /metrics and
// /debug/vars until stop is called. It returns the bound address so
// callers can print a scrapeable URL.
func Serve(addr string) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", ltel.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
