// Package obshttp serves the observability endpoints shared by the
// command-line tools: /metrics (Prometheus text exposition of every
// registered lockfree/telemetry instance), /debug/vars (the standard
// expvar JSON dump), and — for long-running servers — the /healthz and
// /readyz probes.
package obshttp

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	ltel "repro/lockfree/telemetry"
)

// Probe reports one liveness condition; nil means OK. A nil Probe is
// treated as always-OK.
type Probe func() error

// Handle is a running observability listener. It satisfies the
// server.Shutdowner interface so commands can drain it through the same
// graceful-shutdown path as their protocol listeners.
type Handle struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address, so callers can print a scrapeable URL.
func (h *Handle) Addr() string { return h.ln.Addr().String() }

// Shutdown gracefully drains the listener: in-flight requests finish,
// new ones are refused, and stragglers are cut when ctx expires.
func (h *Handle) Shutdown(ctx context.Context) error { return h.srv.Shutdown(ctx) }

// Option extends the admin mux beyond the default endpoint set.
type Option func(*adminCfg)

type adminCfg struct {
	pprof    bool
	handlers []handlerMount
}

type handlerMount struct {
	pattern string
	h       http.Handler
}

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/ —
// CPU, heap, goroutine, block, and mutex profiles plus execution traces.
// Profiling endpoints can stall the process (a CPU profile runs for
// seconds) and leak internals, so they are opt-in behind this option and,
// in the commands, behind an explicit flag.
func WithPprof() Option { return func(c *adminCfg) { c.pprof = true } }

// WithHandler mounts h at pattern on the admin mux — the hook commands
// use to expose tool-specific surfaces such as the serving layer's
// /debug/trace sampled-operation ring.
func WithHandler(pattern string, h http.Handler) Option {
	return func(c *adminCfg) { c.handlers = append(c.handlers, handlerMount{pattern, h}) }
}

// ServeAdmin binds addr (":0" picks a free port) and serves /metrics,
// /debug/vars, /healthz, and /readyz — plus whatever the options mount —
// until Shutdown. The probes decide the HTTP status of the probe
// endpoints: nil error is 200, anything else 503 with the error text in
// the body — the readiness probe should start failing the moment shutdown
// begins, so load balancers stop routing before connections are cut.
func ServeAdmin(addr string, healthz, readyz Probe, opts ...Option) (*Handle, error) {
	var cfg adminCfg
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", ltel.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/healthz", probeHandler(healthz))
	mux.Handle("/readyz", probeHandler(readyz))
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	for _, m := range cfg.handlers {
		mux.Handle(m.pattern, m.h)
	}
	h := &Handle{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	go h.srv.Serve(ln)
	return h, nil
}

func probeHandler(p Probe) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if p != nil {
			if err := p(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
}

// Serve binds addr and serves /metrics and /debug/vars until stop is
// called. It returns the bound address so callers can print a scrapeable
// URL. Short-lived tools use this; servers should prefer ServeAdmin and
// route the Handle through their graceful-shutdown path.
func Serve(addr string) (boundAddr string, stop func(), err error) {
	h, err := ServeAdmin(addr, nil, nil)
	if err != nil {
		return "", nil, err
	}
	return h.Addr(), func() { h.srv.Close() }, nil
}
