package harris

import (
	"cmp"
	"fmt"
)

// checkChain validates that the list from head reaches tail with strictly
// increasing keys and no marked nodes, in a quiescent state.
func checkChain[K cmp.Ordered, V any](head, tail *Node[K, V]) error {
	prev := head
	seen := 0
	for {
		s := prev.loadSucc()
		if s.marked {
			return fmt.Errorf("quiescence violated: reachable node %d is marked", seen)
		}
		next := s.right
		if next == nil {
			if prev != tail {
				return fmt.Errorf("nil right pointer before tail (node %d)", seen)
			}
			return nil
		}
		if next.kind == kindHead || prev.kind == kindTail {
			return fmt.Errorf("sentinel misplaced at node %d", seen)
		}
		if prev.kind == kindInterior && next.kind == kindInterior && cmp.Compare(prev.key, next.key) >= 0 {
			return fmt.Errorf("keys not strictly increasing at node %d", seen)
		}
		prev = next
		seen++
		if seen > 1<<30 {
			return fmt.Errorf("list does not terminate (cycle?)")
		}
	}
}

// CheckStructure validates the baseline skip list in a quiescent state:
// every level is sorted, unmarked, and a superset of the level above.
func (l *SkipList[K, V]) CheckStructure() error {
	var below map[K]bool
	for lv := l.maxLevel - 1; lv >= 0; lv-- {
		keys := make(map[K]bool)
		prev := l.head
		seen := 0
		var prevKey K
		havePrev := false
		for {
			s := prev.succs[lv].Load()
			if s.marked {
				return fmt.Errorf("level %d: reachable marked node in quiescent state", lv+1)
			}
			next := s.right
			if next == nil {
				if prev != l.tail {
					return fmt.Errorf("level %d: nil right pointer before tail", lv+1)
				}
				break
			}
			if next.kind == kindInterior {
				if havePrev && cmp.Compare(prevKey, next.key) >= 0 {
					return fmt.Errorf("level %d: keys not strictly increasing", lv+1)
				}
				prevKey, havePrev = next.key, true
				if next.level <= lv {
					return fmt.Errorf("level %d: node with height %d linked here", lv+1, next.level)
				}
				keys[next.key] = true
			}
			prev = next
			seen++
			if seen > 1<<30 {
				return fmt.Errorf("level %d: cycle", lv+1)
			}
		}
		if below != nil {
			for k := range below {
				if !keys[k] {
					return fmt.Errorf("level %d: key %v on level %d missing below", lv+1, k, lv+2)
				}
			}
		}
		below = keys
	}
	return nil
}
