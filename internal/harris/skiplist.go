package harris

import (
	"cmp"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/instrument"
)

// DefaultMaxLevel is the default tower height cap for the baseline skip
// list, matching internal/core.
const DefaultMaxLevel = 32

// slNode is one tower of the baseline skip list. Unlike the paper's
// design (one node per level), this follows Pugh's representation used by
// Fraser: a single node with an array of per-level successor fields, each
// carrying its own mark bit.
type slNode[K cmp.Ordered, V any] struct {
	key   K
	val   V
	kind  nodeKind
	level int // tower height, >= 1
	succs []atomic.Pointer[succ2[K, V]]
}

// succ2 is the per-level composite successor field: (right, mark).
type succ2[K cmp.Ordered, V any] struct {
	right  *slNode[K, V]
	marked bool
}

func (n *slNode[K, V]) compareKey(k K) int {
	switch n.kind {
	case kindHead:
		return -1
	case kindTail:
		return 1
	default:
		return cmp.Compare(n.key, k)
	}
}

// SkipList is a lock-free skip list in the style of Fraser (2003), built
// from Harris's marking technique on every level: deletions mark each
// level's successor field top-down, and searches restart from the head
// when a pruning C&S fails. It serves as the baseline for experiments
// E4/E5.
type SkipList[K cmp.Ordered, V any] struct {
	maxLevel int
	head     *slNode[K, V]
	tail     *slNode[K, V]
	rng      func() uint64
	size     atomic.Int64
}

// NewSkipList returns an empty baseline skip list. rng supplies random
// bits for tower heights and must be safe for concurrent use; pass nil for
// the default source.
func NewSkipList[K cmp.Ordered, V any](maxLevel int, rng func() uint64) *SkipList[K, V] {
	if maxLevel < 2 {
		maxLevel = DefaultMaxLevel
	}
	if rng == nil {
		rng = rand.Uint64
	}
	l := &SkipList[K, V]{
		maxLevel: maxLevel,
		head:     &slNode[K, V]{kind: kindHead, level: maxLevel, succs: make([]atomic.Pointer[succ2[K, V]], maxLevel)},
		tail:     &slNode[K, V]{kind: kindTail, level: maxLevel, succs: make([]atomic.Pointer[succ2[K, V]], maxLevel)},
		rng:      rng,
	}
	for i := 0; i < maxLevel; i++ {
		l.head.succs[i].Store(&succ2[K, V]{right: l.tail})
		l.tail.succs[i].Store(&succ2[K, V]{right: nil})
	}
	return l
}

// Len returns the number of keys (exact when quiescent).
func (l *SkipList[K, V]) Len() int { return int(l.size.Load()) }

func (l *SkipList[K, V]) randomHeight() int {
	h := 1 + bits.TrailingZeros64(^l.rng())
	return min(h, l.maxLevel-1)
}

// find locates, on every level, the adjacent pair (pred, succ) around k,
// physically unlinking marked nodes it passes. A failed pruning C&S
// restarts the whole search from the head (the Harris-style recovery this
// baseline exists to exhibit). It returns the predecessors, the exact
// successor records read from them, the successors, and the node with key
// k on the bottom level if one is present.
func (l *SkipList[K, V]) find(p *instrument.Proc, k K) (
	preds []*slNode[K, V], recs []*succ2[K, V], succs []*slNode[K, V], found *slNode[K, V],
) {
	st := p.StatsOrNil()
	preds = make([]*slNode[K, V], l.maxLevel)
	recs = make([]*succ2[K, V], l.maxLevel)
	succs = make([]*slNode[K, V], l.maxLevel)
retry:
	for {
		pred := l.head
		for lv := l.maxLevel - 1; lv >= 0; lv-- {
			predRec := pred.succs[lv].Load()
			if predRec.marked {
				// pred got marked at this level between descent steps. Its
				// record is frozen, so retrying from the head is the only
				// recovery (the restart policy this baseline exhibits).
				// Without this check the identity CAS in Insert could link
				// a node after an already-spliced predecessor, losing it -
				// Harris's structural CAS encodes the same check in its
				// expected mark bit of 0.
				st.IncRestart()
				p.At(instrument.PtRestart)
				continue retry
			}
			curr := predRec.right
			for {
				currRec := curr.succs[lv].Load()
				st.IncNext()
				// Unlink marked nodes.
				for currRec.marked {
					p.At(instrument.PtBeforePhysicalCAS)
					ok := pred.succs[lv].CompareAndSwap(predRec, &succ2[K, V]{right: currRec.right})
					st.IncCAS(ok)
					if !ok {
						st.IncRestart()
						p.At(instrument.PtRestart)
						continue retry
					}
					predRec = pred.succs[lv].Load()
					if predRec.marked || predRec.right != currRec.right {
						st.IncRestart()
						p.At(instrument.PtRestart)
						continue retry
					}
					curr = predRec.right
					currRec = curr.succs[lv].Load()
					st.IncNext()
				}
				if curr.compareKey(k) < 0 {
					pred = curr
					predRec = currRec
					curr = currRec.right
					st.IncCurr()
				} else {
					break
				}
			}
			preds[lv] = pred
			recs[lv] = predRec
			succs[lv] = curr
		}
		if succs[0].compareKey(k) == 0 {
			found = succs[0]
		}
		p.At(instrument.PtSearchDone)
		return preds, recs, succs, found
	}
}

// Search looks up k; it returns the value and whether k is present.
func (l *SkipList[K, V]) Get(p *instrument.Proc, k K) (V, bool) {
	_, _, _, found := l.find(p, k)
	if found != nil {
		return found.val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (l *SkipList[K, V]) Contains(p *instrument.Proc, k K) bool {
	_, _, _, found := l.find(p, k)
	return found != nil
}

// Insert adds k with value v; false if already present.
func (l *SkipList[K, V]) Insert(p *instrument.Proc, k K, v V) bool {
	st := p.StatsOrNil()
	topLevel := l.randomHeight()
	var n *slNode[K, V]
	for {
		preds, recs, succs, found := l.find(p, k)
		if found != nil {
			return false // duplicate key
		}
		if n == nil {
			n = &slNode[K, V]{key: k, val: v, level: topLevel,
				succs: make([]atomic.Pointer[succ2[K, V]], topLevel)}
		}
		for i := 0; i < topLevel; i++ {
			n.succs[i].Store(&succ2[K, V]{right: succs[i]})
		}
		// Link the bottom level: this is the linearization point.
		p.At(instrument.PtBeforeInsertCAS)
		ok := preds[0].succs[0].CompareAndSwap(recs[0], &succ2[K, V]{right: n})
		st.IncCAS(ok)
		if !ok {
			st.IncRestart()
			p.At(instrument.PtRestart)
			continue
		}
		l.size.Add(1)
		// Link the upper levels.
		for lv := 1; lv < topLevel; lv++ {
			for {
				if succs[lv] == n {
					break // already linked here by a helping find
				}
				ns := n.succs[lv].Load()
				if ns.marked {
					return true // concurrent delete caught up; stop building
				}
				if ns.right != succs[lv] {
					if !n.succs[lv].CompareAndSwap(ns, &succ2[K, V]{right: succs[lv]}) {
						continue
					}
				}
				ok := preds[lv].succs[lv].CompareAndSwap(recs[lv], &succ2[K, V]{right: n})
				st.IncCAS(ok)
				if ok {
					break
				}
				st.IncRestart()
				p.At(instrument.PtRestart)
				preds, recs, succs, _ = l.find(p, k)
				if n.succs[0].Load().marked {
					return true // node already deleted
				}
			}
		}
		return true
	}
}

// Delete removes k: mark every level's successor field from the top down
// (the bottom-level marking C&S decides the race), then prune via find.
func (l *SkipList[K, V]) Delete(p *instrument.Proc, k K) bool {
	st := p.StatsOrNil()
	_, _, _, found := l.find(p, k)
	if found == nil {
		return false
	}
	for lv := found.level - 1; lv >= 1; lv-- {
		s := found.succs[lv].Load()
		for !s.marked {
			p.At(instrument.PtBeforeMarkCAS)
			ok := found.succs[lv].CompareAndSwap(s, &succ2[K, V]{right: s.right, marked: true})
			st.IncCAS(ok)
			s = found.succs[lv].Load()
		}
	}
	for {
		s := found.succs[0].Load()
		if s.marked {
			return false // a concurrent deletion won
		}
		p.At(instrument.PtBeforeMarkCAS)
		ok := found.succs[0].CompareAndSwap(s, &succ2[K, V]{right: s.right, marked: true})
		st.IncCAS(ok)
		if ok {
			l.size.Add(-1)
			l.find(p, k) // physically unlink
			return true
		}
	}
}

// Ascend iterates keys in ascending order on the bottom level, skipping
// marked nodes.
func (l *SkipList[K, V]) Ascend(fn func(k K, v V) bool) {
	n := l.head.succs[0].Load().right
	for n.kind != kindTail {
		if !n.succs[0].Load().marked {
			if !fn(n.key, n.val) {
				return
			}
		}
		n = n.succs[0].Load().right
	}
}
