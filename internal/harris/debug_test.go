package harris

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHarrisSkipListAccounting cross-checks Len against the number of
// successful inserts minus successful deletes, and against the final
// traversal, to localize any size-accounting bug.
func TestHarrisSkipListAccounting(t *testing.T) {
	for round := 0; round < 30; round++ {
		l := NewSkipList[int, int](0, testRNG(uint64(round)))
		const workers, ops, keyRange = 8, 2000, 48
		var insWins, delWins atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(w), uint64(round)))
				for i := 0; i < ops; i++ {
					k := int(rng.Uint64N(keyRange))
					switch rng.Uint64N(3) {
					case 0:
						if l.Insert(nil, k, k) {
							insWins.Add(1)
						}
					case 1:
						if l.Delete(nil, k) {
							delWins.Add(1)
						}
					default:
						l.Contains(nil, k)
					}
				}
			}(w)
		}
		wg.Wait()
		count := 0
		l.Ascend(func(_, _ int) bool { count++; return true })
		net := int(insWins.Load() - delWins.Load())
		if l.Len() != count || net != count {
			t.Fatalf("round %d: Len=%d traversal=%d insWins-delWins=%d",
				round, l.Len(), count, net)
		}
	}
}
