package harris

import (
	"testing"

	"repro/internal/instrument"
)

// gate pauses one process at one point (in-package to avoid an import
// cycle with internal/adversary).
type gate struct {
	point   instrument.Point
	arrived chan struct{}
	release chan struct{}
	used    bool
}

func newGate(p instrument.Point) *gate {
	return &gate{point: p, arrived: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) At(p instrument.Point, _ int) {
	if g.used || p != g.point {
		return
	}
	g.used = true
	close(g.arrived)
	<-g.release
}

// TestF1HarrisTwoStepDeletion replays Figure 1: Harris's deletion of node
// B first marks B's successor field (logical deletion) and then swings the
// predecessor's pointer past it (physical deletion). The test freezes the
// deleter between the two C&S's and asserts both intermediate states.
func TestF1HarrisTwoStepDeletion(t *testing.T) {
	l := NewList[int, string]()
	l.Insert(nil, 1, "A")
	l.Insert(nil, 2, "B")
	l.Insert(nil, 3, "C")
	a := l.Search(nil, 1)
	b := l.Search(nil, 2)
	c := l.Search(nil, 3)

	g := newGate(instrument.PtBeforePhysicalCAS)
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&instrument.Proc{ID: 1, Hooks: g}, 2)
		res <- ok
	}()
	<-g.arrived

	// Step 1 done: B logically deleted, still physically linked.
	bSucc := b.loadSucc()
	if !bSucc.marked || bSucc.right != c {
		t.Fatalf("after step 1: B.succ = (%v,%t), want marked (C,1)", bSucc.right, bSucc.marked)
	}
	aSucc := a.loadSucc()
	if aSucc.marked || aSucc.right != b {
		t.Fatalf("after step 1: A.succ = (%v,%t), want (B,0)", aSucc.right, aSucc.marked)
	}
	// A marked node is invisible to searches even before it is unlinked.
	if n := l.Search(nil, 2); n != nil {
		t.Fatal("marked node still visible to Search")
	}

	close(g.release)
	if !<-res {
		t.Fatal("deletion reported failure")
	}
	// Step 2 done: B physically deleted.
	aSucc = a.loadSucc()
	if aSucc.marked || aSucc.right != c {
		t.Fatalf("after step 2: A.succ = (%v,%t), want (C,0)", aSucc.right, aSucc.marked)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestF1MarkedSuccessorFrozen checks Harris's core invariant: once a
// node's successor field is marked it never changes, so an insertion after
// a marked node must fail and restart.
func TestF1MarkedSuccessorFrozen(t *testing.T) {
	l := NewList[int, int]()
	l.Insert(nil, 1, 1)
	l.Insert(nil, 3, 3)
	b := l.Search(nil, 3)

	g := newGate(instrument.PtBeforePhysicalCAS)
	res := make(chan bool, 1)
	go func() {
		_, ok := l.Delete(&instrument.Proc{ID: 1, Hooks: g}, 3)
		res <- ok
	}()
	<-g.arrived

	frozen := b.loadSucc()
	// An insert of a larger key would have had b as its predecessor; it
	// must succeed by inserting after the list skips the marked node.
	if _, ok := l.Insert(nil, 5, 5); !ok {
		t.Fatal("insert blocked by a marked node")
	}
	if got := b.loadSucc(); got != frozen {
		t.Fatal("marked successor field changed")
	}
	close(g.release)
	<-res
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(nil, 5); !ok {
		t.Fatal("key 5 lost")
	}
}
