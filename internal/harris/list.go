// Package harris implements T. Harris's lock-free linked list ("A
// Pragmatic Implementation of Non-Blocking Linked-Lists", DISC 2001) and a
// Fraser-style lock-free skip list built from the same technique. They are
// the baselines the paper compares against in Sections 2 and 3.1.
//
// Harris's deletion is two-step - mark the victim's successor field, then
// physically unlink it - and an operation that fails a C&S because of a
// concurrent change restarts its search from the head of the list. The
// paper's Section 3.1 shows an execution where this restart policy forces
// average cost Omega(n-bar * c-bar); experiment E2 reproduces it.
//
// The composite (pointer, mark) successor word uses the same immutable
// record representation as internal/core, so step counts are directly
// comparable.
package harris

import (
	"cmp"
	"sync/atomic"

	"repro/internal/instrument"
)

type nodeKind int8

const (
	kindInterior nodeKind = iota
	kindHead
	kindTail
)

// succ is Harris's composite successor field: (right, mark).
type succ[K cmp.Ordered, V any] struct {
	right  *Node[K, V]
	marked bool
}

// Node is one cell of the Harris list.
type Node[K cmp.Ordered, V any] struct {
	key  K
	val  V
	kind nodeKind
	succ atomic.Pointer[succ[K, V]]
}

// Key returns the node's key.
func (n *Node[K, V]) Key() K { return n.key }

// Value returns the node's value.
func (n *Node[K, V]) Value() V { return n.val }

func (n *Node[K, V]) loadSucc() *succ[K, V] { return n.succ.Load() }

func (n *Node[K, V]) marked() bool {
	s := n.succ.Load()
	return s != nil && s.marked
}

// compareKey orders n against k with sentinels as -inf/+inf.
func (n *Node[K, V]) compareKey(k K) int {
	switch n.kind {
	case kindHead:
		return -1
	case kindTail:
		return 1
	default:
		return cmp.Compare(n.key, k)
	}
}

// List is Harris's lock-free sorted linked list.
type List[K cmp.Ordered, V any] struct {
	head *Node[K, V]
	tail *Node[K, V]
	size atomic.Int64
}

// NewList returns an empty Harris list.
func NewList[K cmp.Ordered, V any]() *List[K, V] {
	l := &List[K, V]{
		head: &Node[K, V]{kind: kindHead},
		tail: &Node[K, V]{kind: kindTail},
	}
	l.head.succ.Store(&succ[K, V]{right: l.tail})
	l.tail.succ.Store(&succ[K, V]{right: nil})
	return l
}

// Len returns the number of keys in the list (exact when quiescent).
func (l *List[K, V]) Len() int { return int(l.size.Load()) }

// search returns adjacent nodes (left, right) with left.key < k <=
// right.key, right unmarked at some point during the call. It unlinks any
// marked nodes between them, restarting from the head when a C&S fails -
// Harris's search_again loop.
func (l *List[K, V]) search(p *instrument.Proc, k K) (*Node[K, V], *Node[K, V]) {
	st := p.StatsOrNil()
	for {
		var left *Node[K, V]
		var leftSucc *succ[K, V]
		t := l.head
		tSucc := t.loadSucc()
		// Phase 1: find left and right.
		for {
			if !tSucc.marked {
				left = t
				leftSucc = tSucc
			}
			t = tSucc.right
			st.IncCurr()
			if t.kind == kindTail {
				break
			}
			tSucc = t.loadSucc()
			st.IncNext()
			if !(tSucc.marked || t.compareKey(k) < 0) {
				break
			}
		}
		right := t
		// Phase 2: check nodes are adjacent.
		if leftSucc.right == right {
			if right.kind != kindTail && right.marked() {
				st.IncRestart()
				p.At(instrument.PtRestart)
				continue // restart from the head
			}
			p.At(instrument.PtSearchDone)
			return left, right
		}
		// Phase 3: remove the marked nodes between left and right.
		p.At(instrument.PtBeforePhysicalCAS)
		ok := left.succ.CompareAndSwap(leftSucc, &succ[K, V]{right: right})
		st.IncCAS(ok)
		if ok {
			if right.kind != kindTail && right.marked() {
				st.IncRestart()
				p.At(instrument.PtRestart)
				continue
			}
			p.At(instrument.PtSearchDone)
			return left, right
		}
		st.IncRestart()
		p.At(instrument.PtRestart)
	}
}

// Search looks up k and returns its node, or nil if absent.
func (l *List[K, V]) Search(p *instrument.Proc, k K) *Node[K, V] {
	_, right := l.search(p, k)
	if right.compareKey(k) == 0 {
		return right
	}
	return nil
}

// Get looks up k and returns its value.
func (l *List[K, V]) Get(p *instrument.Proc, k K) (V, bool) {
	if n := l.Search(p, k); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Insert adds k with value v; false if k is already present. On C&S
// failure the operation re-runs search from the head - the behaviour the
// FR list's backlinks are designed to avoid.
func (l *List[K, V]) Insert(p *instrument.Proc, k K, v V) (*Node[K, V], bool) {
	st := p.StatsOrNil()
	newNode := &Node[K, V]{key: k, val: v}
	for {
		left, right := l.search(p, k)
		if right.compareKey(k) == 0 {
			return right, false // duplicate key
		}
		leftSucc := left.loadSucc()
		if leftSucc.right != right || leftSucc.marked {
			st.IncRestart()
			p.At(instrument.PtRestart)
			continue
		}
		newNode.succ.Store(&succ[K, V]{right: right})
		p.At(instrument.PtBeforeInsertCAS)
		ok := left.succ.CompareAndSwap(leftSucc, &succ[K, V]{right: newNode})
		st.IncCAS(ok)
		if ok {
			l.size.Add(1)
			return newNode, true
		}
		st.IncRestart()
		p.At(instrument.PtRestart)
	}
}

// Delete removes k using Harris's two-step deletion: mark the victim's
// successor field, then unlink it with a C&S on the predecessor (falling
// back to a pruning search if that C&S fails).
func (l *List[K, V]) Delete(p *instrument.Proc, k K) (*Node[K, V], bool) {
	st := p.StatsOrNil()
	var left, right *Node[K, V]
	var rightSucc *succ[K, V]
	for {
		left, right = l.search(p, k)
		if right.compareKey(k) != 0 {
			return nil, false // no such key
		}
		rightSucc = right.loadSucc()
		if !rightSucc.marked {
			p.At(instrument.PtBeforeMarkCAS)
			ok := right.succ.CompareAndSwap(rightSucc,
				&succ[K, V]{right: rightSucc.right, marked: true})
			st.IncCAS(ok)
			if ok {
				break // logically deleted
			}
		}
		st.IncRestart()
		p.At(instrument.PtRestart)
	}
	l.size.Add(-1)
	// Physical deletion: one direct attempt on the predecessor the search
	// returned, else let a pruning search splice the node out.
	leftSucc := left.loadSucc()
	unlinked := false
	if leftSucc.right == right && !leftSucc.marked {
		p.At(instrument.PtBeforePhysicalCAS)
		unlinked = left.succ.CompareAndSwap(leftSucc, &succ[K, V]{right: rightSucc.right})
		st.IncCAS(unlinked)
	}
	if !unlinked {
		l.search(p, k)
	}
	return right, true
}

// AscendPhysical walks the physical chain - including logically deleted
// (marked) nodes still linked - reporting each interior node's key and
// mark bit. Diagnostic, used by cmd/lflfigures.
func (l *List[K, V]) AscendPhysical(fn func(k K, marked bool) bool) {
	n := l.head.loadSucc().right
	for n.kind != kindTail {
		if !fn(n.key, n.marked()) {
			return
		}
		n = n.loadSucc().right
	}
}

// Ascend iterates keys in ascending order, skipping marked nodes.
func (l *List[K, V]) Ascend(fn func(k K, v V) bool) {
	n := l.head.loadSucc().right
	for n.kind != kindTail {
		if !n.marked() {
			if !fn(n.key, n.val) {
				return
			}
		}
		n = n.loadSucc().right
	}
}

// CheckInvariants validates sortedness and termination in a quiescent
// state, mirroring core.List.CheckInvariants.
func (l *List[K, V]) CheckInvariants() error {
	return checkChain(l.head, l.tail)
}
