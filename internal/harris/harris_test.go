package harris

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"repro/internal/instrument"
)

func testRNG(seed uint64) func() uint64 {
	var mu sync.Mutex
	rng := rand.New(rand.NewPCG(seed, seed*2654435761))
	return func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return rng.Uint64()
	}
}

func TestHarrisListSequential(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 200; i++ {
		if _, ok := l.Insert(nil, i, i); !ok {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if _, ok := l.Insert(nil, 100, 0); ok {
		t.Fatal("duplicate insert succeeded")
	}
	if got := l.Len(); got != 200 {
		t.Fatalf("Len = %d", got)
	}
	for i := 0; i < 200; i += 2 {
		if _, ok := l.Delete(nil, i); !ok {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := 0; i < 200; i++ {
		_, ok := l.Get(nil, i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %t, want %t", i, ok, want)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHarrisListDeleteAbsent(t *testing.T) {
	l := NewList[int, int]()
	l.Insert(nil, 1, 1)
	if _, ok := l.Delete(nil, 2); ok {
		t.Fatal("deleted absent key")
	}
	if _, ok := l.Delete(nil, 1); !ok {
		t.Fatal("delete failed")
	}
	if _, ok := l.Delete(nil, 1); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestHarrisListConcurrentStress(t *testing.T) {
	l := NewList[int, int]()
	const workers, ops, keyRange = 8, 3000, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 5))
			p := &instrument.Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Get(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	count := 0
	l.Ascend(func(k, _ int) bool {
		if seen[k] {
			t.Errorf("duplicate key %d", k)
		}
		seen[k] = true
		count++
		return true
	})
	if got := l.Len(); got != count {
		t.Fatalf("Len = %d, traversal = %d", got, count)
	}
}

func TestHarrisListDeleteContention(t *testing.T) {
	const workers, keys = 8, 150
	for round := 0; round < 5; round++ {
		l := NewList[int, int]()
		for k := 0; k < keys; k++ {
			l.Insert(nil, k, k)
		}
		var wins [workers]int
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := &instrument.Proc{ID: w}
				for k := 0; k < keys; k++ {
					if _, ok := l.Delete(p, k); ok {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Fatalf("round %d: %d wins for %d keys", round, total, keys)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHarrisListRestartCounting(t *testing.T) {
	l := NewList[int, int]()
	st := &instrument.OpStats{}
	p := &instrument.Proc{Stats: st}
	for i := 0; i < 20; i++ {
		l.Insert(p, i, i)
	}
	if st.Restarts != 0 {
		t.Fatalf("uncontended inserts restarted %d times", st.Restarts)
	}
	if st.CASSuccesses != 20 {
		t.Fatalf("CASSuccesses = %d, want 20", st.CASSuccesses)
	}
}

func TestHarrisSkipListSequential(t *testing.T) {
	l := NewSkipList[int, int](0, testRNG(1))
	const n = 1000
	for i := 0; i < n; i++ {
		if !l.Insert(nil, i, i*2) {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if l.Insert(nil, 5, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	if got := l.Len(); got != n {
		t.Fatalf("Len = %d", got)
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok := l.Get(nil, i)
		if !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d, %t", i, v, ok)
		}
	}
	for i := 0; i < n; i += 3 {
		if !l.Delete(nil, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if !sort.IntsAreSorted(got) {
		t.Fatal("not sorted")
	}
	want := n - (n+2)/3
	if len(got) != want {
		t.Fatalf("traversal found %d keys, want %d", len(got), want)
	}
}

func TestHarrisSkipListConcurrentStress(t *testing.T) {
	l := NewSkipList[int, int](0, testRNG(2))
	const workers, ops, keyRange = 8, 2000, 48
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 11))
			p := &instrument.Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Contains(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	count := 0
	l.Ascend(func(_, _ int) bool { count++; return true })
	if got := l.Len(); got != count {
		t.Fatalf("Len = %d, traversal = %d", got, count)
	}
}

func TestHarrisSkipListDeleteContention(t *testing.T) {
	const workers, keys = 8, 100
	for round := 0; round < 5; round++ {
		l := NewSkipList[int, int](0, testRNG(uint64(round+3)))
		for k := 0; k < keys; k++ {
			l.Insert(nil, k, k)
		}
		var wins [workers]int
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := &instrument.Proc{ID: w}
				for k := 0; k < keys; k++ {
					if l.Delete(p, k) {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Fatalf("round %d: %d wins for %d keys", round, total, keys)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d", round, got)
		}
		if err := l.CheckStructure(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHarrisSkipListInsertDeleteRace(t *testing.T) {
	l := NewSkipList[int, int](0, testRNG(7))
	const workers, keys, rounds = 8, 16, 1200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &instrument.Proc{ID: w}
			for i := 0; i < rounds; i++ {
				k := (i + w) % keys
				if w%2 == 0 {
					l.Insert(p, k, k)
				} else {
					l.Delete(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.CheckStructure(); err != nil {
		t.Fatal(err)
	}
}
