package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/lockfree"
)

// startObsTCP is startTCP plus an attached Obs with the given config.
func startObsTCP(t *testing.T, cfg Config, ocfg ObsConfig, rec *telemetry.Recorder) (*Server, *Obs) {
	t.Helper()
	store := lockfree.NewSkipList[int, string]()
	srv := New(cfg, store)
	if rec != nil {
		srv.SetTelemetry(rec)
	}
	obs := NewObs(ocfg)
	srv.SetObs(obs)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	for i := 0; srv.Ready() != nil && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, obs
}

// waitVerbCount polls until v's latency histogram holds exactly want
// observations. Overshoot fails immediately; only the flush-to-record
// window is forgiven.
func waitVerbCount(t *testing.T, obs *Obs, v Verb, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		got := obs.VerbLatency(v).Count
		if got == want {
			return
		}
		if got > want || time.Now().After(deadline) {
			t.Fatalf("%s latency count = %d, want %d", v.Label(), got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestObsEndToEnd(t *testing.T) {
	rec := telemetry.NewRecorder(1)
	srv, obs := startObsTCP(t, Config{}, ObsConfig{SampleEvery: 1}, rec)
	nc, br := dial(t, srv)

	// A pipelined burst of SETs plus point GETs and a PING; SampleEvery 1
	// traces every unit.
	var req strings.Builder
	const sets = 40
	for i := 0; i < sets; i++ {
		fmt.Fprintf(&req, "SET %d v%d\n", i, i)
	}
	if _, err := nc.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sets; i++ {
		if line, err := br.ReadString('\n'); err != nil || line != ":1\n" {
			t.Fatalf("SET %d answered %q, %v", i, line, err)
		}
	}
	for _, cmd := range []string{"GET 7", "PING"} {
		if _, err := nc.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}

	// Per-verb latency: every command recorded, whatever the coalescing.
	// Latency lands after the response flush, so the client can see a
	// reply a beat before the histogram does — poll, don't assert once.
	waitVerbCount(t, obs, VerbSet, sets)
	waitVerbCount(t, obs, VerbGet, 1)
	waitVerbCount(t, obs, VerbPing, 1)
	if obs.VerbLatency(VerbSet).Sum == 0 {
		t.Fatal("set latency sum is zero — latencies not measured")
	}
	if obs.QueueWait().Count == 0 {
		t.Fatal("queue-wait histogram empty")
	}

	// Traces: every unit sampled; SET units must carry exact attribution
	// (a skip-list insert performs at least one CAS).
	recs := obs.TraceSnapshot(0)
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	var sawAttributedSet, sawPing bool
	for _, r := range recs {
		if !r.Sampled {
			t.Fatalf("unsampled record at SampleEvery=1: %+v", r)
		}
		if Verb(r.Verb) == VerbSet && r.CASAttempts > 0 && r.EssentialSteps > 0 {
			sawAttributedSet = true
		}
		if Verb(r.Verb) == VerbPing {
			sawPing = true
		}
	}
	if !sawAttributedSet {
		t.Fatalf("no SET trace with cas_attempts attribution: %+v", recs)
	}
	if !sawPing {
		t.Fatalf("PING unit not traced: %+v", recs)
	}
}

func TestObsSlowCaptureAndCounter(t *testing.T) {
	rec := telemetry.NewRecorder(1)
	// SampleEvery huge + 1ns threshold: units are captured only via the
	// slow path, and every unit is slow.
	srv, obs := startObsTCP(t, Config{}, ObsConfig{SampleEvery: 1 << 20, SlowThreshold: time.Nanosecond}, rec)
	nc, br := dial(t, srv)
	if _, err := nc.Write([]byte("SET 1 x\nGET 1\n")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
	recs := obs.TraceSnapshot(0)
	if len(recs) == 0 {
		t.Fatal("slow units not captured")
	}
	for _, r := range recs {
		if !r.Slow {
			t.Fatalf("record not marked slow: %+v", r)
		}
		if r.Sampled {
			t.Fatalf("record marked sampled at SampleEvery=2^20: %+v", r)
		}
	}
	if got := rec.Snapshot().Counters.CmdsSlow; got == 0 {
		t.Fatal("cmds_slow counter not incremented")
	}
}

func TestObsKeyMasking(t *testing.T) {
	obs := NewObs(ObsConfig{KeyMaskBits: 8})
	obs.trace(VerbGet, 0x1234, 1, 10, 0, true, false, nil)
	recs := obs.TraceSnapshot(0)
	if len(recs) != 1 || recs[0].Key != 0x1200 {
		t.Fatalf("key prefix = %#x, want 0x1200", recs[0].Key)
	}
}

func TestObsPrometheusRendering(t *testing.T) {
	obs := NewObs(ObsConfig{})
	// Two classes of SET latency, one GET, batch sizes, queue waits.
	obs.recordLatency(VerbSet, 0, 1_500, 1)
	obs.recordLatency(VerbSet, 0, 900_000, 1)
	obs.recordLatency(VerbSet, 1, 40_000, 8)
	obs.recordLatency(VerbGet, 0, 2_000, 1)
	obs.recordBatch(VerbSet, 1)
	obs.recordBatch(VerbSet, 8)
	obs.recordBatch(VerbGet, 1)
	obs.recordQueueWait(5_000)

	var sb strings.Builder
	if err := obs.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE lockfree_server_cmd_latency_seconds histogram",
		`lockfree_server_cmd_latency_seconds_count{verb="set",batch="1"} 2`,
		`lockfree_server_cmd_latency_seconds_count{verb="set",batch="2-15"} 8`,
		`lockfree_server_cmd_latency_seconds_count{verb="get",batch="1"} 1`,
		`lockfree_server_cmd_latency_seconds_bucket{verb="set",batch="1",le="+Inf"} 2`,
		`lockfree_server_cmd_batch_size_bucket{verb="set",le="+Inf"} 2`,
		"lockfree_server_queue_wait_seconds_count 1",
		"lockfree_server_trace_records_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// No series for verbs without data.
	if strings.Contains(out, `verb="del"`) || strings.Contains(out, `verb="ping"`) {
		t.Fatalf("series rendered for idle verbs:\n%s", out)
	}
	// Sum in seconds: set/batch=1 saw 1500+900000 ns.
	if !strings.Contains(out, `lockfree_server_cmd_latency_seconds_sum{verb="set",batch="1"} 0.0009015`) {
		t.Fatalf("latency sum not in seconds:\n%s", out)
	}

	// Bucket series must be cumulative and end at +Inf == _count, per
	// (verb, class) series.
	assertCumulative(t, out, "lockfree_server_cmd_latency_seconds", `{verb="set",batch="1"`)
	assertCumulative(t, out, "lockfree_server_cmd_batch_size", `{verb="set"`)
}

// assertCumulative checks the le series of one histogram: counts never
// decrease and the final +Inf equals the _count sample.
func assertCumulative(t *testing.T, out, name, labelPrefix string) {
	t.Helper()
	var prev, last uint64
	var sawInf bool
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name+"_bucket"+labelPrefix) {
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("non-cumulative buckets at %q (%d < %d)", line, v, prev)
			}
			prev = v
			last = v
			sawInf = strings.Contains(line, `le="+Inf"`)
		}
	}
	if !sawInf {
		t.Fatalf("last %s%s bucket is not +Inf:\n%s", name, labelPrefix, out)
	}
	var count uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name+"_count"+labelPrefix) {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &count)
		}
	}
	if last != count {
		t.Fatalf("+Inf bucket %d != _count %d for %s%s", last, count, name, labelPrefix)
	}
}

func TestObsTraceHandler(t *testing.T) {
	obs := NewObs(ObsConfig{})
	var stats instrument.OpStats
	stats.CASAttempts = 3
	stats.BackoffWaits = 2
	stats.NextUpdates = 5
	obs.trace(VerbSet, 4096, 4, 1000, 200, true, false, &stats)
	obs.trace(VerbGet, 8192, 1, 50_000_000, 10, false, true, nil)

	rr := httptest.NewRecorder()
	obs.TraceHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var got struct {
		Written  uint64 `json:"written"`
		Capacity int    `json:"capacity"`
		Records  []struct {
			Verb         string `json:"verb"`
			Sampled      bool   `json:"sampled"`
			Slow         bool   `json:"slow"`
			KeyPrefix    int64  `json:"key_prefix"`
			Batch        int64  `json:"batch"`
			WallNanos    int64  `json:"wall_ns"`
			QueueNanos   int64  `json:"queue_ns"`
			AgeNanos     int64  `json:"age_ns"`
			CASAttempts  uint64 `json:"cas_attempts"`
			BackoffWaits uint64 `json:"backoff_waits"`
			Essential    uint64 `json:"essential_steps"`
		} `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("trace output not JSON: %v\n%s", err, rr.Body.String())
	}
	if got.Written != 2 || len(got.Records) != 2 {
		t.Fatalf("written/records = %d/%d", got.Written, len(got.Records))
	}
	// Newest first: the slow GET.
	if got.Records[0].Verb != "get" || !got.Records[0].Slow || got.Records[0].Sampled {
		t.Fatalf("record 0 wrong: %+v", got.Records[0])
	}
	r1 := got.Records[1]
	if r1.Verb != "set" || !r1.Sampled || r1.CASAttempts != 3 || r1.BackoffWaits != 2 ||
		r1.Essential != 8 || r1.Batch != 4 || r1.WallNanos != 1000 || r1.QueueNanos != 200 {
		t.Fatalf("record 1 wrong: %+v", r1)
	}
	if r1.AgeNanos < 0 {
		t.Fatalf("negative age: %+v", r1)
	}

	// ?n limits, bad n rejects.
	rr = httptest.NewRecorder()
	obs.TraceHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?n=1", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil || len(got.Records) != 1 {
		t.Fatalf("n=1 gave %d records (%v)", len(got.Records), err)
	}
	rr = httptest.NewRecorder()
	obs.TraceHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?n=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad n answered %d", rr.Code)
	}
}

func TestObsRecordingZeroAlloc(t *testing.T) {
	obs := NewObs(ObsConfig{})
	var stats instrument.OpStats
	stats.CASAttempts = 2
	if n := testing.AllocsPerRun(1000, func() { obs.recordLatency(VerbSet, 1, 12345, 4) }); n != 0 {
		t.Fatalf("recordLatency allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { obs.recordBatch(VerbGet, 3) }); n != 0 {
		t.Fatalf("recordBatch allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { obs.recordQueueWait(777) }); n != 0 {
		t.Fatalf("recordQueueWait allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		obs.trace(VerbSet, 99, 4, 1000, 10, true, false, &stats)
	}); n != 0 {
		t.Fatalf("trace allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _ = obs.sampleNext() }); n != 0 {
		t.Fatalf("sampleNext allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _ = VerbRange.Label() }); n != 0 {
		t.Fatalf("Verb.Label allocates %v/op", n)
	}
}

// TestConnActiveGaugeNeverNegative hammers connection churn racing a
// shutdown and asserts the conn_active gauge can never be observed
// negative (a negative two's-complement level reads as a huge uint64) and
// lands exactly at zero once everything is closed. It pins two fixes:
// gauge updates land on one fixed telemetry cell instead of being striped
// (a striped gauge lets a snapshot sum the decrement's shard after
// missing a newer increment and report a level that never existed), and
// Shutdown waits on the connection set itself rather than a WaitGroup
// (a late ServeConn could Add concurrently with a Wait crossing zero —
// a WaitGroup reuse panic).
func TestConnActiveGaugeNeverNegative(t *testing.T) {
	rec := telemetry.NewRecorder(2)
	store := lockfree.NewSkipList[int, string]()
	srv := New(Config{DrainGrace: 10 * time.Millisecond, ReadTimeout: time.Second}, store)
	srv.SetTelemetry(rec)

	const half = int64(1) << 62
	checkLevel := func(at string) {
		if v := rec.Snapshot().Counters.ConnActive; int64(v) < 0 || v > uint64(half) {
			t.Errorf("conn_active negative (%d as uint64) %s", v, at)
		}
	}

	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				checkLevel("during churn")
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				client, server := net.Pipe()
				done := make(chan struct{})
				go func() {
					srv.ServeConn(server)
					close(done)
				}()
				bw := bufio.NewWriter(client)
				br := bufio.NewReader(client)
				fmt.Fprintf(bw, "SET %d x\n", g*1000+i)
				bw.Flush()
				br.ReadString('\n')
				if i%2 == 0 {
					// Race a client-side close against the server's reader.
					client.Close()
				} else {
					fmt.Fprintf(bw, "QUIT\n")
					bw.Flush()
					br.ReadString('\n')
					client.Close()
				}
				<-done
			}
		}(g)
	}
	wg.Wait()

	// Shutdown racing late ServeConn arrivals: a second wave begins as
	// shutdown sweeps.
	var late sync.WaitGroup
	for g := 0; g < 4; g++ {
		late.Add(1)
		go func(g int) {
			defer late.Done()
			for i := 0; i < 10; i++ {
				client, server := net.Pipe()
				var cw sync.WaitGroup
				cw.Add(1)
				go func() {
					defer cw.Done()
					srv.ServeConn(server)
				}()
				client.Close()
				cw.Wait()
			}
		}(g)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	late.Wait()
	close(stop)
	watcher.Wait()

	if v := rec.Snapshot().Counters.ConnActive; v != 0 {
		t.Fatalf("conn_active = %d after full drain, want 0", v)
	}
}
