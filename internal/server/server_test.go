package server

import (
	"bufio"
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/lockfree"
)

func startTCP(t *testing.T, cfg Config, store Store, rec *telemetry.Recorder) *Server {
	t.Helper()
	srv := New(cfg, store)
	if rec != nil {
		srv.SetTelemetry(rec)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	// Serve publishes readiness after adopting the listener.
	for i := 0; srv.Ready() != nil && i < 100; i++ {
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

func dial(t *testing.T, srv *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc, bufio.NewReader(nc)
}

func TestServerPointAndRange(t *testing.T) {
	srv := startTCP(t, Config{}, lockfree.NewShardedSkipList[int, string](lockfree.EqualSplitters(0, 100, 4)), nil)
	nc, br := dial(t, srv)

	send := func(s string) { // one command at a time: the un-pipelined path
		if _, err := nc.Write([]byte(s + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want string) {
		t.Helper()
		if got := mustReadLine(t, br); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}

	send("PING")
	expect("+PONG")
	send("SET 10 ten")
	expect(":1")
	send("SET 10 ten-again")
	expect(":0") // insert-if-absent: values are immutable
	send("SET 20 twenty")
	expect(":1")
	send("SET 90 ninety")
	expect(":1")
	send("GET 10")
	expect("$ten")
	send("GET 11")
	expect("_")
	send("LEN")
	expect(":3")
	send("RANGE 10 90") // [lo, hi): 90 excluded
	expect("*2")
	expect("10 ten")
	expect("20 twenty")
	send("RANGE 5 4")
	expect("*0")
	send("DEL 20")
	expect(":1")
	send("DEL 20")
	expect(":0")
	send("BLORP")
	expect(`-ERR unknown command "BLORP"`)
	send("GET abc")
	expect(`-ERR key "abc" is not a signed 64-bit integer`)
	send("QUIT")
	expect("+OK")
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

// TestServerOversizedInputFailsRequestNotProcess: an overlong line and an
// oversized RANGE each answer -ERR, and the same connection keeps
// serving afterwards.
func TestServerOversizedInputFailsRequestNotProcess(t *testing.T) {
	store := lockfree.NewSkipList[int, string]()
	for i := 0; i < 50; i++ {
		store.Insert(i, "v")
	}
	srv := startTCP(t, Config{MaxLineBytes: 128, MaxRange: 10}, store, nil)
	nc, br := dial(t, srv)

	long := "SET 1 " + strings.Repeat("x", 4096) + "\nPING\n"
	if _, err := nc.Write([]byte(long)); err != nil {
		t.Fatal(err)
	}
	if got := mustReadLine(t, br); !strings.HasPrefix(got, "-ERR ") {
		t.Fatalf("overlong line answered %q, want -ERR", got)
	}
	if got := mustReadLine(t, br); got != "+PONG" {
		t.Fatalf("connection dead after overlong line: %q", got)
	}

	if _, err := nc.Write([]byte("RANGE 0 50\nLEN\n")); err != nil {
		t.Fatal(err)
	}
	if got := mustReadLine(t, br); !strings.HasPrefix(got, "-ERR range result exceeds") {
		t.Fatalf("oversized range answered %q", got)
	}
	if got := mustReadLine(t, br); got != ":50" {
		t.Fatalf("connection dead after oversized range: %q", got)
	}
}

// TestServerConnectionCapSheds: connections beyond MaxConns are refused at
// accept time with an error line, and counted as conn_rejected.
func TestServerConnectionCapSheds(t *testing.T) {
	rec := telemetry.NewRecorder(1)
	srv := startTCP(t, Config{MaxConns: 1}, lockfree.NewSkipList[int, string](), rec)

	nc1, br1 := dial(t, srv)
	nc1.Write([]byte("PING\n"))
	if got := mustReadLine(t, br1); got != "+PONG" {
		t.Fatalf("first connection: %q", got)
	}

	_, br2 := dial(t, srv)
	if got := mustReadLine(t, br2); got != "-ERR server busy" {
		t.Fatalf("second connection got %q, want -ERR server busy", got)
	}
	if _, err := br2.ReadByte(); err == nil {
		t.Fatal("shed connection left open")
	}

	s := rec.Snapshot().Counters
	if s.ConnRejected != 1 || s.ConnAccepted != 1 || s.ConnActive != 1 {
		t.Fatalf("counters accepted=%d active=%d rejected=%d, want 1/1/1",
			s.ConnAccepted, s.ConnActive, s.ConnRejected)
	}

	// Freeing the slot re-admits new connections.
	nc1.Write([]byte("QUIT\n"))
	mustReadLine(t, br1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		nc3, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		br3 := bufio.NewReader(nc3)
		nc3.Write([]byte("PING\n"))
		got, _ := br3.ReadString('\n')
		nc3.Close()
		if strings.TrimSuffix(got, "\n") == "+PONG" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed; last response %q", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerIdleTimeout: a connection that sends nothing is closed once
// ReadTimeout elapses.
func TestServerIdleTimeout(t *testing.T) {
	srv := startTCP(t, Config{ReadTimeout: 50 * time.Millisecond}, lockfree.NewSkipList[int, string](), nil)
	nc, br := dial(t, srv)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("idle connection not closed")
	}
}

// TestServerGracefulDrain is the end-to-end shutdown gate: several
// connections with pipelined mixed workloads in flight, Shutdown begins
// after every client's final pipeline is on the wire, and every command
// sent still receives a response — zero dropped in-flight responses —
// before the connections close. Run under -race by scripts/check.sh.
func TestServerGracefulDrain(t *testing.T) {
	const (
		clients   = 6
		pipelines = 8
		plen      = 16
	)
	rec := telemetry.NewRecorder(1)
	store := lockfree.NewShardedSkipList[int, string](lockfree.EqualSplitters(0, 256, 4))
	srv := startTCP(t, Config{DrainGrace: 500 * time.Millisecond}, store, rec)

	var wrote, done sync.WaitGroup
	errc := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wrote.Add(1)
		done.Add(1)
		go func(cl int) {
			defer done.Done()
			signaled := false
			defer func() {
				if !signaled {
					wrote.Done()
				}
			}()
			nc, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errc <- err
				return
			}
			defer nc.Close()
			br := bufio.NewReader(nc)
			rng := rand.New(rand.NewPCG(7, uint64(cl)))
			for p := 0; p < pipelines; p++ {
				var req strings.Builder
				kinds := make([]byte, plen)
				for i := range kinds {
					k := int(rng.Uint64N(256))
					switch rng.Uint64N(4) {
					case 0:
						fmt.Fprintf(&req, "SET %d c%d\n", k, cl)
						kinds[i] = ':'
					case 1:
						fmt.Fprintf(&req, "DEL %d\n", k)
						kinds[i] = ':'
					case 2:
						fmt.Fprintf(&req, "GET %d\n", k)
						kinds[i] = '$'
					default:
						req.WriteString("PING\n")
						kinds[i] = '+'
					}
				}
				if _, err := nc.Write([]byte(req.String())); err != nil {
					errc <- fmt.Errorf("client %d write: %w", cl, err)
					return
				}
				if p == pipelines-1 {
					// Final pipeline is on the wire; shutdown may begin.
					signaled = true
					wrote.Done()
				}
				for i := 0; i < plen; i++ {
					line, err := br.ReadString('\n')
					if err != nil {
						errc <- fmt.Errorf("client %d pipeline %d: response %d/%d dropped: %w",
							cl, p, i, plen, err)
						return
					}
					switch kinds[i] {
					case ':':
						if !strings.HasPrefix(line, ":") {
							errc <- fmt.Errorf("client %d: want integer reply, got %q", cl, line)
							return
						}
					case '$':
						if !strings.HasPrefix(line, "$") && line != "_\n" {
							errc <- fmt.Errorf("client %d: want value reply, got %q", cl, line)
							return
						}
					case '+':
						if line != "+PONG\n" {
							errc <- fmt.Errorf("client %d: want +PONG, got %q", cl, line)
							return
						}
					}
				}
			}
		}(cl)
	}

	wrote.Wait() // every client's last pipeline is in flight
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain cleanly: %v", err)
	}
	done.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if srv.Ready() == nil {
		t.Fatal("server still ready after Shutdown")
	}
	if _, err := net.Dial("tcp", srv.Addr()); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	s := rec.Snapshot().Counters
	if s.ConnAccepted != clients {
		t.Fatalf("conn_accepted = %d, want %d", s.ConnAccepted, clients)
	}
	if s.ConnActive != 0 {
		t.Fatalf("conn_active = %d after drain, want 0", s.ConnActive)
	}
	if s.CmdsCoalesced == 0 {
		t.Fatal("pipelined workload coalesced nothing")
	}
}

// TestShutdownIdempotent: repeated and pre-Serve Shutdown calls are safe.
func TestShutdownIdempotent(t *testing.T) {
	srv := New(Config{}, lockfree.NewSkipList[int, string]())
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenAndServe(); err != ErrServerClosed {
		t.Fatalf("Serve after Shutdown = %v, want ErrServerClosed", err)
	}
}
