package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
	"repro/lockfree"
)

type loggedRec struct {
	op  wal.Op
	key int64
	val string
}

func replayAll(t *testing.T, dir string) []loggedRec {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen WAL: %v", err)
	}
	defer l.Close()
	var out []loggedRec
	if _, err := l.Replay(0, func(op wal.Op, seq uint64, key int64, val []byte) error {
		out = append(out, loggedRec{op: op, key: key, val: string(val)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// TestDurabilityLogsAppliedMutationsOnly drives single commands, a
// pipelined coalesced batch, and no-op duplicates through a wal-async
// server and asserts the log holds exactly the applied mutations, in
// this connection's program order.
func TestDurabilityLogsAppliedMutationsOnly(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Durability: DurabilityAsync, WAL: l}, lockfree.NewSkipList[int, string]())
	cl, br := pipeConn(t, srv)

	send := func(cmds string, replies int) {
		t.Helper()
		if _, err := cl.Write([]byte(cmds)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < replies; i++ {
			mustReadLine(t, br)
		}
	}
	send("SET 1 one\n", 1)
	send("SET 1 dup\n", 1)    // duplicate: applied=false, must not log
	send("DEL 2\n", 1)        // miss: must not log
	send("DEL 1\nDEL 1\n", 2) // second DEL is a miss
	// One pipelined write -> one coalesced InsertBatch; 5 and 6 apply,
	// the repeated 5 does not.
	send("SET 5 five\nSET 6 six\nSET 5 again\n", 3)

	cl.Close()
	if err := l.WaitDurable(l.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	want := []loggedRec{
		{wal.OpSet, 1, "one"},
		{wal.OpDel, 1, ""},
		{wal.OpSet, 5, "five"},
		{wal.OpSet, 6, "six"},
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("log holds %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("log[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDurabilitySyncAckImpliesDurable: in wal-sync mode a reply the
// client has read implies the mutation is already fsync-durable — even
// mid-connection, with a long group-commit window that would otherwise
// delay the fsync.
func TestDurabilitySyncAckImpliesDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, FsyncWindow: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := New(Config{Durability: DurabilitySync, WAL: l}, lockfree.NewSkipList[int, string]())
	cl, br := pipeConn(t, srv)

	for i := 1; i <= 3; i++ {
		if _, err := cl.Write([]byte(fmt.Sprintf("SET %d v%d\n", i, i))); err != nil {
			t.Fatal(err)
		}
		if got := mustReadLine(t, br); got != ":1" {
			t.Fatalf("SET %d = %q", i, got)
		}
		if d := l.Durable(); d < uint64(i) {
			t.Fatalf("ack for LSN %d read but Durable() = %d", i, d)
		}
	}
}

// TestDurabilityGroupBatchLogs covers the third reply path: group-batch
// executors apply the units, the owning connection logs them at its
// reply walk.
func TestDurabilityGroupBatchLogs(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := startTCP(t, Config{Durability: DurabilityAsync, WAL: l, GroupBatch: true}, lockfree.NewSkipList[int, string](), nil)
	nc, br := dial(t, srv)
	for i := 1; i <= 4; i++ {
		if _, err := nc.Write([]byte(fmt.Sprintf("SET %d gv%d\n", i, i))); err != nil {
			t.Fatal(err)
		}
		if got := mustReadLine(t, br); got != ":1" {
			t.Fatalf("SET %d = %q", i, got)
		}
	}
	nc.Close()
	if err := l.WaitDurable(l.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 4 {
		t.Fatalf("log holds %d records, want 4: %+v", len(got), got)
	}
	for i, r := range got {
		if r.op != wal.OpSet || !strings.HasPrefix(r.val, "gv") {
			t.Fatalf("log[%d] = %+v", i, r)
		}
	}
}
