package server

import (
	"strings"
	"testing"
)

func TestParseCommandValid(t *testing.T) {
	cases := []struct {
		line string
		want Command
	}{
		{"PING", Command{Verb: VerbPing}},
		{"ping", Command{Verb: VerbPing}},
		{"PING\r", Command{Verb: VerbPing}},
		{"LEN", Command{Verb: VerbLen}},
		{"QUIT", Command{Verb: VerbQuit}},
		{"GET 42", Command{Verb: VerbGet, Key: 42}},
		{"get -7", Command{Verb: VerbGet, Key: -7}},
		{"DEL 9", Command{Verb: VerbDel, Key: 9}},
		{"SET 1 hello", Command{Verb: VerbSet, Key: 1, Value: "hello"}},
		{"SET 1 two words", Command{Verb: VerbSet, Key: 1, Value: "two words"}},
		{"SET -3 -", Command{Verb: VerbSet, Key: -3, Value: "-"}},
		{"RANGE 1 10", Command{Verb: VerbRange, Key: 1, Hi: 10}},
		{"range -5 5\r", Command{Verb: VerbRange, Key: -5, Hi: 5}},
	}
	for _, tc := range cases {
		got, err := ParseCommand([]byte(tc.line))
		if err != nil {
			t.Errorf("ParseCommand(%q): unexpected error %v", tc.line, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCommand(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}

func TestParseCommandMalformed(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"empty line", ""},
		{"bare CR", "\r"},
		{"embedded NUL in verb", "PI\x00NG"},
		{"embedded NUL in value", "SET 1 a\x00b"},
		{"unknown verb", "BLORP 1"},
		{"unknown verb with NUL", "\x00"},
		{"ping with args", "PING 1"},
		{"len with args", "LEN 3"},
		{"quit with args", "QUIT now"},
		{"get missing key", "GET"},
		{"get empty key token", "GET "},
		{"get trailing arg", "GET 1 2"},
		{"get non-integer key", "GET abc"},
		{"get float key", "GET 1.5"},
		{"get overflow key", "GET 92233720368547758080"},
		{"del missing key", "DEL"},
		{"set missing value", "SET 1"},
		{"set missing value after space", "SET 1 "},
		{"set missing key and value", "SET"},
		{"set non-integer key", "SET x y"},
		{"range missing hi", "RANGE 1"},
		{"range trailing arg", "RANGE 1 2 3"},
		{"range bad lo", "RANGE a 2"},
		{"range bad hi", "RANGE 1 b"},
	}
	for _, tc := range cases {
		if _, err := ParseCommand([]byte(tc.line)); err == nil {
			t.Errorf("%s: ParseCommand(%q) succeeded, want error", tc.name, tc.line)
		}
	}
}

// TestParseCommandErrorsAreClientSafe pins the failure mode: every parse
// error must be a single-line message (it is echoed verbatim after
// "-ERR "), and a hostile token must not inflate it.
func TestParseCommandErrorsAreClientSafe(t *testing.T) {
	long := strings.Repeat("x", 10_000)
	for _, line := range []string{long, "GET " + long, long + " 1"} {
		_, err := ParseCommand([]byte(line))
		if err == nil {
			t.Fatalf("ParseCommand(%d-byte line) succeeded", len(line))
		}
		msg := err.Error()
		if strings.ContainsAny(msg, "\r\n") {
			t.Fatalf("error message spans lines: %q", msg)
		}
		if len(msg) > 128 {
			t.Fatalf("error message too long (%d bytes): %q", len(msg), msg[:64])
		}
	}
}

// FuzzParseCommand asserts the parser's safety contract on arbitrary
// bytes: no panic, and on success the command round-trips sanely (a valid
// verb, and a SET value free of line breaks and NUL).
func FuzzParseCommand(f *testing.F) {
	for _, seed := range []string{
		"PING", "LEN", "QUIT",
		"SET 1 hello", "SET -3 two words", "GET 42", "DEL 9",
		"RANGE 1 10", "RANGE -5 5\r",
		"", "\r", "SET", "GET ", "BLORP 1", "PI\x00NG",
		"GET 92233720368547758080", "SET 1 a\x00b", "RANGE 1 2 3",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		cmd, err := ParseCommand(line)
		if err != nil {
			if msg := err.Error(); strings.ContainsAny(msg, "\r\n") {
				t.Fatalf("error message spans lines: %q", msg)
			}
			return
		}
		switch cmd.Verb {
		case VerbPing, VerbSet, VerbGet, VerbDel, VerbRange, VerbLen, VerbQuit:
		default:
			t.Fatalf("parse succeeded with invalid verb %v", cmd.Verb)
		}
		if strings.ContainsAny(cmd.Value, "\n\x00") {
			t.Fatalf("accepted value with line break or NUL: %q", cmd.Value)
		}
	})
}
