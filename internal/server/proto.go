// Package server exposes a lock-free ordered key-value store over TCP
// through a small RESP-like line protocol. It is the serving layer of the
// repository: many connections concurrently drive one structure, and each
// connection's pipelined command runs are coalesced into the sorted batch
// operations, so the clustered-access amortization of DESIGN.md Sections 8
// and 9 applies to network traffic, not just in-process callers.
//
// Requests are single lines, terminated by '\n' (a preceding '\r' is
// stripped), fields separated by single spaces:
//
//	PING                 liveness probe
//	SET <key> <value>    insert-if-absent; values are immutable once stored
//	GET <key>            point lookup
//	DEL <key>            delete
//	RANGE <lo> <hi>      ordered scan of [lo, hi)
//	LEN                  key count
//	QUIT                 polite close
//
// Keys and range bounds are signed 64-bit decimal integers. A SET value is
// everything after the key token (it may contain spaces, but not '\n' or
// NUL). Responses are also single lines: "+..." status, ":<n>" integer,
// "$<value>" hit, "_" miss, "-ERR <msg>" failure, and "*<n>" followed by n
// lines "<key> <value>" for RANGE. Malformed or oversized input fails the
// request — the connection answers -ERR and keeps serving — never the
// process; only a broken transport closes a connection early.
package server

import (
	"errors"
	"fmt"
	"strconv"

	"bytes"
)

// Verb enumerates the protocol commands.
type Verb uint8

// Protocol verbs. VerbInvalid is the zero value, returned with an error by
// ParseCommand.
const (
	VerbInvalid Verb = iota
	VerbPing
	VerbSet
	VerbGet
	VerbDel
	VerbRange
	VerbLen
	VerbQuit
)

// String returns the verb's wire name.
func (v Verb) String() string {
	switch v {
	case VerbPing:
		return "PING"
	case VerbSet:
		return "SET"
	case VerbGet:
		return "GET"
	case VerbDel:
		return "DEL"
	case VerbRange:
		return "RANGE"
	case VerbLen:
		return "LEN"
	case VerbQuit:
		return "QUIT"
	default:
		return "INVALID"
	}
}

// batchable reports whether runs of this verb coalesce into one batch
// call: the point commands SET/GET/DEL do, the rest execute singly.
func (v Verb) batchable() bool {
	return v == VerbSet || v == VerbGet || v == VerbDel
}

// NumVerbs is the size of the verb enumeration including VerbInvalid, for
// indexing per-verb metric arrays.
const NumVerbs = int(VerbQuit) + 1

// verbLabels interns each verb's lower-case metric label, so hot-path
// recording never formats a string.
var verbLabels = [NumVerbs]string{
	VerbInvalid: "invalid",
	VerbPing:    "ping",
	VerbSet:     "set",
	VerbGet:     "get",
	VerbDel:     "del",
	VerbRange:   "range",
	VerbLen:     "len",
	VerbQuit:    "quit",
}

// Label returns the verb's lower-case label used by the observability
// layer's metric and trace dimensions. The string is interned: calling
// Label never allocates.
func (v Verb) Label() string {
	if int(v) < NumVerbs {
		return verbLabels[v]
	}
	return "invalid"
}

// Command is one parsed request line.
type Command struct {
	Verb  Verb
	Key   int    // SET/GET/DEL key, RANGE lower bound
	Hi    int    // RANGE upper bound (exclusive)
	Value string // SET payload
}

// ErrLineTooLong is returned by the connection reader when a request line
// exceeds the configured maximum. The offending line is discarded and the
// request answered -ERR; the connection keeps serving.
var ErrLineTooLong = errors.New("request line exceeds the configured maximum")

// ParseCommand parses one request line (already stripped of its trailing
// '\n'; a trailing '\r' is tolerated and stripped here). The returned
// error is a client-facing message — the caller renders it as "-ERR <msg>"
// — and never fatal to the connection.
func ParseCommand(line []byte) (Command, error) {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) == 0 {
		return Command{}, errors.New("empty command")
	}
	if bytes.IndexByte(line, 0) >= 0 {
		return Command{}, errors.New("embedded NUL in command")
	}
	// The connection reader strips the terminator before calling us, so an
	// interior newline can only mean a caller bug or a hostile buffer —
	// reject it rather than let it forge extra response lines.
	if bytes.IndexByte(line, '\n') >= 0 {
		return Command{}, errors.New("embedded newline in command")
	}
	verbTok, rest := splitField(line)
	var verb Verb
	switch {
	case asciiEqualFold(verbTok, "PING"):
		verb = VerbPing
	case asciiEqualFold(verbTok, "SET"):
		verb = VerbSet
	case asciiEqualFold(verbTok, "GET"):
		verb = VerbGet
	case asciiEqualFold(verbTok, "DEL"):
		verb = VerbDel
	case asciiEqualFold(verbTok, "RANGE"):
		verb = VerbRange
	case asciiEqualFold(verbTok, "LEN"):
		verb = VerbLen
	case asciiEqualFold(verbTok, "QUIT"):
		verb = VerbQuit
	default:
		return Command{}, fmt.Errorf("unknown command %q", clip(verbTok))
	}

	switch verb {
	case VerbPing, VerbLen, VerbQuit:
		if len(rest) != 0 {
			return Command{}, arityErr(verb)
		}
		return Command{Verb: verb}, nil

	case VerbGet, VerbDel:
		keyTok, tail := splitField(rest)
		if len(keyTok) == 0 || len(tail) != 0 {
			return Command{}, arityErr(verb)
		}
		k, err := parseKey(keyTok)
		if err != nil {
			return Command{}, err
		}
		return Command{Verb: verb, Key: k}, nil

	case VerbSet:
		keyTok, val := splitField(rest)
		if len(keyTok) == 0 || len(val) == 0 {
			return Command{}, arityErr(verb)
		}
		k, err := parseKey(keyTok)
		if err != nil {
			return Command{}, err
		}
		return Command{Verb: VerbSet, Key: k, Value: string(val)}, nil

	default: // VerbRange
		loTok, rest2 := splitField(rest)
		hiTok, tail := splitField(rest2)
		if len(loTok) == 0 || len(hiTok) == 0 || len(tail) != 0 {
			return Command{}, arityErr(verb)
		}
		lo, err := parseKey(loTok)
		if err != nil {
			return Command{}, err
		}
		hi, err := parseKey(hiTok)
		if err != nil {
			return Command{}, err
		}
		return Command{Verb: VerbRange, Key: lo, Hi: hi}, nil
	}
}

// splitField splits b at the first space into (field, remainder). The
// remainder excludes the separator; a missing separator yields an empty
// remainder. Multiple consecutive spaces are not collapsed: an empty field
// signals a malformed line to the caller.
func splitField(b []byte) (field, rest []byte) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

// parseKey parses a signed decimal 64-bit key.
func parseKey(tok []byte) (int, error) {
	k, err := strconv.ParseInt(string(tok), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("key %q is not a signed 64-bit integer", clip(tok))
	}
	return int(k), nil
}

func arityErr(v Verb) error {
	return fmt.Errorf("wrong number of arguments for %q", v.String())
}

// clip bounds a token echoed back in an error message so a hostile line
// cannot inflate the response.
func clip(tok []byte) string {
	const max = 32
	if len(tok) > max {
		return string(tok[:max]) + "..."
	}
	return string(tok)
}

// asciiEqualFold reports whether b equals the ASCII string s ignoring
// case, without allocating.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}
