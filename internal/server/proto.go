// Package server exposes a lock-free ordered key-value store over TCP
// through two wire dialects sharing one command set: a small line protocol
// and RESP2 (the Redis serialization protocol, see resp.go), auto-detected
// from the first byte a connection sends ('*' selects RESP). It is the
// serving layer of the repository: many connections concurrently drive one
// structure, and each connection's pipelined command runs are coalesced
// into the sorted batch operations, so the clustered-access amortization
// of DESIGN.md Sections 8 and 9 applies to network traffic, not just
// in-process callers.
//
// Line-protocol requests are single lines, terminated by '\n' (a preceding
// '\r' is stripped), fields separated by single spaces:
//
//	PING                 liveness probe
//	SET <key> <value>    insert-if-absent; values are immutable once stored
//	GET <key>            point lookup
//	DEL <key>            delete
//	RANGE <lo> <hi>      ordered scan of [lo, hi)
//	LEN                  key count
//	QUIT                 polite close
//
// Keys and range bounds are signed 64-bit decimal integers. A SET value is
// everything after the key token (it may contain spaces, but not '\n' or
// NUL). Responses are also single lines: "+..." status, ":<n>" integer,
// "$<value>" hit, "_" miss, "-ERR <msg>" failure, and "*<n>" followed by n
// lines "<key> <value>" for RANGE. Malformed or oversized input fails the
// request — the connection answers -ERR and keeps serving — never the
// process; only a broken transport closes a connection early.
//
// The wire hot path is allocation-free: SET values are interned into a
// per-connection chunk arena (wire.go), parse scratch and batch slices are
// recycled across runs, replies are assembled from interned literals into
// a recycled buffer, and each run flushes with a single vectored write.
package server

import (
	"errors"
	"fmt"
	"strings"

	"bytes"
)

// Verb enumerates the protocol commands.
type Verb uint8

// Protocol verbs. VerbInvalid is the zero value, returned with an error by
// ParseCommand.
const (
	VerbInvalid Verb = iota
	VerbPing
	VerbSet
	VerbGet
	VerbDel
	VerbRange
	VerbLen
	VerbQuit
)

// String returns the verb's wire name.
func (v Verb) String() string {
	switch v {
	case VerbPing:
		return "PING"
	case VerbSet:
		return "SET"
	case VerbGet:
		return "GET"
	case VerbDel:
		return "DEL"
	case VerbRange:
		return "RANGE"
	case VerbLen:
		return "LEN"
	case VerbQuit:
		return "QUIT"
	default:
		return "INVALID"
	}
}

// batchable reports whether runs of this verb coalesce into one batch
// call: the point commands SET/GET/DEL do, the rest execute singly.
func (v Verb) batchable() bool {
	return v == VerbSet || v == VerbGet || v == VerbDel
}

// NumVerbs is the size of the verb enumeration including VerbInvalid, for
// indexing per-verb metric arrays.
const NumVerbs = int(VerbQuit) + 1

// verbLabels interns each verb's lower-case metric label, so hot-path
// recording never formats a string.
var verbLabels = [NumVerbs]string{
	VerbInvalid: "invalid",
	VerbPing:    "ping",
	VerbSet:     "set",
	VerbGet:     "get",
	VerbDel:     "del",
	VerbRange:   "range",
	VerbLen:     "len",
	VerbQuit:    "quit",
}

// Label returns the verb's lower-case label used by the observability
// layer's metric and trace dimensions. The string is interned: calling
// Label never allocates.
func (v Verb) Label() string {
	if int(v) < NumVerbs {
		return verbLabels[v]
	}
	return "invalid"
}

// Command is one parsed request line.
type Command struct {
	Verb  Verb
	Key   int    // SET/GET/DEL key, RANGE lower bound
	Hi    int    // RANGE upper bound (exclusive)
	Value string // SET payload
}

// ErrLineTooLong is returned by the connection reader when a request line
// exceeds the configured maximum. The offending line is discarded and the
// request answered -ERR; the connection keeps serving.
var ErrLineTooLong = errors.New("request line exceeds the configured maximum")

// ParseCommand parses one request line (already stripped of its trailing
// '\n'; a trailing '\r' is tolerated and stripped here). The returned
// error is a client-facing message — the caller renders it as "-ERR <msg>"
// — and never fatal to the connection.
func ParseCommand(line []byte) (Command, error) {
	return parseCommand(line, nil)
}

// parseCommand is ParseCommand with an optional value arena: when a is
// non-nil, a SET value is interned into it instead of allocating a fresh
// string, which is what makes the steady-state wire path allocation-free.
func parseCommand(line []byte, a *valueArena) (Command, error) {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) == 0 {
		return Command{}, errors.New("empty command")
	}
	if bytes.IndexByte(line, 0) >= 0 {
		return Command{}, errors.New("embedded NUL in command")
	}
	// The connection reader strips the terminator before calling us, so an
	// interior newline can only mean a caller bug or a hostile buffer —
	// reject it rather than let it forge extra response lines.
	if bytes.IndexByte(line, '\n') >= 0 {
		return Command{}, errors.New("embedded newline in command")
	}
	verbTok, rest := splitField(line)
	var verb Verb
	switch {
	case asciiEqualFold(verbTok, "PING"):
		verb = VerbPing
	case asciiEqualFold(verbTok, "SET"):
		verb = VerbSet
	case asciiEqualFold(verbTok, "GET"):
		verb = VerbGet
	case asciiEqualFold(verbTok, "DEL"):
		verb = VerbDel
	case asciiEqualFold(verbTok, "RANGE"):
		verb = VerbRange
	case asciiEqualFold(verbTok, "LEN"):
		verb = VerbLen
	case asciiEqualFold(verbTok, "QUIT"):
		verb = VerbQuit
	default:
		return Command{}, fmt.Errorf("unknown command %q", clip(verbTok))
	}

	switch verb {
	case VerbPing, VerbLen, VerbQuit:
		if len(rest) != 0 {
			return Command{}, arityErr(verb)
		}
		return Command{Verb: verb}, nil

	case VerbGet, VerbDel:
		keyTok, tail := splitField(rest)
		if len(keyTok) == 0 || len(tail) != 0 {
			return Command{}, arityErr(verb)
		}
		k, err := parseKey(keyTok)
		if err != nil {
			return Command{}, err
		}
		return Command{Verb: verb, Key: k}, nil

	case VerbSet:
		keyTok, val := splitField(rest)
		if len(keyTok) == 0 || len(val) == 0 {
			return Command{}, arityErr(verb)
		}
		k, err := parseKey(keyTok)
		if err != nil {
			return Command{}, err
		}
		return Command{Verb: VerbSet, Key: k, Value: internValue(val, a)}, nil

	default: // VerbRange
		loTok, rest2 := splitField(rest)
		hiTok, tail := splitField(rest2)
		if len(loTok) == 0 || len(hiTok) == 0 || len(tail) != 0 {
			return Command{}, arityErr(verb)
		}
		lo, err := parseKey(loTok)
		if err != nil {
			return Command{}, err
		}
		hi, err := parseKey(hiTok)
		if err != nil {
			return Command{}, err
		}
		return Command{Verb: VerbRange, Key: lo, Hi: hi}, nil
	}
}

// splitField splits b at the first space into (field, remainder). The
// remainder excludes the separator; a missing separator yields an empty
// remainder. Multiple consecutive spaces are not collapsed: an empty field
// signals a malformed line to the caller.
func splitField(b []byte) (field, rest []byte) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

// parseKey parses a signed decimal 64-bit key. It allocates only on the
// error path: strconv.ParseInt would escape string(tok) into its *NumError
// and so cost one allocation per key even on success.
func parseKey(tok []byte) (int, error) {
	k, ok := parseWireInt(tok)
	if !ok {
		return 0, fmt.Errorf("key %q is not a signed 64-bit integer", clip(tok))
	}
	return int(k), nil
}

// parseWireInt parses a signed decimal 64-bit integer without allocating.
// It accepts exactly what strconv.ParseInt(s, 10, 64) accepts, except that
// near-boundary 19-digit overflow is rejected by the length cap a digit
// early (19 decimal digits always fit in uint64, so no per-digit overflow
// check is needed; |MinInt64| has 19 digits and is still representable).
func parseWireInt(tok []byte) (int64, bool) {
	i := 0
	neg := false
	if len(tok) > 0 && (tok[0] == '-' || tok[0] == '+') {
		neg = tok[0] == '-'
		i = 1
	}
	if i == len(tok) || len(tok)-i > 19 {
		return 0, false
	}
	var n uint64
	for ; i < len(tok); i++ {
		d := tok[i] - '0'
		if d > 9 {
			return 0, false
		}
		n = n*10 + uint64(d)
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		// n == 1<<63: int64(n) is already MinInt64 and negation is a
		// self-inverse wrap, so -int64(n) is MinInt64 as required.
		return -int64(n), true
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}

// arityErrs interns the per-verb wrong-arity errors: malformed pipelined
// floods should not make the server format an error string per request.
var arityErrs = [NumVerbs]error{
	VerbInvalid: errors.New(`wrong number of arguments for "INVALID"`),
	VerbPing:    errors.New(`wrong number of arguments for "PING"`),
	VerbSet:     errors.New(`wrong number of arguments for "SET"`),
	VerbGet:     errors.New(`wrong number of arguments for "GET"`),
	VerbDel:     errors.New(`wrong number of arguments for "DEL"`),
	VerbRange:   errors.New(`wrong number of arguments for "RANGE"`),
	VerbLen:     errors.New(`wrong number of arguments for "LEN"`),
	VerbQuit:    errors.New(`wrong number of arguments for "QUIT"`),
}

func arityErr(v Verb) error {
	if int(v) < NumVerbs {
		return arityErrs[v]
	}
	return arityErrs[VerbInvalid]
}

// clip bounds a token echoed back in an error message so a hostile line
// cannot inflate the response. One allocation: the truncated copy and its
// ellipsis are assembled in a single pre-sized builder.
func clip(tok []byte) string {
	const max = 32
	if len(tok) > max {
		var b strings.Builder
		b.Grow(max + 3)
		b.Write(tok[:max])
		b.WriteString("...")
		return b.String()
	}
	return string(tok)
}

// asciiEqualFold reports whether b equals the ASCII string s ignoring
// case, without allocating.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}
