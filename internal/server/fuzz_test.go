package server

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/lockfree"
)

// FuzzRESP throws arbitrary bytes at a served connection. The invariant
// is the protocol layer's prime directive: hostile or damaged input may
// fail requests, but must never panic, hang the serving goroutines, or
// keep the connection from tearing down. Replies are drained and
// discarded; the interesting outcome is termination.
//
// Seeds cover both dialects and every malformed-frame class the RESP
// reader distinguishes (testdata/fuzz/FuzzRESP holds the checked-in
// corpus). Run longer with: go test -fuzz=FuzzRESP ./internal/server
func FuzzRESP(f *testing.F) {
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$2\r\n42\r\n$5\r\nhello\r\n*2\r\n$3\r\nGET\r\n$2\r\n42\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$16\r\nkey:000000000042\r\n"))
	f.Add([]byte("*x\r\n*0\r\n*99999999\r\n"))
	f.Add([]byte("*1\r\nPING\r\n$5\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$-1\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPINGab*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$999\r\n"))
	f.Add([]byte("GET 42\nSET 1 v\nRANGE 0 10\nnot a command\n"))
	f.Add([]byte("*3\r\n$6\r\nCONFIG\r\n$3\r\nGET\r\n$4\r\nsave\r\n"))
	f.Add([]byte("*1\r\n$4\r\nQUIT\r\n*1\r\n$4\r\nPING\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := New(Config{
			// Tight limits so oversized-input paths are reachable with
			// small fuzz inputs; a short idle timeout bounds a truncated
			// frame's blocking read.
			ReadTimeout:  100 * time.Millisecond,
			DrainGrace:   time.Millisecond,
			MaxLineBytes: 256,
			MaxBatch:     8,
			MaxRange:     8,
		}, lockfree.NewSkipList[int, string]())
		cl, se := net.Pipe()
		served := make(chan struct{})
		go func() {
			srv.ServeConn(se)
			close(served)
		}()
		go io.Copy(io.Discard, cl) // drain whatever the server answers

		// A partial write is fine: the server may have quit mid-stream.
		cl.Write(data)
		cl.Close()

		select {
		case <-served:
		case <-time.After(5 * time.Second):
			t.Fatal("serving goroutine failed to terminate on hostile input")
		}
	})
}
