// wire.go is the allocation-free half of the serving layer's data plane:
// a per-connection chunk arena that SET parsing interns values into, the
// interned static reply literals for both wire dialects, and a reply
// writer that assembles a whole coalesced run into one recycled buffer
// and hands it to the kernel in a single vectored write (net.Buffers,
// i.e. writev) — one syscall per pipelined stretch, zero heap traffic in
// steady state.
package server

import (
	"net"
	"strconv"
	"strings"
	"unsafe"
)

// arenaChunkBytes is the value arena's chunk size. Values longer than a
// chunk get a dedicated chunk of their own length; everything else packs
// into the shared chunk, so N pipelined SETs of small values cost one
// allocation per ~chunkful instead of one per value.
const arenaChunkBytes = 16 << 10

// valueArena interns []byte payloads as strings packed into shared
// chunks. The trick is strings.Builder's append-only contract: a string
// returned by Builder.String is a view of the builder's current bytes,
// and later writes only ever append past them, so slicing String() at the
// pre-write length yields an immutable string of just-written bytes
// without copying them again — no unsafe needed on the parse side.
//
// Lifetime: interned strings are handed to the store, which retains them
// for the life of the key (see DESIGN.md §10). The arena therefore never
// reuses chunk memory — a full chunk is abandoned to the values cut from
// it and a fresh one started. What is amortized is the allocation count,
// not the bytes: values were always copied once off the read buffer; now
// many values share one allocation instead of getting one each.
type valueArena struct {
	b *strings.Builder
}

// intern copies val into the arena and returns it as a string.
func (a *valueArena) intern(val []byte) string {
	if a.b == nil || a.b.Cap()-a.b.Len() < len(val) {
		a.b = &strings.Builder{}
		n := arenaChunkBytes
		if len(val) > n {
			n = len(val)
		}
		a.b.Grow(n)
	}
	start := a.b.Len()
	a.b.Write(val)
	return a.b.String()[start:]
}

// internValue is the parser's value seam: with an arena it interns, and
// without one (the exported ParseCommand path) it behaves like the
// original string(val) copy.
func internValue(val []byte, a *valueArena) string {
	if a == nil {
		return string(val)
	}
	return a.intern(val)
}

// replySet interns one dialect's static reply literals so the hot path
// never formats a status, calls err.Error(), or re-renders a terminator.
type replySet struct {
	eol  string // line terminator ("\n" line dialect, "\r\n" RESP)
	pong string // PING
	ok   string // QUIT ack; RESP SET ack
	yes  string // :1 — successful SET/DEL
	no   string // :0 — duplicate SET / absent DEL
	miss string // GET miss ("_" line dialect, nil bulk "$-1" RESP)
	errp string // "-ERR " prefix, completed by the error text
}

var (
	lineReplies = replySet{
		eol:  "\n",
		pong: "+PONG\n",
		ok:   "+OK\n",
		yes:  ":1\n",
		no:   ":0\n",
		miss: "_\n",
		errp: "-ERR ",
	}
	respReplies = replySet{
		eol:  "\r\n",
		pong: "+PONG\r\n",
		ok:   "+OK\r\n",
		yes:  ":1\r\n",
		no:   ":0\r\n",
		miss: "$-1\r\n",
		errp: "-ERR ",
	}
)

// bigValueBytes is the splice threshold: reply values at least this long
// are not copied into the reply buffer but referenced in place and handed
// to writev as their own iovec. Below it, copying into the contiguous
// buffer is cheaper than growing the vector.
const bigValueBytes = 1 << 10

// maxRetainedWire caps how much reply-buffer capacity a connection keeps
// across runs, so one huge RANGE does not pin its high-water mark forever.
const maxRetainedWire = 64 << 10

// bigRef is a value spliced into the reply stream at byte offset off of
// the framing buffer.
type bigRef struct {
	off int
	val string
}

// replyWriter accumulates one run's replies. Framing bytes and small
// values append to out; big values are recorded as splice points. flush
// writes everything with a single net.Buffers.WriteTo (writev when the
// connection supports it) and resets for the next run, keeping the
// backing arrays.
type replyWriter struct {
	out  []byte
	big  []bigRef
	vecs [][]byte // flush scratch, backing reused across runs
}

func (w *replyWriter) literal(s string) { w.out = append(w.out, s...) }
func (w *replyWriter) writeByte(c byte) { w.out = append(w.out, c) }
func (w *replyWriter) bytes(b []byte)   { w.out = append(w.out, b...) }

// appendInt renders n in decimal directly into the framing buffer.
func (w *replyWriter) appendInt(n int64) { w.out = strconv.AppendInt(w.out, n, 10) }

// value appends a reply value, by copy when small and by reference when
// large. Referenced strings are read-only for writev and released at
// flush; they are immutable store values, so sharing them is safe.
func (w *replyWriter) value(v string) {
	if len(v) >= bigValueBytes {
		w.big = append(w.big, bigRef{off: len(w.out), val: v})
		return
	}
	w.out = append(w.out, v...)
}

// buffered returns the total reply bytes pending flush.
func (w *replyWriter) buffered() int {
	n := len(w.out)
	for i := range w.big {
		n += len(w.big[i].val)
	}
	return n
}

// flush writes all pending bytes to nc in one call and resets the writer.
// With no splice points it is a plain Write; otherwise the framing buffer
// is cut at each splice offset and interleaved with the referenced values
// into one vectored write.
func (w *replyWriter) flush(nc net.Conn) error {
	var err error
	if len(w.big) == 0 {
		if len(w.out) > 0 {
			_, err = nc.Write(w.out)
		}
	} else {
		v := w.vecs[:0]
		prev := 0
		for i := range w.big {
			if off := w.big[i].off; off > prev {
				v = append(v, w.out[prev:off])
				prev = off
			}
			v = append(v, stringBytes(w.big[i].val))
		}
		if prev < len(w.out) {
			v = append(v, w.out[prev:])
		}
		// WriteTo consumes the net.Buffers slice header it is given, not
		// ours; clear ours afterwards so no flushed value stays pinned.
		bufs := net.Buffers(v)
		_, err = bufs.WriteTo(nc)
		clear(v)
		w.vecs = v[:0]
	}
	w.out = w.out[:0]
	w.big = w.big[:0]
	if cap(w.out) > maxRetainedWire {
		w.out = nil
	}
	return err
}

// stringBytes returns a read-only byte view of s without copying. Callers
// must never write through it; here it only feeds writev. The repo already
// leans on unsafe for exactly this kind of boundary (internal/telemetry,
// internal/ebr), and the alternative — copying every large reply value —
// is the allocation this file exists to remove.
func stringBytes(s string) []byte {
	return unsafe.Slice(unsafe.StringData(s), len(s))
}
